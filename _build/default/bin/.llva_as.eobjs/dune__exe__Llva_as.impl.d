bin/llva_as.ml: Arg Cmd Cmdliner Filename Llva Printf String Term Tool_common
