bin/llva_as.mli:
