bin/llva_dis.ml: Arg Cmd Cmdliner Hashtbl Llva Printf Sparclite Term Tool_common X86lite
