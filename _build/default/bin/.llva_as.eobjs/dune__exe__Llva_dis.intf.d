bin/llva_dis.mli:
