bin/llva_opt.ml: Arg Cmd Cmdliner Filename List Llva Option Printf String Term Tool_common Transform
