bin/llva_opt.mli:
