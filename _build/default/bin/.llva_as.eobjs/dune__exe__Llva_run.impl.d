bin/llva_run.ml: Arg Cmd Cmdliner Interp List Llee Printf Sparclite Term Tool_common Transform X86lite
