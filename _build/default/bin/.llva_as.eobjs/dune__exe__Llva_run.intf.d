bin/llva_run.mli:
