bin/minicc.ml: Arg Cmd Cmdliner Filename Llva Minic Printf Term Tool_common
