bin/minicc.mli:
