bin/tool_common.ml: Filename List Llva Printf String
