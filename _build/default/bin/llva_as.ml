(* llva-as: assemble textual LLVA into virtual object code.

     llva_as input.ll [-o output.bc] *)

open Cmdliner

let run input output =
  let m = Tool_common.load_module input in
  Tool_common.check_verify m;
  let bytes = Llva.Encode.encode m in
  let out =
    match output with
    | Some o -> o
    | None -> Filename.remove_extension input ^ ".bc"
  in
  Tool_common.write_file out bytes;
  Printf.printf "%s: %d instructions, %d bytes of virtual object code -> %s\n"
    input
    (Llva.Ir.module_instr_count m)
    (String.length bytes) out

let input =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT.ll")

let output =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT.bc")

let cmd =
  Cmd.v
    (Cmd.info "llva-as" ~doc:"assemble textual LLVA into virtual object code")
    Term.(const run $ input $ output)

let () = exit (Cmd.eval cmd)
