(* llva-dis: disassemble virtual object code back to textual LLVA, or show
   the native translation for an I-ISA.

     llva_dis input.bc [-o out.ll] [--target x86|sparc] *)

open Cmdliner

let run input output target =
  let m = Tool_common.load_module input in
  match target with
  | None -> (
      let text = Llva.Pretty.module_to_string m in
      match output with
      | Some o ->
          Tool_common.write_file o text;
          Printf.printf "wrote %s\n" o
      | None -> print_string text)
  | Some "x86" ->
      let cm = X86lite.Compile.compile_module m in
      Hashtbl.iter
        (fun _ cf -> print_string (X86lite.Compile.disassemble cf))
        cm.X86lite.Compile.funcs
  | Some "sparc" ->
      let cm = Sparclite.Compile.compile_module m in
      Hashtbl.iter
        (fun _ cf -> print_string (Sparclite.Compile.disassemble cf))
        cm.Sparclite.Compile.funcs
  | Some t ->
      Printf.eprintf "unknown target %s (x86 or sparc)\n" t;
      exit 1

let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT.bc")

let output =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT.ll")

let target =
  Arg.(
    value
    & opt (some string) None
    & info [ "target" ] ~docv:"TARGET" ~doc:"show native code for x86|sparc")

let cmd =
  Cmd.v
    (Cmd.info "llva-dis"
       ~doc:"disassemble virtual object code (or show its native translation)")
    Term.(const run $ input $ output $ target)

let () = exit (Cmd.eval cmd)
