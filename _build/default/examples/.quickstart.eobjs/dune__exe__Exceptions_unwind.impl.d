examples/exceptions_unwind.ml: Array Interp List Llva Printf Resolve Verify Vmem X86lite
