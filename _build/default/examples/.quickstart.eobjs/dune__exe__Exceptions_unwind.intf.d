examples/exceptions_unwind.mli:
