examples/jit_caching.ml: Array Filename Llee Llva Minic Printf String Sys
