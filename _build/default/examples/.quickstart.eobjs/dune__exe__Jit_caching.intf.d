examples/jit_caching.mli:
