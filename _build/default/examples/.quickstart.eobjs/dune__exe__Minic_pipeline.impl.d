examples/minic_pipeline.ml: Hashtbl Interp List Llva Minic Printf Sparclite String Transform X86lite
