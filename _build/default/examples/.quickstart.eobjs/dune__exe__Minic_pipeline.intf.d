examples/minic_pipeline.mli:
