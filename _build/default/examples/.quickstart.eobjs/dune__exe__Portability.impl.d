examples/portability.ml: Interp List Llva Minic Printf String Vmem
