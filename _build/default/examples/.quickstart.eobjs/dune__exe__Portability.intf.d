examples/portability.mli:
