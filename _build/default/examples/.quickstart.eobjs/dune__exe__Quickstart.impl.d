examples/quickstart.ml: Builder Encode Interp Ir List Llee Llva Pretty Printf Sparclite String Transform Types Verify X86lite
