examples/quickstart.mli:
