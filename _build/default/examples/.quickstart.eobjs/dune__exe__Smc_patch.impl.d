examples/smc_patch.ml: Interp List Llee Llva Printf Resolve Verify
