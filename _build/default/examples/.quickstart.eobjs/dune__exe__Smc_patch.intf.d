examples/smc_patch.mli:
