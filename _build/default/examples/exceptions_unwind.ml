(* The paper's exception model (§3.3) in action:

   - invoke/unwind implement source-language exceptions by stack
     unwinding, portably, through native code;
   - the per-instruction ExceptionsEnabled attribute makes a division
     non-trapping when the language can ignore the exception;
   - a registered trap handler (an ordinary LLVA function, §3.5) observes
     a precise trap.

     dune exec examples/exceptions_unwind.exe *)

open Llva

let program =
  {|
declare void %print_str(sbyte*)
declare void %print_int(int)
declare void %print_nl()
declare void %llva.trap.register(void (uint, sbyte*)*)

%msg.caught = constant [23 x sbyte] c"caught unwound callee\0A\00"
%msg.fine = constant [16 x sbyte] c"normal return: \00"
%msg.trap = constant [20 x sbyte] c"trap handler, code \00"

; a parser-like routine that unwinds on malformed input
int %parse_digit(int %c) {
entry:
  %lo = setge int %c, 48
  br bool %lo, label %check_hi, label %bad
check_hi:
  %hi = setle int %c, 57
  br bool %hi, label %ok, label %bad
ok:
  %v = sub int %c, 48
  ret int %v
bad:
  unwind
}

void %handler(uint %num, sbyte* %info) {
entry:
  %p = getelementptr [20 x sbyte]* %msg.trap, long 0, long 0
  call void %print_str(sbyte* %p)
  %n = cast uint %num to int
  call void %print_int(int %n)
  call void %print_nl()
  ret void
}

int %main() {
entry:
  ; 1. a successful invoke
  %good = invoke int %parse_digit(int 55) to label %ok1 except label %caught
ok1:
  %p1 = getelementptr [16 x sbyte]* %msg.fine, long 0, long 0
  call void %print_str(sbyte* %p1)
  call void %print_int(int %good)
  call void %print_nl()
  ; 2. a failing invoke: the callee unwinds, we land in %caught
  %bad = invoke int %parse_digit(int 88) to label %ok2 except label %caught
ok2:
  ret int 1
caught:
  %p2 = getelementptr [23 x sbyte]* %msg.caught, long 0, long 0
  call void %print_str(sbyte* %p2)
  ; 3. non-trapping division: ExceptionsEnabled=false ignores the fault
  %safe = div int 10, 0 @ee(false)
  %z = add int %safe, 0
  ; 4. register a trap handler, then really divide by zero
  call void %llva.trap.register(void (uint, sbyte*)* %handler)
  %boom = div int 1, 0
  ret int %boom
}
|}

let () =
  let m = Resolve.parse_module ~name:"exceptions" program in
  (match Verify.verify_module m with
  | [] -> ()
  | errs ->
      List.iter print_endline errs;
      exit 1);

  print_endline "--- reference interpreter ---";
  let st = Interp.create m in
  (try ignore (Interp.run_main st)
   with Interp.Trap k ->
     Printf.printf "[program terminated by trap: %s]\n" (Interp.trap_to_string k));
  print_string (Interp.output st);

  print_endline "--- x86-lite native ---";
  let cm = X86lite.Compile.compile_module (Resolve.parse_module program) in
  let sim = X86lite.Sim.create cm in
  sim.X86lite.Sim.regs.(X86lite.X86.sp) <- Vmem.Memory.stack_top;
  sim.X86lite.Sim.regs.(X86lite.X86.bp) <- Vmem.Memory.stack_top;
  (try ignore (X86lite.Sim.call_function sim "main" []) with
  | X86lite.Sim.Trap X86lite.Sim.Division_by_zero ->
      print_endline "[program terminated by trap: division by zero]"
  | X86lite.Sim.Trap _ -> print_endline "[program terminated by trap]");
  print_string (X86lite.Sim.output sim);
  print_endline "(the handler output above was produced by *native* code)"
