(* The full compilation pipeline on a realistic program: C source ->
   LLVA -> link-time optimization -> virtual object code -> native
   translation for both I-ISAs, with the intermediate artifacts printed
   at each stage (the lifecycle from paper §4.2).

     dune exec examples/minic_pipeline.exe *)

let c_source =
  {|
/* a tiny word-frequency counter over deterministic "text" */
enum { WORDS = 300, BUCKETS = 64 };

unsigned seed = 42u;
unsigned rnd() { seed = seed * 1103515245u + 12345u; return (seed >> 16) & 32767u; }

typedef struct Entry {
  int word_id;
  int count;
  struct Entry *next;
} Entry;

Entry *buckets[BUCKETS];

Entry *find_or_add(int word_id) {
  unsigned h = (unsigned)word_id % (unsigned)BUCKETS;
  Entry *e = buckets[h];
  while (e) {
    if (e->word_id == word_id) return e;
    e = e->next;
  }
  e = (Entry *) malloc(sizeof(Entry));
  e->word_id = word_id;
  e->count = 0;
  e->next = buckets[h];
  buckets[h] = e;
  return e;
}

int main() {
  int i, distinct = 0, maxcount = 0;
  for (i = 0; i < BUCKETS; i++) buckets[i] = 0;
  for (i = 0; i < WORDS; i++) {
    int w = (int)(rnd() % 97u);
    Entry *e = find_or_add(w);
    e->count++;
  }
  for (i = 0; i < BUCKETS; i++) {
    Entry *e = buckets[i];
    while (e) {
      distinct++;
      if (e->count > maxcount) maxcount = e->count;
      e = e->next;
    }
  }
  print_str("distinct=");
  print_int(distinct);
  print_str(" max=");
  print_int(maxcount);
  print_nl();
  return 0;
}
|}

let () =
  print_endline "=== stage 1: C -> LLVA (front-end) ===";
  let m = Minic.Mcodegen.compile_and_verify ~name:"wordfreq" c_source in
  Printf.printf "front-end emitted %d LLVA instructions in %d functions\n"
    (Llva.Ir.module_instr_count m)
    (List.length (List.filter (fun f -> not (Llva.Ir.is_declaration f)) m.Llva.Ir.funcs));

  print_endline "\n=== stage 2: link-time optimization on the V-ISA ===";
  let changes = Transform.Passmgr.optimize ~level:2 ~verify:true m in
  Printf.printf "optimizer: %d changes; %d instructions remain\n" changes
    (Llva.Ir.module_instr_count m);
  print_endline "\nfind_or_add after optimization:";
  (match Llva.Ir.find_func m "find_or_add" with
  | Some f -> print_string (Llva.Pretty.func_to_string f)
  | None -> print_endline "(inlined away)");

  print_endline "=== stage 3: virtual object code ===";
  let bytes = Llva.Encode.encode m in
  Printf.printf "%d bytes (%.1f bytes/instruction)\n" (String.length bytes)
    (float_of_int (String.length bytes)
    /. float_of_int (Llva.Ir.module_instr_count m));

  print_endline "\n=== stage 4: translation to both I-ISAs ===";
  let shipped = Llva.Decode.decode bytes in
  let x86 = X86lite.Compile.compile_module shipped in
  let sparc = Sparclite.Compile.compile_module (Llva.Decode.decode bytes) in
  Printf.printf "x86-lite  : %4d instructions (%.2fx), %5d bytes\n"
    (X86lite.Compile.module_instr_count x86)
    (float_of_int (X86lite.Compile.module_instr_count x86)
    /. float_of_int (Llva.Ir.module_instr_count shipped))
    (X86lite.Compile.module_code_size x86);
  Printf.printf "sparc-lite: %4d instructions (%.2fx), %5d bytes\n"
    (Sparclite.Compile.module_instr_count sparc)
    (float_of_int (Sparclite.Compile.module_instr_count sparc)
    /. float_of_int (Llva.Ir.module_instr_count shipped))
    (Sparclite.Compile.module_code_size sparc);

  (* a peek at the generated code *)
  (match Hashtbl.find_opt x86.X86lite.Compile.funcs "find_or_add" with
  | Some cf ->
      print_endline "\nfind_or_add, x86-lite (first 12 instructions):";
      let dis = X86lite.Compile.disassemble cf in
      String.split_on_char '\n' dis
      |> List.filteri (fun k _ -> k < 13)
      |> List.iter print_endline
  | None -> ());

  print_endline "\n=== stage 5: execution ===";
  let st = Interp.create shipped in
  let icode = Interp.run_main st in
  Printf.printf "interpreter: exit=%d %s" icode (Interp.output st);
  let xcode, xst = X86lite.Sim.run_main x86 in
  Printf.printf "x86-lite   : exit=%d %s" xcode (X86lite.Sim.output xst);
  let scode, sst = Sparclite.Sim.run_main sparc in
  Printf.printf "sparc-lite : exit=%d %s" scode (Sparclite.Sim.output sst);
  assert (icode = xcode && xcode = scode);
  print_endline "all three engines agree."
