(* Representation portability (paper §3.2): the same type-safe source
   behaves identically on every target configuration the V-ISA abstracts
   over (32/64-bit pointers, little/big endian), because getelementptr
   expresses pointer arithmetic in terms of abstract type properties.

   The program builds a binary search tree with pointer-heavy nodes —
   exactly the kind of code whose struct offsets differ across configs —
   and we check behaviour on all four; then we show the offsets that
   differed underneath.

     dune exec examples/portability.exe *)

let c_source =
  {|
typedef struct Node {
  char tag;              /* forces interesting padding */
  struct Node *left;
  struct Node *right;
  long key;
} Node;

Node *insert(Node *t, long key) {
  if (!t) {
    Node *n = (Node *) malloc(sizeof(Node));
    n->tag = 'n';
    n->left = 0;
    n->right = 0;
    n->key = key;
    return n;
  }
  if (key < t->key) t->left = insert(t->left, key);
  else if (key > t->key) t->right = insert(t->right, key);
  return t;
}

long sum_depths(Node *t, long depth) {
  if (!t) return 0;
  return depth + sum_depths(t->left, depth + 1) + sum_depths(t->right, depth + 1);
}

unsigned seed = 99u;
unsigned rnd() { seed = seed * 1103515245u + 12345u; return (seed >> 16) & 32767u; }

int main() {
  Node *root = 0;
  int i;
  for (i = 0; i < 200; i++) root = insert(root, (long)(rnd() % 1000u));
  print_str("sum of depths = ");
  print_long(sum_depths(root, 0));
  print_nl();
  print_str("sizeof(Node) = ");
  print_int((int)sizeof(Node));
  print_nl();
  return 0;
}
|}

let () =
  Printf.printf "%-24s %-10s %s\n" "target config" "exit" "output";
  let results =
    List.map
      (fun target ->
        let m =
          Minic.Mcodegen.compile_and_verify ~name:"bst" ~target c_source
        in
        let st = Interp.create m in
        let code = Interp.run_main st in
        let out = Interp.output st in
        Printf.printf "%-24s %-10d %s" (Llva.Target.to_string target) code
          (String.concat " | " (String.split_on_char '\n' out));
        print_newline ();
        (code, out))
      Llva.Target.all
  in
  (* the observable *behaviour* agrees except for sizeof, which the V-ISA
     deliberately exposes (it is one of the two I-ISA details a program
     may depend on, with endianness) *)
  let first_line (_, out) = List.hd (String.split_on_char '\n' out) in
  let all_same =
    List.for_all (fun r -> first_line r = first_line (List.hd results)) results
  in
  Printf.printf "\ntree behaviour identical on all configs: %b\n" all_same;

  (* peek underneath: the same getelementptr lowers to different byte
     offsets per config — this is what the translator hides *)
  print_endline "\nbyte offset of Node.key computed by the translator:";
  List.iter
    (fun target ->
      let m = Minic.Mcodegen.compile_and_verify ~name:"bst" ~target c_source in
      let lt = Vmem.Layout.for_module m in
      let node_ty = Llva.Types.Named "struct.Node" in
      let off, _ =
        Vmem.Layout.gep_offset lt
          (Llva.Types.Pointer node_ty)
          [ (Llva.Types.Long, 0L); (Llva.Types.Uint, 3L) ]
      in
      Printf.printf "  %-22s offset = %2d bytes (sizeof = %d)\n"
        (Llva.Target.to_string target)
        off
        (Vmem.Layout.size_of lt node_ty))
    Llva.Target.all
