(* Self-modifying code under the paper's §3.4 rules: a program patches one
   of its own functions through the llva.smc.replace intrinsic. The change
   affects only *future* invocations — an invocation already on the stack
   keeps executing the old body — and LLEE invalidates the cached native
   code of the patched function.

   The scenario is a runtime instrumentation tool: the program swaps its
   "step" function for an instrumented variant mid-run, from *inside* an
   active invocation of the driver that keeps calling it.

     dune exec examples/smc_patch.exe *)

open Llva

let program =
  {|
declare void %print_str(sbyte*)
declare void %print_int(int)
declare void %print_nl()
declare void %llva.smc.replace(int (int)*, int (int)*)

%count = global int 0
%msg.plain = constant [8 x sbyte] c"plain: \00"
%msg.done = constant [7 x sbyte] c"calls=\00"

; the original step function
int %step(int %x) {
entry:
  %r = add int %x, 1
  ret int %r
}

; the instrumented replacement: counts invocations
int %step_instrumented(int %x) {
entry:
  %c = load int* %count
  %c2 = add int %c, 1
  store int %c2, int* %count
  %r = add int %x, 1
  ret int %r
}

; drive N iterations; patch after the first half, in the middle of this
; (still active) invocation
int %drive(int %n) {
entry:
  br label %loop
loop:
  %i = phi int [ 0, %entry ], [ %inext, %cont ]
  %acc = phi int [ 0, %entry ], [ %acc2, %cont ]
  %acc2 = call int %step(int %acc)
  %inext = add int %i, 1
  %ishalf = seteq int %inext, %n
  br bool %ishalf, label %patch, label %cont
patch:
  ; future invocations of %step are the instrumented version
  call void %llva.smc.replace(int (int)* %step, int (int)* %step_instrumented)
  br label %cont
cont:
  %twice = mul int %n, 2
  %done = setge int %inext, %twice
  br bool %done, label %out, label %loop
out:
  ret int %acc2
}

int %main() {
entry:
  %total = call int %drive(int 5)
  %p1 = getelementptr [8 x sbyte]* %msg.plain, long 0, long 0
  call void %print_str(sbyte* %p1)
  call void %print_int(int %total)
  call void %print_nl()
  ; only the 5 post-patch invocations were counted
  %p2 = getelementptr [7 x sbyte]* %msg.done, long 0, long 0
  call void %print_str(sbyte* %p2)
  %c = load int* %count
  call void %print_int(int %c)
  call void %print_nl()
  ret int 0
}
|}

let () =
  let m = Resolve.parse_module ~name:"smc" program in
  (match Verify.verify_module m with
  | [] -> ()
  | errs ->
      List.iter print_endline errs;
      exit 1);

  print_endline "--- reference interpreter ---";
  let st = Interp.create m in
  ignore (Interp.run_main st);
  print_string (Interp.output st);

  print_endline "--- through LLEE (native, with code-cache invalidation) ---";
  let eng = Llee.of_module ~target:Llee.X86 m in
  let _, out = Llee.run eng in
  print_string out;
  Printf.printf "functions JIT-compiled: %d (replacement translated on demand)\n"
    eng.Llee.stats.Llee.translations
