lib/analysis/alias.ml: Array Ir List Llva Types Vmem
