lib/analysis/callgraph.ml: Array Hashtbl Ir List Llva
