lib/analysis/cfg.ml: Array Hashtbl Ir List Llva
