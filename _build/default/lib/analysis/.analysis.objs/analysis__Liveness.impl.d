lib/analysis/liveness.ml: Array Cfg Hashtbl Ir List Llva Types
