lib/analysis/loops.ml: Array Cfg Dominance Hashtbl Ir List Llva
