(* Call graph over a module's direct calls, with Tarjan SCCs for recursion
   detection (the inliner refuses to inline inside recursive cycles; global
   DCE uses reachability from main). *)

open Llva

type t = {
  m : Ir.modl;
  callees : (int, Ir.func list) Hashtbl.t; (* func id -> direct callees *)
  callers : (int, Ir.func list) Hashtbl.t;
  has_indirect_calls : (int, bool) Hashtbl.t; (* func makes indirect calls *)
  address_taken : (int, bool) Hashtbl.t; (* func whose address escapes *)
}

let direct_callee (i : Ir.instr) =
  match i.Ir.op with
  | Ir.Call | Ir.Invoke -> (
      match Ir.call_callee i with Ir.Vfunc f -> Some f | _ -> None)
  | _ -> None

let compute (m : Ir.modl) : t
    =
  let t =
    {
      m;
      callees = Hashtbl.create 32;
      callers = Hashtbl.create 32;
      has_indirect_calls = Hashtbl.create 32;
      address_taken = Hashtbl.create 32;
    }
  in
  let add tbl key f =
    let cur = match Hashtbl.find_opt tbl key with Some l -> l | None -> [] in
    if not (List.exists (fun g -> g == f) cur) then
      Hashtbl.replace tbl key (f :: cur)
  in
  List.iter
    (fun (f : Ir.func) ->
      Ir.iter_instrs
        (fun i ->
          (match i.Ir.op with
          | Ir.Call | Ir.Invoke -> (
              match direct_callee i with
              | Some callee ->
                  add t.callees f.Ir.fid callee;
                  add t.callers callee.Ir.fid f
              | None -> Hashtbl.replace t.has_indirect_calls f.Ir.fid true)
          | _ -> ());
          (* any non-callee operand mentioning a function takes its
             address *)
          Array.iteri
            (fun k v ->
              match v with
              | Ir.Vfunc g ->
                  let is_callee_slot =
                    (i.Ir.op = Ir.Call || i.Ir.op = Ir.Invoke) && k = 0
                  in
                  if not is_callee_slot then
                    Hashtbl.replace t.address_taken g.Ir.fid true
              | _ -> ())
            i.Ir.operands)
        f)
    m.Ir.funcs;
  (* global initializers referencing a function take its address *)
  let rec scan_const (c : Ir.const) =
    match c.Ir.ckind with
    | Ir.Cglobal_ref name -> (
        match Ir.find_func m name with
        | Some f -> Hashtbl.replace t.address_taken f.Ir.fid true
        | None -> ())
    | Ir.Carray cs | Ir.Cstruct cs -> List.iter scan_const cs
    | _ -> ()
  in
  List.iter
    (fun g -> match g.Ir.ginit with Some c -> scan_const c | None -> ())
    m.Ir.globals;
  t

let callees t (f : Ir.func) =
  match Hashtbl.find_opt t.callees f.Ir.fid with Some l -> l | None -> []

let callers t (f : Ir.func) =
  match Hashtbl.find_opt t.callers f.Ir.fid with Some l -> l | None -> []

let makes_indirect_calls t (f : Ir.func) =
  Hashtbl.mem t.has_indirect_calls f.Ir.fid

let is_address_taken t (f : Ir.func) = Hashtbl.mem t.address_taken f.Ir.fid

(* ---------- Tarjan SCC ---------- *)

let sccs (t : t) : Ir.func list list =
  let index = Hashtbl.create 32 in
  let lowlink = Hashtbl.create 32 in
  let on_stack = Hashtbl.create 32 in
  let stack = ref [] in
  let counter = ref 0 in
  let result = ref [] in
  let rec strongconnect (f : Ir.func) =
    Hashtbl.replace index f.Ir.fid !counter;
    Hashtbl.replace lowlink f.Ir.fid !counter;
    incr counter;
    stack := f :: !stack;
    Hashtbl.replace on_stack f.Ir.fid ();
    List.iter
      (fun (g : Ir.func) ->
        if not (Hashtbl.mem index g.Ir.fid) then begin
          strongconnect g;
          Hashtbl.replace lowlink f.Ir.fid
            (min (Hashtbl.find lowlink f.Ir.fid) (Hashtbl.find lowlink g.Ir.fid))
        end
        else if Hashtbl.mem on_stack g.Ir.fid then
          Hashtbl.replace lowlink f.Ir.fid
            (min (Hashtbl.find lowlink f.Ir.fid) (Hashtbl.find index g.Ir.fid)))
      (callees t f);
    if Hashtbl.find lowlink f.Ir.fid = Hashtbl.find index f.Ir.fid then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | g :: rest ->
            stack := rest;
            Hashtbl.remove on_stack g.Ir.fid;
            if g == f then g :: acc else pop (g :: acc)
      in
      result := pop [] :: !result
    end
  in
  List.iter
    (fun f -> if not (Hashtbl.mem index f.Ir.fid) then strongconnect f)
    t.m.Ir.funcs;
  List.rev !result

(* Is [f] (mutually) recursive? *)
let is_recursive t (f : Ir.func) =
  List.exists (fun g -> g == f) (callees t f)
  || List.exists
       (fun scc -> List.length scc > 1 && List.exists (fun g -> g == f) scc)
       (sccs t)

(* Functions reachable from the given roots by direct calls; functions
   whose address is taken are treated as always reachable. *)
let reachable_from t (roots : Ir.func list) : (int, unit) Hashtbl.t =
  let seen = Hashtbl.create 32 in
  let rec visit f =
    if not (Hashtbl.mem seen f.Ir.fid) then begin
      Hashtbl.replace seen f.Ir.fid ();
      List.iter visit (callees t f)
    end
  in
  List.iter visit roots;
  List.iter
    (fun f -> if is_address_taken t f then visit f)
    t.m.Ir.funcs;
  seen
