(* Control-flow graph utilities over a function's explicit CFG (paper
   §3.1: every function is a list of basic blocks whose terminators name
   their successors, so these are all structurally trivial to compute —
   the very property the V-ISA is designed to provide). *)

open Llva

type t = {
  func : Ir.func;
  blocks : Ir.block array; (* reverse postorder; entry first *)
  index : (int, int) Hashtbl.t; (* block id -> index *)
  succs : int list array;
  preds : int list array;
}

(* Depth-first postorder from the entry block; unreachable blocks are
   excluded entirely (passes should run [Transform.Simplifycfg] to drop
   them from the function). *)
let build (f : Ir.func) : t =
  let visited = Hashtbl.create 32 in
  let postorder = ref [] in
  let rec dfs (b : Ir.block) =
    if not (Hashtbl.mem visited b.Ir.blid) then begin
      Hashtbl.replace visited b.Ir.blid ();
      List.iter dfs (Ir.successors b);
      postorder := b :: !postorder
    end
  in
  (match f.Ir.fblocks with [] -> () | entry :: _ -> dfs entry);
  let blocks = Array.of_list !postorder in
  let index = Hashtbl.create (Array.length blocks) in
  Array.iteri (fun k b -> Hashtbl.replace index b.Ir.blid k) blocks;
  let succs =
    Array.map
      (fun b ->
        List.filter_map (fun s -> Hashtbl.find_opt index s.Ir.blid) (Ir.successors b))
      blocks
  in
  let preds = Array.make (Array.length blocks) [] in
  Array.iteri
    (fun k ss -> List.iter (fun s -> preds.(s) <- k :: preds.(s)) ss)
    succs;
  { func = f; blocks; index; succs; preds }

let n_blocks cfg = Array.length cfg.blocks
let block cfg k = cfg.blocks.(k)

let index_of cfg (b : Ir.block) =
  match Hashtbl.find_opt cfg.index b.Ir.blid with
  | Some k -> k
  | None -> invalid_arg ("Cfg.index_of: unreachable block %" ^ b.Ir.bname)

let is_reachable cfg (b : Ir.block) = Hashtbl.mem cfg.index b.Ir.blid

let unreachable_blocks (f : Ir.func) =
  let cfg = build f in
  List.filter (fun b -> not (is_reachable cfg b)) f.Ir.fblocks

(* blocks in reverse postorder *)
let rpo cfg = Array.to_list cfg.blocks

let iter_rpo f cfg = Array.iter f cfg.blocks

(* edge list as (src, dst) index pairs *)
let edges cfg =
  let acc = ref [] in
  Array.iteri
    (fun k ss -> List.iter (fun s -> acc := (k, s) :: !acc) ss)
    cfg.succs;
  List.rev !acc
