(* Dominator tree and dominance frontiers using the Cooper–Harvey–Kennedy
   "engineered" algorithm, operating on the [Cfg] reverse postorder. *)

open Llva

type t = {
  cfg : Cfg.t;
  idom : int array; (* immediate dominator index; entry maps to itself *)
  children : int list array; (* dominator-tree children *)
  frontier : int list array; (* dominance frontier, as block indices *)
  level : int array; (* depth in the dominator tree *)
}

let compute (cfg : Cfg.t) : t =
  let n = Cfg.n_blocks cfg in
  let idom = Array.make n (-1) in
  if n > 0 then idom.(0) <- 0;
  let intersect a b =
    (* walk up the idom chain; indices are RPO numbers so "higher" means
       deeper in the order *)
    let a = ref a and b = ref b in
    while !a <> !b do
      while !a > !b do
        a := idom.(!a)
      done;
      while !b > !a do
        b := idom.(!b)
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for b = 1 to n - 1 do
      let preds = cfg.Cfg.preds.(b) in
      let processed = List.filter (fun p -> idom.(p) >= 0) preds in
      match processed with
      | [] -> ()
      | first :: rest ->
          let new_idom = List.fold_left (fun acc p -> intersect acc p) first rest in
          if idom.(b) <> new_idom then begin
            idom.(b) <- new_idom;
            changed := true
          end
    done
  done;
  let children = Array.make n [] in
  for b = n - 1 downto 1 do
    if idom.(b) >= 0 then children.(idom.(b)) <- b :: children.(idom.(b))
  done;
  (* dominance frontier (Cooper et al. fig. 5) *)
  let frontier = Array.make n [] in
  for b = 0 to n - 1 do
    let preds = cfg.Cfg.preds.(b) in
    if List.length preds >= 2 then
      List.iter
        (fun p ->
          let runner = ref p in
          while !runner <> idom.(b) && !runner >= 0 do
            if not (List.mem b frontier.(!runner)) then
              frontier.(!runner) <- b :: frontier.(!runner);
            runner := idom.(!runner)
          done)
        preds
  done;
  let level = Array.make n 0 in
  let rec set_levels b =
    List.iter
      (fun c ->
        level.(c) <- level.(b) + 1;
        set_levels c)
      children.(b)
  in
  if n > 0 then set_levels 0;
  { cfg; idom; children; frontier; level }

let of_function f = compute (Cfg.build f)

(* does block index [a] dominate block index [b]? *)
let dominates_idx t a b =
  let rec go b = if b = a then true else if b = 0 then a = 0 else go t.idom.(b) in
  go b

let dominates t (a : Ir.block) (b : Ir.block) =
  dominates_idx t (Cfg.index_of t.cfg a) (Cfg.index_of t.cfg b)

let strictly_dominates t a b = (not (a == b)) && dominates t a b

let idom_block t (b : Ir.block) : Ir.block option =
  let k = Cfg.index_of t.cfg b in
  if k = 0 then None else Some (Cfg.block t.cfg t.idom.(k))

let frontier_blocks t (b : Ir.block) =
  List.map (Cfg.block t.cfg) t.frontier.(Cfg.index_of t.cfg b)

let children_blocks t (b : Ir.block) =
  List.map (Cfg.block t.cfg) t.children.(Cfg.index_of t.cfg b)

(* Does the definition site of [def] dominate the use site
   (instruction [user], operand [op_idx])? Mirrors the verifier rule. *)
let def_dominates_use t (def : Ir.instr) (user : Ir.instr) op_idx =
  match (def.Ir.iparent, user.Ir.iparent) with
  | Some db, Some ub ->
      if user.Ir.op = Ir.Phi then
        match user.Ir.operands.(op_idx + 1) with
        | Ir.Vblock pred -> dominates t db pred
        | _ -> false
      else if db == ub then
        let rec scan = function
          | [] -> false
          | x :: _ when x == def -> true
          | x :: _ when x == user -> false
          | _ :: rest -> scan rest
        in
        scan db.Ir.instrs
      else dominates t db ub
  | _ -> false
