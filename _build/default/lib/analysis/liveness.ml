(* Classic backward liveness over SSA values (instruction results and
   arguments). Used by the code generators to build live intervals for
   linear-scan register allocation. *)

open Llva

(* A "live unit" is an SSA value identified by its defining id. *)
let def_id_of_value = function
  | Ir.Vreg i -> Some i.Ir.iid
  | Ir.Varg a -> Some a.Ir.aid
  | _ -> None

type t = {
  cfg : Cfg.t;
  live_in : (int, unit) Hashtbl.t array; (* per block index: set of ids *)
  live_out : (int, unit) Hashtbl.t array;
}

let compute (cfg : Cfg.t) : t =
  let n = Cfg.n_blocks cfg in
  let live_in = Array.init n (fun _ -> Hashtbl.create 16) in
  let live_out = Array.init n (fun _ -> Hashtbl.create 16) in
  (* uses and defs per block; phi uses count on the incoming edge, i.e.
     they are live-out of the predecessor, not live-in of the phi block *)
  let defs = Array.init n (fun _ -> Hashtbl.create 16) in
  let upward_uses = Array.init n (fun _ -> Hashtbl.create 16) in
  for k = 0 to n - 1 do
    let b = Cfg.block cfg k in
    List.iter
      (fun (i : Ir.instr) ->
        if i.Ir.op <> Ir.Phi then
          Array.iter
            (fun v ->
              match def_id_of_value v with
              | Some id when not (Hashtbl.mem defs.(k) id) ->
                  Hashtbl.replace upward_uses.(k) id ()
              | _ -> ())
            i.Ir.operands;
        if not (Types.equal i.Ir.ity Types.Void) then
          Hashtbl.replace defs.(k) i.Ir.iid ())
      b.Ir.instrs
  done;
  (* phi edge uses: value v flowing from pred p is live-out of p *)
  let phi_edge_uses = Array.init n (fun _ -> Hashtbl.create 8) in
  for k = 0 to n - 1 do
    let b = Cfg.block cfg k in
    List.iter
      (fun phi ->
        List.iter
          (fun (v, pred) ->
            match def_id_of_value v with
            | Some id when Cfg.is_reachable cfg pred ->
                let p = Cfg.index_of cfg pred in
                Hashtbl.replace phi_edge_uses.(p) id ()
            | _ -> ())
          (Ir.phi_incoming phi))
      (Ir.block_phis b)
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    for k = n - 1 downto 0 do
      (* live_out = union of successor live_in + phi edge uses *)
      let out = live_out.(k) in
      List.iter
        (fun s ->
          Hashtbl.iter
            (fun id () ->
              if not (Hashtbl.mem out id) then begin
                Hashtbl.replace out id ();
                changed := true
              end)
            live_in.(s))
        cfg.Cfg.succs.(k);
      Hashtbl.iter
        (fun id () ->
          if not (Hashtbl.mem out id) then begin
            Hashtbl.replace out id ();
            changed := true
          end)
        phi_edge_uses.(k);
      (* live_in = upward_uses ∪ (live_out \ defs) ∪ phi defs handling:
         a phi's result is defined at block entry, so it is not live-in *)
      let inn = live_in.(k) in
      Hashtbl.iter
        (fun id () ->
          if not (Hashtbl.mem inn id) then begin
            Hashtbl.replace inn id ();
            changed := true
          end)
        upward_uses.(k);
      Hashtbl.iter
        (fun id () ->
          if (not (Hashtbl.mem defs.(k) id)) && not (Hashtbl.mem inn id) then begin
            Hashtbl.replace inn id ();
            changed := true
          end)
        out
    done
  done;
  { cfg; live_in; live_out }

let live_in t (b : Ir.block) =
  t.live_in.(Cfg.index_of t.cfg b) |> Hashtbl.to_seq_keys |> List.of_seq

let live_out t (b : Ir.block) =
  t.live_out.(Cfg.index_of t.cfg b) |> Hashtbl.to_seq_keys |> List.of_seq

let is_live_out t (b : Ir.block) id =
  Hashtbl.mem t.live_out.(Cfg.index_of t.cfg b) id
