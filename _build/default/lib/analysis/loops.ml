(* Natural-loop detection from back edges (an edge whose target dominates
   its source). Provides loop bodies, headers, nesting depth, and
   preheader discovery for LICM. *)

open Llva

type loop = {
  header : Ir.block;
  latches : Ir.block list; (* sources of back edges into the header *)
  body : Ir.block list; (* includes the header *)
  depth : int; (* 1 = outermost *)
}

type t = { loops : loop list; depth_of : (int, int) Hashtbl.t }

let compute (cfg : Cfg.t) (dom : Dominance.t) : t =
  let n = Cfg.n_blocks cfg in
  (* find back edges *)
  let back_edges = ref [] in
  for src = 0 to n - 1 do
    List.iter
      (fun dst ->
        if Dominance.dominates_idx dom dst src then
          back_edges := (src, dst) :: !back_edges)
      cfg.Cfg.succs.(src)
  done;
  (* group back edges by header *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (src, dst) ->
      let existing =
        match Hashtbl.find_opt by_header dst with Some l -> l | None -> []
      in
      Hashtbl.replace by_header dst (src :: existing))
    !back_edges;
  (* natural loop body: header + all nodes reaching a latch without
     passing through the header *)
  let loops_raw =
    Hashtbl.fold
      (fun header latches acc ->
        let in_body = Hashtbl.create 16 in
        Hashtbl.replace in_body header ();
        let rec pull node =
          if not (Hashtbl.mem in_body node) then begin
            Hashtbl.replace in_body node ();
            List.iter pull cfg.Cfg.preds.(node)
          end
        in
        List.iter pull latches;
        let body_idx =
          List.init n (fun k -> k) |> List.filter (Hashtbl.mem in_body)
        in
        (header, latches, body_idx) :: acc)
      by_header []
  in
  (* nesting depth: number of loop bodies containing the block *)
  let depth_of = Hashtbl.create 16 in
  List.iter
    (fun (_, _, body) ->
      List.iter
        (fun k ->
          let b = Cfg.block cfg k in
          let d =
            match Hashtbl.find_opt depth_of b.Ir.blid with
            | Some d -> d
            | None -> 0
          in
          Hashtbl.replace depth_of b.Ir.blid (d + 1))
        body)
    loops_raw;
  let loops =
    List.map
      (fun (header, latches, body) ->
        let hb = Cfg.block cfg header in
        {
          header = hb;
          latches = List.map (Cfg.block cfg) latches;
          body = List.map (Cfg.block cfg) body;
          depth =
            (match Hashtbl.find_opt depth_of hb.Ir.blid with
            | Some d -> d
            | None -> 1);
        })
      loops_raw
  in
  (* outermost loops first *)
  let loops = List.sort (fun a b -> compare a.depth b.depth) loops in
  { loops; depth_of }

let of_function f =
  let cfg = Cfg.build f in
  compute cfg (Dominance.compute cfg)

let loop_depth t (b : Ir.block) =
  match Hashtbl.find_opt t.depth_of b.Ir.blid with Some d -> d | None -> 0

let in_loop l (b : Ir.block) = List.exists (fun x -> x == b) l.body

(* A preheader candidate: the unique predecessor of the header outside the
   loop, if it has a single successor. *)
let preheader l =
  let outside =
    List.filter (fun p -> not (in_loop l p)) (Ir.predecessors l.header)
  in
  match outside with
  | [ p ] when List.length (Ir.successors p) = 1 -> Some p
  | _ -> None
