lib/codegen/intervals.ml: Analysis Array Hashtbl Ir List Llva Types
