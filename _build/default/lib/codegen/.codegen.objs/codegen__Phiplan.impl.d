lib/codegen/phiplan.ml: Hashtbl Ir List Llva
