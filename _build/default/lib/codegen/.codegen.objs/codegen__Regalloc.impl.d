lib/codegen/regalloc.ml: Hashtbl Intervals List Printf
