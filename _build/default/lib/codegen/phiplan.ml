(* Phi elimination plan. The translator "eliminates the φ-nodes by
   introducing copy operations into predecessor basic blocks" (paper
   §3.1). To stay correct for parallel phis (swap/lost-copy problems),
   every phi gets a dedicated transfer slot:

     in each predecessor, before the terminator:   slot[phi] := incoming
     at the start of the phi's own block:          phi      := slot[phi]

   Since all reads of incoming values happen before any slot is consumed,
   simultaneous-assignment semantics are preserved without cycle
   detection. Back-ends lower both copy lists with their own moves; the
   transfer slots are ordinary spill slots. *)

open Llva

type edge_copy = {
  transfer_slot : int; (* index into the per-function transfer slots *)
  src : Ir.value; (* value flowing along this edge *)
  phi : Ir.instr;
}

type t = {
  (* copies to emit at the end of each predecessor block *)
  at_block_end : (int, edge_copy list) Hashtbl.t; (* block id -> copies *)
  (* copies to emit at the start of each block: (slot, phi) *)
  at_block_start : (int, (int * Ir.instr) list) Hashtbl.t;
  n_transfer_slots : int;
}

let build (f : Ir.func) : t =
  let at_block_end = Hashtbl.create 16 in
  let at_block_start = Hashtbl.create 16 in
  let slot_counter = ref 0 in
  List.iter
    (fun (b : Ir.block) ->
      let phis = Ir.block_phis b in
      let entry_copies =
        List.map
          (fun (phi : Ir.instr) ->
            let slot = !slot_counter in
            incr slot_counter;
            List.iter
              (fun (src, pred) ->
                let existing =
                  match Hashtbl.find_opt at_block_end pred.Ir.blid with
                  | Some l -> l
                  | None -> []
                in
                Hashtbl.replace at_block_end pred.Ir.blid
                  (existing @ [ { transfer_slot = slot; src; phi } ]))
              (Ir.phi_incoming phi);
            (slot, phi))
          phis
      in
      if entry_copies <> [] then
        Hashtbl.replace at_block_start b.Ir.blid entry_copies)
    f.Ir.fblocks;
  { at_block_end; at_block_start; n_transfer_slots = !slot_counter }

let end_copies t (b : Ir.block) =
  match Hashtbl.find_opt t.at_block_end b.Ir.blid with
  | Some l -> l
  | None -> []

let start_copies t (b : Ir.block) =
  match Hashtbl.find_opt t.at_block_start b.Ir.blid with
  | Some l -> l
  | None -> []
