(* Register allocation over IR-level live intervals.

   Two allocators, matching the paper's two back-ends:
   - [linear_scan]: Poletto–Sarkar linear scan with weight-based spilling
     (the "higher quality" SPARC V9 back-end);
   - [spill_everything]: every value lives in a stack slot (the paper's
     X86 back-end performed "virtually no optimization and very simple
     register allocation resulting in significant spill code"). *)

type location = Reg of int | Slot of int

type assignment = {
  locs : (int, location) Hashtbl.t; (* value id -> location *)
  mutable n_slots : int;
  mutable used_regs_int : int list; (* physical indices actually used *)
  mutable used_regs_float : int list;
}

let location a vid =
  match Hashtbl.find_opt a.locs vid with
  | Some l -> l
  | None -> invalid_arg (Printf.sprintf "Regalloc.location: unknown value %d" vid)

let location_opt a vid = Hashtbl.find_opt a.locs vid

let fresh_slot a =
  let s = a.n_slots in
  a.n_slots <- s + 1;
  Slot s

let spill_everything (ivs : Intervals.t) : assignment =
  let a =
    { locs = Hashtbl.create 64; n_slots = 0; used_regs_int = [];
      used_regs_float = [] }
  in
  List.iter
    (fun (iv : Intervals.interval) ->
      Hashtbl.replace a.locs iv.Intervals.vid (fresh_slot a))
    (Intervals.all ivs);
  a

(* [int_regs] and [float_regs] are the allocatable physical register
   indices for each class (scratch registers must be excluded by the
   caller). *)
let linear_scan ~(int_regs : int list) ~(float_regs : int list)
    (ivs : Intervals.t) : assignment =
  let a =
    { locs = Hashtbl.create 64; n_slots = 0; used_regs_int = [];
      used_regs_float = [] }
  in
  let run klass regs =
    let free = ref regs in
    (* active: (end_pos, reg, interval) sorted by end_pos *)
    let active : (int * int * Intervals.interval) list ref = ref [] in
    let note_used r =
      match klass with
      | Intervals.Kint ->
          if not (List.mem r a.used_regs_int) then
            a.used_regs_int <- r :: a.used_regs_int
      | Intervals.Kfloat ->
          if not (List.mem r a.used_regs_float) then
            a.used_regs_float <- r :: a.used_regs_float
    in
    let expire pos =
      let expired, still =
        List.partition (fun (e, _, _) -> e < pos) !active
      in
      List.iter (fun (_, r, _) -> free := r :: !free) expired;
      active := still
    in
    List.iter
      (fun (iv : Intervals.interval) ->
        if iv.Intervals.klass = klass then begin
          expire iv.Intervals.start_pos;
          match !free with
          | r :: rest ->
              free := rest;
              Hashtbl.replace a.locs iv.Intervals.vid (Reg r);
              note_used r;
              active :=
                List.sort compare ((iv.Intervals.end_pos, r, iv) :: !active)
          | [] -> (
              (* spill the interval with the lowest weight among active +
                 current *)
              let worst =
                List.fold_left
                  (fun (acc : (int * int * Intervals.interval) option) entry ->
                    let _, _, cand = entry in
                    match acc with
                    | None -> Some entry
                    | Some (_, _, best) ->
                        if cand.Intervals.weight < best.Intervals.weight then
                          Some entry
                        else acc)
                  None !active
              in
              match worst with
              | Some ((_, r, spilled) as entry)
                when spilled.Intervals.weight < iv.Intervals.weight ->
                  (* steal the register *)
                  Hashtbl.replace a.locs spilled.Intervals.vid (fresh_slot a);
                  active := List.filter (fun e -> e <> entry) !active;
                  Hashtbl.replace a.locs iv.Intervals.vid (Reg r);
                  note_used r;
                  active :=
                    List.sort compare ((iv.Intervals.end_pos, r, iv) :: !active)
              | _ -> Hashtbl.replace a.locs iv.Intervals.vid (fresh_slot a))
        end)
      (Intervals.all ivs)
  in
  run Intervals.Kint int_regs;
  run Intervals.Kfloat float_regs;
  a
