lib/llee/llee.ml: Array Decode Digest Encode Hashtbl Int64 Ir List Llva Marshal Option Printf Profile Sparclite Storage String Trace Types Unix Vmem X86lite
