lib/llee/profile.ml: Buffer Hashtbl Interp Ir List Llva Printf String
