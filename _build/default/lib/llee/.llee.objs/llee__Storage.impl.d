lib/llee/storage.ml: Array Filename Hashtbl String Sys Unix
