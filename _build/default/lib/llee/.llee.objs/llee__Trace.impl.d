lib/llee/trace.ml: Array Hashtbl Ir List Llva Profile
