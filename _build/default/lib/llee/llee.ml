(* LLEE: the Low-Level Execution Environment (paper §4.1).

   "Offline translation when possible, online translation whenever
   necessary": given virtual object code, LLEE looks for cached native
   translations through the OS-independent storage API, validates their
   timestamps, and falls back to JIT-compiling functions on demand; any
   newly translated code is written back to the cache when storage is
   available. During idle time the OS may request offline translation
   ([translate_offline]) so later launches need no JIT at all.

   Profiles collected during execution drive the software trace cache
   ([reoptimize]): hot traces re-lay-out the code and the program is
   retranslated. Self-modifying code (the §3.4 intrinsics) invalidates
   per-function cache entries. *)

open Llva

(* re-export the library's submodules (llee.ml is the library interface) *)
module Storage = Storage
module Profile = Profile
module Trace = Trace

type target = X86 | Sparc

let target_name = function X86 -> "x86lite" | Sparc -> "sparclite"

type stats = {
  mutable translations : int; (* functions JIT-compiled this run *)
  mutable cache_hits : int; (* functions loaded from offline storage *)
  mutable translate_time : float; (* seconds spent translating *)
  mutable cycles : int64; (* simulated execution cycles *)
  mutable native_instrs : int64; (* dynamic native instruction count *)
  mutable invalidations : int; (* SMC-triggered cache invalidations *)
}

let fresh_stats () =
  {
    translations = 0;
    cache_hits = 0;
    translate_time = 0.0;
    cycles = 0L;
    native_instrs = 0L;
    invalidations = 0;
  }

type t = {
  bytes : string; (* the virtual object code as shipped *)
  m : Ir.modl;
  key : string; (* content hash: identifies the program version *)
  storage : Storage.t;
  target : target;
  program_timestamp : float;
  stats : stats;
}

(* "Load the executable": decode virtual object code, remember its content
   hash (this plays the role of the program timestamp check: a changed
   program never matches stale cache entries, and an explicitly newer
   [timestamp] invalidates older ones). *)
let load ?(storage = Storage.none) ?(timestamp = 0.0) ~target bytes =
  let m = Decode.decode bytes in
  {
    bytes;
    m;
    key = Digest.to_hex (Digest.string bytes);
    storage;
    target;
    program_timestamp = timestamp;
    stats = fresh_stats ();
  }

let of_module ?(storage = Storage.none) ?(timestamp = 0.0) ~target m =
  load ~storage ~timestamp ~target (Encode.encode m)

let cache_name t fname =
  Printf.sprintf "%s.%s.%s" t.key fname (target_name t.target)

let read_cached t fname : string option =
  match t.storage.Storage.read (cache_name t fname) with
  | Some entry when entry.Storage.timestamp >= t.program_timestamp ->
      Some entry.Storage.data
  | Some _ ->
      (* stale translation: drop it *)
      t.storage.Storage.delete (cache_name t fname);
      None
  | None -> None

(* Cached entries are framed with a magic prefix so a corrupted or
   foreign cache entry is treated as a miss instead of crashing the
   deserializer. *)
let cache_magic = "LLEE1\x00"

let frame_entry data = cache_magic ^ data

let unframe_entry data =
  let n = String.length cache_magic in
  if String.length data > n && String.sub data 0 n = cache_magic then
    Some (String.sub data n (String.length data - n))
  else None

let timed t f =
  let start = Unix.gettimeofday () in
  let result = f () in
  t.stats.translate_time <-
    t.stats.translate_time +. (Unix.gettimeofday () -. start);
  result

(* ---------- per-target drivers ---------- *)

let find_function t name =
  List.find_opt
    (fun (f : Ir.func) ->
      String.equal f.Ir.fname name && not (Ir.is_declaration f))
    t.m.Ir.funcs

let run_x86 t ?fuel () =
  let image = Vmem.Image.load t.m in
  let cmod =
    { X86lite.Compile.cm = t.m; image; funcs = Hashtbl.create 32 }
  in
  let lookup (st : X86lite.Sim.state) name =
    ignore st;
    match Hashtbl.find_opt cmod.X86lite.Compile.funcs name with
    | Some cf -> Some cf
    | None -> (
        match find_function t name with
        | None -> None (* external: the simulator dispatches by name *)
        | Some f -> (
            match
              Option.bind (read_cached t name) (fun data ->
                  match unframe_entry data with
                  | Some payload -> (
                      try Some (Marshal.from_string payload 0 : X86lite.Compile.cfunc)
                      with Failure _ -> None)
                  | None -> None)
            with
            | Some cf ->
                t.stats.cache_hits <- t.stats.cache_hits + 1;
                Hashtbl.replace cmod.X86lite.Compile.funcs name cf;
                Some cf
            | None ->
                (* JIT: translate on demand, write back to the cache *)
                let cf =
                  timed t (fun () ->
                      X86lite.Compile.compile_function t.m image f)
                in
                t.stats.translations <- t.stats.translations + 1;
                t.storage.Storage.write (cache_name t name)
                  (frame_entry (Marshal.to_string cf []));
                Hashtbl.replace cmod.X86lite.Compile.funcs name cf;
                Some cf))
  in
  let st = X86lite.Sim.create ?fuel cmod in
  st.X86lite.Sim.lookup <- lookup;
  st.X86lite.Sim.regs.(X86lite.X86.sp) <- Vmem.Memory.stack_top;
  st.X86lite.Sim.regs.(X86lite.X86.bp) <- Vmem.Memory.stack_top;
  let code =
    match X86lite.Sim.call_function st "main" [] with
    | v -> Int64.to_int (Ir.normalize_int Types.Int v)
    | exception Vmem.Runtime.Exit_called c -> c
  in
  t.stats.cycles <- st.X86lite.Sim.cycles;
  t.stats.native_instrs <- st.X86lite.Sim.icount;
  t.stats.invalidations <- Hashtbl.length st.X86lite.Sim.redirects;
  (code, X86lite.Sim.output st)

let run_sparc t ?fuel () =
  let image = Vmem.Image.load t.m in
  let cmod =
    { Sparclite.Compile.cm = t.m; image; funcs = Hashtbl.create 32 }
  in
  let lookup (st : Sparclite.Sim.state) name =
    ignore st;
    match Hashtbl.find_opt cmod.Sparclite.Compile.funcs name with
    | Some cf -> Some cf
    | None -> (
        match find_function t name with
        | None -> None
        | Some f -> (
            match
              Option.bind (read_cached t name) (fun data ->
                  match unframe_entry data with
                  | Some payload -> (
                      try Some (Marshal.from_string payload 0 : Sparclite.Compile.cfunc)
                      with Failure _ -> None)
                  | None -> None)
            with
            | Some cf ->
                t.stats.cache_hits <- t.stats.cache_hits + 1;
                Hashtbl.replace cmod.Sparclite.Compile.funcs name cf;
                Some cf
            | None ->
                let cf =
                  timed t (fun () ->
                      Sparclite.Compile.compile_function t.m image f)
                in
                t.stats.translations <- t.stats.translations + 1;
                t.storage.Storage.write (cache_name t name)
                  (frame_entry (Marshal.to_string cf []));
                Hashtbl.replace cmod.Sparclite.Compile.funcs name cf;
                Some cf))
  in
  let st = Sparclite.Sim.create ?fuel cmod in
  st.Sparclite.Sim.lookup <- lookup;
  st.Sparclite.Sim.regs.(Sparclite.Sparc.sp) <- Vmem.Memory.stack_top;
  st.Sparclite.Sim.regs.(Sparclite.Sparc.fp) <- Vmem.Memory.stack_top;
  let code =
    match Sparclite.Sim.call_function st "main" [] with
    | v -> Int64.to_int (Ir.normalize_int Types.Int v)
    | exception Vmem.Runtime.Exit_called c -> c
  in
  t.stats.cycles <- st.Sparclite.Sim.cycles;
  t.stats.native_instrs <- st.Sparclite.Sim.icount;
  t.stats.invalidations <- Hashtbl.length st.Sparclite.Sim.redirects;
  (code, Sparclite.Sim.output st)

(* Launch the program: JIT with transparent offline caching. *)
let run ?fuel t =
  match t.target with X86 -> run_x86 t ?fuel () | Sparc -> run_sparc t ?fuel ()

(* Idle-time offline translation: translate every function and populate
   the cache without executing (paper: "flagging it for translation and
   not actual execution"). *)
let translate_offline t =
  if not t.storage.Storage.available then
    invalid_arg "Llee.translate_offline: no storage API registered";
  let image = Vmem.Image.load t.m in
  List.iter
    (fun (f : Ir.func) ->
      if not (Ir.is_declaration f) then
        match t.target with
        | X86 ->
            let cf =
              timed t (fun () -> X86lite.Compile.compile_function t.m image f)
            in
            t.stats.translations <- t.stats.translations + 1;
            t.storage.Storage.write
              (cache_name t f.Ir.fname)
              (frame_entry (Marshal.to_string cf []))
        | Sparc ->
            let cf =
              timed t (fun () -> Sparclite.Compile.compile_function t.m image f)
            in
            t.stats.translations <- t.stats.translations + 1;
            t.storage.Storage.write
              (cache_name t f.Ir.fname)
              (frame_entry (Marshal.to_string cf [])))
    t.m.Ir.funcs

(* Collect a profile with the instrumented reference engine, then apply
   the software trace cache: hot-trace relayout + retranslation. Returns
   the relaid-out engine (cache entries of the old layout are unreachable
   through the new content hash). *)
let fresh_run t = { t with stats = fresh_stats () }

let reoptimize ?fuel ?(validate = true) t : t * int =
  (* profile and relayout the same decoded copy so block ids line up *)
  let m = Decode.decode t.bytes in
  let prof, _, _ = Profile.collect ?fuel m in
  let moved = Trace.relayout_module prof m in
  let t' =
    of_module ~storage:t.storage ~timestamp:t.program_timestamp
      ~target:t.target m
  in
  if moved = 0 then (t', 0)
  else if not validate then (t', moved)
  else begin
    (* idle-time validation: block reordering also perturbs downstream
       register allocation, so measure both translations and keep the
       faster one (this is exactly the offline feedback loop the storage
       API enables, §4.2) *)
    let baseline = fresh_run t in
    ignore (run ?fuel:(Option.map (fun f -> f * 8) fuel) baseline);
    let candidate = fresh_run t' in
    ignore (run ?fuel:(Option.map (fun f -> f * 8) fuel) candidate);
    if
      Int64.compare candidate.stats.cycles baseline.stats.cycles < 0
    then (fresh_run t', moved)
    else (fresh_run t, 0)
  end

