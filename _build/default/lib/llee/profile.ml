(* Edge profiling (paper §4.2: "static instrumentation to assist runtime
   path profiling ... using the CFG at runtime to perform path profiling
   within frequently executed loop regions"). Profiles are keyed by block
   ids and serializable, so LLEE can persist them through the storage API
   for idle-time profile-guided optimization. *)

open Llva

type t = {
  edges : (int * int, int) Hashtbl.t; (* (src blid, dst blid) -> count *)
  blocks : (int, int) Hashtbl.t; (* blid -> execution count *)
}

let create () = { edges = Hashtbl.create 64; blocks = Hashtbl.create 64 }

let bump tbl key n =
  let cur = match Hashtbl.find_opt tbl key with Some c -> c | None -> 0 in
  Hashtbl.replace tbl key (cur + n)

let record t (src : Ir.block) (dst : Ir.block) =
  bump t.edges (src.Ir.blid, dst.Ir.blid) 1;
  bump t.blocks dst.Ir.blid 1

let edge_count t (src : Ir.block) (dst : Ir.block) =
  match Hashtbl.find_opt t.edges (src.Ir.blid, dst.Ir.blid) with
  | Some c -> c
  | None -> 0

let block_count t (b : Ir.block) =
  match Hashtbl.find_opt t.blocks b.Ir.blid with Some c -> c | None -> 0

(* Attach to an interpreter and run %main, collecting the profile. *)
let collect ?fuel (m : Ir.modl) : t * int * string =
  let st = Interp.create ?fuel m in
  let t = create () in
  st.Interp.on_edge <- Some (fun src dst -> record t src dst);
  let code = Interp.run_main st in
  (t, code, Interp.output st)

(* ---------- serialization (for offline caching) ---------- *)

let serialize t =
  let buf = Buffer.create 256 in
  Hashtbl.iter
    (fun (s, d) c -> Buffer.add_string buf (Printf.sprintf "e %d %d %d\n" s d c))
    t.edges;
  Hashtbl.iter
    (fun b c -> Buffer.add_string buf (Printf.sprintf "b %d %d\n" b c))
    t.blocks;
  Buffer.contents buf

let deserialize data =
  let t = create () in
  String.split_on_char '\n' data
  |> List.iter (fun line ->
         match String.split_on_char ' ' line with
         | [ "e"; s; d; c ] ->
             Hashtbl.replace t.edges
               (int_of_string s, int_of_string d)
               (int_of_string c)
         | [ "b"; b; c ] ->
             Hashtbl.replace t.blocks (int_of_string b) (int_of_string c)
         | _ -> ());
  t
