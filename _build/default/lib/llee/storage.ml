(* The OS-independent storage API of paper §4.1: "routines to create,
   delete, and query the size of an offline cache, read or write a vector
   of N bytes tagged by a unique string name from/to a cache, and check a
   timestamp". The OS may implement it (in-memory or on-disk here); when
   absent ([none]) everything still works, with online translation on
   every launch — exactly the DAISY/Crusoe situation the paper improves
   on. *)

type entry = { data : string; timestamp : float }

type t = {
  read : string -> entry option;
  write : string -> string -> unit;
  delete : string -> unit;
  size : unit -> int; (* total bytes cached *)
  available : bool;
}

(* No OS support: every read misses, writes are dropped. *)
let none =
  {
    read = (fun _ -> None);
    write = (fun _ _ -> ());
    delete = (fun _ -> ());
    size = (fun () -> 0);
    available = false;
  }

(* An in-memory cache (models OS support with a RAM-backed store). The
   clock is a logical counter so behaviour is deterministic. *)
let in_memory () =
  let table : (string, entry) Hashtbl.t = Hashtbl.create 32 in
  let clock = ref 0.0 in
  {
    read = (fun name -> Hashtbl.find_opt table name);
    write =
      (fun name data ->
        clock := !clock +. 1.0;
        Hashtbl.replace table name { data; timestamp = !clock });
    delete = (fun name -> Hashtbl.remove table name);
    size =
      (fun () ->
        Hashtbl.fold (fun _ e acc -> acc + String.length e.data) table 0);
    available = true;
  }

(* An on-disk cache rooted at [dir]; names are sanitized to file names. *)
let on_disk ~dir =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let path name =
    let safe =
      String.map
        (fun c ->
          match c with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' | '_' -> c
          | _ -> '_')
        name
    in
    Filename.concat dir safe
  in
  {
    read =
      (fun name ->
        let p = path name in
        if Sys.file_exists p then begin
          let ic = open_in_bin p in
          let len = in_channel_length ic in
          let data = really_input_string ic len in
          close_in ic;
          let timestamp = (Unix.stat p).Unix.st_mtime in
          Some { data; timestamp }
        end
        else None);
    write =
      (fun name data ->
        let oc = open_out_bin (path name) in
        output_string oc data;
        close_out oc);
    delete =
      (fun name -> try Sys.remove (path name) with Sys_error _ -> ());
    size =
      (fun () ->
        Array.fold_left
          (fun acc f ->
            try acc + (Unix.stat (Filename.concat dir f)).Unix.st_size
            with Unix.Unix_error _ -> acc)
          0 (Sys.readdir dir));
    available = true;
  }
