(* The software trace cache: form hot traces from an edge profile and
   re-lay-out each function so trace blocks are consecutive. With the
   back-ends' fall-through relaxation, a good layout removes taken
   branches from the hot path — the paper's trace-driven runtime
   reoptimization (§4.2), in its machine-independent form. *)

open Llva

type trace = { entry : Ir.block; blocks : Ir.block list }

(* Grow a trace from [start], repeatedly following the hottest successor
   edge, stopping at cold edges, repeats, or trace length limits. *)
let grow_trace (prof : Profile.t) ?(max_len = 16) ?(min_ratio = 0.6)
    (start : Ir.block) : trace =
  let in_trace = Hashtbl.create 8 in
  Hashtbl.replace in_trace start.Ir.blid ();
  let rec go acc cur len =
    if len >= max_len then List.rev acc
    else
      let succs = Ir.successors cur in
      let total =
        List.fold_left (fun t s -> t + Profile.edge_count prof cur s) 0 succs
      in
      if total = 0 then List.rev acc
      else
        let best =
          List.fold_left
            (fun best s ->
              let c = Profile.edge_count prof cur s in
              match best with
              | Some (_, bc) when bc >= c -> best
              | _ -> Some (s, c))
            None succs
        in
        match best with
        | Some (s, c)
          when float_of_int c >= min_ratio *. float_of_int total
               && not (Hashtbl.mem in_trace s.Ir.blid) ->
            Hashtbl.replace in_trace s.Ir.blid ();
            go (s :: acc) s (len + 1)
        | _ -> List.rev acc
  in
  { entry = start; blocks = start :: go [] start 1 }

(* Pick trace seeds: the hottest blocks (typically loop headers), hottest
   first, skipping blocks already covered by an earlier trace. *)
let form_traces (prof : Profile.t) ?(max_traces = 8) ?(min_count = 16)
    (f : Ir.func) : trace list =
  let candidates =
    List.filter
      (fun b -> Profile.block_count prof b >= min_count)
      f.Ir.fblocks
    |> List.sort
         (fun a b ->
           compare (Profile.block_count prof b) (Profile.block_count prof a))
  in
  let covered = Hashtbl.create 16 in
  let traces = ref [] in
  List.iter
    (fun b ->
      if
        List.length !traces < max_traces
        && not (Hashtbl.mem covered b.Ir.blid)
      then begin
        let t = grow_trace prof b in
        if List.length t.blocks >= 2 then begin
          List.iter
            (fun blk -> Hashtbl.replace covered blk.Ir.blid ())
            t.blocks;
          traces := t :: !traces
        end
      end)
    candidates;
  List.rev !traces

(* Re-lay-out a function with bottom-up chain merging (Pettis–Hansen):
   starting from singleton chains, the hottest edges glue the chain ending
   in their source to the chain starting with their target, so hot paths
   and loop bodies become fall-through runs. The entry block's chain is
   placed first; remaining chains follow in original-first-block order
   (keeping cold code where it was). Returns the number of blocks that
   changed position. *)
let relayout_function (prof : Profile.t) (f : Ir.func) : int =
  if Ir.is_declaration f || List.length f.Ir.fblocks < 3 then 0
  else begin
    (* collect profiled edges of this function, hottest first *)
    let edges = ref [] in
    List.iter
      (fun (b : Ir.block) ->
        List.iter
          (fun s ->
            let c = Profile.edge_count prof b s in
            if c > 0 then edges := (c, b, s) :: !edges)
          (Ir.successors b))
      f.Ir.fblocks;
    if !edges = [] then 0
    else begin
      let edges =
        List.sort (fun (c1, _, _) (c2, _, _) -> compare c2 c1) !edges
      in
      (* chain machinery: each block belongs to one chain (a block list);
         chain_of maps block id -> chain id; chains grow by concatenation *)
      let chain_of = Hashtbl.create 16 in
      let chains = Hashtbl.create 16 in
      List.iteri
        (fun k (b : Ir.block) ->
          Hashtbl.replace chain_of b.Ir.blid k;
          Hashtbl.replace chains k [ b ])
        f.Ir.fblocks;
      List.iter
        (fun (_, (a : Ir.block), (b : Ir.block)) ->
          let ca = Hashtbl.find chain_of a.Ir.blid in
          let cb = Hashtbl.find chain_of b.Ir.blid in
          if ca <> cb then begin
            let la = Hashtbl.find chains ca and lb = Hashtbl.find chains cb in
            (* merge only if a ends its chain and b starts its chain *)
            let a_last =
              match List.rev la with x :: _ -> x == a | [] -> false
            in
            let b_first = match lb with x :: _ -> x == b | [] -> false in
            if a_last && b_first then begin
              let merged = la @ lb in
              Hashtbl.replace chains ca merged;
              Hashtbl.remove chains cb;
              List.iter
                (fun (x : Ir.block) -> Hashtbl.replace chain_of x.Ir.blid ca)
                lb
            end
          end)
        edges;
      (* order: entry chain first, others by original first-block order *)
      let entry = Ir.entry_block f in
      let entry_chain = Hashtbl.find chain_of entry.Ir.blid in
      let order = ref (Hashtbl.find chains entry_chain) in
      List.iter
        (fun (b : Ir.block) ->
          let cid = Hashtbl.find chain_of b.Ir.blid in
          if cid <> entry_chain then
            match Hashtbl.find_opt chains cid with
            | Some blocks ->
                (match blocks with
                | first :: _ when first == b ->
                    order := !order @ blocks;
                    Hashtbl.remove chains cid
                | _ -> ())
            | None -> ())
        f.Ir.fblocks;
      (* safety: every block exactly once *)
      if List.length !order <> List.length f.Ir.fblocks then 0
      else begin
        (* keep the new layout only if the profile says it takes fewer
           branches: a taken branch is any hot edge that is not a
           fall-through to the next block in layout order *)
        let estimated_taken layout =
          (* dynamic count of unconditional jumps the back-ends cannot
             relax away: a conditional branch is free when either target
             is the fall-through (branch inversion handles the rest) *)
          let next = Hashtbl.create 16 in
          let rec record = function
            | a :: (b : Ir.block) :: rest ->
                Hashtbl.replace next a.Ir.blid b.Ir.blid;
                record (b :: rest)
            | _ -> ()
          in
          record layout;
          let is_next (b : Ir.block) (s : Ir.block) =
            Hashtbl.find_opt next b.Ir.blid = Some s.Ir.blid
          in
          List.fold_left
            (fun acc (b : Ir.block) ->
              match Ir.terminator b with
              | Some t -> (
                  match (t.Ir.op, Array.length t.Ir.operands) with
                  | Ir.Br, 1 ->
                      let d = Ir.block_of_value t.Ir.operands.(0) in
                      if is_next b d then acc else acc + Profile.edge_count prof b d
                  | Ir.Br, _ ->
                      let tt = Ir.block_of_value t.Ir.operands.(1) in
                      let ff = Ir.block_of_value t.Ir.operands.(2) in
                      if is_next b ff || is_next b tt then acc
                      else acc + Profile.edge_count prof b ff
                  | Ir.Mbr, _ ->
                      let d = Ir.block_of_value t.Ir.operands.(1) in
                      if is_next b d then acc else acc + Profile.edge_count prof b d
                  | Ir.Invoke, _ ->
                      let n = Ir.block_of_value t.Ir.operands.(1) in
                      if is_next b n then acc else acc + Profile.edge_count prof b n
                  | _ -> acc)
              | None -> acc)
            0 layout
        in
        if estimated_taken !order >= estimated_taken f.Ir.fblocks then 0
        else begin
          let moved =
            List.fold_left2
              (fun acc a b -> if a == b then acc else acc + 1)
              0 f.Ir.fblocks !order
          in
          f.Ir.fblocks <- !order;
          moved
        end
      end
    end
  end

let relayout_module (prof : Profile.t) (m : Ir.modl) : int =
  List.fold_left (fun acc f -> acc + relayout_function prof f) 0 m.Ir.funcs
