lib/llva/builder.ml: Array Int64 Ir List Printf Types
