lib/llva/builder.mli: Ir Types
