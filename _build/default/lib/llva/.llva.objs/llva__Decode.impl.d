lib/llva/decode.ml: Array Char Int64 Ir List Printf String Target Types
