lib/llva/decode.mli: Ir
