lib/llva/encode.ml: Array Buffer Char Hashtbl Int64 Ir List Option Pretty String Target Types
