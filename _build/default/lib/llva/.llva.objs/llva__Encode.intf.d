lib/llva/encode.mli: Ir
