lib/llva/eval.ml: Bool Float Int32 Int64 Ir Printf Target Types
