lib/llva/eval.mli: Ir Target Types
