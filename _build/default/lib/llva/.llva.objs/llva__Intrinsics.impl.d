lib/llva/intrinsics.ml: List String
