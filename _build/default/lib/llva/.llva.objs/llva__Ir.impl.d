lib/llva/ir.ml: Array Int64 List Printf String Target Types
