lib/llva/ir.mli: Target Types
