lib/llva/lexer.ml: Buffer Char Int64 Printf String
