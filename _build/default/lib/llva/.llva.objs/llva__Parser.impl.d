lib/llva/parser.ml: Int64 Ir Lexer List Printf String Target Types
