lib/llva/pretty.ml: Array Buffer Char Float Hashtbl Int64 Ir List Printf String Target Types
