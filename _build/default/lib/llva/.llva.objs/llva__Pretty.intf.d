lib/llva/pretty.mli: Ir
