lib/llva/resolve.ml: Array Hashtbl Int64 Ir List Option Parser Printf Types
