lib/llva/resolve.mli: Ir Parser
