lib/llva/target.ml: Printf
