lib/llva/target.mli:
