lib/llva/types.ml: Format Hashtbl List Printf String Target
