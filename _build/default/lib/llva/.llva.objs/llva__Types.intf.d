lib/llva/types.mli: Format Hashtbl Target
