lib/llva/verify.ml: Array Hashtbl Ir List Printf Types
