lib/llva/verify.mli: Ir
