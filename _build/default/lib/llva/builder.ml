(* A positioned instruction builder over the LLVA IR, in the style of
   LLVM's IRBuilder. All typed construction goes through here; each emit
   function checks the operand types it can check locally (the verifier
   re-checks whole functions). *)

open Ir

type t = {
  mutable block : block option;
  env : Types.env; (* named-type resolution for the enclosing module *)
  mutable name_counter : int;
}

let create m = { block = None; env = Ir.type_env m; name_counter = 0 }

let create_no_module () =
  { block = None; env = Types.empty_env (); name_counter = 0 }

let position_at_end b builder = builder.block <- Some b

let insertion_block builder =
  match builder.block with
  | Some b -> b
  | None -> invalid_arg "Builder: no insertion block set"

let fresh_name builder prefix =
  builder.name_counter <- builder.name_counter + 1;
  Printf.sprintf "%s.%d" prefix builder.name_counter

let insert builder i =
  append_instr (insertion_block builder) i;
  i

let emit ?name builder op operands ty =
  let name =
    match name with
    | Some n -> n
    | None -> if Types.equal ty Types.Void then "" else fresh_name builder "tmp"
  in
  Vreg (insert builder (mk_instr ~name op (Array.of_list operands) ty))

(* ---------- arithmetic and logic ---------- *)

let check_same what a b =
  let ta = type_of_value a and tb = type_of_value b in
  if not (Types.equal ta tb) then
    invalid_arg
      (Printf.sprintf "Builder.%s: operand types differ: %s vs %s" what
         (Types.to_string ta) (Types.to_string tb))

let binop ?name builder op a b =
  (match op with
  | Shl | Shr ->
      (* shift amount is ubyte in LLVA *)
      if not (Types.equal (type_of_value b) Types.Ubyte) then
        invalid_arg "Builder: shift amount must be ubyte"
  | _ -> check_same (binop_name op) a b);
  emit ?name builder (Binop op) [ a; b ] (type_of_value a)

let add ?name b x y = binop ?name b Add x y
let sub ?name b x y = binop ?name b Sub x y
let mul ?name b x y = binop ?name b Mul x y
let div ?name b x y = binop ?name b Div x y
let rem ?name b x y = binop ?name b Rem x y
let and_ ?name b x y = binop ?name b And x y
let or_ ?name b x y = binop ?name b Or x y
let xor ?name b x y = binop ?name b Xor x y
let shl ?name b x y = binop ?name b Shl x y
let shr ?name b x y = binop ?name b Shr x y

let setcc ?name builder cmp a b =
  check_same (cmp_name cmp) a b;
  emit ?name builder (Setcc cmp) [ a; b ] Types.Bool

let seteq ?name b x y = setcc ?name b Eq x y
let setne ?name b x y = setcc ?name b Ne x y
let setlt ?name b x y = setcc ?name b Lt x y
let setgt ?name b x y = setcc ?name b Gt x y
let setle ?name b x y = setcc ?name b Le x y
let setge ?name b x y = setcc ?name b Ge x y

(* ---------- memory ---------- *)

let alloca ?name ?count builder elem_ty =
  let operands = match count with None -> [] | Some c -> [ c ] in
  emit ?name builder Alloca operands (Types.Pointer elem_ty)

(* Compute the result type of a getelementptr given the pointer type and
   index list. First index steps over the pointer; subsequent indexes walk
   into arrays (any integer index) and structures (constant uint field
   numbers). *)
let gep_result_type env ptr_ty indexes =
  let elem = Types.pointee env ptr_ty in
  let rec walk ty = function
    | [] -> ty
    | idx :: rest -> (
        match Types.resolve env ty with
        | Types.Array (_, elem) -> walk elem rest
        | Types.Struct fields -> (
            match idx with
            | Const { ckind = Cint n; _ } -> (
                match List.nth_opt fields (Int64.to_int n) with
                | Some fty -> walk fty rest
                | None -> invalid_arg "gep: struct field index out of range")
            | _ -> invalid_arg "gep: struct index must be a constant")
        | t ->
            invalid_arg
              ("gep: cannot index into " ^ Types.to_string t))
  in
  match indexes with
  | [] -> Types.Pointer elem
  | _first :: rest -> Types.Pointer (walk elem rest)

let getelementptr ?name builder ptr indexes =
  let ty = gep_result_type builder.env (type_of_value ptr) indexes in
  emit ?name builder Getelementptr (ptr :: indexes) ty

let load ?name builder ptr =
  let elem = Types.pointee builder.env (type_of_value ptr) in
  if not (Types.is_scalar (Types.resolve builder.env elem)) then
    invalid_arg ("Builder.load: non-scalar load of " ^ Types.to_string elem);
  emit ?name builder Load [ ptr ] elem

let store builder v ptr =
  let elem = Types.pointee builder.env (type_of_value ptr) in
  if not (Types.equal_resolved builder.env (type_of_value v) elem) then
    invalid_arg
      (Printf.sprintf "Builder.store: storing %s into %s*"
         (Types.to_string (type_of_value v))
         (Types.to_string elem));
  ignore (emit builder Store [ v; ptr ] Types.Void)

(* ---------- control flow ---------- *)

let ret builder v =
  ignore
    (emit builder Ret (match v with None -> [] | Some v -> [ v ]) Types.Void)

let br builder dest = ignore (emit builder Br [ Vblock dest ] Types.Void)

let cond_br builder cond iftrue iffalse =
  if not (Types.equal (type_of_value cond) Types.Bool) then
    invalid_arg "Builder.cond_br: condition must be bool";
  ignore (emit builder Br [ cond; Vblock iftrue; Vblock iffalse ] Types.Void)

let mbr builder v ~default cases =
  let case_ops =
    List.concat_map (fun (c, b) -> [ const_int (type_of_value v) c; Vblock b ]) cases
  in
  ignore (emit builder Mbr ([ v; Vblock default ] @ case_ops) Types.Void)

let unwind builder = ignore (emit builder Unwind [] Types.Void)

(* ---------- calls ---------- *)

let call ?name builder callee args =
  let ret_ty, param_tys, varargs =
    Types.function_signature builder.env (type_of_value callee)
  in
  let nparams = List.length param_tys in
  if List.length args < nparams || ((not varargs) && List.length args > nparams)
  then invalid_arg "Builder.call: arity mismatch";
  List.iteri
    (fun i arg ->
      match List.nth_opt param_tys i with
      | Some pty ->
          if not (Types.equal_resolved builder.env (type_of_value arg) pty) then
            invalid_arg
              (Printf.sprintf "Builder.call: arg %d has type %s, expected %s" i
                 (Types.to_string (type_of_value arg))
                 (Types.to_string pty))
      | None -> ())
    args;
  emit ?name builder Call (callee :: args) ret_ty

let invoke ?name builder callee args ~normal ~except =
  let ret_ty, _, _ = Types.function_signature builder.env (type_of_value callee) in
  emit ?name builder Invoke
    ((callee :: Vblock normal :: Vblock except :: []) @ args)
    ret_ty

(* ---------- misc ---------- *)

let cast ?name builder v dst_ty =
  emit ?name builder Cast [ v ] dst_ty

let phi ?name builder ty incoming =
  let operands = List.concat_map (fun (v, b) -> [ v; Vblock b ]) incoming in
  emit ?name builder Phi operands ty

(* Phis must precede non-phis: place at block front. *)
let phi_at_front ?name builder ty incoming =
  let name = match name with Some n -> n | None -> fresh_name builder "phi" in
  let operands =
    Array.of_list (List.concat_map (fun (v, b) -> [ v; Vblock b ]) incoming)
  in
  let i = mk_instr ~name Phi operands ty in
  prepend_instr (insertion_block builder) i;
  Vreg i
