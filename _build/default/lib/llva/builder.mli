(** A positioned instruction builder over the LLVA IR, in the style of
    LLVM's IRBuilder. Emit functions append to the current insertion
    block, check the operand types they can check locally (the verifier
    re-checks whole functions), and return the instruction's SSA value. *)

type t

val create : Ir.modl -> t
(** A builder whose named types resolve through the given module. *)

val create_no_module : unit -> t

val position_at_end : Ir.block -> t -> unit
val insertion_block : t -> Ir.block

(** {1 Arithmetic and logic}

    Operands must share a type; shifts take a [ubyte] amount. The
    optional [name] seeds the printed SSA register name. *)

val binop : ?name:string -> t -> Ir.binop -> Ir.value -> Ir.value -> Ir.value
val add : ?name:string -> t -> Ir.value -> Ir.value -> Ir.value
val sub : ?name:string -> t -> Ir.value -> Ir.value -> Ir.value
val mul : ?name:string -> t -> Ir.value -> Ir.value -> Ir.value
val div : ?name:string -> t -> Ir.value -> Ir.value -> Ir.value
val rem : ?name:string -> t -> Ir.value -> Ir.value -> Ir.value
val and_ : ?name:string -> t -> Ir.value -> Ir.value -> Ir.value
val or_ : ?name:string -> t -> Ir.value -> Ir.value -> Ir.value
val xor : ?name:string -> t -> Ir.value -> Ir.value -> Ir.value
val shl : ?name:string -> t -> Ir.value -> Ir.value -> Ir.value
val shr : ?name:string -> t -> Ir.value -> Ir.value -> Ir.value

(** {1 Comparisons} (result type [bool]) *)

val setcc : ?name:string -> t -> Ir.cmp -> Ir.value -> Ir.value -> Ir.value
val seteq : ?name:string -> t -> Ir.value -> Ir.value -> Ir.value
val setne : ?name:string -> t -> Ir.value -> Ir.value -> Ir.value
val setlt : ?name:string -> t -> Ir.value -> Ir.value -> Ir.value
val setgt : ?name:string -> t -> Ir.value -> Ir.value -> Ir.value
val setle : ?name:string -> t -> Ir.value -> Ir.value -> Ir.value
val setge : ?name:string -> t -> Ir.value -> Ir.value -> Ir.value

(** {1 Memory} *)

val alloca : ?name:string -> ?count:Ir.value -> t -> Types.t -> Ir.value
(** Stack allocation of the element type; the result is a typed pointer
    (paper §3.2: the stack frame is abstracted by explicit allocas). *)

val gep_result_type : Types.env -> Types.t -> Ir.value list -> Types.t

val getelementptr : ?name:string -> t -> Ir.value -> Ir.value list -> Ir.value
(** Typed pointer arithmetic: the first index steps over the pointer,
    later indexes walk into arrays (any integer) and structures
    (constant field numbers). *)

val load : ?name:string -> t -> Ir.value -> Ir.value
val store : t -> Ir.value -> Ir.value -> unit

(** {1 Control flow} *)

val ret : t -> Ir.value option -> unit
val br : t -> Ir.block -> unit
val cond_br : t -> Ir.value -> Ir.block -> Ir.block -> unit

val mbr : t -> Ir.value -> default:Ir.block -> (int64 * Ir.block) list -> unit
(** Multi-way branch on integer case values. *)

val unwind : t -> unit

(** {1 Calls} *)

val call : ?name:string -> t -> Ir.value -> Ir.value list -> Ir.value

val invoke :
  ?name:string ->
  t ->
  Ir.value ->
  Ir.value list ->
  normal:Ir.block ->
  except:Ir.block ->
  Ir.value

(** {1 Conversions and phis} *)

val cast : ?name:string -> t -> Ir.value -> Types.t -> Ir.value

val phi : ?name:string -> t -> Types.t -> (Ir.value * Ir.block) list -> Ir.value
(** Appends at the current position; use {!phi_at_front} to satisfy the
    phis-first block rule when the block already has instructions. *)

val phi_at_front :
  ?name:string -> t -> Types.t -> (Ir.value * Ir.block) list -> Ir.value
