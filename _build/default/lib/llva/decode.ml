(* Decoder for LLVA virtual object code; inverse of [Encode]. *)

exception Error of string

type rd = { src : string; mutable pos : int }

let fail msg = raise (Error msg)

let u8 r =
  if r.pos >= String.length r.src then fail "truncated object code";
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let uleb r =
  let rec go shift acc =
    let byte = u8 r in
    let acc = acc lor ((byte land 0x7F) lsl shift) in
    if byte land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  go 0 0

let sleb64 r =
  let rec go shift acc =
    let byte = u8 r in
    let acc = Int64.logor acc (Int64.shift_left (Int64.of_int (byte land 0x7F)) shift) in
    if byte land 0x80 <> 0 then go (shift + 7) acc
    else if shift + 7 < 64 && byte land 0x40 <> 0 then
      (* sign extend *)
      Int64.logor acc (Int64.shift_left (-1L) (shift + 7))
    else acc
  in
  go 0 0L

let str r =
  let n = uleb r in
  if r.pos + n > String.length r.src then fail "truncated string";
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let f64 r =
  let bits = ref 0L in
  for k = 0 to 7 do
    bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (u8 r)) (8 * k))
  done;
  Int64.float_of_bits !bits

(* ---------- type pool ---------- *)

let prim_of_code = function
  | 0 -> Types.Void
  | 1 -> Types.Bool
  | 2 -> Types.Ubyte
  | 3 -> Types.Sbyte
  | 4 -> Types.Ushort
  | 5 -> Types.Short
  | 6 -> Types.Uint
  | 7 -> Types.Int
  | 8 -> Types.Ulong
  | 9 -> Types.Long
  | 10 -> Types.Float
  | 11 -> Types.Double
  | 12 -> Types.Label
  | n -> fail (Printf.sprintf "bad primitive type code %d" n)

let read_type_pool r =
  let n = uleb r in
  let pool = Array.make (max n 1) Types.Void in
  let at k = if k < n then pool.(k) else fail "type index out of range" in
  for k = 0 to n - 1 do
    let tag = u8 r in
    let ty =
      if tag <= 12 then prim_of_code tag
      else
        match tag with
        | 13 -> Types.Pointer (at (uleb r))
        | 14 ->
            let len = uleb r in
            Types.Array (len, at (uleb r))
        | 15 ->
            let count = uleb r in
            Types.Struct (List.init count (fun _ -> at (uleb r)))
        | 16 ->
            let ret = at (uleb r) in
            let count = uleb r in
            let params = List.init count (fun _ -> at (uleb r)) in
            let varargs = u8 r = 1 in
            Types.Func (ret, params, varargs)
        | 17 -> Types.Named (str r)
        | t -> fail (Printf.sprintf "bad type tag %d" t)
    in
    pool.(k) <- ty
  done;
  fun k -> if k < n then pool.(k) else fail "type index out of range"

(* ---------- constants ---------- *)

let rec read_const tyat r : Ir.const =
  let cty = tyat (uleb r) in
  let ckind =
    match u8 r with
    | 0 -> Ir.Cbool (u8 r = 1)
    | 1 -> Ir.Cint (sleb64 r)
    | 2 -> Ir.Cfloat (f64 r)
    | 3 -> Ir.Cnull
    | 4 -> Ir.Czero
    | 5 ->
        let n = uleb r in
        Ir.Carray (List.init n (fun _ -> read_const tyat r))
    | 6 ->
        let n = uleb r in
        Ir.Cstruct (List.init n (fun _ -> read_const tyat r))
    | 7 -> Ir.Cstring (str r)
    | 8 -> Ir.Cglobal_ref (str r)
    | t -> fail (Printf.sprintf "bad constant tag %d" t)
  in
  { Ir.cty; ckind }

(* ---------- instructions ---------- *)

type raw_operand =
  | Oabs of int (* absolute value-table index *)
  | Ocompact of int (* one-byte relative form; see Encode.compact_operand *)

type raw_instr = {
  rop : Ir.opcode;
  rty : Types.t;
  rops : raw_operand array;
  ree : bool;
}

let read_instr tyat r : raw_instr =
  let byte0 = u8 r in
  if byte0 land 0x80 <> 0 then begin
    (* compact 32-bit form *)
    let rop = Ir.opcode_of_code (byte0 land 0x3F) in
    let rty = tyat (u8 r) in
    let o0 = u8 r in
    let o1 = u8 r in
    let rops =
      if o0 = 0xFF then [||]
      else if o1 = 0xFF then [| Ocompact o0 |]
      else [| Ocompact o0; Ocompact o1 |]
    in
    { rop; rty; rops; ree = Ir.default_exceptions_enabled rop }
  end
  else begin
    let has_ee = byte0 land 0x40 <> 0 in
    let rop = Ir.opcode_of_code (byte0 land 0x3F) in
    let ree =
      if has_ee then u8 r = 1 else Ir.default_exceptions_enabled rop
    in
    let rty = tyat (uleb r) in
    let nops = uleb r in
    let rops = Array.init nops (fun _ -> Oabs (uleb r)) in
    { rop; rty; rops; ree }
  end

type raw_pool_entry = Rconst of Ir.const | Rsymbol of string | Rundef of Types.t

let decode (data : string) : Ir.modl =
  let r = { src = data; pos = 0 } in
  if String.length data < 6 || String.sub data 0 4 <> "LLVA" then
    fail "bad magic";
  r.pos <- 4;
  let version = u8 r in
  if version <> 1 then fail (Printf.sprintf "unsupported version %d" version);
  let flags = u8 r in
  let target =
    {
      Target.ptr_size = (if flags land 1 <> 0 then 8 else 4);
      endian = (if flags land 2 <> 0 then Target.Big else Target.Little);
    }
  in
  let mname = str r in
  let tyat = read_type_pool r in
  let m = Ir.mk_module ~name:mname ~target () in
  (* typedefs *)
  let ntypedefs = uleb r in
  for _ = 1 to ntypedefs do
    let name = str r in
    let ty = tyat (uleb r) in
    Ir.add_typedef m name ty
  done;
  (* globals *)
  let nglobals = uleb r in
  for _ = 1 to nglobals do
    let name = str r in
    let gty = tyat (uleb r) in
    let flags = u8 r in
    let constant = flags land 1 <> 0 in
    let external_ = flags land 2 <> 0 in
    let init = if external_ then None else Some (read_const tyat r) in
    let g = Ir.mk_global ~name ~ty:gty ?init ~constant () in
    Ir.add_global m g
  done;
  (* function headers + raw bodies; resolve cross-references afterwards *)
  let nfuncs = uleb r in
  let raw_bodies = ref [] in
  for _ = 1 to nfuncs do
    let name = str r in
    let return = tyat (uleb r) in
    let nargs = uleb r in
    let params =
      List.init nargs (fun k -> (Printf.sprintf "arg%d" k, tyat (uleb r)))
    in
    let flags = u8 r in
    let varargs = flags land 1 <> 0 in
    let declaration = flags land 2 <> 0 in
    let f = Ir.mk_func ~name ~return ~params ~varargs () in
    Ir.add_func m f;
    if not declaration then begin
      let npool = uleb r in
      let pool =
        List.init npool (fun _ ->
            match u8 r with
            | 0 -> Rconst (read_const tyat r)
            | 1 -> Rsymbol (str r)
            | 2 -> Rundef (tyat (uleb r))
            | t -> fail (Printf.sprintf "bad pool tag %d" t))
      in
      let nblocks = uleb r in
      let blocks =
        List.init nblocks (fun k ->
            let ninstrs = uleb r in
            (k, List.init ninstrs (fun _ -> read_instr tyat r)))
      in
      raw_bodies := (f, pool, blocks) :: !raw_bodies
    end
  done;
  (* materialize bodies *)
  List.iter
    (fun ((f : Ir.func), pool, blocks) ->
      let nargs = List.length f.Ir.fargs in
      let shells =
        List.map
          (fun (k, raws) ->
            let b = Ir.mk_block ~name:(Printf.sprintf "bb%d" k) () in
            Ir.append_block f b;
            (b, raws))
          blocks
      in
      (* value table: args, instrs, blocks, pool *)
      let instr_shells =
        List.concat_map
          (fun (b, raws) ->
            List.mapi
              (fun k (raw : raw_instr) ->
                let i = Ir.mk_instr raw.rop [||] raw.rty in
                i.Ir.exceptions_enabled <- raw.ree;
                i.Ir.iname <-
                  (if Types.equal raw.rty Types.Void then ""
                   else Printf.sprintf "v%d" i.Ir.iid);
                Ir.append_instr b i;
                ignore k;
                (i, raw))
              raws)
          shells
      in
      let ninstrs = List.length instr_shells in
      let nblocks = List.length shells in
      let instr_arr = Array.of_list (List.map fst instr_shells) in
      let block_arr = Array.of_list (List.map fst shells) in
      let pool_arr = Array.of_list pool in
      let args_arr = Array.of_list f.Ir.fargs in
      let lookup idx : Ir.value =
        if idx < nargs then Ir.Varg args_arr.(idx)
        else if idx < nargs + ninstrs then Ir.Vreg instr_arr.(idx - nargs)
        else if idx < nargs + ninstrs + nblocks then
          Ir.Vblock block_arr.(idx - nargs - ninstrs)
        else
          let pidx = idx - nargs - ninstrs - nblocks in
          if pidx >= Array.length pool_arr then fail "operand index out of range"
          else
            match pool_arr.(pidx) with
            | Rconst c -> Ir.Const c
            | Rundef ty -> Ir.Vundef ty
            | Rsymbol s -> (
                match Ir.find_func m s with
                | Some fn -> Ir.Vfunc fn
                | None -> (
                    match Ir.find_global m s with
                    | Some g -> Ir.Vglobal g
                    | None -> fail ("unresolved symbol " ^ s)))
      in
      let locals_end = nargs + ninstrs in
      List.iteri
        (fun pos ((i : Ir.instr), (raw : raw_instr)) ->
          let cur = nargs + pos in
          let resolve = function
            | Oabs idx -> lookup idx
            | Ocompact c ->
                if c < 128 then lookup (cur - c)
                else lookup (locals_end + (c - 128))
          in
          i.Ir.operands <- Array.map resolve raw.rops;
          Ir.register_operand_uses i)
        instr_shells)
    (List.rev !raw_bodies);
  m
