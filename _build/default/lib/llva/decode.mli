(** Virtual object code decoder; inverse of {!Encode}.

    [decode (Encode.encode m)] reconstructs a module that verifies,
    behaves identically, and re-encodes to the same bytes. Decoding also
    serves as a deep copy of a module. *)

exception Error of string
(** Malformed object code (bad magic, truncation, bad indices...). *)

val decode : string -> Ir.modl
(** @raise Error on malformed input. *)
