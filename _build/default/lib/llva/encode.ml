(* Virtual object code: the binary encoding of an LLVA module.

   The instruction stream follows the paper's design: a fixed 32-bit
   compact form holds most instructions (opcode, result-type index, up to
   two small operand indices), with a self-extending variable-length form
   for everything else (§3.1 "self-extending instruction encoding, but a
   fixed-size 32-bit format for small instructions").

   Layout:
     magic "LLVA" | version u8 | flags u8 (ptr-size, endianness)
     type pool    (structurally interned, children first)
     typedefs     (name -> type index)
     globals      (symbols first, then initializers)
     functions    (header + constant pool + blocks of instructions)

   Operands are indices into a per-function value table:
     [0, nargs)                     the function's arguments
     [nargs, nargs+ninstrs)         instruction results, in block order
     [.., +nblocks)                 basic blocks (labels)
     [.., +npool)                   this function's constant pool
*)

open Ir

(* ---------- primitive writers ---------- *)


let u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

let rec uleb b v =
  if v < 0 then invalid_arg "Encode.uleb: negative";
  if v < 0x80 then u8 b v
  else begin
    u8 b (0x80 lor (v land 0x7F));
    uleb b (v lsr 7)
  end

(* zig-zag for signed 64-bit payloads *)
let sleb64 b (v : int64) =
  let rec go v =
    let byte = Int64.to_int (Int64.logand v 0x7FL) in
    let rest = Int64.shift_right v 7 in
    if (Int64.equal rest 0L && byte land 0x40 = 0)
       || (Int64.equal rest (-1L) && byte land 0x40 <> 0)
    then u8 b byte
    else begin
      u8 b (byte lor 0x80);
      go rest
    end
  in
  go v

let str b s =
  uleb b (String.length s);
  Buffer.add_string b s

let f64 b v =
  let bits = Int64.bits_of_float v in
  for k = 0 to 7 do
    u8 b (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * k)) 0xFFL))
  done

(* ---------- type pool ---------- *)

type type_pool = {
  mutable entries : Types.t list; (* reversed *)
  index : (Types.t, int) Hashtbl.t;
  mutable count : int;
}

let mk_pool () = { entries = []; index = Hashtbl.create 64; count = 0 }

let rec intern pool ty =
  match Hashtbl.find_opt pool.index ty with
  | Some k -> k
  | None ->
      (* intern children first so decode can resolve forward-free *)
      (match ty with
      | Types.Pointer t -> ignore (intern pool t)
      | Types.Array (_, t) -> ignore (intern pool t)
      | Types.Struct fields -> List.iter (fun t -> ignore (intern pool t)) fields
      | Types.Func (r, ps, _) ->
          ignore (intern pool r);
          List.iter (fun t -> ignore (intern pool t)) ps
      | _ -> ());
      (match Hashtbl.find_opt pool.index ty with
      | Some k -> k
      | None ->
          let k = pool.count in
          pool.count <- k + 1;
          Hashtbl.replace pool.index ty k;
          pool.entries <- ty :: pool.entries;
          k)

let prim_code = function
  | Types.Void -> 0
  | Types.Bool -> 1
  | Types.Ubyte -> 2
  | Types.Sbyte -> 3
  | Types.Ushort -> 4
  | Types.Short -> 5
  | Types.Uint -> 6
  | Types.Int -> 7
  | Types.Ulong -> 8
  | Types.Long -> 9
  | Types.Float -> 10
  | Types.Double -> 11
  | Types.Label -> 12
  | _ -> invalid_arg "Encode.prim_code"

let write_type_entry pool b ty =
  let idx t = Hashtbl.find pool.index t in
  match ty with
  | Types.Void | Types.Bool | Types.Ubyte | Types.Sbyte | Types.Ushort
  | Types.Short | Types.Uint | Types.Int | Types.Ulong | Types.Long
  | Types.Float | Types.Double | Types.Label ->
      u8 b (prim_code ty)
  | Types.Pointer t ->
      u8 b 13;
      uleb b (idx t)
  | Types.Array (n, t) ->
      u8 b 14;
      uleb b n;
      uleb b (idx t)
  | Types.Struct fields ->
      u8 b 15;
      uleb b (List.length fields);
      List.iter (fun t -> uleb b (idx t)) fields
  | Types.Func (r, ps, varargs) ->
      u8 b 16;
      uleb b (idx r);
      uleb b (List.length ps);
      List.iter (fun t -> uleb b (idx t)) ps;
      u8 b (if varargs then 1 else 0)
  | Types.Named n ->
      u8 b 17;
      str b n

(* ---------- constants ---------- *)

let rec write_const pool b (c : const) =
  uleb b (intern pool c.cty);
  match c.ckind with
  | Cbool v ->
      u8 b 0;
      u8 b (if v then 1 else 0)
  | Cint v ->
      u8 b 1;
      sleb64 b v
  | Cfloat v ->
      u8 b 2;
      f64 b v
  | Cnull -> u8 b 3
  | Czero -> u8 b 4
  | Carray elems ->
      u8 b 5;
      uleb b (List.length elems);
      List.iter (write_const pool b) elems
  | Cstruct elems ->
      u8 b 6;
      uleb b (List.length elems);
      List.iter (write_const pool b) elems
  | Cstring s ->
      u8 b 7;
      str b s
  | Cglobal_ref name ->
      u8 b 8;
      str b name

(* ---------- per-function value table ---------- *)

type pool_entry =
  | Pconst of const
  | Psymbol of string (* global or function address *)
  | Pundef of Types.t

type ftable = {
  value_index : (int, int) Hashtbl.t; (* instr/arg/block id -> table index *)
  mutable pool_rev : pool_entry list;
  pool_index : (string, int) Hashtbl.t; (* keyed by a print of the entry *)
  mutable next : int;
}

let pool_key = function
  | Pconst c -> "c:" ^ Pretty.typed_const c
  | Psymbol s -> "s:" ^ s
  | Pundef ty -> "u:" ^ Types.to_string ty

let build_ftable (f : func) =
  let t =
    {
      value_index = Hashtbl.create 128;
      pool_rev = [];
      pool_index = Hashtbl.create 32;
      next = 0;
    }
  in
  List.iter
    (fun (a : arg) ->
      Hashtbl.replace t.value_index a.aid t.next;
      t.next <- t.next + 1)
    f.fargs;
  iter_instrs
    (fun i ->
      Hashtbl.replace t.value_index i.iid t.next;
      t.next <- t.next + 1)
    f;
  List.iter
    (fun (blk : block) ->
      Hashtbl.replace t.value_index blk.blid t.next;
      t.next <- t.next + 1)
    f.fblocks;
  (* pool entries for every constant-like operand *)
  let add_entry e =
    let key = pool_key e in
    if not (Hashtbl.mem t.pool_index key) then begin
      Hashtbl.replace t.pool_index key t.next;
      t.pool_rev <- e :: t.pool_rev;
      t.next <- t.next + 1
    end
  in
  iter_instrs
    (fun i ->
      Array.iter
        (fun v ->
          match v with
          | Const c -> add_entry (Pconst c)
          | Vglobal g -> add_entry (Psymbol g.gname)
          | Vfunc fn -> add_entry (Psymbol fn.fname)
          | Vundef ty -> add_entry (Pundef ty)
          | Vreg _ | Varg _ | Vblock _ -> ())
        i.operands)
    f;
  t

let operand_index t v =
  match v with
  | Vreg i -> Hashtbl.find t.value_index i.iid
  | Varg a -> Hashtbl.find t.value_index a.aid
  | Vblock blk -> Hashtbl.find t.value_index blk.blid
  | Const c -> Hashtbl.find t.pool_index (pool_key (Pconst c))
  | Vglobal g -> Hashtbl.find t.pool_index (pool_key (Psymbol g.gname))
  | Vfunc fn -> Hashtbl.find t.pool_index (pool_key (Psymbol fn.fname))
  | Vundef ty -> Hashtbl.find t.pool_index (pool_key (Pundef ty))

(* ---------- instructions ---------- *)

(* Compact 32-bit form: byte0 = 0x80 | opcode, byte1 = type index,
   bytes 2-3 = compact operand references (0xFF = none). A compact operand
   is relative so it stays one byte even in large functions:
     0..127    a value defined 0..127 table slots before this instruction
               (arguments and earlier instruction results)
     128..254  128 + j, the j'th entry of the blocks++pool region
   Applicable when the type index fits a byte, there are at most two
   operands, both encode compactly, and ExceptionsEnabled is the default.
   Everything else uses the self-extending form with absolute uleb
   indices. *)
let compact_operand ~cur ~locals_end idx =
  if idx < locals_end then begin
    let delta = cur - idx in
    if delta >= 0 && delta <= 127 then Some delta else None
  end
  else
    let j = idx - locals_end in
    if j < 127 then Some (128 + j) else None

let write_instr pool t b ~compact_ok ~cur ~locals_end (i : instr) =
  let op_code = opcode_code i.op in
  let ty_idx = intern pool i.ity in
  let nops = Array.length i.operands in
  let ops = Array.map (operand_index t) i.operands in
  let default_ee = i.exceptions_enabled = default_exceptions_enabled i.op in
  let compact_ops =
    Array.map (fun o -> compact_operand ~cur ~locals_end o) ops
  in
  let compact =
    compact_ok && default_ee && ty_idx < 256 && nops <= 2
    && Array.for_all Option.is_some compact_ops
  in
  if compact then begin
    u8 b (0x80 lor op_code);
    u8 b ty_idx;
    u8 b (if nops >= 1 then Option.get compact_ops.(0) else 0xFF);
    u8 b (if nops >= 2 then Option.get compact_ops.(1) else 0xFF)
  end
  else begin
    u8 b (op_code lor if default_ee then 0 else 0x40);
    if not default_ee then u8 b (if i.exceptions_enabled then 1 else 0);
    uleb b ty_idx;
    uleb b nops;
    Array.iter (fun o -> uleb b o) ops
  end

let write_function pool b ~compact_ok (f : func) =
  str b f.fname;
  uleb b (intern pool f.freturn);
  uleb b (List.length f.fargs);
  List.iter (fun (a : arg) -> uleb b (intern pool a.aty)) f.fargs;
  u8 b ((if f.fvarargs then 1 else 0) lor if is_declaration f then 2 else 0);
  if not (is_declaration f) then begin
    let t = build_ftable f in
    let pool_entries = List.rev t.pool_rev in
    uleb b (List.length pool_entries);
    List.iter
      (fun e ->
        match e with
        | Pconst c ->
            u8 b 0;
            write_const pool b c
        | Psymbol s ->
            u8 b 1;
            str b s
        | Pundef ty ->
            u8 b 2;
            uleb b (intern pool ty))
      pool_entries;
    uleb b (List.length f.fblocks);
    let nargs = List.length f.fargs in
    let ninstrs = instr_count f in
    let locals_end = nargs + ninstrs in
    let cur = ref nargs in
    List.iter
      (fun (blk : block) ->
        uleb b (List.length blk.instrs);
        List.iter
          (fun i ->
            write_instr pool t b ~compact_ok ~cur:!cur ~locals_end i;
            incr cur)
          blk.instrs)
      f.fblocks
  end

(* ---------- module ---------- *)

let encode ?(compact = true) (m : modl) : string =
  let pool = mk_pool () in
  (* Pre-intern every type so the pool is complete before we emit it; the
     body below is then written into a separate buffer. *)
  let body = Buffer.create 4096 in
  List.iter (fun (_, ty) -> ignore (intern pool ty)) m.typedefs;
  List.iter (fun g -> ignore (intern pool g.gty)) m.globals;
  (* typedefs *)
  uleb body (List.length m.typedefs);
  List.iter
    (fun (name, ty) ->
      str body name;
      uleb body (intern pool ty))
    m.typedefs;
  (* globals *)
  uleb body (List.length m.globals);
  List.iter
    (fun g ->
      str body g.gname;
      uleb body (intern pool g.gty);
      let flags =
        (if g.gconst then 1 else 0) lor if g.ginit = None then 2 else 0
      in
      u8 body flags;
      match g.ginit with
      | Some init -> write_const pool body init
      | None -> ())
    m.globals;
  (* functions *)
  uleb body (List.length m.funcs);
  List.iter (fun f -> write_function pool body ~compact_ok:compact f) m.funcs;
  (* header + type pool + body *)
  let out = Buffer.create (Buffer.length body + 1024) in
  Buffer.add_string out "LLVA";
  u8 out 1;
  let flags =
    (if m.target.Target.ptr_size = 8 then 1 else 0)
    lor match m.target.Target.endian with Target.Big -> 2 | Target.Little -> 0
  in
  u8 out flags;
  str out m.mname;
  let entries = List.rev pool.entries in
  uleb out (List.length entries);
  List.iter (fun ty -> write_type_entry pool out ty) entries;
  Buffer.add_buffer out body;
  Buffer.contents out

let size_bytes m = String.length (encode m)
