(** Virtual object code encoder.

    The instruction stream follows the paper's design (§3.1): a fixed
    32-bit compact form holds most instructions — opcode, result-type
    index, up to two one-byte relative operand references — with a
    self-extending variable-length form for everything else. The module
    header records the target flags (§3.2); types are structurally
    interned into a pool; symbols are referenced by name. [Decode] is the
    exact inverse. *)

val encode : ?compact:bool -> Ir.modl -> string
(** Serialize a module to virtual object code (starts with ["LLVA"]).
    [compact] (default true) enables the fixed 32-bit instruction form;
    disabling it emits only the self-extending form — the encoding
    ablation in the benchmark harness. *)

val size_bytes : Ir.modl -> int
(** [String.length (encode m)] — the paper's "LLVA code size" metric. *)
