(* The LLVA intrinsic functions (paper §3.5): the mechanism by which the
   V-ISA exposes kernel-level operations and runtime services without
   growing the instruction set. Intrinsics are implemented by the
   translator (here: by each execution engine); privileged ones trap when
   the privileged bit is clear.

   This is the single registry all engines dispatch against, so the
   interpreter and both simulators cannot drift apart. *)

type info = {
  name : string;
  privileged : bool;
  arity : int;
  description : string;
}

let registry =
  [
    {
      name = "llva.trap.register";
      privileged = false;
      arity = 1;
      description = "register the trap handler (an ordinary LLVA function)";
    };
    {
      name = "llva.smc.replace";
      privileged = false;
      arity = 2;
      description =
        "redirect future invocations of a function to a replacement (§3.4)";
    };
    {
      name = "llva.stack.depth";
      privileged = false;
      arity = 0;
      description = "current call depth (stack-walking support, §3.5)";
    };
    {
      name = "llva.priv.set";
      privileged = false;
      arity = 1;
      description = "set or clear the privileged bit";
    };
    {
      name = "llva.pgtable.map";
      privileged = true;
      arity = 2;
      description = "kernel page-table manipulation (stub)";
    };
    {
      name = "llva.pgtable.unmap";
      privileged = true;
      arity = 1;
      description = "kernel page-table manipulation (stub)";
    };
    {
      name = "llva.io.port";
      privileged = true;
      arity = 2;
      description = "low-level device I/O (stub)";
    };
  ]

let is_intrinsic name =
  String.length name > 5 && String.sub name 0 5 = "llva."

let find name = List.find_opt (fun i -> i.name = name) registry

let is_privileged name =
  match find name with Some i -> i.privileged | None -> false
