(* The LLVA in-memory IR: an infinite, typed virtual register file in SSA
   form, functions as explicit CFGs of basic blocks, and exactly the 28
   instructions of the paper (Table 1).

   Instructions, blocks, functions and globals are mutable records with
   unique integer ids. Def-use chains are maintained incrementally: operand
   mutation must go through [set_operand] (or the helpers built on it) so
   that the use lists stay consistent. *)

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr
type cmp = Eq | Ne | Lt | Gt | Le | Ge

type opcode =
  | Binop of binop (* operands: [a; b] *)
  | Setcc of cmp (* operands: [a; b]; result type bool *)
  | Ret (* operands: [] or [v] *)
  | Br (* operands: [dest] or [cond; iftrue; iffalse] *)
  | Mbr (* operands: [v; default; (case const; dest)...] *)
  | Invoke (* operands: [callee; normal; except; args...] *)
  | Unwind (* operands: [] *)
  | Load (* operands: [ptr] *)
  | Store (* operands: [v; ptr]; result type void *)
  | Getelementptr (* operands: [ptr; idx...] *)
  | Alloca (* operands: [] or [count]; result type = pointer to elem *)
  | Cast (* operands: [v]; result type is the target type *)
  | Call (* operands: [callee; args...] *)
  | Phi (* operands: [v0; block0; v1; block1; ...] *)

type const = { cty : Types.t; ckind : ckind }

and ckind =
  | Cbool of bool
  | Cint of int64 (* stored sign-agnostic; interpreted per cty *)
  | Cfloat of float
  | Cnull
  | Czero (* zero-initializer for any type *)
  | Carray of const list
  | Cstruct of const list
  | Cstring of string (* shorthand for [n x sbyte] data *)
  | Cglobal_ref of string (* address of a module-level symbol by name *)

type value =
  | Const of const
  | Vreg of instr (* the SSA value produced by an instruction *)
  | Varg of arg
  | Vglobal of global
  | Vfunc of func
  | Vblock of block (* a label operand *)
  | Vundef of Types.t

and use = { user : instr; uidx : int }

and instr = {
  iid : int;
  mutable iname : string; (* SSA register name; "" if unnamed *)
  mutable op : opcode;
  mutable operands : value array;
  mutable ity : Types.t; (* result type; Void when no result *)
  mutable iparent : block option;
  mutable exceptions_enabled : bool; (* paper §3.3 *)
  mutable iuses : use list; (* who uses this instruction's result *)
}

and block = {
  blid : int;
  mutable bname : string;
  mutable instrs : instr list; (* terminator last *)
  mutable bparent : func option;
  mutable buses : use list;
}

and arg = {
  aid : int;
  mutable aname : string;
  mutable aty : Types.t;
  mutable aparent : func option;
  mutable auses : use list;
}

and func = {
  fid : int;
  mutable fname : string;
  mutable freturn : Types.t;
  mutable fvarargs : bool;
  mutable fargs : arg list;
  mutable fblocks : block list; (* entry block first; [] for declarations *)
  mutable fparent : modl option;
  mutable fuses : use list;
}

and global = {
  gid : int;
  mutable gname : string;
  mutable gty : Types.t; (* the pointee type; the value has type gty* *)
  mutable ginit : const option; (* None for external declarations *)
  mutable gconst : bool;
  mutable gparent : modl option;
  mutable guses : use list;
}

and modl = {
  mutable mname : string;
  mutable typedefs : (string * Types.t) list;
  mutable globals : global list;
  mutable funcs : func list;
  mutable target : Target.config;
}

let next_id =
  let counter = ref 0 in
  fun () ->
    incr counter;
    !counter

(* ---------- constants ---------- *)

(* Truncate an int64 to the width of [ty], re-extending per signedness so
   the stored representative is canonical. *)
let normalize_int ty v =
  match ty with
  | Types.Bool -> Int64.logand v 1L
  | Types.Ubyte -> Int64.logand v 0xFFL
  | Types.Sbyte -> Int64.shift_right (Int64.shift_left v 56) 56
  | Types.Ushort -> Int64.logand v 0xFFFFL
  | Types.Short -> Int64.shift_right (Int64.shift_left v 48) 48
  | Types.Uint -> Int64.logand v 0xFFFFFFFFL
  | Types.Int -> Int64.shift_right (Int64.shift_left v 32) 32
  | Types.Ulong | Types.Long -> v
  | _ -> invalid_arg "Ir.normalize_int: not an integer type"

let const_int ty v = Const { cty = ty; ckind = Cint (normalize_int ty v) }
let const_bool b = Const { cty = Types.Bool; ckind = Cbool b }
let const_float ty v = Const { cty = ty; ckind = Cfloat v }
let const_null ty = Const { cty = ty; ckind = Cnull }
let const_zero ty = Const { cty = ty; ckind = Czero }
let const_string s =
  Const { cty = Types.Array (String.length s + 1, Types.Sbyte); ckind = Cstring s }

let undef ty = Vundef ty

(* ---------- value typing ---------- *)

let type_of_value = function
  | Const c -> c.cty
  | Vreg i -> i.ity
  | Varg a -> a.aty
  | Vglobal g -> Types.Pointer g.gty
  | Vfunc f ->
      Types.Pointer (Types.Func (f.freturn, List.map (fun a -> a.aty) f.fargs, f.fvarargs))
  | Vblock _ -> Types.Label
  | Vundef ty -> ty

let func_type f =
  Types.Func (f.freturn, List.map (fun a -> a.aty) f.fargs, f.fvarargs)

let value_equal a b =
  match (a, b) with
  | Vreg i, Vreg j -> i == j
  | Varg x, Varg y -> x == y
  | Vglobal x, Vglobal y -> x == y
  | Vfunc x, Vfunc y -> x == y
  | Vblock x, Vblock y -> x == y
  | Const x, Const y -> x = y
  | Vundef x, Vundef y -> Types.equal x y
  | _ -> false

(* ---------- use-list maintenance ---------- *)

let remove_use_from lst u =
  List.filter (fun u' -> not (u'.user == u.user && u'.uidx = u.uidx)) lst

let add_use value u =
  match value with
  | Vreg i -> i.iuses <- u :: i.iuses
  | Varg a -> a.auses <- u :: a.auses
  | Vglobal g -> g.guses <- u :: g.guses
  | Vfunc f -> f.fuses <- u :: f.fuses
  | Vblock b -> b.buses <- u :: b.buses
  | Const _ | Vundef _ -> ()

let drop_use value u =
  match value with
  | Vreg i -> i.iuses <- remove_use_from i.iuses u
  | Varg a -> a.auses <- remove_use_from a.auses u
  | Vglobal g -> g.guses <- remove_use_from g.guses u
  | Vfunc f -> f.fuses <- remove_use_from f.fuses u
  | Vblock b -> b.buses <- remove_use_from b.buses u
  | Const _ | Vundef _ -> ()

let set_operand instr idx value =
  let old = instr.operands.(idx) in
  if not (value_equal old value) then begin
    drop_use old { user = instr; uidx = idx };
    instr.operands.(idx) <- value;
    add_use value { user = instr; uidx = idx }
  end

(* Register all current operands of a freshly built instruction. *)
let register_operand_uses instr =
  Array.iteri (fun idx v -> add_use v { user = instr; uidx = idx }) instr.operands

let unregister_operand_uses instr =
  Array.iteri (fun idx v -> drop_use v { user = instr; uidx = idx }) instr.operands

let uses_of = function
  | Vreg i -> i.iuses
  | Varg a -> a.auses
  | Vglobal g -> g.guses
  | Vfunc f -> f.fuses
  | Vblock b -> b.buses
  | Const _ | Vundef _ -> []

let has_uses v = uses_of v <> []

(* Replace every use of [old_v] with [new_v]. *)
let replace_all_uses_with old_v new_v =
  let uses = uses_of old_v in
  List.iter (fun u -> set_operand u.user u.uidx new_v) uses

(* ---------- instruction construction ---------- *)

(* Default ExceptionsEnabled per the paper: true for load, store, div and
   rem; false for everything else. *)
let default_exceptions_enabled = function
  | Load | Store | Binop Div | Binop Rem -> true
  | _ -> false

let mk_instr ?(name = "") op operands ty =
  let i =
    {
      iid = next_id ();
      iname = name;
      op;
      operands;
      ity = ty;
      iparent = None;
      exceptions_enabled = default_exceptions_enabled op;
      iuses = [];
    }
  in
  register_operand_uses i;
  i

(* ---------- block / function / global construction ---------- *)

let mk_block ?(name = "") () =
  { blid = next_id (); bname = name; instrs = []; bparent = None; buses = [] }

let mk_arg ?(name = "") ty =
  { aid = next_id (); aname = name; aty = ty; aparent = None; auses = [] }

let mk_func ~name ~return ~params ?(varargs = false) () =
  let f =
    {
      fid = next_id ();
      fname = name;
      freturn = return;
      fvarargs = varargs;
      fargs = [];
      fblocks = [];
      fparent = None;
      fuses = [];
    }
  in
  f.fargs <-
    List.map
      (fun (pname, pty) ->
        let a = mk_arg ~name:pname pty in
        a.aparent <- Some f;
        a)
      params;
  f

let mk_global ~name ~ty ?init ?(constant = false) () =
  {
    gid = next_id ();
    gname = name;
    gty = ty;
    ginit = init;
    gconst = constant;
    gparent = None;
    guses = [];
  }

let mk_module ?(name = "module") ?(target = Target.default) () =
  { mname = name; typedefs = []; globals = []; funcs = []; target }

(* ---------- structural edits ---------- *)

let append_block f b =
  b.bparent <- Some f;
  f.fblocks <- f.fblocks @ [ b ]

let entry_block f =
  match f.fblocks with
  | b :: _ -> b
  | [] -> invalid_arg ("Ir.entry_block: function has no body: " ^ f.fname)

let append_instr b i =
  i.iparent <- Some b;
  b.instrs <- b.instrs @ [ i ]

let prepend_instr b i =
  i.iparent <- Some b;
  b.instrs <- i :: b.instrs

(* Insert [i] immediately before [before] inside block [b]. *)
let insert_before b ~before i =
  i.iparent <- Some b;
  let rec go = function
    | [] -> invalid_arg "Ir.insert_before: anchor not found"
    | x :: rest when x == before -> i :: x :: rest
    | x :: rest -> x :: go rest
  in
  b.instrs <- go b.instrs

let remove_instr i =
  (match i.iparent with
  | Some b -> b.instrs <- List.filter (fun x -> not (x == i)) b.instrs
  | None -> ());
  i.iparent <- None;
  unregister_operand_uses i

(* Remove an instruction and replace its uses with [undef] of its type; for
   a clean erase the caller should already have rewritten the uses. *)
let erase_instr i =
  if i.iuses <> [] then replace_all_uses_with (Vreg i) (Vundef i.ity);
  remove_instr i

let remove_block b =
  (match b.bparent with
  | Some f -> f.fblocks <- List.filter (fun x -> not (x == b)) f.fblocks
  | None -> ());
  List.iter (fun i -> remove_instr i) b.instrs;
  b.instrs <- [];
  b.bparent <- None

let add_func m f =
  f.fparent <- Some m;
  m.funcs <- m.funcs @ [ f ]

let add_global m g =
  g.gparent <- Some m;
  m.globals <- m.globals @ [ g ]

let add_typedef m name ty = m.typedefs <- m.typedefs @ [ (name, ty) ]

let find_func m name = List.find_opt (fun f -> String.equal f.fname name) m.funcs

let find_global m name =
  List.find_opt (fun g -> String.equal g.gname name) m.globals

let type_env m = Types.env_of_typedefs m.typedefs

let is_declaration f = f.fblocks = []

(* ---------- terminator and CFG helpers ---------- *)

let is_terminator i =
  match i.op with Ret | Br | Mbr | Invoke | Unwind -> true | _ -> false

let terminator b =
  let rec last = function
    | [] -> None
    | [ x ] -> if is_terminator x then Some x else None
    | _ :: rest -> last rest
  in
  last b.instrs

let block_of_value = function
  | Vblock b -> b
  | _ -> invalid_arg "Ir.block_of_value"

(* Successor blocks named by a terminator instruction. *)
let successors b =
  match terminator b with
  | None -> []
  | Some t -> (
      match t.op with
      | Ret | Unwind -> []
      | Br ->
          if Array.length t.operands = 1 then [ block_of_value t.operands.(0) ]
          else [ block_of_value t.operands.(1); block_of_value t.operands.(2) ]
      | Mbr ->
          let default = block_of_value t.operands.(1) in
          let rec cases i acc =
            if i >= Array.length t.operands then List.rev acc
            else cases (i + 2) (block_of_value t.operands.(i + 1) :: acc)
          in
          default :: cases 2 []
      | Invoke -> [ block_of_value t.operands.(1); block_of_value t.operands.(2) ]
      | _ -> [])

let predecessors b =
  List.filter_map
    (fun u ->
      match u.user.iparent with
      | Some pb when is_terminator u.user -> Some pb
      | _ -> None)
    b.buses
  |> List.sort_uniq (fun a b' -> compare a.blid b'.blid)

(* ---------- phi helpers ---------- *)

let phi_incoming i =
  assert (i.op = Phi);
  let n = Array.length i.operands / 2 in
  List.init n (fun k -> (i.operands.(2 * k), block_of_value i.operands.((2 * k) + 1)))

let phi_set_incoming i pairs =
  assert (i.op = Phi);
  unregister_operand_uses i;
  i.operands <-
    Array.of_list
      (List.concat_map (fun (v, b) -> [ v; Vblock b ]) pairs);
  register_operand_uses i

let phi_value_for_block i b =
  let rec go = function
    | [] -> None
    | (v, b') :: rest -> if b' == b then Some v else go rest
  in
  go (phi_incoming i)

let block_phis b = List.filter (fun i -> i.op = Phi) b.instrs

(* Retarget every phi in [b] that has an incoming edge from [old_pred] to
   instead name [new_pred]. *)
let phi_replace_pred b ~old_pred ~new_pred =
  List.iter
    (fun phi ->
      Array.iteri
        (fun idx v ->
          match v with
          | Vblock p when p == old_pred -> set_operand phi idx (Vblock new_pred)
          | _ -> ())
        phi.operands)
    (block_phis b)

(* Remove the incoming entry for [pred] from every phi in [b]. *)
let phi_remove_pred b pred =
  List.iter
    (fun phi ->
      let pairs = List.filter (fun (_, p) -> not (p == pred)) (phi_incoming phi) in
      phi_set_incoming phi pairs)
    (block_phis b)

(* ---------- call helpers ---------- *)

let call_callee i =
  match i.op with
  | Call -> i.operands.(0)
  | Invoke -> i.operands.(0)
  | _ -> invalid_arg "Ir.call_callee"

let call_args i =
  match i.op with
  | Call -> Array.to_list (Array.sub i.operands 1 (Array.length i.operands - 1))
  | Invoke -> Array.to_list (Array.sub i.operands 3 (Array.length i.operands - 3))
  | _ -> invalid_arg "Ir.call_args"

let mbr_cases i =
  assert (i.op = Mbr);
  let rec go k acc =
    if k >= Array.length i.operands then List.rev acc
    else
      match i.operands.(k) with
      | Const { ckind = Cint v; _ } ->
          go (k + 2) ((v, block_of_value i.operands.(k + 1)) :: acc)
      | _ -> invalid_arg "Ir.mbr_cases: non-constant case"
  in
  go 2 []

(* ---------- iteration ---------- *)

let iter_instrs f fn = List.iter (fun b -> List.iter f b.instrs) fn.fblocks

let fold_instrs f acc fn =
  List.fold_left
    (fun acc b -> List.fold_left f acc b.instrs)
    acc fn.fblocks

let instr_count fn = fold_instrs (fun n _ -> n + 1) 0 fn

let module_instr_count m =
  List.fold_left (fun n f -> n + instr_count f) 0 m.funcs

(* ---------- opcode names (shared by printer, parser, encoder) ---------- *)

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"

let cmp_name = function
  | Eq -> "seteq"
  | Ne -> "setne"
  | Lt -> "setlt"
  | Gt -> "setgt"
  | Le -> "setle"
  | Ge -> "setge"

let opcode_name = function
  | Binop b -> binop_name b
  | Setcc c -> cmp_name c
  | Ret -> "ret"
  | Br -> "br"
  | Mbr -> "mbr"
  | Invoke -> "invoke"
  | Unwind -> "unwind"
  | Load -> "load"
  | Store -> "store"
  | Getelementptr -> "getelementptr"
  | Alloca -> "alloca"
  | Cast -> "cast"
  | Call -> "call"
  | Phi -> "phi"

(* Fixed numbering used by the object-code encoding. *)
let opcode_code = function
  | Binop Add -> 1
  | Binop Sub -> 2
  | Binop Mul -> 3
  | Binop Div -> 4
  | Binop Rem -> 5
  | Binop And -> 6
  | Binop Or -> 7
  | Binop Xor -> 8
  | Binop Shl -> 9
  | Binop Shr -> 10
  | Setcc Eq -> 11
  | Setcc Ne -> 12
  | Setcc Lt -> 13
  | Setcc Gt -> 14
  | Setcc Le -> 15
  | Setcc Ge -> 16
  | Ret -> 17
  | Br -> 18
  | Mbr -> 19
  | Invoke -> 20
  | Unwind -> 21
  | Load -> 22
  | Store -> 23
  | Getelementptr -> 24
  | Alloca -> 25
  | Cast -> 26
  | Call -> 27
  | Phi -> 28

let opcode_of_code = function
  | 1 -> Binop Add
  | 2 -> Binop Sub
  | 3 -> Binop Mul
  | 4 -> Binop Div
  | 5 -> Binop Rem
  | 6 -> Binop And
  | 7 -> Binop Or
  | 8 -> Binop Xor
  | 9 -> Binop Shl
  | 10 -> Binop Shr
  | 11 -> Setcc Eq
  | 12 -> Setcc Ne
  | 13 -> Setcc Lt
  | 14 -> Setcc Gt
  | 15 -> Setcc Le
  | 16 -> Setcc Ge
  | 17 -> Ret
  | 18 -> Br
  | 19 -> Mbr
  | 20 -> Invoke
  | 21 -> Unwind
  | 22 -> Load
  | 23 -> Store
  | 24 -> Getelementptr
  | 25 -> Alloca
  | 26 -> Cast
  | 27 -> Call
  | 28 -> Phi
  | n -> invalid_arg (Printf.sprintf "Ir.opcode_of_code: %d" n)

let all_opcodes =
  List.init 28 (fun i -> opcode_of_code (i + 1))
