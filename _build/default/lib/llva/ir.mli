(** The LLVA in-memory IR (paper §3.1): an infinite, typed virtual
    register file in SSA form, functions as explicit CFGs of basic
    blocks, and exactly the paper's 28 instructions.

    Instructions, blocks, functions and globals are mutable records with
    unique integer ids. Def-use chains are maintained incrementally:
    operand mutation must go through {!set_operand} (or helpers built on
    it) so the use lists stay consistent. *)

(** {1 Opcodes} *)

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr
type cmp = Eq | Ne | Lt | Gt | Le | Ge

(** Operand conventions, with [operands] layouts:
    - [Binop]/[Setcc]: [[|a; b|]]
    - [Ret]: [[||]] or [[|v|]]
    - [Br]: [[|dest|]] or [[|cond; iftrue; iffalse|]]
    - [Mbr]: [[|v; default; case0; dest0; ...|]]
    - [Invoke]: [[|callee; normal; except; args...|]]
    - [Load]: [[|ptr|]]; [Store]: [[|v; ptr|]]
    - [Getelementptr]: [[|ptr; idx...|]]
    - [Alloca]: [[||]] or [[|count|]] (result type is pointer-to-element)
    - [Cast]: [[|v|]] (result type is the target type)
    - [Call]: [[|callee; args...|]]
    - [Phi]: [[|v0; block0; v1; block1; ...|]] *)
type opcode =
  | Binop of binop
  | Setcc of cmp
  | Ret
  | Br
  | Mbr
  | Invoke
  | Unwind
  | Load
  | Store
  | Getelementptr
  | Alloca
  | Cast
  | Call
  | Phi

(** {1 Constants and values} *)

type const = { cty : Types.t; ckind : ckind }

and ckind =
  | Cbool of bool
  | Cint of int64  (** canonical per {!normalize_int} *)
  | Cfloat of float
  | Cnull
  | Czero  (** zero-initializer for any type *)
  | Carray of const list
  | Cstruct of const list
  | Cstring of string  (** shorthand for [n x sbyte] data *)
  | Cglobal_ref of string  (** address of a module-level symbol by name *)

type value =
  | Const of const
  | Vreg of instr  (** the SSA value an instruction produces *)
  | Varg of arg
  | Vglobal of global
  | Vfunc of func
  | Vblock of block  (** a label operand *)
  | Vundef of Types.t

and use = { user : instr; uidx : int }

and instr = {
  iid : int;
  mutable iname : string;  (** SSA register name; [""] if unnamed *)
  mutable op : opcode;
  mutable operands : value array;
  mutable ity : Types.t;  (** result type; [Void] when none *)
  mutable iparent : block option;
  mutable exceptions_enabled : bool;  (** paper §3.3 *)
  mutable iuses : use list;
}

and block = {
  blid : int;
  mutable bname : string;
  mutable instrs : instr list;  (** terminator last *)
  mutable bparent : func option;
  mutable buses : use list;
}

and arg = {
  aid : int;
  mutable aname : string;
  mutable aty : Types.t;
  mutable aparent : func option;
  mutable auses : use list;
}

and func = {
  fid : int;
  mutable fname : string;
  mutable freturn : Types.t;
  mutable fvarargs : bool;
  mutable fargs : arg list;
  mutable fblocks : block list;  (** entry first; [[]] = declaration *)
  mutable fparent : modl option;
  mutable fuses : use list;
}

and global = {
  gid : int;
  mutable gname : string;
  mutable gty : Types.t;  (** pointee type; the value has type [gty*] *)
  mutable ginit : const option;  (** [None] for external declarations *)
  mutable gconst : bool;
  mutable gparent : modl option;
  mutable guses : use list;
}

and modl = {
  mutable mname : string;
  mutable typedefs : (string * Types.t) list;
  mutable globals : global list;
  mutable funcs : func list;
  mutable target : Target.config;
}

val next_id : unit -> int

(** {1 Constants} *)

val normalize_int : Types.t -> int64 -> int64
(** Truncate to the type's width and re-extend per its signedness, giving
    the canonical stored representative. *)

val const_int : Types.t -> int64 -> value
val const_bool : bool -> value
val const_float : Types.t -> float -> value
val const_null : Types.t -> value
val const_zero : Types.t -> value
val const_string : string -> value
val undef : Types.t -> value

(** {1 Typing and equality} *)

val type_of_value : value -> Types.t
val func_type : func -> Types.t

val value_equal : value -> value -> bool
(** Physical identity for IR objects, structural for constants. *)

(** {1 Use lists} *)

val add_use : value -> use -> unit
val drop_use : value -> use -> unit

val set_operand : instr -> int -> value -> unit
(** Replace one operand, keeping use lists consistent. *)

val register_operand_uses : instr -> unit
(** Record uses for all current operands (after bulk operand writes). *)

val unregister_operand_uses : instr -> unit
val uses_of : value -> use list
val has_uses : value -> bool

val replace_all_uses_with : value -> value -> unit
(** RAUW: rewrite every use of the first value into the second. *)

(** {1 Construction} *)

val default_exceptions_enabled : opcode -> bool
(** True for [Load], [Store], [Binop Div], [Binop Rem] (paper §3.3). *)

val mk_instr : ?name:string -> opcode -> value array -> Types.t -> instr
val mk_block : ?name:string -> unit -> block
val mk_arg : ?name:string -> Types.t -> arg

val mk_func :
  name:string ->
  return:Types.t ->
  params:(string * Types.t) list ->
  ?varargs:bool ->
  unit ->
  func

val mk_global :
  name:string ->
  ty:Types.t ->
  ?init:const ->
  ?constant:bool ->
  unit ->
  global

val mk_module : ?name:string -> ?target:Target.config -> unit -> modl

(** {1 Structural edits} *)

val append_block : func -> block -> unit
val entry_block : func -> block
val append_instr : block -> instr -> unit
val prepend_instr : block -> instr -> unit
val insert_before : block -> before:instr -> instr -> unit

val remove_instr : instr -> unit
(** Detach from its block and drop its operand uses; uses {e of} the
    instruction are the caller's responsibility (see {!erase_instr}). *)

val erase_instr : instr -> unit
(** {!remove_instr} after RAUW'ing remaining uses to [undef]. *)

val remove_block : block -> unit
val add_func : modl -> func -> unit
val add_global : modl -> global -> unit
val add_typedef : modl -> string -> Types.t -> unit
val find_func : modl -> string -> func option
val find_global : modl -> string -> global option

val type_env : modl -> Types.env
(** Named-type resolution environment built from the typedefs. *)

val is_declaration : func -> bool

(** {1 CFG} *)

val is_terminator : instr -> bool
val terminator : block -> instr option
val block_of_value : value -> block

val successors : block -> block list
(** Successor blocks named by the terminator (may contain duplicates for
    a conditional branch with equal targets). *)

val predecessors : block -> block list
(** Distinct predecessor blocks, from the label use lists. *)

(** {1 Phi helpers} *)

val phi_incoming : instr -> (value * block) list
val phi_set_incoming : instr -> (value * block) list -> unit
val phi_value_for_block : instr -> block -> value option
val block_phis : block -> instr list
val phi_replace_pred : block -> old_pred:block -> new_pred:block -> unit
val phi_remove_pred : block -> block -> unit

(** {1 Call helpers} *)

val call_callee : instr -> value
val call_args : instr -> value list
val mbr_cases : instr -> (int64 * block) list

(** {1 Iteration} *)

val iter_instrs : (instr -> unit) -> func -> unit
val fold_instrs : ('a -> instr -> 'a) -> 'a -> func -> 'a
val instr_count : func -> int
val module_instr_count : modl -> int

(** {1 Opcode names and numbering} *)

val binop_name : binop -> string
val cmp_name : cmp -> string
val opcode_name : opcode -> string

val opcode_code : opcode -> int
(** Fixed 1..28 numbering used by the object-code encoding. *)

val opcode_of_code : int -> opcode
val all_opcodes : opcode list
