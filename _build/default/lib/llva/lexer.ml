(* Hand-written lexer for textual LLVA assembly. *)

type token =
  | Percent of string (* %name *)
  | Word of string (* bare keyword / identifier *)
  | Label_def of string (* name: at start of a block *)
  | Int_lit of int64
  | Float_lit of float
  | String_lit of string (* c"..." with escapes decoded *)
  | Equals
  | Comma
  | Semi
  | Star
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Lbrace
  | Rbrace
  | Ellipsis
  | At_ee of bool (* @ee(true) / @ee(false) *)
  | Eof

exception Error of string * int (* message, line *)

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable peeked : token option;
}

let create src = { src; pos = 0; line = 1; peeked = None }

let fail lx msg = raise (Error (msg, lx.line))

let is_ident_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' | '$' -> true
  | _ -> false

let rec skip_ws lx =
  if lx.pos >= String.length lx.src then ()
  else
    match lx.src.[lx.pos] with
    | ' ' | '\t' | '\r' ->
        lx.pos <- lx.pos + 1;
        skip_ws lx
    | '\n' ->
        lx.pos <- lx.pos + 1;
        lx.line <- lx.line + 1;
        skip_ws lx
    | ';' ->
        (* comment to end of line *)
        while lx.pos < String.length lx.src && lx.src.[lx.pos] <> '\n' do
          lx.pos <- lx.pos + 1
        done;
        skip_ws lx
    | _ -> ()

let read_ident lx =
  let start = lx.pos in
  while lx.pos < String.length lx.src && is_ident_char lx.src.[lx.pos] do
    lx.pos <- lx.pos + 1
  done;
  String.sub lx.src start (lx.pos - start)

(* Numbers: decimal ints (optionally negative), decimal floats with '.' or
   exponent, and hex floats 0x1.8p3 as printed by the printer. A plain 0x
   prefix without '.'/'p' is a hex integer. *)
let read_number lx =
  let start = lx.pos in
  if lx.src.[lx.pos] = '-' then lx.pos <- lx.pos + 1;
  let is_num_char c =
    match c with
    | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' | 'x' | 'X' | '.' | 'p' | 'P'
    | '+' | '-' ->
        true
    | _ -> false
  in
  (* Greedily read, but stop '+'/'-' unless preceded by exponent marker. *)
  let rec go () =
    if lx.pos >= String.length lx.src then ()
    else
      let c = lx.src.[lx.pos] in
      if not (is_num_char c) then ()
      else if
        (c = '+' || c = '-')
        && lx.pos > start
        &&
        let prev = lx.src.[lx.pos - 1] in
        not (prev = 'e' || prev = 'E' || prev = 'p' || prev = 'P')
      then ()
      else begin
        lx.pos <- lx.pos + 1;
        go ()
      end
  in
  go ();
  let text = String.sub lx.src start (lx.pos - start) in
  let is_hex =
    (String.length text >= 2 && text.[0] = '0' && (text.[1] = 'x' || text.[1] = 'X'))
    || String.length text >= 3
       && text.[0] = '-'
       && text.[1] = '0'
       && (text.[2] = 'x' || text.[2] = 'X')
  in
  let is_float =
    String.contains text '.'
    || String.contains text 'p'
    || String.contains text 'P'
    || ((not is_hex) && (String.contains text 'e' || String.contains text 'E'))
  in
  if is_float then
    match float_of_string_opt text with
    | Some f -> Float_lit f
    | None -> fail lx ("bad float literal: " ^ text)
  else
    match Int64.of_string_opt text with
    | Some v -> Int_lit v
    | None -> (
        (* large unsigned decimal that overflows Int64.of_string *)
        match Int64.of_string_opt ("0u" ^ text) with
        | Some v -> Int_lit v
        | None -> fail lx ("bad integer literal: " ^ text))

let read_string lx =
  (* called with lx.pos at the opening quote *)
  lx.pos <- lx.pos + 1;
  let buf = Buffer.create 16 in
  let rec go () =
    if lx.pos >= String.length lx.src then fail lx "unterminated string"
    else
      match lx.src.[lx.pos] with
      | '"' -> lx.pos <- lx.pos + 1
      | '\\' ->
          if lx.pos + 2 >= String.length lx.src then fail lx "bad escape"
          else begin
            let hex = String.sub lx.src (lx.pos + 1) 2 in
            (match int_of_string_opt ("0x" ^ hex) with
            | Some code -> Buffer.add_char buf (Char.chr code)
            | None -> fail lx ("bad escape: \\" ^ hex));
            lx.pos <- lx.pos + 3;
            go ()
          end
      | c ->
          Buffer.add_char buf c;
          lx.pos <- lx.pos + 1;
          go ()
  in
  go ();
  Buffer.contents buf

let lex_token lx =
  skip_ws lx;
  if lx.pos >= String.length lx.src then Eof
  else
    let c = lx.src.[lx.pos] in
    match c with
    | '%' ->
        lx.pos <- lx.pos + 1;
        Percent (read_ident lx)
    | '=' ->
        lx.pos <- lx.pos + 1;
        Equals
    | ',' ->
        lx.pos <- lx.pos + 1;
        Comma
    | '*' ->
        lx.pos <- lx.pos + 1;
        Star
    | '(' ->
        lx.pos <- lx.pos + 1;
        Lparen
    | ')' ->
        lx.pos <- lx.pos + 1;
        Rparen
    | '[' ->
        lx.pos <- lx.pos + 1;
        Lbracket
    | ']' ->
        lx.pos <- lx.pos + 1;
        Rbracket
    | '{' ->
        lx.pos <- lx.pos + 1;
        Lbrace
    | '}' ->
        lx.pos <- lx.pos + 1;
        Rbrace
    | '@' ->
        (* @ee(true) / @ee(false) *)
        lx.pos <- lx.pos + 1;
        let word = read_ident lx in
        if word <> "ee" then fail lx ("unknown attribute @" ^ word);
        skip_ws lx;
        if lx.pos >= String.length lx.src || lx.src.[lx.pos] <> '(' then
          fail lx "expected ( after @ee";
        lx.pos <- lx.pos + 1;
        let v = read_ident lx in
        skip_ws lx;
        if lx.pos >= String.length lx.src || lx.src.[lx.pos] <> ')' then
          fail lx "expected ) after @ee(";
        lx.pos <- lx.pos + 1;
        At_ee
          (match v with
          | "true" -> true
          | "false" -> false
          | _ -> fail lx ("bad @ee value: " ^ v))
    | '.' ->
        if
          lx.pos + 2 < String.length lx.src
          && lx.src.[lx.pos + 1] = '.'
          && lx.src.[lx.pos + 2] = '.'
        then begin
          lx.pos <- lx.pos + 3;
          Ellipsis
        end
        else fail lx "unexpected '.'"
    | '-' | '0' .. '9' -> read_number lx
    | 'c' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '"'
      ->
        lx.pos <- lx.pos + 1;
        String_lit (read_string lx)
    | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
        let word = read_ident lx in
        if lx.pos < String.length lx.src && lx.src.[lx.pos] = ':' then begin
          lx.pos <- lx.pos + 1;
          Label_def word
        end
        else Word word
    | ':' ->
        lx.pos <- lx.pos + 1;
        fail lx "unexpected ':'"
    | c -> fail lx (Printf.sprintf "unexpected character %C" c)

let peek lx =
  match lx.peeked with
  | Some t -> t
  | None ->
      let t = lex_token lx in
      lx.peeked <- Some t;
      t

let next lx =
  match lx.peeked with
  | Some t ->
      lx.peeked <- None;
      t
  | None -> lex_token lx

let line lx = lx.line
