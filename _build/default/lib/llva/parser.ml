(* Recursive-descent parser: tokens -> syntactic AST. Name resolution into
   the IR happens in [Resolve]; keeping the phases separate allows forward
   references (mutually recursive functions, loop phis). *)

type aval = Vname of string | Vconst of aconst | Vundef

and aconst =
  | Abool of bool
  | Aint of int64
  | Afloat of float
  | Anull
  | Azero
  | Astring of string
  | Aarray of (Types.t * aval) list
  | Astruct of (Types.t * aval) list

type typed_val = Types.t * aval

type abody =
  | Ibinop of Ir.binop * Types.t * aval * aval
  | Isetcc of Ir.cmp * Types.t * aval * aval
  | Iret of typed_val option
  | Ibr of string
  | Icbr of typed_val * string * string
  | Imbr of typed_val * string * (typed_val * string) list
  | Iinvoke of Types.t * aval * typed_val list * string * string
  | Iunwind
  | Iload of typed_val
  | Istore of typed_val * typed_val
  | Igep of typed_val list
  | Ialloca of Types.t * typed_val option
  | Icast of typed_val * Types.t
  | Icall of Types.t * aval * typed_val list
  | Iphi of Types.t * (aval * string) list

type ainstr = { result : string option; ee : bool option; body : abody }
type ablock = { alabel : string; ainstrs : ainstr list }

type afunc = {
  areturn : Types.t;
  afname : string;
  aparams : (Types.t * string) list;
  avarargs : bool;
  ablocks : ablock list; (* [] means declaration *)
  adeclared : bool;
}

type aglobal = {
  agname : string;
  agconst : bool;
  agexternal : bool;
  agty : Types.t; (* pointee type *)
  aginit : (Types.t * aval) option;
}

type amodule = {
  amname : string;
  atarget : Target.config;
  atypedefs : (string * Types.t) list;
  aglobals : aglobal list;
  afuncs : afunc list;
}

exception Error of string * int

type st = { lx : Lexer.t }

let fail st msg = raise (Error (msg, Lexer.line st.lx))

let expect st tok what =
  let t = Lexer.next st.lx in
  if t <> tok then fail st ("expected " ^ what)

let expect_word st w =
  match Lexer.next st.lx with
  | Lexer.Word w' when w' = w -> ()
  | _ -> fail st ("expected '" ^ w ^ "'")

let percent st what =
  match Lexer.next st.lx with
  | Lexer.Percent n -> n
  | _ -> fail st ("expected %name for " ^ what)

(* ---------- types ---------- *)

let prim_of_word = function
  | "void" -> Some Types.Void
  | "bool" -> Some Types.Bool
  | "ubyte" -> Some Types.Ubyte
  | "sbyte" -> Some Types.Sbyte
  | "ushort" -> Some Types.Ushort
  | "short" -> Some Types.Short
  | "uint" -> Some Types.Uint
  | "int" -> Some Types.Int
  | "ulong" -> Some Types.Ulong
  | "long" -> Some Types.Long
  | "float" -> Some Types.Float
  | "double" -> Some Types.Double
  | "label" -> Some Types.Label
  | _ -> None

let rec parse_type st =
  let base =
    match Lexer.next st.lx with
    | Lexer.Word w -> (
        match prim_of_word w with
        | Some t -> t
        | None -> fail st ("unknown type name: " ^ w))
    | Lexer.Percent n -> Types.Named n
    | Lexer.Lbracket ->
        (* [ N x ty ] *)
        let n =
          match Lexer.next st.lx with
          | Lexer.Int_lit v -> Int64.to_int v
          | _ -> fail st "expected array length"
        in
        expect_word st "x";
        let elem = parse_type st in
        expect st Lexer.Rbracket "]";
        Types.Array (n, elem)
    | Lexer.Lbrace ->
        (* { ty, ty, ... } *)
        if Lexer.peek st.lx = Lexer.Rbrace then begin
          ignore (Lexer.next st.lx);
          Types.Struct []
        end
        else
          let rec fields acc =
            let f = parse_type st in
            match Lexer.next st.lx with
            | Lexer.Comma -> fields (f :: acc)
            | Lexer.Rbrace -> List.rev (f :: acc)
            | _ -> fail st "expected , or } in struct type"
          in
          Types.Struct (fields [])
    | _ -> fail st "expected a type"
  in
  parse_type_suffix st base

and parse_type_suffix st base =
  match Lexer.peek st.lx with
  | Lexer.Star ->
      ignore (Lexer.next st.lx);
      parse_type_suffix st (Types.Pointer base)
  | Lexer.Lparen ->
      ignore (Lexer.next st.lx);
      let rec params acc varargs =
        match Lexer.peek st.lx with
        | Lexer.Rparen ->
            ignore (Lexer.next st.lx);
            (List.rev acc, varargs)
        | Lexer.Ellipsis ->
            ignore (Lexer.next st.lx);
            expect st Lexer.Rparen ")";
            (List.rev acc, true)
        | Lexer.Comma ->
            ignore (Lexer.next st.lx);
            params acc varargs
        | _ ->
            let t = parse_type st in
            params (t :: acc) varargs
      in
      let ps, varargs = params [] false in
      parse_type_suffix st (Types.Func (base, ps, varargs))
  | _ -> base

(* ---------- values ---------- *)

let rec parse_value st =
  match Lexer.next st.lx with
  | Lexer.Percent n -> Vname n
  | Lexer.Int_lit v -> Vconst (Aint v)
  | Lexer.Float_lit v -> Vconst (Afloat v)
  | Lexer.String_lit s ->
      (* the printer appends an explicit \00; strip it back off *)
      let s =
        if String.length s > 0 && s.[String.length s - 1] = '\000' then
          String.sub s 0 (String.length s - 1)
        else s
      in
      Vconst (Astring s)
  | Lexer.Word "true" -> Vconst (Abool true)
  | Lexer.Word "false" -> Vconst (Abool false)
  | Lexer.Word "null" -> Vconst Anull
  | Lexer.Word "zeroinitializer" -> Vconst Azero
  | Lexer.Word "undef" -> Vundef
  | Lexer.Lbracket ->
      let rec elems acc =
        match Lexer.peek st.lx with
        | Lexer.Rbracket ->
            ignore (Lexer.next st.lx);
            List.rev acc
        | Lexer.Comma ->
            ignore (Lexer.next st.lx);
            elems acc
        | _ ->
            let tv = parse_typed_value st in
            elems (tv :: acc)
      in
      Vconst (Aarray (elems []))
  | Lexer.Lbrace ->
      let rec elems acc =
        match Lexer.peek st.lx with
        | Lexer.Rbrace ->
            ignore (Lexer.next st.lx);
            List.rev acc
        | Lexer.Comma ->
            ignore (Lexer.next st.lx);
            elems acc
        | _ ->
            let tv = parse_typed_value st in
            elems (tv :: acc)
      in
      Vconst (Astruct (elems []))
  | _ -> fail st "expected a value"

and parse_typed_value st =
  let ty = parse_type st in
  let v = parse_value st in
  (ty, v)

let parse_label st =
  expect_word st "label";
  percent st "label"

(* ---------- instructions ---------- *)

let binop_of_word = function
  | "add" -> Some Ir.Add
  | "sub" -> Some Ir.Sub
  | "mul" -> Some Ir.Mul
  | "div" -> Some Ir.Div
  | "rem" -> Some Ir.Rem
  | "and" -> Some Ir.And
  | "or" -> Some Ir.Or
  | "xor" -> Some Ir.Xor
  | "shl" -> Some Ir.Shl
  | "shr" -> Some Ir.Shr
  | _ -> None

let cmp_of_word = function
  | "seteq" -> Some Ir.Eq
  | "setne" -> Some Ir.Ne
  | "setlt" -> Some Ir.Lt
  | "setgt" -> Some Ir.Gt
  | "setle" -> Some Ir.Le
  | "setge" -> Some Ir.Ge
  | _ -> None

let parse_call_args st =
  expect st Lexer.Lparen "(";
  let rec go acc =
    match Lexer.peek st.lx with
    | Lexer.Rparen ->
        ignore (Lexer.next st.lx);
        List.rev acc
    | Lexer.Comma ->
        ignore (Lexer.next st.lx);
        go acc
    | _ ->
        let tv = parse_typed_value st in
        go (tv :: acc)
  in
  go []

let parse_body st opword =
  match binop_of_word opword with
  | Some op ->
      let ty = parse_type st in
      let a = parse_value st in
      expect st Lexer.Comma ",";
      (* shifts carry a typed ubyte amount *)
      let b =
        match op with
        | Ir.Shl | Ir.Shr ->
            let _, v = parse_typed_value st in
            v
        | _ -> parse_value st
      in
      Ibinop (op, ty, a, b)
  | None -> (
      match cmp_of_word opword with
      | Some c ->
          let ty = parse_type st in
          let a = parse_value st in
          expect st Lexer.Comma ",";
          let b = parse_value st in
          Isetcc (c, ty, a, b)
      | None -> (
          match opword with
          | "ret" ->
              if Lexer.peek st.lx = Lexer.Word "void" then begin
                ignore (Lexer.next st.lx);
                Iret None
              end
              else Iret (Some (parse_typed_value st))
          | "br" ->
              if Lexer.peek st.lx = Lexer.Word "label" then
                Ibr (parse_label st)
              else begin
                let tv = parse_typed_value st in
                expect st Lexer.Comma ",";
                let t = parse_label st in
                expect st Lexer.Comma ",";
                let f = parse_label st in
                Icbr (tv, t, f)
              end
          | "mbr" ->
              let tv = parse_typed_value st in
              expect st Lexer.Comma ",";
              let default = parse_label st in
              expect st Lexer.Lbracket "[";
              let rec cases acc =
                match Lexer.peek st.lx with
                | Lexer.Rbracket ->
                    ignore (Lexer.next st.lx);
                    List.rev acc
                | Lexer.Semi | Lexer.Comma ->
                    ignore (Lexer.next st.lx);
                    cases acc
                | _ ->
                    let cv = parse_typed_value st in
                    expect st Lexer.Comma ",";
                    let dest = parse_label st in
                    cases ((cv, dest) :: acc)
              in
              Imbr (tv, default, cases [])
          | "invoke" ->
              let ret = parse_type st in
              let callee = parse_value st in
              let args = parse_call_args st in
              expect_word st "to";
              let normal = parse_label st in
              expect_word st "except";
              let except = parse_label st in
              Iinvoke (ret, callee, args, normal, except)
          | "unwind" -> Iunwind
          | "load" -> Iload (parse_typed_value st)
          | "store" ->
              let v = parse_typed_value st in
              expect st Lexer.Comma ",";
              let p = parse_typed_value st in
              Istore (v, p)
          | "getelementptr" ->
              let rec parts acc =
                let tv = parse_typed_value st in
                if Lexer.peek st.lx = Lexer.Comma then begin
                  ignore (Lexer.next st.lx);
                  parts (tv :: acc)
                end
                else List.rev (tv :: acc)
              in
              Igep (parts [])
          | "alloca" ->
              let elem = parse_type st in
              if Lexer.peek st.lx = Lexer.Comma then begin
                ignore (Lexer.next st.lx);
                Ialloca (elem, Some (parse_typed_value st))
              end
              else Ialloca (elem, None)
          | "cast" ->
              let tv = parse_typed_value st in
              expect_word st "to";
              let dst = parse_type st in
              Icast (tv, dst)
          | "call" ->
              let ty = parse_type st in
              let callee = parse_value st in
              let args = parse_call_args st in
              Icall (ty, callee, args)
          | "phi" ->
              let ty = parse_type st in
              let rec pairs acc =
                expect st Lexer.Lbracket "[";
                let v = parse_value st in
                expect st Lexer.Comma ",";
                let b = percent st "phi predecessor" in
                expect st Lexer.Rbracket "]";
                if Lexer.peek st.lx = Lexer.Comma then begin
                  ignore (Lexer.next st.lx);
                  pairs ((v, b) :: acc)
                end
                else List.rev ((v, b) :: acc)
              in
              Iphi (ty, pairs [])
          | w -> fail st ("unknown instruction: " ^ w)))

let parse_instr st first =
  match first with
  | Lexer.Percent result ->
      expect st Lexer.Equals "=";
      let opword =
        match Lexer.next st.lx with
        | Lexer.Word w -> w
        | _ -> fail st "expected opcode"
      in
      let body = parse_body st opword in
      let ee =
        match Lexer.peek st.lx with
        | Lexer.At_ee b ->
            ignore (Lexer.next st.lx);
            Some b
        | _ -> None
      in
      { result = Some result; ee; body }
  | Lexer.Word opword ->
      let body = parse_body st opword in
      let ee =
        match Lexer.peek st.lx with
        | Lexer.At_ee b ->
            ignore (Lexer.next st.lx);
            Some b
        | _ -> None
      in
      { result = None; ee; body }
  | _ -> fail st "expected an instruction"

(* ---------- functions ---------- *)

let parse_params st =
  expect st Lexer.Lparen "(";
  let counter = ref 0 in
  let rec go acc varargs =
    match Lexer.peek st.lx with
    | Lexer.Rparen ->
        ignore (Lexer.next st.lx);
        (List.rev acc, varargs)
    | Lexer.Comma ->
        ignore (Lexer.next st.lx);
        go acc varargs
    | Lexer.Ellipsis ->
        ignore (Lexer.next st.lx);
        expect st Lexer.Rparen ")";
        (List.rev acc, true)
    | _ ->
        let ty = parse_type st in
        let name =
          match Lexer.peek st.lx with
          | Lexer.Percent n ->
              ignore (Lexer.next st.lx);
              n
          | _ ->
              incr counter;
              Printf.sprintf "arg%d" !counter
        in
        go ((ty, name) :: acc) varargs
  in
  go [] false

let parse_blocks st =
  (* first token after '{' must be a label definition *)
  let rec blocks acc =
    match Lexer.next st.lx with
    | Lexer.Rbrace -> List.rev acc
    | Lexer.Label_def name ->
        let rec instrs iacc =
          match Lexer.peek st.lx with
          | Lexer.Label_def _ | Lexer.Rbrace -> List.rev iacc
          | _ ->
              let first = Lexer.next st.lx in
              instrs (parse_instr st first :: iacc)
        in
        blocks ({ alabel = name; ainstrs = instrs [] } :: acc)
    | _ -> fail st "expected a block label"
  in
  blocks []

let parse_function st ~declared =
  let areturn = parse_type st in
  let afname = percent st "function name" in
  let aparams, avarargs = parse_params st in
  if declared then
    { areturn; afname; aparams; avarargs; ablocks = []; adeclared = true }
  else begin
    expect st Lexer.Lbrace "{";
    let ablocks = parse_blocks st in
    { areturn; afname; aparams; avarargs; ablocks; adeclared = false }
  end

(* ---------- module ---------- *)

(* The printer records the module name in a "; ModuleID = '...'" comment;
   recover it so print/parse round-trips exactly. *)
let scan_module_id src =
  let prefix = "; ModuleID = '" in
  let rec find_line pos =
    if pos >= String.length src then None
    else
      let eol =
        match String.index_from_opt src pos '\n' with
        | Some e -> e
        | None -> String.length src
      in
      let line = String.sub src pos (eol - pos) in
      if String.length line > String.length prefix
         && String.sub line 0 (String.length prefix) = prefix
      then
        let rest = String.sub line (String.length prefix)
            (String.length line - String.length prefix)
        in
        match String.index_opt rest '\'' with
        | Some q -> Some (String.sub rest 0 q)
        | None -> None
      else find_line (eol + 1)
  in
  find_line 0

let parse_module ?name src =
  let name =
    match name with
    | Some n -> n
    | None -> ( match scan_module_id src with Some n -> n | None -> "parsed")
  in
  let st = { lx = Lexer.create src } in
  let target = ref Target.default in
  let typedefs = ref [] in
  let globals = ref [] in
  let funcs = ref [] in
  let rec top () =
    match Lexer.peek st.lx with
    | Lexer.Eof -> ()
    | Lexer.Word "target" ->
        ignore (Lexer.next st.lx);
        (match Lexer.next st.lx with
        | Lexer.Word "pointersize" ->
            expect st Lexer.Equals "=";
            let bits =
              match Lexer.next st.lx with
              | Lexer.Int_lit v -> Int64.to_int v
              | _ -> fail st "expected pointer size"
            in
            target := { !target with Target.ptr_size = bits / 8 }
        | Lexer.Word "endian" ->
            expect st Lexer.Equals "=";
            let e =
              match Lexer.next st.lx with
              | Lexer.Word "little" -> Target.Little
              | Lexer.Word "big" -> Target.Big
              | _ -> fail st "expected little or big"
            in
            target := { !target with Target.endian = e }
        | _ -> fail st "expected pointersize or endian");
        top ()
    | Lexer.Word "declare" ->
        ignore (Lexer.next st.lx);
        funcs := parse_function st ~declared:true :: !funcs;
        top ()
    | Lexer.Percent n -> (
        ignore (Lexer.next st.lx);
        expect st Lexer.Equals "=";
        match Lexer.next st.lx with
        | Lexer.Word "type" ->
            typedefs := (n, parse_type st) :: !typedefs;
            top ()
        | Lexer.Word (("global" | "constant") as kind) ->
            let init = parse_typed_value st in
            globals :=
              {
                agname = n;
                agconst = kind = "constant";
                agexternal = false;
                agty = fst init;
                aginit = Some init;
              }
              :: !globals;
            top ()
        | Lexer.Word "external" ->
            let kind =
              match Lexer.next st.lx with
              | Lexer.Word (("global" | "constant") as k) -> k
              | _ -> fail st "expected global or constant"
            in
            let ty = parse_type st in
            globals :=
              {
                agname = n;
                agconst = kind = "constant";
                agexternal = true;
                agty = ty;
                aginit = None;
              }
              :: !globals;
            top ()
        | _ -> fail st "expected type/global/constant/external")
    | _ ->
        (* a function definition starts with its return type *)
        funcs := parse_function st ~declared:false :: !funcs;
        top ()
  in
  top ();
  {
    amname = name;
    atarget = !target;
    atypedefs = List.rev !typedefs;
    aglobals = List.rev !globals;
    afuncs = List.rev !funcs;
  }
