(* Textual LLVA assembly printer, following the paper's Fig. 2 syntax
   (LLVM 1.x style). The output round-trips through [Parser]/[Resolve].

   Within a function every value and block receives a unique printed name;
   unnamed or colliding names are renumbered. An instruction whose
   ExceptionsEnabled attribute differs from its opcode default carries an
   explicit "@ee(bool)" suffix. *)

open Ir

type namer = {
  mutable taken : (string, unit) Hashtbl.t;
  instr_names : (int, string) Hashtbl.t;
  block_names : (int, string) Hashtbl.t;
  arg_names : (int, string) Hashtbl.t;
}

let mk_namer () =
  {
    taken = Hashtbl.create 64;
    instr_names = Hashtbl.create 64;
    block_names = Hashtbl.create 64;
    arg_names = Hashtbl.create 16;
  }

let sanitize name =
  if name = "" then ""
  else
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> c
        | _ -> '_')
      name

let unique namer base =
  let base = sanitize base in
  let base = if base = "" then "v" else base in
  if not (Hashtbl.mem namer.taken base) then begin
    Hashtbl.replace namer.taken base ();
    base
  end
  else
    let rec go k =
      let cand = Printf.sprintf "%s.%d" base k in
      if Hashtbl.mem namer.taken cand then go (k + 1)
      else begin
        Hashtbl.replace namer.taken cand ();
        cand
      end
    in
    go 1

let name_function namer f =
  List.iter
    (fun a -> Hashtbl.replace namer.arg_names a.aid (unique namer a.aname))
    f.fargs;
  List.iter
    (fun b ->
      Hashtbl.replace namer.block_names b.blid
        (unique namer (if b.bname = "" then "bb" else b.bname));
      List.iter
        (fun i ->
          if not (Types.equal i.ity Types.Void) then
            Hashtbl.replace namer.instr_names i.iid (unique namer i.iname))
        b.instrs)
    f.fblocks

(* ---------- constants ---------- *)

let escape_string s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      let code = Char.code c in
      if code >= 32 && code < 127 && c <> '"' && c <> '\\' then
        Buffer.add_char buf c
      else Buffer.add_string buf (Printf.sprintf "\\%02X" code))
    s;
  Buffer.contents buf

let float_repr v =
  (* a representation that parses back to the same float *)
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%h" v

let rec const_body c =
  match c.ckind with
  | Cbool b -> string_of_bool b
  | Cint v ->
      if Types.is_signed c.cty then Int64.to_string v
      else Printf.sprintf "%Lu" v
  | Cfloat v -> float_repr v
  | Cnull -> "null"
  | Czero -> "zeroinitializer"
  | Carray elems ->
      "[ " ^ String.concat ", " (List.map typed_const elems) ^ " ]"
  | Cstruct elems ->
      "{ " ^ String.concat ", " (List.map typed_const elems) ^ " }"
  | Cstring s -> Printf.sprintf "c\"%s\\00\"" (escape_string s)
  | Cglobal_ref name -> "%" ^ name

and typed_const c = Types.to_string c.cty ^ " " ^ const_body c

(* ---------- values ---------- *)

let value_body namer v =
  match v with
  | Const c -> const_body c
  | Vreg i -> (
      match Hashtbl.find_opt namer.instr_names i.iid with
      | Some n -> "%" ^ n
      | None -> Printf.sprintf "%%__i%d" i.iid)
  | Varg a -> (
      match Hashtbl.find_opt namer.arg_names a.aid with
      | Some n -> "%" ^ n
      | None -> Printf.sprintf "%%__a%d" a.aid)
  | Vglobal g -> "%" ^ g.gname
  | Vfunc f -> "%" ^ f.fname
  | Vblock b -> (
      match Hashtbl.find_opt namer.block_names b.blid with
      | Some n -> "%" ^ n
      | None -> Printf.sprintf "%%__b%d" b.blid)
  | Vundef _ -> "undef"

let typed_value namer v =
  Types.to_string (type_of_value v) ^ " " ^ value_body namer v

let label namer v = "label " ^ value_body namer v

(* ---------- instructions ---------- *)

let instr_rhs namer i =
  let v k = value_body namer i.operands.(k) in
  let tv k = typed_value namer i.operands.(k) in
  let lbl k = label namer i.operands.(k) in
  match i.op with
  | Binop ((Shl | Shr) as op) ->
      (* the shift amount is a ubyte, printed with its own type *)
      Printf.sprintf "%s %s %s, %s" (binop_name op)
        (Types.to_string (type_of_value i.operands.(0)))
        (v 0) (tv 1)
  | Binop op ->
      Printf.sprintf "%s %s %s, %s" (binop_name op)
        (Types.to_string (type_of_value i.operands.(0)))
        (v 0) (v 1)
  | Setcc c ->
      Printf.sprintf "%s %s %s, %s" (cmp_name c)
        (Types.to_string (type_of_value i.operands.(0)))
        (v 0) (v 1)
  | Ret ->
      if Array.length i.operands = 0 then "ret void" else "ret " ^ tv 0
  | Br ->
      if Array.length i.operands = 1 then "br " ^ lbl 0
      else Printf.sprintf "br %s, %s, %s" (tv 0) (lbl 1) (lbl 2)
  | Mbr ->
      let rec cases k acc =
        if k >= Array.length i.operands then List.rev acc
        else cases (k + 2) (Printf.sprintf "%s, %s" (tv k) (lbl (k + 1)) :: acc)
      in
      Printf.sprintf "mbr %s, %s [ %s ]" (tv 0) (lbl 1)
        (String.concat ", " (cases 2 []))
  | Invoke ->
      let args =
        List.init
          (Array.length i.operands - 3)
          (fun k -> typed_value namer i.operands.(k + 3))
      in
      Printf.sprintf "invoke %s %s(%s) to %s except %s"
        (Types.to_string i.ity) (v 0)
        (String.concat ", " args)
        (lbl 1) (lbl 2)
  | Unwind -> "unwind"
  | Load -> "load " ^ tv 0
  | Store -> Printf.sprintf "store %s, %s" (tv 0) (tv 1)
  | Getelementptr ->
      let parts = List.init (Array.length i.operands) (fun k -> tv k) in
      "getelementptr " ^ String.concat ", " parts
  | Alloca ->
      let elem =
        match i.ity with
        | Types.Pointer e -> Types.to_string e
        | _ -> "?"
      in
      if Array.length i.operands = 0 then "alloca " ^ elem
      else Printf.sprintf "alloca %s, %s" elem (tv 0)
  | Cast ->
      Printf.sprintf "cast %s to %s" (tv 0) (Types.to_string i.ity)
  | Call ->
      let callee = i.operands.(0) in
      let args =
        List.init
          (Array.length i.operands - 1)
          (fun k -> typed_value namer i.operands.(k + 1))
      in
      let callee_str =
        match callee with
        | Vfunc _ -> Printf.sprintf "%s %s" (Types.to_string i.ity) (v 0)
        | _ ->
            (* indirect call: print the full pointer-to-function type *)
            Printf.sprintf "%s %s"
              (Types.to_string (type_of_value callee))
              (v 0)
      in
      Printf.sprintf "call %s(%s)" callee_str (String.concat ", " args)
  | Phi ->
      let pairs =
        List.map
          (fun (value, blk) ->
            Printf.sprintf "[ %s, %s ]" (value_body namer value)
              (value_body namer (Vblock blk)))
          (phi_incoming i)
      in
      Printf.sprintf "phi %s %s" (Types.to_string i.ity)
        (String.concat ", " pairs)

let instr_line namer i =
  let rhs = instr_rhs namer i in
  let lhs =
    if Types.equal i.ity Types.Void then rhs
    else
      match Hashtbl.find_opt namer.instr_names i.iid with
      | Some n -> Printf.sprintf "%%%s = %s" n rhs
      | None -> rhs
  in
  if i.exceptions_enabled <> default_exceptions_enabled i.op then
    Printf.sprintf "%s @ee(%b)" lhs i.exceptions_enabled
  else lhs

(* ---------- functions and modules ---------- *)

let func_header namer f =
  let params =
    List.map
      (fun a ->
        Printf.sprintf "%s %%%s" (Types.to_string a.aty)
          (match Hashtbl.find_opt namer.arg_names a.aid with
          | Some n -> n
          | None -> a.aname))
      f.fargs
  in
  let params = if f.fvarargs then params @ [ "..." ] else params in
  Printf.sprintf "%s %%%s(%s)"
    (Types.to_string f.freturn)
    f.fname
    (String.concat ", " params)

let func_to_buf buf f =
  let namer = mk_namer () in
  name_function namer f;
  if is_declaration f then
    Buffer.add_string buf ("declare " ^ func_header namer f ^ "\n")
  else begin
    Buffer.add_string buf (func_header namer f ^ " {\n");
    List.iter
      (fun b ->
        let bn =
          match Hashtbl.find_opt namer.block_names b.blid with
          | Some n -> n
          | None -> Printf.sprintf "__b%d" b.blid
        in
        Buffer.add_string buf (bn ^ ":\n");
        List.iter
          (fun i -> Buffer.add_string buf ("  " ^ instr_line namer i ^ "\n"))
          b.instrs)
      f.fblocks;
    Buffer.add_string buf "}\n"
  end

let func_to_string f =
  let buf = Buffer.create 1024 in
  func_to_buf buf f;
  Buffer.contents buf

let global_to_string g =
  let kind = if g.gconst then "constant" else "global" in
  match g.ginit with
  | Some init -> Printf.sprintf "%%%s = %s %s" g.gname kind (typed_const init)
  | None ->
      Printf.sprintf "%%%s = external %s %s" g.gname kind
        (Types.to_string g.gty)

let module_to_string m =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "; ModuleID = '%s'\n" m.mname);
  Buffer.add_string buf
    (Printf.sprintf "target pointersize = %d\n" (m.target.Target.ptr_size * 8));
  Buffer.add_string buf
    (Printf.sprintf "target endian = %s\n"
       (match m.target.Target.endian with
       | Target.Little -> "little"
       | Target.Big -> "big"));
  List.iter
    (fun (name, ty) ->
      Buffer.add_string buf
        (Printf.sprintf "%%%s = type %s\n" name (Types.to_string ty)))
    m.typedefs;
  List.iter
    (fun g -> Buffer.add_string buf (global_to_string g ^ "\n"))
    m.globals;
  List.iter
    (fun f ->
      Buffer.add_char buf '\n';
      func_to_buf buf f)
    m.funcs;
  Buffer.contents buf
