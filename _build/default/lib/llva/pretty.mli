(** Textual LLVA assembly printer, following the paper's Fig. 2 syntax.
    Output round-trips through {!Resolve.parse_module}. Within a function
    every value and block receives a unique printed name; an instruction
    whose ExceptionsEnabled attribute differs from its opcode default
    carries an explicit ["@ee(bool)"] suffix. *)

val typed_const : Ir.const -> string
(** ["int 42"], ["[ int 1, int 2 ]"], ... *)

val func_to_string : Ir.func -> string
(** A whole function definition (or a [declare] line). *)

val global_to_string : Ir.global -> string

val module_to_string : Ir.modl -> string
(** The full module: header comment, target flags, typedefs, globals,
    functions. *)
