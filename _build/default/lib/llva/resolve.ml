(* Second parsing phase: resolve a syntactic [Parser.amodule] into the
   in-memory IR. Performed in stages so forward references work:
   1. module shell: target, typedefs
   2. global and function shells (symbols)
   3. global initializers
   4. function bodies: first create every block and typed instruction
      shell, then fill in operands. *)

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ---------- constants ---------- *)

let rec resolve_const ty (v : Parser.aval) : Ir.const =
  match v with
  | Parser.Vname n -> { Ir.cty = ty; ckind = Ir.Cglobal_ref n }
  | Parser.Vundef -> { Ir.cty = ty; ckind = Ir.Czero }
  | Parser.Vconst c -> (
      match c with
      | Parser.Abool b -> { Ir.cty = ty; ckind = Ir.Cbool b }
      | Parser.Aint x ->
          if Types.is_fp ty then { Ir.cty = ty; ckind = Ir.Cfloat (Int64.to_float x) }
          else { Ir.cty = ty; ckind = Ir.Cint (Ir.normalize_int ty x) }
      | Parser.Afloat x -> { Ir.cty = ty; ckind = Ir.Cfloat x }
      | Parser.Anull -> { Ir.cty = ty; ckind = Ir.Cnull }
      | Parser.Azero -> { Ir.cty = ty; ckind = Ir.Czero }
      | Parser.Astring s -> { Ir.cty = ty; ckind = Ir.Cstring s }
      | Parser.Aarray elems ->
          { Ir.cty = ty; ckind = Ir.Carray (List.map (fun (t, e) -> resolve_const t e) elems) }
      | Parser.Astruct elems ->
          {
            Ir.cty = ty;
            ckind = Ir.Cstruct (List.map (fun (t, e) -> resolve_const t e) elems);
          })

(* ---------- per-function resolution ---------- *)

type fctx = {
  m : Ir.modl;
  env : Types.env;
  locals : (string, Ir.value) Hashtbl.t;
  blocks : (string, Ir.block) Hashtbl.t;
}

let lookup_block ctx name =
  match Hashtbl.find_opt ctx.blocks name with
  | Some b -> b
  | None -> fail "unknown block label %%%s" name

let lookup_value ctx ty name =
  match Hashtbl.find_opt ctx.locals name with
  | Some v -> v
  | None -> (
      match Ir.find_func ctx.m name with
      | Some f -> Ir.Vfunc f
      | None -> (
          match Ir.find_global ctx.m name with
          | Some g -> Ir.Vglobal g
          | None -> fail "unknown value %%%s of type %s" name (Types.to_string ty)))

let resolve_value ctx ty (v : Parser.aval) : Ir.value =
  match v with
  | Parser.Vname n -> lookup_value ctx ty n
  | Parser.Vundef -> Ir.Vundef ty
  | Parser.Vconst _ -> Ir.Const (resolve_const ty v)

(* Result type of a GEP from the AST: struct indexes must be integer
   literals. *)
let gep_type ctx parts =
  match parts with
  | [] -> fail "getelementptr needs a pointer operand"
  | (pty, _) :: indexes ->
      let elem = Types.pointee ctx.env pty in
      let rec walk ty = function
        | [] -> Types.Pointer ty
        | (_, idx) :: rest -> (
            match Types.resolve ctx.env ty with
            | Types.Array (_, e) -> walk e rest
            | Types.Struct fields -> (
                match idx with
                | Parser.Vconst (Parser.Aint n) -> (
                    match List.nth_opt fields (Int64.to_int n) with
                    | Some fty -> walk fty rest
                    | None -> fail "struct field index out of range")
                | _ -> fail "struct index must be a constant integer")
            | t -> fail "cannot index into %s" (Types.to_string t))
      in
      (* the first index steps over the pointer itself *)
      (match indexes with
      | [] -> Types.Pointer elem
      | _ :: rest -> walk elem rest)

let call_result_type ctx ty =
  match Types.resolve ctx.env ty with
  | Types.Pointer fty -> (
      match Types.resolve ctx.env fty with
      | Types.Func (r, _, _) -> r
      | _ -> ty)
  | Types.Func (r, _, _) -> r
  | _ -> ty

let body_result_type ctx (body : Parser.abody) =
  match body with
  | Parser.Ibinop (_, ty, _, _) -> ty
  | Parser.Isetcc _ -> Types.Bool
  | Parser.Iload (pty, _) -> Types.pointee ctx.env pty
  | Parser.Igep parts -> gep_type ctx parts
  | Parser.Ialloca (elem, _) -> Types.Pointer elem
  | Parser.Icast (_, dst) -> dst
  | Parser.Icall (ty, _, _) -> call_result_type ctx ty
  | Parser.Iinvoke (ty, _, _, _, _) -> call_result_type ctx ty
  | Parser.Iphi (ty, _) -> ty
  | Parser.Iret _ | Parser.Ibr _ | Parser.Icbr _ | Parser.Imbr _
  | Parser.Iunwind
  | Parser.Istore _ ->
      Types.Void

let opcode_of_body (body : Parser.abody) =
  match body with
  | Parser.Ibinop (op, _, _, _) -> Ir.Binop op
  | Parser.Isetcc (c, _, _, _) -> Ir.Setcc c
  | Parser.Iret _ -> Ir.Ret
  | Parser.Ibr _ | Parser.Icbr _ -> Ir.Br
  | Parser.Imbr _ -> Ir.Mbr
  | Parser.Iinvoke _ -> Ir.Invoke
  | Parser.Iunwind -> Ir.Unwind
  | Parser.Iload _ -> Ir.Load
  | Parser.Istore _ -> Ir.Store
  | Parser.Igep _ -> Ir.Getelementptr
  | Parser.Ialloca _ -> Ir.Alloca
  | Parser.Icast _ -> Ir.Cast
  | Parser.Icall _ -> Ir.Call
  | Parser.Iphi _ -> Ir.Phi

let fill_operands ctx (instr : Ir.instr) (body : Parser.abody) =
  let value (ty, v) = resolve_value ctx ty v in
  let lbl name = Ir.Vblock (lookup_block ctx name) in
  let ops =
    match body with
    | Parser.Ibinop (op, ty, a, b) ->
        let bty = match op with Ir.Shl | Ir.Shr -> Types.Ubyte | _ -> ty in
        [ resolve_value ctx ty a; resolve_value ctx bty b ]
    | Parser.Isetcc (_, ty, a, b) ->
        [ resolve_value ctx ty a; resolve_value ctx ty b ]
    | Parser.Iret None -> []
    | Parser.Iret (Some tv) -> [ value tv ]
    | Parser.Ibr l -> [ lbl l ]
    | Parser.Icbr (tv, t, f) -> [ value tv; lbl t; lbl f ]
    | Parser.Imbr (tv, default, cases) ->
        value tv :: lbl default
        :: List.concat_map (fun (cv, dest) -> [ value cv; lbl dest ]) cases
    | Parser.Iinvoke (ty, callee, args, normal, except) ->
        resolve_value ctx ty callee :: lbl normal :: lbl except
        :: List.map value args
    | Parser.Iunwind -> []
    | Parser.Iload tv -> [ value tv ]
    | Parser.Istore (v, p) -> [ value v; value p ]
    | Parser.Igep parts -> List.map value parts
    | Parser.Ialloca (_, None) -> []
    | Parser.Ialloca (_, Some tv) -> [ value tv ]
    | Parser.Icast (tv, _) -> [ value tv ]
    | Parser.Icall (ty, callee, args) ->
        resolve_value ctx ty callee :: List.map value args
    | Parser.Iphi (ty, pairs) ->
        List.concat_map
          (fun (v, b) -> [ resolve_value ctx ty v; lbl b ])
          pairs
  in
  instr.Ir.operands <- Array.of_list ops;
  Ir.register_operand_uses instr

let resolve_function ctx (f : Ir.func) (af : Parser.afunc) =
  Hashtbl.reset ctx.locals;
  Hashtbl.reset ctx.blocks;
  List.iter
    (fun (a : Ir.arg) ->
      if Hashtbl.mem ctx.locals a.Ir.aname then
        fail "duplicate parameter %%%s in %%%s" a.Ir.aname f.Ir.fname;
      Hashtbl.replace ctx.locals a.Ir.aname (Ir.Varg a))
    f.Ir.fargs;
  (* pass 1: create blocks and typed instruction shells *)
  let shells =
    List.map
      (fun (ab : Parser.ablock) ->
        if Hashtbl.mem ctx.blocks ab.Parser.alabel then
          fail "duplicate block label %%%s" ab.Parser.alabel;
        let b = Ir.mk_block ~name:ab.Parser.alabel () in
        Hashtbl.replace ctx.blocks ab.Parser.alabel b;
        Ir.append_block f b;
        (b, ab))
      af.Parser.ablocks
  in
  let pending =
    List.concat_map
      (fun ((b : Ir.block), (ab : Parser.ablock)) ->
        List.map
          (fun (ai : Parser.ainstr) ->
            let ty = body_result_type ctx ai.Parser.body in
            let name = Option.value ai.Parser.result ~default:"" in
            let instr =
              Ir.mk_instr ~name (opcode_of_body ai.Parser.body) [||] ty
            in
            (match ai.Parser.ee with
            | Some b' -> instr.Ir.exceptions_enabled <- b'
            | None -> ());
            Ir.append_instr b instr;
            (match ai.Parser.result with
            | Some rname ->
                if Hashtbl.mem ctx.locals rname then
                  fail "duplicate SSA name %%%s in %%%s" rname f.Ir.fname;
                Hashtbl.replace ctx.locals rname (Ir.Vreg instr)
            | None -> ());
            (instr, ai.Parser.body))
          ab.Parser.ainstrs)
      shells
  in
  (* pass 2: resolve operands *)
  List.iter (fun (instr, body) -> fill_operands ctx instr body) pending

let resolve_module (am : Parser.amodule) : Ir.modl =
  let m = Ir.mk_module ~name:am.Parser.amname ~target:am.Parser.atarget () in
  List.iter
    (fun (name, ty) -> Ir.add_typedef m name ty)
    am.Parser.atypedefs;
  let env = Ir.type_env m in
  (* symbols first *)
  List.iter
    (fun (ag : Parser.aglobal) ->
      let g =
        Ir.mk_global ~name:ag.Parser.agname ~ty:ag.Parser.agty
          ~constant:ag.Parser.agconst ()
      in
      Ir.add_global m g)
    am.Parser.aglobals;
  List.iter
    (fun (af : Parser.afunc) ->
      let f =
        Ir.mk_func ~name:af.Parser.afname ~return:af.Parser.areturn
          ~params:(List.map (fun (ty, n) -> (n, ty)) af.Parser.aparams)
          ~varargs:af.Parser.avarargs ()
      in
      Ir.add_func m f)
    am.Parser.afuncs;
  (* global initializers may reference any symbol *)
  List.iter
    (fun (ag : Parser.aglobal) ->
      match ag.Parser.aginit with
      | Some (ty, v) ->
          let g = Option.get (Ir.find_global m ag.Parser.agname) in
          g.Ir.ginit <- Some (resolve_const ty v)
      | None -> ())
    am.Parser.aglobals;
  (* function bodies *)
  let ctx = { m; env; locals = Hashtbl.create 64; blocks = Hashtbl.create 16 } in
  List.iter
    (fun (af : Parser.afunc) ->
      if not af.Parser.adeclared then
        let f = Option.get (Ir.find_func m af.Parser.afname) in
        resolve_function ctx f af)
    am.Parser.afuncs;
  m

let parse_module ?name src = resolve_module (Parser.parse_module ?name src)
