(** Second parsing phase: resolve a syntactic {!Parser.amodule} into the
    in-memory IR, handling forward references (mutually recursive
    functions, loop phis). *)

exception Error of string

val resolve_module : Parser.amodule -> Ir.modl
(** @raise Error on unknown names, duplicate definitions, etc. *)

val parse_module : ?name:string -> string -> Ir.modl
(** [Parser.parse_module] followed by {!resolve_module}: text to IR in
    one call. When [name] is omitted it is recovered from the
    ["; ModuleID = '...'"] header comment if present. *)
