(* Target configuration flags carried in every LLVA module (paper §3.2):
   the only implementation details the V-ISA exposes are pointer size and
   endianness, and only non-type-safe code may depend on them. *)

type endianness = Little | Big

type config = {
  ptr_size : int; (* bytes: 4 or 8 *)
  endian : endianness;
}

let little32 = { ptr_size = 4; endian = Little }
let big32 = { ptr_size = 4; endian = Big }
let little64 = { ptr_size = 8; endian = Little }
let big64 = { ptr_size = 8; endian = Big }

let default = little32

let equal a b = a.ptr_size = b.ptr_size && a.endian = b.endian

let to_string c =
  Printf.sprintf "%d-bit %s-endian"
    (c.ptr_size * 8)
    (match c.endian with Little -> "little" | Big -> "big")

let all = [ little32; big32; little64; big64 ]
