(** Target configuration flags carried in every LLVA module.

    Per paper §3.2, pointer size and endianness are the only
    implementation details the V-ISA exposes; they are recorded in the
    module header (and in virtual object code) so a translator for a
    different configuration can still execute the program. *)

type endianness = Little | Big

type config = {
  ptr_size : int;  (** pointer size in bytes: 4 or 8 *)
  endian : endianness;
}

val little32 : config
val big32 : config
val little64 : config
val big64 : config

val default : config
(** [little32], matching the paper's primary IA-32 target. *)

val equal : config -> config -> bool

val to_string : config -> string
(** e.g. ["32-bit little-endian"]. *)

val all : config list
(** The four supported configurations, for portability sweeps. *)
