(* The LLVA type system (paper §3.1): primitive types with predefined sizes
   plus exactly four derived types (pointer, array, structure, function).
   Named types allow recursive structures such as the paper's QuadTree. *)

type t =
  | Void
  | Bool
  | Ubyte
  | Sbyte
  | Ushort
  | Short
  | Uint
  | Int
  | Ulong
  | Long
  | Float
  | Double
  | Label
  | Pointer of t
  | Array of int * t (* element count, element type *)
  | Struct of t list
  | Func of t * t list * bool (* return type, parameter types, varargs *)
  | Named of string

(* Environment resolving named types; populated from a module's typedefs. *)
type env = (string, t) Hashtbl.t

let empty_env () : env = Hashtbl.create 16

let env_of_typedefs defs : env =
  let env = Hashtbl.create 16 in
  List.iter (fun (name, ty) -> Hashtbl.replace env name ty) defs;
  env

exception Unresolved of string

(* Resolve one level of naming: the result is never [Named _]. *)
let rec resolve env ty =
  match ty with
  | Named n -> (
      match Hashtbl.find_opt env n with
      | Some ty' -> resolve env ty'
      | None -> raise (Unresolved n))
  | _ -> ty

let is_integer = function
  | Ubyte | Sbyte | Ushort | Short | Uint | Int | Ulong | Long -> true
  | _ -> false

let is_signed = function Sbyte | Short | Int | Long -> true | _ -> false

let is_unsigned = function
  | Ubyte | Ushort | Uint | Ulong | Bool -> true
  | _ -> false

let is_fp = function Float | Double -> true | _ -> false
let is_pointer = function Pointer _ -> true | _ -> false

(* Scalar values are the only things virtual registers may hold. *)
let is_scalar = function
  | Bool | Ubyte | Sbyte | Ushort | Short | Uint | Int | Ulong | Long | Float
  | Double | Pointer _ ->
      true
  | _ -> false

let is_first_class ty = is_scalar ty

(* Width in bits of an integer or bool type. *)
let bitwidth = function
  | Bool -> 1
  | Ubyte | Sbyte -> 8
  | Ushort | Short -> 16
  | Uint | Int -> 32
  | Ulong | Long -> 64
  | _ -> invalid_arg "Types.bitwidth: not an integer type"

(* Byte width of an integer/bool/fp type; pointers depend on the target. *)
let scalar_bytes target ty =
  match ty with
  | Bool | Ubyte | Sbyte -> 1
  | Ushort | Short -> 2
  | Uint | Int | Float -> 4
  | Ulong | Long | Double -> 8
  | Pointer _ -> target.Target.ptr_size
  | _ -> invalid_arg "Types.scalar_bytes: not a scalar type"

(* Signed counterpart of an integer type (used by cast semantics). *)
let signed_variant = function
  | Ubyte -> Sbyte
  | Ushort -> Short
  | Uint -> Int
  | Ulong -> Long
  | ty -> ty

let unsigned_variant = function
  | Sbyte -> Ubyte
  | Short -> Ushort
  | Int -> Uint
  | Long -> Ulong
  | ty -> ty

(* Structural equality; [Named] compares by name. *)
let rec equal a b =
  match (a, b) with
  | Void, Void | Bool, Bool | Ubyte, Ubyte | Sbyte, Sbyte | Ushort, Ushort
  | Short, Short | Uint, Uint | Int, Int | Ulong, Ulong | Long, Long
  | Float, Float | Double, Double | Label, Label ->
      true
  | Pointer a, Pointer b -> equal a b
  | Array (n, a), Array (m, b) -> n = m && equal a b
  | Struct a, Struct b -> List.length a = List.length b && List.for_all2 equal a b
  | Func (ra, pa, va), Func (rb, pb, vb) ->
      va = vb && equal ra rb
      && List.length pa = List.length pb
      && List.for_all2 equal pa pb
  | Named a, Named b -> String.equal a b
  | ( ( Void | Bool | Ubyte | Sbyte | Ushort | Short | Uint | Int | Ulong
      | Long | Float | Double | Label | Pointer _ | Array _ | Struct _
      | Func _ | Named _ ),
      _ ) ->
      false

(* Equality up to named-type resolution (one level at a time, with a fuel
   bound so mutually recursive names cannot loop forever). *)
let equal_resolved env a b =
  let rec go fuel a b =
    if fuel = 0 then equal a b
    else
      match (a, b) with
      | Named _, _ | _, Named _ -> go (fuel - 1) (resolve env a) (resolve env b)
      | _ -> equal a b
  in
  go 64 a b

let rec to_string = function
  | Void -> "void"
  | Bool -> "bool"
  | Ubyte -> "ubyte"
  | Sbyte -> "sbyte"
  | Ushort -> "ushort"
  | Short -> "short"
  | Uint -> "uint"
  | Int -> "int"
  | Ulong -> "ulong"
  | Long -> "long"
  | Float -> "float"
  | Double -> "double"
  | Label -> "label"
  | Pointer t -> to_string t ^ "*"
  | Array (n, t) -> Printf.sprintf "[%d x %s]" n (to_string t)
  | Struct ts -> "{ " ^ String.concat ", " (List.map to_string ts) ^ " }"
  | Func (ret, params, varargs) ->
      let ps = List.map to_string params in
      let ps = if varargs then ps @ [ "..." ] else ps in
      Printf.sprintf "%s (%s)" (to_string ret) (String.concat ", " ps)
  | Named n -> "%" ^ n

let pp fmt ty = Format.pp_print_string fmt (to_string ty)

(* The element type a pointer of type [ty] points to. *)
let pointee env ty =
  match resolve env ty with
  | Pointer t -> t
  | t -> invalid_arg ("Types.pointee: not a pointer: " ^ to_string t)

(* The function signature reachable through a value of type [ty] (either a
   function type directly or a pointer to one). *)
let function_signature env ty =
  match resolve env ty with
  | Func (r, p, v) -> (r, p, v)
  | Pointer t -> (
      match resolve env t with
      | Func (r, p, v) -> (r, p, v)
      | t -> invalid_arg ("Types.function_signature: " ^ to_string t))
  | t -> invalid_arg ("Types.function_signature: " ^ to_string t)
