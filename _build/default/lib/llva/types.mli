(** The LLVA type system (paper §3.1): primitive types with predefined
    sizes plus exactly four derived types — pointer, array, structure and
    function. [Named] types allow recursive structures (the paper's
    QuadTree) and are resolved through a module's type table. *)

type t =
  | Void
  | Bool
  | Ubyte
  | Sbyte
  | Ushort
  | Short
  | Uint
  | Int
  | Ulong
  | Long
  | Float
  | Double
  | Label  (** the type of basic-block operands *)
  | Pointer of t
  | Array of int * t  (** element count, element type *)
  | Struct of t list
  | Func of t * t list * bool  (** return type, parameters, varargs *)
  | Named of string  (** reference into the module's type table *)

(** {1 Named-type resolution} *)

type env = (string, t) Hashtbl.t
(** Environment mapping type names to definitions (see {!Ir.type_env}). *)

val empty_env : unit -> env
val env_of_typedefs : (string * t) list -> env

exception Unresolved of string

val resolve : env -> t -> t
(** Resolve [Named] references until a structural type is reached.
    @raise Unresolved on an unknown name. *)

(** {1 Classification} *)

val is_integer : t -> bool
val is_signed : t -> bool
val is_unsigned : t -> bool
val is_fp : t -> bool
val is_pointer : t -> bool

val is_scalar : t -> bool
(** True for the types a virtual register may hold: bool, integers,
    floating point, pointers. *)

val is_first_class : t -> bool
(** Alias of {!is_scalar}. *)

val bitwidth : t -> int
(** Width in bits of a bool or integer type.
    @raise Invalid_argument otherwise. *)

val scalar_bytes : Target.config -> t -> int
(** Byte width of a scalar; pointers depend on the target. *)

val signed_variant : t -> t
(** [signed_variant Uint = Int]; identity on non-integers. *)

val unsigned_variant : t -> t

(** {1 Equality and printing} *)

val equal : t -> t -> bool
(** Structural equality; [Named] compares by name. *)

val equal_resolved : env -> t -> t -> bool
(** Equality up to named-type resolution. *)

val to_string : t -> string
(** The assembly syntax, e.g. ["{ double, [4 x %QT*] }"]. *)

val pp : Format.formatter -> t -> unit

(** {1 Accessors} *)

val pointee : env -> t -> t
(** The element type behind a pointer type.
    @raise Invalid_argument if not a pointer. *)

val function_signature : env -> t -> t * t list * bool
(** The (return, params, varargs) reachable through a function type or a
    pointer to one. *)
