(* The LLVA verifier: structural well-formedness, the strict type rules of
   §3.1 ("no mixed-type operations, no implicit coercion"), and SSA
   dominance (every def dominates its uses; phi operands dominate the
   incoming edge). Returns a list of human-readable problems; empty means
   the module is well-formed. *)

open Ir

type ctx = {
  env : Types.env;
  mutable errors : string list;
  mutable where : string;
}

let err ctx fmt =
  Printf.ksprintf (fun s -> ctx.errors <- (ctx.where ^ ": " ^ s) :: ctx.errors) fmt

let resolve ctx ty =
  try Types.resolve ctx.env ty
  with Types.Unresolved n ->
    err ctx "unresolved type name %%%s" n;
    Types.Void

(* ---------- per-instruction type rules ---------- *)

let check_instr ctx i =
  let opnd k = i.operands.(k) in
  let ty k = type_of_value (opnd k) in
  let rty k = resolve ctx (ty k) in
  let nops = Array.length i.operands in
  let expect_n n =
    if nops <> n then err ctx "%s expects %d operands, has %d" (opcode_name i.op) n nops
  in
  match i.op with
  | Binop op -> (
      expect_n 2;
      if nops = 2 then
        match op with
        | Shl | Shr ->
            if not (Types.is_integer (rty 0)) then
              err ctx "%s requires integer first operand" (binop_name op);
            if not (Types.equal (rty 1) Types.Ubyte) then
              err ctx "%s shift amount must be ubyte" (binop_name op)
        | And | Or | Xor ->
            if not (Types.equal_resolved ctx.env (ty 0) (ty 1)) then
              err ctx "%s operand types differ" (binop_name op);
            let t = rty 0 in
            if not (Types.is_integer t || Types.equal t Types.Bool) then
              err ctx "%s requires integral operands" (binop_name op)
        | Add | Sub | Mul | Div | Rem ->
            if not (Types.equal_resolved ctx.env (ty 0) (ty 1)) then
              err ctx "%s operand types differ" (binop_name op);
            let t = rty 0 in
            if not (Types.is_integer t || Types.is_fp t) then
              err ctx "%s requires arithmetic operands, got %s" (binop_name op)
                (Types.to_string t);
            if not (Types.equal_resolved ctx.env i.ity (ty 0)) then
              err ctx "%s result type mismatch" (binop_name op))
  | Setcc c ->
      expect_n 2;
      if nops = 2 then begin
        if not (Types.equal_resolved ctx.env (ty 0) (ty 1)) then
          err ctx "%s operand types differ: %s vs %s" (cmp_name c)
            (Types.to_string (ty 0))
            (Types.to_string (ty 1));
        if not (Types.is_scalar (rty 0)) then
          err ctx "%s requires scalar operands" (cmp_name c);
        if not (Types.equal i.ity Types.Bool) then
          err ctx "%s must produce bool" (cmp_name c)
      end
  | Ret -> () (* checked against the function signature by the caller *)
  | Br ->
      if nops = 1 then begin
        match opnd 0 with
        | Vblock _ -> ()
        | _ -> err ctx "br target must be a label"
      end
      else if nops = 3 then begin
        if not (Types.equal (rty 0) Types.Bool) then
          err ctx "br condition must be bool";
        (match opnd 1 with Vblock _ -> () | _ -> err ctx "br target must be a label");
        match opnd 2 with Vblock _ -> () | _ -> err ctx "br target must be a label"
      end
      else err ctx "br expects 1 or 3 operands"
  | Mbr ->
      if nops < 2 || nops mod 2 <> 0 then err ctx "mbr operand count invalid"
      else begin
        if not (Types.is_integer (rty 0)) then err ctx "mbr selector must be integer";
        let rec go k =
          if k + 1 < nops then begin
            (match opnd k with
            | Const { ckind = Cint _; _ } -> ()
            | _ -> err ctx "mbr case must be an integer constant");
            (match opnd (k + 1) with
            | Vblock _ -> ()
            | _ -> err ctx "mbr case target must be a label");
            go (k + 2)
          end
        in
        (match opnd 1 with Vblock _ -> () | _ -> err ctx "mbr default must be a label");
        go 2
      end
  | Invoke | Call -> (
      let min_ops = if i.op = Call then 1 else 3 in
      if nops < min_ops then err ctx "call/invoke missing callee"
      else
        match resolve ctx (ty 0) with
        | Types.Pointer fty | (Types.Func _ as fty) -> (
            match resolve ctx fty with
            | Types.Func (ret, params, varargs) ->
                let args =
                  if i.op = Call then
                    Array.to_list (Array.sub i.operands 1 (nops - 1))
                  else Array.to_list (Array.sub i.operands 3 (nops - 3))
                in
                let nparams = List.length params in
                if List.length args < nparams then err ctx "too few call arguments"
                else if (not varargs) && List.length args > nparams then
                  err ctx "too many call arguments";
                List.iteri
                  (fun k arg ->
                    match List.nth_opt params k with
                    | Some pty ->
                        if
                          not
                            (Types.equal_resolved ctx.env (type_of_value arg) pty)
                        then
                          err ctx "call argument %d: %s, expected %s" k
                            (Types.to_string (type_of_value arg))
                            (Types.to_string pty)
                    | None -> ())
                  args;
                if not (Types.equal_resolved ctx.env i.ity ret) then
                  err ctx "call result type %s, callee returns %s"
                    (Types.to_string i.ity) (Types.to_string ret)
            | t -> err ctx "callee is not a function: %s" (Types.to_string t))
        | t -> err ctx "callee is not a function pointer: %s" (Types.to_string t))
  | Unwind -> expect_n 0
  | Load -> (
      expect_n 1;
      if nops = 1 then
        match rty 0 with
        | Types.Pointer elem ->
            if not (Types.is_scalar (resolve ctx elem)) then
              err ctx "load of non-scalar %s" (Types.to_string elem);
            if not (Types.equal_resolved ctx.env i.ity elem) then
              err ctx "load result type mismatch"
        | t -> err ctx "load from non-pointer %s" (Types.to_string t))
  | Store -> (
      expect_n 2;
      if nops = 2 then
        match rty 1 with
        | Types.Pointer elem ->
            if not (Types.equal_resolved ctx.env (ty 0) elem) then
              err ctx "store of %s into %s*"
                (Types.to_string (ty 0))
                (Types.to_string elem)
        | t -> err ctx "store to non-pointer %s" (Types.to_string t))
  | Getelementptr ->
      if nops < 1 then err ctx "getelementptr missing pointer"
      else begin
        (match rty 0 with
        | Types.Pointer _ -> ()
        | t -> err ctx "getelementptr on non-pointer %s" (Types.to_string t));
        for k = 1 to nops - 1 do
          if not (Types.is_integer (rty k)) then
            err ctx "getelementptr index %d not an integer" k
        done
      end
  | Alloca -> (
      if nops > 1 then err ctx "alloca expects at most one operand";
      if nops = 1 && not (Types.is_integer (rty 0)) then
        err ctx "alloca count must be an integer";
      match resolve ctx i.ity with
      | Types.Pointer _ -> ()
      | t -> err ctx "alloca must produce a pointer, got %s" (Types.to_string t))
  | Cast ->
      expect_n 1;
      if nops = 1 then begin
        let src = rty 0 and dst = resolve ctx i.ity in
        if not (Types.is_scalar src) then
          err ctx "cast source must be scalar, got %s" (Types.to_string src);
        if not (Types.is_scalar dst) then
          err ctx "cast target must be scalar, got %s" (Types.to_string dst);
        if Types.is_fp src && Types.is_pointer dst then
          err ctx "cast from floating point to pointer"
      end
  | Phi ->
      if nops = 0 || nops mod 2 <> 0 then err ctx "phi operand count invalid"
      else
        let rec go k =
          if k + 1 < nops then begin
            if not (Types.equal_resolved ctx.env (ty k) i.ity) then
              err ctx "phi operand %d type %s, expected %s" (k / 2)
                (Types.to_string (ty k))
                (Types.to_string i.ity);
            (match opnd (k + 1) with
            | Vblock _ -> ()
            | _ -> err ctx "phi predecessor must be a label");
            go (k + 2)
          end
        in
        go 0

(* ---------- dominance (local, bitset-based iterative solver) ---------- *)

let compute_dominators f =
  let blocks = Array.of_list f.fblocks in
  let n = Array.length blocks in
  let index = Hashtbl.create n in
  Array.iteri (fun k b -> Hashtbl.replace index b.blid k) blocks;
  let preds =
    Array.map
      (fun b ->
        List.filter_map (fun p -> Hashtbl.find_opt index p.blid) (predecessors b))
      blocks
  in
  let full = Array.make n true in
  let dom = Array.init n (fun k -> if k = 0 then Array.init n (fun j -> j = 0) else Array.copy full) in
  let changed = ref true in
  while !changed do
    changed := false;
    for k = 1 to n - 1 do
      let nd = Array.make n false in
      nd.(k) <- true;
      (match preds.(k) with
      | [] -> ()
      | first :: rest ->
          let inter = Array.copy dom.(first) in
          List.iter (fun p -> Array.iteri (fun j v -> inter.(j) <- v && inter.(j)) dom.(p)) rest;
          Array.iteri (fun j v -> if v then nd.(j) <- true) inter);
      if nd <> dom.(k) then begin
        dom.(k) <- nd;
        changed := true
      end
    done
  done;
  (blocks, index, dom)

(* ---------- per-function checks ---------- *)

let check_function ctx f =
  ctx.where <- Printf.sprintf "function %%%s" f.fname;
  if is_declaration f then ()
  else begin
    (* structure: nonempty blocks, single trailing terminator, leading phis *)
    List.iter
      (fun b ->
        ctx.where <- Printf.sprintf "function %%%s block %%%s" f.fname b.bname;
        (match b.instrs with
        | [] -> err ctx "empty basic block"
        | instrs -> (
            let rec split seen_non_phi = function
              | [] -> ()
              | [ last ] ->
                  if not (is_terminator last) then
                    err ctx "block does not end with a terminator"
              | x :: rest ->
                  if is_terminator x then
                    err ctx "terminator %s in the middle of a block"
                      (opcode_name x.op);
                  if x.op = Phi && seen_non_phi then
                    err ctx "phi after non-phi instruction";
                  split (seen_non_phi || x.op <> Phi) rest
            in
            split false instrs;
            match instrs with
            | first :: _ when first.op = Phi && b == entry_block f ->
                err ctx "phi in entry block"
            | _ -> ()));
        List.iter
          (fun i ->
            (match i.iparent with
            | Some p when p == b -> ()
            | _ -> err ctx "instruction with wrong parent");
            check_instr ctx i;
            (* ret must match the signature *)
            if i.op = Ret then begin
              let n = Array.length i.operands in
              if Types.equal f.freturn Types.Void then begin
                if n <> 0 then err ctx "ret with value in void function"
              end
              else if n <> 1 then err ctx "ret missing value"
              else if
                not
                  (Types.equal_resolved ctx.env
                     (type_of_value i.operands.(0))
                     f.freturn)
              then err ctx "ret type does not match function return type"
            end)
          b.instrs)
      f.fblocks;
    (* phi incoming lists must exactly cover the predecessors *)
    List.iter
      (fun b ->
        ctx.where <- Printf.sprintf "function %%%s block %%%s" f.fname b.bname;
        let preds = predecessors b in
        List.iter
          (fun phi ->
            let incoming = phi_incoming phi in
            let inc_blocks = List.map snd incoming in
            List.iter
              (fun p ->
                if not (List.exists (fun ib -> ib == p) inc_blocks) then
                  err ctx "phi missing incoming for predecessor %%%s" p.bname)
              preds;
            List.iter
              (fun ib ->
                if not (List.exists (fun p -> p == ib) preds) then
                  err ctx "phi has incoming for non-predecessor %%%s" ib.bname)
              inc_blocks)
          (block_phis b))
      f.fblocks;
    (* entry block must not have predecessors *)
    (match f.fblocks with
    | entry :: _ ->
        if predecessors entry <> [] then begin
          ctx.where <- Printf.sprintf "function %%%s" f.fname;
          err ctx "entry block has predecessors"
        end
    | [] -> ());
    (* SSA dominance *)
    let blocks, index, dom = compute_dominators f in
    ignore blocks;
    let block_index b = Hashtbl.find_opt index b.blid in
    let dominates def_b use_b =
      match (block_index def_b, block_index use_b) with
      | Some d, Some u -> dom.(u).(d)
      | _ -> true (* unreachable block: skip *)
    in
    let instr_pos = Hashtbl.create 64 in
    List.iter
      (fun b ->
        List.iteri (fun k i -> Hashtbl.replace instr_pos i.iid (b, k)) b.instrs)
      f.fblocks;
    let def_dominates_use (def : instr) (use : instr) op_idx =
      match (Hashtbl.find_opt instr_pos def.iid, Hashtbl.find_opt instr_pos use.iid) with
      | Some (db, dk), Some (ub, uk) ->
          if use.op = Phi then
            (* the def must dominate the incoming edge's source block *)
            let pred =
              match use.operands.(op_idx + 1) with
              | Vblock p -> Some p
              | _ -> None
            in
            (match pred with
            | Some p -> dominates db p
            | None -> true)
          else if db == ub then dk < uk
          else dominates db ub
      | _ -> true
    in
    List.iter
      (fun b ->
        List.iter
          (fun i ->
            Array.iteri
              (fun op_idx v ->
                match v with
                | Vreg def ->
                    if not (def_dominates_use def i op_idx) then begin
                      ctx.where <-
                        Printf.sprintf "function %%%s block %%%s" f.fname b.bname;
                      err ctx "use of %%%s (id %d) not dominated by its definition"
                        def.iname def.iid
                    end
                | _ -> ())
              i.operands)
          b.instrs)
      f.fblocks
  end

let verify_module (m : modl) : string list =
  let ctx = { env = Ir.type_env m; errors = []; where = "module" } in
  (* symbol uniqueness *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun g ->
      if Hashtbl.mem seen g.gname then err ctx "duplicate global %%%s" g.gname;
      Hashtbl.replace seen g.gname ())
    m.globals;
  List.iter
    (fun f ->
      if Hashtbl.mem seen f.fname then err ctx "duplicate symbol %%%s" f.fname;
      Hashtbl.replace seen f.fname ())
    m.funcs;
  List.iter (fun f -> check_function ctx f) m.funcs;
  List.rev ctx.errors

let verify_function f =
  let ctx =
    {
      env =
        (match f.fparent with
        | Some m -> Ir.type_env m
        | None -> Types.empty_env ());
      errors = [];
      where = "function";
    }
  in
  check_function ctx f;
  List.rev ctx.errors

exception Invalid of string list

(* Raise on the first invalid module; used by pipeline stages that require
   well-formed input. *)
let assert_valid m =
  match verify_module m with [] -> () | errs -> raise (Invalid errs)
