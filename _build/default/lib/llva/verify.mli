(** The LLVA verifier: structural well-formedness, the strict per-opcode
    type rules of paper §3.1 ("no mixed-type operations, no implicit
    coercion"), phi/predecessor agreement, and SSA dominance (every
    definition dominates its uses). *)

val verify_module : Ir.modl -> string list
(** All problems found, as human-readable messages; [[]] means the module
    is well-formed. *)

val verify_function : Ir.func -> string list
(** Check one function (named types resolve through its parent module). *)

exception Invalid of string list

val assert_valid : Ir.modl -> unit
(** @raise Invalid if the module does not verify. *)
