lib/minic/mast.ml: List Printf String
