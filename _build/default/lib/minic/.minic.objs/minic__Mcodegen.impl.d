lib/minic/mcodegen.ml: Builder Char Hashtbl Int64 Ir List Llva Mast Mparser Option Printf String Target Transform Types Verify Vmem
