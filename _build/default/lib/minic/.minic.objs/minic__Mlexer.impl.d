lib/minic/mlexer.ml: Buffer Int64 List Printf String
