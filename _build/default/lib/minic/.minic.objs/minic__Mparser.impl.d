lib/minic/mparser.ml: Char Hashtbl Int64 List Mast Mlexer Printf
