(* MiniC abstract syntax: a C subset rich enough for the paper's workload
   programs (structs, pointers, arrays, function pointers, enums, switch,
   the full statement and operator set). *)

type cty =
  | Cvoid
  | Cchar
  | Cuchar
  | Cshort
  | Cushort
  | Cint
  | Cuint
  | Clong
  | Culong
  | Cfloat
  | Cdouble
  | Cptr of cty
  | Carr of int * cty
  | Cstruct of string
  | Cfunc of cty * cty list

let rec cty_to_string = function
  | Cvoid -> "void"
  | Cchar -> "char"
  | Cuchar -> "unsigned char"
  | Cshort -> "short"
  | Cushort -> "unsigned short"
  | Cint -> "int"
  | Cuint -> "unsigned"
  | Clong -> "long"
  | Culong -> "unsigned long"
  | Cfloat -> "float"
  | Cdouble -> "double"
  | Cptr t -> cty_to_string t ^ "*"
  | Carr (n, t) -> Printf.sprintf "%s[%d]" (cty_to_string t) n
  | Cstruct s -> "struct " ^ s
  | Cfunc (r, args) ->
      Printf.sprintf "%s(*)(%s)" (cty_to_string r)
        (String.concat "," (List.map cty_to_string args))

type binop =
  | Badd
  | Bsub
  | Bmul
  | Bdiv
  | Bmod
  | Band
  | Bor
  | Bxor
  | Bshl
  | Bshr
  | Beq
  | Bne
  | Blt
  | Bgt
  | Ble
  | Bge
  | Bland (* && *)
  | Blor (* || *)

type unop = Uneg | Unot (* ! *) | Ubnot (* ~ *)

type expr = { desc : expr_desc; eline : int }

and expr_desc =
  | Eint of int64
  | Efloat of float
  | Estr of string
  | Echar of char
  | Eident of string
  | Ebin of binop * expr * expr
  | Eun of unop * expr
  | Eassign of expr * expr (* lvalue = rvalue *)
  | Eopassign of binop * expr * expr (* lvalue op= rvalue *)
  | Ecall of expr * expr list
  | Eindex of expr * expr (* a[i] *)
  | Efield of expr * string (* s.f *)
  | Earrow of expr * string (* p->f *)
  | Ederef of expr (* *p *)
  | Eaddr of expr (* &lv *)
  | Ecast of cty * expr
  | Esizeof of cty
  | Econd of expr * expr * expr (* ?: *)
  | Epreincr of int * expr (* ++x / --x: delta is +1/-1 *)
  | Epostincr of int * expr (* x++ / x-- *)

type stmt = { sdesc : stmt_desc; sline : int }

and stmt_desc =
  | Sexpr of expr
  | Sdecl of cty * string * expr option
  | Sblock of stmt list
  | Sseq of stmt list (* like Sblock but introduces no scope *)
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sdo of stmt * expr
  | Sfor of stmt option * expr option * expr option * stmt
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sswitch of expr * (int64 option * stmt list) list
    (* cases in order; None = default; fallthrough preserved *)

type init =
  | Iexpr of expr
  | Ilist of init list (* brace initializer *)

type decl =
  | Dstruct of string * (cty * string) list
  | Dtypedef of string * cty
  | Denum of (string * int64) list
  | Dglobal of cty * string * init option
  | Dfunc of cty * string * (cty * string) list * stmt list

type program = decl list
