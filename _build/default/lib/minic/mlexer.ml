(* MiniC lexer. *)

type token =
  | Tident of string
  | Tint of int64
  | Tfloat of float
  | Tstring of string
  | Tchar of char
  | Tkw of string (* keyword *)
  | Tpunct of string (* operator / punctuation, longest-match *)
  | Teof

exception Error of string * int

let keywords =
  [
    "void"; "char"; "short"; "int"; "long"; "unsigned"; "signed"; "float";
    "double"; "struct"; "typedef"; "enum"; "if"; "else"; "while"; "do";
    "for"; "return"; "break"; "continue"; "switch"; "case"; "default";
    "sizeof"; "const"; "static"; "extern";
  ]

(* multi-char operators, longest first *)
let puncts =
  [
    "<<="; ">>="; "..."; "=="; "!="; "<="; ">="; "&&"; "||"; "++"; "--";
    "+="; "-="; "*="; "/="; "%="; "&="; "|="; "^="; "<<"; ">>"; "->";
    "+"; "-"; "*"; "/"; "%"; "&"; "|"; "^"; "~"; "!"; "<"; ">"; "=";
    "("; ")"; "{"; "}"; "["; "]"; ";"; ","; "."; "?"; ":";
  ]

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable peeked : (token * int) option;
}

let create src = { src; pos = 0; line = 1; peeked = None }
let fail lx msg = raise (Error (msg, lx.line))

let is_ident_start c =
  match c with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false

let is_ident_char c =
  match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false

let rec skip_ws lx =
  if lx.pos >= String.length lx.src then ()
  else
    match lx.src.[lx.pos] with
    | ' ' | '\t' | '\r' ->
        lx.pos <- lx.pos + 1;
        skip_ws lx
    | '\n' ->
        lx.pos <- lx.pos + 1;
        lx.line <- lx.line + 1;
        skip_ws lx
    | '/' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/' ->
        while lx.pos < String.length lx.src && lx.src.[lx.pos] <> '\n' do
          lx.pos <- lx.pos + 1
        done;
        skip_ws lx
    | '/' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '*' ->
        lx.pos <- lx.pos + 2;
        let rec go () =
          if lx.pos + 1 >= String.length lx.src then fail lx "unterminated comment"
          else if lx.src.[lx.pos] = '*' && lx.src.[lx.pos + 1] = '/' then
            lx.pos <- lx.pos + 2
          else begin
            if lx.src.[lx.pos] = '\n' then lx.line <- lx.line + 1;
            lx.pos <- lx.pos + 1;
            go ()
          end
        in
        go ();
        skip_ws lx
    | '#' ->
        (* preprocessor lines are ignored (workloads do not need cpp) *)
        while lx.pos < String.length lx.src && lx.src.[lx.pos] <> '\n' do
          lx.pos <- lx.pos + 1
        done;
        skip_ws lx
    | _ -> ()

let escape_char lx c =
  match c with
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | '0' -> '\000'
  | '\\' -> '\\'
  | '\'' -> '\''
  | '"' -> '"'
  | c -> fail lx (Printf.sprintf "bad escape \\%c" c)

let read_number lx =
  let start = lx.pos in
  let is_hex =
    lx.pos + 1 < String.length lx.src
    && lx.src.[lx.pos] = '0'
    && (lx.src.[lx.pos + 1] = 'x' || lx.src.[lx.pos + 1] = 'X')
  in
  if is_hex then begin
    lx.pos <- lx.pos + 2;
    while
      lx.pos < String.length lx.src
      &&
      match lx.src.[lx.pos] with
      | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
      | _ -> false
    do
      lx.pos <- lx.pos + 1
    done;
    let text = String.sub lx.src start (lx.pos - start) in
    (* swallow integer suffixes *)
    while
      lx.pos < String.length lx.src
      && (match lx.src.[lx.pos] with 'u' | 'U' | 'l' | 'L' -> true | _ -> false)
    do
      lx.pos <- lx.pos + 1
    done;
    match Int64.of_string_opt text with
    | Some v -> Tint v
    | None -> fail lx ("bad hex literal " ^ text)
  end
  else begin
    let saw_dot = ref false and saw_exp = ref false in
    let rec go () =
      if lx.pos >= String.length lx.src then ()
      else
        match lx.src.[lx.pos] with
        | '0' .. '9' ->
            lx.pos <- lx.pos + 1;
            go ()
        | '.' when not !saw_dot ->
            saw_dot := true;
            lx.pos <- lx.pos + 1;
            go ()
        | ('e' | 'E') when not !saw_exp ->
            saw_exp := true;
            lx.pos <- lx.pos + 1;
            if
              lx.pos < String.length lx.src
              && (lx.src.[lx.pos] = '+' || lx.src.[lx.pos] = '-')
            then lx.pos <- lx.pos + 1;
            go ()
        | _ -> ()
    in
    go ();
    let text = String.sub lx.src start (lx.pos - start) in
    (* suffixes *)
    while
      lx.pos < String.length lx.src
      &&
      match lx.src.[lx.pos] with
      | 'u' | 'U' | 'l' | 'L' | 'f' | 'F' -> true
      | _ -> false
    do
      lx.pos <- lx.pos + 1
    done;
    if !saw_dot || !saw_exp then
      match float_of_string_opt text with
      | Some f -> Tfloat f
      | None -> fail lx ("bad float literal " ^ text)
    else
      match Int64.of_string_opt text with
      | Some v -> Tint v
      | None -> fail lx ("bad integer literal " ^ text)
  end

let lex_token lx =
  skip_ws lx;
  if lx.pos >= String.length lx.src then Teof
  else
    let c = lx.src.[lx.pos] in
    if is_ident_start c then begin
      let start = lx.pos in
      while lx.pos < String.length lx.src && is_ident_char lx.src.[lx.pos] do
        lx.pos <- lx.pos + 1
      done;
      let word = String.sub lx.src start (lx.pos - start) in
      if List.mem word keywords then Tkw word else Tident word
    end
    else if c >= '0' && c <= '9' then read_number lx
    else if c = '"' then begin
      lx.pos <- lx.pos + 1;
      let buf = Buffer.create 16 in
      let rec go () =
        if lx.pos >= String.length lx.src then fail lx "unterminated string"
        else
          match lx.src.[lx.pos] with
          | '"' -> lx.pos <- lx.pos + 1
          | '\\' ->
              if lx.pos + 1 >= String.length lx.src then fail lx "bad escape";
              Buffer.add_char buf (escape_char lx lx.src.[lx.pos + 1]);
              lx.pos <- lx.pos + 2;
              go ()
          | c ->
              Buffer.add_char buf c;
              lx.pos <- lx.pos + 1;
              go ()
      in
      go ();
      Tstring (Buffer.contents buf)
    end
    else if c = '\'' then begin
      lx.pos <- lx.pos + 1;
      let ch =
        if lx.pos < String.length lx.src && lx.src.[lx.pos] = '\\' then begin
          let e = escape_char lx lx.src.[lx.pos + 1] in
          lx.pos <- lx.pos + 2;
          e
        end
        else begin
          let ch = lx.src.[lx.pos] in
          lx.pos <- lx.pos + 1;
          ch
        end
      in
      if lx.pos >= String.length lx.src || lx.src.[lx.pos] <> '\'' then
        fail lx "unterminated char literal";
      lx.pos <- lx.pos + 1;
      Tchar ch
    end
    else
      let rec try_punct = function
        | [] -> fail lx (Printf.sprintf "unexpected character %C" c)
        | p :: rest ->
            let n = String.length p in
            if
              lx.pos + n <= String.length lx.src
              && String.sub lx.src lx.pos n = p
            then begin
              lx.pos <- lx.pos + n;
              Tpunct p
            end
            else try_punct rest
      in
      try_punct puncts

let peek lx =
  match lx.peeked with
  | Some (t, _) -> t
  | None ->
      let t = lex_token lx in
      lx.peeked <- Some (t, lx.line);
      t

let next lx =
  match lx.peeked with
  | Some (t, _) ->
      lx.peeked <- None;
      t
  | None -> lex_token lx

let line lx = lx.line
