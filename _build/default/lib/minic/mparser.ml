(* MiniC recursive-descent parser with precedence climbing. Typedef names
   are tracked so the lexer-level ambiguity (type vs identifier) resolves
   the way C compilers do it. *)

open Mast

exception Error of string * int

type st = {
  lx : Mlexer.t;
  typedefs : (string, cty) Hashtbl.t;
  struct_tags : (string, unit) Hashtbl.t;
}

let fail st msg = raise (Error (msg, Mlexer.line st.lx))

let expect_punct st p =
  match Mlexer.next st.lx with
  | Mlexer.Tpunct p' when p' = p -> ()
  | t ->
      fail st
        (Printf.sprintf "expected '%s'%s" p
           (match t with
           | Mlexer.Tident s -> Printf.sprintf " (got identifier %s)" s
           | Mlexer.Tpunct s -> Printf.sprintf " (got '%s')" s
           | Mlexer.Tkw s -> Printf.sprintf " (got keyword %s)" s
           | _ -> ""))

let expect_ident st what =
  match Mlexer.next st.lx with
  | Mlexer.Tident s -> s
  | _ -> fail st ("expected identifier for " ^ what)

let accept_punct st p =
  match Mlexer.peek st.lx with
  | Mlexer.Tpunct p' when p' = p ->
      ignore (Mlexer.next st.lx);
      true
  | _ -> false

let accept_kw st k =
  match Mlexer.peek st.lx with
  | Mlexer.Tkw k' when k' = k ->
      ignore (Mlexer.next st.lx);
      true
  | _ -> false

(* ---------- types ---------- *)

(* is the upcoming token the start of a type? *)
let starts_type st =
  match Mlexer.peek st.lx with
  | Mlexer.Tkw
      ( "void" | "char" | "short" | "int" | "long" | "unsigned" | "signed"
      | "float" | "double" | "struct" | "const" ) ->
      true
  | Mlexer.Tident name -> Hashtbl.mem st.typedefs name
  | _ -> false

let parse_base_type st : cty =
  let _ = accept_kw st "const" in
  match Mlexer.next st.lx with
  | Mlexer.Tkw "void" -> Cvoid
  | Mlexer.Tkw "char" -> Cchar
  | Mlexer.Tkw "float" -> Cfloat
  | Mlexer.Tkw "double" -> Cdouble
  | Mlexer.Tkw "short" ->
      ignore (accept_kw st "int");
      Cshort
  | Mlexer.Tkw "int" -> Cint
  | Mlexer.Tkw "long" ->
      ignore (accept_kw st "long");
      ignore (accept_kw st "int");
      Clong
  | Mlexer.Tkw "signed" ->
      if accept_kw st "char" then Cchar
      else if accept_kw st "short" then Cshort
      else if accept_kw st "long" then Clong
      else begin
        ignore (accept_kw st "int");
        Cint
      end
  | Mlexer.Tkw "unsigned" ->
      if accept_kw st "char" then Cuchar
      else if accept_kw st "short" then Cushort
      else if accept_kw st "long" then begin
        ignore (accept_kw st "long");
        Culong
      end
      else begin
        ignore (accept_kw st "int");
        Cuint
      end
  | Mlexer.Tkw "struct" ->
      let tag = expect_ident st "struct tag" in
      Hashtbl.replace st.struct_tags tag ();
      Cstruct tag
  | Mlexer.Tident name when Hashtbl.mem st.typedefs name ->
      Hashtbl.find st.typedefs name
  | _ -> fail st "expected a type"

let rec parse_pointers st ty =
  if accept_punct st "*" then begin
    ignore (accept_kw st "const");
    parse_pointers st (Cptr ty)
  end
  else ty

(* constant integer expressions for array bounds: literals, enum
   constants, + - * / %, parentheses *)
let rec parse_const_int st : int = parse_const_sum st

and parse_const_sum st =
  let a = ref (parse_const_term st) in
  let rec loop () =
    match Mlexer.peek st.lx with
    | Mlexer.Tpunct "+" ->
        ignore (Mlexer.next st.lx);
        a := !a + parse_const_term st;
        loop ()
    | Mlexer.Tpunct "-" ->
        ignore (Mlexer.next st.lx);
        a := !a - parse_const_term st;
        loop ()
    | _ -> ()
  in
  loop ();
  !a

and parse_const_term st =
  let a = ref (parse_const_atom st) in
  let rec loop () =
    match Mlexer.peek st.lx with
    | Mlexer.Tpunct "*" ->
        ignore (Mlexer.next st.lx);
        a := !a * parse_const_atom st;
        loop ()
    | Mlexer.Tpunct "/" ->
        ignore (Mlexer.next st.lx);
        a := !a / parse_const_atom st;
        loop ()
    | Mlexer.Tpunct "%" ->
        ignore (Mlexer.next st.lx);
        a := !a mod parse_const_atom st;
        loop ()
    | _ -> ()
  in
  loop ();
  !a

and parse_const_atom st =
  match Mlexer.next st.lx with
  | Mlexer.Tint v -> Int64.to_int v
  | Mlexer.Tchar c -> Char.code c
  | Mlexer.Tpunct "-" -> -parse_const_atom st
  | Mlexer.Tpunct "(" ->
      let v = parse_const_int st in
      expect_punct st ")";
      v
  | Mlexer.Tident name -> (
      match Hashtbl.find_opt st.typedefs ("enum$" ^ name) with
      | Some (Carr (v, _)) -> v
      | _ -> fail st ("not a constant: " ^ name))
  | _ -> fail st "expected a constant expression"

(* abstract declarator for casts / sizeof: base, '*'s, optional [N] *)
let parse_abstract_type st : cty =
  let base = parse_base_type st in
  let ty = parse_pointers st base in
  let rec arrays ty =
    if accept_punct st "[" then begin
      let n = parse_const_int st in
      expect_punct st "]";
      Carr (n, arrays ty)
    end
    else ty
  in
  arrays ty

(* A declarator after the base type: pointers, a plain name or a function
   pointer "( * name )(params)", then array suffixes. Returns (type, name). *)
let rec parse_declarator st base : cty * string =
  let ty = parse_pointers st base in
  if accept_punct st "(" then begin
    (* function pointer: ( * name ) ( params ), possibly an array of
       function pointers: ( * name [N] ) ( params ) *)
    expect_punct st "*";
    let inner = parse_pointers st Cvoid in
    (* [inner] counts extra '*'s wrapping the function pointer *)
    let name = expect_ident st "function pointer name" in
    let arr_len =
      if accept_punct st "[" then begin
        let n = parse_const_int st in
        expect_punct st "]";
        Some n
      end
      else None
    in
    expect_punct st ")";
    expect_punct st "(";
    let params = parse_param_types st in
    let fty = Cptr (Cfunc (ty, params)) in
    let rec rewrap inner fty =
      match inner with Cptr t -> rewrap t (Cptr fty) | _ -> fty
    in
    let fty = rewrap inner fty in
    ((match arr_len with Some n -> Carr (n, fty) | None -> fty), name)
  end
  else begin
    let name = expect_ident st "declarator" in
    let rec arrays () =
      if accept_punct st "[" then begin
        let n = parse_const_int st in
        expect_punct st "]";
        let elem = arrays () in
        Carr (n, elem)
      end
      else ty
    in
    (arrays (), name)
  end

and parse_param_types st : cty list =
  if accept_punct st ")" then []
  else if
    (* "(void)" exactly; "void *" etc. falls through to normal parsing *)
    match Mlexer.peek st.lx with
    | Mlexer.Tkw "void" ->
        let save_pos = st.lx.Mlexer.pos
        and save_line = st.lx.Mlexer.line
        and save_peek = st.lx.Mlexer.peeked in
        ignore (Mlexer.next st.lx);
        if Mlexer.peek st.lx = Mlexer.Tpunct ")" then begin
          ignore (Mlexer.next st.lx);
          true
        end
        else begin
          st.lx.Mlexer.pos <- save_pos;
          st.lx.Mlexer.line <- save_line;
          st.lx.Mlexer.peeked <- save_peek;
          false
        end
    | _ -> false
  then []
  else
    let rec go acc =
      let base = parse_base_type st in
      let ty = parse_pointers st base in
      (* optional parameter name and array suffix *)
      let ty =
        match Mlexer.peek st.lx with
        | Mlexer.Tident _ ->
            let _, _ = ((), expect_ident st "param") in
            if accept_punct st "[" then begin
              (match Mlexer.peek st.lx with
              | Mlexer.Tint _ -> ignore (Mlexer.next st.lx)
              | _ -> ());
              expect_punct st "]";
              Cptr ty
            end
            else ty
        | _ -> ty
      in
      if accept_punct st "," then go (ty :: acc)
      else begin
        expect_punct st ")";
        List.rev (ty :: acc)
      end
    in
    go []

(* ---------- expressions ---------- *)

let mk st desc = { desc; eline = Mlexer.line st.lx }

let rec parse_expr st : expr = parse_assign st

and parse_assign st : expr =
  let lhs = parse_cond st in
  match Mlexer.peek st.lx with
  | Mlexer.Tpunct "=" ->
      ignore (Mlexer.next st.lx);
      mk st (Eassign (lhs, parse_assign st))
  | Mlexer.Tpunct
      (("+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^=" | "<<=" | ">>=")
       as p) ->
      ignore (Mlexer.next st.lx);
      let op =
        match p with
        | "+=" -> Badd
        | "-=" -> Bsub
        | "*=" -> Bmul
        | "/=" -> Bdiv
        | "%=" -> Bmod
        | "&=" -> Band
        | "|=" -> Bor
        | "^=" -> Bxor
        | "<<=" -> Bshl
        | _ -> Bshr
      in
      mk st (Eopassign (op, lhs, parse_assign st))
  | _ -> lhs

and parse_cond st : expr =
  let c = parse_binary st 0 in
  if accept_punct st "?" then begin
    let t = parse_expr st in
    expect_punct st ":";
    let e = parse_cond st in
    mk st (Econd (c, t, e))
  end
  else c

(* precedence levels, lowest first *)
and binop_at_level level : (string * binop) list =
  match level with
  | 0 -> [ ("||", Blor) ]
  | 1 -> [ ("&&", Bland) ]
  | 2 -> [ ("|", Bor) ]
  | 3 -> [ ("^", Bxor) ]
  | 4 -> [ ("&", Band) ]
  | 5 -> [ ("==", Beq); ("!=", Bne) ]
  | 6 -> [ ("<", Blt); (">", Bgt); ("<=", Ble); (">=", Bge) ]
  | 7 -> [ ("<<", Bshl); (">>", Bshr) ]
  | 8 -> [ ("+", Badd); ("-", Bsub) ]
  | 9 -> [ ("*", Bmul); ("/", Bdiv); ("%", Bmod) ]
  | _ -> []

and parse_binary st level : expr =
  if level > 9 then parse_unary st
  else begin
    let ops = binop_at_level level in
    let lhs = ref (parse_binary st (level + 1)) in
    let rec loop () =
      match Mlexer.peek st.lx with
      | Mlexer.Tpunct p when List.mem_assoc p ops ->
          ignore (Mlexer.next st.lx);
          let rhs = parse_binary st (level + 1) in
          lhs := mk st (Ebin (List.assoc p ops, !lhs, rhs));
          loop ()
      | _ -> ()
    in
    loop ();
    !lhs
  end

and parse_unary st : expr =
  match Mlexer.peek st.lx with
  | Mlexer.Tpunct "-" ->
      ignore (Mlexer.next st.lx);
      mk st (Eun (Uneg, parse_unary st))
  | Mlexer.Tpunct "!" ->
      ignore (Mlexer.next st.lx);
      mk st (Eun (Unot, parse_unary st))
  | Mlexer.Tpunct "~" ->
      ignore (Mlexer.next st.lx);
      mk st (Eun (Ubnot, parse_unary st))
  | Mlexer.Tpunct "*" ->
      ignore (Mlexer.next st.lx);
      mk st (Ederef (parse_unary st))
  | Mlexer.Tpunct "&" ->
      ignore (Mlexer.next st.lx);
      mk st (Eaddr (parse_unary st))
  | Mlexer.Tpunct "++" ->
      ignore (Mlexer.next st.lx);
      mk st (Epreincr (1, parse_unary st))
  | Mlexer.Tpunct "--" ->
      ignore (Mlexer.next st.lx);
      mk st (Epreincr (-1, parse_unary st))
  | Mlexer.Tpunct "+" ->
      ignore (Mlexer.next st.lx);
      parse_unary st
  | Mlexer.Tkw "sizeof" ->
      ignore (Mlexer.next st.lx);
      expect_punct st "(";
      let ty =
        if starts_type st then parse_abstract_type st
        else fail st "sizeof of expressions not supported; use a type"
      in
      expect_punct st ")";
      mk st (Esizeof ty)
  | Mlexer.Tpunct "(" when is_cast st -> begin
      ignore (Mlexer.next st.lx);
      let ty = parse_abstract_type st in
      expect_punct st ")";
      mk st (Ecast (ty, parse_unary st))
    end
  | _ -> parse_postfix st

(* lookahead: '(' followed by a type starter means a cast *)
and is_cast st =
  (* cheap lookahead: save lexer position *)
  let save_pos = st.lx.Mlexer.pos
  and save_line = st.lx.Mlexer.line
  and save_peek = st.lx.Mlexer.peeked in
  ignore (Mlexer.next st.lx);
  (* consume '(' *)
  let result = starts_type st in
  st.lx.Mlexer.pos <- save_pos;
  st.lx.Mlexer.line <- save_line;
  st.lx.Mlexer.peeked <- save_peek;
  result

and parse_postfix st : expr =
  let e = ref (parse_primary st) in
  let rec loop () =
    match Mlexer.peek st.lx with
    | Mlexer.Tpunct "[" ->
        ignore (Mlexer.next st.lx);
        let idx = parse_expr st in
        expect_punct st "]";
        e := mk st (Eindex (!e, idx));
        loop ()
    | Mlexer.Tpunct "(" ->
        ignore (Mlexer.next st.lx);
        let args =
          if accept_punct st ")" then []
          else
            let rec go acc =
              let a = parse_assign st in
              if accept_punct st "," then go (a :: acc)
              else begin
                expect_punct st ")";
                List.rev (a :: acc)
              end
            in
            go []
        in
        e := mk st (Ecall (!e, args));
        loop ()
    | Mlexer.Tpunct "." ->
        ignore (Mlexer.next st.lx);
        e := mk st (Efield (!e, expect_ident st "field"));
        loop ()
    | Mlexer.Tpunct "->" ->
        ignore (Mlexer.next st.lx);
        e := mk st (Earrow (!e, expect_ident st "field"));
        loop ()
    | Mlexer.Tpunct "++" ->
        ignore (Mlexer.next st.lx);
        e := mk st (Epostincr (1, !e));
        loop ()
    | Mlexer.Tpunct "--" ->
        ignore (Mlexer.next st.lx);
        e := mk st (Epostincr (-1, !e));
        loop ()
    | _ -> ()
  in
  loop ();
  !e

and parse_primary st : expr =
  match Mlexer.next st.lx with
  | Mlexer.Tint v -> mk st (Eint v)
  | Mlexer.Tfloat f -> mk st (Efloat f)
  | Mlexer.Tstring s ->
      (* adjacent string literals concatenate *)
      let rec more acc =
        match Mlexer.peek st.lx with
        | Mlexer.Tstring s2 ->
            ignore (Mlexer.next st.lx);
            more (acc ^ s2)
        | _ -> acc
      in
      mk st (Estr (more s))
  | Mlexer.Tchar c -> mk st (Echar c)
  | Mlexer.Tident name -> mk st (Eident name)
  | Mlexer.Tpunct "(" ->
      let e = parse_expr st in
      expect_punct st ")";
      e
  | Mlexer.Tkw k -> fail st ("unexpected keyword " ^ k)
  | Mlexer.Tpunct p -> fail st ("unexpected '" ^ p ^ "'")
  | Mlexer.Teof -> fail st "unexpected end of file"

(* ---------- statements ---------- *)

let mks st sdesc = { sdesc; sline = Mlexer.line st.lx }

let rec parse_stmt st : stmt =
  match Mlexer.peek st.lx with
  | Mlexer.Tpunct "{" ->
      ignore (Mlexer.next st.lx);
      let rec go acc =
        if accept_punct st "}" then List.rev acc
        else go (parse_stmt st :: acc)
      in
      mks st (Sblock (go []))
  | Mlexer.Tpunct ";" ->
      ignore (Mlexer.next st.lx);
      mks st (Sblock [])
  | Mlexer.Tkw "if" ->
      ignore (Mlexer.next st.lx);
      expect_punct st "(";
      let c = parse_expr st in
      expect_punct st ")";
      let then_s = parse_stmt st in
      let else_s = if accept_kw st "else" then Some (parse_stmt st) else None in
      mks st (Sif (c, then_s, else_s))
  | Mlexer.Tkw "while" ->
      ignore (Mlexer.next st.lx);
      expect_punct st "(";
      let c = parse_expr st in
      expect_punct st ")";
      mks st (Swhile (c, parse_stmt st))
  | Mlexer.Tkw "do" ->
      ignore (Mlexer.next st.lx);
      let body = parse_stmt st in
      if not (accept_kw st "while") then fail st "expected while after do";
      expect_punct st "(";
      let c = parse_expr st in
      expect_punct st ")";
      expect_punct st ";";
      mks st (Sdo (body, c))
  | Mlexer.Tkw "for" ->
      ignore (Mlexer.next st.lx);
      expect_punct st "(";
      let init =
        if accept_punct st ";" then None
        else begin
          let s =
            if starts_type st then parse_decl_stmt st
            else
              let e = parse_expr st in
              expect_punct st ";";
              mks st (Sexpr e)
          in
          Some s
        end
      in
      let cond =
        if accept_punct st ";" then None
        else begin
          let e = parse_expr st in
          expect_punct st ";";
          Some e
        end
      in
      let step =
        if accept_punct st ")" then None
        else begin
          let e = parse_expr st in
          expect_punct st ")";
          Some e
        end
      in
      mks st (Sfor (init, cond, step, parse_stmt st))
  | Mlexer.Tkw "return" ->
      ignore (Mlexer.next st.lx);
      if accept_punct st ";" then mks st (Sreturn None)
      else begin
        let e = parse_expr st in
        expect_punct st ";";
        mks st (Sreturn (Some e))
      end
  | Mlexer.Tkw "break" ->
      ignore (Mlexer.next st.lx);
      expect_punct st ";";
      mks st Sbreak
  | Mlexer.Tkw "continue" ->
      ignore (Mlexer.next st.lx);
      expect_punct st ";";
      mks st Scontinue
  | Mlexer.Tkw "switch" ->
      ignore (Mlexer.next st.lx);
      expect_punct st "(";
      let sel = parse_expr st in
      expect_punct st ")";
      expect_punct st "{";
      let rec cases acc =
        if accept_punct st "}" then List.rev acc
        else if accept_kw st "case" then begin
          let v =
            match Mlexer.next st.lx with
            | Mlexer.Tint v -> v
            | Mlexer.Tchar c -> Int64.of_int (Char.code c)
            | Mlexer.Tpunct "-" -> (
                match Mlexer.next st.lx with
                | Mlexer.Tint v -> Int64.neg v
                | _ -> fail st "expected case constant")
            | Mlexer.Tident name -> (
                (* enum constant: resolved by codegen; encode via marker *)
                match Hashtbl.find_opt st.typedefs ("enum$" ^ name) with
                | Some (Carr (v, _)) -> Int64.of_int v
                | _ -> fail st ("unknown case constant " ^ name))
            | _ -> fail st "expected case constant"
          in
          expect_punct st ":";
          let body = case_body [] in
          cases ((Some v, body) :: acc)
        end
        else if accept_kw st "default" then begin
          expect_punct st ":";
          let body = case_body [] in
          cases ((None, body) :: acc)
        end
        else fail st "expected case or default"
      and case_body acc =
        match Mlexer.peek st.lx with
        | Mlexer.Tkw "case" | Mlexer.Tkw "default" | Mlexer.Tpunct "}" ->
            List.rev acc
        | _ -> case_body (parse_stmt st :: acc)
      in
      mks st (Sswitch (sel, cases []))
  | _ when starts_type st -> parse_decl_stmt st
  | _ ->
      let e = parse_expr st in
      expect_punct st ";";
      mks st (Sexpr e)

(* local declaration: type declarator [= init] (, declarator [= init])* ; *)
and parse_decl_stmt st : stmt =
  let base = parse_base_type st in
  let rec go acc =
    let ty, name = parse_declarator st base in
    let init = if accept_punct st "=" then Some (parse_assign st) else None in
    let acc = mks st (Sdecl (ty, name, init)) :: acc in
    if accept_punct st "," then go acc
    else begin
      expect_punct st ";";
      match acc with [ s ] -> s | _ -> mks st (Sseq (List.rev acc))
    end
  in
  go []

(* ---------- top level ---------- *)

let rec parse_init st : init =
  if accept_punct st "{" then begin
    let rec go acc =
      if accept_punct st "}" then List.rev acc
      else begin
        let i = parse_init st in
        if accept_punct st "," then go (i :: acc)
        else begin
          expect_punct st "}";
          List.rev (i :: acc)
        end
      end
    in
    Ilist (go [])
  end
  else Iexpr (parse_assign st)

let struct_bodies : (string * (cty * string) list) list ref = ref []

(* save/restore lookahead *)
let lookahead st f =
  let save_pos = st.lx.Mlexer.pos
  and save_line = st.lx.Mlexer.line
  and save_peek = st.lx.Mlexer.peeked in
  let r = f () in
  st.lx.Mlexer.pos <- save_pos;
  st.lx.Mlexer.line <- save_line;
  st.lx.Mlexer.peeked <- save_peek;
  r

(* does "( void )" follow? *)
let void_paren_next st =
  lookahead st (fun () ->
      match Mlexer.next st.lx with
      | Mlexer.Tkw "void" -> Mlexer.peek st.lx = Mlexer.Tpunct ")"
      | _ -> false)

let rec parse_program src : program =
  let st =
    {
      lx = Mlexer.create src;
      typedefs = Hashtbl.create 16;
      struct_tags = Hashtbl.create 16;
    }
  in
  let decls = ref [] in
  let rec top () =
    match Mlexer.peek st.lx with
    | Mlexer.Teof -> ()
    | Mlexer.Tkw "typedef" ->
        ignore (Mlexer.next st.lx);
        let base = parse_base_type st in
        (* struct body allowed: typedef struct Tag { ... } Name; *)
        let base =
          if Mlexer.peek st.lx = Mlexer.Tpunct "{" then begin
            (match base with
            | Cstruct tag -> parse_struct_body st tag
            | _ -> fail st "typedef { ... } requires struct");
            base
          end
          else base
        in
        let ty, name = parse_declarator_no_array_init st base in
        Hashtbl.replace st.typedefs name ty;
        expect_punct st ";";
        top ()
    | Mlexer.Tkw "enum" ->
        ignore (Mlexer.next st.lx);
        (match Mlexer.peek st.lx with
        | Mlexer.Tident _ -> ignore (Mlexer.next st.lx)
        | _ -> ());
        expect_punct st "{";
        let counter = ref 0L in
        let rec go acc =
          let name = expect_ident st "enum constant" in
          let v =
            if accept_punct st "=" then begin
              match Mlexer.next st.lx with
              | Mlexer.Tint v ->
                  counter := v;
                  v
              | Mlexer.Tpunct "-" -> (
                  match Mlexer.next st.lx with
                  | Mlexer.Tint v ->
                      counter := Int64.neg v;
                      Int64.neg v
                  | _ -> fail st "expected enum value")
              | _ -> fail st "expected enum value"
            end
            else !counter
          in
          counter := Int64.add v 1L;
          (* record for switch-case lookup *)
          Hashtbl.replace st.typedefs ("enum$" ^ name)
            (Carr (Int64.to_int v, Cint));
          let acc = (name, v) :: acc in
          if accept_punct st "," then
            if Mlexer.peek st.lx = Mlexer.Tpunct "}" then List.rev acc
            else go acc
          else List.rev acc
        in
        let consts = go [] in
        expect_punct st "}";
        expect_punct st ";";
        decls := Denum consts :: !decls;
        top ()
    | Mlexer.Tkw "struct" when is_struct_def st ->
        ignore (Mlexer.next st.lx);
        let tag = expect_ident st "struct tag" in
        Hashtbl.replace st.struct_tags tag ();
        parse_struct_body st tag;
        expect_punct st ";";
        top ()
    | Mlexer.Tkw ("static" | "extern" | "const") ->
        ignore (Mlexer.next st.lx);
        top ()
    | _ ->
        let base = parse_base_type st in
        let ty, name = parse_declarator st base in
        (match Mlexer.peek st.lx with
        | Mlexer.Tpunct "(" -> begin
            (* function definition or declaration *)
            ignore (Mlexer.next st.lx);
            let params =
              if accept_punct st ")" then []
              else if void_paren_next st then begin
                ignore (Mlexer.next st.lx);
                ignore (Mlexer.next st.lx);
                []
              end
              else
                let rec go acc =
                  let pbase = parse_base_type st in
                  let pty, pname = parse_declarator st pbase in
                  (* array parameters decay to pointers *)
                  let pty =
                    match pty with Carr (_, e) -> Cptr e | t -> t
                  in
                  if accept_punct st "," then go ((pty, pname) :: acc)
                  else begin
                    expect_punct st ")";
                    List.rev ((pty, pname) :: acc)
                  end
                in
                go []
            in
            if accept_punct st ";" then
              (* declaration only: empty body list *)
              decls := Dfunc (ty, name, params, []) :: !decls
            else begin
              expect_punct st "{";
              let rec go acc =
                if accept_punct st "}" then List.rev acc
                else go (parse_stmt st :: acc)
              in
              let body =
                match go [] with
                | [] -> [ { sdesc = Sblock []; sline = Mlexer.line st.lx } ]
                | ss -> ss
              in
              decls := Dfunc (ty, name, params, body) :: !decls
            end;
            top ()
          end
        | _ ->
            let rec more ty name =
              let init =
                if accept_punct st "=" then Some (parse_init st) else None
              in
              decls := Dglobal (ty, name, init) :: !decls;
              if accept_punct st "," then begin
                let ty2, name2 = parse_declarator st base in
                more ty2 name2
              end
              else expect_punct st ";"
            in
            more ty name;
            top ())
  in
  top ();
  List.rev !decls

and parse_struct_body st tag =
  expect_punct st "{";
  let fields = ref [] in
  let rec go () =
    if accept_punct st "}" then ()
    else begin
      let base = parse_base_type st in
      let rec field_group () =
        let fty, fname = parse_declarator st base in
        fields := (fty, fname) :: !fields;
        if accept_punct st "," then field_group () else expect_punct st ";"
      in
      field_group ();
      go ()
    end
  in
  go ();
  (* record under a synthetic key so codegen can fetch field lists *)
  Hashtbl.replace st.typedefs ("struct$" ^ tag) Cvoid;
  struct_bodies := (tag, List.rev !fields) :: !struct_bodies

(* peek: struct Tag { -> definition; struct Tag ident -> declaration use *)
and is_struct_def st =
  let save_pos = st.lx.Mlexer.pos
  and save_line = st.lx.Mlexer.line
  and save_peek = st.lx.Mlexer.peeked in
  ignore (Mlexer.next st.lx) (* struct *);
  let result =
    match Mlexer.next st.lx with
    | Mlexer.Tident _ -> Mlexer.peek st.lx = Mlexer.Tpunct "{"
    | _ -> false
  in
  st.lx.Mlexer.pos <- save_pos;
  st.lx.Mlexer.line <- save_line;
  st.lx.Mlexer.peeked <- save_peek;
  result

(* typedef declarator cannot have an initializer *)
and parse_declarator_no_array_init st base = parse_declarator st base

(* entry point that also returns the struct bodies encountered *)
let parse src =
  struct_bodies := [];
  let prog = parse_program src in
  let structs = List.map (fun (t, fs) -> Dstruct (t, fs)) !struct_bodies in
  structs @ prog
