lib/sparclite/compile.ml: Array Buffer Codegen Eval Hashtbl Int64 Ir List Llva Printf Sparc Target Types Vmem
