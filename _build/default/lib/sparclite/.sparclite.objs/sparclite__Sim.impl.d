lib/sparclite/sim.ml: Array Compile Eval Float Hashtbl Int32 Int64 Ir List Llva Sparc Types Vmem
