lib/sparclite/sparc.ml: Int64 Llva Printf
