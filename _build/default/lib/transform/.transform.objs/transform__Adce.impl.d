lib/transform/adce.ml: Array Hashtbl Ir List Llva Queue
