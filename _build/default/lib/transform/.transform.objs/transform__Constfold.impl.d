lib/transform/constfold.ml: Array Eval Int64 Ir Llva Option Types
