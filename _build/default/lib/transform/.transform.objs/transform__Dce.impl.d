lib/transform/dce.ml: Ir List Llva
