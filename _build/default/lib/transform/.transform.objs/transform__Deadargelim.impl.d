lib/transform/deadargelim.ml: Analysis Array Ir List Llva
