lib/transform/globaldce.ml: Analysis Array Hashtbl Ir List Llva
