lib/transform/gvn.ml: Analysis Array Ir List Llva Pretty Printf String Types Vmem
