lib/transform/inline.ml: Analysis Array Hashtbl Ir List Llva Option Types
