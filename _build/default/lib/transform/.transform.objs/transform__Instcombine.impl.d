lib/transform/instcombine.ml: Array Constfold Int64 Ir List Llva Types
