lib/transform/licm.ml: Analysis Array Ir Lazy List Llva Option Types Vmem
