lib/transform/mem2reg.ml: Analysis Array Hashtbl Ir List Llva Queue Types
