lib/transform/passmgr.ml: Adce Dce Deadargelim Globaldce Gvn Inline Instcombine Ir Licm List Llva Mem2reg Printf Sccp Simplifycfg String Verify
