lib/transform/sccp.ml: Array Constfold Eval Hashtbl Int64 Ir List Llva Option Queue Types
