lib/transform/simplifycfg.ml: Analysis Array Constfold Ir List Llva Types
