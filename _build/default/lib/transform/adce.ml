(* Aggressive dead-code elimination: start from observable roots
   (terminators, stores, calls, trapping instructions) and mark backwards
   through operands; everything unmarked is deleted. Stronger than [Dce]
   because cyclic dead SSA chains (dead loop counters) die together. *)

open Llva

let is_root (i : Ir.instr) =
  match i.Ir.op with
  | Ir.Store | Ir.Call | Ir.Invoke | Ir.Ret | Ir.Br | Ir.Mbr | Ir.Unwind ->
      true
  | Ir.Load | Ir.Binop Ir.Div | Ir.Binop Ir.Rem -> i.Ir.exceptions_enabled
  | _ -> false

let run_function (f : Ir.func) : int =
  if Ir.is_declaration f then 0
  else begin
    let live : (int, unit) Hashtbl.t = Hashtbl.create 64 in
    let work = Queue.create () in
    let mark (i : Ir.instr) =
      if not (Hashtbl.mem live i.Ir.iid) then begin
        Hashtbl.replace live i.Ir.iid ();
        Queue.add i work
      end
    in
    Ir.iter_instrs (fun i -> if is_root i then mark i) f;
    while not (Queue.is_empty work) do
      let i = Queue.pop work in
      Array.iter
        (fun v -> match v with Ir.Vreg d -> mark d | _ -> ())
        i.Ir.operands
    done;
    let removed = ref 0 in
    List.iter
      (fun (b : Ir.block) ->
        let dead =
          List.filter
            (fun (i : Ir.instr) ->
              not (Hashtbl.mem live i.Ir.iid))
            b.Ir.instrs
        in
        (* detach uses among dead instructions before removal *)
        List.iter
          (fun (i : Ir.instr) ->
            if i.Ir.iuses <> [] then
              Ir.replace_all_uses_with (Ir.Vreg i) (Ir.Vundef i.Ir.ity))
          dead;
        List.iter
          (fun i ->
            Ir.remove_instr i;
            incr removed)
          dead)
      f.Ir.fblocks;
    !removed
  end

let run_module (m : Ir.modl) : int =
  List.fold_left (fun n f -> n + run_function f) 0 m.Ir.funcs
