(* Dead code elimination: delete instructions with no uses and no side
   effects, iterating to a fixpoint (deleting one instruction can make its
   operands dead). Returns the number of instructions removed. *)

open Llva

let has_side_effects (i : Ir.instr) =
  match i.Ir.op with
  | Ir.Store | Ir.Call | Ir.Invoke | Ir.Ret | Ir.Br | Ir.Mbr | Ir.Unwind ->
      true
  | Ir.Load | Ir.Binop Ir.Div | Ir.Binop Ir.Rem ->
      (* may trap when exceptions are enabled *)
      i.Ir.exceptions_enabled
  | Ir.Alloca -> false (* an unused alloca is just dead stack space *)
  | _ -> false

let is_trivially_dead (i : Ir.instr) =
  i.Ir.iuses = [] && not (has_side_effects i)

let run_function (f : Ir.func) : int =
  let removed = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (b : Ir.block) ->
        let dead = List.filter is_trivially_dead b.Ir.instrs in
        List.iter
          (fun i ->
            Ir.remove_instr i;
            incr removed;
            changed := true)
          dead)
      f.Ir.fblocks
  done;
  !removed

let run_module (m : Ir.modl) : int =
  List.fold_left (fun n f -> n + run_function f) 0 m.Ir.funcs
