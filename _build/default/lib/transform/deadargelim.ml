(* Dead-argument elimination: a link-time interprocedural transformation
   (paper §4.2 — link time is "the first time that most or all modules of
   an application are simultaneously available"). For every function whose
   call sites are all visible (not address-taken, not varargs), arguments
   that no instruction reads are removed from the signature and from every
   call site, shrinking both codegen work and call overhead. *)

open Llva

let run_module (m : Ir.modl) : int =
  let cg = Analysis.Callgraph.compute m in
  let removed = ref 0 in
  List.iter
    (fun (f : Ir.func) ->
      if
        (not (Ir.is_declaration f))
        && (not f.Ir.fvarargs)
        && (not (Analysis.Callgraph.is_address_taken cg f))
        && f.Ir.fname <> "main"
      then begin
        let dead_indices =
          List.filteri (fun _ (a : Ir.arg) -> a.Ir.auses = []) f.Ir.fargs
          |> List.map (fun (a : Ir.arg) ->
                 let rec idx k = function
                   | [] -> -1
                   | x :: _ when x == a -> k
                   | _ :: rest -> idx (k + 1) rest
                 in
                 idx 0 f.Ir.fargs)
        in
        if dead_indices <> [] then begin
          (* every direct caller drops the operand; callers are complete
             because the function's address never escapes *)
          let callers = Analysis.Callgraph.callers cg f in
          let call_sites =
            List.concat_map
              (fun (caller : Ir.func) ->
                Ir.fold_instrs
                  (fun acc i ->
                    match i.Ir.op with
                    | Ir.Call | Ir.Invoke -> (
                        match Ir.call_callee i with
                        | Ir.Vfunc g when g == f -> i :: acc
                        | _ -> acc)
                    | _ -> acc)
                  [] caller)
              callers
          in
          let arg_base (i : Ir.instr) = if i.Ir.op = Ir.Call then 1 else 3 in
          List.iter
            (fun (site : Ir.instr) ->
              let base = arg_base site in
              let keep =
                Array.to_list site.Ir.operands
                |> List.filteri (fun k _ ->
                       k < base || not (List.mem (k - base) dead_indices))
              in
              Ir.unregister_operand_uses site;
              site.Ir.operands <- Array.of_list keep;
              Ir.register_operand_uses site)
            call_sites;
          f.Ir.fargs <-
            List.filteri (fun k _ -> not (List.mem k dead_indices)) f.Ir.fargs;
          removed := !removed + List.length dead_indices
        end
      end)
    m.Ir.funcs;
  !removed
