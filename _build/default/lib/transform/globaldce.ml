(* Global dead-code elimination at link time: functions unreachable from
   %main (or any address-taken function) and globals never referenced are
   removed from the module. *)

open Llva

let run_module ?(roots = [ "main" ]) (m : Ir.modl) : int =
  let cg = Analysis.Callgraph.compute m in
  let root_funcs = List.filter_map (Ir.find_func m) roots in
  let root_funcs = if root_funcs = [] then m.Ir.funcs else root_funcs in
  let reachable = Analysis.Callgraph.reachable_from cg root_funcs in
  let removed = ref 0 in
  let keep_funcs, drop_funcs =
    List.partition (fun (f : Ir.func) -> Hashtbl.mem reachable f.Ir.fid) m.Ir.funcs
  in
  (* only drop functions with no remaining uses at all *)
  let drop_funcs =
    List.filter (fun (f : Ir.func) -> f.Ir.fuses = []) drop_funcs
  in
  m.Ir.funcs <-
    List.filter
      (fun f ->
        let dropped = List.exists (fun g -> g == f) drop_funcs in
        if dropped then begin
          (* drop operand uses so other dead symbols become free too *)
          Ir.iter_instrs (fun i -> Ir.unregister_operand_uses i) f;
          incr removed
        end;
        not dropped)
      m.Ir.funcs;
  ignore keep_funcs;
  (* globals with no uses and no name-based references from initializers *)
  let referenced = Hashtbl.create 32 in
  let rec scan_const (c : Ir.const) =
    match c.Ir.ckind with
    | Ir.Cglobal_ref name -> Hashtbl.replace referenced name ()
    | Ir.Carray cs | Ir.Cstruct cs -> List.iter scan_const cs
    | _ -> ()
  in
  List.iter
    (fun g -> match g.Ir.ginit with Some c -> scan_const c | None -> ())
    m.Ir.globals;
  List.iter
    (fun f ->
      Ir.iter_instrs
        (fun i ->
          Array.iter
            (fun v ->
              match v with
              | Ir.Const c -> scan_const c
              | _ -> ())
            i.Ir.operands)
        f)
    m.Ir.funcs;
  m.Ir.globals <-
    List.filter
      (fun (g : Ir.global) ->
        let dead = g.Ir.guses = [] && not (Hashtbl.mem referenced g.Ir.gname) in
        if dead then incr removed;
        not dead)
      m.Ir.globals;
  !removed
