(* Global value numbering by dominator-tree scoped hashing: pure
   expressions (binop, setcc, cast, getelementptr) with identical operands
   are reused from dominating definitions. Also performs redundant load
   elimination within a block, using [Analysis.Alias] to keep available
   loads across non-aliasing stores and across calls that cannot touch the
   location. *)

open Llva

let value_key (v : Ir.value) =
  match v with
  | Ir.Vreg i -> Printf.sprintf "i%d" i.Ir.iid
  | Ir.Varg a -> Printf.sprintf "a%d" a.Ir.aid
  | Ir.Vglobal g -> "g" ^ g.Ir.gname
  | Ir.Vfunc f -> "f" ^ f.Ir.fname
  | Ir.Vblock b -> Printf.sprintf "b%d" b.Ir.blid
  | Ir.Const c -> "c" ^ Pretty.typed_const c
  | Ir.Vundef ty -> "u" ^ Types.to_string ty

let commutative = function
  | Ir.Add | Ir.Mul | Ir.And | Ir.Or | Ir.Xor -> true
  | _ -> false

let expr_key (i : Ir.instr) : string option =
  let ops () = Array.to_list (Array.map value_key i.Ir.operands) in
  match i.Ir.op with
  | Ir.Binop op ->
      let operands = ops () in
      let operands =
        if commutative op then List.sort compare operands else operands
      in
      Some
        (Printf.sprintf "%s:%s:%s" (Ir.binop_name op)
           (Types.to_string i.Ir.ity)
           (String.concat "," operands))
  | Ir.Setcc c ->
      Some
        (Printf.sprintf "%s:%s:%s" (Ir.cmp_name c)
           (Types.to_string (Ir.type_of_value i.Ir.operands.(0)))
           (String.concat "," (ops ())))
  | Ir.Cast ->
      Some
        (Printf.sprintf "cast:%s:%s"
           (Types.to_string i.Ir.ity)
           (String.concat "," (ops ())))
  | Ir.Getelementptr ->
      Some
        (Printf.sprintf "gep:%s:%s"
           (Types.to_string i.Ir.ity)
           (String.concat "," (ops ())))
  | _ -> None

let run_function ~(lt : Vmem.Layout.t) (f : Ir.func) : int =
  if Ir.is_declaration f then 0
  else begin
    let cfg = Analysis.Cfg.build f in
    let dom = Analysis.Dominance.compute cfg in
    let eliminated = ref 0 in
    let rec walk (b : Ir.block) (scope : (string * Ir.instr) list) =
      let scope = ref scope in
      (* available memory values within this block: (address, value) *)
      let avail : (Ir.value * Ir.value) list ref = ref [] in
      let find_avail addr =
        List.find_map
          (fun (a, v) ->
            match Analysis.Alias.alias lt a addr with
            | Analysis.Alias.Must_alias
              when Types.equal (Ir.type_of_value v)
                     (Types.pointee lt.Vmem.Layout.env (Ir.type_of_value addr))
              ->
                Some v
            | _ -> None)
          !avail
      in
      List.iter
        (fun (i : Ir.instr) ->
          match i.Ir.op with
          | Ir.Load -> (
              let addr = i.Ir.operands.(0) in
              match find_avail addr with
              | Some known ->
                  Ir.replace_all_uses_with (Ir.Vreg i) known;
                  Ir.remove_instr i;
                  incr eliminated
              | None -> avail := (addr, Ir.Vreg i) :: !avail)
          | Ir.Store ->
              let addr = i.Ir.operands.(1) in
              avail :=
                (addr, i.Ir.operands.(0))
                :: List.filter
                     (fun (a, _) ->
                       Analysis.Alias.alias lt a addr = Analysis.Alias.No_alias)
                     !avail
          | Ir.Call | Ir.Invoke ->
              (* drop entries the call may modify *)
              avail :=
                List.filter
                  (fun (a, _) -> not (Analysis.Alias.call_may_modify i a))
                  !avail
          | _ -> (
              match expr_key i with
              | Some key -> (
                  match List.assoc_opt key !scope with
                  | Some existing
                    when (not (Ir.is_terminator i))
                         && i.Ir.exceptions_enabled
                            = existing.Ir.exceptions_enabled ->
                      Ir.replace_all_uses_with (Ir.Vreg i) (Ir.Vreg existing);
                      Ir.remove_instr i;
                      incr eliminated
                  | _ -> scope := (key, i) :: !scope)
              | None -> ()))
        (List.filter (fun _ -> true) b.Ir.instrs);
      List.iter
        (fun child -> walk child !scope)
        (Analysis.Dominance.children_blocks dom b)
    in
    walk (Ir.entry_block f) [];
    !eliminated
  end

let run_module (m : Ir.modl) : int =
  let lt = Vmem.Layout.for_module m in
  List.fold_left (fun n f -> n + run_function ~lt f) 0 m.Ir.funcs
