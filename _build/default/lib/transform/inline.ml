(* Function inlining (a link-time interprocedural optimization, §4.2).

   Direct, non-recursive calls to small function bodies are spliced into
   the caller: the call block is split, the callee's blocks are cloned
   with arguments substituted, each ret becomes a branch to the
   continuation (merged through a phi when the callee has several
   returns), and the callee's static allocas migrate to the caller's
   entry block so loops do not grow the stack. *)

open Llva

let default_threshold = 60

(* ---------- cloning ---------- *)

type vmap = {
  args : (int, Ir.value) Hashtbl.t;
  instrs : (int, Ir.instr) Hashtbl.t;
  blocks : (int, Ir.block) Hashtbl.t;
}

let remap vmap (v : Ir.value) : Ir.value =
  match v with
  | Ir.Varg a -> (
      match Hashtbl.find_opt vmap.args a.Ir.aid with Some x -> x | None -> v)
  | Ir.Vreg i -> (
      match Hashtbl.find_opt vmap.instrs i.Ir.iid with
      | Some x -> Ir.Vreg x
      | None -> v)
  | Ir.Vblock b -> (
      match Hashtbl.find_opt vmap.blocks b.Ir.blid with
      | Some x -> Ir.Vblock x
      | None -> v)
  | _ -> v

(* Inline [call] (a direct Call to [callee]); returns true on success. *)
let inline_call (call : Ir.instr) (callee : Ir.func) : bool =
  match (call.Ir.iparent, call.Ir.op) with
  | Some host, Ir.Call when not (Ir.is_declaration callee) ->
      let caller = Option.get host.Ir.bparent in
      let actuals = Ir.call_args call in
      (* 1. split the host block after the call *)
      let cont = Ir.mk_block ~name:(host.Ir.bname ^ ".cont") () in
      let rec split before = function
        | [] -> (List.rev before, [])
        | x :: rest when x == call -> (List.rev before, rest)
        | x :: rest -> split (x :: before) rest
      in
      let before, after = split [] host.Ir.instrs in
      host.Ir.instrs <- before;
      List.iter
        (fun (i : Ir.instr) ->
          i.Ir.iparent <- Some cont;
          cont.Ir.instrs <- cont.Ir.instrs @ [ i ])
        after;
      (* successors' phis now arrive from cont *)
      List.iter
        (fun succ -> Ir.phi_replace_pred succ ~old_pred:host ~new_pred:cont)
        (List.sort_uniq compare (Ir.successors cont));
      (* 2. build the value map *)
      let vmap =
        {
          args = Hashtbl.create 8;
          instrs = Hashtbl.create 64;
          blocks = Hashtbl.create 16;
        }
      in
      List.iteri
        (fun k (a : Ir.arg) ->
          match List.nth_opt actuals k with
          | Some v -> Hashtbl.replace vmap.args a.Ir.aid v
          | None -> ())
        callee.Ir.fargs;
      (* 3. clone blocks and instruction shells *)
      let clones =
        List.map
          (fun (b : Ir.block) ->
            let nb =
              Ir.mk_block ~name:(callee.Ir.fname ^ "." ^ b.Ir.bname) ()
            in
            Hashtbl.replace vmap.blocks b.Ir.blid nb;
            (b, nb))
          callee.Ir.fblocks
      in
      let rets = ref [] in
      List.iter
        (fun ((b : Ir.block), (nb : Ir.block)) ->
          List.iter
            (fun (i : Ir.instr) ->
              match i.Ir.op with
              | Ir.Ret ->
                  let v =
                    if Array.length i.Ir.operands = 1 then
                      Some i.Ir.operands.(0)
                    else None
                  in
                  rets := (nb, v) :: !rets;
                  Ir.append_instr nb
                    (Ir.mk_instr Ir.Br [| Ir.Vblock cont |] Types.Void)
              | _ ->
                  let ni = Ir.mk_instr ~name:i.Ir.iname i.Ir.op [||] i.Ir.ity in
                  ni.Ir.exceptions_enabled <- i.Ir.exceptions_enabled;
                  Hashtbl.replace vmap.instrs i.Ir.iid ni;
                  Ir.append_instr nb ni)
            b.Ir.instrs)
        clones;
      (* 4. remap operands; ret operands were captured raw, remap them too *)
      List.iter
        (fun ((b : Ir.block), _) ->
          List.iter
            (fun (i : Ir.instr) ->
              match Hashtbl.find_opt vmap.instrs i.Ir.iid with
              | Some ni ->
                  ni.Ir.operands <- Array.map (remap vmap) i.Ir.operands;
                  Ir.register_operand_uses ni
              | None -> ())
            b.Ir.instrs)
        clones;
      let rets = List.map (fun (nb, v) -> (nb, Option.map (remap vmap) v)) !rets in
      (* 5. branch into the cloned entry *)
      let entry_clone = Hashtbl.find vmap.blocks (Ir.entry_block callee).Ir.blid in
      Ir.append_instr host
        (Ir.mk_instr Ir.Br [| Ir.Vblock entry_clone |] Types.Void);
      (* 6. the call's result *)
      if not (Types.equal call.Ir.ity Types.Void) then begin
        let result =
          match rets with
          | [ (_, Some v) ] -> v
          | [] -> Ir.Vundef call.Ir.ity (* callee never returns *)
          | pairs ->
              let phi =
                Ir.mk_instr ~name:(callee.Ir.fname ^ ".ret") Ir.Phi
                  (Array.of_list
                     (List.concat_map
                        (fun (nb, v) ->
                          [
                            (match v with
                            | Some v -> v
                            | None -> Ir.Vundef call.Ir.ity);
                            Ir.Vblock nb;
                          ])
                        pairs))
                  call.Ir.ity
              in
              Ir.prepend_instr cont phi;
              Ir.Vreg phi
        in
        Ir.replace_all_uses_with (Ir.Vreg call) result
      end;
      Ir.remove_instr call;
      (* 7. splice blocks into the caller: host, clones..., cont, rest *)
      let rec insert_after = function
        | [] -> List.map snd clones @ [ cont ]
        | b :: rest when b == host -> (b :: List.map snd clones) @ (cont :: rest)
        | b :: rest -> b :: insert_after rest
      in
      List.iter
        (fun (_, nb) -> nb.Ir.bparent <- Some caller)
        clones;
      cont.Ir.bparent <- Some caller;
      caller.Ir.fblocks <- insert_after caller.Ir.fblocks;
      (* 8. migrate static allocas to the caller entry *)
      let caller_entry = Ir.entry_block caller in
      List.iter
        (fun (_, (nb : Ir.block)) ->
          let statics =
            List.filter
              (fun (i : Ir.instr) ->
                i.Ir.op = Ir.Alloca && Array.length i.Ir.operands = 0)
              nb.Ir.instrs
          in
          List.iter
            (fun (a : Ir.instr) ->
              nb.Ir.instrs <- List.filter (fun x -> not (x == a)) nb.Ir.instrs;
              a.Ir.iparent <- Some caller_entry;
              caller_entry.Ir.instrs <- a :: caller_entry.Ir.instrs)
            statics)
        clones;
      true
  | _ -> false

(* ---------- the pass ---------- *)

let function_size (f : Ir.func) = Ir.instr_count f

let run_module ?(threshold = default_threshold) (m : Ir.modl) : int =
  let cg = Analysis.Callgraph.compute m in
  let inlined = ref 0 in
  List.iter
    (fun (caller : Ir.func) ->
      if not (Ir.is_declaration caller) then begin
        let budget = ref (max 400 (3 * function_size caller)) in
        let find_site () =
          Ir.fold_instrs
            (fun acc i ->
              match (acc, i.Ir.op) with
              | Some _, _ -> acc
              | None, Ir.Call -> (
                  match Ir.call_callee i with
                  | Ir.Vfunc callee
                    when (not (Ir.is_declaration callee))
                         && (not (callee == caller))
                         && (not callee.Ir.fvarargs)
                         && (not (Analysis.Callgraph.is_recursive cg callee))
                         && function_size callee <= threshold
                         && function_size callee <= !budget ->
                      Some (i, callee)
                  | _ -> None)
              | None, _ -> None)
            None caller
        in
        let rec go () =
          match find_site () with
          | Some (site, callee) when inline_call site callee ->
              budget := !budget - function_size callee;
              incr inlined;
              go ()
          | _ -> ()
        in
        go ()
      end)
    m.Ir.funcs;
  !inlined
