(* Peephole algebraic simplification. Each rule either folds the
   instruction to an existing value (RAUW + delete) or rewrites it in
   place to a cheaper form. Applied to a fixpoint per function. *)

open Llva

let is_zero = function
  | Ir.Const { ckind = Ir.Cint 0L; _ } -> true
  | Ir.Const { ckind = Ir.Cfloat v; _ } -> v = 0.0
  | Ir.Const { ckind = Ir.Cbool false; _ } -> true
  | _ -> false

let is_one = function
  | Ir.Const { ckind = Ir.Cint 1L; _ } -> true
  | Ir.Const { ckind = Ir.Cfloat v; _ } -> v = 1.0
  | _ -> false

let is_all_ones ty = function
  | Ir.Const { ckind = Ir.Cint v; _ } ->
      Types.is_integer ty && Int64.equal v (Ir.normalize_int ty (-1L))
  | Ir.Const { ckind = Ir.Cbool true; _ } -> true
  | _ -> false

let int_const = function
  | Ir.Const { ckind = Ir.Cint v; _ } -> Some v
  | _ -> None

(* power of two -> shift amount *)
let log2_exact (v : int64) =
  if Int64.compare v 0L <= 0 then None
  else
    let rec go k =
      let p = Int64.shift_left 1L k in
      if Int64.equal p v then Some k
      else if Int64.unsigned_compare p v > 0 || k >= 63 then None
      else go (k + 1)
    in
    go 0

type action = Replace of Ir.value | Rewrite | Nothing

let simplify (i : Ir.instr) : action =
  let x () = i.Ir.operands.(0) and y () = i.Ir.operands.(1) in
  let ty = i.Ir.ity in
  let int_ty = Types.is_integer ty in
  match i.Ir.op with
  | Ir.Binop Ir.Add ->
      if int_ty && is_zero (y ()) then Replace (x ())
      else if int_ty && is_zero (x ()) then Replace (y ())
      else Nothing
  | Ir.Binop Ir.Sub ->
      if int_ty && is_zero (y ()) then Replace (x ())
      else if int_ty && Ir.value_equal (x ()) (y ()) then
        Replace (Ir.const_int ty 0L)
      else Nothing
  | Ir.Binop Ir.Mul -> (
      if not int_ty then Nothing
      else if is_one (y ()) then Replace (x ())
      else if is_one (x ()) then Replace (y ())
      else if is_zero (y ()) || is_zero (x ()) then Replace (Ir.const_int ty 0L)
      else
        (* x * 2^k -> shl x, k *)
        match int_const (y ()) with
        | Some v -> (
            match log2_exact v with
            | Some k ->
                i.Ir.op <- Ir.Binop Ir.Shl;
                Ir.set_operand i 1 (Ir.const_int Types.Ubyte (Int64.of_int k));
                Rewrite
            | None -> Nothing)
        | None -> Nothing)
  | Ir.Binop Ir.Div -> (
      if int_ty && is_one (y ()) then Replace (x ())
      else
        (* unsigned x / 2^k -> shr x, k *)
        match (Types.is_unsigned ty, int_const (y ())) with
        | true, Some v -> (
            match log2_exact v with
            | Some k when k > 0 ->
                i.Ir.op <- Ir.Binop Ir.Shr;
                i.Ir.exceptions_enabled <-
                  Ir.default_exceptions_enabled (Ir.Binop Ir.Shr);
                Ir.set_operand i 1 (Ir.const_int Types.Ubyte (Int64.of_int k));
                Rewrite
            | _ -> Nothing)
        | _ -> Nothing)
  | Ir.Binop Ir.Rem -> (
      (* unsigned x % 2^k -> and x, 2^k-1 *)
      match (Types.is_unsigned ty, int_const (y ())) with
      | true, Some v -> (
          match log2_exact v with
          | Some _ ->
              i.Ir.op <- Ir.Binop Ir.And;
              i.Ir.exceptions_enabled <-
                Ir.default_exceptions_enabled (Ir.Binop Ir.And);
              Ir.set_operand i 1 (Ir.const_int ty (Int64.sub v 1L));
              Rewrite
          | None -> Nothing)
      | _ -> Nothing)
  | Ir.Binop Ir.And ->
      if is_zero (y ()) || is_zero (x ()) then
        Replace (if Types.equal ty Types.Bool then Ir.const_bool false
                 else Ir.const_int ty 0L)
      else if is_all_ones ty (y ()) then Replace (x ())
      else if is_all_ones ty (x ()) then Replace (y ())
      else if Ir.value_equal (x ()) (y ()) then Replace (x ())
      else Nothing
  | Ir.Binop Ir.Or ->
      if is_zero (y ()) then Replace (x ())
      else if is_zero (x ()) then Replace (y ())
      else if Ir.value_equal (x ()) (y ()) then Replace (x ())
      else Nothing
  | Ir.Binop Ir.Xor ->
      if is_zero (y ()) then Replace (x ())
      else if is_zero (x ()) then Replace (y ())
      else if Ir.value_equal (x ()) (y ()) then
        Replace
          (if Types.equal ty Types.Bool then Ir.const_bool false
           else Ir.const_int ty 0L)
      else Nothing
  | Ir.Binop Ir.Shl | Ir.Binop Ir.Shr ->
      if is_zero (y ()) then Replace (x ()) else Nothing
  | Ir.Setcc c ->
      (* x cmp x folds for integer/pointer operands *)
      if
        Ir.value_equal (x ()) (y ())
        && not (Types.is_fp (Ir.type_of_value (x ())))
      then
        Replace
          (Ir.const_bool (match c with Ir.Eq | Ir.Le | Ir.Ge -> true | _ -> false))
      else Nothing
  | Ir.Cast ->
      (* cast to the identical type is a no-op *)
      if Types.equal (Ir.type_of_value (x ())) i.Ir.ity then Replace (x ())
      else Nothing
  | _ -> Nothing

let run_function (f : Ir.func) : int =
  if Ir.is_declaration f then 0
  else begin
    let applied = ref 0 in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (b : Ir.block) ->
          List.iter
            (fun (i : Ir.instr) ->
              (* constant folding first *)
              match Constfold.fold_instr i with
              | Some c ->
                  Ir.replace_all_uses_with (Ir.Vreg i) c;
                  Ir.remove_instr i;
                  incr applied;
                  changed := true
              | None -> (
                  match simplify i with
                  | Replace v ->
                      Ir.replace_all_uses_with (Ir.Vreg i) v;
                      Ir.remove_instr i;
                      incr applied;
                      changed := true
                  | Rewrite ->
                      incr applied;
                      changed := true
                  | Nothing -> ()))
            (List.filter (fun _ -> true) b.Ir.instrs))
        f.Ir.fblocks
    done;
    !applied
  end

let run_module (m : Ir.modl) : int =
  List.fold_left (fun n f -> n + run_function f) 0 m.Ir.funcs
