(* Loop-invariant code motion: hoist computations whose operands are
   defined outside the loop into the loop preheader (creating one when
   necessary). Only instructions that cannot observably trap are hoisted —
   an instruction with ExceptionsEnabled may only be hoisted if it is
   guaranteed to execute on every iteration, which we approximate by
   requiring it to be in a block that dominates every latch. Loads are
   hoisted when no instruction in the loop may write the location. *)

open Llva

let mk_preheader (f : Ir.func) (l : Analysis.Loops.loop) : Ir.block =
  match Analysis.Loops.preheader l with
  | Some p -> p
  | None ->
      let header = l.Analysis.Loops.header in
      let outside =
        List.filter
          (fun p -> not (Analysis.Loops.in_loop l p))
          (Ir.predecessors header)
      in
      let ph = Ir.mk_block ~name:(header.Ir.bname ^ ".preheader") () in
      (* insert before the header in the block list *)
      let rec insert = function
        | [] -> [ ph ]
        | b :: rest when b == header -> ph :: b :: rest
        | b :: rest -> b :: insert rest
      in
      ph.Ir.bparent <- Some f;
      f.Ir.fblocks <- insert f.Ir.fblocks;
      Ir.append_instr ph (Ir.mk_instr Ir.Br [| Ir.Vblock header |] Types.Void);
      (* retarget outside predecessors to the preheader *)
      List.iter
        (fun (p : Ir.block) ->
          match Ir.terminator p with
          | Some t ->
              Array.iteri
                (fun k v ->
                  match v with
                  | Ir.Vblock x when x == header ->
                      Ir.set_operand t k (Ir.Vblock ph)
                  | _ -> ())
                t.Ir.operands
          | None -> ())
        outside;
      (* split header phis: entries from outside move to a new phi in the
         preheader... with a single outside pred the entry just retargets *)
      List.iter
        (fun phi ->
          let inside, outside_pairs =
            List.partition
              (fun (_, pred) -> Analysis.Loops.in_loop l pred)
              (Ir.phi_incoming phi)
          in
          match outside_pairs with
          | [] -> ()
          | [ (v, _) ] -> Ir.phi_set_incoming phi (inside @ [ (v, ph) ])
          | pairs ->
              (* multiple outside predecessors: merge them with a phi in
                 the preheader *)
              let merged =
                Ir.mk_instr ~name:(phi.Ir.iname ^ ".ph") Ir.Phi
                  (Array.of_list
                     (List.concat_map
                        (fun (v, p) -> [ v; Ir.Vblock p ])
                        pairs))
                  phi.Ir.ity
              in
              Ir.prepend_instr ph merged;
              Ir.phi_set_incoming phi (inside @ [ (Ir.Vreg merged, ph) ]))
        (Ir.block_phis header);
      ph

let run_function ~(lt : Vmem.Layout.t) (f : Ir.func) : int =
  if Ir.is_declaration f then 0
  else begin
    let cfg = Analysis.Cfg.build f in
    let dom = Analysis.Dominance.compute cfg in
    let loops = Analysis.Loops.compute cfg dom in
    let hoisted = ref 0 in
    List.iter
      (fun (l : Analysis.Loops.loop) ->
        let in_loop_instr (i : Ir.instr) =
          match i.Ir.iparent with
          | Some b -> Analysis.Loops.in_loop l b
          | None -> false
        in
        let invariant_value (v : Ir.value) =
          match v with
          | Ir.Vreg i -> not (in_loop_instr i)
          | _ -> true
        in
        let loop_may_write addr =
          List.exists
            (fun (b : Ir.block) ->
              List.exists
                (fun (i : Ir.instr) ->
                  Analysis.Alias.instr_may_write_to lt i addr)
                b.Ir.instrs)
            l.Analysis.Loops.body
        in
        (* blocks with a successor outside the loop *)
        let exiting =
          List.filter
            (fun (b : Ir.block) ->
              List.exists
                (fun s -> not (Analysis.Loops.in_loop l s))
                (Ir.successors b))
            l.Analysis.Loops.body
        in
        (* "guaranteed to execute": any complete iteration and any exit
           passes through [b] *)
        let dominates_all_latches (b : Ir.block) =
          List.for_all
            (fun latch -> Analysis.Dominance.dominates dom b latch)
            l.Analysis.Loops.latches
          && List.for_all
               (fun e -> Analysis.Dominance.dominates dom b e)
               exiting
        in
        let ph = lazy (mk_preheader f l) in
        let changed = ref true in
        while !changed do
          changed := false;
          List.iter
            (fun (b : Ir.block) ->
              List.iter
                (fun (i : Ir.instr) ->
                  let hoistable =
                    match i.Ir.op with
                    | Ir.Binop _ | Ir.Setcc _ | Ir.Cast | Ir.Getelementptr ->
                        Array.for_all invariant_value i.Ir.operands
                        && ((not i.Ir.exceptions_enabled)
                           || dominates_all_latches b)
                    | Ir.Load ->
                        Array.for_all invariant_value i.Ir.operands
                        && dominates_all_latches b
                        && not (loop_may_write i.Ir.operands.(0))
                    | _ -> false
                  in
                  if hoistable then begin
                    let ph = Lazy.force ph in
                    Ir.remove_instr i;
                    (* re-register: remove_instr dropped operand uses *)
                    Ir.register_operand_uses i;
                    let term = Option.get (Ir.terminator ph) in
                    Ir.insert_before ph ~before:term i;
                    incr hoisted;
                    changed := true
                  end)
                (List.filter (fun _ -> true) b.Ir.instrs))
            l.Analysis.Loops.body
        done)
      loops.Analysis.Loops.loops;
    !hoisted
  end

let run_module (m : Ir.modl) : int =
  let lt = Vmem.Layout.for_module m in
  List.fold_left (fun n f -> n + run_function ~lt f) 0 m.Ir.funcs
