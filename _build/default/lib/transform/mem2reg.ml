(* Promote stack allocations to SSA virtual registers (the classic
   mem2reg pass): the front-end emits every local variable as an alloca
   plus loads/stores (exactly as the paper's Fig. 2 does for V), and this
   pass rebuilds the pruned SSA form using iterated dominance frontiers.

   An alloca is promotable when it allocates a single scalar and every use
   is a direct load or a store *to* it (its address never escapes). *)

open Llva

let is_promotable env (a : Ir.instr) =
  a.Ir.op = Ir.Alloca
  && Array.length a.Ir.operands = 0
  && (match Types.resolve env a.Ir.ity with
     | Types.Pointer elem -> (
         match Types.resolve env elem with
         | t -> Types.is_scalar t
         | exception Types.Unresolved _ -> false)
     | _ -> false)
  && List.for_all
       (fun (u : Ir.use) ->
         match u.Ir.user.Ir.op with
         | Ir.Load -> true
         | Ir.Store -> u.Ir.uidx = 1 (* address operand, not stored value *)
         | _ -> false)
       a.Ir.iuses

let elem_type env (a : Ir.instr) = Types.pointee env a.Ir.ity

let run_function ?(env = Types.empty_env ()) (f : Ir.func) : int =
  if Ir.is_declaration f then 0
  else begin
    let cfg = Analysis.Cfg.build f in
    let dom = Analysis.Dominance.compute cfg in
    let block_reachable (i : Ir.instr) =
      match i.Ir.iparent with
      | Some b -> Analysis.Cfg.is_reachable cfg b
      | None -> false
    in
    let allocas =
      Ir.fold_instrs
        (fun acc i ->
          (* only promote when the alloca and all its users are reachable;
             SimplifyCFG removes unreachable code beforehand *)
          if
            is_promotable env i && block_reachable i
            && List.for_all (fun (u : Ir.use) -> block_reachable u.Ir.user) i.Ir.iuses
          then i :: acc
          else acc)
        [] f
      |> List.rev
    in
    if allocas = [] then 0
    else begin
      let promoted = List.length allocas in
      (* phi placement at iterated dominance frontiers of store blocks *)
      let phi_for : (int * int, Ir.instr) Hashtbl.t = Hashtbl.create 32 in
      (* key: (alloca id, block id) -> phi *)
      List.iter
        (fun (a : Ir.instr) ->
          let ty = elem_type env a in
          let def_blocks =
            List.filter_map
              (fun (u : Ir.use) ->
                if u.Ir.user.Ir.op = Ir.Store then u.Ir.user.Ir.iparent
                else None)
              a.Ir.iuses
          in
          let work = Queue.create () in
          List.iter
            (fun b ->
              if Analysis.Cfg.is_reachable cfg b then Queue.add b work)
            def_blocks;
          let placed = Hashtbl.create 8 in
          while not (Queue.is_empty work) do
            let b = Queue.pop work in
            List.iter
              (fun (fb : Ir.block) ->
                if not (Hashtbl.mem placed fb.Ir.blid) then begin
                  Hashtbl.replace placed fb.Ir.blid ();
                  let phi =
                    Ir.mk_instr ~name:(a.Ir.iname ^ ".phi") Ir.Phi [||] ty
                  in
                  Ir.prepend_instr fb phi;
                  Hashtbl.replace phi_for (a.Ir.iid, fb.Ir.blid) phi;
                  Queue.add fb work
                end)
              (Analysis.Dominance.frontier_blocks dom b)
          done)
        allocas;
      (* renaming walk over the dominator tree *)
      let alloca_ids = List.map (fun a -> a.Ir.iid) allocas in
      let is_alloca_ptr v =
        match v with
        | Ir.Vreg i when List.mem i.Ir.iid alloca_ids -> Some i
        | _ -> None
      in
      let rec rename (b : Ir.block) (incoming : (int * Ir.value) list) =
        let current = ref incoming in
        let get aid =
          match List.assoc_opt aid !current with
          | Some v -> v
          | None ->
              (* no store on this path yet: undef *)
              let a = List.find (fun x -> x.Ir.iid = aid) allocas in
              Ir.Vundef (elem_type env a)
        in
        let setv aid v = current := (aid, v) :: List.remove_assoc aid !current in
        (* phis placed in this block define new current values *)
        List.iter
          (fun (a : Ir.instr) ->
            match Hashtbl.find_opt phi_for (a.Ir.iid, b.Ir.blid) with
            | Some phi -> setv a.Ir.iid (Ir.Vreg phi)
            | None -> ())
          allocas;
        (* walk the instructions *)
        List.iter
          (fun (i : Ir.instr) ->
            match i.Ir.op with
            | Ir.Load -> (
                match is_alloca_ptr i.Ir.operands.(0) with
                | Some a ->
                    Ir.replace_all_uses_with (Ir.Vreg i) (get a.Ir.iid);
                    Ir.remove_instr i
                | None -> ())
            | Ir.Store -> (
                match is_alloca_ptr i.Ir.operands.(1) with
                | Some a ->
                    setv a.Ir.iid i.Ir.operands.(0);
                    Ir.remove_instr i
                | None -> ())
            | _ -> ())
          (List.filter (fun x -> x.Ir.op = Ir.Load || x.Ir.op = Ir.Store)
             b.Ir.instrs);
        (* feed successor phis *)
        List.iter
          (fun (succ : Ir.block) ->
            List.iter
              (fun (a : Ir.instr) ->
                match Hashtbl.find_opt phi_for (a.Ir.iid, succ.Ir.blid) with
                | Some phi ->
                    let pairs = Ir.phi_incoming phi in
                    Ir.phi_set_incoming phi (pairs @ [ (get a.Ir.iid, b) ])
                | None -> ())
              allocas)
          (Ir.successors b);
        (* recurse into dominator-tree children with the current state *)
        List.iter
          (fun child -> rename child !current)
          (Analysis.Dominance.children_blocks dom b)
      in
      rename (Ir.entry_block f) [];
      (* the allocas themselves are now dead *)
      List.iter (fun a -> Ir.remove_instr a) allocas;
      (* prune trivial phis: a phi whose incomings are all the same value
         (or itself) collapses to that value *)
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun (b : Ir.block) ->
            List.iter
              (fun phi ->
                let incoming = Ir.phi_incoming phi in
                let distinct =
                  List.filter
                    (fun (v, _) -> not (Ir.value_equal v (Ir.Vreg phi)))
                    incoming
                in
                match distinct with
                | (v, _) :: rest
                  when List.for_all (fun (w, _) -> Ir.value_equal w v) rest ->
                    Ir.replace_all_uses_with (Ir.Vreg phi) v;
                    Ir.remove_instr phi;
                    changed := true
                | _ -> ())
              (Ir.block_phis b))
          f.Ir.fblocks
      done;
      promoted
    end
  end

let run_module (m : Ir.modl) : int =
  let env = Ir.type_env m in
  List.fold_left (fun n f -> n + run_function ~env f) 0 m.Ir.funcs
