(* CFG cleanup:
   - fold constant conditional branches and mbrs to unconditional branches
   - delete unreachable blocks
   - merge a block into its unique predecessor when that predecessor has a
     single successor
   - thread branches through empty forwarding blocks
   Returns the number of simplifications applied. *)

open Llva

let count = ref 0

let replace_terminator (b : Ir.block) (target : Ir.block) =
  (match Ir.terminator b with
  | Some t ->
      (* remove phi entries in successors we no longer branch to *)
      List.iter
        (fun succ -> if not (succ == target) then Ir.phi_remove_pred succ b)
        (List.sort_uniq compare (Ir.successors b));
      Ir.remove_instr t
  | None -> ());
  Ir.append_instr b (Ir.mk_instr Ir.Br [| Ir.Vblock target |] Types.Void);
  incr count

let fold_constant_branches (f : Ir.func) =
  List.iter
    (fun (b : Ir.block) ->
      match Ir.terminator b with
      | Some t -> (
          match Constfold.fold_terminator t with
          | Some target when List.length (Ir.successors b) > 1 ->
              replace_terminator b target
          | _ -> ())
      | None -> ())
    f.Ir.fblocks

let remove_unreachable (f : Ir.func) =
  let dead = Analysis.Cfg.unreachable_blocks f in
  List.iter
    (fun (b : Ir.block) ->
      (* drop phi entries in successors first *)
      List.iter
        (fun succ -> Ir.phi_remove_pred succ b)
        (List.sort_uniq compare (Ir.successors b));
      (* clear operand uses so nothing dangles *)
      List.iter
        (fun i -> if i.Ir.iuses <> [] then
            Ir.replace_all_uses_with (Ir.Vreg i) (Ir.Vundef i.Ir.ity))
        b.Ir.instrs;
      Ir.remove_block b;
      incr count)
    dead

(* Merge [b] into its unique predecessor [p] when p's only successor is b
   and b has no phis (or its phis are trivially resolvable). *)
let merge_blocks (f : Ir.func) =
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (b : Ir.block) ->
        if not (b == Ir.entry_block f) then
          match Ir.predecessors b with
          | [ p ]
            when (not (p == b))
                 && (match Ir.successors p with [ s ] -> s == b | _ -> false)
            ->
              (* resolve phis: single predecessor means each phi has
                 exactly one incoming value *)
              List.iter
                (fun phi ->
                  match Ir.phi_value_for_block phi p with
                  | Some v ->
                      Ir.replace_all_uses_with (Ir.Vreg phi) v;
                      Ir.remove_instr phi
                  | None -> ())
                (Ir.block_phis b);
              (* move instructions; drop p's terminator *)
              (match Ir.terminator p with
              | Some t -> Ir.remove_instr t
              | None -> ());
              let moved = b.Ir.instrs in
              b.Ir.instrs <- [];
              List.iter
                (fun i ->
                  i.Ir.iparent <- Some p;
                  p.Ir.instrs <- p.Ir.instrs @ [ i ])
                moved;
              (* successors' phis must now name p instead of b *)
              List.iter
                (fun succ -> Ir.phi_replace_pred succ ~old_pred:b ~new_pred:p)
                (List.sort_uniq compare (Ir.successors p));
              (* label uses of b (if any remain) now mean p *)
              if b.Ir.buses <> [] then
                Ir.replace_all_uses_with (Ir.Vblock b) (Ir.Vblock p);
              Ir.remove_block b;
              incr count;
              changed := true
          | _ -> ())
      f.Ir.fblocks
  done

(* An empty block containing only "br label %target" can be bypassed,
   provided retargeting does not create conflicting phi edges. *)
let thread_forwarding (f : Ir.func) =
  List.iter
    (fun (b : Ir.block) ->
      if not (b == Ir.entry_block f) then
        match b.Ir.instrs with
        | [ { Ir.op = Ir.Br; operands = [| Ir.Vblock target |]; _ } ]
          when not (target == b) ->
            let preds = Ir.predecessors b in
            (* safe when the target has no phis, or no pred of b is already
               a pred of target *)
            let target_preds = Ir.predecessors target in
            let conflict =
              Ir.block_phis target <> []
              && List.exists
                   (fun p -> List.exists (fun q -> q == p) target_preds)
                   preds
            in
            if (not conflict) && preds <> [] then begin
              (* each pred's terminator operand b becomes target *)
              List.iter
                (fun (p : Ir.block) ->
                  match Ir.terminator p with
                  | Some t ->
                      Array.iteri
                        (fun k v ->
                          match v with
                          | Ir.Vblock x when x == b ->
                              Ir.set_operand t k (Ir.Vblock target)
                          | _ -> ())
                        t.Ir.operands
                  | None -> ())
                preds;
              (* phis in target that named b now receive from each pred *)
              List.iter
                (fun phi ->
                  match Ir.phi_value_for_block phi b with
                  | Some v ->
                      let pairs =
                        List.filter (fun (_, blk) -> not (blk == b))
                          (Ir.phi_incoming phi)
                        @ List.map (fun p -> (v, p)) preds
                      in
                      Ir.phi_set_incoming phi pairs
                  | None -> ())
                (Ir.block_phis target);
              incr count
            end
        | _ -> ())
    f.Ir.fblocks;
  (* blocks made unreachable by threading are removed on the next sweep *)
  remove_unreachable f

let run_function (f : Ir.func) : int =
  if Ir.is_declaration f then 0
  else begin
    count := 0;
    fold_constant_branches f;
    remove_unreachable f;
    thread_forwarding f;
    merge_blocks f;
    !count
  end

let run_module (m : Ir.modl) : int =
  List.fold_left (fun n f -> n + run_function f) 0 m.Ir.funcs
