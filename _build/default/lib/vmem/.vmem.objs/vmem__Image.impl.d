lib/vmem/image.ml: Char Eval Hashtbl Int64 Ir Layout List Llva Memory String Types
