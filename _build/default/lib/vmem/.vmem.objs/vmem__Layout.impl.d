lib/vmem/layout.ml: Int64 Ir List Llva Target Types
