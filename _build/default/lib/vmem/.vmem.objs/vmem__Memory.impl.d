lib/vmem/memory.ml: Bytes Char Eval Hashtbl Int32 Int64 Ir List Llva Target Types
