lib/vmem/runtime.ml: Buffer Char Eval Int64 List Llva Memory Printf String Types
