(* Loading a module's global data into simulated memory: assigns every
   global an address, writes initializers (resolving cross-references), and
   gives every function a code address so function pointers are real,
   comparable scalar values. *)

open Llva

type t = {
  layout : Layout.t;
  mem : Memory.t;
  global_addrs : (string, int64) Hashtbl.t;
  func_addrs : (string, int64) Hashtbl.t;
  funcs_by_addr : (int64, Ir.func) Hashtbl.t;
}

(* Function descriptors live in their own region below the heap; they are
   not executable bytes, just unique addresses. *)
let func_region_base = 0x00F0_0000L

let symbol_address img name =
  match Hashtbl.find_opt img.global_addrs name with
  | Some a -> Some a
  | None -> Hashtbl.find_opt img.func_addrs name

let func_at img addr = Hashtbl.find_opt img.funcs_by_addr addr

let rec write_const img addr (c : Ir.const) =
  let lt = img.layout in
  match c.Ir.ckind with
  | Ir.Cbool _ | Ir.Cint _ | Ir.Cfloat _ ->
      let v =
        match c.Ir.ckind with
        | Ir.Cbool b -> Eval.B b
        | Ir.Cint x -> Eval.I (c.Ir.cty, x)
        | Ir.Cfloat x -> Eval.F (c.Ir.cty, x)
        | _ -> assert false
      in
      Memory.write_scalar img.mem c.Ir.cty addr v
  | Ir.Cnull -> Memory.write_scalar img.mem c.Ir.cty addr (Eval.P 0L)
  | Ir.Czero -> () (* fresh pages are zeroed *)
  | Ir.Cstring s ->
      String.iteri
        (fun k ch ->
          Memory.write_u8 img.mem
            (Int64.add addr (Int64.of_int k))
            (Char.code ch))
        s
      (* trailing NUL is already zero *)
  | Ir.Carray elems ->
      let elem_ty =
        match Types.resolve lt.Layout.env c.Ir.cty with
        | Types.Array (_, e) -> e
        | _ -> (
            match elems with
            | e :: _ -> e.Ir.cty
            | [] -> Types.Ubyte)
      in
      let esz = Layout.size_of lt elem_ty in
      List.iteri
        (fun k e -> write_const img (Int64.add addr (Int64.of_int (k * esz))) e)
        elems
  | Ir.Cstruct elems ->
      let fields =
        match Types.resolve lt.Layout.env c.Ir.cty with
        | Types.Struct fs -> fs
        | _ -> List.map (fun e -> e.Ir.cty) elems
      in
      List.iteri
        (fun k e ->
          let off = Layout.field_offset lt fields k in
          write_const img (Int64.add addr (Int64.of_int off)) e)
        elems
  | Ir.Cglobal_ref name -> (
      match symbol_address img name with
      | Some target -> Memory.write_scalar img.mem c.Ir.cty addr (Eval.P target)
      | None -> invalid_arg ("Image: unresolved symbol in initializer: " ^ name))

let load (m : Ir.modl) : t =
  let layout = Layout.for_module m in
  let mem = Memory.create m.Ir.target in
  let img =
    {
      layout;
      mem;
      global_addrs = Hashtbl.create 64;
      func_addrs = Hashtbl.create 64;
      funcs_by_addr = Hashtbl.create 64;
    }
  in
  (* assign function descriptor addresses *)
  List.iteri
    (fun k f ->
      let addr = Int64.add func_region_base (Int64.of_int (16 * (k + 1))) in
      Hashtbl.replace img.func_addrs f.Ir.fname addr;
      Hashtbl.replace img.funcs_by_addr addr f)
    m.Ir.funcs;
  (* lay out globals *)
  let cursor = Memory.globals_cursor () in
  List.iter
    (fun g ->
      let size = Layout.size_of layout g.Ir.gty in
      let align = Layout.align_of layout g.Ir.gty in
      let addr = Memory.bump cursor ~align size in
      Hashtbl.replace img.global_addrs g.Ir.gname addr)
    m.Ir.globals;
  (* write initializers after all symbols have addresses *)
  List.iter
    (fun g ->
      match g.Ir.ginit with
      | Some init -> (
          match Hashtbl.find_opt img.global_addrs g.Ir.gname with
          | Some addr -> write_const img addr init
          | None -> ())
      | None -> ())
    m.Ir.globals;
  img

let globals_size cursor_next = Int64.sub cursor_next Memory.globals_base
