(* Data layout: how LLVA types map onto bytes for a concrete target
   configuration. This is exactly the knowledge the paper keeps out of the
   V-ISA (§3.2): getelementptr offsets, struct padding, pointer size and
   endianness are all computed here, per target. *)

open Llva

type t = { target : Target.config; env : Types.env }

let create ?(env = Types.empty_env ()) target = { target; env }
let for_module (m : Ir.modl) = { target = m.Ir.target; env = Ir.type_env m }

let rec align_of lt ty =
  match Types.resolve lt.env ty with
  | Types.Void | Types.Label -> 1
  | Types.Bool | Types.Ubyte | Types.Sbyte -> 1
  | Types.Ushort | Types.Short -> 2
  | Types.Uint | Types.Int | Types.Float -> 4
  | Types.Ulong | Types.Long | Types.Double -> 8
  | Types.Pointer _ -> lt.target.Target.ptr_size
  | Types.Array (_, elem) -> align_of lt elem
  | Types.Struct fields ->
      List.fold_left (fun a f -> max a (align_of lt f)) 1 fields
  | Types.Func _ -> lt.target.Target.ptr_size
  | Types.Named _ -> assert false

let round_up v a = (v + a - 1) / a * a

let rec size_of lt ty =
  match Types.resolve lt.env ty with
  | Types.Void | Types.Label -> 0
  | Types.Bool | Types.Ubyte | Types.Sbyte -> 1
  | Types.Ushort | Types.Short -> 2
  | Types.Uint | Types.Int | Types.Float -> 4
  | Types.Ulong | Types.Long | Types.Double -> 8
  | Types.Pointer _ -> lt.target.Target.ptr_size
  | Types.Array (n, elem) -> n * size_of lt elem
  | Types.Struct fields ->
      let off =
        List.fold_left
          (fun off f -> round_up off (align_of lt f) + size_of lt f)
          0 fields
      in
      round_up off (align_of lt (Types.Struct fields))
  | Types.Func _ -> lt.target.Target.ptr_size
  | Types.Named _ -> assert false

(* Byte offset of field [k] within a struct type. *)
let field_offset lt fields k =
  let rec go off idx = function
    | [] -> invalid_arg "Layout.field_offset: index out of range"
    | f :: rest ->
        let off = round_up off (align_of lt f) in
        if idx = k then off else go (off + size_of lt f) (idx + 1) rest
  in
  go 0 0 fields

(* The byte offset a getelementptr adds, given the pointer operand type and
   the index list as (type, int64) pairs. Returns the offset and the
   pointee type of the result. *)
let gep_offset lt ptr_ty indexes =
  let elem = Types.pointee lt.env ptr_ty in
  match indexes with
  | [] -> (0, elem)
  | (_, first) :: rest ->
      let off0 = Int64.to_int first * size_of lt elem in
      let rec walk off ty = function
        | [] -> (off, ty)
        | (_, idx) :: rest -> (
            match Types.resolve lt.env ty with
            | Types.Array (_, e) ->
                walk (off + (Int64.to_int idx * size_of lt e)) e rest
            | Types.Struct fields ->
                let k = Int64.to_int idx in
                let fty =
                  match List.nth_opt fields k with
                  | Some f -> f
                  | None -> invalid_arg "Layout.gep_offset: bad field index"
                in
                walk (off + field_offset lt fields k) fty rest
            | t ->
                invalid_arg
                  ("Layout.gep_offset: cannot index into " ^ Types.to_string t))
      in
      walk off0 elem rest
