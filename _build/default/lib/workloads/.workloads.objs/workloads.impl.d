lib/workloads/workloads.ml: List Minic String W_ammp W_anagram W_art W_bc W_bzip2 W_crafty W_equake W_ft W_gap W_gzip W_ks W_mcf W_parser W_twolf W_vortex W_vpr W_yacr2
