lib/workloads/w_ammp.ml:
