lib/workloads/w_anagram.ml:
