lib/workloads/w_art.ml:
