lib/workloads/w_bc.ml:
