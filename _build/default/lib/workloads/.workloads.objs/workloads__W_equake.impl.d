lib/workloads/w_equake.ml:
