lib/workloads/w_ft.ml:
