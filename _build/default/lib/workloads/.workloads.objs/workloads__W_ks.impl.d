lib/workloads/w_ks.ml:
