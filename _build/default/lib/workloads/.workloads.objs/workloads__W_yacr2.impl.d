lib/workloads/w_yacr2.ml:
