(* 188.ammp: molecular dynamics — n-body step with pairwise short-range
   forces (Lennard-Jones-ish) and velocity-Verlet integration, ammp's
   dominant float kernel. *)

let source =
  {|
/* ammp: n-body molecular dynamics with cutoff */
enum { ATOMS = 56, STEPS = 12 };

unsigned seed = 1618u;
unsigned rnd() {
  seed = seed * 1103515245u + 12345u;
  return (seed >> 16) & 32767u;
}
double frand() { return (double)(int)rnd() / 32768.0; }

double px[ATOMS]; double py[ATOMS]; double pz[ATOMS];
double vx[ATOMS]; double vy[ATOMS]; double vz[ATOMS];
double fx[ATOMS]; double fy[ATOMS]; double fz[ATOMS];

double cutoff2 = 6.25;

void forces() {
  int i, j;
  for (i = 0; i < ATOMS; i++) { fx[i] = 0.0; fy[i] = 0.0; fz[i] = 0.0; }
  for (i = 0; i < ATOMS; i++) {
    for (j = i + 1; j < ATOMS; j++) {
      double dx = px[i] - px[j];
      double dy = py[i] - py[j];
      double dz = pz[i] - pz[j];
      double r2 = dx * dx + dy * dy + dz * dz + 0.01;
      if (r2 < cutoff2) {
        double inv2 = 1.0 / r2;
        double inv6 = inv2 * inv2 * inv2;
        double mag = 24.0 * inv6 * (2.0 * inv6 - 1.0) * inv2;
        fx[i] += mag * dx; fy[i] += mag * dy; fz[i] += mag * dz;
        fx[j] -= mag * dx; fy[j] -= mag * dy; fz[j] -= mag * dz;
      }
    }
  }
}

int main() {
  int i, s;
  double dt = 0.002;
  double ke = 0.0, momx = 0.0;

  /* lattice-ish start with jitter */
  for (i = 0; i < ATOMS; i++) {
    px[i] = (double)(i % 4) * 1.2 + 0.1 * frand();
    py[i] = (double)((i / 4) % 4) * 1.2 + 0.1 * frand();
    pz[i] = (double)(i / 16) * 1.2 + 0.1 * frand();
    vx[i] = frand() - 0.5;
    vy[i] = frand() - 0.5;
    vz[i] = frand() - 0.5;
  }

  forces();
  for (s = 0; s < STEPS; s++) {
    for (i = 0; i < ATOMS; i++) {
      vx[i] += 0.5 * dt * fx[i];
      vy[i] += 0.5 * dt * fy[i];
      vz[i] += 0.5 * dt * fz[i];
      px[i] += dt * vx[i];
      py[i] += dt * vy[i];
      pz[i] += dt * vz[i];
    }
    forces();
    for (i = 0; i < ATOMS; i++) {
      vx[i] += 0.5 * dt * fx[i];
      vy[i] += 0.5 * dt * fy[i];
      vz[i] += 0.5 * dt * fz[i];
    }
  }

  for (i = 0; i < ATOMS; i++) {
    ke += vx[i] * vx[i] + vy[i] * vy[i] + vz[i] * vz[i];
    momx += vx[i];
  }

  print_str("ammp ke=");
  print_float(ke);
  print_str(" momx=");
  print_float(momx);
  print_str(" probe=");
  print_float(px[ATOMS / 2]);
  print_nl();
  return 0;
}
|}
