(* ptrdist-anagram: word-signature hashing and anagram-class search over a
   synthetic dictionary (mirrors the PtrDist anagram benchmark's dominant
   computation: per-word letter signatures + hash-bucket chaining). *)

let source =
  {|
/* anagram: group synthetic words by letter signature */
enum { WORDS = 1400, WLEN = 8, BUCKETS = 512 };

unsigned seed = 12345u;
unsigned rnd() {
  seed = seed * 1103515245u + 12345u;
  return (seed >> 16) & 32767u;
}

typedef struct Word {
  char text[12];
  unsigned sig;       /* multiset signature of letters */
  struct Word *next;  /* hash chain */
} Word;

Word words[WORDS];
Word *buckets[BUCKETS];

/* order-independent signature: product-ish mix of letter counts */
unsigned signature(char *s) {
  int counts[26];
  int i;
  unsigned h = 2166136261u;
  for (i = 0; i < 26; i++) counts[i] = 0;
  for (i = 0; s[i]; i++) counts[s[i] - 'a']++;
  for (i = 0; i < 26; i++) {
    h = h ^ (unsigned)counts[i];
    h = h * 16777619u;
  }
  return h;
}

void make_word(char *out, int len) {
  int i;
  for (i = 0; i < len; i++) out[i] = (char)('a' + (int)(rnd() % 26u));
  out[len] = '\0';
}

int main() {
  int i, classes = 0, biggest = 0;
  unsigned checksum = 0u;

  for (i = 0; i < BUCKETS; i++) buckets[i] = 0;

  /* build the dictionary; every 3rd word is a shuffle of the previous
     one so real anagram classes exist */
  for (i = 0; i < WORDS; i++) {
    if (i % 3 == 2) {
      int j;
      for (j = 0; j < WLEN; j++) words[i].text[j] = words[i-1].text[j];
      words[i].text[WLEN] = '\0';
      /* swap two positions */
      {
        int a = (int)(rnd() % (unsigned)WLEN);
        int b = (int)(rnd() % (unsigned)WLEN);
        char t = words[i].text[a];
        words[i].text[a] = words[i].text[b];
        words[i].text[b] = t;
      }
    } else {
      make_word(words[i].text, WLEN);
    }
    words[i].sig = signature(words[i].text);
  }

  /* bucket by signature */
  for (i = 0; i < WORDS; i++) {
    unsigned b = words[i].sig % (unsigned)BUCKETS;
    words[i].next = buckets[b];
    buckets[b] = &words[i];
  }

  /* count anagram classes and the largest class */
  for (i = 0; i < WORDS; i++) {
    Word *w = &words[i];
    Word *scan = buckets[w->sig % (unsigned)BUCKETS];
    int first = 1;
    int size = 0;
    while (scan) {
      if (scan->sig == w->sig) {
        size++;
        if (scan != w && scan < w) first = 0; /* counted earlier */
      }
      scan = scan->next;
    }
    if (first) {
      classes++;
      if (size > biggest) biggest = size;
      checksum = checksum * 31u + w->sig % 1000u;
    }
  }

  print_str("anagram classes=");
  print_int(classes);
  print_str(" biggest=");
  print_int(biggest);
  print_str(" check=");
  print_long((long)(checksum % 1000000u));
  print_nl();
  return 0;
}
|}
