(* 179.art: Adaptive Resonance Theory neural network — float vector
   matching between feature vectors and learned templates (F1/F2 layers),
   the dominant kernel of SPEC's art. *)

let source =
  {|
/* art: ART-1-ish neural recognition over float features */
enum { FEATURES = 48, TEMPLATES = 14, SAMPLES = 48, EPOCHS = 2 };

unsigned seed = 9091u;
unsigned rnd() {
  seed = seed * 1103515245u + 12345u;
  return (seed >> 16) & 32767u;
}
double frand() { return (double)(int)rnd() / 32768.0; }

double templates[TEMPLATES][FEATURES];
double sample[FEATURES];

int main() {
  int t, f, s, e;
  int matches[TEMPLATES];
  double vigilance = 0.58;
  int total_matched = 0, resets = 0;
  double score_sum = 0.0;

  for (t = 0; t < TEMPLATES; t++) {
    matches[t] = 0;
    for (f = 0; f < FEATURES; f++) templates[t][f] = frand();
  }

  for (e = 0; e < EPOCHS; e++) {
    /* restart the sample stream deterministically per epoch */
    seed = 5555u;
    for (s = 0; s < SAMPLES; s++) {
      int best = -1, accepted = 0, tries = 0;
      double bestact = -1.0;
      for (f = 0; f < FEATURES; f++) sample[f] = frand();

      while (!accepted && tries < TEMPLATES) {
        /* F2 activation: dot product, skipping reset templates */
        bestact = -1.0;
        best = -1;
        for (t = 0; t < TEMPLATES; t++) {
          double act = 0.0;
          double norm = 0.0;
          if (matches[t] < 0) continue; /* reset this presentation */
          for (f = 0; f < FEATURES; f++) {
            act += templates[t][f] * sample[f];
            norm += templates[t][f];
          }
          act = act / (0.5 + norm);
          if (act > bestact) { bestact = act; best = t; }
        }
        if (best < 0) break;
        /* vigilance test */
        {
          double match = 0.0, snorm = 0.0;
          for (f = 0; f < FEATURES; f++) {
            double m = templates[best][f] < sample[f]
                         ? templates[best][f] : sample[f];
            match += m;
            snorm += sample[f];
          }
          if (match / (snorm + 0.0001) >= vigilance) {
            /* resonance: learn */
            for (f = 0; f < FEATURES; f++)
              templates[best][f] =
                0.7 * templates[best][f] +
                0.3 * (templates[best][f] < sample[f]
                         ? templates[best][f] : sample[f]);
            matches[best] = -matches[best] < 0 ? matches[best] + 1 : matches[best] + 1;
            accepted = 1;
            total_matched++;
            score_sum += bestact;
          } else {
            matches[best] = -(matches[best] + 1); /* mark reset */
            resets++;
          }
        }
        tries++;
      }
      /* clear reset marks */
      for (t = 0; t < TEMPLATES; t++)
        if (matches[t] < 0) matches[t] = -matches[t] - 1;
    }
  }

  print_str("art matched=");
  print_int(total_matched);
  print_str(" resets=");
  print_int(resets);
  print_str(" score=");
  print_float(score_sum);
  print_nl();
  return 0;
}
|}
