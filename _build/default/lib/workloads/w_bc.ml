(* ptrdist-bc: arbitrary-precision calculator loop — bignum digit arrays
   with add/sub/mul/divmod, computing factorials and a Fibonacci tower,
   mirroring bc's numeric core. *)

let source =
  {|
/* bc: arbitrary precision decimal arithmetic */
enum { DIGITS = 256 };

typedef struct Big {
  int d[DIGITS];  /* base-10000 limbs, little-endian */
  int n;          /* used limbs */
} Big;

void big_set(Big *x, int v) {
  int i;
  for (i = 0; i < DIGITS; i++) x->d[i] = 0;
  x->n = 0;
  while (v > 0) { x->d[x->n] = v % 10000; v /= 10000; x->n++; }
  if (x->n == 0) x->n = 1;
}

void big_copy(Big *dst, Big *src) {
  int i;
  for (i = 0; i < DIGITS; i++) dst->d[i] = src->d[i];
  dst->n = src->n;
}

void big_add(Big *out, Big *a, Big *b) {
  int i, carry = 0;
  int n = a->n > b->n ? a->n : b->n;
  for (i = 0; i < n || carry; i++) {
    int s = carry;
    if (i < a->n) s += a->d[i];
    if (i < b->n) s += b->d[i];
    out->d[i] = s % 10000;
    carry = s / 10000;
  }
  out->n = i > 0 ? i : 1;
  for (i = out->n; i < DIGITS; i++) out->d[i] = 0;
}

void big_mul_small(Big *out, Big *a, int m) {
  int i, carry = 0;
  for (i = 0; i < a->n || carry; i++) {
    int p = carry;
    if (i < a->n) p += a->d[i] * m;
    out->d[i] = p % 10000;
    carry = p / 10000;
  }
  out->n = i > 0 ? i : 1;
  for (i = out->n; i < DIGITS; i++) out->d[i] = 0;
}

int big_mod_small(Big *a, int m) {
  int i;
  long r = 0;
  for (i = a->n - 1; i >= 0; i--) r = (r * 10000 + (long)a->d[i]) % (long)m;
  return (int)r;
}

int big_digitsum(Big *a) {
  int i, s = 0;
  for (i = 0; i < a->n; i++) {
    int limb = a->d[i];
    while (limb > 0) { s += limb % 10; limb /= 10; }
  }
  return s;
}

Big f, t, fib_a, fib_b, fib_t;

int main() {
  int i;

  /* 150! */
  big_set(&f, 1);
  for (i = 2; i <= 150; i++) {
    big_mul_small(&t, &f, i);
    big_copy(&f, &t);
  }
  print_str("bc 150!%9973=");
  print_int(big_mod_small(&f, 9973));
  print_str(" digitsum=");
  print_int(big_digitsum(&f));

  /* fib(900) by bignum addition */
  big_set(&fib_a, 0);
  big_set(&fib_b, 1);
  for (i = 0; i < 900; i++) {
    big_add(&fib_t, &fib_a, &fib_b);
    big_copy(&fib_a, &fib_b);
    big_copy(&fib_b, &fib_t);
  }
  print_str(" fib900%9973=");
  print_int(big_mod_small(&fib_b, 9973));
  print_nl();
  return 0;
}
|}
