(* 256.bzip2: block coder — move-to-front transform + run-length encoding
   over deterministic text, then the inverse, with verification (bzip2's
   MTF/RLE stages without the BWT sort). *)

let source =
  {|
/* bzip2: move-to-front + RLE block coding with roundtrip check */
enum { BLOCK = 4096, OUTMAX = 12288 };

unsigned seed = 1357u;
unsigned rnd() {
  seed = seed * 1103515245u + 12345u;
  return (seed >> 16) & 32767u;
}

unsigned char input[BLOCK];
unsigned char mtf_out[BLOCK];
unsigned char rle_out[OUTMAX];
unsigned char rle_dec[BLOCK];
unsigned char mtf_dec[BLOCK];
unsigned char table[256];
int rle_len = 0;

void mtf_encode() {
  int i, j;
  for (i = 0; i < 256; i++) table[i] = (unsigned char)i;
  for (i = 0; i < BLOCK; i++) {
    unsigned char c = input[i];
    int pos = 0;
    while (table[pos] != c) pos++;
    mtf_out[i] = (unsigned char)pos;
    for (j = pos; j > 0; j--) table[j] = table[j - 1];
    table[0] = c;
  }
}

void mtf_decode() {
  int i, j;
  for (i = 0; i < 256; i++) table[i] = (unsigned char)i;
  for (i = 0; i < BLOCK; i++) {
    int pos = (int)mtf_dec[i];
    unsigned char c = table[pos];
    rle_dec[i] = c; /* reuse buffer as final output */
    for (j = pos; j > 0; j--) table[j] = table[j - 1];
    table[0] = c;
  }
}

void rle_encode() {
  int i = 0;
  rle_len = 0;
  while (i < BLOCK) {
    unsigned char c = mtf_out[i];
    int run = 1;
    while (i + run < BLOCK && mtf_out[i + run] == c && run < 255) run++;
    if (run >= 4 || c == 0xFF) {
      rle_out[rle_len] = 0xFF;
      rle_out[rle_len + 1] = c;
      rle_out[rle_len + 2] = (unsigned char)run;
      rle_len += 3;
      i += run;
    } else {
      rle_out[rle_len] = c;
      rle_len++;
      i++;
    }
  }
}

int rle_decode() {
  int i = 0, o = 0;
  while (i < rle_len && o < BLOCK) {
    if (rle_out[i] == 0xFF) {
      unsigned char c = rle_out[i + 1];
      int run = (int)rle_out[i + 2];
      int k;
      for (k = 0; k < run && o < BLOCK; k++) mtf_dec[o++] = c;
      i += 3;
    } else {
      mtf_dec[o++] = rle_out[i++];
    }
  }
  return o;
}

int main() {
  int i, decoded, errors = 0;
  unsigned check = 0u;

  /* skewed text: long runs + common letters, MTF-friendly */
  for (i = 0; i < BLOCK; i++) {
    unsigned r = rnd();
    if (r % 5u == 0u) {
      /* run of a single character */
      int run = 2 + (int)(rnd() % 30u);
      unsigned char c = (unsigned char)('a' + (int)(rnd() % 6u));
      while (run-- > 0 && i < BLOCK) input[i++] = c;
      i--;
    } else {
      input[i] = (unsigned char)('a' + (int)(r % 26u));
    }
  }

  mtf_encode();
  rle_encode();
  decoded = rle_decode();
  mtf_decode();

  for (i = 0; i < BLOCK; i++)
    if (rle_dec[i] != input[i]) errors++;
  for (i = 0; i < rle_len; i++) check = check * 31u + (unsigned)rle_out[i];

  print_str("bzip2 in=");
  print_int(BLOCK);
  print_str(" out=");
  print_int(rle_len);
  print_str(" decoded=");
  print_int(decoded);
  print_str(" errors=");
  print_int(errors);
  print_str(" check=");
  print_long((long)(check % 1000000u));
  print_nl();
  return errors;
}
|}
