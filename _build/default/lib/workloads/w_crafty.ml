(* 186.crafty: chess bitboards — 64-bit popcount, king/knight attack set
   generation, and a perft-style mobility accumulation over random
   positions, crafty's characteristic 64-bit bit-twiddling. *)

let source =
  {|
/* crafty: bitboard attack generation with 64-bit ops */
enum { POSITIONS = 300, PIECES = 12 };

unsigned seed = 7777u;
unsigned rnd() {
  seed = seed * 1103515245u + 12345u;
  return (seed >> 16) & 32767u;
}

long knight_attacks[64];
long king_attacks[64];

int popcount(unsigned long b) {
  int c = 0;
  while (b) {
    b &= b - 1ul;
    c++;
  }
  return c;
}

void init_tables() {
  int sq;
  for (sq = 0; sq < 64; sq++) {
    int r = sq / 8, f = sq % 8;
    long kn = 0l, kg = 0l;
    int dr, df;
    for (dr = -2; dr <= 2; dr++) {
      for (df = -2; df <= 2; df++) {
        int ar = r + dr, af = f + df;
        if (ar < 0 || ar > 7 || af < 0 || af > 7) continue;
        if (dr * dr + df * df == 5)
          kn |= 1l << (ar * 8 + af);
        if (dr >= -1 && dr <= 1 && df >= -1 && df <= 1 && (dr != 0 || df != 0))
          kg |= 1l << (ar * 8 + af);
      }
    }
    knight_attacks[sq] = kn;
    king_attacks[sq] = kg;
  }
}

/* rook rays with blockers (classical loop generation) */
long rook_attacks(int sq, unsigned long occ) {
  long a = 0l;
  int r = sq / 8, f = sq % 8, i;
  for (i = r + 1; i <= 7; i++) { a |= 1l << (i * 8 + f); if (occ >> (unsigned long)(i * 8 + f) & 1ul) break; }
  for (i = r - 1; i >= 0; i--) { a |= 1l << (i * 8 + f); if (occ >> (unsigned long)(i * 8 + f) & 1ul) break; }
  for (i = f + 1; i <= 7; i++) { a |= 1l << (r * 8 + i); if (occ >> (unsigned long)(r * 8 + i) & 1ul) break; }
  for (i = f - 1; i >= 0; i--) { a |= 1l << (r * 8 + i); if (occ >> (unsigned long)(r * 8 + i) & 1ul) break; }
  return a;
}

int main() {
  int p, i;
  long mobility = 0;
  unsigned long hash = 0xcbf29ce484222325ul;

  init_tables();

  for (p = 0; p < POSITIONS; p++) {
    unsigned long occ = 0ul;
    int squares[PIECES];
    /* random position *)
     */
    for (i = 0; i < PIECES; i++) {
      int sq = (int)(rnd() % 64u);
      squares[i] = sq;
      occ |= 1ul << (unsigned long)sq;
    }
    /* mobility: knights, kings, rooks on the first squares */
    for (i = 0; i < PIECES; i++) {
      int sq = squares[i];
      if (i % 3 == 0)
        mobility += (long)popcount((unsigned long)knight_attacks[sq] & ~occ);
      else if (i % 3 == 1)
        mobility += (long)popcount((unsigned long)king_attacks[sq] & ~occ);
      else
        mobility += (long)popcount((unsigned long)rook_attacks(sq, occ) & ~occ);
    }
    hash = (hash ^ occ) * 1099511628211ul;
  }

  print_str("crafty mobility=");
  print_long(mobility);
  print_str(" hash=");
  print_long((long)(hash % 1000000007ul));
  print_nl();
  return 0;
}
|}
