(* 183.equake: sparse matrix–vector products in a time-stepping loop, the
   dominant kernel of the earthquake simulation (CSR SpMV + vector
   updates). *)

let source =
  {|
/* equake: CSR sparse matrix-vector time stepping */
enum { N = 360, NNZ_PER = 7, STEPS = 24 };
enum { NNZ_MAX = 2520 }; /* N * NNZ_PER */

unsigned seed = 4242u;
unsigned rnd() {
  seed = seed * 1103515245u + 12345u;
  return (seed >> 16) & 32767u;
}
double frand() { return (double)(int)rnd() / 32768.0; }

int row_start[361]; /* N + 1 */
int col[NNZ_MAX];
double val[NNZ_MAX];
double disp[N];
double vel[N];
double force[N];

void spmv(double *out, double *x) {
  int i, k;
  for (i = 0; i < N; i++) {
    double acc = 0.0;
    for (k = row_start[i]; k < row_start[i + 1]; k++)
      acc += val[k] * x[col[k]];
    out[i] = acc;
  }
}

int main() {
  int i, k, s;
  double dt = 0.01;
  double energy = 0.0;

  /* build a banded sparse matrix */
  k = 0;
  for (i = 0; i < N; i++) {
    int j;
    row_start[i] = k;
    for (j = 0; j < NNZ_PER; j++) {
      int c = i + j - NNZ_PER / 2;
      if (c < 0) c += N;
      if (c >= N) c -= N;
      col[k] = c;
      val[k] = (c == i) ? 4.0 : -0.4 - 0.2 * frand();
      k++;
    }
  }
  row_start[N] = k;

  for (i = 0; i < N; i++) {
    disp[i] = frand() - 0.5;
    vel[i] = 0.0;
  }

  /* leapfrog-ish integration */
  for (s = 0; s < STEPS; s++) {
    spmv(force, disp);
    for (i = 0; i < N; i++) {
      vel[i] = 0.98 * (vel[i] - dt * force[i]);
      disp[i] = disp[i] + dt * vel[i];
    }
  }

  for (i = 0; i < N; i++) energy += disp[i] * disp[i] + vel[i] * vel[i];

  print_str("equake energy=");
  print_float(energy);
  print_str(" probe=");
  print_float(disp[N / 2]);
  print_nl();
  return 0;
}
|}
