(* ptrdist-ft: minimum spanning tree over adjacency lists (the PtrDist ft
   benchmark computes an MST with a Fibonacci heap; we use a pointer-built
   adjacency list with Prim's algorithm and a simple priority array,
   preserving the pointer-chasing character). *)

let source =
  {|
/* ft: Prim MST over a pointer-based adjacency list */
enum { V = 420, E_PER = 5, INF = 1000000 };

unsigned seed = 2024u;
unsigned rnd() {
  seed = seed * 1103515245u + 12345u;
  return (seed >> 16) & 32767u;
}

typedef struct Edge {
  int to;
  int weight;
  struct Edge *next;
} Edge;

Edge *adj[V];
int dist[V];
int intree[V];

void add_edge(int a, int b, int wgt) {
  Edge *e = (Edge *) malloc(sizeof(Edge));
  e->to = b;
  e->weight = wgt;
  e->next = adj[a];
  adj[a] = e;
}

int main() {
  int i, k, total = 0, reached = 0;

  for (i = 0; i < V; i++) { adj[i] = 0; dist[i] = INF; intree[i] = 0; }

  /* connected backbone + random extra edges */
  for (i = 1; i < V; i++) {
    int b = (int)(rnd() % (unsigned)i);
    int wgt = 1 + (int)(rnd() % 100u);
    add_edge(i, b, wgt);
    add_edge(b, i, wgt);
  }
  for (i = 0; i < V; i++) {
    for (k = 0; k < E_PER; k++) {
      int b = (int)(rnd() % (unsigned)V);
      int wgt = 1 + (int)(rnd() % 100u);
      if (b != i) { add_edge(i, b, wgt); add_edge(b, i, wgt); }
    }
  }

  /* Prim from node 0 */
  dist[0] = 0;
  for (k = 0; k < V; k++) {
    int best = -1, bestd = INF + 1, u;
    Edge *e;
    for (u = 0; u < V; u++)
      if (!intree[u] && dist[u] < bestd) { bestd = dist[u]; best = u; }
    if (best < 0) break;
    intree[best] = 1;
    reached++;
    total += dist[best];
    for (e = adj[best]; e; e = e->next)
      if (!intree[e->to] && e->weight < dist[e->to]) dist[e->to] = e->weight;
  }

  print_str("ft mst=");
  print_int(total);
  print_str(" reached=");
  print_int(reached);
  print_nl();
  return 0;
}
|}
