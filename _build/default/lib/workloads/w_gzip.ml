(* 164.gzip: LZ77 sliding-window compression with a 3-byte hash chain
   matcher (deflate's longest-match core) plus decompression and a
   round-trip check. *)

let source =
  {|
/* gzip: LZ77 with hash-chain match finder */
enum { INSIZE = 6144, WINDOW = 1024, MINMATCH = 3, MAXMATCH = 66 };
enum { HASHSIZE = 1024, OUTMAX = 16384 };

unsigned seed = 8888u;
unsigned rnd() {
  seed = seed * 1103515245u + 12345u;
  return (seed >> 16) & 32767u;
}

unsigned char input[INSIZE];
unsigned char output[OUTMAX];   /* token stream */
unsigned char decoded[INSIZE];
int head[HASHSIZE];
int prev[INSIZE];
int out_len = 0;

unsigned hash3(int pos) {
  return ((unsigned)input[pos] * 2654435761u
          ^ (unsigned)input[pos + 1] * 40503u
          ^ (unsigned)input[pos + 2]) % (unsigned)HASHSIZE;
}

int main() {
  int i, pos, literals = 0, matches = 0, decoded_len, errors = 0;

  /* compressible text: random phrases repeated */
  {
    unsigned char phrases[16][20];
    int p, k;
    for (p = 0; p < 16; p++)
      for (k = 0; k < 20; k++)
        phrases[p][k] = (unsigned char)('a' + (int)(rnd() % 20u));
    i = 0;
    while (i < INSIZE) {
      int p2 = (int)(rnd() % 16u);
      int len = 5 + (int)(rnd() % 15u);
      for (k = 0; k < len && i < INSIZE; k++) input[i++] = phrases[p2][k];
      if (rnd() % 4u == 0u && i < INSIZE)
        input[i++] = (unsigned char)('0' + (int)(rnd() % 10u));
    }
  }

  for (i = 0; i < HASHSIZE; i++) head[i] = -1;

  /* compress: tokens are (0,lit) or (1,dist_hi,dist_lo,len) */
  pos = 0;
  while (pos < INSIZE) {
    int best_len = 0, best_dist = 0;
    if (pos + MINMATCH <= INSIZE - 1) {
      unsigned h = hash3(pos);
      int cand = head[h];
      int chain = 0;
      while (cand >= 0 && pos - cand <= WINDOW && chain < 16) {
        int len = 0;
        while (len < MAXMATCH && pos + len < INSIZE
               && input[cand + len] == input[pos + len])
          len++;
        if (len > best_len) { best_len = len; best_dist = pos - cand; }
        cand = prev[cand];
        chain++;
      }
    }
    if (best_len >= MINMATCH) {
      output[out_len++] = 1;
      output[out_len++] = (unsigned char)(best_dist >> 8);
      output[out_len++] = (unsigned char)(best_dist & 255);
      output[out_len++] = (unsigned char)best_len;
      matches++;
      /* insert hash entries for the matched span */
      {
        int k;
        for (k = 0; k < best_len && pos + MINMATCH <= INSIZE; k++) {
          if (pos + 2 < INSIZE) {
            unsigned h2 = hash3(pos);
            prev[pos] = head[h2];
            head[h2] = pos;
          }
          pos++;
        }
      }
    } else {
      output[out_len++] = 0;
      output[out_len++] = input[pos];
      literals++;
      if (pos + 2 < INSIZE) {
        unsigned h3 = hash3(pos);
        prev[pos] = head[h3];
        head[h3] = pos;
      }
      pos++;
    }
  }

  /* decompress */
  {
    int ip = 0, op = 0;
    while (ip < out_len && op < INSIZE) {
      if (output[ip] == 0) {
        decoded[op++] = output[ip + 1];
        ip += 2;
      } else {
        int dist = ((int)output[ip + 1] << 8) | (int)output[ip + 2];
        int len = (int)output[ip + 3];
        int k;
        for (k = 0; k < len; k++) { decoded[op] = decoded[op - dist]; op++; }
        ip += 4;
      }
    }
    decoded_len = op;
  }

  for (i = 0; i < INSIZE; i++)
    if (decoded[i] != input[i]) errors++;

  print_str("gzip in=");
  print_int(INSIZE);
  print_str(" out=");
  print_int(out_len);
  print_str(" lits=");
  print_int(literals);
  print_str(" matches=");
  print_int(matches);
  print_str(" declen=");
  print_int(decoded_len);
  print_str(" errors=");
  print_int(errors);
  print_nl();
  return errors;
}
|}
