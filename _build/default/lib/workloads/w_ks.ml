(* ptrdist-ks: Kernighan–Schweikert style graph partitioning — iterative
   improvement by swapping the best node pair across the cut. *)

let source =
  {|
/* ks: graph bipartition by pairwise-swap improvement */
enum { NODES = 64, DEGREE = 6, PASSES = 8 };

unsigned seed = 777u;
unsigned rnd() {
  seed = seed * 1103515245u + 12345u;
  return (seed >> 16) & 32767u;
}

int adj[NODES][DEGREE];   /* neighbor ids */
int w[NODES][DEGREE];     /* edge weights */
int side[NODES];          /* 0 or 1 */

/* cost of node n against the current partition: external - internal */
int gain_of(int n) {
  int g = 0;
  int k;
  for (k = 0; k < DEGREE; k++) {
    int m = adj[n][k];
    if (side[m] != side[n]) g += w[n][k];
    else g -= w[n][k];
  }
  return g;
}

int cut_size() {
  int c = 0;
  int n, k;
  for (n = 0; n < NODES; n++)
    for (k = 0; k < DEGREE; k++)
      if (side[n] != side[adj[n][k]]) c += w[n][k];
  return c / 2;
}

int main() {
  int n, k, pass;
  int initial, final;

  /* random regular-ish graph */
  for (n = 0; n < NODES; n++) {
    side[n] = n & 1;
    for (k = 0; k < DEGREE; k++) {
      adj[n][k] = (int)(rnd() % (unsigned)NODES);
      w[n][k] = 1 + (int)(rnd() % 9u);
    }
  }

  initial = cut_size();

  for (pass = 0; pass < PASSES; pass++) {
    int improved = 0;
    int a;
    for (a = 0; a < NODES; a++) {
      int best_b = -1;
      int best_gain = 0;
      int b;
      if (side[a] != 0) continue;
      for (b = 0; b < NODES; b++) {
        if (side[b] != 1) continue;
        {
          int g = gain_of(a) + gain_of(b);
          /* subtract double-counted edges between a and b */
          int k2;
          for (k2 = 0; k2 < DEGREE; k2++) {
            if (adj[a][k2] == b) g -= 2 * w[a][k2];
            if (adj[b][k2] == a) g -= 2 * w[b][k2];
          }
          if (g > best_gain) { best_gain = g; best_b = b; }
        }
      }
      if (best_b >= 0) {
        side[a] = 1;
        side[best_b] = 0;
        improved = 1;
      }
    }
    if (!improved) break;
  }

  final = cut_size();
  print_str("ks initial=");
  print_int(initial);
  print_str(" final=");
  print_int(final);
  print_str(" ok=");
  print_int(final <= initial ? 1 : 0);
  print_nl();
  return 0;
}
|}
