(* 181.mcf: minimum-cost flow by successive shortest paths with
   Bellman-Ford distances over a layered network — the pointer/array
   traversal pattern of SPEC mcf's network simplex, simplified to SSP. *)

let source =
  {|
/* mcf: successive shortest path min-cost flow */
enum { NODES = 60, EDGES = 480, INF = 100000000 };

unsigned seed = 606u;
unsigned rnd() {
  seed = seed * 1103515245u + 12345u;
  return (seed >> 16) & 32767u;
}

/* arc arrays (forward + residual pairs at 2k, 2k+1) */
int from_[2 * EDGES];
int to_[2 * EDGES];
int cap[2 * EDGES];
int cost[2 * EDGES];
int dist[NODES];
int pred_arc[NODES];

int n_arcs = 0;

void add_arc(int a, int b, int c, int w) {
  from_[n_arcs] = a; to_[n_arcs] = b; cap[n_arcs] = c; cost[n_arcs] = w;
  n_arcs++;
  from_[n_arcs] = b; to_[n_arcs] = a; cap[n_arcs] = 0; cost[n_arcs] = -w;
  n_arcs++;
}

int main() {
  int i, e;
  int src = 0, dst = NODES - 1;
  int total_flow = 0;
  long total_cost = 0;
  int rounds = 0;

  /* layered random network: guarantees s-t paths */
  for (i = 0; i < NODES - 1; i++)
    add_arc(i, i + 1, 3 + (int)(rnd() % 6u), 1 + (int)(rnd() % 20u));
  for (e = 0; e < EDGES - (NODES - 1); e++) {
    int a = (int)(rnd() % (unsigned)(NODES - 1));
    int b = a + 1 + (int)(rnd() % (unsigned)(NODES - a - 1));
    add_arc(a, b, 1 + (int)(rnd() % 5u), 1 + (int)(rnd() % 30u));
  }

  /* successive shortest augmenting paths (Bellman-Ford) */
  while (1) {
    int changed = 1, iter = 0;
    rounds++;
    for (i = 0; i < NODES; i++) { dist[i] = INF; pred_arc[i] = -1; }
    dist[src] = 0;
    while (changed && iter < NODES) {
      changed = 0;
      iter++;
      for (e = 0; e < n_arcs; e++) {
        if (cap[e] > 0 && dist[from_[e]] < INF) {
          int nd = dist[from_[e]] + cost[e];
          if (nd < dist[to_[e]]) {
            dist[to_[e]] = nd;
            pred_arc[to_[e]] = e;
            changed = 1;
          }
        }
      }
    }
    if (dist[dst] >= INF) break;
    /* find bottleneck */
    {
      int bottleneck = INF;
      int v = dst;
      while (v != src) {
        int pe = pred_arc[v];
        if (cap[pe] < bottleneck) bottleneck = cap[pe];
        v = from_[pe];
      }
      /* augment */
      v = dst;
      while (v != src) {
        int pe = pred_arc[v];
        cap[pe] -= bottleneck;
        cap[pe ^ 1] += bottleneck;
        total_cost += (long)bottleneck * (long)cost[pe];
        v = from_[pe];
      }
      total_flow += bottleneck;
    }
  }

  print_str("mcf flow=");
  print_int(total_flow);
  print_str(" cost=");
  print_long(total_cost);
  print_str(" rounds=");
  print_int(rounds);
  print_nl();
  return 0;
}
|}
