(* 197.parser: natural-language-ish parsing — a tokenizer plus a
   recursive-descent grammar checker over generated sentences with a
   word dictionary (link-grammar's dictionary lookup + parse loop,
   simplified to a CFG acceptor). *)

let source =
  {|
/* parser: tokenizer + recursive descent grammar over generated text */
enum { TEXTLEN = 8192, MAXTOK = 2048, DICTSIZE = 64 };

unsigned seed = 24680u;
unsigned rnd() {
  seed = seed * 1103515245u + 12345u;
  return (seed >> 16) & 32767u;
}

/* word classes */
enum { W_NOUN, W_VERB, W_ADJ, W_DET, W_CONJ, W_END, W_UNKNOWN };

char text[TEXTLEN];
int tok_class[MAXTOK];
int n_tokens = 0;

char dict_word[DICTSIZE][12];
int dict_class[DICTSIZE];

/* deterministic nonsense words per class */
void build_dict() {
  int i, k;
  for (i = 0; i < DICTSIZE; i++) {
    int len = 3 + (int)(rnd() % 5u);
    for (k = 0; k < len; k++)
      dict_word[i][k] = (char)('a' + (int)(rnd() % 26u));
    dict_word[i][len] = '\0';
    dict_class[i] = (int)(rnd() % 5u); /* noun..conj */
  }
}

int my_streq(char *a, char *b) {
  while (*a && *a == *b) { a++; b++; }
  return *a == *b;
}

int lookup(char *w) {
  int i;
  for (i = 0; i < DICTSIZE; i++)
    if (my_streq(dict_word[i], w)) return dict_class[i];
  return W_UNKNOWN;
}

/* generate text as sentences: det adj* noun verb det noun [conj ...] . */
int emit_word(int p, int cls) {
  /* pick a dictionary word of the class */
  int tries = 0;
  int i = (int)(rnd() % (unsigned)DICTSIZE);
  while (dict_class[i] != cls && tries < DICTSIZE * 2) {
    i = (i + 1) % DICTSIZE;
    tries++;
  }
  {
    char *w = dict_word[i];
    int k;
    for (k = 0; w[k] && p < TEXTLEN - 2; k++) text[p++] = w[k];
    text[p++] = ' ';
  }
  return p;
}

int gen_text() {
  int p = 0;
  while (p < TEXTLEN - 64) {
    int nadj = (int)(rnd() % 3u);
    int a;
    p = emit_word(p, W_DET);
    for (a = 0; a < nadj; a++) p = emit_word(p, W_ADJ);
    p = emit_word(p, W_NOUN);
    p = emit_word(p, W_VERB);
    p = emit_word(p, W_DET);
    p = emit_word(p, W_NOUN);
    if (rnd() % 3u == 0u) p = emit_word(p, W_CONJ);
    else { text[p++] = '.'; text[p++] = ' '; }
  }
  text[p] = '\0';
  return p;
}

void tokenize() {
  int p = 0;
  char word[16];
  n_tokens = 0;
  while (text[p] && n_tokens < MAXTOK) {
    while (text[p] == ' ') p++;
    if (!text[p]) break;
    if (text[p] == '.') {
      tok_class[n_tokens++] = W_END;
      p++;
    } else {
      int k = 0;
      while (text[p] && text[p] != ' ' && text[p] != '.' && k < 15)
        word[k++] = text[p++];
      word[k] = '\0';
      tok_class[n_tokens++] = lookup(word);
    }
  }
}

/* grammar: S -> NP VP ( (CONJ S) | END )
   NP -> DET ADJ* NOUN ; VP -> VERB NP */
int cursor = 0;

int accept_np() {
  if (cursor < n_tokens && tok_class[cursor] == W_DET) cursor++;
  else return 0;
  while (cursor < n_tokens && tok_class[cursor] == W_ADJ) cursor++;
  if (cursor < n_tokens && tok_class[cursor] == W_NOUN) { cursor++; return 1; }
  return 0;
}

int accept_sentence() {
  if (!accept_np()) return 0;
  if (cursor < n_tokens && tok_class[cursor] == W_VERB) cursor++;
  else return 0;
  if (!accept_np()) return 0;
  if (cursor < n_tokens && tok_class[cursor] == W_CONJ) {
    cursor++;
    return accept_sentence();
  }
  if (cursor < n_tokens && tok_class[cursor] == W_END) { cursor++; return 1; }
  return 0;
}

int main() {
  int chars, ok = 0, bad = 0;

  build_dict();
  chars = gen_text();
  tokenize();

  cursor = 0;
  while (cursor < n_tokens) {
    int start = cursor;
    if (accept_sentence()) ok++;
    else {
      bad++;
      /* resync: skip to after the next END */
      cursor = start;
      while (cursor < n_tokens && tok_class[cursor] != W_END) cursor++;
      if (cursor < n_tokens) cursor++;
    }
  }

  print_str("parser chars=");
  print_int(chars);
  print_str(" tokens=");
  print_int(n_tokens);
  print_str(" ok=");
  print_int(ok);
  print_str(" bad=");
  print_int(bad);
  print_nl();
  return 0;
}
|}
