(* 300.twolf: standard-cell placement annealing with incremental net-cost
   update — like vpr but maintaining per-net cached bounding boxes and
   updating only affected nets (twolf's "new_dbox" incremental update). *)

let source =
  {|
/* twolf: annealing with incremental net cost caching */
enum { CELLS = 72, GRID = 18, NETS = 100, PINS = 5, STEPS = 3600 };

unsigned seed = 9021u;
unsigned rnd() {
  seed = seed * 1103515245u + 12345u;
  return (seed >> 16) & 32767u;
}

int cellx[CELLS];
int celly[CELLS];
int net_pin[NETS][PINS];
int net_cache[NETS];       /* cached bounding-box cost per net */
int nets_of_cell[CELLS][NETS]; /* -1 terminated membership lists */

int compute_net(int n) {
  int lox = 1000, hix = -1000, loy = 1000, hiy = -1000;
  int p;
  for (p = 0; p < PINS; p++) {
    int c = net_pin[n][p];
    if (cellx[c] < lox) lox = cellx[c];
    if (cellx[c] > hix) hix = cellx[c];
    if (celly[c] < loy) loy = celly[c];
    if (celly[c] > hiy) hiy = celly[c];
  }
  return (hix - lox) + (hiy - loy);
}

int main() {
  int i, n, s;
  int current = 0, initial, recomputes = 0;

  for (i = 0; i < CELLS; i++) {
    cellx[i] = (int)(rnd() % (unsigned)GRID);
    celly[i] = (int)(rnd() % (unsigned)GRID);
  }
  for (n = 0; n < NETS; n++) {
    int p;
    for (p = 0; p < PINS; p++)
      net_pin[n][p] = (int)(rnd() % (unsigned)CELLS);
  }
  /* build membership lists */
  for (i = 0; i < CELLS; i++) {
    int count = 0;
    for (n = 0; n < NETS; n++) {
      int p, member = 0;
      for (p = 0; p < PINS; p++)
        if (net_pin[n][p] == i) member = 1;
      if (member) nets_of_cell[i][count++] = n;
    }
    nets_of_cell[i][count] = -1;
  }

  for (n = 0; n < NETS; n++) {
    net_cache[n] = compute_net(n);
    current += net_cache[n];
  }
  initial = current;

  for (s = 0; s < STEPS; s++) {
    int temp = 20 - (s * 20) / STEPS;
    int c = (int)(rnd() % (unsigned)CELLS);
    int ox = cellx[c], oy = celly[c];
    int nx = (int)(rnd() % (unsigned)GRID);
    int ny = (int)(rnd() % (unsigned)GRID);
    int delta = 0;
    int k;
    cellx[c] = nx;
    celly[c] = ny;
    /* incremental: recompute only nets containing c */
    for (k = 0; nets_of_cell[c][k] >= 0; k++) {
      int net = nets_of_cell[c][k];
      int fresh = compute_net(net);
      recomputes++;
      delta += fresh - net_cache[net];
    }
    if (delta <= 0 || (int)(rnd() % 24u) < temp - delta) {
      current += delta;
      for (k = 0; nets_of_cell[c][k] >= 0; k++) {
        int net = nets_of_cell[c][k];
        net_cache[net] = compute_net(net);
      }
    } else {
      cellx[c] = ox;
      celly[c] = oy;
    }
  }

  /* consistency check: cached total equals recomputed total */
  {
    int fresh_total = 0;
    for (n = 0; n < NETS; n++) fresh_total += compute_net(n);
    print_str("twolf initial=");
    print_int(initial);
    print_str(" final=");
    print_int(fresh_total);
    print_str(" cached=");
    print_int(current);
    print_str(" consistent=");
    print_int(fresh_total == current ? 1 : 0);
    print_str(" recomputes=");
    print_int(recomputes);
    print_nl();
  }
  return 0;
}
|}
