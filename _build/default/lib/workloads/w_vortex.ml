(* 255.vortex: an in-memory object database — insert/lookup/delete
   transactions over hashed indexes with variable-size records and
   integrity checks (vortex's OO-database workload shape). *)

let source =
  {|
/* vortex: in-memory object database with transactions */
enum { MAXOBJ = 900, HASHSZ = 256, TXNS = 3000 };

unsigned seed = 3141u;
unsigned rnd() {
  seed = seed * 1103515245u + 12345u;
  return (seed >> 16) & 32767u;
}

typedef struct Obj {
  int key;
  int kind;            /* 0 = person, 1 = part, 2 = draw */
  int fields[6];
  struct Obj *hnext;   /* hash chain */
} Obj;

Obj *table[HASHSZ];
int live_count = 0;
int next_key = 1;

unsigned hashk(int key) { return ((unsigned)key * 2654435761u) % (unsigned)HASHSZ; }

Obj *db_lookup(int key) {
  Obj *o = table[hashk(key)];
  while (o && o->key != key) o = o->hnext;
  return o;
}

int db_insert(int kind) {
  Obj *o;
  unsigned h;
  int i;
  if (live_count >= MAXOBJ) return -1;
  o = (Obj *) malloc(sizeof(Obj));
  o->key = next_key++;
  o->kind = kind;
  for (i = 0; i < 6; i++) o->fields[i] = (int)(rnd() % 1000u);
  h = hashk(o->key);
  o->hnext = table[h];
  table[h] = o;
  live_count++;
  return o->key;
}

int db_delete(int key) {
  unsigned h = hashk(key);
  Obj *o = table[h];
  Obj *prev = 0;
  while (o && o->key != key) { prev = o; o = o->hnext; }
  if (!o) return 0;
  if (prev) prev->hnext = o->hnext;
  else table[h] = o->hnext;
  free((void *)o);
  live_count--;
  return 1;
}

int main() {
  int t, i;
  int inserts = 0, deletes = 0, hits = 0, misses = 0;
  long field_sum = 0;

  for (i = 0; i < HASHSZ; i++) table[i] = 0;

  /* warm the database */
  for (i = 0; i < 400; i++) { db_insert((int)(rnd() % 3u)); inserts++; }

  for (t = 0; t < TXNS; t++) {
    unsigned op = rnd() % 10u;
    if (op < 3u) {
      if (db_insert((int)(rnd() % 3u)) >= 0) inserts++;
    } else if (op < 5u) {
      int key = 1 + (int)(rnd() % (unsigned)next_key);
      if (db_delete(key)) deletes++;
    } else {
      int key = 1 + (int)(rnd() % (unsigned)next_key);
      Obj *o = db_lookup(key);
      if (o) {
        hits++;
        field_sum += (long)o->fields[(int)(rnd() % 6u)];
        /* update transaction */
        o->fields[0] = o->fields[0] + 1;
      } else misses++;
    }
  }

  /* integrity scan: recount and checksum chains */
  {
    int count = 0;
    long keysum = 0;
    for (i = 0; i < HASHSZ; i++) {
      Obj *o = table[i];
      while (o) {
        count++;
        keysum += (long)o->key;
        o = o->hnext;
      }
    }
    print_str("vortex live=");
    print_int(count);
    print_str(" consistent=");
    print_int(count == live_count ? 1 : 0);
    print_str(" hits=");
    print_int(hits);
    print_str(" misses=");
    print_int(misses);
    print_str(" fieldsum=");
    print_long(field_sum);
    print_str(" keysum=");
    print_long(keysum);
    print_nl();
  }
  return 0;
}
|}
