(* 175.vpr: FPGA placement — simulated annealing over a grid, minimizing
   total net bounding-box wirelength, with vpr's swap-accept/reject inner
   loop (deterministic temperature schedule and RNG). *)

let source =
  {|
/* vpr: simulated annealing placement */
enum { CELLS = 64, GRID = 16, NETS = 60, PINS = 4, MOVES_PER_T = 60 };

unsigned seed = 515u;
unsigned rnd() {
  seed = seed * 1103515245u + 12345u;
  return (seed >> 16) & 32767u;
}

int cellx[CELLS];
int celly[CELLS];
int net_pin[NETS][PINS]; /* cell ids */
int grid_cell[GRID][GRID]; /* -1 = empty */

int net_cost(int n) {
  int lox = GRID, hix = 0, loy = GRID, hiy = 0;
  int p;
  for (p = 0; p < PINS; p++) {
    int c = net_pin[n][p];
    if (cellx[c] < lox) lox = cellx[c];
    if (cellx[c] > hix) hix = cellx[c];
    if (celly[c] < loy) loy = celly[c];
    if (celly[c] > hiy) hiy = celly[c];
  }
  return (hix - lox) + (hiy - loy);
}

int total_cost() {
  int s = 0, n;
  for (n = 0; n < NETS; n++) s += net_cost(n);
  return s;
}

int main() {
  int i, n, temp;
  int initial, current, best;

  for (i = 0; i < GRID; i++) {
    int j;
    for (j = 0; j < GRID; j++) grid_cell[i][j] = -1;
  }
  /* initial placement: sequential */
  for (i = 0; i < CELLS; i++) {
    cellx[i] = i % GRID;
    celly[i] = i / GRID;
    grid_cell[cellx[i]][celly[i]] = i;
  }
  for (n = 0; n < NETS; n++) {
    int p;
    for (p = 0; p < PINS; p++) net_pin[n][p] = (int)(rnd() % (unsigned)CELLS);
  }

  initial = total_cost();
  current = initial;
  best = initial;

  /* annealing: integer "temperature" as accept threshold */
  for (temp = 24; temp >= 0; temp -= 4) {
    int m;
    for (m = 0; m < MOVES_PER_T; m++) {
      int c = (int)(rnd() % (unsigned)CELLS);
      int nx = (int)(rnd() % (unsigned)GRID);
      int ny = (int)(rnd() % (unsigned)GRID);
      int ox = cellx[c], oy = celly[c];
      int other = grid_cell[nx][ny];
      int before = 0, after = 0, delta;
      /* cost of nets touching c (and the displaced cell) */
      for (n = 0; n < NETS; n++) {
        int p, touches = 0;
        for (p = 0; p < PINS; p++)
          if (net_pin[n][p] == c || (other >= 0 && net_pin[n][p] == other))
            touches = 1;
        if (touches) before += net_cost(n);
      }
      /* apply the move (swap if occupied) */
      cellx[c] = nx; celly[c] = ny;
      grid_cell[ox][oy] = other;
      grid_cell[nx][ny] = c;
      if (other >= 0) { cellx[other] = ox; celly[other] = oy; }
      for (n = 0; n < NETS; n++) {
        int p, touches = 0;
        for (p = 0; p < PINS; p++)
          if (net_pin[n][p] == c || (other >= 0 && net_pin[n][p] == other))
            touches = 1;
        if (touches) after += net_cost(n);
      }
      delta = after - before;
      if (delta <= 0 || (int)(rnd() % 32u) < temp - delta) {
        current += delta;
        if (current < best) best = current;
      } else {
        /* undo */
        cellx[c] = ox; celly[c] = oy;
        grid_cell[nx][ny] = other;
        grid_cell[ox][oy] = c;
        if (other >= 0) { cellx[other] = nx; celly[other] = ny; }
      }
    }
  }

  print_str("vpr initial=");
  print_int(initial);
  print_str(" final=");
  print_int(total_cost());
  print_str(" best=");
  print_int(best);
  print_nl();
  return 0;
}
|}
