(* ptrdist-yacr2: channel routing — assign horizontal net segments to
   tracks such that overlapping intervals get different tracks (greedy
   left-edge algorithm with vertical-constraint retries), the dominant
   computation of YACR2. *)

let source =
  {|
/* yacr2: left-edge channel routing */
enum { NETS = 600, TRACKS = 64, WIDTH = 512 };

unsigned seed = 31415u;
unsigned rnd() {
  seed = seed * 1103515245u + 12345u;
  return (seed >> 16) & 32767u;
}

int lo[NETS];
int hi[NETS];
int track_of[NETS];
int order[NETS];
int track_end[TRACKS]; /* rightmost column used on each track */

int main() {
  int i, j, used_tracks = 0, failures = 0;
  long span_sum = 0;

  for (i = 0; i < NETS; i++) {
    int a = (int)(rnd() % (unsigned)WIDTH);
    int len = 1 + (int)(rnd() % 64u);
    lo[i] = a;
    hi[i] = a + len < WIDTH ? a + len : WIDTH - 1;
    track_of[i] = -1;
    order[i] = i;
  }

  /* sort nets by left edge (insertion sort, pointer-ish swaps) */
  for (i = 1; i < NETS; i++) {
    int key = order[i];
    j = i - 1;
    while (j >= 0 && lo[order[j]] > lo[key]) {
      order[j + 1] = order[j];
      j--;
    }
    order[j + 1] = key;
  }

  for (i = 0; i < TRACKS; i++) track_end[i] = -1;

  /* greedy left-edge assignment */
  for (i = 0; i < NETS; i++) {
    int n = order[i];
    int t, placed = 0;
    for (t = 0; t < TRACKS; t++) {
      if (track_end[t] < lo[n]) {
        track_of[n] = t;
        track_end[t] = hi[n];
        if (t + 1 > used_tracks) used_tracks = t + 1;
        placed = 1;
        break;
      }
    }
    if (!placed) failures++;
    else span_sum += (long)(hi[n] - lo[n]);
  }

  /* verify: no two nets on the same track overlap */
  {
    int bad = 0;
    for (i = 0; i < NETS; i++) {
      if (track_of[i] < 0) continue;
      for (j = i + 1; j < NETS; j++) {
        if (track_of[j] == track_of[i]) {
          if (!(hi[i] < lo[j] || hi[j] < lo[i])) bad++;
        }
      }
    }
    print_str("yacr2 tracks=");
    print_int(used_tracks);
    print_str(" unrouted=");
    print_int(failures);
    print_str(" overlaps=");
    print_int(bad);
    print_str(" span=");
    print_long(span_sum);
    print_nl();
  }
  return 0;
}
|}
