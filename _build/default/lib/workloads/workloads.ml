(* The benchmark suite: 17 MiniC programs mirroring the rows of the
   paper's Table 2 (PtrDist + SPEC CINT2000 subset). Each program
   generates its input deterministically (seeded LCG) and prints a
   self-checking summary line. *)

type workload = {
  name : string; (* the paper's row name *)
  kernel : string; (* one-line description of the mirrored computation *)
  source : string; (* MiniC source *)
}

let all : workload list =
  [
    {
      name = "ptrdist-anagram";
      kernel = "word-signature hashing and anagram-class search";
      source = W_anagram.source;
    };
    {
      name = "ptrdist-ks";
      kernel = "Kernighan-Schweikert graph partitioning";
      source = W_ks.source;
    };
    {
      name = "ptrdist-ft";
      kernel = "minimum spanning tree over adjacency lists";
      source = W_ft.source;
    };
    {
      name = "ptrdist-yacr2";
      kernel = "channel-routing track assignment";
      source = W_yacr2.source;
    };
    {
      name = "ptrdist-bc";
      kernel = "arbitrary-precision calculator arithmetic";
      source = W_bc.source;
    };
    {
      name = "179.art";
      kernel = "neural-network template matching";
      source = W_art.source;
    };
    {
      name = "183.equake";
      kernel = "sparse matrix-vector time stepping";
      source = W_equake.source;
    };
    {
      name = "181.mcf";
      kernel = "min-cost flow, successive shortest paths";
      source = W_mcf.source;
    };
    {
      name = "256.bzip2";
      kernel = "move-to-front + run-length block coding";
      source = W_bzip2.source;
    };
    {
      name = "164.gzip";
      kernel = "LZ77 sliding-window compression";
      source = W_gzip.source;
    };
    {
      name = "197.parser";
      kernel = "tokenizer + recursive-descent grammar";
      source = W_parser.source;
    };
    {
      name = "188.ammp";
      kernel = "n-body molecular dynamics";
      source = W_ammp.source;
    };
    {
      name = "175.vpr";
      kernel = "simulated-annealing placement";
      source = W_vpr.source;
    };
    {
      name = "300.twolf";
      kernel = "annealing with incremental net costs";
      source = W_twolf.source;
    };
    {
      name = "186.crafty";
      kernel = "chess bitboard attack generation";
      source = W_crafty.source;
    };
    {
      name = "255.vortex";
      kernel = "in-memory object database transactions";
      source = W_vortex.source;
    };
    {
      name = "254.gap";
      kernel = "permutation-group arithmetic";
      source = W_gap.source;
    };
  ]

let find name = List.find_opt (fun w -> w.name = name) all

(* lines of C source, the paper's LOC column *)
let loc w =
  List.length
    (List.filter
       (fun l -> String.trim l <> "")
       (String.split_on_char '\n' w.source))

let compile w = Minic.Mcodegen.compile_and_verify ~name:w.name w.source

let compile_optimized ?(level = 2) w =
  Minic.Mcodegen.compile_and_verify ~name:w.name ~optimize:level w.source
