lib/x86lite/compile.ml: Array Buffer Codegen Eval Hashtbl Int64 Ir List Llva Printf Target Types Vmem X86
