lib/x86lite/sim.ml: Array Compile Eval Float Hashtbl Int32 Int64 Ir List Llva Option Types Vmem X86
