lib/x86lite/x86.ml: Int64 Llva Printf
