test/gen.ml: Alcotest Array Builder Decode Encode Int64 Interp Ir List Llva Option Pretty QCheck Random Resolve String Types Verify
