test/test_analysis.ml: Alcotest Analysis Array Hashtbl Ir List Llva Option Pretty Printf QCheck QCheck_alcotest Random Resolve Types Vmem
