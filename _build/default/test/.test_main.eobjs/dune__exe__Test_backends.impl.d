test/test_backends.ml: Alcotest Gen Int64 Ir List Llva Printf QCheck QCheck_alcotest Random Sparclite Target Transform X86lite
