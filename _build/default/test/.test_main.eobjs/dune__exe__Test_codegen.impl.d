test/test_codegen.ml: Alcotest Codegen Gen Ir List Llva Option QCheck QCheck_alcotest Resolve Sparclite X86lite
