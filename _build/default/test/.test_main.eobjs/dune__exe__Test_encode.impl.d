test/test_encode.ml: Alcotest Builder Decode Encode Gen Int64 Interp Ir List Llva Option Printf QCheck QCheck_alcotest Resolve String Target Types Verify
