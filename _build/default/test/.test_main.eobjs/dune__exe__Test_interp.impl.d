test/test_interp.ml: Alcotest Interp List Llva Obj Printf Resolve String Target Verify
