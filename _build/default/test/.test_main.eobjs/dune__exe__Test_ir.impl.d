test/test_ir.ml: Alcotest Array Builder Int64 Ir List Llva Option Types Verify
