test/test_llee.ml: Alcotest Array Filename Gen Int64 Ir List Llee Llva Option Printf Sys Verify
