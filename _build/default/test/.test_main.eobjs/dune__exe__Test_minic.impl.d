test/test_minic.ml: Alcotest Interp List Llva Minic Sparclite String Transform X86lite
