test/test_parser.ml: Alcotest Array Builder Char Float Int64 Ir Lexer List Llva Option Parser Pretty QCheck QCheck_alcotest Random Resolve String Target Types Verify
