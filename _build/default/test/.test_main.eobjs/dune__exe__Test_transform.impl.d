test/test_transform.ml: Alcotest Analysis Array Gen Interp Ir List Llva Option QCheck QCheck_alcotest String Transform Verify
