test/test_types.ml: Alcotest Hashtbl Llva Types
