test/test_vmem.ml: Alcotest Char Eval Float Hashtbl Int64 Ir List Llva Option QCheck QCheck_alcotest Resolve Target Types Vmem
