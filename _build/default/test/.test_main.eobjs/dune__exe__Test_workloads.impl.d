test/test_workloads.ml: Alcotest Interp List Llva Option Printf Sparclite String Workloads X86lite
