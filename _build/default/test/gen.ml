(* Shared test helpers: random well-typed program generation and
   execution shorthands used by several suites. *)

open Llva

let parse src =
  let m = Resolve.parse_module src in
  (match Verify.verify_module m with
  | [] -> ()
  | errs -> Alcotest.failf "verify: %s" (String.concat "; " errs));
  m

let run_interp ?(fuel = 2_000_000) m =
  let st = Interp.create ~fuel m in
  let code = Interp.run_main st in
  (code, Interp.output st)

(* deep copy via object code *)
let clone m = Decode.decode (Encode.encode m)

(* Build a random program with arithmetic, a diamond, and a bounded loop.
   Inputs come from globals (opaque to SCCP) so not everything folds. *)
let random_program rand : Ir.modl =
  let m = Ir.mk_module ~name:"diff" () in
  let g1 =
    Ir.mk_global ~name:"in1" ~ty:Types.Int
      ~init:
        {
          Ir.cty = Types.Int;
          ckind = Ir.Cint (Int64.of_int (Random.State.int rand 100));
        }
      ()
  in
  let g2 =
    Ir.mk_global ~name:"in2" ~ty:Types.Int
      ~init:
        {
          Ir.cty = Types.Int;
          ckind = Ir.Cint (Int64.of_int (1 + Random.State.int rand 50));
        }
      ()
  in
  Ir.add_global m g1;
  Ir.add_global m g2;
  let f = Ir.mk_func ~name:"main" ~return:Types.Int ~params:[] () in
  Ir.add_func m f;
  let entry = Ir.mk_block ~name:"entry" () in
  let header = Ir.mk_block ~name:"header" () in
  let bthen = Ir.mk_block ~name:"bthen" () in
  let belse = Ir.mk_block ~name:"belse" () in
  let latch = Ir.mk_block ~name:"latch" () in
  let exit = Ir.mk_block ~name:"exit" () in
  List.iter (Ir.append_block f) [ entry; header; bthen; belse; latch; exit ];
  let bld = Builder.create m in
  Builder.position_at_end entry bld;
  let v1 = Builder.load bld (Ir.Vglobal g1) in
  let v2 = Builder.load bld (Ir.Vglobal g2) in
  let pool = ref [ v1; v2; Ir.const_int Types.Int 3L ] in
  let pick () = List.nth !pool (Random.State.int rand (List.length !pool)) in
  let random_arith n =
    for _ = 1 to n do
      let ops = [| Ir.Add; Ir.Sub; Ir.Mul; Ir.And; Ir.Or; Ir.Xor |] in
      let op = ops.(Random.State.int rand (Array.length ops)) in
      pool := Builder.binop bld op (pick ()) (pick ()) :: !pool
    done
  in
  random_arith (2 + Random.State.int rand 6);
  let seed_val = pick () in
  Builder.br bld header;
  Builder.position_at_end header bld;
  let i_phi = Builder.phi_at_front bld Types.Int [] in
  let acc_phi = Builder.phi_at_front bld Types.Int [] in
  let cmp =
    Builder.setcc bld Ir.Lt i_phi
      (Ir.const_int Types.Int (Int64.of_int (1 + Random.State.int rand 8)))
  in
  Builder.cond_br bld cmp bthen belse;
  Builder.position_at_end bthen bld;
  pool := [ acc_phi; i_phi; v1; v2 ];
  random_arith (1 + Random.State.int rand 4);
  let tval = pick () in
  Builder.br bld latch;
  Builder.position_at_end belse bld;
  pool := [ acc_phi; i_phi; v2; Ir.const_int Types.Int 7L ];
  random_arith (1 + Random.State.int rand 4);
  let eval_ = pick () in
  Builder.br bld latch;
  Builder.position_at_end latch bld;
  let merged =
    Builder.phi_at_front bld Types.Int [ (tval, bthen); (eval_, belse) ]
  in
  let inext = Builder.add bld i_phi (Ir.const_int Types.Int 1L) in
  let done_ = Builder.setcc bld Ir.Ge inext (Ir.const_int Types.Int 10L) in
  Builder.cond_br bld done_ exit header;
  (match (i_phi, acc_phi) with
  | Ir.Vreg ip, Ir.Vreg ap ->
      Ir.phi_set_incoming ip
        [ (Ir.const_int Types.Int 0L, entry); (inext, latch) ];
      Ir.phi_set_incoming ap [ (seed_val, entry); (merged, latch) ]
  | _ -> assert false);
  Builder.position_at_end exit bld;
  let masked = Builder.and_ bld merged (Ir.const_int Types.Int 0xFFL) in
  Builder.ret bld (Some masked);
  m

let gen_program : Ir.modl QCheck.arbitrary =
  let open QCheck.Gen in
  let gen =
    let* seed = int_range 0 10_000_000 in
    return (random_program (Random.State.make [| seed |]))
  in
  QCheck.make gen ~print:(fun m -> Pretty.module_to_string m)

(* A richer generator that also exercises memory (arrays on the heap and
   stack), several integer widths and casts. *)
let random_memory_program rand : Ir.modl =
  let m = random_program rand in
  let f = Option.get (Ir.find_func m "main") in
  (* prepend to the entry block: fill a stack array, sum it back *)
  let entry = Ir.entry_block f in
  let bld = Builder.create m in
  Builder.position_at_end entry bld;
  (* remove the existing terminator, rebuild it at the end *)
  let term = Option.get (Ir.terminator entry) in
  let term_target =
    match term.Ir.operands.(0) with Ir.Vblock b -> b | _ -> assert false
  in
  Ir.remove_instr term;
  let n = 4 + Random.State.int rand 8 in
  let arr = Builder.alloca bld (Types.Array (n, Types.Short)) in
  let acc = ref (Ir.const_int Types.Int 0L) in
  for k = 0 to n - 1 do
    let slot =
      Builder.getelementptr bld arr
        [ Ir.const_int Types.Long 0L; Ir.const_int Types.Long (Int64.of_int k) ]
    in
    let v = Random.State.int rand 1000 - 500 in
    Builder.store bld (Ir.const_int Types.Short (Int64.of_int v)) slot;
    let back = Builder.load bld slot in
    let wide = Builder.cast bld back Types.Int in
    acc := Builder.add bld !acc wide
  done;
  (* merge into the global input so downstream arithmetic depends on it *)
  let g1 = Option.get (Ir.find_global m "in1") in
  let old = Builder.load bld (Ir.Vglobal g1) in
  let mixed = Builder.xor bld old !acc in
  Builder.store bld mixed (Ir.Vglobal g1);
  Builder.br bld term_target;
  m

let gen_memory_program : Ir.modl QCheck.arbitrary =
  let open QCheck.Gen in
  let gen =
    let* seed = int_range 0 10_000_000 in
    return (random_memory_program (Random.State.make [| seed |]))
  in
  QCheck.make gen ~print:(fun m -> Pretty.module_to_string m)
