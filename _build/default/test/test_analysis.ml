(* Tests for the analysis library: CFG, dominators, loops, liveness,
   alias analysis, call graph. *)

open Llva

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A loop nest with an if-diamond inside:
   entry -> header -> (body_then | body_else) -> latch -> header | exit *)
let loop_src =
  {|
int %f(int %n) {
entry:
  br label %header
header:
  %i = phi int [ 0, %entry ], [ %inext, %latch ]
  %acc = phi int [ 0, %entry ], [ %accnext, %latch ]
  %cond = setlt int %i, %n
  br bool %cond, label %check, label %exit
check:
  %odd = rem int %i, 2
  %isodd = seteq int %odd, 1
  br bool %isodd, label %bthen, label %belse
bthen:
  %a1 = add int %acc, %i
  br label %latch
belse:
  %a2 = sub int %acc, %i
  br label %latch
latch:
  %accnext = phi int [ %a1, %bthen ], [ %a2, %belse ]
  %inext = add int %i, 1
  br label %header
exit:
  ret int %acc
}
|}

let get_f src name =
  let m = Resolve.parse_module src in
  Option.get (Ir.find_func m name)

let block_named f name =
  List.find (fun (b : Ir.block) -> b.Ir.bname = name) f.Ir.fblocks

let test_cfg () =
  let f = get_f loop_src "f" in
  let cfg = Analysis.Cfg.build f in
  check_int "reachable blocks" 7 (Analysis.Cfg.n_blocks cfg);
  check_bool "entry first" true
    (Analysis.Cfg.block cfg 0 == Ir.entry_block f);
  let header = block_named f "header" in
  check_int "header preds" 2
    (List.length cfg.Analysis.Cfg.preds.(Analysis.Cfg.index_of cfg header));
  (* rpo: every edge except back edges goes forward *)
  let back = ref 0 and fwd = ref 0 in
  List.iter
    (fun (s, d) -> if s >= d then incr back else incr fwd)
    (Analysis.Cfg.edges cfg);
  check_int "one back edge" 1 !back

let test_dominance () =
  let f = get_f loop_src "f" in
  let dom = Analysis.Dominance.of_function f in
  let b = block_named f in
  check_bool "entry dominates all" true
    (List.for_all
       (fun blk -> Analysis.Dominance.dominates dom (b "entry") blk)
       f.Ir.fblocks);
  check_bool "header dom latch" true
    (Analysis.Dominance.dominates dom (b "header") (b "latch"));
  check_bool "check dom latch" true
    (Analysis.Dominance.dominates dom (b "check") (b "latch"));
  check_bool "bthen not dom latch" false
    (Analysis.Dominance.dominates dom (b "bthen") (b "latch"));
  check_bool "latch not dom header" false
    (Analysis.Dominance.dominates dom (b "latch") (b "header"));
  check_bool "self dominance" true
    (Analysis.Dominance.dominates dom (b "check") (b "check"));
  (* idom chain *)
  (match Analysis.Dominance.idom_block dom (b "latch") with
  | Some ib -> check_bool "idom(latch)=check" true (ib == b "check")
  | None -> Alcotest.fail "latch has no idom");
  (* dominance frontier: bthen's frontier is latch; check's is header *)
  check_bool "DF(bthen) = {latch}" true
    (match Analysis.Dominance.frontier_blocks dom (b "bthen") with
    | [ x ] -> x == b "latch"
    | _ -> false);
  check_bool "header in DF(latch)" true
    (List.exists
       (fun x -> x == b "header")
       (Analysis.Dominance.frontier_blocks dom (b "latch")))

(* qcheck: dominance axioms on random CFGs *)
let gen_random_cfg : Ir.func QCheck.arbitrary =
  let open QCheck.Gen in
  let gen =
    let* n = int_range 2 12 in
    let* seed = int_range 0 1_000_000 in
    let rand = Random.State.make [| seed |] in
    let f = Ir.mk_func ~name:"r" ~return:Types.Void ~params:[ ("c", Types.Bool) ] () in
    let blocks = Array.init n (fun k -> Ir.mk_block ~name:(Printf.sprintf "b%d" k) ()) in
    Array.iter (Ir.append_block f) blocks;
    let carg = Ir.Varg (List.hd f.Ir.fargs) in
    Array.iteri
      (fun k b ->
        (* each block branches to one or two random targets (forward or
           backward), or returns *)
        let choice = Random.State.int rand 10 in
        if choice < 2 || k = n - 1 then
          Ir.append_instr b (Ir.mk_instr Ir.Ret [||] Types.Void)
        else if choice < 6 then
          let t = blocks.(Random.State.int rand n) in
          Ir.append_instr b (Ir.mk_instr Ir.Br [| Ir.Vblock t |] Types.Void)
        else
          let t1 = blocks.(Random.State.int rand n) in
          let t2 = blocks.(Random.State.int rand n) in
          Ir.append_instr b
            (Ir.mk_instr Ir.Br [| carg; Ir.Vblock t1; Ir.Vblock t2 |] Types.Void))
      blocks;
    return f
  in
  QCheck.make gen ~print:(fun f -> Pretty.func_to_string f)

let prop_dominance_axioms =
  QCheck.Test.make ~name:"dominance axioms" ~count:200 gen_random_cfg (fun f ->
      let cfg = Analysis.Cfg.build f in
      let dom = Analysis.Dominance.compute cfg in
      let n = Analysis.Cfg.n_blocks cfg in
      let ok = ref true in
      (* entry dominates everything; idom strictly dominates; transitivity
         spot-check *)
      for k = 0 to n - 1 do
        if not (Analysis.Dominance.dominates_idx dom 0 k) then ok := false;
        if k > 0 then begin
          let idom = dom.Analysis.Dominance.idom.(k) in
          if idom = k then ok := false;
          if not (Analysis.Dominance.dominates_idx dom idom k) then ok := false
        end
      done;
      (* brute-force check: a dominates b iff removing a disconnects b *)
      let reachable_without skip =
        let seen = Array.make n false in
        let rec dfs k =
          if (not seen.(k)) && k <> skip then begin
            seen.(k) <- true;
            List.iter dfs cfg.Analysis.Cfg.succs.(k)
          end
        in
        if skip <> 0 then dfs 0;
        seen
      in
      for a = 1 to n - 1 do
        let reach = reachable_without a in
        for b = 0 to n - 1 do
          if b <> a then begin
            let dom_ab = Analysis.Dominance.dominates_idx dom a b in
            let disconnected = not reach.(b) in
            if dom_ab <> disconnected then ok := false
          end
        done
      done;
      !ok)

let test_loops () =
  let f = get_f loop_src "f" in
  let loops = Analysis.Loops.of_function f in
  check_int "one loop" 1 (List.length loops.Analysis.Loops.loops);
  let l = List.hd loops.Analysis.Loops.loops in
  check_bool "header" true (l.Analysis.Loops.header == block_named f "header");
  check_int "body size" 5 (List.length l.Analysis.Loops.body);
  check_bool "exit not in body" false
    (Analysis.Loops.in_loop l (block_named f "exit"));
  check_bool "entry is preheader" true
    (match Analysis.Loops.preheader l with
    | Some p -> p == block_named f "entry"
    | None -> false);
  check_int "loop depth of check" 1
    (Analysis.Loops.loop_depth loops (block_named f "check"));
  check_int "loop depth of exit" 0
    (Analysis.Loops.loop_depth loops (block_named f "exit"))

let test_nested_loops () =
  let src =
    {|
void %g(int %n) {
entry:
  br label %outer
outer:
  %i = phi int [ 0, %entry ], [ %inext, %outer_latch ]
  br label %inner
inner:
  %j = phi int [ 0, %outer ], [ %jnext, %inner ]
  %jnext = add int %j, 1
  %jdone = setge int %jnext, %n
  br bool %jdone, label %outer_latch, label %inner
outer_latch:
  %inext = add int %i, 1
  %idone = setge int %inext, %n
  br bool %idone, label %exit, label %outer
exit:
  ret void
}
|}
  in
  let f = get_f src "g" in
  let loops = Analysis.Loops.of_function f in
  check_int "two loops" 2 (List.length loops.Analysis.Loops.loops);
  check_int "inner depth 2" 2 (Analysis.Loops.loop_depth loops (block_named f "inner"));
  check_int "outer depth 1" 1
    (Analysis.Loops.loop_depth loops (block_named f "outer"))

let test_liveness () =
  let f = get_f loop_src "f" in
  let cfg = Analysis.Cfg.build f in
  let live = Analysis.Liveness.compute cfg in
  let b = block_named f in
  let find_instr name =
    let r = ref None in
    Ir.iter_instrs (fun i -> if i.Ir.iname = name then r := Some i) f;
    Option.get !r
  in
  let i_phi = find_instr "i" in
  let acc_phi = find_instr "acc" in
  (* %i is live out of header (used in check and latch) *)
  check_bool "i live out of header" true
    (Analysis.Liveness.is_live_out live (b "header") i_phi.Ir.iid);
  (* %acc is live out of check (used by both branches) *)
  check_bool "acc live out of check" true
    (Analysis.Liveness.is_live_out live (b "check") acc_phi.Ir.iid);
  (* %a1 is live out of bthen only via the latch phi edge *)
  let a1 = find_instr "a1" in
  check_bool "a1 live out of bthen" true
    (Analysis.Liveness.is_live_out live (b "bthen") a1.Ir.iid);
  check_bool "a1 not live out of belse" false
    (Analysis.Liveness.is_live_out live (b "belse") a1.Ir.iid);
  (* nothing is live out of exit *)
  check_int "exit live out" 0 (List.length (Analysis.Liveness.live_out live (b "exit")))

let test_alias () =
  let src =
    {|
%pair = type { int, int }
%gA = global int 0
%gB = global int 0

void %h(int* %unknown) {
entry:
  %x = alloca int
  %y = alloca int
  %p = alloca %pair
  %f0 = getelementptr %pair* %p, long 0, ubyte 0
  %f1 = getelementptr %pair* %p, long 0, ubyte 1
  store int 1, int* %x
  store int 2, int* %y
  ret void
}
|}
  in
  let m = Resolve.parse_module src in
  let lt = Vmem.Layout.for_module m in
  let f = Option.get (Ir.find_func m "h") in
  let find name =
    let r = ref None in
    Ir.iter_instrs (fun i -> if i.Ir.iname = name then r := Some i) f;
    Ir.Vreg (Option.get !r)
  in
  let ga = Ir.Vglobal (Option.get (Ir.find_global m "gA")) in
  let gb = Ir.Vglobal (Option.get (Ir.find_global m "gB")) in
  let unknown = Ir.Varg (List.hd f.Ir.fargs) in
  let open Analysis.Alias in
  check_bool "distinct allocas" true (alias lt (find "x") (find "y") = No_alias);
  check_bool "alloca vs global" true (alias lt (find "x") ga = No_alias);
  check_bool "distinct globals" true (alias lt ga gb = No_alias);
  check_bool "distinct fields" true (alias lt (find "f0") (find "f1") = No_alias);
  check_bool "same value must alias" true (alias lt (find "f0") (find "f0") = Must_alias);
  check_bool "unknown may alias global" true (alias lt unknown ga = May_alias);
  check_bool "field vs whole unknown" true (alias lt (find "f0") unknown = May_alias)

let test_escape () =
  let src =
    {|
declare void %sink(int*)

void %e() {
entry:
  %kept = alloca int
  %leaked = alloca int
  store int 1, int* %kept
  call void %sink(int* %leaked)
  ret void
}
|}
  in
  let m = Resolve.parse_module src in
  let f = Option.get (Ir.find_func m "e") in
  let find name =
    let r = ref None in
    Ir.iter_instrs (fun i -> if i.Ir.iname = name then r := Some i) f;
    Option.get !r
  in
  check_bool "kept does not escape" false
    (Analysis.Alias.alloca_escapes (find "kept"));
  check_bool "leaked escapes" true
    (Analysis.Alias.alloca_escapes (find "leaked"))

let test_callgraph () =
  let src =
    {|
declare void %ext()

void %leaf() {
entry:
  ret void
}

void %mid() {
entry:
  call void %leaf()
  call void %ext()
  ret void
}

void %selfrec(int %n) {
entry:
  call void %selfrec(int %n)
  ret void
}

void %mutual_a() {
entry:
  call void %mutual_b()
  ret void
}

void %mutual_b() {
entry:
  call void %mutual_a()
  ret void
}

int %main() {
entry:
  call void %mid()
  call void %mutual_a()
  ret int 0
}
|}
  in
  let m = Resolve.parse_module src in
  let cg = Analysis.Callgraph.compute m in
  let f name = Option.get (Ir.find_func m name) in
  check_int "main callees" 2 (List.length (Analysis.Callgraph.callees cg (f "main")));
  check_int "leaf callers" 1 (List.length (Analysis.Callgraph.callers cg (f "leaf")));
  check_bool "selfrec recursive" true (Analysis.Callgraph.is_recursive cg (f "selfrec"));
  check_bool "mutual recursive" true (Analysis.Callgraph.is_recursive cg (f "mutual_a"));
  check_bool "leaf not recursive" false (Analysis.Callgraph.is_recursive cg (f "leaf"));
  let reach = Analysis.Callgraph.reachable_from cg [ f "main" ] in
  check_bool "leaf reachable" true (Hashtbl.mem reach (f "leaf").Ir.fid);
  check_bool "selfrec unreachable" false (Hashtbl.mem reach (f "selfrec").Ir.fid)

let suite =
  [
    Alcotest.test_case "cfg" `Quick test_cfg;
    Alcotest.test_case "dominance" `Quick test_dominance;
    QCheck_alcotest.to_alcotest prop_dominance_axioms;
    Alcotest.test_case "loops" `Quick test_loops;
    Alcotest.test_case "nested loops" `Quick test_nested_loops;
    Alcotest.test_case "liveness" `Quick test_liveness;
    Alcotest.test_case "alias" `Quick test_alias;
    Alcotest.test_case "escape" `Quick test_escape;
    Alcotest.test_case "callgraph" `Quick test_callgraph;
  ]
