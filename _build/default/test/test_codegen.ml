(* Unit tests for the shared code-generation substrate: live intervals,
   the two register allocators, and the phi-elimination plan. *)

open Llva

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let loop_func () =
  let m =
    Resolve.parse_module
      {|
int %f(int %n, int %seed) {
entry:
  %base = mul int %seed, 3
  br label %loop
loop:
  %i = phi int [ 0, %entry ], [ %inext, %loop ]
  %acc = phi int [ %base, %entry ], [ %acc2, %loop ]
  %acc2 = add int %acc, %i
  %inext = add int %i, 1
  %done = setge int %inext, %n
  br bool %done, label %exit, label %loop
exit:
  %r = add int %acc2, %base
  ret int %r
}
|}
  in
  Option.get (Ir.find_func m "f")

let find_instr f name =
  let r = ref None in
  Ir.iter_instrs (fun i -> if i.Ir.iname = name then r := Some i) f;
  Option.get !r

let test_intervals () =
  let f = loop_func () in
  let ivs = Codegen.Intervals.build f in
  let all = Codegen.Intervals.all ivs in
  check_bool "every value has an interval" true (List.length all >= 8);
  (* %base is defined in entry and used in exit: its interval must span
     the whole loop *)
  let base = find_instr f "base" in
  let acc2 = find_instr f "acc2" in
  let base_iv =
    List.find (fun iv -> iv.Codegen.Intervals.vid = base.Ir.iid) all
  in
  let acc2_iv =
    List.find (fun iv -> iv.Codegen.Intervals.vid = acc2.Ir.iid) all
  in
  check_bool "base spans past acc2's def" true
    (base_iv.Codegen.Intervals.end_pos > acc2_iv.Codegen.Intervals.start_pos);
  check_bool "loop value has loop-scaled weight" true
    (acc2_iv.Codegen.Intervals.weight > base_iv.Codegen.Intervals.weight);
  (* intervals are sorted by start *)
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        a.Codegen.Intervals.start_pos <= b.Codegen.Intervals.start_pos
        && sorted rest
    | _ -> true
  in
  check_bool "sorted by start" true (sorted all);
  (* arguments start before every instruction *)
  let arg = List.hd f.Ir.fargs in
  let arg_iv = List.find (fun iv -> iv.Codegen.Intervals.vid = arg.Ir.aid) all in
  check_int "arg starts at -1" (-1) arg_iv.Codegen.Intervals.start_pos

let test_spill_everything () =
  let f = loop_func () in
  let ivs = Codegen.Intervals.build f in
  let a = Codegen.Regalloc.spill_everything ivs in
  List.iter
    (fun iv ->
      match Codegen.Regalloc.location a iv.Codegen.Intervals.vid with
      | Codegen.Regalloc.Slot _ -> ()
      | Codegen.Regalloc.Reg _ -> Alcotest.fail "spill_everything gave a register")
    (Codegen.Intervals.all ivs);
  check_bool "slots allocated" true (a.Codegen.Regalloc.n_slots >= 8);
  check_int "no registers used" 0 (List.length a.Codegen.Regalloc.used_regs_int)

let test_linear_scan_no_conflicts () =
  let f = loop_func () in
  let ivs = Codegen.Intervals.build f in
  let a = Codegen.Regalloc.linear_scan ~int_regs:[ 1; 2; 3 ] ~float_regs:[] ivs in
  (* fundamental invariant: two intervals sharing a register never
     overlap in time *)
  let assigned =
    List.filter_map
      (fun iv ->
        match Codegen.Regalloc.location a iv.Codegen.Intervals.vid with
        | Codegen.Regalloc.Reg r -> Some (r, iv)
        | Codegen.Regalloc.Slot _ -> None)
      (Codegen.Intervals.all ivs)
  in
  List.iter
    (fun (r1, iv1) ->
      List.iter
        (fun (r2, iv2) ->
          if r1 = r2 && not (iv1 == iv2) then begin
            let overlap =
              iv1.Codegen.Intervals.start_pos <= iv2.Codegen.Intervals.end_pos
              && iv2.Codegen.Intervals.start_pos <= iv1.Codegen.Intervals.end_pos
            in
            if overlap then
              Alcotest.failf "register %d double-booked (%d and %d)" r1
                iv1.Codegen.Intervals.vid iv2.Codegen.Intervals.vid
          end)
        assigned)
    assigned;
  (* with only 3 registers and ~9 values something must spill *)
  check_bool "some spills" true (a.Codegen.Regalloc.n_slots > 0);
  check_bool "some registers used" true (assigned <> [])

let prop_linear_scan_sound =
  QCheck.Test.make ~name:"linear scan never double-books a register"
    ~count:60 Gen.gen_program (fun m ->
      let f = Option.get (Ir.find_func m "main") in
      let ivs = Codegen.Intervals.build f in
      let a =
        Codegen.Regalloc.linear_scan ~int_regs:[ 1; 2 ] ~float_regs:[ 1 ] ivs
      in
      let assigned =
        List.filter_map
          (fun iv ->
            match Codegen.Regalloc.location a iv.Codegen.Intervals.vid with
            | Codegen.Regalloc.Reg r -> Some (r, iv.Codegen.Intervals.klass, iv)
            | _ -> None)
          (Codegen.Intervals.all ivs)
      in
      List.for_all
        (fun (r1, k1, iv1) ->
          List.for_all
            (fun (r2, k2, iv2) ->
              iv1 == iv2 || r1 <> r2 || k1 <> k2
              || iv1.Codegen.Intervals.end_pos < iv2.Codegen.Intervals.start_pos
              || iv2.Codegen.Intervals.end_pos < iv1.Codegen.Intervals.start_pos)
            assigned)
        assigned)

let test_phi_plan () =
  let f = loop_func () in
  let plan = Codegen.Phiplan.build f in
  check_int "two transfer slots" 2 plan.Codegen.Phiplan.n_transfer_slots;
  let entry = List.nth f.Ir.fblocks 0 in
  let loop = List.nth f.Ir.fblocks 1 in
  (* entry and loop both feed the two phis *)
  check_int "entry end copies" 2
    (List.length (Codegen.Phiplan.end_copies plan entry));
  check_int "loop end copies" 2
    (List.length (Codegen.Phiplan.end_copies plan loop));
  check_int "loop start copies" 2
    (List.length (Codegen.Phiplan.start_copies plan loop));
  check_int "entry start copies" 0
    (List.length (Codegen.Phiplan.start_copies plan entry));
  (* the slot indices used by start and end copies line up *)
  let end_slots =
    List.map
      (fun c -> c.Codegen.Phiplan.transfer_slot)
      (Codegen.Phiplan.end_copies plan entry)
    |> List.sort compare
  in
  let start_slots =
    List.map fst (Codegen.Phiplan.start_copies plan loop) |> List.sort compare
  in
  check_bool "slots agree" true (end_slots = start_slots)

let test_phi_swap_problem () =
  (* the classic swap: a,b = b,a inside a loop; the transfer-slot scheme
     must not lose a value (tested end-to-end through both back-ends) *)
  let src =
    {|
declare void %print_int(int)
int %main() {
entry:
  br label %loop
loop:
  %a = phi int [ 1, %entry ], [ %b, %loop ]
  %b = phi int [ 2, %entry ], [ %a, %loop ]
  %i = phi int [ 0, %entry ], [ %inext, %loop ]
  %inext = add int %i, 1
  %done = setge int %inext, 5
  br bool %done, label %out, label %loop
out:
  %r = mul int %a, 10
  %r2 = add int %r, %b
  ret int %r2
}
|}
  in
  let m = Resolve.parse_module src in
  let reference = Gen.run_interp (Gen.clone m) in
  (* after 5 iterations: a,b swapped 4 times from (1,2) -> (1,2) at i=4?
     check against the interpreter, then the back-ends *)
  let x86 = X86lite.Compile.compile_module (Gen.clone m) in
  let xcode, _ = X86lite.Sim.run_main x86 in
  check_int "x86 swap" (fst reference) xcode;
  let sparc = Sparclite.Compile.compile_module (Gen.clone m) in
  let scode, _ = Sparclite.Sim.run_main sparc in
  check_int "sparc swap" (fst reference) scode

let suite =
  [
    Alcotest.test_case "intervals" `Quick test_intervals;
    Alcotest.test_case "spill everything" `Quick test_spill_everything;
    Alcotest.test_case "linear scan conflicts" `Quick
      test_linear_scan_no_conflicts;
    QCheck_alcotest.to_alcotest prop_linear_scan_sound;
    Alcotest.test_case "phi plan" `Quick test_phi_plan;
    Alcotest.test_case "phi swap problem" `Quick test_phi_swap_problem;
  ]
