(* Virtual object code tests: byte-level round-trips, semantic round-trips
   through the interpreter, compactness, and malformed-input rejection. *)

open Llva

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let program =
  {|
%greeting = constant [6 x sbyte] c"hello\00"
%counter = global int 0
declare void %print_int(int)

int %sum_to(int %n) {
entry:
  br label %loop
loop:
  %i = phi int [ 1, %entry ], [ %inext, %loop ]
  %acc = phi int [ 0, %entry ], [ %anext, %loop ]
  %anext = add int %acc, %i
  %inext = add int %i, 1
  %done = setgt int %inext, %n
  br bool %done, label %exit, label %loop
exit:
  ret int %anext
}

int %main() {
entry:
  %r = call int %sum_to(int 10)
  call void %print_int(int %r)
  ret int %r
}
|}

let test_roundtrip_structure () =
  let m = Resolve.parse_module program in
  let bytes = Encode.encode m in
  let m2 = Decode.decode bytes in
  check_bool "decoded verifies" true (Verify.verify_module m2 = []);
  check_int "function count" (List.length m.Ir.funcs) (List.length m2.Ir.funcs);
  check_int "global count" (List.length m.Ir.globals) (List.length m2.Ir.globals);
  check_int "instr count"
    (Ir.module_instr_count m)
    (Ir.module_instr_count m2);
  (* encode of decode is a fixpoint *)
  let bytes2 = Encode.encode m2 in
  check_bool "byte fixpoint" true (String.equal bytes bytes2)

let test_roundtrip_semantics () =
  let m = Resolve.parse_module program in
  let m2 = Decode.decode (Encode.encode m) in
  let st = Interp.create m in
  let st2 = Interp.create m2 in
  let c1 = Interp.run_main st in
  let c2 = Interp.run_main st2 in
  check_int "same exit code" c1 c2;
  Alcotest.(check string) "same output" (Interp.output st) (Interp.output st2);
  check_int "sum is 55" 55 c1

let test_target_flags_roundtrip () =
  List.iter
    (fun target ->
      let m = Ir.mk_module ~name:"t" ~target () in
      let f = Ir.mk_func ~name:"main" ~return:Types.Int ~params:[] () in
      Ir.add_func m f;
      let b = Ir.mk_block ~name:"entry" () in
      Ir.append_block f b;
      Ir.append_instr b
        (Ir.mk_instr Ir.Ret [| Ir.const_int Types.Int 0L |] Types.Void);
      let m2 = Decode.decode (Encode.encode m) in
      check_bool
        ("target preserved: " ^ Target.to_string target)
        true
        (Target.equal m2.Ir.target target))
    Target.all

let test_exception_attr_roundtrip () =
  let src =
    {|
int %main() {
entry:
  %a = add int 1, 2 @ee(true)
  %b = div int %a, 3 @ee(false)
  ret int %b
}
|}
  in
  let m2 = Decode.decode (Encode.encode (Resolve.parse_module src)) in
  let f = Option.get (Ir.find_func m2 "main") in
  let seen = ref 0 in
  Ir.iter_instrs
    (fun i ->
      match i.Ir.op with
      | Ir.Binop Ir.Add ->
          incr seen;
          check_bool "add ee on" true i.Ir.exceptions_enabled
      | Ir.Binop Ir.Div ->
          incr seen;
          check_bool "div ee off" false i.Ir.exceptions_enabled
      | _ -> ())
    f;
  check_int "both found" 2 !seen

let test_compactness () =
  (* Most instructions use the 4-byte compact form, so the marginal cost of
     an instruction must stay near one 32-bit word once fixed headers are
     amortized (paper §3.1). *)
  let build n =
    let m = Ir.mk_module ~name:"big" () in
    let f =
      Ir.mk_func ~name:"main" ~return:Types.Int ~params:[ ("a", Types.Int) ] ()
    in
    Ir.add_func m f;
    let b = Ir.mk_block ~name:"entry" () in
    Ir.append_block f b;
    let bld = Builder.create m in
    Builder.position_at_end b bld;
    let v = ref (Ir.Varg (List.hd f.Ir.fargs)) in
    for k = 1 to n do
      v := Builder.add bld !v (Ir.const_int Types.Int (Int64.of_int (k mod 7)))
    done;
    Builder.ret bld (Some !v);
    m
  in
  let small = String.length (Encode.encode (build 100)) in
  let large = String.length (Encode.encode (build 1100)) in
  let marginal = float_of_int (large - small) /. 1000.0 in
  check_bool
    (Printf.sprintf "marginal cost %.2f bytes/instr" marginal)
    true
    (marginal < 6.0 && marginal >= 4.0)

let test_malformed () =
  let reject name data =
    check_bool name true
      (try
         ignore (Decode.decode data);
         false
       with Decode.Error _ -> true)
  in
  reject "bad magic" "NOPE\x01\x00";
  reject "empty" "";
  reject "bad version" "LLVA\x09\x00";
  let m = Resolve.parse_module program in
  let bytes = Encode.encode m in
  reject "truncated" (String.sub bytes 0 (String.length bytes / 2))

let test_string_constants () =
  let src =
    {|
%msg = constant [7 x sbyte] c"\22q\5C\22z\00\00"
int %main() {
entry:
  ret int 0
}
|}
  in
  let m = Resolve.parse_module src in
  let m2 = Decode.decode (Encode.encode m) in
  let g = Option.get (Ir.find_global m2 "msg") in
  match (Option.get g.Ir.ginit).Ir.ckind with
  | Ir.Cstring s -> Alcotest.(check string) "escapes survive" "\"q\\\"z\000" s
  | _ -> Alcotest.fail "string initializer lost"

let suite =
  [
    Alcotest.test_case "roundtrip structure" `Quick test_roundtrip_structure;
    Alcotest.test_case "roundtrip semantics" `Quick test_roundtrip_semantics;
    Alcotest.test_case "target flags" `Quick test_target_flags_roundtrip;
    Alcotest.test_case "exception attrs" `Quick test_exception_attr_roundtrip;
    Alcotest.test_case "compactness" `Quick test_compactness;
    Alcotest.test_case "malformed input" `Quick test_malformed;
    Alcotest.test_case "string constants" `Quick test_string_constants;
  ]

(* qcheck: encode/decode over random programs preserves verification,
   byte-level fixpoint, and behaviour *)
let prop_object_code_roundtrip =
  QCheck.Test.make ~name:"object code roundtrip (random programs)" ~count:60
    Gen.gen_memory_program (fun m ->
      let bytes = Encode.encode m in
      let m2 = Decode.decode bytes in
      Verify.verify_module m2 = []
      && String.equal bytes (Encode.encode m2)
      && Gen.run_interp m = Gen.run_interp m2)

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_object_code_roundtrip ]

let test_non_compact_roundtrip () =
  (* the ablation encoding (self-extending form only) is bigger but fully
     equivalent *)
  let m = Resolve.parse_module program in
  let c = Encode.encode ~compact:true m in
  let nc = Encode.encode ~compact:false m in
  check_bool "compact is smaller" true (String.length c < String.length nc);
  let m2 = Decode.decode nc in
  check_bool "decodes and verifies" true (Verify.verify_module m2 = []);
  check_bool "same behaviour" true
    (Gen.run_interp m2 = Gen.run_interp (Resolve.parse_module program));
  (* re-encoding compactly reproduces the compact bytes *)
  check_bool "canonical re-encode" true (String.equal (Encode.encode m2) c)

let suite =
  suite
  @ [ Alcotest.test_case "non-compact roundtrip" `Quick test_non_compact_roundtrip ]
