(* Interpreter tests: arithmetic semantics, memory, control flow, calls,
   exceptions (precise + ExceptionsEnabled), intrinsics, SMC. *)

open Llva

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let run_src ?fuel src =
  let m = Resolve.parse_module src in
  (match Verify.verify_module m with
  | [] -> ()
  | errs -> Alcotest.failf "verify: %s" (String.concat "; " errs));
  let st = Interp.create ?fuel m in
  let code = Interp.run_main st in
  (code, Interp.output st, st)

let exit_code src =
  let c, _, _ = run_src src in
  c

let test_arith () =
  check_int "add/mul" 23
    (exit_code
       {|
int %main() {
entry:
  %a = add int 3, 4
  %b = mul int %a, 3
  %c = add int %b, 2
  ret int %c
}
|});
  check_int "signed div truncates" (-2)
    (exit_code
       "int %main() {\nentry:\n  %x = div int -7, 3\n  ret int %x\n}");
  check_int "unsigned compare" 1
    (exit_code
       {|
int %main() {
entry:
  %c = setgt uint 4294967295, 1
  %r = cast bool %c to int
  ret int %r
}
|});
  check_int "signed compare" 0
    (exit_code
       {|
int %main() {
entry:
  %c = setgt int -1, 1
  %r = cast bool %c to int
  ret int %r
}
|});
  check_int "shr arithmetic on signed" (-4)
    (exit_code
       "int %main() {\nentry:\n  %x = shr int -16, ubyte 2\n  ret int %x\n}");
  check_int "shr logical on unsigned" 63
    (exit_code
       {|
int %main() {
entry:
  %x = shr uint 255, ubyte 2
  %r = cast uint %x to int
  ret int %r
}
|});
  check_int "ubyte wraparound" 44
    (exit_code
       {|
int %main() {
entry:
  %x = add ubyte 200, 100
  %r = cast ubyte %x to int
  ret int %r
}
|})

let test_casts () =
  check_int "double to int" 3
    (exit_code
       "int %main() {\nentry:\n  %x = cast double 3.9 to int\n  ret int %x\n}");
  check_int "negative fp to int" (-3)
    (exit_code
       "int %main() {\nentry:\n  %x = cast double -3.9 to int\n  ret int %x\n}");
  check_int "sbyte sign extends" (-1)
    (exit_code
       {|
int %main() {
entry:
  %x = cast ubyte 255 to sbyte
  %y = cast sbyte %x to int
  ret int %y
}
|});
  check_int "ubyte zero extends" 255
    (exit_code
       {|
int %main() {
entry:
  %x = cast ubyte 255 to int
  ret int %x
}
|})

let test_memory_and_gep () =
  let code, out, _ =
    run_src
      {|
%struct.QuadTree = type { double, [4 x %QT*] }
%QT = type %struct.QuadTree

int %main() {
entry:
  %node = alloca %QT
  %data = getelementptr %QT* %node, long 0, ubyte 0
  store double 41.5, double* %data
  %slot = getelementptr %QT* %node, long 0, ubyte 1, long 3
  store %QT* %node, %QT** %slot
  %same = load %QT** %slot
  %d2 = getelementptr %QT* %same, long 0, ubyte 0
  %v = load double* %d2
  %vi = cast double %v to int
  ret int %vi
}
|}
  in
  check_int "quadtree field access" 41 code;
  check_string "no output" "" out

let test_loop_and_phi () =
  (* sum 1..10 with a loop phi *)
  check_int "loop sum" 55
    (exit_code
       {|
int %main() {
entry:
  br label %loop
loop:
  %i = phi int [ 1, %entry ], [ %inext, %loop ]
  %acc = phi int [ 0, %entry ], [ %anext, %loop ]
  %anext = add int %acc, %i
  %inext = add int %i, 1
  %done = setgt int %inext, 10
  br bool %done, label %exit, label %loop
exit:
  ret int %anext
}
|})

let test_calls_and_recursion () =
  check_int "fib 10" 55
    (exit_code
       {|
int %fib(int %n) {
entry:
  %small = setlt int %n, 2
  br bool %small, label %base, label %rec
base:
  ret int %n
rec:
  %n1 = sub int %n, 1
  %n2 = sub int %n, 2
  %f1 = call int %fib(int %n1)
  %f2 = call int %fib(int %n2)
  %s = add int %f1, %f2
  ret int %s
}

int %main() {
entry:
  %r = call int %fib(int 10)
  ret int %r
}
|})

let test_function_pointers () =
  check_int "indirect call" 12
    (exit_code
       {|
int %double_it(int %x) {
entry:
  %r = add int %x, %x
  ret int %r
}

int %main() {
entry:
  %fp = cast int (int)* %double_it to int (int)*
  %r = call int (int)* %fp(int 6)
  ret int %r
}
|})

let test_runtime_output () =
  let _, out, _ =
    run_src
      {|
%msg = constant [14 x sbyte] c"hello, world!\00"
declare void %print_str(sbyte*)
declare void %print_int(int)
declare void %print_nl()

int %main() {
entry:
  %p = getelementptr [14 x sbyte]* %msg, long 0, long 0
  call void %print_str(sbyte* %p)
  call void %print_nl()
  call void %print_int(int 42)
  ret int 0
}
|}
  in
  check_string "output" "hello, world!\n42" out

let test_malloc_free () =
  check_int "heap roundtrip" 99
    (exit_code
       {|
declare sbyte* %malloc(uint)
declare void %free(sbyte*)

int %main() {
entry:
  %raw = call sbyte* %malloc(uint 64)
  %ip = cast sbyte* %raw to int*
  %slot = getelementptr int* %ip, long 7
  store int 99, int* %slot
  %v = load int* %slot
  call void %free(sbyte* %raw)
  ret int %v
}
|})

let test_invoke_unwind () =
  check_int "unwind caught by invoke" 7
    (exit_code
       {|
void %may_throw(bool %t) {
entry:
  br bool %t, label %throw, label %ok
throw:
  unwind
ok:
  ret void
}

int %main() {
entry:
  %r = invoke int %helper(bool true) to label %normal except label %caught
normal:
  ret int %r
caught:
  ret int 7
}

int %helper(bool %t) {
entry:
  call void %may_throw(bool %t)
  ret int 1
}
|});
  (* unwind with no invoke anywhere -> Unwound *)
  let m = Resolve.parse_module "int %main() {\nentry:\n  unwind\n}" in
  let st = Interp.create m in
  check_bool "uncaught unwind" true
    (try
       ignore (Interp.run_main st);
       false
     with Interp.Unwound -> true)

let test_precise_exceptions () =
  (* enabled div-by-zero traps *)
  let m =
    Resolve.parse_module
      "int %main() {\nentry:\n  %x = div int 1, 0\n  ret int %x\n}"
  in
  let st = Interp.create m in
  check_bool "div by zero traps" true
    (try
       ignore (Interp.run_main st);
       false
     with Interp.Trap Interp.Division_by_zero -> true);
  (* disabled exceptions are ignored: result is undef, program continues *)
  check_int "disabled div-by-zero ignored" 5
    (exit_code
       {|
int %main() {
entry:
  %x = div int 1, 0 @ee(false)
  ret int 5
}
|});
  (* load through null traps *)
  let m2 =
    Resolve.parse_module
      "int %main() {\nentry:\n  %p = cast int 0 to int*\n  %x = load int* %p\n  ret int %x\n}"
  in
  let st2 = Interp.create m2 in
  check_bool "null load faults" true
    (try
       ignore (Interp.run_main st2);
       false
     with Interp.Trap (Interp.Memory_fault _) -> true)

let test_trap_handler () =
  (* a registered handler observes the trap number before termination *)
  let _, out, _ =
    try
      run_src
        {|
declare void %llva.trap.register(void (uint, sbyte*)*)
declare void %print_int(int)

void %handler(uint %num, sbyte* %info) {
entry:
  %n = cast uint %num to int
  call void %print_int(int %n)
  ret void
}

int %main() {
entry:
  call void %llva.trap.register(void (uint, sbyte*)* %handler)
  %x = div int 1, 0
  ret int %x
}
|}
    with Interp.Trap k ->
      (0, (match k with Interp.Division_by_zero -> "0" | _ -> "?"), Obj.magic ())
  in
  (* trap number 0 = division by zero was printed by the handler *)
  check_string "handler saw trap 0" "0" out

let test_privileged_intrinsics () =
  let src priv =
    Printf.sprintf
      {|
declare void %%llva.priv.set(bool)
declare void %%llva.pgtable.map(uint, uint)

int %%main() {
entry:
  call void %%llva.priv.set(bool %s)
  call void %%llva.pgtable.map(uint 0, uint 0)
  ret int 0
}
|}
      (if priv then "true" else "false")
  in
  check_int "privileged ok" 0 (exit_code (src true));
  let m = Resolve.parse_module (src false) in
  let st = Interp.create m in
  check_bool "unprivileged traps" true
    (try
       ignore (Interp.run_main st);
       false
     with Interp.Trap Interp.Privilege_violation -> true)

let test_smc_replace () =
  (* §3.4: replacing a function body affects future invocations only *)
  check_int "smc future invocations" 21
    (exit_code
       {|
declare void %llva.smc.replace(int (int)*, int (int)*)

int %orig(int %x) {
entry:
  %r = add int %x, 1
  ret int %r
}

int %patched(int %x) {
entry:
  %r = add int %x, 10
  ret int %r
}

int %main() {
entry:
  %before = call int %orig(int 0)
  call void %llva.smc.replace(int (int)* %orig, int (int)* %patched)
  %after = call int %orig(int 0)
  %both = mul int %after, 2
  %r = add int %before, %both
  ret int %r
}
|})

let test_fuel () =
  let m =
    Resolve.parse_module
      "int %main() {\nentry:\n  br label %loop\nloop:\n  br label %loop\n}"
  in
  let st = Interp.create ~fuel:1000 m in
  check_bool "infinite loop out of fuel" true
    (try
       ignore (Interp.run_main st);
       false
     with Interp.Out_of_fuel -> true)

let test_endianness_portability () =
  (* The same type-safe source behaves identically on all four target
     configurations (§3.2). *)
  let src target =
    Printf.sprintf
      {|
target pointersize = %d
target endian = %s

%%pair = type { int, int }

int %%main() {
entry:
  %%p = alloca %%pair
  %%f0 = getelementptr %%pair* %%p, long 0, ubyte 0
  %%f1 = getelementptr %%pair* %%p, long 0, ubyte 1
  store int 258, int* %%f0
  store int 513, int* %%f1
  %%a = load int* %%f0
  %%b = load int* %%f1
  %%r = add int %%a, %%b
  ret int %%r
}
|}
      (target.Target.ptr_size * 8)
      (match target.Target.endian with Target.Little -> "little" | Target.Big -> "big")
  in
  List.iter
    (fun t -> check_int ("portable on " ^ Target.to_string t) 771 (exit_code (src t)))
    Target.all

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "casts" `Quick test_casts;
    Alcotest.test_case "memory and gep" `Quick test_memory_and_gep;
    Alcotest.test_case "loop and phi" `Quick test_loop_and_phi;
    Alcotest.test_case "calls and recursion" `Quick test_calls_and_recursion;
    Alcotest.test_case "function pointers" `Quick test_function_pointers;
    Alcotest.test_case "runtime output" `Quick test_runtime_output;
    Alcotest.test_case "malloc/free" `Quick test_malloc_free;
    Alcotest.test_case "invoke/unwind" `Quick test_invoke_unwind;
    Alcotest.test_case "precise exceptions" `Quick test_precise_exceptions;
    Alcotest.test_case "trap handler" `Quick test_trap_handler;
    Alcotest.test_case "privileged intrinsics" `Quick test_privileged_intrinsics;
    Alcotest.test_case "smc replace" `Quick test_smc_replace;
    Alcotest.test_case "fuel" `Quick test_fuel;
    Alcotest.test_case "endianness portability" `Quick
      test_endianness_portability;
  ]
