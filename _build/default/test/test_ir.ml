(* Unit tests for IR construction, use lists, and the builder. *)

open Llva

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Build the paper's running example shape: a function with a diamond CFG
   and a phi at the join. *)
let build_diamond () =
  let m = Ir.mk_module ~name:"diamond" () in
  let f =
    Ir.mk_func ~name:"choose" ~return:Types.Int
      ~params:[ ("c", Types.Bool); ("a", Types.Int); ("b", Types.Int) ]
      ()
  in
  Ir.add_func m f;
  let entry = Ir.mk_block ~name:"entry" () in
  let then_b = Ir.mk_block ~name:"then" () in
  let else_b = Ir.mk_block ~name:"else" () in
  let join = Ir.mk_block ~name:"join" () in
  List.iter (Ir.append_block f) [ entry; then_b; else_b; join ];
  let bld = Builder.create m in
  let carg = Ir.Varg (List.nth f.Ir.fargs 0) in
  let aarg = Ir.Varg (List.nth f.Ir.fargs 1) in
  let barg = Ir.Varg (List.nth f.Ir.fargs 2) in
  Builder.position_at_end entry bld;
  Builder.cond_br bld carg then_b else_b;
  Builder.position_at_end then_b bld;
  let doubled = Builder.add ~name:"doubled" bld aarg aarg in
  Builder.br bld join;
  Builder.position_at_end else_b bld;
  let negated = Builder.sub ~name:"negated" bld (Ir.const_int Types.Int 0L) barg in
  Builder.br bld join;
  Builder.position_at_end join bld;
  let result =
    Builder.phi ~name:"result" bld Types.Int
      [ (doubled, then_b); (negated, else_b) ]
  in
  Builder.ret bld (Some result);
  (m, f, entry, then_b, else_b, join)

let test_diamond_structure () =
  let m, f, entry, then_b, else_b, join = build_diamond () in
  check_int "block count" 4 (List.length f.Ir.fblocks);
  check_int "instr count" 7 (Ir.instr_count f);
  check_bool "verifies" true (Verify.verify_module m = []);
  (* CFG *)
  let succs = Ir.successors entry in
  check_int "entry succs" 2 (List.length succs);
  check_bool "entry -> then" true (List.exists (fun b -> b == then_b) succs);
  let preds = Ir.predecessors join in
  check_int "join preds" 2 (List.length preds);
  check_bool "join pred else" true (List.exists (fun b -> b == else_b) preds);
  check_int "entry preds" 0 (List.length (Ir.predecessors entry))

let test_use_lists () =
  let _, f, _, then_b, _, join = build_diamond () in
  ignore f;
  (* the add instruction's result is used once, by the phi *)
  let add_instr = List.hd then_b.Ir.instrs in
  check_int "add uses" 1 (List.length add_instr.Ir.iuses);
  let phi = List.hd join.Ir.instrs in
  check_bool "used by phi" true ((List.hd add_instr.Ir.iuses).Ir.user == phi);
  (* replace all uses of add with a constant *)
  Ir.replace_all_uses_with (Ir.Vreg add_instr) (Ir.const_int Types.Int 7L);
  check_int "add uses after RAUW" 0 (List.length add_instr.Ir.iuses);
  (match (List.hd join.Ir.instrs).Ir.operands.(0) with
  | Ir.Const { ckind = Ir.Cint 7L; _ } -> ()
  | _ -> Alcotest.fail "phi operand not rewritten");
  (* removing the instruction clears its operand uses *)
  let args_use_before =
    List.length (List.nth f.Ir.fargs 1).Ir.auses
  in
  Ir.remove_instr add_instr;
  let args_use_after = List.length (List.nth f.Ir.fargs 1).Ir.auses in
  check_bool "arg use dropped" true (args_use_after < args_use_before)

let test_normalize_int () =
  let n = Ir.normalize_int in
  Alcotest.(check int64) "ubyte wraps" 255L (n Types.Ubyte (-1L));
  Alcotest.(check int64) "sbyte sign" (-1L) (n Types.Sbyte 255L);
  Alcotest.(check int64) "short sign" (-32768L) (n Types.Short 32768L);
  Alcotest.(check int64) "int wraps" (-2147483648L) (n Types.Int 2147483648L);
  Alcotest.(check int64) "uint masks" 4294967295L (n Types.Uint (-1L));
  Alcotest.(check int64) "bool" 1L (n Types.Bool 3L);
  Alcotest.(check int64) "long identity" Int64.min_int (n Types.Long Int64.min_int)

let test_phi_helpers () =
  let _, _, _, then_b, else_b, join = build_diamond () in
  let phi = List.hd join.Ir.instrs in
  check_int "incoming" 2 (List.length (Ir.phi_incoming phi));
  check_bool "value for then" true
    (Option.is_some (Ir.phi_value_for_block phi then_b));
  Ir.phi_remove_pred join else_b;
  check_int "incoming after removal" 1 (List.length (Ir.phi_incoming phi));
  check_bool "else edge gone" true
    (Option.is_none (Ir.phi_value_for_block phi else_b))

let test_terminators () =
  let _, f, entry, _, _, _ = build_diamond () in
  (match Ir.terminator entry with
  | Some t -> check_bool "cond br is terminator" true (Ir.is_terminator t)
  | None -> Alcotest.fail "entry has no terminator");
  check_int "opcode count is 28" 28 (List.length Ir.all_opcodes);
  (* round-trip opcode codes *)
  List.iter
    (fun op ->
      check_bool
        ("opcode roundtrip " ^ Ir.opcode_name op)
        true
        (Ir.opcode_of_code (Ir.opcode_code op) = op))
    Ir.all_opcodes;
  ignore f

let test_builder_type_errors () =
  let m = Ir.mk_module () in
  let f = Ir.mk_func ~name:"f" ~return:Types.Void ~params:[] () in
  Ir.add_func m f;
  let b = Ir.mk_block ~name:"entry" () in
  Ir.append_block f b;
  let bld = Builder.create m in
  Builder.position_at_end b bld;
  check_bool "mixed add rejected" true
    (try
       ignore (Builder.add bld (Ir.const_int Types.Int 1L) (Ir.const_int Types.Long 1L));
       false
     with Invalid_argument _ -> true);
  check_bool "non-bool branch rejected" true
    (try
       Builder.cond_br bld (Ir.const_int Types.Int 1L) b b;
       false
     with Invalid_argument _ -> true);
  check_bool "bad shift amount rejected" true
    (try
       ignore (Builder.shl bld (Ir.const_int Types.Int 1L) (Ir.const_int Types.Int 1L));
       false
     with Invalid_argument _ -> true)

let test_verifier_rejects () =
  (* block without terminator *)
  let m = Ir.mk_module () in
  let f = Ir.mk_func ~name:"f" ~return:Types.Void ~params:[] () in
  Ir.add_func m f;
  let b = Ir.mk_block ~name:"entry" () in
  Ir.append_block f b;
  Ir.append_instr b
    (Ir.mk_instr (Ir.Binop Ir.Add)
       [| Ir.const_int Types.Int 1L; Ir.const_int Types.Int 2L |]
       Types.Int);
  check_bool "missing terminator caught" true (Verify.verify_module m <> []);
  (* SSA violation: use before def across blocks *)
  let m2 = Ir.mk_module () in
  let f2 = Ir.mk_func ~name:"g" ~return:Types.Int ~params:[ ("c", Types.Bool) ] () in
  Ir.add_func m2 f2;
  let e = Ir.mk_block ~name:"entry" () in
  let b1 = Ir.mk_block ~name:"b1" () in
  let b2 = Ir.mk_block ~name:"b2" () in
  List.iter (Ir.append_block f2) [ e; b1; b2 ];
  let carg = Ir.Varg (List.hd f2.Ir.fargs) in
  let def_in_b2 =
    Ir.mk_instr ~name:"x" (Ir.Binop Ir.Add)
      [| Ir.const_int Types.Int 1L; Ir.const_int Types.Int 2L |]
      Types.Int
  in
  Ir.append_instr e
    (Ir.mk_instr Ir.Br [| carg; Ir.Vblock b1; Ir.Vblock b2 |] Types.Void);
  (* b1 uses %x, which is only defined in b2: not dominated *)
  Ir.append_instr b1 (Ir.mk_instr Ir.Ret [| Ir.Vreg def_in_b2 |] Types.Void);
  Ir.append_instr b2 def_in_b2;
  Ir.append_instr b2
    (Ir.mk_instr Ir.Ret [| Ir.Vreg def_in_b2 |] Types.Void);
  check_bool "dominance violation caught" true (Verify.verify_module m2 <> [])

let suite =
  [
    Alcotest.test_case "diamond structure" `Quick test_diamond_structure;
    Alcotest.test_case "use lists" `Quick test_use_lists;
    Alcotest.test_case "normalize int" `Quick test_normalize_int;
    Alcotest.test_case "phi helpers" `Quick test_phi_helpers;
    Alcotest.test_case "terminators" `Quick test_terminators;
    Alcotest.test_case "builder type errors" `Quick test_builder_type_errors;
    Alcotest.test_case "verifier rejects" `Quick test_verifier_rejects;
  ]

(* each §3.1 type rule rejects ill-typed IR built directly (bypassing the
   builder's checks) *)
let test_verifier_type_rules () =
  let with_main build =
    let m = Ir.mk_module () in
    let f =
      Ir.mk_func ~name:"main" ~return:Types.Int
        ~params:[ ("a", Types.Int); ("p", Types.Pointer Types.Int) ]
        ()
    in
    Ir.add_func m f;
    let b = Ir.mk_block ~name:"entry" () in
    Ir.append_block f b;
    build f b;
    Ir.append_instr b
      (Ir.mk_instr Ir.Ret [| Ir.const_int Types.Int 0L |] Types.Void);
    Verify.verify_module m <> []
  in
  let a_of f = Ir.Varg (List.nth f.Ir.fargs 0) in
  let p_of f = Ir.Varg (List.nth f.Ir.fargs 1) in
  check_bool "mixed-type add rejected" true
    (with_main (fun f b ->
         Ir.append_instr b
           (Ir.mk_instr (Ir.Binop Ir.Add)
              [| a_of f; Ir.const_int Types.Long 1L |]
              Types.Int)));
  check_bool "float xor rejected" true
    (with_main (fun _ b ->
         Ir.append_instr b
           (Ir.mk_instr (Ir.Binop Ir.Xor)
              [| Ir.const_float Types.Double 1.0; Ir.const_float Types.Double 2.0 |]
              Types.Double)));
  check_bool "shift amount must be ubyte" true
    (with_main (fun f b ->
         Ir.append_instr b
           (Ir.mk_instr (Ir.Binop Ir.Shl) [| a_of f; a_of f |] Types.Int)));
  check_bool "setcc must produce bool" true
    (with_main (fun f b ->
         Ir.append_instr b
           (Ir.mk_instr (Ir.Setcc Ir.Eq) [| a_of f; a_of f |] Types.Int)));
  check_bool "load from non-pointer rejected" true
    (with_main (fun f b ->
         Ir.append_instr b (Ir.mk_instr Ir.Load [| a_of f |] Types.Int)));
  check_bool "store type mismatch rejected" true
    (with_main (fun f b ->
         Ir.append_instr b
           (Ir.mk_instr Ir.Store
              [| Ir.const_int Types.Long 1L; p_of f |]
              Types.Void)));
  check_bool "call arity mismatch rejected" true
    (with_main (fun f b ->
         Ir.append_instr b
           (Ir.mk_instr Ir.Call [| Ir.Vfunc f; a_of f |] Types.Int)));
  check_bool "ret type mismatch rejected" true
    (with_main (fun f b ->
         ignore f;
         Ir.append_instr b
           (Ir.mk_instr Ir.Ret [| Ir.const_float Types.Double 0.0 |] Types.Void);
         (* unreachable trailing ret added by with_main makes two
            terminators, also caught *)
         ()));
  check_bool "gep non-integer index rejected" true
    (with_main (fun f b ->
         Ir.append_instr b
           (Ir.mk_instr Ir.Getelementptr
              [| p_of f; Ir.const_float Types.Double 1.0 |]
              (Types.Pointer Types.Int))));
  check_bool "phi predecessor mismatch rejected" true
    (with_main (fun f b ->
         let other = Ir.mk_block ~name:"other" () in
         Ir.append_block
           (match b.Ir.bparent with Some fn -> fn | None -> assert false)
           other;
         Ir.append_instr other
           (Ir.mk_instr Ir.Ret [| Ir.const_int Types.Int 1L |] Types.Void);
         (* a phi naming a non-predecessor *)
         let phi =
           Ir.mk_instr ~name:"bad" Ir.Phi
             [| a_of f; Ir.Vblock other |]
             Types.Int
         in
         Ir.prepend_instr b phi))

let suite =
  suite
  @ [ Alcotest.test_case "verifier type rules" `Quick test_verifier_type_rules ]
