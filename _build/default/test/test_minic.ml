(* MiniC front-end tests: real C programs through the full pipeline
   (compile -> verify -> interpret and both back-ends must agree), plus
   diagnostics. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let compile src = Minic.Mcodegen.compile_and_verify ~name:"test" src

(* run through interpreter; returns (exit code, output) *)
let run_c ?(fuel = 10_000_000) src =
  let m = compile src in
  let st = Interp.create ~fuel m in
  let code = Interp.run_main st in
  (code, Interp.output st)

(* run through every engine; all must agree *)
let run_everywhere ?(fuel = 10_000_000) src =
  let reference = run_c ~fuel src in
  let m1 = compile src in
  let x86 = X86lite.Compile.compile_module m1 in
  let xcode, xst = X86lite.Sim.run_main ~fuel:(fuel * 8) x86 in
  if (xcode, X86lite.Sim.output xst) <> reference then
    Alcotest.failf "x86 disagrees: (%d,%S) vs (%d,%S)" xcode
      (X86lite.Sim.output xst) (fst reference) (snd reference);
  let m2 = compile src in
  let sparc = Sparclite.Compile.compile_module m2 in
  let scode, sst = Sparclite.Sim.run_main ~fuel:(fuel * 8) sparc in
  if (scode, Sparclite.Sim.output sst) <> reference then
    Alcotest.failf "sparc disagrees: (%d,%S) vs (%d,%S)" scode
      (Sparclite.Sim.output sst) (fst reference) (snd reference);
  (* optimized also agrees *)
  let m3 = Minic.Mcodegen.compile_and_verify ~optimize:2 src in
  let st = Interp.create ~fuel m3 in
  let ocode = Interp.run_main st in
  if (ocode, Interp.output st) <> reference then
    Alcotest.failf "optimized disagrees: (%d,%S) vs (%d,%S)" ocode
      (Interp.output st) (fst reference) (snd reference);
  reference

let test_hello () =
  let code, out =
    run_everywhere
      {|
int main() {
  print_str("hello, world");
  print_nl();
  return 0;
}
|}
  in
  check_int "exit" 0 code;
  check_string "output" "hello, world\n" out

let test_factorial () =
  let code, out =
    run_everywhere
      {|
int fact(int n) {
  if (n <= 1) return 1;
  return n * fact(n - 1);
}
int main() {
  print_int(fact(10));
  return fact(5);
}
|}
  in
  check_int "fact 5" 120 code;
  check_string "fact 10" "3628800" out

let test_loops_and_arrays () =
  let code, out =
    run_everywhere
      {|
int main() {
  int a[10];
  int i, sum;
  for (i = 0; i < 10; i++) a[i] = i * i;
  sum = 0;
  for (i = 0; i < 10; i++) sum += a[i];
  print_int(sum);
  return 0;
}
|}
  in
  check_int "exit" 0 code;
  check_string "sum of squares" "285" out

let test_bubble_sort () =
  let _, out =
    run_everywhere
      {|
void sort(int *a, int n) {
  int i, j, t;
  for (i = 0; i < n - 1; i++)
    for (j = 0; j < n - 1 - i; j++)
      if (a[j] > a[j+1]) { t = a[j]; a[j] = a[j+1]; a[j+1] = t; }
}
int main() {
  int data[8];
  int i;
  data[0] = 42; data[1] = 7; data[2] = 19; data[3] = 3;
  data[4] = 99; data[5] = 1; data[6] = 55; data[7] = 23;
  sort(data, 8);
  for (i = 0; i < 8; i++) { print_int(data[i]); print_char(' '); }
  return 0;
}
|}
  in
  check_string "sorted" "1 3 7 19 23 42 55 99 " out

let test_structs_and_pointers () =
  let code, out =
    run_everywhere
      {|
struct point { int x; int y; };
struct rect { struct point lo; struct point hi; };

int area(struct rect *r) {
  return (r->hi.x - r->lo.x) * (r->hi.y - r->lo.y);
}
int main() {
  struct rect r;
  r.lo.x = 1; r.lo.y = 2;
  r.hi.x = 11; r.hi.y = 7;
  print_int(area(&r));
  return area(&r);
}
|}
  in
  check_int "area" 50 code;
  check_string "area printed" "50" out

let test_linked_list () =
  let _, out =
    run_everywhere
      {|
typedef struct Node { int value; struct Node *next; } Node;

Node *push(Node *head, int v) {
  Node *n = (Node *) malloc(sizeof(Node));
  n->value = v;
  n->next = head;
  return n;
}
int main() {
  Node *head = 0;
  int i, sum = 0;
  for (i = 1; i <= 10; i++) head = push(head, i);
  while (head) {
    sum += head->value;
    Node *dead = head;
    head = head->next;
    free((void*)dead);
  }
  print_int(sum);
  return 0;
}
|}
  in
  check_string "list sum" "55" out

let test_strings () =
  let _, out =
    run_everywhere
      {|
int my_strcmp(char *a, char *b) {
  while (*a && *a == *b) { a++; b++; }
  return (int)*a - (int)*b;
}
int main() {
  char buf[16];
  char *msg = "minic";
  int i = 0;
  while (msg[i]) { buf[i] = msg[i]; i++; }
  buf[i] = '\0';
  print_str(buf);
  print_nl();
  print_int(my_strcmp(buf, "minic"));
  print_int(my_strcmp("apple", "banana") < 0 ? -1 : 1);
  return 0;
}
|}
  in
  check_string "strings" "minic\n0-1" out

let test_switch () =
  let _, out =
    run_everywhere
      {|
int classify(int x) {
  switch (x) {
    case 0: return 100;
    case 1:
    case 2: return 200;
    case 3: {
      int t = x * 10;
      return t;
    }
    default: return -1;
  }
}
int main() {
  int i;
  for (i = 0; i < 5; i++) { print_int(classify(i)); print_char(','); }
  return 0;
}
|}
  in
  check_string "switch" "100,200,200,30,-1," out

let test_switch_fallthrough () =
  let _, out =
    run_everywhere
      {|
int main() {
  int i, acc = 0;
  for (i = 0; i < 4; i++) {
    switch (i) {
      case 0: acc += 1;  /* falls through */
      case 1: acc += 10; break;
      case 2: acc += 100; break;
      default: acc += 1000;
    }
  }
  print_int(acc);
  return 0;
}
|}
  in
  check_string "fallthrough" "1121" out

let test_function_pointers () =
  let _, out =
    run_everywhere
      {|
int twice(int x) { return 2 * x; }
int square(int x) { return x * x; }

int apply(int (*f)(int), int v) { return f(v); }

int main() {
  int (*ops[2])(int);
  int i;
  ops[0] = twice;
  ops[1] = square;
  for (i = 0; i < 2; i++) print_int(apply(ops[i], 6));
  return 0;
}
|}
  in
  check_string "fn pointers" "1236" out

let test_floats () =
  let _, out =
    run_everywhere
      {|
double poly(double x) { return 2.0 * x * x - 3.0 * x + 1.0; }

int main() {
  double sum = 0.0;
  int i;
  for (i = 0; i < 10; i++) sum += poly((double)i / 2.0);
  print_float(sum);
  print_nl();
  float f = 1.5f;
  double d = f * 2.0;
  print_float(d);
  return 0;
}
|}
  in
  check_string "floats" "85\n3" out

let test_unsigned_and_bits () =
  let _, out =
    run_everywhere
      {|
unsigned hash(unsigned x) {
  x ^= x >> 16;
  x *= 2654435761u;
  x ^= x >> 13;
  return x;
}
int main() {
  unsigned h = hash(12345);
  print_long((long)h);
  print_nl();
  unsigned char b = 200;
  b = b + 100;               /* wraps to 44 */
  print_int((int)b);
  print_nl();
  short s = 32767;
  s = s + 1;                 /* wraps negative */
  print_int((int)s);
  return 0;
}
|}
  in
  let parts = String.split_on_char '\n' out in
  check_int "three lines" 3 (List.length parts);
  check_string "uchar wrap" "44" (List.nth parts 1);
  check_string "short wrap" "-32768" (List.nth parts 2)

let test_globals () =
  let _, out =
    run_everywhere
      {|
int counter = 5;
int table[4] = {10, 20, 30, 40};
char *name = "global";
struct cfg { int a; int b; };
struct cfg conf = {7, 9};

int bump() { counter++; return counter; }

int main() {
  print_int(bump());
  print_int(bump());
  print_int(table[2]);
  print_str(name);
  print_int(conf.a + conf.b);
  return 0;
}
|}
  in
  check_string "globals" "6730global16" out

let test_enum_and_sizeof () =
  let _, out =
    run_everywhere
      {|
enum { RED, GREEN = 5, BLUE };
typedef struct Big { long a; int b; char c; } Big;

int main() {
  print_int(RED);
  print_int(GREEN);
  print_int(BLUE);
  print_nl();
  print_int((int)sizeof(int));
  print_int((int)sizeof(long));
  print_int((int)(sizeof(Big) >= 13u ? 1 : 0));
  return 0;
}
|}
  in
  check_string "enum+sizeof" "056\n481" out

let test_short_circuit () =
  let _, out =
    run_everywhere
      {|
int calls = 0;
int noisy(int v) { calls++; return v; }

int main() {
  int r1 = noisy(0) && noisy(1);   /* short-circuits: 1 call */
  int r2 = noisy(1) || noisy(1);   /* short-circuits: 1 call */
  print_int(r1); print_int(r2); print_int(calls);
  return 0;
}
|}
  in
  check_string "short circuit" "012" out

let test_ternary_and_incr () =
  let _, out =
    run_everywhere
      {|
int main() {
  int a = 5;
  int b = a++ + ++a;   /* 5 + 7 */
  int c = a > 6 ? a * 2 : a - 1;
  int arr[3];
  int *p = arr;
  arr[0] = 1; arr[1] = 2; arr[2] = 3;
  p++;
  print_int(b); print_char(' ');
  print_int(c); print_char(' ');
  print_int(*p); print_char(' ');
  print_int(*(p + 1));
  return 0;
}
|}
  in
  check_string "incr/ternary/ptr" "12 14 2 3" out

let test_2d_array () =
  let _, out =
    run_everywhere
      {|
int main() {
  int grid[4][4];
  int i, j, trace = 0;
  for (i = 0; i < 4; i++)
    for (j = 0; j < 4; j++)
      grid[i][j] = i * 4 + j;
  for (i = 0; i < 4; i++) trace += grid[i][i];
  print_int(trace);
  return 0;
}
|}
  in
  check_string "2d trace" "30" out

let test_do_while_break_continue () =
  let _, out =
    run_everywhere
      {|
int main() {
  int i = 0, acc = 0;
  do {
    i++;
    if (i % 2 == 0) continue;
    if (i > 9) break;
    acc += i;
  } while (i < 100);
  print_int(acc);
  return 0;
}
|}
  in
  check_string "do/break/continue" "25" out

let test_compile_errors () =
  let fails src =
    match Minic.Mcodegen.compile_and_verify src with
    | exception Minic.Mcodegen.Error _ -> true
    | exception Minic.Mparser.Error _ -> true
    | exception Minic.Mlexer.Error _ -> true
    | _ -> false
  in
  check_bool "unknown variable" true (fails "int main() { return x; }");
  check_bool "bad call arity" true
    (fails "int f(int a) { return a; } int main() { return f(); }");
  check_bool "unknown field" true
    (fails
       "struct s { int a; }; int main() { struct s v; return v.nope; }");
  check_bool "syntax error" true (fails "int main() { return 1 + ; }");
  check_bool "deref non-pointer" true
    (fails "int main() { int x; return *x; }")

let test_mem2reg_on_minic () =
  (* the front-end emits allocas for everything; mem2reg should remove
     nearly all of them *)
  let m =
    compile
      {|
int gcd(int a, int b) {
  while (b != 0) { int t = b; b = a % b; a = t; }
  return a;
}
int main() { return gcd(252, 105); }
|}
  in
  let count_allocas () =
    List.fold_left
      (fun acc f ->
        Llva.Ir.fold_instrs
          (fun n i -> if i.Llva.Ir.op = Llva.Ir.Alloca then n + 1 else n)
          acc f)
      0 m.Llva.Ir.funcs
  in
  let before = count_allocas () in
  check_bool "allocas before" true (before >= 3);
  ignore (Transform.Simplifycfg.run_module m);
  ignore (Transform.Mem2reg.run_module m);
  check_int "allocas after" 0 (count_allocas ());
  let st = Interp.create m in
  check_int "gcd" 21 (Interp.run_main st)

let suite =
  [
    Alcotest.test_case "hello" `Quick test_hello;
    Alcotest.test_case "factorial" `Quick test_factorial;
    Alcotest.test_case "loops and arrays" `Quick test_loops_and_arrays;
    Alcotest.test_case "bubble sort" `Quick test_bubble_sort;
    Alcotest.test_case "structs" `Quick test_structs_and_pointers;
    Alcotest.test_case "linked list" `Quick test_linked_list;
    Alcotest.test_case "strings" `Quick test_strings;
    Alcotest.test_case "switch" `Quick test_switch;
    Alcotest.test_case "switch fallthrough" `Quick test_switch_fallthrough;
    Alcotest.test_case "function pointers" `Quick test_function_pointers;
    Alcotest.test_case "floats" `Quick test_floats;
    Alcotest.test_case "unsigned and bits" `Quick test_unsigned_and_bits;
    Alcotest.test_case "globals" `Quick test_globals;
    Alcotest.test_case "enum and sizeof" `Quick test_enum_and_sizeof;
    Alcotest.test_case "short circuit" `Quick test_short_circuit;
    Alcotest.test_case "ternary and incr" `Quick test_ternary_and_incr;
    Alcotest.test_case "2d arrays" `Quick test_2d_array;
    Alcotest.test_case "do while break continue" `Quick
      test_do_while_break_continue;
    Alcotest.test_case "compile errors" `Quick test_compile_errors;
    Alcotest.test_case "mem2reg on minic" `Quick test_mem2reg_on_minic;
  ]
