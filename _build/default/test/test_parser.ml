(* Parser / printer tests, including the paper's Fig. 2 example and a
   qcheck round-trip property over randomly generated modules. *)

open Llva

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* The paper's Fig. 2(b) function, transliterated. *)
let fig2 =
  {|
; ModuleID = 'fig2'
target pointersize = 32
target endian = little
%struct.QuadTree = type { double, [4 x %QT*] }
%QT = type %struct.QuadTree

void %Sum3rdChildren(%QT* %T, double* %Result) {
entry:
  %V = alloca double
  %tmp.0 = seteq %QT* %T, null
  br bool %tmp.0, label %endif, label %else
else:
  %tmp.1 = getelementptr %QT* %T, long 0, ubyte 1, long 3
  %Child3 = load %QT** %tmp.1
  call void %Sum3rdChildren(%QT* %Child3, double* %V)
  %tmp.2 = load double* %V
  %tmp.3 = getelementptr %QT* %T, long 0, ubyte 0
  %tmp.4 = load double* %tmp.3
  %Ret.0 = add double %tmp.2, %tmp.4
  br label %endif
endif:
  %Ret.1 = phi double [ %Ret.0, %else ], [ 0.0, %entry ]
  store double %Ret.1, double* %Result
  ret void
}
|}

let test_fig2_parses () =
  let m = Resolve.parse_module ~name:"fig2" fig2 in
  check_int "one function" 1 (List.length m.Ir.funcs);
  check_int "typedefs" 2 (List.length m.Ir.typedefs);
  let f = Option.get (Ir.find_func m "Sum3rdChildren") in
  check_int "blocks" 3 (List.length f.Ir.fblocks);
  check_int "instrs" 14 (Ir.instr_count f);
  check_bool "verifies" true (Verify.verify_module m = []);
  check_bool "pointer size" true (m.Ir.target.Target.ptr_size = 4)

let test_fig2_roundtrip () =
  let m = Resolve.parse_module fig2 in
  let printed = Pretty.module_to_string m in
  let m2 = Resolve.parse_module printed in
  let printed2 = Pretty.module_to_string m2 in
  check_string "printer fixpoint" printed printed2;
  check_bool "reparse verifies" true (Verify.verify_module m2 = [])

let test_globals_roundtrip () =
  let src =
    {|
%msg = constant [6 x sbyte] c"hello\00"
%counter = global int 42
%table = global [3 x int] [ int 1, int 2, int 3 ]
%pair = global { int, double } { int 7, double 2.5 }
%ptr = global int* null
%zero = global [8 x double] zeroinitializer
%fptr = global void ()* %f

void %f() {
entry:
  ret void
}
|}
  in
  let m = Resolve.parse_module src in
  check_int "globals" 7 (List.length m.Ir.globals);
  let printed = Pretty.module_to_string m in
  let m2 = Resolve.parse_module printed in
  check_string "fixpoint" printed (Pretty.module_to_string m2);
  (* check the function-pointer initializer survived *)
  let fptr = Option.get (Ir.find_global m2 "fptr") in
  match (Option.get fptr.Ir.ginit).Ir.ckind with
  | Ir.Cglobal_ref "f" -> ()
  | _ -> Alcotest.fail "fptr initializer lost"

let test_all_instructions_roundtrip () =
  let src =
    {|
declare int %ext(int)
%g = global int 0

int %kitchen_sink(int %a, int %b, bool %c, double %x, int* %p) {
entry:
  %s1 = add int %a, %b
  %s2 = sub int %s1, %b
  %s3 = mul int %s2, %a
  %s4 = div int %s3, %b
  %s5 = rem int %s4, %b
  %b1 = and int %s5, %a
  %b2 = or int %b1, %b
  %b3 = xor int %b2, %a
  %sh1 = shl int %b3, ubyte 2
  %sh2 = shr int %sh1, ubyte 1
  %c1 = seteq int %sh2, %a
  %c2 = setne int %sh2, %a
  %c3 = setlt int %sh2, %a
  %c4 = setgt int %sh2, %a
  %c5 = setle int %sh2, %a
  %c6 = setge int %sh2, %a
  %mem = alloca int, uint 4
  store int %s1, int* %mem
  %lv = load int* %mem
  %gp = getelementptr int* %mem, long 2
  %cast1 = cast int %lv to double
  %cast2 = cast double %cast1 to int
  %call1 = call int %ext(int %cast2)
  %iv = invoke int %ext(int %call1) to label %cont except label %handler
cont:
  mbr int %iv, label %deflt [ int 1, label %one, int 2, label %two ]
one:
  br label %merge
two:
  br label %merge
deflt:
  br bool %c, label %merge, label %handler
handler:
  unwind
merge:
  %m = phi int [ 1, %one ], [ 2, %two ], [ 3, %deflt ]
  %dis = add int %m, %a @ee(true)
  %en = div int %m, %a @ee(false)
  ret int %m
}
|}
  in
  let m = Resolve.parse_module src in
  check_bool "verifies" true (Verify.verify_module m = []);
  let printed = Pretty.module_to_string m in
  let m2 = Resolve.parse_module printed in
  check_string "fixpoint" printed (Pretty.module_to_string m2);
  (* the @ee attribute round-trips *)
  let f = Option.get (Ir.find_func m2 "kitchen_sink") in
  let found_dis = ref false and found_en = ref false in
  Ir.iter_instrs
    (fun i ->
      if i.Ir.iname = "dis" then begin
        found_dis := true;
        check_bool "add with @ee(true)" true i.Ir.exceptions_enabled
      end;
      if i.Ir.iname = "en" then begin
        found_en := true;
        check_bool "div with @ee(false)" false i.Ir.exceptions_enabled
      end)
    f;
  check_bool "found dis" true !found_dis;
  check_bool "found en" true !found_en

let test_parse_errors () =
  let bad src =
    match Resolve.parse_module src with
    | exception Parser.Error _ -> true
    | exception Resolve.Error _ -> true
    | exception Lexer.Error _ -> true
    | _ -> false
  in
  check_bool "unknown instruction" true
    (bad "void %f() {\nentry:\n  frobnicate int 1\n}");
  check_bool "unknown value" true
    (bad "void %f() {\nentry:\n  %x = add int %nope, 1\n  ret void\n}");
  check_bool "duplicate ssa name" true
    (bad
       "void %f() {\nentry:\n  %x = add int 1, 1\n  %x = add int 2, 2\n  ret void\n}");
  check_bool "unterminated string" true (bad "%s = constant [2 x sbyte] c\"a");
  check_bool "unknown block" true
    (bad "void %f() {\nentry:\n  br label %nowhere\n}")

let test_default_exception_attrs () =
  let src =
    {|
void %f(int* %p, int %a, int %b) {
entry:
  %l = load int* %p
  %d = div int %a, %b
  %s = add int %a, %b
  store int %s, int* %p
  ret void
}
|}
  in
  let m = Resolve.parse_module src in
  let f = Option.get (Ir.find_func m "f") in
  Ir.iter_instrs
    (fun i ->
      match i.Ir.op with
      | Ir.Load | Ir.Store | Ir.Binop Ir.Div ->
          check_bool ("default ee " ^ Ir.opcode_name i.Ir.op) true
            i.Ir.exceptions_enabled
      | Ir.Binop Ir.Add ->
          check_bool "add default off" false i.Ir.exceptions_enabled
      | _ -> ())
    f

(* ---------- qcheck round-trip over generated straight-line modules ---------- *)

let gen_module : Ir.modl QCheck.arbitrary =
  let open QCheck.Gen in
  let gen =
    let* n_instrs = int_range 1 30 in
    let* seed = int_range 0 1_000_000 in
    let rand = Random.State.make [| seed |] in
    let m = Ir.mk_module ~name:"gen" () in
    let f =
      Ir.mk_func ~name:"gen_main" ~return:Types.Int
        ~params:[ ("a", Types.Int); ("b", Types.Int) ]
        ()
    in
    Ir.add_func m f;
    let b = Ir.mk_block ~name:"entry" () in
    Ir.append_block f b;
    let bld = Builder.create m in
    Builder.position_at_end b bld;
    let pool =
      ref
        [ Ir.Varg (List.nth f.Ir.fargs 0); Ir.Varg (List.nth f.Ir.fargs 1) ]
    in
    let pick () = List.nth !pool (Random.State.int rand (List.length !pool)) in
    for _ = 1 to n_instrs do
      let ops = [| Ir.Add; Ir.Sub; Ir.Mul; Ir.And; Ir.Or; Ir.Xor |] in
      let op = ops.(Random.State.int rand (Array.length ops)) in
      let v = Builder.binop bld op (pick ()) (pick ()) in
      pool := v :: !pool
    done;
    Builder.ret bld (Some (pick ()));
    return m
  in
  QCheck.make gen ~print:(fun m -> Pretty.module_to_string m)

let prop_roundtrip =
  QCheck.Test.make ~name:"print/parse roundtrip" ~count:100 gen_module (fun m ->
      let printed = Pretty.module_to_string m in
      let m2 = Resolve.parse_module printed in
      Verify.verify_module m2 = []
      && String.equal printed (Pretty.module_to_string m2))

let suite =
  [
    Alcotest.test_case "fig2 parses" `Quick test_fig2_parses;
    Alcotest.test_case "fig2 roundtrip" `Quick test_fig2_roundtrip;
    Alcotest.test_case "globals roundtrip" `Quick test_globals_roundtrip;
    Alcotest.test_case "all instructions roundtrip" `Quick
      test_all_instructions_roundtrip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "default exception attrs" `Quick
      test_default_exception_attrs;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]

(* fuzz: arbitrary text never hangs or escapes the declared error types *)
let prop_parser_total =
  QCheck.Test.make ~name:"parser total on junk input" ~count:500
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 200) QCheck.Gen.printable)
    (fun junk ->
      match Resolve.parse_module junk with
      | _ -> true
      | exception Parser.Error _ -> true
      | exception Lexer.Error _ -> true
      | exception Resolve.Error _ -> true
      | exception _ -> false)

(* fuzz: mutated valid programs also stay within the error contract *)
let prop_parser_total_mutated =
  QCheck.Test.make ~name:"parser total on mutated programs" ~count:300
    QCheck.(pair (int_range 0 10_000) (int_range 0 255))
    (fun (pos, byte) ->
      let base = fig2 in
      let pos = pos mod String.length base in
      let mutated =
        String.mapi (fun k c -> if k = pos then Char.chr byte else c) base
      in
      match Resolve.parse_module mutated with
      | _ -> true
      | exception Parser.Error _ -> true
      | exception Lexer.Error _ -> true
      | exception Resolve.Error _ -> true
      | exception Types.Unresolved _ -> true
      | exception _ -> false)

let suite =
  suite
  @ [
      QCheck_alcotest.to_alcotest prop_parser_total;
      QCheck_alcotest.to_alcotest prop_parser_total_mutated;
    ]

(* float constants survive print/parse exactly (the printer uses hex-float
   notation when needed) *)
let prop_float_roundtrip =
  QCheck.Test.make ~name:"float constant print/parse roundtrip" ~count:300
    QCheck.float (fun x ->
      QCheck.assume (Float.is_finite x);
      let m = Ir.mk_module ~name:"f" () in
      let g =
        Ir.mk_global ~name:"g" ~ty:Types.Double
          ~init:{ Ir.cty = Types.Double; ckind = Ir.Cfloat x }
          ()
      in
      Ir.add_global m g;
      let m2 = Resolve.parse_module (Pretty.module_to_string m) in
      match (Option.get (Ir.find_global m2 "g")).Ir.ginit with
      | Some { Ir.ckind = Ir.Cfloat y; _ } ->
          Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
      | _ -> false)

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_float_roundtrip ]
