(* Optimizer tests: each pass individually, pipelines, and a differential
   qcheck property — optimizing a random program must not change its
   observable behaviour (exit code + runtime output). *)

open Llva

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse = Gen.parse
let run = Gen.run_interp
let clone = Gen.clone

let assert_valid m =
  match Verify.verify_module m with
  | [] -> ()
  | errs -> Alcotest.failf "invalid after pass: %s" (String.concat "; " errs)

let test_mem2reg () =
  (* the Fig. 2 pattern: a local variable through an alloca *)
  let m =
    parse
      {|
int %main() {
entry:
  %x = alloca int
  store int 10, int* %x
  %c = setgt int 5, 3
  br bool %c, label %then, label %done
then:
  %v = load int* %x
  %v2 = add int %v, 32
  store int %v2, int* %x
  br label %done
done:
  %r = load int* %x
  ret int %r
}
|}
  in
  let before = run (clone m) in
  let promoted = Transform.Mem2reg.run_module m in
  assert_valid m;
  check_int "one alloca promoted" 1 promoted;
  let after = run m in
  check_bool "same result" true (before = after);
  check_int "result is 42" 42 (fst after);
  (* no loads/stores remain *)
  let f = Option.get (Ir.find_func m "main") in
  let mem_ops =
    Ir.fold_instrs
      (fun n i ->
        match i.Ir.op with Ir.Load | Ir.Store | Ir.Alloca -> n + 1 | _ -> n)
      0 f
  in
  check_int "memory ops gone" 0 mem_ops

let test_mem2reg_loop () =
  let m =
    parse
      {|
int %main() {
entry:
  %sum = alloca int
  %i = alloca int
  store int 0, int* %sum
  store int 0, int* %i
  br label %loop
loop:
  %iv = load int* %i
  %done = setge int %iv, 10
  br bool %done, label %exit, label %body
body:
  %sv = load int* %sum
  %s2 = add int %sv, %iv
  store int %s2, int* %sum
  %i2 = add int %iv, 1
  store int %i2, int* %i
  br label %loop
exit:
  %r = load int* %sum
  ret int %r
}
|}
  in
  check_int "before" 45 (fst (run (clone m)));
  let promoted = Transform.Mem2reg.run_module m in
  assert_valid m;
  check_int "two promoted" 2 promoted;
  check_int "after" 45 (fst (run m));
  (* loop phis were introduced *)
  let f = Option.get (Ir.find_func m "main") in
  let phis =
    Ir.fold_instrs (fun n i -> if i.Ir.op = Ir.Phi then n + 1 else n) 0 f
  in
  check_bool "phis introduced" true (phis >= 2)

let test_sccp () =
  let m =
    parse
      {|
int %main() {
entry:
  %a = add int 2, 3
  %b = mul int %a, 4
  %c = seteq int %b, 20
  br bool %c, label %taken, label %nottaken
taken:
  ret int %b
nottaken:
  %huge = mul int %b, %b
  ret int %huge
}
|}
  in
  let n = Transform.Sccp.run_module m in
  assert_valid m;
  check_bool "propagated" true (n > 0);
  ignore (Transform.Simplifycfg.run_module m);
  ignore (Transform.Dce.run_module m);
  assert_valid m;
  check_int "result" 20 (fst (run m));
  (* the dead branch must be gone *)
  let f = Option.get (Ir.find_func m "main") in
  check_bool "dead block removed" true (List.length f.Ir.fblocks <= 2)

let test_sccp_through_phi () =
  (* constants must propagate through phis when only one edge is live *)
  let m =
    parse
      {|
int %main() {
entry:
  %t = seteq int 1, 1
  br bool %t, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %v = phi int [ 7, %a ], [ 9, %b ]
  ret int %v
}
|}
  in
  ignore (Transform.Sccp.run_module m);
  ignore (Transform.Simplifycfg.run_module m);
  ignore (Transform.Dce.run_module m);
  assert_valid m;
  check_int "phi folded to 7" 7 (fst (run m));
  let f = Option.get (Ir.find_func m "main") in
  let rets_const =
    Ir.fold_instrs
      (fun acc i ->
        acc
        || (i.Ir.op = Ir.Ret
            && Array.length i.Ir.operands = 1
            &&
            match i.Ir.operands.(0) with
            | Ir.Const { ckind = Ir.Cint 7L; _ } -> true
            | _ -> false))
      false f
  in
  check_bool "ret uses literal 7" true rets_const

let test_gvn () =
  let m =
    parse
      {|
int %main(int %x, int %y) {
entry:
  %a = add int %x, %y
  %b = add int %x, %y
  %c = add int %y, %x
  %s1 = mul int %a, %b
  %s2 = mul int %s1, %c
  ret int %s2
}
|}
  in
  let n = Transform.Gvn.run_module m in
  assert_valid m;
  (* b and c both collapse onto a (commutativity) *)
  check_int "two adds eliminated" 2 n

let test_gvn_loads () =
  let m =
    parse
      {|
%g = global int 5

int %main() {
entry:
  %x = alloca int
  %y = alloca int
  store int 1, int* %x
  store int 2, int* %y
  %v1 = load int* %x
  store int 9, int* %y
  %v2 = load int* %x
  %s = add int %v1, %v2
  ret int %s
}
|}
  in
  let before = run (clone m) in
  let n = Transform.Gvn.run_module m in
  assert_valid m;
  check_bool "redundant load removed" true (n >= 1);
  check_bool "semantics kept" true (before = run m);
  check_int "result 2" 2 (fst before)

let test_instcombine () =
  let m =
    parse
      {|
int %main(int %x) {
entry:
  %a = add int %x, 0
  %b = mul int %a, 1
  %c = mul int %b, 8
  %d = sub int %c, %c
  %e = or int %d, %b
  %f = div uint 100, 4
  %g = cast uint %f to int
  %h = add int %e, %g
  ret int %h
}
|}
  in
  let n = Transform.Instcombine.run_module m in
  assert_valid m;
  check_bool "simplified" true (n >= 4);
  let f = Option.get (Ir.find_func m "main") in
  (* mul by 8 became shl *)
  let has_shl =
    Ir.fold_instrs
      (fun acc i -> acc || i.Ir.op = Ir.Binop Ir.Shl)
      false f
  in
  check_bool "mul became shl" true has_shl

let test_instcombine_preserves_traps () =
  (* div by zero with exceptions enabled must NOT be folded away *)
  let m =
    parse
      "int %main() {\nentry:\n  %x = div int 1, 0\n  ret int 5\n}"
  in
  ignore (Transform.Instcombine.run_module m);
  ignore (Transform.Dce.run_module m);
  assert_valid m;
  let st = Interp.create m in
  check_bool "trap preserved" true
    (try
       ignore (Interp.run_main st);
       false
     with Interp.Trap Interp.Division_by_zero -> true)

let test_simplifycfg () =
  let m =
    parse
      {|
int %main() {
entry:
  br bool true, label %live, label %dead
live:
  br label %fwd
fwd:
  br label %tail
dead:
  %x = add int 1, 2
  br label %tail
tail:
  %v = phi int [ 0, %fwd ], [ %x, %dead ]
  ret int %v
}
|}
  in
  let n = Transform.Simplifycfg.run_module m in
  assert_valid m;
  check_bool "simplified" true (n > 0);
  check_int "result" 0 (fst (run m));
  let f = Option.get (Ir.find_func m "main") in
  check_int "single block remains" 1 (List.length f.Ir.fblocks)

let test_licm () =
  let m =
    parse
      {|
%g = global int 37

int %main(int %n) {
entry:
  br label %loop
loop:
  %i = phi int [ 0, %entry ], [ %inext, %loop ]
  %acc = phi int [ 0, %entry ], [ %accnext, %loop ]
  %inv = mul int 6, 7
  %gv = load int* %g
  %t = add int %inv, %gv
  %accnext = add int %acc, %t
  %inext = add int %i, 1
  %done = setge int %inext, 10
  br bool %done, label %exit, label %loop
exit:
  ret int %accnext
}
|}
  in
  let before = run (clone m) in
  let n = Transform.Licm.run_module m in
  assert_valid m;
  check_bool "hoisted" true (n >= 2);
  check_bool "semantics kept" true (before = run m);
  (* the invariant mul and load are out of the loop *)
  let f = Option.get (Ir.find_func m "main") in
  let loops = Analysis.Loops.of_function f in
  let l = List.hd loops.Analysis.Loops.loops in
  let in_loop_muls =
    List.fold_left
      (fun acc (b : Ir.block) ->
        List.fold_left
          (fun acc (i : Ir.instr) ->
            match i.Ir.op with
            | Ir.Binop Ir.Mul | Ir.Load -> acc + 1
            | _ -> acc)
          acc b.Ir.instrs)
      0 l.Analysis.Loops.body
  in
  check_int "invariants out of loop" 0 in_loop_muls

let test_inline () =
  let m =
    parse
      {|
int %square(int %x) {
entry:
  %r = mul int %x, %x
  ret int %r
}

int %clamp(int %x) {
entry:
  %neg = setlt int %x, 0
  br bool %neg, label %zero, label %pos
zero:
  ret int 0
pos:
  ret int %x
}

int %main() {
entry:
  %a = call int %square(int 6)
  %b = call int %clamp(int -5)
  %c = call int %clamp(int %a)
  %s1 = add int %a, %b
  %s2 = add int %s1, %c
  ret int %s2
}
|}
  in
  let before = run (clone m) in
  let n = Transform.Inline.run_module m in
  assert_valid m;
  check_int "three sites inlined" 3 n;
  check_bool "semantics kept" true (before = run m);
  check_int "value" 72 (fst before);
  (* no calls remain in main *)
  let f = Option.get (Ir.find_func m "main") in
  let calls =
    Ir.fold_instrs (fun n i -> if i.Ir.op = Ir.Call then n + 1 else n) 0 f
  in
  check_int "no calls left" 0 calls

let test_inline_respects_recursion () =
  let m =
    parse
      {|
int %fact(int %n) {
entry:
  %base = setle int %n, 1
  br bool %base, label %one, label %rec
one:
  ret int 1
rec:
  %n1 = sub int %n, 1
  %r = call int %fact(int %n1)
  %p = mul int %n, %r
  ret int %p
}

int %main() {
entry:
  %r = call int %fact(int 5)
  ret int %r
}
|}
  in
  let n = Transform.Inline.run_module m in
  assert_valid m;
  check_int "recursive not inlined" 0 n;
  check_int "fact 5" 120 (fst (run m))

let test_globaldce () =
  let m =
    parse
      {|
%used = global int 3
%unused = global int 4

void %dead_helper() {
entry:
  ret void
}

int %main() {
entry:
  %v = load int* %used
  ret int %v
}
|}
  in
  let n = Transform.Globaldce.run_module m in
  assert_valid m;
  check_int "two removed" 2 n;
  check_int "funcs" 1 (List.length m.Ir.funcs);
  check_int "globals" 1 (List.length m.Ir.globals);
  check_int "still works" 3 (fst (run m))

let test_full_pipeline () =
  let m =
    parse
      {|
%data = global [4 x int] [ int 3, int 1, int 4, int 1 ]

int %get(int %k) {
entry:
  %p = getelementptr [4 x int]* %data, long 0, int %k
  %v = load int* %p
  ret int %v
}

int %main() {
entry:
  %t = alloca int
  store int 0, int* %t
  br label %loop
loop:
  %i = phi int [ 0, %entry ], [ %inext, %loop ]
  %cur = load int* %t
  %elem = call int %get(int %i)
  %next = add int %cur, %elem
  store int %next, int* %t
  %inext = add int %i, 1
  %done = setge int %inext, 4
  br bool %done, label %exit, label %loop
exit:
  %r = load int* %t
  ret int %r
}
|}
  in
  let before = run (clone m) in
  let n = Transform.Passmgr.optimize ~level:2 ~verify:true m in
  check_bool "changes made" true (n > 0);
  check_bool "semantics kept" true (before = run m);
  check_int "sum" 9 (fst before)

(* ---------- differential qcheck: optimize preserves semantics ---------- *)

let gen_program = Gen.gen_program

let prop_optimize_preserves =
  QCheck.Test.make ~name:"optimize preserves semantics" ~count:120 gen_program
    (fun m ->
      (match Verify.verify_module m with
      | [] -> ()
      | errs -> QCheck.Test.fail_reportf "generated invalid: %s" (String.concat ";" errs));
      let reference = run (clone m) in
      let opt = clone m in
      let _ = Transform.Passmgr.optimize ~level:2 ~verify:true opt in
      let optimized = run opt in
      reference = optimized)

let suite =
  [
    Alcotest.test_case "mem2reg" `Quick test_mem2reg;
    Alcotest.test_case "mem2reg loop" `Quick test_mem2reg_loop;
    Alcotest.test_case "sccp" `Quick test_sccp;
    Alcotest.test_case "sccp through phi" `Quick test_sccp_through_phi;
    Alcotest.test_case "gvn" `Quick test_gvn;
    Alcotest.test_case "gvn loads" `Quick test_gvn_loads;
    Alcotest.test_case "instcombine" `Quick test_instcombine;
    Alcotest.test_case "instcombine preserves traps" `Quick
      test_instcombine_preserves_traps;
    Alcotest.test_case "simplifycfg" `Quick test_simplifycfg;
    Alcotest.test_case "licm" `Quick test_licm;
    Alcotest.test_case "inline" `Quick test_inline;
    Alcotest.test_case "inline respects recursion" `Quick
      test_inline_respects_recursion;
    Alcotest.test_case "globaldce" `Quick test_globaldce;
    Alcotest.test_case "full pipeline" `Quick test_full_pipeline;
    QCheck_alcotest.to_alcotest prop_optimize_preserves;
  ]

let test_deadargelim () =
  let m =
    parse
      {|
int %used_and_unused(int %a, int %dead, int %b) {
entry:
  %s = add int %a, %b
  ret int %s
}

int %main() {
entry:
  %r1 = call int %used_and_unused(int 1, int 999, int 2)
  %r2 = call int %used_and_unused(int 3, int 888, int 4)
  %s = add int %r1, %r2
  ret int %s
}
|}
  in
  let before = run (clone m) in
  let n = Transform.Deadargelim.run_module m in
  assert_valid m;
  check_int "one argument removed" 1 n;
  check_bool "semantics kept" true (before = run m);
  let f = Option.get (Ir.find_func m "used_and_unused") in
  check_int "two params remain" 2 (List.length f.Ir.fargs);
  (* call sites shrank too *)
  let main = Option.get (Ir.find_func m "main") in
  Ir.iter_instrs
    (fun i ->
      if i.Ir.op = Ir.Call then
        check_int "call has 2 args" 2 (List.length (Ir.call_args i)))
    main

let test_deadargelim_respects_address_taken () =
  let m =
    parse
      {|
%table = global [1 x int (int, int)*] [ int (int, int)* %escapes ]

int %escapes(int %a, int %dead) {
entry:
  ret int %a
}

int %main() {
entry:
  %p = getelementptr [1 x int (int, int)*]* %table, long 0, long 0
  %fp = load int (int, int)** %p
  %r = call int (int, int)* %fp(int 5, int 6)
  ret int %r
}
|}
  in
  let n = Transform.Deadargelim.run_module m in
  assert_valid m;
  check_int "address-taken function untouched" 0 n;
  check_int "still works" 5 (fst (run m))

let extra_suite =
  [
    Alcotest.test_case "deadargelim" `Quick test_deadargelim;
    Alcotest.test_case "deadargelim address taken" `Quick
      test_deadargelim_respects_address_taken;
  ]

let suite = suite @ extra_suite
