(* Unit tests for the LLVA type system. *)

open Llva

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let test_classification () =
  check_bool "int is integer" true (Types.is_integer Types.Int);
  check_bool "uint is integer" true (Types.is_integer Types.Uint);
  check_bool "float not integer" false (Types.is_integer Types.Float);
  check_bool "bool not integer" false (Types.is_integer Types.Bool);
  check_bool "int is signed" true (Types.is_signed Types.Int);
  check_bool "uint not signed" false (Types.is_signed Types.Uint);
  check_bool "double is fp" true (Types.is_fp Types.Double);
  check_bool "pointer is scalar" true (Types.is_scalar (Types.Pointer Types.Int));
  check_bool "struct not scalar" false (Types.is_scalar (Types.Struct [ Types.Int ]));
  check_bool "array not scalar" false
    (Types.is_scalar (Types.Array (4, Types.Int)))

let test_bitwidth () =
  check_int "bool" 1 (Types.bitwidth Types.Bool);
  check_int "sbyte" 8 (Types.bitwidth Types.Sbyte);
  check_int "short" 16 (Types.bitwidth Types.Short);
  check_int "int" 32 (Types.bitwidth Types.Int);
  check_int "ulong" 64 (Types.bitwidth Types.Ulong);
  Alcotest.check_raises "float has no bitwidth"
    (Invalid_argument "Types.bitwidth: not an integer type") (fun () ->
      ignore (Types.bitwidth Types.Float))

let test_to_string () =
  check_string "pointer" "int*" (Types.to_string (Types.Pointer Types.Int));
  check_string "array" "[4 x double]"
    (Types.to_string (Types.Array (4, Types.Double)));
  check_string "struct" "{ double, [4 x %QT*] }"
    (Types.to_string
       (Types.Struct
          [ Types.Double; Types.Array (4, Types.Pointer (Types.Named "QT")) ]));
  check_string "function" "int (int, sbyte**)"
    (Types.to_string
       (Types.Func
          (Types.Int, [ Types.Int; Types.Pointer (Types.Pointer Types.Sbyte) ], false)));
  check_string "varargs" "void (int, ...)"
    (Types.to_string (Types.Func (Types.Void, [ Types.Int ], true)))

let test_named_resolution () =
  let env = Types.empty_env () in
  Hashtbl.replace env "QT"
    (Types.Struct [ Types.Double; Types.Array (4, Types.Pointer (Types.Named "QT")) ]);
  (match Types.resolve env (Types.Named "QT") with
  | Types.Struct [ Types.Double; Types.Array (4, Types.Pointer (Types.Named "QT")) ]
    ->
      ()
  | t -> Alcotest.failf "unexpected resolution: %s" (Types.to_string t));
  Alcotest.check_raises "unresolved name" (Types.Unresolved "nope") (fun () ->
      ignore (Types.resolve env (Types.Named "nope")));
  check_bool "equal up to names" true
    (Types.equal_resolved env (Types.Named "QT")
       (Types.Struct
          [ Types.Double; Types.Array (4, Types.Pointer (Types.Named "QT")) ]))

let test_signed_variants () =
  check_bool "signed of uint" true
    (Types.equal (Types.signed_variant Types.Uint) Types.Int);
  check_bool "unsigned of long" true
    (Types.equal (Types.unsigned_variant Types.Long) Types.Ulong);
  check_bool "signed of double unchanged" true
    (Types.equal (Types.signed_variant Types.Double) Types.Double)

let test_equality () =
  check_bool "struct equality" true
    (Types.equal (Types.Struct [ Types.Int; Types.Float ])
       (Types.Struct [ Types.Int; Types.Float ]));
  check_bool "struct length differs" false
    (Types.equal (Types.Struct [ Types.Int ]) (Types.Struct [ Types.Int; Types.Int ]));
  check_bool "array length matters" false
    (Types.equal (Types.Array (3, Types.Int)) (Types.Array (4, Types.Int)));
  check_bool "named by name" true (Types.equal (Types.Named "a") (Types.Named "a"));
  check_bool "named differs" false (Types.equal (Types.Named "a") (Types.Named "b"))

let suite =
  [
    Alcotest.test_case "classification" `Quick test_classification;
    Alcotest.test_case "bitwidth" `Quick test_bitwidth;
    Alcotest.test_case "to_string" `Quick test_to_string;
    Alcotest.test_case "named resolution" `Quick test_named_resolution;
    Alcotest.test_case "signed variants" `Quick test_signed_variants;
    Alcotest.test_case "equality" `Quick test_equality;
  ]
