(* Workload-suite tests: all 17 benchmark programs compile, verify and
   self-check; optimization preserves their behaviour; a subset runs
   differentially through both native back-ends. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let interp_run ?(fuel = 60_000_000) m =
  let st = Interp.create ~fuel m in
  let code = Interp.run_main st in
  (code, Interp.output st)

let test_all_compile_and_selfcheck () =
  check_int "17 workloads" 17 (List.length Workloads.all);
  List.iter
    (fun w ->
      let m = Workloads.compile w in
      check_bool (w.Workloads.name ^ " verifies") true
        (Llva.Verify.verify_module m = []);
      let code, out = interp_run m in
      check_int (w.Workloads.name ^ " exit 0") 0 code;
      check_bool
        (w.Workloads.name ^ " prints a summary")
        true
        (String.length out > 10);
      (* every workload's self-check markers must not report errors *)
      check_bool
        (w.Workloads.name ^ " self-check")
        false
        (let has sub =
           let n = String.length sub and m' = String.length out in
           let rec go i =
             i + n <= m' && (String.sub out i n = sub || go (i + 1))
           in
           go 0
         in
         has "errors=1" || has "consistent=0" || has "overlaps=1"))
    Workloads.all

let test_optimization_preserves_workloads () =
  List.iter
    (fun w ->
      let reference = interp_run (Workloads.compile w) in
      let opt = Workloads.compile_optimized ~level:2 w in
      check_bool
        (w.Workloads.name ^ " optimized verifies")
        true
        (Llva.Verify.verify_module opt = []);
      let result = interp_run opt in
      if result <> reference then
        Alcotest.failf "%s: optimized (%d,%S) vs reference (%d,%S)"
          w.Workloads.name (fst result) (snd result) (fst reference)
          (snd reference);
      (* optimization should shrink the dynamic instruction count *)
      let st_ref = Interp.create ~fuel:60_000_000 (Workloads.compile w) in
      ignore (Interp.run_main st_ref);
      let st_opt = Interp.create ~fuel:60_000_000 (Workloads.compile_optimized w) in
      ignore (Interp.run_main st_opt);
      check_bool
        (Printf.sprintf "%s: optimization helps (%d -> %d)" w.Workloads.name
           st_ref.Interp.stats.Interp.steps st_opt.Interp.stats.Interp.steps)
        true
        (st_opt.Interp.stats.Interp.steps < st_ref.Interp.stats.Interp.steps))
    Workloads.all

(* small subset through the full native pipeline; the bench harness runs
   the complete matrix *)
let native_subset = [ "255.vortex"; "186.crafty"; "256.bzip2"; "183.equake" ]

let test_native_subset () =
  List.iter
    (fun name ->
      let w = Option.get (Workloads.find name) in
      let reference = interp_run (Workloads.compile w) in
      let x86 = X86lite.Compile.compile_module (Workloads.compile w) in
      let xc, xst = X86lite.Sim.run_main x86 in
      if (xc, X86lite.Sim.output xst) <> reference then
        Alcotest.failf "%s x86 disagrees" name;
      let sparc = Sparclite.Compile.compile_module (Workloads.compile w) in
      let sc, sst = Sparclite.Sim.run_main sparc in
      if (sc, Sparclite.Sim.output sst) <> reference then
        Alcotest.failf "%s sparc disagrees" name;
      (* optimized native *)
      let xo =
        X86lite.Compile.compile_module ~linear_scan:true
          (Workloads.compile_optimized w)
      in
      let oc, ost = X86lite.Sim.run_main xo in
      if (oc, X86lite.Sim.output ost) <> reference then
        Alcotest.failf "%s optimized x86 disagrees" name)
    native_subset

let test_expansion_ratios_in_paper_range () =
  (* static LLVA -> native expansion over the whole suite should land in
     the paper's neighbourhood: X86 2.2-3.3, SPARC 2.4-4.2 (we accept a
     wider band; the shape that matters is sparc >= x86 on average) *)
  let total_llva = ref 0 and total_x86 = ref 0 and total_sparc = ref 0 in
  List.iter
    (fun w ->
      let m = Workloads.compile w in
      total_llva := !total_llva + Llva.Ir.module_instr_count m;
      let x86 = X86lite.Compile.compile_module (Workloads.compile w) in
      total_x86 := !total_x86 + X86lite.Compile.module_instr_count x86;
      let sparc = Sparclite.Compile.compile_module (Workloads.compile w) in
      total_sparc := !total_sparc + Sparclite.Compile.module_instr_count sparc)
    Workloads.all;
  let rx = float_of_int !total_x86 /. float_of_int !total_llva in
  let rs = float_of_int !total_sparc /. float_of_int !total_llva in
  check_bool (Printf.sprintf "x86 ratio %.2f in [1.5, 6]" rx) true (rx >= 1.5 && rx <= 6.0);
  check_bool (Printf.sprintf "sparc ratio %.2f in [1.5, 6]" rs) true (rs >= 1.5 && rs <= 6.0)

let test_object_code_smaller_than_native () =
  (* Table 2's central size claim: virtual object code is smaller than
     native code *)
  List.iter
    (fun name ->
      let w = Option.get (Workloads.find name) in
      let m = Workloads.compile w in
      let virtual_size = String.length (Llva.Encode.encode m) in
      let x86 = X86lite.Compile.compile_module (Workloads.compile w) in
      let native_size = X86lite.Compile.module_code_size x86 in
      check_bool
        (Printf.sprintf "%s: llva %dB < native %dB" name virtual_size
           native_size)
        true (virtual_size < native_size))
    [ "ptrdist-anagram"; "181.mcf"; "164.gzip"; "254.gap" ]

let test_roundtrip_object_code () =
  (* shipping the workloads as virtual object code preserves behaviour *)
  List.iter
    (fun name ->
      let w = Option.get (Workloads.find name) in
      let m = Workloads.compile w in
      let reference = interp_run m in
      let shipped = Llva.Decode.decode (Llva.Encode.encode (Workloads.compile w)) in
      check_bool (name ^ " decoded verifies") true
        (Llva.Verify.verify_module shipped = []);
      let result = interp_run shipped in
      check_bool (name ^ " object-code roundtrip") true (result = reference))
    [ "255.vortex"; "ptrdist-anagram" ]

let suite =
  [
    Alcotest.test_case "all compile and self-check" `Slow
      test_all_compile_and_selfcheck;
    Alcotest.test_case "optimization preserves" `Slow
      test_optimization_preserves_workloads;
    Alcotest.test_case "native subset" `Slow test_native_subset;
    Alcotest.test_case "expansion ratios" `Quick
      test_expansion_ratios_in_paper_range;
    Alcotest.test_case "object code smaller" `Quick
      test_object_code_smaller_than_native;
    Alcotest.test_case "object code roundtrip" `Quick
      test_roundtrip_object_code;
  ]
