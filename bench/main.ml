(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md §4 for the experiment index).

     table2       - the paper's Table 2 over the 17-workload suite
     fig2         - the paper's Fig. 2 C -> LLVA example
     llee         - cold/warm/offline launches through the LLEE manager
     trace        - software trace cache: relayout effect on dynamic counts
     ablation     - optimizer levels and register allocators
     portability  - one virtual object code on all four target configs
     micro        - bechamel micro-benchmarks of the translator pipeline

   Run with no arguments to execute everything. *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* wall-clock of [f], best of [n] runs *)
let time_best ?(n = 3) f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to n do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (Option.get !result, !best)

(* ------------------------------------------------------------------ *)
(* Table 2                                                             *)
(* ------------------------------------------------------------------ *)

type row = {
  r_name : string;
  r_loc : int;
  r_native_kb : float;
  r_llva_kb : float;
  r_llva_n : int;
  r_x86_n : int;
  r_sparc_n : int;
  r_translate : float; (* seconds, wall clock, whole program JIT *)
  r_run : float; (* seconds, simulated cycles @ 1 GHz *)
}

let table2_row (w : Workloads.workload) : row =
  (* the paper applied the same LLVA optimizations to both the virtual and
     the native code; we optimize at -O2 once and measure both from it *)
  let m = Workloads.compile_optimized ~level:2 w in
  let llva_bytes = String.length (Llva.Encode.encode m) in
  let llva_n = Llva.Ir.module_instr_count m in
  (* global data is part of both images; count it into the native size
     the way a linked executable carries its .data segment *)
  let lt = Vmem.Layout.for_module m in
  (* initialized data only: zero-filled globals live in .bss, which takes
     no space in either image *)
  let data_bytes =
    List.fold_left
      (fun acc g ->
        match g.Llva.Ir.ginit with
        | Some { Llva.Ir.ckind = Llva.Ir.Czero; _ } | None -> acc
        | Some _ -> acc + Vmem.Layout.size_of lt g.Llva.Ir.gty)
      0 m.Llva.Ir.globals
  in
  (* translation time: JIT-compile the whole program (like the paper's
     X86 JIT timing column), wall clock, best of 3 *)
  let x86, translate =
    time_best (fun () ->
        X86lite.Compile.compile_module (Workloads.compile_optimized ~level:2 w))
  in
  (* the paper's static SPARC V9 back-end: simple register allocation,
     like its X86 JIT (its "higher quality" refers to instruction
     selection; see EXPERIMENTS.md) *)
  let sparc =
    Sparclite.Compile.compile_module ~spill_everything:true
      (Workloads.compile_optimized ~level:2 w)
  in
  let x86_n = X86lite.Compile.module_instr_count x86 in
  let sparc_n = Sparclite.Compile.module_instr_count sparc in
  (* the paper's native size column is the statically compiled SPARC V9
     executable *)
  let native_bytes = Sparclite.Compile.module_code_size sparc + data_bytes in
  (* run time: the paper's run column is natively compiled optimized
     code (gcc -O3); ours is the linear-scan X86-lite build, simulated at
     1 GHz *)
  let best_x86 =
    X86lite.Compile.compile_module ~linear_scan:true
      (Workloads.compile_optimized ~level:2 w)
  in
  let _, st = X86lite.Sim.run_main best_x86 in
  let run = Int64.to_float st.X86lite.Sim.cycles /. 1e9 in
  {
    r_name = w.Workloads.name;
    r_loc = Workloads.loc w;
    r_native_kb = float_of_int native_bytes /. 1024.0;
    r_llva_kb = float_of_int llva_bytes /. 1024.0;
    r_llva_n = llva_n;
    r_x86_n = x86_n;
    r_sparc_n = sparc_n;
    r_translate = translate;
    r_run = run;
  }

let run_table2 () =
  section "Table 2: code size and low-level nature of the V-ISA";
  Printf.printf
    "%-17s %5s %10s %9s %7s %7s %6s %7s %6s %10s %9s %7s\n" "Program" "LOC"
    "Native KB" "LLVA KB" "#LLVA" "#X86" "Ratio" "#SPARC" "Ratio" "Trans (s)"
    "Run (s)" "Ratio";
  let rows = List.map table2_row Workloads.all in
  let tot = List.fold_left in
  List.iter
    (fun r ->
      Printf.printf
        "%-17s %5d %10.1f %9.1f %7d %7d %6.2f %7d %6.2f %10.4f %9.4f %7.4f\n"
        r.r_name r.r_loc r.r_native_kb r.r_llva_kb r.r_llva_n r.r_x86_n
        (float_of_int r.r_x86_n /. float_of_int r.r_llva_n)
        r.r_sparc_n
        (float_of_int r.r_sparc_n /. float_of_int r.r_llva_n)
        r.r_translate r.r_run
        (r.r_translate /. r.r_run))
    rows;
  let sum f = tot (fun acc r -> acc +. f r) 0.0 rows in
  let llva_total = sum (fun r -> float_of_int r.r_llva_n) in
  let x86_total = sum (fun r -> float_of_int r.r_x86_n) in
  let sparc_total = sum (fun r -> float_of_int r.r_sparc_n) in
  Printf.printf
    "\nSummary (shape checks against the paper):\n\
    \  native/LLVA size ratio : %.2fx   (paper: 1.3x-2x for its larger rows;\n\
    \                                    'smaller programs have even larger\n\
    \                                    ratios' -- all our rows are small)\n\
    \  LLVA->X86 expansion    : %.2fx   (paper: 2.2 - 3.3)\n\
    \  LLVA->SPARC expansion  : %.2fx   (paper: 2.3 - 4.2; RISC > CISC: %b)\n\
    \  translate/run ratio    : %.4f mean (paper: negligible 'except for\n\
    \                                    very short runs' -- our simulated\n\
    \                                    runs are milliseconds, i.e. all\n\
    \                                    short; see EXPERIMENTS.md)\n"
    (sum (fun r -> r.r_native_kb) /. sum (fun r -> r.r_llva_kb))
    (x86_total /. llva_total)
    (sparc_total /. llva_total)
    (sparc_total > x86_total)
    (sum (fun r -> r.r_translate /. r.r_run) /. float_of_int (List.length rows));
  rows

(* ------------------------------------------------------------------ *)
(* Fig. 2                                                              *)
(* ------------------------------------------------------------------ *)

let fig2_c =
  {|
typedef struct QuadTree {
  double Data;
  struct QuadTree *Children[4];
} QT;

void Sum3rdChildren(QT *T, double *Result) {
  double Ret;
  if (T == 0) {
    Ret = 0.0;
  } else {
    QT *Child3 = T[0].Children[3];
    double V;
    Sum3rdChildren(Child3, &V);
    Ret = V + T[0].Data;
  }
  *Result = Ret;
}

int main() { return 0; }
|}

let run_fig2 () =
  section "Fig. 2: C -> LLVA for the paper's QuadTree example";
  let m = Minic.Mcodegen.compile_and_verify ~name:"fig2" fig2_c in
  (* show the function after the compile-time pipeline, which is the
     form the paper's static compiler would emit *)
  ignore (Transform.Passmgr.optimize ~level:1 m);
  (match Llva.Ir.find_func m "Sum3rdChildren" with
  | Some f -> print_string (Llva.Pretty.func_to_string f)
  | None -> print_endline "(function missing!)");
  Printf.printf "module verifies: %b\n" (Llva.Verify.verify_module m = [])

(* ------------------------------------------------------------------ *)
(* LLEE: offline caching (Fig. 1 / Fig. 3 system organization)          *)
(* ------------------------------------------------------------------ *)

(* wrap a storage so we can count how many reads a launch performs *)
let counting_storage s =
  let reads = ref 0 in
  ( {
      s with
      Llee.Storage.read =
        (fun name ->
          incr reads;
          s.Llee.Storage.read name);
    },
    reads )

type llee_row = {
  l_name : string;
  l_cold_n : int; (* functions JITed on the cold launch *)
  l_cold_ms : float; (* cold-launch translate time *)
  l_warm_ms : float; (* warm-launch translate time (should be ~0) *)
  l_warm_hits : int;
  l_warm_reads : int; (* storage reads on a warm-after-offline launch *)
  l_off_seq : float; (* sequential offline translation, seconds *)
  l_off_par : float; (* parallel offline translation, seconds *)
  l_off_same : bool; (* parallel cache contents == sequential *)
  l_cycles : int64; (* simulated cycles of the workload *)
  l_lint_cold_ms : float; (* cold launch: full llva-lint analysis *)
  l_lint_warm_ms : float; (* warm launch: read + decode the verdict entry *)
  l_lint_runs : int; (* lint analyses on cold launch (1) *)
  l_lint_skipped : int; (* verdict reuses on warm launch (1) *)
  l_quarantined : int; (* entries quarantined on the damaged launch *)
  l_repaired : int; (* entries retranslated + rewritten on that launch *)
  l_cycles_peep : int64; (* cycles with the superoptimized peephole table *)
  l_peep_rewrites : int; (* rewrite sites the table fired on *)
  l_peep_table_load_ms : float; (* warm launch: loading the cached table *)
  l_range_ms : float; (* interprocedural value-range analysis, alone *)
  l_range_sweeps : int; (* abstract-interpretation sweeps to fixpoint *)
  l_rel_ms : float; (* relational (DBM) layer on top of a fresh analysis *)
  l_rel_facts : int; (* proven relational facts over the module *)
}

let llee_workloads = [ "255.vortex"; "164.gzip"; "181.mcf"; "ptrdist-anagram" ]

let llee_row name : llee_row =
  let w = Option.get (Workloads.find name) in
  (* level 1 keeps the call graph (no inlining), so several functions
     are translated on demand *)
  let m = Workloads.compile_optimized ~level:1 w in
  let bytes = Llva.Encode.encode m in
  let storage = Llee.Storage.in_memory () in
  (* cold launch: nothing cached, JIT everything called *)
  let cold = Llee.load ~storage ~target:Llee.X86 bytes in
  ignore (Llee.run cold);
  (* warm launch of the same object code *)
  let warm = Llee.fresh_run cold in
  ignore (Llee.run warm);
  (* offline translation: sequential vs the Domain worker pool *)
  let offline domains =
    let s = Llee.Storage.in_memory () in
    let eng = Llee.load ~storage:s ~target:Llee.X86 bytes in
    let _, dt = time_best ~n:1 (fun () -> Llee.translate_offline ~domains eng) in
    (s, eng, dt)
  in
  let s_seq, eng_seq, off_seq = offline 1 in
  let _, _, off_par = offline (Llee.Pool.default_domains ()) in
  (* determinism: a 4-domain translation must leave byte-identical cache
     contents, whatever this host's core count *)
  let s_chk, _, _ = offline 4 in
  let entry s n =
    Option.map
      (fun e -> e.Llee.Storage.data)
      (s.Llee.Storage.read
         (Printf.sprintf "%s.%s.x86lite" eng_seq.Llee.key n))
  in
  let names =
    "#module#"
    :: List.filter_map
         (fun (f : Llva.Ir.func) ->
           if Llva.Ir.is_declaration f then None else Some f.Llva.Ir.fname)
         m.Llva.Ir.funcs
  in
  let off_same =
    List.for_all (fun n -> entry s_seq n = entry s_chk n) names
    (* the lint verdict entry must be byte-identical too *)
    && Option.map
         (fun e -> e.Llee.Storage.data)
         (s_seq.Llee.Storage.read (Llee.lint_entry_name eng_seq))
       = Option.map
           (fun e -> e.Llee.Storage.data)
           (s_chk.Llee.Storage.read (Llee.lint_entry_name eng_seq))
  in
  (* warm-after-offline launch: the whole-module entry means O(1) reads *)
  let counted, reads = counting_storage s_seq in
  let warm_off = Llee.fresh_run { eng_seq with Llee.storage = counted } in
  ignore (Llee.run warm_off);
  (* lint-before-cache timings: cold = the full analysis (recorded by the
     cold launch above), warm = reading + decoding the verdict entry *)
  let _, lint_warm =
    time_best (fun () -> Llee.verdict (Llee.fresh_run cold))
  in
  (* self-healing: flip one byte in the whole-module entry and in main's
     per-function entry; the checksummed frame must quarantine both and
     the launch retranslates (repairs) the function it actually needs *)
  let corrupt n =
    let ename = Printf.sprintf "%s.%s.x86lite" eng_seq.Llee.key n in
    match s_seq.Llee.Storage.read ename with
    | Some e ->
        let b = Bytes.of_string e.Llee.Storage.data in
        let i = Bytes.length b - 1 in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF));
        s_seq.Llee.Storage.write ename (Bytes.to_string b)
    | None -> ()
  in
  corrupt "#module#";
  corrupt "main";
  let heal = Llee.fresh_run eng_seq in
  ignore (Llee.run heal);
  (* superoptimized peephole table: a cold launch pays the enumerative
     search once and caches the [#peep#] entry; the warm launch loads it
     (peep_table_load_ms) and still gets the full cycle reduction *)
  let pstorage = Llee.Storage.in_memory () in
  let pcold = Llee.load ~storage:pstorage ~peephole:true ~target:Llee.X86 bytes in
  ignore (Llee.run pcold);
  let pwarm = Llee.fresh_run pcold in
  ignore (Llee.run pwarm);
  assert (pcold.Llee.stats.Llee.peep_searches = 1);
  assert (pwarm.Llee.stats.Llee.peep_table_loads = 1);
  assert (pwarm.Llee.stats.Llee.cycles = pcold.Llee.stats.Llee.cycles);
  (* value-range analysis on its own: the dominant cost inside lint cold,
     reported separately so regressions in the fixpoint loop are visible *)
  let ranges, range_dt = time_best (fun () -> Check.Ranges.compute m) in
  assert (Check.Ranges.fixpoint_reached ranges);
  (* relational layer alone: build + close the per-block DBMs the oob
     checker would consult, on a fresh analysis so nothing is cached *)
  let rel_ms, rel_facts =
    let best = ref infinity and facts = ref 0 in
    for _ = 1 to 3 do
      let t = Check.Ranges.compute m in
      let t0 = Unix.gettimeofday () in
      Check.Ranges.force_relations t;
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      facts := Check.Ranges.rel_fact_count t
    done;
    (!best *. 1000.0, !facts)
  in
  {
    l_name = name;
    l_cold_n = cold.Llee.stats.Llee.translations;
    l_cold_ms = cold.Llee.stats.Llee.translate_time *. 1000.0;
    l_warm_ms = warm.Llee.stats.Llee.translate_time *. 1000.0;
    l_warm_hits = warm.Llee.stats.Llee.cache_hits;
    l_warm_reads = !reads;
    l_off_seq = off_seq;
    l_off_par = off_par;
    l_off_same = off_same;
    l_cycles = cold.Llee.stats.Llee.cycles;
    l_lint_cold_ms = cold.Llee.stats.Llee.lint_time *. 1000.0;
    l_lint_warm_ms = lint_warm *. 1000.0;
    l_lint_runs = cold.Llee.stats.Llee.lint_runs;
    l_lint_skipped = warm.Llee.stats.Llee.lint_skipped;
    l_quarantined = heal.Llee.stats.Llee.cache_quarantined;
    l_repaired = heal.Llee.stats.Llee.cache_repaired;
    (* rewrites count at translation time, so they come from the cold
       launch; the warm launch re-runs the cached rewritten code *)
    l_cycles_peep = pcold.Llee.stats.Llee.cycles;
    l_peep_rewrites = pcold.Llee.stats.Llee.peep_rewrites;
    l_peep_table_load_ms = pwarm.Llee.stats.Llee.peep_time *. 1000.0;
    l_range_ms = range_dt *. 1000.0;
    l_range_sweeps = Check.Ranges.total_sweeps ranges;
    l_rel_ms = rel_ms;
    l_rel_facts = rel_facts;
  }

let run_llee () =
  section "LLEE: program launch with and without the OS storage API";
  Printf.printf
    "%-17s %10s %12s %12s %10s %10s %11s %11s %8s %7s %9s %9s %9s %6s %7s \
     %6s %5s %4s %12s %6s %7s %7s\n"
    "Program" "cold trans" "cold ms" "warm ms" "hits" "warm reads"
    "offline(s)" "parallel(s)" "speedup" "same" "lint cold" "lint warm"
    "range ms" "sweeps" "rel ms" "facts" "quar" "rep" "peep cycles" "rewr"
    "gain" "tbl ms";
  let rows = List.map llee_row llee_workloads in
  List.iter
    (fun r ->
      Printf.printf
        "%-17s %10d %12.3f %12.3f %10d %10d %11.4f %11.4f %7.2fx %7b %7.2fms \
         %7.2fms %7.2fms %6d %5.2fms %6d %5d %4d %12Ld %6d %6.2f%% %7.3f\n"
        r.l_name r.l_cold_n r.l_cold_ms r.l_warm_ms r.l_warm_hits r.l_warm_reads
        r.l_off_seq r.l_off_par
        (r.l_off_seq /. r.l_off_par)
        r.l_off_same r.l_lint_cold_ms r.l_lint_warm_ms r.l_range_ms
        r.l_range_sweeps r.l_rel_ms r.l_rel_facts r.l_quarantined
        r.l_repaired r.l_cycles_peep r.l_peep_rewrites
        (100.0
        *. (Int64.to_float r.l_cycles -. Int64.to_float r.l_cycles_peep)
        /. Int64.to_float r.l_cycles)
        r.l_peep_table_load_ms)
    rows;
  Printf.printf
    "\n(cold launches translate online; warm launches read the offline\n\
    \ cache through the storage API and translate nothing - the paper's\n\
    \ central advantage over DAISY/Crusoe, which always translate online.\n\
    \ 'warm reads' counts storage reads on a warm-after-offline launch:\n\
    \ the whole-module cache entry makes it O(1). 'parallel(s)' is\n\
    \ translate_offline on %d domain(s); 'same' checks the parallel cache\n\
    \ is byte-identical to the sequential one, lint verdict entry\n\
    \ included. 'lint cold' is the full llva-lint analysis a cold launch\n\
    \ pays once; 'lint warm' is reading the recorded verdict instead.\n\
    \ 'range ms' is the interprocedural value-range analysis alone (the\n\
    \ dominant cost inside lint cold) and 'sweeps' its abstract-\n\
    \ interpretation sweep count to fixpoint. 'rel ms' is the relational\n\
    \ (difference-bound) layer alone: building and closing the per-block\n\
    \ DBMs the oob checker consults, over 'facts' proven relations.\n\
    \ 'quar'/'rep' exercise the self-healing cache: with one byte flipped\n\
    \ in the whole-module entry and in main's entry, the checksummed\n\
    \ frame quarantines both and the launch retranslates what it needs.\n\
    \ 'peep cycles' re-runs the workload with the superoptimized peephole\n\
    \ table enabled ('rewr' rewrite sites, 'gain' vs the plain cycles\n\
    \ column); the cold launch searched for the table once, the warm\n\
    \ launch loaded the cached #peep# entry in 'tbl ms'.)\n"
    (Llee.Pool.default_domains ());
  rows

(* ------------------------------------------------------------------ *)
(* Memory fast paths: word vs byte throughput                          *)
(* ------------------------------------------------------------------ *)

type mem_row = {
  mt_byte_write : float; (* MB/s *)
  mt_word_write : float;
  mt_byte_read : float;
  mt_word_read : float;
}

let mem_throughput () : mem_row =
  let mem = Vmem.Memory.create Llva.Target.default in
  let base = Vmem.Memory.heap_base in
  let n = 1 lsl 22 in
  (* 4 MiB *)
  let mb = float_of_int n /. (1024.0 *. 1024.0) in
  let rate dt = mb /. dt in
  let _, byte_w =
    time_best (fun () ->
        for k = 0 to n - 1 do
          Vmem.Memory.write_u8 mem (Int64.add base (Int64.of_int k)) (k land 0xFF)
        done)
  in
  let _, word_w =
    time_best (fun () ->
        for k = 0 to (n / 8) - 1 do
          Vmem.Memory.write_u64 mem
            (Int64.add base (Int64.of_int (8 * k)))
            (Int64.of_int k)
        done)
  in
  let sink = ref 0L in
  let _, byte_r =
    time_best (fun () ->
        for k = 0 to n - 1 do
          sink :=
            Int64.add !sink
              (Int64.of_int
                 (Vmem.Memory.read_u8 mem (Int64.add base (Int64.of_int k))))
        done)
  in
  let _, word_r =
    time_best (fun () ->
        for k = 0 to (n / 8) - 1 do
          sink :=
            Int64.add !sink
              (Vmem.Memory.read_u64 mem (Int64.add base (Int64.of_int (8 * k))))
        done)
  in
  ignore !sink;
  {
    mt_byte_write = rate byte_w;
    mt_word_write = rate word_w;
    mt_byte_read = rate byte_r;
    mt_word_read = rate word_r;
  }

let run_memtp () =
  section "Memory: word-granularity fast paths vs the byte loop (4 MiB sweep)";
  let r = mem_throughput () in
  Printf.printf "%-12s %14s %14s %9s\n" "access" "byte MB/s" "word MB/s"
    "speedup";
  Printf.printf "%-12s %14.1f %14.1f %8.2fx\n" "write" r.mt_byte_write
    r.mt_word_write
    (r.mt_word_write /. r.mt_byte_write);
  Printf.printf "%-12s %14.1f %14.1f %8.2fx\n" "read" r.mt_byte_read
    r.mt_word_read
    (r.mt_word_read /. r.mt_byte_read);
  r

(* ------------------------------------------------------------------ *)
(* Machine-readable output (--json)                                    *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_bench_json ~path ~domains (rows : llee_row list) (mt : mem_row) =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"domains\": %d,\n" domains;
  Printf.fprintf oc
    "  \"memory_throughput_mb_s\": {\"byte_write\": %.1f, \"word_write\": \
     %.1f, \"byte_read\": %.1f, \"word_read\": %.1f},\n"
    mt.mt_byte_write mt.mt_word_write mt.mt_byte_read mt.mt_word_read;
  Printf.fprintf oc "  \"workloads\": [\n";
  List.iteri
    (fun k r ->
      Printf.fprintf oc
        "    {\"name\": \"%s\", \"cold_translations\": %d, \
         \"cold_translate_ms\": %.3f, \"warm_translate_ms\": %.3f, \
         \"warm_cache_hits\": %d, \"warm_storage_reads\": %d, \
         \"offline_seq_s\": %.4f, \"offline_par_s\": %.4f, \
         \"parallel_identical\": %b, \"cycles\": %Ld, \
         \"lint_cold_ms\": %.3f, \"lint_warm_ms\": %.3f, \
         \"lint_runs\": %d, \"lint_skipped\": %d, \
         \"range_ms\": %.3f, \"range_sweeps\": %d, \
         \"rel_ms\": %.3f, \"rel_facts\": %d, \
         \"quarantined\": %d, \"repaired\": %d, \
         \"cycles_peep\": %Ld, \"peep_rewrites\": %d, \
         \"peep_table_load_ms\": %.3f}%s\n"
        (json_escape r.l_name) r.l_cold_n r.l_cold_ms r.l_warm_ms r.l_warm_hits
        r.l_warm_reads r.l_off_seq r.l_off_par r.l_off_same r.l_cycles
        r.l_lint_cold_ms r.l_lint_warm_ms r.l_lint_runs r.l_lint_skipped
        r.l_range_ms r.l_range_sweeps r.l_rel_ms r.l_rel_facts
        r.l_quarantined r.l_repaired r.l_cycles_peep r.l_peep_rewrites
        r.l_peep_table_load_ms
        (if k = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "\nwrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Trace cache                                                         *)
(* ------------------------------------------------------------------ *)

let run_trace () =
  section "Software trace cache: profile-guided relayout (paper S4.2)";
  Printf.printf "%-17s %12s %12s %12s %8s\n" "Program" "cycles" "reopt cycles"
    "dyn instrs" "gain";
  List.iter
    (fun name ->
      let w = Option.get (Workloads.find name) in
      let m = Workloads.compile_optimized ~level:2 w in
      let eng = Llee.of_module ~target:Llee.Sparc m in
      ignore (Llee.run eng);
      let before = eng.Llee.stats.Llee.cycles in
      let eng2, moved = Llee.reoptimize eng in
      ignore (Llee.run eng2);
      let after = eng2.Llee.stats.Llee.cycles in
      Printf.printf "%-17s %12Ld %12Ld %12Ld %7.2f%% (moved %d blocks)\n" name
        before after eng2.Llee.stats.Llee.native_instrs
        (100.0 *. (Int64.to_float before -. Int64.to_float after)
         /. Int64.to_float before)
        moved)
    [ "256.bzip2"; "197.parser"; "181.mcf"; "300.twolf" ]

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let run_ablation () =
  section "Ablation: optimization levels (static/dynamic LLVA, SPARC cycles)";
  Printf.printf "%-17s %6s %9s %9s %12s\n" "Program" "level" "#LLVA" "dynamic"
    "SPARC cycles";
  let subset = [ "ptrdist-anagram"; "181.mcf"; "164.gzip"; "183.equake" ] in
  List.iter
    (fun name ->
      let w = Option.get (Workloads.find name) in
      List.iter
        (fun level ->
          let m = Workloads.compile_optimized ~level w in
          let static = Llva.Ir.module_instr_count m in
          let st = Interp.create ~fuel:100_000_000 m in
          ignore (Interp.run_main st);
          let sparc = Sparclite.Compile.compile_module m in
          let _, sst = Sparclite.Sim.run_main sparc in
          Printf.printf "%-17s %6d %9d %9d %12Ld\n" name level static
            st.Interp.stats.Interp.steps sst.Sparclite.Sim.cycles)
        [ 0; 1; 2 ])
    subset;
  section "Ablation: the compact 32-bit instruction form (object-code bytes)";
  Printf.printf "%-17s %10s %12s %8s\n" "Program" "compact" "self-ext only"
    "saving";
  List.iter
    (fun name ->
      let w = Option.get (Workloads.find name) in
      let m = Workloads.compile_optimized ~level:2 w in
      let with_c = String.length (Llva.Encode.encode ~compact:true m) in
      let without = String.length (Llva.Encode.encode ~compact:false m) in
      Printf.printf "%-17s %10d %12d %7.1f%%\n" name with_c without
        (100.0 *. float_of_int (without - with_c) /. float_of_int without))
    subset;
  section "Ablation: register allocation on X86-lite (cycles)";
  Printf.printf "%-17s %14s %14s %8s\n" "Program" "spill-all" "linear-scan"
    "speedup";
  List.iter
    (fun name ->
      let w = Option.get (Workloads.find name) in
      let naive =
        X86lite.Compile.compile_module ~linear_scan:false
          (Workloads.compile_optimized ~level:2 w)
      in
      let _, nst = X86lite.Sim.run_main naive in
      let ls =
        X86lite.Compile.compile_module ~linear_scan:true
          (Workloads.compile_optimized ~level:2 w)
      in
      let _, lst = X86lite.Sim.run_main ls in
      Printf.printf "%-17s %14Ld %14Ld %7.2fx\n" name nst.X86lite.Sim.cycles
        lst.X86lite.Sim.cycles
        (Int64.to_float nst.X86lite.Sim.cycles
        /. Int64.to_float lst.X86lite.Sim.cycles))
    subset

(* ------------------------------------------------------------------ *)
(* Portability (paper S3.2)                                            *)
(* ------------------------------------------------------------------ *)

let run_portability () =
  section "Portability: identical behaviour on all four target configs";
  List.iter
    (fun name ->
      let w = Option.get (Workloads.find name) in
      let outputs =
        List.map
          (fun target ->
            let m =
              Minic.Mcodegen.compile_and_verify ~name ~target ~optimize:1
                w.Workloads.source
            in
            let st = Interp.create ~fuel:100_000_000 m in
            let code = Interp.run_main st in
            (Llva.Target.to_string target, code, Interp.output st))
          Llva.Target.all
      in
      let _, c0, o0 = List.hd outputs in
      let agree =
        List.for_all (fun (_, c, o) -> c = c0 && o = o0) outputs
      in
      Printf.printf "%-17s agree=%b  %s" name agree o0;
      if not agree then
        List.iter
          (fun (t, c, o) -> Printf.printf "    %s: code=%d %s" t c o)
          outputs)
    [ "ptrdist-anagram"; "ptrdist-bc"; "186.crafty" ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let run_micro () =
  section "Micro-benchmarks: translator pipeline stages (bechamel, OLS)";
  let open Bechamel in
  let w = Option.get (Workloads.find "164.gzip") in
  let m = Workloads.compile_optimized ~level:2 w in
  let bytes = Llva.Encode.encode m in
  let tests =
    Test.make_grouped ~name:"pipeline"
      [
        Test.make ~name:"table2/x86-translate"
          (Staged.stage (fun () -> X86lite.Compile.compile_module m));
        Test.make ~name:"table2/sparc-translate"
          (Staged.stage (fun () -> Sparclite.Compile.compile_module m));
        Test.make ~name:"fig2/minic-frontend"
          (Staged.stage (fun () ->
               Minic.Mcodegen.compile ~name:"fig2" fig2_c));
        Test.make ~name:"llee/encode"
          (Staged.stage (fun () -> Llva.Encode.encode m));
        Test.make ~name:"llee/decode"
          (Staged.stage (fun () -> Llva.Decode.decode bytes));
        Test.make ~name:"verify"
          (Staged.stage (fun () -> Llva.Verify.verify_module m));
        Test.make ~name:"optimize-O2"
          (Staged.stage (fun () ->
               Transform.Passmgr.optimize ~level:2
                 (Llva.Decode.decode bytes)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) results [] in
  List.iter
    (fun name ->
      let t = Hashtbl.find results name in
      match Analyze.OLS.estimates t with
      | Some (est :: _) ->
          Printf.printf "%-32s %12.1f ns/run  (%.3f ms)\n" name est
            (est /. 1e6)
      | _ -> Printf.printf "%-32s (no estimate)\n" name)
    (List.sort compare names)

(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let json = List.mem "--json" args in
  let which =
    match List.filter (fun a -> a <> "--json") args with
    | [] -> "all"
    | w :: _ -> w
  in
  (* [--json] additionally writes BENCH_llee.json next to the working
     directory so the perf trajectory is machine-readable across PRs *)
  let llee_and_mem () =
    let rows = run_llee () in
    let mt = run_memtp () in
    if json then
      write_bench_json ~path:"BENCH_llee.json"
        ~domains:(Llee.Pool.default_domains ())
        rows mt
  in
  (match which with
  | "table2" -> ignore (run_table2 ())
  | "fig2" -> run_fig2 ()
  | "llee" -> llee_and_mem ()
  | "memtp" -> ignore (run_memtp ())
  | "trace" -> run_trace ()
  | "ablation" -> run_ablation ()
  | "portability" -> run_portability ()
  | "micro" -> run_micro ()
  | "all" ->
      ignore (run_table2 ());
      run_fig2 ();
      llee_and_mem ();
      run_trace ();
      run_ablation ();
      run_portability ();
      run_micro ()
  | other ->
      Printf.eprintf
        "unknown benchmark %S (try: table2 fig2 llee memtp trace ablation \
         portability micro all; add --json for BENCH_llee.json)\n"
        other;
      exit 1);
  print_newline ()
