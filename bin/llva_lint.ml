(* llva-lint: the interprocedural static safety analyzer over LLVA
   modules (text or virtual object code).

     llva_lint input.ll                     # default checks, text report
     llva_lint input.bc --json              # machine-readable report
     llva_lint input.ll --checks uninit-load,oob-access
     llva_lint input.ll --checks all --werror
     llva_lint --workloads                  # lint the built-in suite

   Exit codes: 0 — no gating findings; 1 — at least one error-severity
   finding (warnings gate too under --werror); 2 — usage error or the
   module failed the verifier (lint requires verified input). *)

open Cmdliner

let parse_checks = function
  | None -> None
  | Some "all" -> Some Check.Lint.check_ids
  | Some csv -> (
      let names =
        List.filter (fun s -> s <> "") (String.split_on_char ',' csv)
      in
      try
        Check.Lint.validate_checks names;
        Some names
      with Check.Lint.Unknown_check c ->
        Printf.eprintf "unknown check %s (use --list-checks)\n" c;
        exit 2)

let lint_module ?checks ~json ~werror m =
  let diags = Check.Lint.run ?checks m in
  if json then print_endline (Check.Diag.render_json diags)
  else begin
    List.iter (fun d -> print_endline (Check.Diag.to_text d)) diags;
    let e = Check.Diag.count_severity Check.Diag.Error diags in
    let w = Check.Diag.count_severity Check.Diag.Warning diags in
    Printf.printf "%d error%s, %d warning%s\n" e
      (if e = 1 then "" else "s")
      w
      (if w = 1 then "" else "s")
  end;
  Check.Diag.count_severity Check.Diag.Error diags > 0
  || (werror && Check.Diag.count_severity Check.Diag.Warning diags > 0)

let lint_workloads ?checks ~json ~werror () =
  let failed = ref false in
  let reports =
    List.map
      (fun w ->
        let m = Workloads.compile_optimized ~level:2 w in
        (match Llva.Verify.verify_module m with
        | [] -> ()
        | errs ->
            List.iter (fun e -> Printf.eprintf "verify: %s\n" e) errs;
            exit 2);
        let diags = Check.Lint.run ?checks m in
        if Check.Diag.count_severity Check.Diag.Error diags > 0 then
          failed := true;
        if werror && Check.Diag.count_severity Check.Diag.Warning diags > 0
        then failed := true;
        (w.Workloads.name, diags))
      Workloads.all
  in
  if json then
    print_endline
      (Check.Json.to_string ~pretty:true
         (Check.Json.Obj
            (List.map
               (fun (name, diags) -> (name, Check.Diag.to_json diags))
               reports)))
  else
    List.iter
      (fun (name, diags) ->
        if diags = [] then Printf.printf "%-18s clean\n" name
        else begin
          Printf.printf "%-18s %d finding(s)\n" name (List.length diags);
          List.iter (fun d -> print_endline ("  " ^ Check.Diag.to_text d)) diags
        end)
      reports;
  !failed

let run input json checks list_checks werror workloads =
  if list_checks then begin
    List.iter
      (fun (c : Check.Lint.check_info) ->
        Printf.printf "%-18s %s%s\n" c.Check.Lint.id
          (if c.Check.Lint.default_on then "" else "[opt-in] ")
          c.Check.Lint.descr)
      Check.Lint.catalogue;
    exit 0
  end;
  let checks = parse_checks checks in
  let failed =
    if workloads then lint_workloads ?checks ~json ~werror ()
    else
      match input with
      | None ->
          prerr_endline "an input file is required (or --workloads)";
          exit 2
      | Some path ->
          let m = Tool_common.load_module path in
          (match Llva.Verify.verify_module m with
          | [] -> ()
          | errs ->
              List.iter (fun e -> Printf.eprintf "verify: %s\n" e) errs;
              prerr_endline "lint requires a verified module";
              exit 2);
          lint_module ?checks ~json ~werror m
  in
  exit (if failed then 1 else 0)

let input = Arg.(value & pos 0 (some file) None & info [] ~docv:"INPUT")
let json = Arg.(value & flag & info [ "json" ] ~doc:"emit a JSON report")

let checks =
  Arg.(
    value
    & opt (some string) None
    & info [ "checks" ] ~docv:"C1,C2,..."
        ~doc:"comma-separated check ids, or 'all' (default: the default set)")

let list_checks = Arg.(value & flag & info [ "list-checks" ])

let werror =
  Arg.(
    value & flag
    & info [ "werror"; "Werror" ] ~doc:"treat warnings as gating errors")

let workloads =
  Arg.(
    value & flag
    & info [ "workloads" ]
        ~doc:"lint the 17 built-in workloads (optimized at -O2)")

let cmd =
  Cmd.v
    (Cmd.info "llva-lint" ~doc:"static safety analysis over LLVA modules")
    Term.(
      const run $ input $ json $ checks $ list_checks $ werror $ workloads)

let () = exit (Cmd.eval cmd)
