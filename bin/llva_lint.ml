(* llva-lint: the interprocedural static safety analyzer over LLVA
   modules (text or virtual object code).

     llva_lint input.ll                     # default checks, text report
     llva_lint input.bc --json              # machine-readable report
     llva_lint input.ll --checks uninit-load,oob-access
     llva_lint input.ll --checks all --werror
     llva_lint --workloads                  # lint the built-in suite
     llva_lint input.bc --cache-dir DIR     # record/reuse the LLEE verdict entry

   Exit codes: 0 — no gating findings; 1 — at least one error-severity
   finding (warnings gate too under --werror); 2 — usage error or the
   module failed the verifier (lint requires verified input). *)

open Cmdliner

let parse_checks = function
  | None -> None
  | Some "all" -> Some Check.Lint.check_ids
  | Some csv -> (
      let names =
        List.filter (fun s -> s <> "") (String.split_on_char ',' csv)
      in
      try
        Check.Lint.validate_checks names;
        Some names
      with Check.Lint.Unknown_check c ->
        Printf.eprintf "unknown check %s (use --list-checks)\n" c;
        exit 2)

let report_diags ~json ~werror diags =
  if json then print_endline (Check.Diag.render_json diags)
  else begin
    List.iter (fun d -> print_endline (Check.Diag.to_text d)) diags;
    let e = Check.Diag.count_severity Check.Diag.Error diags in
    let w = Check.Diag.count_severity Check.Diag.Warning diags in
    Printf.printf "%d error%s, %d warning%s\n" e
      (if e = 1 then "" else "s")
      w
      (if w = 1 then "" else "s")
  end;
  Check.Diag.count_severity Check.Diag.Error diags > 0
  || (werror && Check.Diag.count_severity Check.Diag.Warning diags > 0)

let lint_module ?checks ~json ~werror m =
  report_diags ~json ~werror (Check.Lint.run ?checks m)

(* --cache-dir: run the lint-before-cache path against an on-disk LLEE
   cache. A first run analyzes and records the verdict entry (pre-seeding
   the cache for later llva-run/LLEE launches of the same object code); a
   later run of the identical module reuses the recorded verdict and
   performs zero recomputation. The cache status goes to stderr so stdout
   stays the plain report. *)
let lint_via_cache ~dir ~json ~werror m =
  let storage = Llee.Storage.on_disk ~dir in
  let eng = Llee.of_module ~storage ~target:Llee.X86 m in
  let v = Llee.verdict eng in
  Printf.eprintf "lint verdict for module %s: %s (analysis v%d)\n"
    eng.Llee.key
    (if eng.Llee.stats.Llee.lint_skipped > 0 then "reused from cache"
     else "computed and recorded")
    Check.Lint.version;
  report_diags ~json ~werror (Check.Lint.verdict_diags v)

let lint_workloads ?checks ~json ~werror () =
  let failed = ref false in
  let reports =
    List.map
      (fun w ->
        let m = Workloads.compile_optimized ~level:2 w in
        (match Llva.Verify.verify_module m with
        | [] -> ()
        | errs ->
            List.iter (fun e -> Printf.eprintf "verify: %s\n" e) errs;
            exit 2);
        let diags = Check.Lint.run ?checks m in
        if Check.Diag.count_severity Check.Diag.Error diags > 0 then
          failed := true;
        if werror && Check.Diag.count_severity Check.Diag.Warning diags > 0
        then failed := true;
        (w.Workloads.name, diags))
      Workloads.all
  in
  if json then
    print_endline
      (Check.Json.to_string ~pretty:true
         (Check.Json.Obj
            (List.map
               (fun (name, diags) -> (name, Check.Diag.to_json diags))
               reports)))
  else
    List.iter
      (fun (name, diags) ->
        if diags = [] then Printf.printf "%-18s clean\n" name
        else begin
          Printf.printf "%-18s %d finding(s)\n" name (List.length diags);
          List.iter (fun d -> print_endline ("  " ^ Check.Diag.to_text d)) diags
        end)
      reports;
  !failed

(* --ranges: print the interprocedural value-range table instead of a
   lint report — one section per defined function with per-argument,
   per-instruction, and return ranges. *)
let show_ranges m =
  let t = Check.Ranges.compute m in
  List.iter print_endline (Check.Ranges.render t);
  Printf.eprintf "range analysis: %d sweep%s, %d interprocedural round%s%s\n"
    (Check.Ranges.total_sweeps t)
    (if Check.Ranges.total_sweeps t = 1 then "" else "s")
    (Check.Ranges.rounds t)
    (if Check.Ranges.rounds t = 1 then "" else "s")
    (if Check.Ranges.fixpoint_reached t then "" else " (budget exhausted)")

(* --relations: print the relational fact table — per-function summary
   bounds (arg <= arg + c, arg <= len(ptr arg) + c), guard difference
   facts per constrained edge, and no-wrap flow equations. *)
let show_relations m =
  let t = Check.Ranges.compute m in
  List.iter print_endline (Check.Ranges.render_relations t);
  Printf.eprintf "relational analysis: %d fact%s%s\n"
    (Check.Ranges.rel_fact_count t)
    (if Check.Ranges.rel_fact_count t = 1 then "" else "s")
    (if Check.Ranges.rel_within_budget t then "" else " (node budget hit)")

(* --workloads --relations: one summary line per workload — proven fact
   count and the cost of building + closing every DBM the oob checker
   would consult, on a fresh analysis (the EXPERIMENTS.md table). *)
let workloads_relations () =
  List.iter
    (fun w ->
      let m = Workloads.compile_optimized ~level:2 w in
      let t = Check.Ranges.compute m in
      let t0 = Unix.gettimeofday () in
      Check.Ranges.force_relations t;
      let dt = (Unix.gettimeofday () -. t0) *. 1000.0 in
      Printf.printf "%-18s %4d fact%s %6.2f ms%s\n" w.Workloads.name
        (Check.Ranges.rel_fact_count t)
        (if Check.Ranges.rel_fact_count t = 1 then " " else "s")
        dt
        (if Check.Ranges.rel_within_budget t then ""
         else "  (node budget hit)"))
    Workloads.all

let run input json checks list_checks werror workloads cache_dir ranges
    relations =
  if list_checks then begin
    List.iter
      (fun (c : Check.Lint.check_info) ->
        Printf.printf "%-18s %s%s\n" c.Check.Lint.id
          (if c.Check.Lint.default_on then "" else "[opt-in] ")
          c.Check.Lint.descr)
      Check.Lint.catalogue;
    exit 0
  end;
  let checks = parse_checks checks in
  (match cache_dir with
  | Some _ when workloads || checks <> None ->
      (* the recorded verdict is shared with LLEE, which lints with the
         default check set; a custom set must not poison it *)
      prerr_endline "--cache-dir takes a single input and no --checks";
      exit 2
  | _ -> ());
  let failed =
    if workloads && relations then begin
      workloads_relations ();
      false
    end
    else if workloads then lint_workloads ?checks ~json ~werror ()
    else
      match input with
      | None ->
          prerr_endline "an input file is required (or --workloads)";
          exit 2
      | Some path ->
          let m = Tool_common.load_module path in
          (match Llva.Verify.verify_module m with
          | [] -> ()
          | errs ->
              List.iter (fun e -> Printf.eprintf "verify: %s\n" e) errs;
              prerr_endline "lint requires a verified module";
              exit 2);
          if ranges then begin
            show_ranges m;
            false
          end
          else if relations then begin
            show_relations m;
            false
          end
          else
            (match cache_dir with
            | Some dir -> lint_via_cache ~dir ~json ~werror m
            | None -> lint_module ?checks ~json ~werror m)
  in
  exit (if failed then 1 else 0)

let input = Arg.(value & pos 0 (some file) None & info [] ~docv:"INPUT")
let json = Arg.(value & flag & info [ "json" ] ~doc:"emit a JSON report")

let checks =
  Arg.(
    value
    & opt (some string) None
    & info [ "checks" ] ~docv:"C1,C2,..."
        ~doc:"comma-separated check ids, or 'all' (default: the default set)")

let list_checks = Arg.(value & flag & info [ "list-checks" ])

let werror =
  Arg.(
    value & flag
    & info [ "werror"; "Werror" ] ~doc:"treat warnings as gating errors")

let workloads =
  Arg.(
    value & flag
    & info [ "workloads" ]
        ~doc:"lint the 17 built-in workloads (optimized at -O2)")

let cache_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "lint through an on-disk LLEE cache: record the verdict entry on \
           first analysis, reuse it on later runs of the same module")

let ranges =
  Arg.(
    value & flag
    & info [ "ranges" ]
        ~doc:
          "print the interprocedural value-range table for the input \
           module instead of a lint report")

let relations =
  Arg.(
    value & flag
    & info [ "relations" ]
        ~doc:
          "print the relational fact table (difference bounds, symbolic \
           argument/length bounds, flow equations) for the input module \
           instead of a lint report")

let cmd =
  Cmd.v
    (Cmd.info "llva-lint" ~doc:"static safety analysis over LLVA modules")
    Term.(
      const run $ input $ json $ checks $ list_checks $ werror $ workloads
      $ cache_dir $ ranges $ relations)

let () = exit (Cmd.eval cmd)
