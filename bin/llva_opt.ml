(* llva-opt: run optimization passes over LLVA (text or object code).

     llva_opt input.ll -passes mem2reg,sccp,dce [-o out.ll]
     llva_opt input.bc -O2 -o out.bc *)

open Cmdliner

let run input output level passes list_passes lint =
  if list_passes then begin
    List.iter
      (fun p ->
        Printf.printf "%-14s %s\n" p.Transform.Passmgr.name
          p.Transform.Passmgr.description)
      Transform.Passmgr.all_passes;
    exit 0
  end;
  let input =
    match input with
    | Some i -> i
    | None ->
        prerr_endline "an input file is required";
        exit 1
  in
  let m = Tool_common.load_module input in
  Tool_common.check_verify m;
  let changes =
    try
      match passes with
      | Some plist -> (
          let names = String.split_on_char ',' plist in
          try Transform.Passmgr.run_pipeline ~verify:true m names
          with Transform.Passmgr.Unknown_pass p ->
            Printf.eprintf "unknown pass %s (use --list-passes)\n" p;
            exit 1)
      | None -> Transform.Passmgr.optimize ~level ~verify:true m
    with Transform.Passmgr.Pass_broke_module (name, errs) ->
      Tool_common.pipeline_broke name errs
  in
  Printf.eprintf "applied %d changes; %d instructions remain\n" changes
    (Llva.Ir.module_instr_count m);
  if lint && Tool_common.run_lint ~channel:stderr m then exit 1;
  let text_out = Filename.check_suffix (Option.value output ~default:"-.ll") ".ll" in
  match output with
  | None -> print_string (Llva.Pretty.module_to_string m)
  | Some o ->
      if text_out then Tool_common.write_file o (Llva.Pretty.module_to_string m)
      else Tool_common.write_file o (Llva.Encode.encode m);
      Printf.printf "wrote %s\n" o

let input = Arg.(value & pos 0 (some file) None & info [] ~docv:"INPUT")

let output =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT")

let level = Arg.(value & opt int 2 & info [ "O" ] ~docv:"LEVEL")

let passes =
  Arg.(
    value
    & opt (some string) None
    & info [ "passes" ] ~docv:"P1,P2,..." ~doc:"comma-separated pass pipeline")

let list_passes = Arg.(value & flag & info [ "list-passes" ])

let lint =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:"run llva-lint after optimization; exit 1 on error findings")

let cmd =
  Cmd.v
    (Cmd.info "llva-opt" ~doc:"optimize LLVA modules")
    Term.(const run $ input $ output $ level $ passes $ list_passes $ lint)

let () = exit (Cmd.eval cmd)
