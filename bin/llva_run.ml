(* llva-run: execute an LLVA program (text or object code) on one of the
   execution engines.

     llva_run prog.bc                          # reference interpreter
     llva_run prog.bc --engine x86             # X86-lite simulator
     llva_run prog.bc --engine llee-sparc      # LLEE JIT, cached on disk
     llva_run prog.bc --stats                  # print execution statistics

   Every engine reports failures through the same structured outcome:
   a guest trap exits 134, an exhausted --fuel budget exits 124, and a
   lint-refused launch exits 125 — never an uncaught OCaml exception. *)

open Cmdliner

let run input engine stats opt fuel cache_dir peephole doctor purge diff
    certify =
  let m = Tool_common.load_module input in
  Tool_common.check_verify m;
  if opt > 0 then ignore (Transform.Passmgr.optimize ~level:opt m);
  if certify then begin
    (* certification mode: lockstep-validate the translation of every
       certifiable function and exit without running the program. With
       --cache the verdict is read from / recorded to the #tv# entry;
       without it the checker runs fresh. Exit 126 on any mismatch. *)
    let target =
      match engine with
      | "llee-sparc" | "sparc" -> Llee.Sparc
      | "llee-x86" | "x86" | "interp" -> Llee.X86
      | e ->
          Printf.eprintf "--certify: unknown engine %s\n" e;
          exit 2
    in
    let storage =
      match cache_dir with
      | Some dir -> Llee.Storage.on_disk ~dir
      | None -> Llee.Storage.none
    in
    let eng = Llee.of_module ~storage ~peephole ~target m in
    let v = Llee.certify eng in
    List.iter print_endline (Llee.Tv.report v);
    if stats then begin
      Printf.eprintf "--- stats ---\n";
      Printf.eprintf "tv runs: %d\n" eng.Llee.stats.Llee.tv_runs;
      Printf.eprintf "tv skipped (verdict cached): %d\n"
        eng.Llee.stats.Llee.tv_skipped;
      Printf.eprintf "tv mismatches: %d\n" eng.Llee.stats.Llee.tv_mismatches;
      Printf.eprintf "tv time: %.3f ms\n"
        (eng.Llee.stats.Llee.tv_time *. 1000.0)
    end;
    exit (if Llee.Tv.clean v then 0 else 126)
  end;
  if doctor || purge || diff <> None then begin
    (* forensics mode: inspect the quarantined entries of the on-disk
       cache and exit without executing the program *)
    (match cache_dir with
    | None ->
        prerr_endline "--cache-doctor requires --cache DIR";
        exit 2
    | Some _ -> ());
    let target =
      match engine with
      | "llee-sparc" -> Llee.Sparc
      | "llee-x86" | "interp" -> Llee.X86
      | e ->
          Printf.eprintf "--cache-doctor requires an llee engine (got %s)\n" e;
          exit 2
    in
    let storage = Llee.Storage.on_disk ~dir:(Option.get cache_dir) in
    let eng = Llee.of_module ~storage ~peephole ~target m in
    List.iter print_endline (Llee.cache_doctor eng);
    (match diff with
    | Some fname -> List.iter print_endline (Llee.diff_quarantined eng fname)
    | None -> ());
    if purge then begin
      let n = Llee.purge_quarantined eng in
      Printf.printf "purged %d quarantined entr%s\n" n
        (if n = 1 then "y" else "ies")
    end;
    exit 0
  end;
  let finish (outcome : Llee.Outcome.t) output st_lines =
    print_string output;
    (match outcome with
    | Llee.Outcome.Exit _ -> ()
    | o -> Printf.eprintf "%s\n" (Llee.Outcome.to_string o));
    if stats then begin
      Printf.eprintf "--- stats ---\n";
      List.iter (fun l -> Printf.eprintf "%s\n" l) st_lines
    end;
    exit (Llee.Outcome.exit_code outcome)
  in
  match engine with
  | "interp" ->
      let outcome, st = Llee.Outcome.run_main_interp ?fuel m in
      finish outcome (Interp.output st)
        [
          Printf.sprintf "llva instructions executed: %d"
            st.Interp.stats.Interp.steps;
          Printf.sprintf "calls: %d" st.Interp.stats.Interp.calls;
          Printf.sprintf "max call depth: %d" st.Interp.stats.Interp.max_depth;
        ]
  | "x86" ->
      let cm = X86lite.Compile.compile_module m in
      let outcome, st = Llee.Outcome.run_main_x86 ?fuel cm in
      finish outcome (X86lite.Sim.output st)
        [
          Printf.sprintf "native instructions: %Ld" st.X86lite.Sim.icount;
          Printf.sprintf "cycles: %Ld" st.X86lite.Sim.cycles;
          Printf.sprintf "static native instructions: %d"
            (X86lite.Compile.module_instr_count cm);
          Printf.sprintf "native code bytes: %d"
            (X86lite.Compile.module_code_size cm);
        ]
  | "sparc" ->
      let cm = Sparclite.Compile.compile_module m in
      let outcome, st = Llee.Outcome.run_main_sparc ?fuel cm in
      finish outcome (Sparclite.Sim.output st)
        [
          Printf.sprintf "native instructions: %Ld" st.Sparclite.Sim.icount;
          Printf.sprintf "cycles: %Ld" st.Sparclite.Sim.cycles;
          Printf.sprintf "static native instructions: %d"
            (Sparclite.Compile.module_instr_count cm);
        ]
  | "llee-x86" | "llee-sparc" ->
      let target = if engine = "llee-x86" then Llee.X86 else Llee.Sparc in
      let storage =
        match cache_dir with
        | Some dir -> Llee.Storage.on_disk ~dir
        | None -> Llee.Storage.none
      in
      let eng = Llee.of_module ~storage ~peephole ~target m in
      let outcome, output = Llee.run ?fuel eng in
      finish outcome output
        [
          Printf.sprintf "functions translated: %d"
            eng.Llee.stats.Llee.translations;
          Printf.sprintf "cache hits: %d" eng.Llee.stats.Llee.cache_hits;
          Printf.sprintf "corrupt cache entries: %d"
            eng.Llee.stats.Llee.cache_corrupt;
          Printf.sprintf "quarantined cache entries: %d"
            eng.Llee.stats.Llee.cache_quarantined;
          Printf.sprintf "repaired cache entries: %d"
            eng.Llee.stats.Llee.cache_repaired;
          Printf.sprintf "storage errors contained: %d"
            eng.Llee.stats.Llee.storage_errors;
          Printf.sprintf "unreadable storage entries: %d"
            eng.Llee.storage.Llee.Storage.counters
              .Llee.Storage.unreadable;
          Printf.sprintf "translate time: %.3f ms"
            (eng.Llee.stats.Llee.translate_time *. 1000.0);
          Printf.sprintf "lint runs: %d" eng.Llee.stats.Llee.lint_runs;
          Printf.sprintf "lint skipped (verdict cached): %d"
            eng.Llee.stats.Llee.lint_skipped;
          Printf.sprintf "lint rejected: %d" eng.Llee.stats.Llee.lint_rejected;
          Printf.sprintf "lint blocked functions: %d"
            eng.Llee.stats.Llee.lint_blocked_funcs;
          Printf.sprintf "lint time: %.3f ms"
            (eng.Llee.stats.Llee.lint_time *. 1000.0);
          Printf.sprintf "peephole rewrites: %d"
            eng.Llee.stats.Llee.peep_rewrites;
          Printf.sprintf "peephole cycles saved (static): %d"
            eng.Llee.stats.Llee.peep_cycles_saved;
          Printf.sprintf "peephole searches: %d"
            eng.Llee.stats.Llee.peep_searches;
          Printf.sprintf "peephole table loads: %d"
            eng.Llee.stats.Llee.peep_table_loads;
          Printf.sprintf "peephole time: %.3f ms"
            (eng.Llee.stats.Llee.peep_time *. 1000.0);
          Printf.sprintf "tv runs: %d" eng.Llee.stats.Llee.tv_runs;
          Printf.sprintf "tv skipped (verdict cached): %d"
            eng.Llee.stats.Llee.tv_skipped;
          Printf.sprintf "tv mismatches: %d" eng.Llee.stats.Llee.tv_mismatches;
          Printf.sprintf "tv time: %.3f ms"
            (eng.Llee.stats.Llee.tv_time *. 1000.0);
          Printf.sprintf "cycles: %Ld" eng.Llee.stats.Llee.cycles;
        ]
  | e ->
      Printf.eprintf
        "unknown engine %s (interp, x86, sparc, llee-x86, llee-sparc)\n" e;
      exit 1

let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"PROGRAM")
let engine = Arg.(value & opt string "interp" & info [ "engine"; "e" ] ~docv:"ENGINE")
let stats = Arg.(value & flag & info [ "stats" ])
let opt = Arg.(value & opt int 0 & info [ "O" ] ~docv:"LEVEL")

let fuel =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuel" ] ~docv:"N"
        ~doc:"instruction budget; exhausting it exits 124")

let cache_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR" ~doc:"offline code cache for llee engines")

let peephole =
  Arg.(
    value & flag
    & info [ "peephole" ]
        ~doc:
          "apply the superoptimized peephole table in llee engines (learned \
           once and cached as a #peep# entry when --cache is given)")

let doctor =
  Arg.(
    value & flag
    & info [ "cache-doctor" ]
        ~doc:
          "inspect the quarantined entries of the --cache directory (name, \
           size, age) and exit without executing")

let purge =
  Arg.(
    value & flag
    & info [ "purge" ]
        ~doc:"with --cache-doctor: delete every quarantined entry")

let diff =
  Arg.(
    value
    & opt (some string) None
    & info [ "diff" ] ~docv:"FUNC"
        ~doc:
          "with --cache-doctor: compare FUNC's quarantined entry against a \
           fresh translation")

let certify =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:
          "lockstep-certify the native translation of every certifiable \
           function against the reference interpreter and exit without \
           executing (0 clean, 126 on a mismatch); with --cache the verdict \
           is recorded as a #tv# entry and reused on later runs")

let cmd =
  Cmd.v
    (Cmd.info "llva-run" ~doc:"execute LLVA programs")
    Term.(
      const run $ input $ engine $ stats $ opt $ fuel $ cache_dir $ peephole
      $ doctor $ purge $ diff $ certify)

let () = exit (Cmd.eval cmd)
