(* llva-superopt: the offline enumerative superoptimizer behind the
   back-ends' peephole pass.

     llva_superopt --target x86lite --out tables/     # learn + write table
     llva_superopt --target all --out tables/         # both back-ends
     llva_superopt --check tables/x86lite.peep        # oracle re-verification
     llva_superopt --determinism --target x86lite     # two searches, same bytes
     llva_superopt --show tables/x86lite.peep         # human-readable dump

   Learning harvests every 1-4 instruction window the naive selectors
   emit across the 17-workload suite (compiled at -O1, which keeps the
   call graph), searches for cheaper replacements under the simulator
   cycle models, and admits only candidates the simulator-as-oracle
   certifies on boundary and random vectors. The resulting table is
   written via [Superopt.Table.to_string] (magic + version framed) and
   is byte-deterministic: same suite in, same table out.

   Exit codes: 0 — success; 2 — a --check found a rule the oracle now
   refutes, or a --determinism run produced diverging bytes. *)

open Cmdliner

let suite () =
  List.map (fun w -> Workloads.compile_optimized ~level:1 w) Workloads.all

let targets_of = function
  | "all" -> [ "x86lite"; "sparclite" ]
  | t -> [ t ]

let table_path dir target = Filename.concat dir (target ^ ".peep")

let learn_one mods target =
  let t0 = Unix.gettimeofday () in
  let tb = Superopt.Search.learn ~target mods in
  Printf.printf "%-10s %d rules, %d static cycles saved (%.2fs search)\n"
    target (Superopt.Table.count tb)
    (Superopt.Table.total_saved tb)
    (Unix.gettimeofday () -. t0);
  tb

let do_learn out targets =
  let mods = suite () in
  List.iter
    (fun target ->
      let tb = learn_one mods target in
      match out with
      | None -> ()
      | Some dir ->
          if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
          let path = table_path dir target in
          let oc = open_out_bin path in
          output_string oc (Superopt.Table.to_string tb);
          close_out oc;
          Printf.printf "wrote %s (fingerprint %s)\n" path
            (Superopt.Table.fingerprint tb))
    targets;
  0

let load_table path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Superopt.Table.of_string s with
  | tb -> tb
  | exception Superopt.Table.Invalid_table why ->
      Printf.eprintf "%s: invalid table: %s\n" path why;
      exit 2

let do_check path =
  let tb = load_table path in
  match Superopt.Search.reverify tb with
  | [] ->
      Printf.printf
        "%s: all %d rules re-verified against the %s oracle (fingerprint %s)\n"
        path (Superopt.Table.count tb) tb.Superopt.Table.target
        (Superopt.Table.fingerprint tb);
      0
  | bad ->
      Printf.eprintf "%s: oracle refuted rule(s): %s\n" path
        (String.concat ", " (List.map string_of_int bad));
      2

let do_determinism targets =
  let mods = suite () in
  let code = ref 0 in
  List.iter
    (fun target ->
      let a = Superopt.Table.to_string (Superopt.Search.learn ~target mods) in
      let b = Superopt.Table.to_string (Superopt.Search.learn ~target mods) in
      if a = b then
        Printf.printf "%-10s deterministic: two searches, identical bytes\n"
          target
      else begin
        Printf.eprintf "%-10s NOT deterministic: searches diverged\n" target;
        code := 2
      end)
    targets;
  !code

let do_show path =
  print_string (Superopt.Table.render (load_table path));
  0

let run target out check determinism show =
  let targets = targets_of target in
  List.iter
    (fun t ->
      if t <> "x86lite" && t <> "sparclite" then begin
        Printf.eprintf "unknown target %s (x86lite, sparclite, all)\n" t;
        exit 2
      end)
    targets;
  let code =
    match (check, show) with
    | Some path, _ -> do_check path
    | None, Some path -> do_show path
    | None, None ->
        if determinism then do_determinism targets else do_learn out targets
  in
  exit code

let target =
  Arg.(
    value & opt string "all"
    & info [ "target"; "t" ] ~docv:"TARGET"
        ~doc:"back-end to learn for: x86lite, sparclite, or all")

let out =
  Arg.(
    value
    & opt (some string) None
    & info [ "out"; "o" ] ~docv:"DIR"
        ~doc:"write learned tables as DIR/<target>.peep")

let check =
  Arg.(
    value
    & opt (some file) None
    & info [ "check" ] ~docv:"TABLE"
        ~doc:
          "re-verify every rule of a serialized table against the \
           simulator oracle; exit 2 if any rule is refuted")

let determinism =
  Arg.(
    value & flag
    & info [ "determinism" ]
        ~doc:"run the search twice and require byte-identical tables")

let show =
  Arg.(
    value
    & opt (some file) None
    & info [ "show" ] ~docv:"TABLE" ~doc:"print a table in readable form")

let cmd =
  Cmd.v
    (Cmd.info "llva-superopt"
       ~doc:"learn, verify and inspect superoptimized peephole tables")
    Term.(const run $ target $ out $ check $ determinism $ show)

let () = exit (Cmd.eval cmd)
