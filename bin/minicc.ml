(* minicc: the MiniC front-end driver — compile a C-subset source file to
   textual LLVA or virtual object code.

     minicc prog.c -o prog.bc [-O2] [--emit-llva] [--target 64le] *)

open Cmdliner

let parse_target = function
  | "32le" -> Ok Llva.Target.little32
  | "32be" -> Ok Llva.Target.big32
  | "64le" -> Ok Llva.Target.little64
  | "64be" -> Ok Llva.Target.big64
  | t -> Error (Printf.sprintf "unknown target %s (32le, 32be, 64le, 64be)" t)

let run input output level emit_llva target_str lint =
  let target =
    match parse_target target_str with
    | Ok t -> t
    | Error e ->
        prerr_endline e;
        exit 1
  in
  let src = Tool_common.read_file input in
  let name = Filename.remove_extension (Filename.basename input) in
  let m =
    try Minic.Mcodegen.compile_and_verify ~name ~target ~optimize:level src
    with
    | Minic.Mlexer.Error (msg, line) ->
        Printf.eprintf "%s:%d: lexical error: %s\n" input line msg;
        exit 1
    | Minic.Mparser.Error (msg, line) ->
        Printf.eprintf "%s:%d: syntax error: %s\n" input line msg;
        exit 1
    | Minic.Mcodegen.Error (msg, line) ->
        Printf.eprintf "%s:%d: error: %s\n" input line msg;
        exit 1
    | Llva.Verify.Invalid errs ->
        (* the optimizer left the module invalid: report the verifier's
           messages and fail *)
        Printf.eprintf "%s: optimization left the module invalid:\n" input;
        List.iter (fun e -> Printf.eprintf "verify: %s\n" e) errs;
        exit 1
    | Transform.Passmgr.Pass_broke_module (name, errs) ->
        Tool_common.pipeline_broke name errs
  in
  if lint && Tool_common.run_lint ~channel:stderr m then exit 1;
  let out =
    match output with
    | Some o -> o
    | None ->
        Filename.remove_extension input ^ if emit_llva then ".ll" else ".bc"
  in
  if emit_llva then Tool_common.write_file out (Llva.Pretty.module_to_string m)
  else Tool_common.write_file out (Llva.Encode.encode m);
  Printf.printf "%s -> %s (%d LLVA instructions)\n" input out
    (Llva.Ir.module_instr_count m)

let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT.c")

let output =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT")

let level = Arg.(value & opt int 0 & info [ "O" ] ~docv:"LEVEL")
let emit_llva = Arg.(value & flag & info [ "emit-llva"; "S" ])

let target =
  Arg.(value & opt string "32le" & info [ "target" ] ~docv:"TARGET")

let lint =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:"run llva-lint on the compiled module; exit 1 on error findings")

let cmd =
  Cmd.v
    (Cmd.info "minicc" ~doc:"compile MiniC (a C subset) to LLVA")
    Term.(const run $ input $ output $ level $ emit_llva $ target $ lint)

let () = exit (Cmd.eval cmd)
