(* Shared helpers for the command-line tools. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let is_object_code data =
  String.length data >= 4 && String.sub data 0 4 = "LLVA"

(* Load a module from either textual assembly (.ll) or virtual object
   code (.bc), sniffing the magic. *)
let load_module path =
  let data = read_file path in
  if is_object_code data then Llva.Decode.decode data
  else Llva.Resolve.parse_module ~name:(Filename.remove_extension (Filename.basename path)) data

let check_verify m =
  match Llva.Verify.verify_module m with
  | [] -> ()
  | errs ->
      List.iter (fun e -> Printf.eprintf "verify: %s\n" e) errs;
      exit 1

(* Run llva-lint over [m], printing text diagnostics to [channel].
   Returns true when the findings should fail the invocation: any
   error-severity diagnostic, or any warning when [werror] is set. *)
let run_lint ?(werror = false) ?checks ~channel m =
  let diags = Check.Lint.run ?checks m in
  List.iter
    (fun d -> output_string channel (Check.Diag.to_text d ^ "\n"))
    diags;
  Check.Diag.count_severity Check.Diag.Error diags > 0
  || (werror && Check.Diag.count_severity Check.Diag.Warning diags > 0)

(* Shared handler for a pass pipeline that left the module invalid:
   report the verifier's messages on stderr and exit non-zero. *)
let pipeline_broke name errs =
  Printf.eprintf "pass %s left the module invalid:\n" name;
  List.iter (fun e -> Printf.eprintf "verify: %s\n" e) errs;
  exit 1
