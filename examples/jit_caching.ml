(* The LLEE translation strategy (paper §4.1): "offline translation when
   possible, online translation whenever necessary."

   This example ships a program as virtual object code and launches it
   four times:
     1. with no OS storage API       -> everything JIT-compiled online
     2. cold, with an on-disk cache  -> JIT + write-back
     3. warm                         -> all native code read from cache
     4. after offline translation of a new program version

     dune exec examples/jit_caching.exe *)

let program =
  {|
int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}

int collatz_len(long n) {
  int len = 0;
  while (n != 1) {
    if (n % 2 == 0) n = n / 2;
    else n = 3 * n + 1;
    len++;
  }
  return len;
}

int main() {
  print_str("fib(18) = ");
  print_int(fib(18));
  print_nl();
  print_str("collatz(27) = ");
  print_int(collatz_len(27));
  print_nl();
  return 0;
}
|}

let show tag (eng : Llee.t) (outcome, out) =
  Printf.printf
    "%-28s exit=%d translated=%d cache-hits=%d translate-time=%.3f ms\n" tag
    (Llee.Outcome.exit_code outcome)
    eng.Llee.stats.Llee.translations eng.Llee.stats.Llee.cache_hits
    (eng.Llee.stats.Llee.translate_time *. 1000.0);
  print_string out

let () =
  let m = Minic.Mcodegen.compile_and_verify ~name:"jitdemo" ~optimize:1 program in
  let bytes = Llva.Encode.encode m in
  Printf.printf "virtual object code: %d bytes (%d LLVA instructions)\n\n"
    (String.length bytes)
    (Llva.Ir.module_instr_count m);

  (* 1. no storage API: the DAISY/Crusoe situation; always online *)
  let eng1 = Llee.load ~target:Llee.X86 bytes in
  show "1. no storage (pure JIT):" eng1 (Llee.run eng1);

  (* 2+3. with an on-disk cache through the OS-independent storage API *)
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "llva_demo_cache" in
  let storage = Llee.Storage.on_disk ~dir in
  let cold = Llee.load ~storage ~target:Llee.X86 bytes in
  show "2. cold launch (disk cache):" cold (Llee.run cold);
  let warm = Llee.fresh_run cold in
  show "3. warm launch:" warm (Llee.run warm);
  Printf.printf "   (cache now holds %d bytes of native translations)\n"
    (storage.Llee.Storage.size ());

  (* 4. idle-time offline translation: later launches never JIT *)
  let eng4 = Llee.load ~storage ~target:Llee.Sparc bytes in
  Llee.translate_offline eng4;
  Printf.printf
    "4. offline translation done:  %d functions pre-translated for %s\n"
    eng4.Llee.stats.Llee.translations "sparc-lite";
  let launch = Llee.fresh_run eng4 in
  show "   subsequent launch:" launch (Llee.run launch);

  (* cleanup *)
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir)
