; A module seeded with one instance of each default-on lint bug class.
; llva-lint must flag every one of them and exit 1 (the @lint dune alias
; runs it under with-accepted-exit-codes).

%cache = global int* null

int %uninit() {
entry:
  %x = alloca int
  %v = load int* %x          ; uninit-load: no store on any path
  ret int %v
}

int %oob() {
entry:
  %buf = alloca int, uint 4
  store int 1, int* %buf
  %p = getelementptr int* %buf, long 6
  %v = load int* %p          ; oob-access: offset 24 in a 16-byte object
  ret int %v
}

void %null_write() {
entry:
  store int 1, int* null     ; null-deref
  ret void
}

int %reads(int* %p) {
entry:
  %v = load int* %p
  ret int %v
}

int %passes_null() {
entry:
  %r = call int %reads(int* null)   ; null-arg: %reads dereferences arg 0
  ret int %r
}

int* %leak() {
entry:
  %x = alloca int
  store int 1, int* %x
  ret int* %x                ; dangling-pointer: stack address escapes
}

int %crash(int %a) {
entry:
  %d = div int %a, 0         ; div-by-zero
  ret int %d
}

int %island() {
entry:
  ret int 0
dead:                        ; unreachable-block
  ret int 1
}

void %wasted() {
entry:
  %x = alloca int
  store int 9, int* %x       ; dead-store: never read back
  ret void
}

int %pure_inc(int %a) {
entry:
  %r = add int %a, 1
  ret int %r
}

void %discards() {
entry:
  %u = call int %pure_inc(int 1)    ; unused-result of a pure callee
  ret void
}
