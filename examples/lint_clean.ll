; A well-behaved module: llva-lint must report zero diagnostics and
; exit 0 on it (exercised by the @lint dune alias).

%table = global [4 x int] [ int 1, int 2, int 3, int 4 ]

int %sum_table() {
entry:
  br label %header
header:
  %i = phi long [ 0, %entry ], [ %inext, %latch ]
  %acc = phi int [ 0, %entry ], [ %accnext, %latch ]
  %c = setlt long %i, 4
  br bool %c, label %latch, label %exit
latch:
  %slot = getelementptr [4 x int]* %table, long 0, long %i
  %v = load int* %slot
  %accnext = add int %acc, %v
  %inext = add long %i, 1
  br label %header
exit:
  ret int %acc
}

int %with_scratch(int %seed) {
entry:
  %scratch = alloca int
  store int %seed, int* %scratch
  %v = load int* %scratch
  %r = mul int %v, 3
  ret int %r
}

int %main() {
entry:
  %a = call int %sum_table()
  %b = call int %with_scratch(int %a)
  ret int %b
}
