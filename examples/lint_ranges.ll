; Seeded fixture for the interprocedural value-range analysis.
;
; Exactly three findings are expected (see lint_ranges.expected):
;   - %range_oob: the index flows out of %pick_index as the range [6],
;     so the gep draws a Warning and the load through it an Error —
;     neither is a literal constant offset, only the range analysis
;     proves them out of bounds.
;   - %shifty: the shift amount is provably in [30..45], straddling the
;     32-bit width of int — a Warning.
; Two would-be false positives must stay silent:
;   - %safe_div divides by an argument whose range [0..7] includes
;     zero, but the guard edge excludes it (refined to [1..7]).
;   - %guarded indexes %table with an argument spanning all of int,
;     but the two dominating guard edges refine it to [0..3].
; %main never calls %range_oob, so an LLEE launch must still execute
; the clean remainder from cached native code (exit 0, the bug merely
; blocks that one function from the cache).

%table = global [4 x int] [ int 10, int 20, int 30, int 40 ]
%seed = global int 5

long %pick_index() {
entry:
  %a = add long 2, 4
  ret long %a
}

int %range_oob() {
entry:
  %i = call long %pick_index()
  %slot = getelementptr [4 x int]* %table, long 0, long %i
  %v = load int* %slot
  ret int %v
}

int %safe_div(int %n, int %d) {
entry:
  %z = seteq int %d, 0
  br bool %z, label %zero, label %go
go:
  %q = div int %n, %d
  ret int %q
zero:
  ret int 0
}

int %guarded(long %i) {
entry:
  %hi = setlt long %i, 4
  br bool %hi, label %upper, label %out
upper:
  %lo = setgt long %i, -1
  br bool %lo, label %ok, label %out
ok:
  %slot = getelementptr [4 x int]* %table, long 0, long %i
  %v = load int* %slot
  ret int %v
out:
  ret int 0
}

int %shifty(int %n) {
entry:
  %v = load int* %seed
  %a0 = and int %v, 15
  %a1 = add int %a0, 30
  %amt = cast int %a1 to ubyte
  %s = shl int %n, ubyte %amt
  ret int %s
}

int %main() {
entry:
  %v = load int* %seed
  %k = and int %v, 7
  %q = call int %safe_div(int 100, int %k)
  %w = cast int %v to long
  %g = call int %guarded(long %w)
  %s = call int %shifty(int %q)
  %r0 = add int %g, %s
  %r = sub int %r0, %r0
  ret int %r
}
