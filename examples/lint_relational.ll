; Seeded fixture for the relational (difference-bound) range analysis.
;
; Exactly two warnings and one error are expected (lint_relational.expected):
;   - %last: the classic off-by-one — reading slot %n of an %n-element
;     buffer. The access is provably AT the end on every execution; only
;     the relational layer can say so (the buffer length is symbolic),
;     and the Error carries the fact it rests on: [rel: %n >= len(%buf)].
;   - %grab: a gep one element past the one-past-the-end pointer. The
;     one-past pointer itself is the allowed idiom and stays silent; the
;     +1 on top is provably past the object, a Warning.
;   - %clipped: a masked index in [0..7] over a 4-element table. The
;     offset interval [0..28] straddles the 16-byte object and no
;     relational fact can rescue it — the straddle Warning remains.
; Two would-be false positives must stay silent:
;   - %sum walks an %n-element buffer under the guard %i < %n. The callers
;     always pass the allocation's own element count, so the
;     interprocedural round proves %n <= len(%buf) and the guard closes
;     the loop body access: range-proven safe, no finding.
;   - %scanner runs the same loop over a fixed 4-element table with an
;     unknown trip count: the widened counter spans billions of bytes, so
;     the commensurate-width gate keeps suppressing the straddle noise
;     exactly as it did before the relational layer.

%tbl = global [4 x int] [ int 1, int 2, int 3, int 4 ]
%seed = global int 9
%cap = global long 6

long %sum(int* %buf, long %n) {
entry:
  br label %head
head:
  %i = phi long [ 0, %entry ], [ %inext, %body ]
  %acc = phi long [ 0, %entry ], [ %accn, %body ]
  %more = setlt long %i, %n
  br bool %more, label %body, label %done
body:
  %slot = getelementptr int* %buf, long %i
  %v = load int* %slot
  %vw = cast int %v to long
  %accn = add long %acc, %vw
  %inext = add long %i, 1
  br label %head
done:
  ret long %acc
}

long %last(long %n) {
entry:
  %buf = alloca int, long %n
  %first = getelementptr int* %buf, long 0
  store int 7, int* %first
  %slot = getelementptr int* %buf, long %n
  %v = load int* %slot
  %vw = cast int %v to long
  ret long %vw
}

long %grab(long %n) {
entry:
  %buf = alloca int, long %n
  %end = getelementptr int* %buf, long %n
  %past = getelementptr int* %end, long 1
  %same = seteq int* %past, %end
  %d = cast bool %same to long
  ret long %d
}

int %clipped() {
entry:
  %v = load int* %seed
  %k = and int %v, 7
  %slot = getelementptr [4 x int]* %tbl, long 0, int %k
  %x = load int* %slot
  ret int %x
}

int %scanner(int %n) {
entry:
  br label %head
head:
  %i = phi int [ 0, %entry ], [ %inext, %body ]
  %acc = phi int [ 0, %entry ], [ %accn, %body ]
  %go = setlt int %i, %n
  br bool %go, label %body, label %done
body:
  %slot = getelementptr [4 x int]* %tbl, long 0, int %i
  %v = load int* %slot
  %accn = add int %acc, %v
  %inext = add int %i, 1
  br label %head
done:
  ret int %acc
}

long %main() {
entry:
  %n = load long* %cap
  %buf = alloca int, long %n
  %s = call long %sum(int* %buf, long %n)
  %l = call long %last(long %n)
  %g = call long %grab(long %n)
  %c = call int %clipped()
  %v = load int* %seed
  %sc = call int %scanner(int %v)
  %cw = cast int %c to long
  %scw = cast int %sc to long
  %t0 = add long %s, %l
  %t1 = add long %t0, %g
  %t2 = add long %t1, %cw
  %t3 = add long %t2, %scw
  ret long %t3
}
