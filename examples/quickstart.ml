(* Quickstart: build an LLVA function with the Builder API, verify it,
   optimize it, then execute it four ways — reference interpreter, both
   simulated hardware back-ends, and as shipped virtual object code.

     dune exec examples/quickstart.exe *)

open Llva

let () =
  (* 1. Build a module: int sum_squares(int n) { sum of i*i for i<n } *)
  let m = Ir.mk_module ~name:"quickstart" () in
  let f =
    Ir.mk_func ~name:"sum_squares" ~return:Types.Int
      ~params:[ ("n", Types.Int) ] ()
  in
  Ir.add_func m f;
  let entry = Ir.mk_block ~name:"entry" () in
  let loop = Ir.mk_block ~name:"loop" () in
  let exit_b = Ir.mk_block ~name:"exit" () in
  List.iter (Ir.append_block f) [ entry; loop; exit_b ];
  let bld = Builder.create m in
  let n = Ir.Varg (List.hd f.Ir.fargs) in

  Builder.position_at_end entry bld;
  Builder.br bld loop;

  Builder.position_at_end loop bld;
  let i = Builder.phi_at_front bld Types.Int [] in
  let acc = Builder.phi_at_front bld Types.Int [] in
  let sq = Builder.mul ~name:"sq" bld i i in
  let acc' = Builder.add ~name:"acc.next" bld acc sq in
  let i' = Builder.add ~name:"i.next" bld i (Ir.const_int Types.Int 1L) in
  let done_ = Builder.setge ~name:"done" bld i' n in
  Builder.cond_br bld done_ exit_b loop;
  (match (i, acc) with
  | Ir.Vreg ip, Ir.Vreg ap ->
      Ir.phi_set_incoming ip [ (Ir.const_int Types.Int 0L, entry); (i', loop) ];
      Ir.phi_set_incoming ap
        [ (Ir.const_int Types.Int 0L, entry); (acc', loop) ]
  | _ -> assert false);

  Builder.position_at_end exit_b bld;
  Builder.ret bld (Some acc');

  (* a main that prints sum_squares(100) *)
  let main = Ir.mk_func ~name:"main" ~return:Types.Int ~params:[] () in
  Ir.add_func m main;
  let me = Ir.mk_block ~name:"entry" () in
  Ir.append_block main me;
  Builder.position_at_end me bld;
  let r = Builder.call bld (Ir.Vfunc f) [ Ir.const_int Types.Int 100L ] in
  let pi =
    Ir.mk_func ~name:"print_int" ~return:Types.Void
      ~params:[ ("v", Types.Int) ] ()
  in
  Ir.add_func m pi;
  ignore (Builder.call bld (Ir.Vfunc pi) [ r ]);
  Builder.ret bld (Some (Ir.const_int Types.Int 0L));

  (* 2. Print and verify *)
  print_endline "--- textual LLVA ---";
  print_string (Pretty.module_to_string m);
  (match Verify.verify_module m with
  | [] -> print_endline "verify: ok"
  | errs -> List.iter print_endline errs);

  (* 3. Optimize *)
  let changes = Transform.Passmgr.optimize ~level:2 m in
  Printf.printf "optimizer made %d changes\n" changes;

  (* 4. Execute everywhere *)
  let st = Interp.create m in
  let code = Interp.run_main st in
  Printf.printf "interpreter : exit=%d output=%s (in %d LLVA steps)\n" code
    (Interp.output st) st.Interp.stats.Interp.steps;

  let x86 = X86lite.Compile.compile_module m in
  let xcode, xst = X86lite.Sim.run_main x86 in
  Printf.printf "x86-lite    : exit=%d output=%s (%Ld instrs, %Ld cycles)\n"
    xcode (X86lite.Sim.output xst) xst.X86lite.Sim.icount
    xst.X86lite.Sim.cycles;

  let sparc = Sparclite.Compile.compile_module m in
  let scode, sst = Sparclite.Sim.run_main sparc in
  Printf.printf "sparc-lite  : exit=%d output=%s (%Ld instrs, %Ld cycles)\n"
    scode (Sparclite.Sim.output sst) sst.Sparclite.Sim.icount
    sst.Sparclite.Sim.cycles;

  (* 5. Ship as virtual object code and run through LLEE *)
  let bytes = Encode.encode m in
  Printf.printf "virtual object code: %d bytes\n" (String.length bytes);
  let eng = Llee.load ~target:Llee.X86 bytes in
  let loutcome, lout = Llee.run eng in
  Printf.printf
    "LLEE (jit)  : exit=%d output=%s (translated %d functions in %.3f ms)\n"
    (Llee.Outcome.exit_code loutcome)
    lout eng.Llee.stats.Llee.translations
    (eng.Llee.stats.Llee.translate_time *. 1000.0)
