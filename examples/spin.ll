; An infinite loop: with a --fuel budget every engine must stop with a
; structured fuel-exhausted outcome and exit 124 (exercised by the
; @chaos dune alias).

int %main() {
entry:
  br label %loop
loop:
  br label %loop
}
