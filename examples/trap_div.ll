; A module that lints clean but traps at runtime: the divisor is loaded
; from a global, so llva-lint's constant-division check cannot prove it
; zero. Every engine must contain the trap as a structured outcome and
; exit 134 — never crash with an uncaught simulator exception (exercised
; by the @chaos dune alias).

%zero = global int 0

int %div_by_global(int %n) {
entry:
  %z = load int* %zero
  %q = div int %n, %z
  ret int %q
}

int %main() {
entry:
  %r = call int %div_by_global(int 50)
  ret int %r
}
