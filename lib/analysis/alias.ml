(* Alias analysis over LLVA pointers.

   The paper (§3.3, §5.1) argues that the V-ISA's type information, SSA and
   explicit CFG enable "sophisticated alias analysis algorithms in the
   translator". This module provides the must/may-alias queries the
   optimizer needs:

   - base-object disambiguation: two pointers rooted at distinct stack
     allocations, or at a stack allocation vs. a global, cannot alias;
   - offset disambiguation: getelementptrs off the same base whose
     constant byte ranges are disjoint (computed with the target data
     layout) cannot alias;
   - escape analysis for allocas: a non-escaping alloca cannot be touched
     by a call. *)

open Llva

type base =
  | Balloca of Ir.instr
  | Bglobal of Ir.global
  | Bfunc of Ir.func
  | Barg of Ir.arg (* incoming pointer: unknown object *)
  | Bunknown

(* Chase a pointer value to its base object through geps,
   pointer-to-pointer casts, and phis whose arms all resolve to the same
   base (the V-ISA has no select instruction — a two-arm phi is its
   select form, and loop phis that advance a pointer over one object are
   the common case). A phi arm that cycles back into a phi already being
   resolved is skipped: if every other arm agrees on a base, the cyclic
   arm can only carry that same base, so the conclusion stands by
   induction. [None] marks such an in-progress arm; [Some Bunknown] is a
   genuine unknown. *)
let rec base_object_among (seen : int list) (v : Ir.value) : base option =
  match v with
  | Ir.Vglobal g -> Some (Bglobal g)
  | Ir.Vfunc f -> Some (Bfunc f)
  | Ir.Varg a -> Some (Barg a)
  | Ir.Vreg i -> (
      match i.Ir.op with
      | Ir.Alloca -> Some (Balloca i)
      | Ir.Getelementptr -> base_object_among seen i.Ir.operands.(0)
      | Ir.Cast -> (
          match Ir.type_of_value i.Ir.operands.(0) with
          | Types.Pointer _ -> base_object_among seen i.Ir.operands.(0)
          | _ -> Some Bunknown)
      | Ir.Phi ->
          if List.mem i.Ir.iid seen then None
          else begin
            let seen = i.Ir.iid :: seen in
            let agreed = ref None and unknown = ref false in
            List.iter
              (fun (arm, _) ->
                if not !unknown then
                  match base_object_among seen arm with
                  | None -> () (* cyclic arm: the others decide *)
                  | Some Bunknown -> unknown := true
                  | Some b -> (
                      match !agreed with
                      | None -> agreed := Some b
                      | Some b0 -> if not (same_base b0 b) then unknown := true))
              (Ir.phi_incoming i);
            if !unknown then Some Bunknown
            else match !agreed with Some b -> Some b | None -> Some Bunknown
          end
      | _ -> Some Bunknown)
  | Ir.Const { ckind = Ir.Cglobal_ref _; _ } -> Some Bunknown
  | _ -> Some Bunknown

and same_base a b =
  match (a, b) with
  | Balloca x, Balloca y -> x == y
  | Bglobal x, Bglobal y -> x == y
  | Bfunc x, Bfunc y -> x == y
  | Barg x, Barg y -> x == y
  | _ -> false

let base_object (v : Ir.value) : base =
  match base_object_among [] v with Some b -> b | None -> Bunknown

(* Constant byte offset of [v] from its base object, or None if any gep
   index on the way is non-constant. Pointer-to-pointer casts keep the
   offset. *)
let rec const_offset (lt : Vmem.Layout.t) (v : Ir.value) : int option =
  match v with
  | Ir.Vreg ({ Ir.op = Ir.Getelementptr; _ } as i) -> (
      match const_offset lt i.Ir.operands.(0) with
      | None -> None
      | Some base_off -> (
          let rec collect k acc =
            if k >= Array.length i.Ir.operands then Some (List.rev acc)
            else
              match i.Ir.operands.(k) with
              | Ir.Const { cty; ckind = Ir.Cint n } -> collect (k + 1) ((cty, n) :: acc)
              | _ -> None
          in
          match collect 1 [] with
          | None -> None
          | Some indexes -> (
              match
                Vmem.Layout.gep_offset lt
                  (Ir.type_of_value i.Ir.operands.(0))
                  indexes
              with
              | off, _ -> Some (base_off + off)
              | exception (Invalid_argument _ | Types.Unresolved _) -> None)))
  | Ir.Vreg ({ Ir.op = Ir.Cast; _ } as i) -> (
      match Ir.type_of_value i.Ir.operands.(0) with
      | Types.Pointer _ -> const_offset lt i.Ir.operands.(0)
      | _ -> None)
  | Ir.Vreg { Ir.op = Ir.Alloca; _ } | Ir.Vglobal _ -> Some 0
  | _ -> None

type result = No_alias | May_alias | Must_alias

let distinct_identified a b =
  (* bases that are provably distinct memory objects *)
  match (a, b) with
  | Balloca x, Balloca y -> not (x == y)
  | Bglobal x, Bglobal y -> not (x == y)
  | Balloca _, Bglobal _ | Bglobal _, Balloca _ -> true
  | Bfunc _, (Balloca _ | Bglobal _) | (Balloca _ | Bglobal _), Bfunc _ -> true
  | _ -> false

(* Byte size of the scalar a pointer's load/store would access, if known. *)
let access_size lt (p : Ir.value) =
  match Types.resolve lt.Vmem.Layout.env (Ir.type_of_value p) with
  | Types.Pointer elem -> (
      match Types.resolve lt.Vmem.Layout.env elem with
      | t when Types.is_scalar t -> Some (Vmem.Layout.size_of lt t)
      | _ -> None
      | exception Types.Unresolved _ -> None)
  | _ -> None
  | exception Types.Unresolved _ -> None

let alias lt (p : Ir.value) (q : Ir.value) : result =
  if Ir.value_equal p q then Must_alias
  else
    let bp = base_object p and bq = base_object q in
    if distinct_identified bp bq then No_alias
    else if same_base bp bq then
      match (const_offset lt p, const_offset lt q) with
      | Some op_, Some oq -> (
          match (access_size lt p, access_size lt q) with
          | Some sp, Some sq ->
              if op_ = oq && sp = sq then Must_alias
              else if op_ + sp <= oq || oq + sq <= op_ then No_alias
              else May_alias
          | _ -> if op_ = oq then May_alias else May_alias)
      | _ -> May_alias
    else May_alias

(* Does an alloca escape (its address stored, passed to a call, returned,
   or cast to a non-pointer)? Non-escaping allocas cannot be modified by
   calls, which lets LICM and GVN keep values in registers across them. *)
let alloca_escapes (alloca : Ir.instr) : bool =
  let rec value_escapes (v : Ir.value) (seen : int list) =
    match v with
    | Ir.Vreg i when List.mem i.Ir.iid seen -> false
    | Ir.Vreg i ->
        List.exists
          (fun (u : Ir.use) ->
            let user = u.Ir.user in
            match user.Ir.op with
            | Ir.Load -> false
            | Ir.Store -> u.Ir.uidx = 0 (* storing the pointer itself *)
            | Ir.Getelementptr when u.Ir.uidx = 0 ->
                value_escapes (Ir.Vreg user) (i.Ir.iid :: seen)
            | Ir.Cast -> (
                match user.Ir.ity with
                | Types.Pointer _ -> value_escapes (Ir.Vreg user) (i.Ir.iid :: seen)
                | _ -> true)
            | Ir.Call | Ir.Invoke -> true
            | Ir.Ret -> true
            | Ir.Setcc _ -> false
            | Ir.Phi | Ir.Binop _ -> true
            | _ -> true)
          i.Ir.iuses
    | _ -> true
  in
  value_escapes (Ir.Vreg alloca) []

(* May a call modify memory reachable through [p]? *)
let call_may_modify (call : Ir.instr) (p : Ir.value) =
  ignore call;
  match base_object p with
  | Balloca a -> alloca_escapes a
  | _ -> true

let instr_may_write_to lt (i : Ir.instr) (p : Ir.value) =
  match i.Ir.op with
  | Ir.Store -> (
      match alias lt i.Ir.operands.(1) p with No_alias -> false | _ -> true)
  | Ir.Call | Ir.Invoke -> call_may_modify i p
  | _ -> false
