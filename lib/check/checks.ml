(* The llva-lint checker suite: dataflow-based safety checks over verified
   LLVA modules, built on the existing analysis infrastructure (CFG,
   alias/escape, call graph summaries, target data layout).

   Every check is conservative in the "no false alarms" direction: a
   diagnostic is only emitted when the module provably misbehaves (or, for
   the opt-in maybe-* variants, when a must-analysis cannot prove safety).
   The acceptance bar is zero diagnostics across the optimized workload
   suite. *)

open Llva

type ctx = {
  m : Ir.modl;
  env : Types.env;
  lt : Vmem.Layout.t;
  summaries : Summaries.t;
  ranges : Ranges.t;
  sccs : (string, string list) Hashtbl.t;
      (* function name -> names of every function in its call-graph SCC
         (singleton for non-recursive functions); interprocedural findings
         blame the whole offending SCC via [Diag.related] *)
  emit : Diag.t -> unit;
}

(* Every SCC member of [f] and [g] other than the reporting function
   itself — the [related] list for an interprocedural diagnostic. *)
let related_sccs ctx (f : Ir.func) (g : Ir.func) =
  let members name =
    match Hashtbl.find_opt ctx.sccs name with Some l -> l | None -> [ name ]
  in
  List.sort_uniq compare (members f.Ir.fname @ members g.Ir.fname)
  |> List.filter (fun n -> n <> f.Ir.fname)

let is_pointer ctx ty =
  match Types.resolve ctx.env ty with
  | Types.Pointer _ -> true
  | _ -> false
  | exception Types.Unresolved _ -> false

(* ---------- constant-null chasing ---------- *)

(* Is [v] provably the null pointer (possibly offset through geps or
   laundered through casts)? *)
let rec points_to_null ctx (v : Ir.value) =
  match v with
  | Ir.Const { ckind = Ir.Cnull; _ } -> true
  | Ir.Const { cty; ckind = Ir.Czero } -> is_pointer ctx cty
  | Ir.Const { cty; ckind = Ir.Cint 0L } -> is_pointer ctx cty
  | Ir.Vreg ({ Ir.op = Ir.Getelementptr; _ } as i) ->
      points_to_null ctx i.Ir.operands.(0)
  | Ir.Vreg ({ Ir.op = Ir.Cast; _ } as i) -> (
      match i.Ir.operands.(0) with
      | Ir.Const { ckind = Ir.Cint 0L; _ } -> is_pointer ctx i.Ir.ity
      | src -> is_pointer ctx (Ir.type_of_value src) && points_to_null ctx src)
  | _ -> false

(* ---------- per-alloca local use classification ---------- *)

(* What happens to an alloca's address within its function. [tracked]
   goes false the moment the address flows somewhere our model cannot
   follow (stored to memory, returned, merged through a phi, passed to an
   escaping callee position, recombined arithmetically); after that the
   initialization checks stay silent for this alloca. *)
type alloca_facts = {
  a_instr : Ir.instr;
  mutable tracked : bool;
  gens : (int, unit) Hashtbl.t; (* instr ids that (may) initialize it *)
  mutable loads : Ir.instr list; (* loads through the alloca *)
  mutable stores : Ir.instr list; (* direct stores through the alloca *)
  mutable read_by_callee : bool; (* passed to a callee proven to read it *)
}

let classify_alloca ctx (a : Ir.instr) : alloca_facts =
  let facts =
    {
      a_instr = a;
      tracked = true;
      gens = Hashtbl.create 8;
      loads = [];
      stores = [];
      read_by_callee = false;
    }
  in
  let seen = Hashtbl.create 8 in
  let rec walk_uses uses =
    List.iter
      (fun (u : Ir.use) ->
        let user = u.Ir.user in
        match user.Ir.op with
        | Ir.Load -> facts.loads <- user :: facts.loads
        | Ir.Store ->
            if u.Ir.uidx = 1 then begin
              Hashtbl.replace facts.gens user.Ir.iid ();
              facts.stores <- user :: facts.stores
            end
            else facts.tracked <- false (* address stored to memory *)
        | Ir.Getelementptr when u.Ir.uidx = 0 -> follow user
        | Ir.Cast ->
            if is_pointer ctx user.Ir.ity then follow user
            else facts.tracked <- false
        | Ir.Call | Ir.Invoke -> (
            match Summaries.call_arg_index user u.Ir.uidx with
            | Some j -> (
                match Ir.call_callee user with
                | Ir.Vfunc g ->
                    let s =
                      Summaries.arg_summary
                        (Summaries.func_summary ctx.summaries g)
                        j
                    in
                    if s.Summaries.escapes then facts.tracked <- false
                    else begin
                      if s.Summaries.writes then
                        Hashtbl.replace facts.gens user.Ir.iid ();
                      if s.Summaries.derefs then facts.read_by_callee <- true
                    end
                | _ -> facts.tracked <- false)
            | None -> facts.tracked <- false (* called through the pointer *))
        | Ir.Setcc _ -> () (* address comparison is harmless *)
        | _ -> facts.tracked <- false)
      uses
  and follow (derived : Ir.instr) =
    if not (Hashtbl.mem seen derived.Ir.iid) then begin
      Hashtbl.replace seen derived.Ir.iid ();
      walk_uses derived.Ir.iuses
    end
  in
  walk_uses a.Ir.iuses;
  facts

(* ---------- uninitialized loads (forward init dataflow) ---------- *)

(* Two forward dataflow problems over the CFG, both with the alloca
   instruction as a kill (an alloca inside a loop yields fresh memory each
   iteration) and stores/initializing calls as gens:

   - MAY-init (union at joins): a load of an alloca not in the may-set
     reads uninitialized memory on EVERY path — a definite bug, check id
     "uninit-load";
   - MUST-init (intersection at joins): a load of an alloca not in the
     must-set has SOME path on which it is uninitialized — the opt-in
     "maybe-uninit-load" check. *)
let check_uninit ctx ~k_func (f : Ir.func) (cfg : Analysis.Cfg.t) allocas =
  let tracked =
    Array.of_list (List.filter (fun a -> a.tracked && a.loads <> []) allocas)
  in
  let n_allocas = Array.length tracked in
  if n_allocas > 0 then begin
    (* instr id -> events; one instruction can affect several allocas
       (e.g. a call handed two buffers gens both) *)
    let events : (int, (int * [ `Kill | `Gen | `Load ]) list) Hashtbl.t =
      Hashtbl.create 32
    in
    let add_event iid ev =
      let cur =
        match Hashtbl.find_opt events iid with Some l -> l | None -> []
      in
      Hashtbl.replace events iid (ev :: cur)
    in
    Array.iteri
      (fun k a ->
        add_event a.a_instr.Ir.iid (k, `Kill);
        Hashtbl.iter (fun iid () -> add_event iid (k, `Gen)) a.gens;
        List.iter
          (fun (l : Ir.instr) -> add_event l.Ir.iid (k, `Load))
          a.loads)
      tracked;
    let events_of (i : Ir.instr) =
      match Hashtbl.find_opt events i.Ir.iid with Some l -> l | None -> []
    in
    let nb = Analysis.Cfg.n_blocks cfg in
    (* block-entry states; must-init starts at top off the entry *)
    let may_in = Array.init nb (fun _ -> Array.make n_allocas false) in
    let must_in = Array.init nb (fun k -> Array.make n_allocas (k <> 0)) in
    let transfer state (b : Ir.block) =
      List.iter
        (fun (i : Ir.instr) ->
          List.iter
            (fun (k, ev) ->
              match ev with
              | `Kill -> state.(k) <- false
              | `Gen -> state.(k) <- true
              | `Load -> ())
            (events_of i))
        b.Ir.instrs
    in
    let run_dataflow states ~join_union =
      let changed = ref true in
      while !changed do
        changed := false;
        for bk = 1 to nb - 1 do
          let preds = cfg.Analysis.Cfg.preds.(bk) in
          let acc = Array.make n_allocas (not join_union) in
          (* out-states of predecessors, recomputed on the fly *)
          List.iter
            (fun p ->
              let out = Array.copy states.(p) in
              transfer out (Analysis.Cfg.block cfg p);
              for k = 0 to n_allocas - 1 do
                if join_union then acc.(k) <- acc.(k) || out.(k)
                else acc.(k) <- acc.(k) && out.(k)
              done)
            preds;
          let inn = if preds = [] then Array.make n_allocas false else acc in
          if inn <> states.(bk) then begin
            states.(bk) <- inn;
            changed := true
          end
        done
      done
    in
    run_dataflow may_in ~join_union:true;
    run_dataflow must_in ~join_union:false;
    (* reporting walk, tracking both states through each block *)
    for bk = 0 to nb - 1 do
      let b = Analysis.Cfg.block cfg bk in
      let may = Array.copy may_in.(bk) and must = Array.copy must_in.(bk) in
      List.iter
        (fun (i : Ir.instr) ->
          List.iter
            (fun (k, ev) ->
              match ev with
              | `Load ->
                  let a = tracked.(k).a_instr in
                  let name =
                    if a.Ir.iname = "" then "stack allocation"
                    else "%" ^ a.Ir.iname
                  in
                  if not may.(k) then
                    ctx.emit
                      (Diag.at_instr ~check:"uninit-load" ~sev:Diag.Error
                         ~k_func f i
                         (Printf.sprintf
                            "load of %s, which is uninitialized on every \
                             path to this point"
                            name))
                  else if not must.(k) then
                    ctx.emit
                      (Diag.at_instr ~check:"maybe-uninit-load"
                         ~sev:Diag.Warning ~k_func f i
                         (Printf.sprintf
                            "load of %s, which is uninitialized on some \
                             path to this point"
                            name))
              | `Kill -> may.(k) <- false; must.(k) <- false
              | `Gen -> may.(k) <- true; must.(k) <- true)
            (events_of i))
        b.Ir.instrs
    done
  end

(* ---------- dead stores ---------- *)

(* A tracked alloca whose value is never read — no loads through it, never
   passed to a callee that reads it — makes every store to it dead. *)
let check_dead_store ctx ~k_func (f : Ir.func) allocas =
  List.iter
    (fun a ->
      if a.tracked && a.loads = [] && (not a.read_by_callee) && a.stores <> []
      then
        let name =
          if a.a_instr.Ir.iname = "" then "<alloca>"
          else "%" ^ a.a_instr.Ir.iname
        in
        List.iter
          (fun (s : Ir.instr) ->
            ctx.emit
              (Diag.at_instr ~check:"dead-store" ~sev:Diag.Warning ~k_func f s
                 (Printf.sprintf
                    "store to %s, which is never read (%d store%s, no loads)"
                    name (List.length a.stores)
                    (if List.length a.stores = 1 then "" else "s"))))
          a.stores)
    allocas

(* ---------- constant out-of-bounds accesses ---------- *)

(* Byte size of the object behind an identified base, when it is a
   compile-time constant. *)
let object_size ctx (b : Analysis.Alias.base) : int option =
  match b with
  | Analysis.Alias.Balloca a -> (
      match Types.resolve ctx.env a.Ir.ity with
      | Types.Pointer elem -> (
          let elem_size =
            try Some (Vmem.Layout.size_of ctx.lt elem)
            with Invalid_argument _ | Types.Unresolved _ -> None
          in
          match elem_size with
          | None -> None
          | Some es -> (
              match a.Ir.operands with
              | [||] -> Some es
              | [| Ir.Const { ckind = Ir.Cint n; _ } |] ->
                  Some (Int64.to_int n * es)
              | _ -> None))
      | _ -> None
      | exception Types.Unresolved _ -> None)
  | Analysis.Alias.Bglobal g -> (
      try Some (Vmem.Layout.size_of ctx.lt g.Ir.gty)
      with Invalid_argument _ | Types.Unresolved _ -> None)
  | _ -> None

let base_name (b : Analysis.Alias.base) =
  match b with
  | Analysis.Alias.Balloca a ->
      if a.Ir.iname = "" then "alloca" else "%" ^ a.Ir.iname
  | Analysis.Alias.Bglobal g -> "%" ^ g.Ir.gname
  | _ -> "object"

(* Is [r] better than knowing nothing about a value of (unresolved) [ty]?
   Straddle warnings are gated on this so a completely unknown index or
   divisor never produces noise. *)
let informative ctx ty (r : Ranges.itv) =
  match Types.resolve ctx.env ty with
  | rty -> not (Ranges.is_top rty r)
  | exception Types.Unresolved _ -> false

(* Interval of byte offsets [v] may address within its base object —
   [Alias.const_offset] generalized to ranges: every gep in the chain
   contributes [index range × element size]. Also returns a precision
   bit, [true] only when every variable index had an informative range
   (the gate for straddle warnings; a provably-bad range is reported
   regardless). *)
let offset_range ctx (f : Ir.func) (v : Ir.value) : Ranges.itv * bool =
  let rec walk (v : Ir.value) : Ranges.itv * bool =
    match v with
    | Ir.Vreg ({ Ir.op = Ir.Getelementptr; _ } as i) -> (
        let base_itv, base_prec = walk i.Ir.operands.(0) in
        try
          let idx_range k =
            match i.Ir.operands.(k) with
            | Ir.Const { ckind = Ir.Cint n; _ } -> (Ranges.Itv (n, n), true)
            | Ir.Const { ckind = Ir.Czero; _ } -> (Ranges.Itv (0L, 0L), true)
            | idx ->
                let r = Ranges.range_at ctx.ranges f i idx in
                (r, informative ctx (Ir.type_of_value idx) r)
          in
          let elem =
            Types.pointee ctx.env (Ir.type_of_value i.Ir.operands.(0))
          in
          let acc = ref base_itv
          and prec = ref base_prec
          and ty = ref elem in
          let nops = Array.length i.Ir.operands in
          if nops >= 2 then begin
            let r, p = idx_range 1 in
            prec := !prec && p;
            acc :=
              Ranges.itv_add !acc
                (Ranges.itv_scale
                   (Int64.of_int (Vmem.Layout.size_of ctx.lt elem))
                   r)
          end;
          for k = 2 to nops - 1 do
            match Types.resolve ctx.env !ty with
            | Types.Array (_, e) ->
                let r, p = idx_range k in
                prec := !prec && p;
                acc :=
                  Ranges.itv_add !acc
                    (Ranges.itv_scale
                       (Int64.of_int (Vmem.Layout.size_of ctx.lt e))
                       r);
                ty := e
            | Types.Struct fields -> (
                match i.Ir.operands.(k) with
                | Ir.Const { ckind = Ir.Cint n; _ } ->
                    let fk = Int64.to_int n in
                    let fty =
                      match List.nth_opt fields fk with
                      | Some fty -> fty
                      | None -> raise Exit
                    in
                    acc :=
                      Ranges.itv_add !acc
                        (Ranges.Itv
                           ( Int64.of_int
                               (Vmem.Layout.field_offset ctx.lt fields fk),
                             Int64.of_int
                               (Vmem.Layout.field_offset ctx.lt fields fk) ));
                    ty := fty
                | _ -> raise Exit (* verifier rules this out *))
            | _ -> raise Exit
          done;
          (!acc, !prec)
        with Invalid_argument _ | Types.Unresolved _ | Exit ->
          (Ranges.Top, false))
    | Ir.Vreg ({ Ir.op = Ir.Cast; _ } as i) -> (
        match Ir.type_of_value i.Ir.operands.(0) with
        | Types.Pointer _ -> walk i.Ir.operands.(0)
        | _ -> (Ranges.Top, false))
    | Ir.Vreg { Ir.op = Ir.Alloca; _ } | Ir.Vglobal _ ->
        (Ranges.Itv (0L, 0L), true)
    | _ -> (Ranges.Top, false)
  in
  walk v

(* ---------- symbolic object lengths (relational layer) ---------- *)

(* The length symbol of a variable-length object, with the element size it
   counts and a display form for relation texts: the element count of a
   variable-count alloca is that count's own symbol; a pointer argument
   gets its length symbol, but only when the interprocedural summary
   proved at least one bound mentioning it — an unconstrained length
   symbol can never prove anything, so we do not even build the DBM. *)
let symbolic_len ctx (f : Ir.func) (b : Analysis.Alias.base) :
    (Ranges.sym * int * string) option =
  let elem_size (ty : Types.t) =
    match Types.resolve ctx.env ty with
    | Types.Pointer elem -> (
        try Some (Vmem.Layout.size_of ctx.lt elem)
        with Invalid_argument _ | Types.Unresolved _ -> None)
    | _ -> None
    | exception Types.Unresolved _ -> None
  in
  match b with
  | Analysis.Alias.Balloca a -> (
      match (elem_size a.Ir.ity, a.Ir.operands) with
      | Some es, [| cnt |] -> (
          match Ranges.value_sym ctx.ranges cnt with
          | Some s -> Some (s, es, Printf.sprintf "len(%s)" (base_name b))
          | None -> None)
      | _ -> None)
  | Analysis.Alias.Barg a -> (
      match elem_size a.Ir.aty with
      | Some es ->
          let pos = ref (-1) in
          List.iteri
            (fun k (fa : Ir.arg) -> if fa.Ir.aid = a.Ir.aid then pos := k)
            f.Ir.fargs;
          let mentioned =
            List.exists
              (fun (_, bound) ->
                match bound with
                | Summaries.Ble_len (p, _) -> p = !pos
                | Summaries.Ble_arg _ -> false)
              (Summaries.arg_bounds ctx.summaries f)
          in
          if mentioned then
            let n = if a.Ir.aname = "" then "arg" else "%" ^ a.Ir.aname in
            Some (Ranges.arg_len_sym a, es, Printf.sprintf "len(%s)" n)
          else None
      | None -> None)
  | _ -> None

(* Decompose a pointer into [base + var*scale + cb]: a gep chain with
   exactly one variable index (an element index at gep operand 1), every
   other contribution constant. The symbolic proofs relate that single
   variable to the object's length symbol. Constant folding is
   overflow-checked — a wrapped decomposition proves nothing. *)
let sym_offset ctx (v : Ir.value) : (Ir.value * int64 * int64) option =
  let bump cb n es =
    match Ranges.mul64 n es with
    | Some p -> ( match Ranges.add64 cb p with Some c -> c | None -> raise Exit)
    | None -> raise Exit
  in
  let rec walk (v : Ir.value) : (Ir.value option * int64 * int64) option =
    match v with
    | Ir.Vreg ({ Ir.op = Ir.Getelementptr; _ } as i) -> (
        match walk i.Ir.operands.(0) with
        | None -> None
        | Some (var0, scale0, cb0) -> (
            try
              let elem =
                Types.pointee ctx.env (Ir.type_of_value i.Ir.operands.(0))
              in
              let es = Int64.of_int (Vmem.Layout.size_of ctx.lt elem) in
              let var = ref var0 and scale = ref scale0 and cb = ref cb0 in
              let nops = Array.length i.Ir.operands in
              if nops >= 2 then begin
                match i.Ir.operands.(1) with
                | Ir.Const { ckind = Ir.Cint n; _ } -> cb := bump !cb n es
                | Ir.Const { ckind = Ir.Czero; _ } -> ()
                | idx ->
                    if !var <> None then raise Exit;
                    var := Some idx;
                    scale := es
              end;
              let ty = ref elem in
              for k = 2 to nops - 1 do
                match Types.resolve ctx.env !ty with
                | Types.Array (_, e) ->
                    let esk = Int64.of_int (Vmem.Layout.size_of ctx.lt e) in
                    (match i.Ir.operands.(k) with
                    | Ir.Const { ckind = Ir.Cint n; _ } -> cb := bump !cb n esk
                    | Ir.Const { ckind = Ir.Czero; _ } -> ()
                    | idx ->
                        (* the single variable may equally be an array
                           index (gep [N x t]* %g, 0, %i) *)
                        if !var <> None then raise Exit;
                        var := Some idx;
                        scale := esk);
                    ty := e
                | Types.Struct fields -> (
                    match i.Ir.operands.(k) with
                    | Ir.Const { ckind = Ir.Cint n; _ } ->
                        let fk = Int64.to_int n in
                        (match List.nth_opt fields fk with
                        | Some fty ->
                            cb :=
                              bump !cb
                                (Int64.of_int
                                   (Vmem.Layout.field_offset ctx.lt fields fk))
                                1L;
                            ty := fty
                        | None -> raise Exit)
                    | _ -> raise Exit)
                | _ -> raise Exit
              done;
              Some (!var, !scale, !cb)
            with Invalid_argument _ | Types.Unresolved _ | Exit -> None))
    | Ir.Vreg ({ Ir.op = Ir.Cast; _ } as i) -> (
        match Ir.type_of_value i.Ir.operands.(0) with
        | Types.Pointer _ -> walk i.Ir.operands.(0)
        | _ -> None)
    | Ir.Vreg { Ir.op = Ir.Alloca; _ } | Ir.Vglobal _ | Ir.Varg _ ->
        Some (None, 0L, 0L)
    | _ -> None
  in
  match walk v with
  | Some (Some var, scale, cb) when scale > 0L -> Some (var, scale, cb)
  | _ -> None

let value_name (v : Ir.value) =
  match v with
  | Ir.Vreg i when i.Ir.iname <> "" -> "%" ^ i.Ir.iname
  | Ir.Varg a when a.Ir.aname <> "" -> "%" ^ a.Ir.aname
  | _ -> "index"

(* For a const-size object whose interval straddles: is the access
   relationally proven inside after all? The DBM can beat the raw
   interval through closure (flow equations, merge-point guards), so this
   retires straddle warnings the commensurate-width gate used to be the
   only defence against. Bounds against the zero node are constants. *)
let relationally_inside ctx (f : Ir.func) (i : Ir.instr) (ptr : Ir.value)
    ~size ~access : bool =
  match sym_offset ctx ptr with
  | None -> false
  | Some (var, scale, cb) -> (
      let fits k =
        (* cb + k*scale + access <= size *)
        match Ranges.mul64 k scale with
        | Some p -> (
            match Ranges.add64 cb p with
            | Some o ->
                Int64.add o (Int64.of_int access) <= Int64.of_int size
            | None -> false)
        | None -> false
      and nonneg k =
        match Ranges.mul64 k scale with
        | Some p -> (
            match Ranges.add64 cb p with Some o -> o >= 0L | None -> false)
        | None -> false
      in
      match
        ( Ranges.rel_upper_at ctx.ranges f i var Ranges.zero_sym,
          Ranges.rel_lower_at ctx.ranges f i var Ranges.zero_sym )
      with
      | Some hi, Some lo -> fits hi && nonneg lo
      | _ -> false)

let check_oob ctx ~k_func (f : Ir.func) =
  (* Variable-length object (no constant size): prove the access against
     the object's length symbol. Provably past the end — the single
     variable index sits at or beyond the element count on every
     execution — is an error carrying the relational fact. A relational
     safety proof (interval lower bound on the offset, difference bound
     [var <= len + c] with [c*scale + cb + access <= 0] on the upper side)
     short-circuits; anything unproven stays silent, exactly as these
     objects were before the relational layer. *)
  let check_symbolic (i : Ir.instr) ptr what base access =
    match (symbolic_len ctx f base, sym_offset ctx ptr) with
    | Some (lsym, es, lname), Some (var, scale, cb)
      when scale = Int64.of_int es -> (
        let acc64 = Int64.of_int access in
        let proven_inside () =
          let nonneg =
            match Ranges.range_at ctx.ranges f i var with
            | Ranges.Itv (vl, _) -> (
                match Ranges.mul64 vl scale with
                | Some p -> (
                    match Ranges.add64 cb p with
                    | Some o -> o >= 0L
                    | None -> false)
                | None -> false)
            | _ -> false
          in
          nonneg
          &&
          match Ranges.rel_upper_at ctx.ranges f i var lsym with
          | Some c -> (
              (* var <= len + c: offset + access <= size + c*scale + cb
                 + access, inside when c*scale + cb + access <= 0 *)
              match Ranges.mul64 c scale with
              | Some p -> (
                  match Ranges.add64 p (Int64.add cb acc64) with
                  | Some s -> s <= 0L
                  | None -> false)
              | None -> false)
          | None -> false
        in
        if proven_inside () then ()
        else
          match Ranges.rel_lower_at ctx.ranges f i var lsym with
          | Some d
            when (match Ranges.mul64 d scale with
                 | Some p -> (
                     match Ranges.add64 cb p with
                     | Some o -> o >= 0L
                     | None -> false)
                 | None -> false) ->
              (* var >= len + d with d*scale + cb >= 0: the access starts
                 at or past the object's end on every execution *)
              ctx.emit
                (Diag.at_instr ~check:"oob-access" ~sev:Diag.Error ~k_func
                   ~relation:(Printf.sprintf "%s >= %s" (value_name var) lname)
                   f i
                   (Printf.sprintf
                      "%s of %d byte%s at index %s is provably at or past \
                       the end of %s"
                      what access
                      (if access = 1 then "" else "s")
                      (value_name var) (base_name base)))
          | _ -> ())
    | _ -> ()
  in
  let check_access (i : Ir.instr) (ptr : Ir.value) what =
    let base = Analysis.Alias.base_object ptr in
    match (object_size ctx base, Analysis.Alias.access_size ctx.lt ptr) with
    | Some size, Some access -> (
        match Analysis.Alias.const_offset ctx.lt ptr with
        | Some off ->
            if off < 0 || off + access > size then
              ctx.emit
                (Diag.at_instr ~check:"oob-access" ~sev:Diag.Error ~k_func f i
                   (Printf.sprintf
                      "%s of %d byte%s at offset %d is outside %s (%d bytes)"
                      what access
                      (if access = 1 then "" else "s")
                      off (base_name base) size))
        | None -> (
            (* variable offset: consult the range analysis *)
            match offset_range ctx f ptr with
            | Ranges.Itv (lo, hi), precise ->
                let size64 = Int64.of_int size
                and acc64 = Int64.of_int access in
                if hi < 0L || lo > Int64.sub size64 acc64 then
                  ctx.emit
                    (Diag.at_instr ~check:"oob-access" ~sev:Diag.Error ~k_func
                       f i
                       (Printf.sprintf
                          "%s of %d byte%s at offset %s is provably outside \
                           %s (%d bytes)"
                          what access
                          (if access = 1 then "" else "s")
                          (Ranges.to_string (Ranges.Itv (lo, hi)))
                          (base_name base) size))
                else if
                  (* straddle: only worth a warning when every index was
                     informative AND the offset range is commensurate with
                     the object — a widened loop counter spans billions of
                     bytes and proves nothing about real accesses — AND
                     the relational layer cannot prove the access inside
                     (its closed bounds can beat the raw interval) *)
                  precise
                  && (lo < 0L || Int64.add hi acc64 > size64)
                  && (match Ranges.sub64 hi lo with
                     | Some w -> w <= Int64.mul 2L size64
                     | None -> false)
                  && not (relationally_inside ctx f i ptr ~size ~access)
                then
                  ctx.emit
                    (Diag.at_instr ~check:"oob-access" ~sev:Diag.Warning
                       ~k_func f i
                       (Printf.sprintf
                          "%s of %d byte%s at offset %s may be outside %s \
                           (%d bytes)"
                          what access
                          (if access = 1 then "" else "s")
                          (Ranges.to_string (Ranges.Itv (lo, hi)))
                          (base_name base) size))
            | _ -> ()))
    | None, Some access -> check_symbolic i ptr what base access
    | _ -> ()
  in
  Ir.iter_instrs
    (fun i ->
      match i.Ir.op with
      | Ir.Load -> check_access i i.Ir.operands.(0) "load"
      | Ir.Store -> check_access i i.Ir.operands.(1) "store"
      | Ir.Getelementptr -> (
          (* allow the one-past-the-end idiom for geps themselves; loads
             and stores through them are caught above *)
          let v = Ir.Vreg i in
          let base = Analysis.Alias.base_object v in
          match object_size ctx base with
          | Some size -> (
              match Analysis.Alias.const_offset ctx.lt v with
              | Some off ->
                  if off < 0 || off > size then
                    ctx.emit
                      (Diag.at_instr ~check:"oob-access" ~sev:Diag.Warning
                         ~k_func f i
                         (Printf.sprintf
                            "getelementptr to offset %d is outside %s (%d \
                             bytes)"
                            off (base_name base) size))
              | None -> (
                  (* only report geps whose entire range is outside *)
                  match offset_range ctx f v with
                  | Ranges.Itv (lo, hi), _
                    when hi < 0L || lo > Int64.of_int size ->
                      ctx.emit
                        (Diag.at_instr ~check:"oob-access" ~sev:Diag.Warning
                           ~k_func f i
                           (Printf.sprintf
                              "getelementptr to offset %s is provably \
                               outside %s (%d bytes)"
                              (Ranges.to_string (Ranges.Itv (lo, hi)))
                              (base_name base) size))
                  | _ -> ()))
          | None -> (
              (* variable-length object: a gep provably *strictly past*
                 one-past-the-end (var >= len + d with d*scale + cb >= 1)
                 is worth the same warning as a constant-size overshoot *)
              match (symbolic_len ctx f base, sym_offset ctx v) with
              | Some (lsym, es, lname), Some (var, scale, cb)
                when scale = Int64.of_int es -> (
                  match Ranges.rel_lower_at ctx.ranges f i var lsym with
                  | Some d
                    when (match Ranges.mul64 d scale with
                         | Some p -> (
                             match Ranges.add64 cb p with
                             | Some o -> o >= 1L
                             | None -> false)
                         | None -> false) ->
                      ctx.emit
                        (Diag.at_instr ~check:"oob-access" ~sev:Diag.Warning
                           ~k_func
                           ~relation:
                             (Printf.sprintf "%s > %s" (value_name var) lname)
                           f i
                           (Printf.sprintf
                              "getelementptr to index %s is provably past \
                               the end of %s"
                              (value_name var) (base_name base)))
                  | _ -> ())
              | _ -> ()))
      | _ -> ())
    f

(* ---------- null and dangling pointers ---------- *)

let check_null ctx ~k_func (f : Ir.func) =
  Ir.iter_instrs
    (fun i ->
      let null_at what v =
        if points_to_null ctx v then
          ctx.emit
            (Diag.at_instr ~check:"null-deref" ~sev:Diag.Error ~k_func f i
               (Printf.sprintf "%s through null pointer" what))
      in
      match i.Ir.op with
      | Ir.Load -> null_at "load" i.Ir.operands.(0)
      | Ir.Store -> null_at "store" i.Ir.operands.(1)
      | Ir.Call | Ir.Invoke ->
          null_at "call" (Ir.call_callee i);
          (* interprocedural: constant null passed to an argument the
             callee provably dereferences *)
          (match Ir.call_callee i with
          | Ir.Vfunc g when not (Ir.is_declaration g) ->
              let s = Summaries.func_summary ctx.summaries g in
              List.iteri
                (fun j arg ->
                  if points_to_null ctx arg then
                    let aj = Summaries.arg_summary s j in
                    if aj.Summaries.must_derefs then
                      (* the callee dereferences the argument on every
                         path: the call provably faults, and the whole
                         callee SCC is implicated *)
                      ctx.emit
                        (Diag.at_instr ~check:"null-arg" ~sev:Diag.Error
                           ~related:(related_sccs ctx f g) ~k_func f i
                           (Printf.sprintf
                              "null passed as argument %d of %%%s, which \
                               dereferences it on every path"
                              j g.Ir.fname))
                    else if aj.Summaries.derefs then
                      ctx.emit
                        (Diag.at_instr ~check:"null-arg" ~sev:Diag.Warning
                           ~k_func f i
                           (Printf.sprintf
                              "null passed as argument %d of %%%s, which \
                               dereferences it"
                              j g.Ir.fname)))
                (Ir.call_args i)
          | _ -> ())
      | _ -> ())
    f

let check_dangling ctx ~k_func (f : Ir.func) =
  Ir.iter_instrs
    (fun i ->
      match i.Ir.op with
      | Ir.Ret when Array.length i.Ir.operands = 1 -> (
          match Analysis.Alias.base_object i.Ir.operands.(0) with
          | Analysis.Alias.Balloca a ->
              ctx.emit
                (Diag.at_instr ~check:"dangling-pointer" ~sev:Diag.Error
                   ~k_func f i
                   (Printf.sprintf
                      "returning the address of stack allocation %s"
                      (base_name (Analysis.Alias.Balloca a))))
          | _ -> ())
      | Ir.Store -> (
          (* the address of a stack slot stored into a global outlives
             the frame it points into *)
          match
            ( Analysis.Alias.base_object i.Ir.operands.(0),
              Analysis.Alias.base_object i.Ir.operands.(1) )
          with
          | Analysis.Alias.Balloca a, Analysis.Alias.Bglobal g ->
              ctx.emit
                (Diag.at_instr ~check:"dangling-pointer" ~sev:Diag.Warning
                   ~k_func f i
                   (Printf.sprintf
                      "address of stack allocation %s stored in global %%%s"
                      (base_name (Analysis.Alias.Balloca a))
                      g.Ir.gname))
          | _ -> ())
      | _ -> ())
    f

(* ---------- division by (provably or possibly) zero ---------- *)

let check_div_zero ctx ~k_func (f : Ir.func) =
  Ir.iter_instrs
    (fun i ->
      match i.Ir.op with
      | Ir.Binop ((Ir.Div | Ir.Rem) as op) ->
          let divisor = i.Ir.operands.(1) in
          let dividend = i.Ir.operands.(0) in
          let is_int_zero =
            match divisor with
            | Ir.Const { ckind = Ir.Cint 0L; cty } -> Types.is_integer cty
            | Ir.Const { ckind = Ir.Czero; cty } -> Types.is_integer cty
            | _ -> false
          in
          (if is_int_zero then
             ctx.emit
               (Diag.at_instr ~check:"div-by-zero" ~sev:Diag.Error ~k_func f i
                  (Printf.sprintf "%s by constant zero" (Ir.binop_name op)))
           else if
             match Types.resolve ctx.env (Ir.type_of_value divisor) with
             | rty -> Types.is_integer rty
             | exception Types.Unresolved _ -> false
           then
             match Ranges.range_at ctx.ranges f i divisor with
             | Ranges.Itv (0L, 0L) ->
                 ctx.emit
                   (Diag.at_instr ~check:"div-by-zero" ~sev:Diag.Error ~k_func
                      f i
                      (Printf.sprintf "%s by divisor that is provably zero"
                         (Ir.binop_name op)))
             | Ranges.Itv (lo, hi) as r
               when lo <= 0L && 0L <= hi
                    && informative ctx (Ir.type_of_value divisor) r ->
                 ctx.emit
                   (Diag.at_instr ~check:"div-by-zero" ~sev:Diag.Warning
                      ~k_func f i
                      (Printf.sprintf
                         "%s by divisor whose range %s includes zero"
                         (Ir.binop_name op) (Ranges.to_string r)))
             | _ -> ());
          (* the -1 divisor corner: signed INT_MIN / -1 overflows the
             quotient and traps (Eval.Overflow), exactly like a zero
             divisor *)
          (match Types.resolve ctx.env (Ir.type_of_value divisor) with
          | rty when Types.is_signed rty -> (
              let minv =
                Int64.neg (Int64.shift_left 1L (Types.bitwidth rty - 1))
              in
              let rb = Ranges.range_at ctx.ranges f i divisor
              and ra = Ranges.range_at ctx.ranges f i dividend in
              match (ra, rb) with
              | Ranges.Itv (al, ah), Ranges.Itv (-1L, -1L)
                when al = minv && ah = minv ->
                  ctx.emit
                    (Diag.at_instr ~check:"div-by-zero" ~sev:Diag.Error
                       ~k_func f i
                       (Printf.sprintf
                          "%s of %Ld by -1 provably overflows %s (traps)"
                          (Ir.binop_name op) minv (Types.to_string rty)))
              | (Ranges.Itv (al, ah) as ra), (Ranges.Itv (bl, bh) as rb)
                when al <= minv && minv <= ah && bl <= -1L && -1L <= bh
                     && informative ctx (Ir.type_of_value dividend) ra
                     && informative ctx (Ir.type_of_value divisor) rb ->
                  ctx.emit
                    (Diag.at_instr ~check:"div-by-zero" ~sev:Diag.Warning
                       ~k_func f i
                       (Printf.sprintf
                          "%s dividend range %s and divisor range %s admit \
                           the %Ld / -1 overflow"
                          (Ir.binop_name op) (Ranges.to_string ra)
                          (Ranges.to_string rb) minv))
              | _ -> ())
          | _ -> ()
          | exception Types.Unresolved _ -> ())
      | _ -> ())
    f

(* ---------- shift amounts beyond the bit width ---------- *)

(* The evaluator reduces shift amounts modulo the declared bit width of
   the operand type (see Eval), so a shift by [>= width] is well-defined
   but almost certainly not what the program meant (the C-source analog
   is undefined, and [shl x:int, 40] silently shifts by 8). Error when
   the amount provably always exceeds the width; warning when an
   informative range says it might. *)
let check_shift ctx ~k_func (f : Ir.func) =
  Ir.iter_instrs
    (fun i ->
      match i.Ir.op with
      | Ir.Binop ((Ir.Shl | Ir.Shr) as op) -> (
          match Types.resolve ctx.env i.Ir.ity with
          | rty when Types.is_integer rty -> (
              let w = Int64.of_int (Types.bitwidth rty) in
              let amount = i.Ir.operands.(1) in
              match Ranges.range_at ctx.ranges f i amount with
              | Ranges.Itv (lo, hi) as r ->
                  if lo >= w then
                    ctx.emit
                      (Diag.at_instr ~check:"shift-range" ~sev:Diag.Error
                         ~k_func f i
                         (Printf.sprintf
                            "%s amount %s is >= the %Ld-bit width of %s"
                            (Ir.binop_name op) (Ranges.to_string r) w
                            (Types.to_string rty)))
                  else if
                    hi >= w
                    && informative ctx (Ir.type_of_value amount) r
                    && (* only tight amount ranges whose out-of-width part
                          is the strict majority are worth a warning (a
                          mask like [0..63] on a 32-bit shift is half
                          in-range and almost always intentional) *)
                    (match Ranges.sub64 hi lo with
                    | Some wd ->
                        wd <= Int64.mul 2L w
                        && Int64.mul 2L (Int64.succ (Int64.sub hi w))
                           > Int64.succ wd
                    | None -> false)
                  then
                    ctx.emit
                      (Diag.at_instr ~check:"shift-range" ~sev:Diag.Warning
                         ~k_func f i
                         (Printf.sprintf
                            "%s amount %s may reach the %Ld-bit width of %s"
                            (Ir.binop_name op) (Ranges.to_string r) w
                            (Types.to_string rty)))
              | _ -> ())
          | _ -> ()
          | exception Types.Unresolved _ -> ())
      | _ -> ())
    f

(* ---------- provably value-losing truncations ---------- *)

let check_trunc ctx ~k_func (f : Ir.func) =
  Ir.iter_instrs
    (fun i ->
      match i.Ir.op with
      | Ir.Cast -> (
          let src = i.Ir.operands.(0) in
          match
            ( Types.resolve ctx.env (Ir.type_of_value src),
              Types.resolve ctx.env i.Ir.ity )
          with
          | sty, dty
            when Types.is_integer sty && Types.is_integer dty
                 && Types.bitwidth dty < Types.bitwidth sty -> (
              match
                (Ranges.range_at ctx.ranges f i src, Ranges.bounds dty)
              with
              | Ranges.Itv (lo, hi), Some (bl, bh) ->
                  if hi < bl || lo > bh then
                    ctx.emit
                      (Diag.at_instr ~check:"trunc-range" ~sev:Diag.Error
                         ~k_func f i
                         (Printf.sprintf
                            "truncation to %s provably loses the value: \
                             source range %s has no representable value"
                            (Types.to_string dty)
                            (Ranges.to_string (Ranges.Itv (lo, hi)))))
                  else if
                    (* straddle warnings fire only for upper-bound
                       overflow (a negative value into an unsigned type is
                       idiomatic wraparound) and only when the source
                       range is commensurate with the destination span — a
                       widened range covering the whole source type says
                       nothing about the values actually flowing here *)
                    hi > bh
                    && informative ctx (Ir.type_of_value src)
                         (Ranges.Itv (lo, hi))
                    && (match Ranges.sub64 hi lo with
                       | Some w ->
                           w <= Int64.mul 2L (Int64.succ (Int64.sub bh bl))
                       | None -> false)
                  then
                    ctx.emit
                      (Diag.at_instr ~check:"trunc-range" ~sev:Diag.Warning
                         ~k_func f i
                         (Printf.sprintf
                            "truncation to %s may lose the value: source \
                             range %s exceeds its bounds"
                            (Types.to_string dty)
                            (Ranges.to_string (Ranges.Itv (lo, hi)))))
              | _ -> ())
          | _ -> ()
          | exception Types.Unresolved _ -> ())
      | _ -> ())
    f

(* ---------- unreachable blocks ---------- *)

let check_unreachable ctx ~k_func (f : Ir.func) (cfg : Analysis.Cfg.t) =
  List.iter
    (fun (b : Ir.block) ->
      if not (Analysis.Cfg.is_reachable cfg b) then
        ctx.emit
          (Diag.at_block ~check:"unreachable-block" ~sev:Diag.Warning ~k_func
             f b
             (Printf.sprintf "block %%%s is unreachable from the entry"
                b.Ir.bname)))
    f.Ir.fblocks

(* ---------- unused results of pure calls ---------- *)

let check_unused_result ctx ~k_func (f : Ir.func) =
  Ir.iter_instrs
    (fun i ->
      match i.Ir.op with
      | Ir.Call | Ir.Invoke -> (
          match Ir.call_callee i with
          | Ir.Vfunc g
            when (not (Ir.is_declaration g))
                 && (not (Types.equal i.Ir.ity Types.Void))
                 && i.Ir.iuses = []
                 && (Summaries.func_summary ctx.summaries g).Summaries.pure ->
              ctx.emit
                (Diag.at_instr ~check:"unused-result" ~sev:Diag.Warning
                   ~k_func f i
                   (Printf.sprintf
                      "result of call to side-effect-free %%%s is unused"
                      g.Ir.fname))
          | _ -> ())
      | _ -> ())
    f

(* ---------- per-function driver ---------- *)

let run_function ctx ~k_func (f : Ir.func) =
  if not (Ir.is_declaration f) then begin
    let cfg = Analysis.Cfg.build f in
    let allocas =
      Ir.fold_instrs
        (fun acc i ->
          if i.Ir.op = Ir.Alloca then classify_alloca ctx i :: acc else acc)
        [] f
      |> List.rev
    in
    check_uninit ctx ~k_func f cfg allocas;
    check_dead_store ctx ~k_func f allocas;
    check_oob ctx ~k_func f;
    check_null ctx ~k_func f;
    check_dangling ctx ~k_func f;
    check_div_zero ctx ~k_func f;
    check_shift ctx ~k_func f;
    check_trunc ctx ~k_func f;
    check_unreachable ctx ~k_func f cfg;
    check_unused_result ctx ~k_func f
  end
