(* Structured diagnostics for llva-lint.

   A diagnostic names the check that produced it, a severity, a precise
   location inside the module (function / block / instruction index), and
   a human-readable message. Ordering is fully deterministic: diagnostics
   sort by position in the module (function order, block order within the
   function, instruction index), then by check id and message, so two
   runs over the same module always print identical reports regardless of
   hashtable iteration or checker scheduling. *)

open Llva

type severity = Note | Warning | Error

let severity_name = function
  | Note -> "note"
  | Warning -> "warning"
  | Error -> "error"

let severity_of_name = function
  | "note" -> Some Note
  | "warning" -> Some Warning
  | "error" -> Some Error
  | _ -> None

let severity_rank = function Note -> 0 | Warning -> 1 | Error -> 2

type t = {
  check : string; (* check id, e.g. "uninit-load" *)
  sev : severity;
  func : string; (* "" for module-level diagnostics *)
  block : string; (* "" when not tied to a block *)
  instr : int; (* instruction index within the block; -1 when none *)
  site : string; (* short printed form of the site, e.g. "load %p" *)
  msg : string;
  related : string list;
      (* other functions implicated by an interprocedural finding (the
         callee of a bad call, every member of an offending SCC); the
         per-function cache gate blames them alongside [func] *)
  relation : string;
      (* v3: the relational fact a range-proven finding rests on, e.g.
         "%n >= len(%buf)"; "" when the finding is interval-only *)
  (* ordering keys (function / block position in the module); not part of
     the rendered record *)
  k_func : int;
  k_block : int;
}

let mk ~check ~sev ?(func = "") ?(block = "") ?(instr = -1) ?(site = "")
    ?(related = []) ?(relation = "") ?(k_func = -1) ?(k_block = -1) msg =
  { check; sev; func; block; instr; site; msg; related; relation; k_func; k_block }

(* Describe an instruction site compactly: "%name = opcode" or just the
   opcode for unnamed/void instructions. *)
let describe_instr (i : Ir.instr) =
  if i.Ir.iname = "" then Ir.opcode_name i.Ir.op
  else Printf.sprintf "%%%s = %s" i.Ir.iname (Ir.opcode_name i.Ir.op)

(* Location of [i] inside function [f] (which sits at [k_func] in the
   module): block position and instruction index are recovered from the
   function body, so every checker reports positions the same way. *)
let at_instr ~check ~sev ?(related = []) ?(relation = "") ~k_func (f : Ir.func)
    (i : Ir.instr) msg =
  let k_block = ref (-1) and instr_idx = ref (-1) and block_name = ref "" in
  List.iteri
    (fun bk (b : Ir.block) ->
      List.iteri
        (fun ik i' ->
          if i' == i then begin
            k_block := bk;
            instr_idx := ik;
            block_name := b.Ir.bname
          end)
        b.Ir.instrs)
    f.Ir.fblocks;
  {
    check;
    sev;
    func = f.Ir.fname;
    block = !block_name;
    instr = !instr_idx;
    site = describe_instr i;
    msg;
    related;
    relation;
    k_func;
    k_block = !k_block;
  }

let at_block ~check ~sev ?(related = []) ~k_func (f : Ir.func) (b : Ir.block)
    msg =
  let k_block = ref (-1) in
  List.iteri (fun bk b' -> if b' == b then k_block := bk) f.Ir.fblocks;
  {
    check;
    sev;
    func = f.Ir.fname;
    block = b.Ir.bname;
    instr = -1;
    site = Printf.sprintf "block %%%s" b.Ir.bname;
    msg;
    related;
    relation = "";
    k_func;
    k_block = !k_block;
  }

let compare_diag (a : t) (b : t) =
  let c = compare a.k_func b.k_func in
  if c <> 0 then c
  else
    let c = compare a.k_block b.k_block in
    if c <> 0 then c
    else
      let c = compare a.instr b.instr in
      if c <> 0 then c
      else
        let c = compare a.check b.check in
        if c <> 0 then c
        else
          let c = compare a.msg b.msg in
          if c <> 0 then c
          else
            let c = compare a.related b.related in
            if c <> 0 then c else compare a.relation b.relation

let sort diags = List.stable_sort compare_diag diags

let count_severity sev diags = List.length (List.filter (fun d -> d.sev = sev) diags)

(* ---------- text renderer ---------- *)

let to_text (d : t) =
  let where =
    if d.func = "" then "module"
    else if d.block = "" then Printf.sprintf "%%%s" d.func
    else if d.instr < 0 then Printf.sprintf "%%%s:%%%s" d.func d.block
    else Printf.sprintf "%%%s:%%%s:#%d" d.func d.block d.instr
  in
  let site = if d.site = "" then "" else Printf.sprintf " (%s)" d.site in
  let rel =
    if d.relation = "" then "" else Printf.sprintf " [rel: %s]" d.relation
  in
  Printf.sprintf "%s: %s[%s]%s: %s%s" where (severity_name d.sev) d.check site
    d.msg rel

let render_text diags = String.concat "\n" (List.map to_text diags)

(* ---------- JSON renderer / reader ---------- *)

(* v2: every diagnostic carries a "related" function list so per-function
   verdicts can blame interprocedural findings on all involved parties.
   v3: a "relation" field records the relational (difference-bound) fact a
   range-proven finding rests on; "" for interval-only findings. *)
let schema_version = 3

let diag_to_json (d : t) =
  Json.Obj
    [
      ("check", Json.Str d.check);
      ("severity", Json.Str (severity_name d.sev));
      ("function", Json.Str d.func);
      ("block", Json.Str d.block);
      ("instr", Json.Int d.instr);
      ("site", Json.Str d.site);
      ("message", Json.Str d.msg);
      ("related", Json.List (List.map (fun f -> Json.Str f) d.related));
      ("relation", Json.Str d.relation);
    ]

let to_json diags =
  Json.Obj
    [
      ("version", Json.Int schema_version);
      ("errors", Json.Int (count_severity Error diags));
      ("warnings", Json.Int (count_severity Warning diags));
      ("diagnostics", Json.List (List.map diag_to_json diags));
    ]

let render_json ?(pretty = true) diags = Json.to_string ~pretty (to_json diags)

(* Strict reader for the JSON schema above; raises [Json.Parse_error] on a
   missing or mistyped field. Positional sort keys are not part of the
   wire format, so round-tripped diagnostics keep only array order. *)
let diag_of_json (j : Json.t) : t =
  let s key = Json.get_string key (Json.get_member "diagnostic" key j) in
  let n key = Json.get_int key (Json.get_member "diagnostic" key j) in
  let sev =
    match severity_of_name (s "severity") with
    | Some sev -> sev
    | None -> raise (Json.Parse_error ("bad severity: " ^ s "severity"))
  in
  let related =
    List.map
      (Json.get_string "related")
      (Json.get_list "related" (Json.get_member "diagnostic" "related" j))
  in
  {
    check = s "check";
    sev;
    func = s "function";
    block = s "block";
    instr = n "instr";
    site = s "site";
    msg = s "message";
    related;
    relation = s "relation";
    k_func = -1;
    k_block = -1;
  }

let of_json (j : Json.t) : t list =
  let version = Json.get_int "version" (Json.get_member "report" "version" j) in
  if version <> schema_version then
    raise (Json.Parse_error (Printf.sprintf "unsupported version %d" version));
  List.map diag_of_json
    (Json.get_list "diagnostics" (Json.get_member "report" "diagnostics" j))
