(* A minimal JSON value type with a printer and a strict recursive-descent
   parser — just enough for llva-lint's machine-readable output and the
   round-trip tests, without pulling in an external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------- printing ---------- *)

let escape_to buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let to_string ?(pretty = false) (v : t) : string =
  let buf = Buffer.create 256 in
  let indent n = if pretty then Buffer.add_string buf (String.make n ' ') in
  let newline () = if pretty then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Str s ->
        Buffer.add_char buf '"';
        escape_to buf s;
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        newline ();
        List.iteri
          (fun k item ->
            if k > 0 then begin
              Buffer.add_char buf ',';
              newline ()
            end;
            indent ((depth + 1) * 2);
            go (depth + 1) item)
          items;
        newline ();
        indent (depth * 2);
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        newline ();
        List.iteri
          (fun k (key, value) ->
            if k > 0 then begin
              Buffer.add_char buf ',';
              newline ()
            end;
            indent ((depth + 1) * 2);
            Buffer.add_char buf '"';
            escape_to buf key;
            Buffer.add_string buf (if pretty then "\": " else "\":");
            go (depth + 1) value)
          fields;
        newline ();
        indent (depth * 2);
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* ---------- parsing ---------- *)

exception Parse_error of string

let parse (s : string) : t =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < len
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let n = String.length word in
    if !pos + n <= len && String.sub s !pos n = word then begin
      pos := !pos + n;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > len then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              (* exactly four hex digits: [int_of_string "0x..."] would also
                 accept OCaml literal syntax like underscores ("1_2f"), which
                 is not JSON *)
              let is_hex = function
                | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
                | _ -> false
              in
              if not (String.for_all is_hex hex) then fail "bad \\u escape";
              let code = int_of_string ("0x" ^ hex) in
              pos := !pos + 4;
              (* only the control-plane characters we emit; anything else
                 in the BMP is passed through as UTF-8 would require more
                 machinery than the lint schema needs *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else fail "non-ASCII \\u escape unsupported";
              go ()
          | _ -> fail "bad escape")
      | Some c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_int () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while !pos < len && match s.[!pos] with '0' .. '9' -> true | _ -> false do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match int_of_string_opt (String.sub s start (!pos - start)) with
    | Some n -> n
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields ((key, v) :: acc)
            | Some '}' -> advance (); List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
    | Some ('-' | '0' .. '9') -> Int (parse_int ())
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing characters";
  v

(* ---------- accessors (schema checks) ---------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let get_string msg = function
  | Str s -> s
  | _ -> raise (Parse_error (msg ^ ": expected string"))

let get_int msg = function
  | Int n -> n
  | _ -> raise (Parse_error (msg ^ ": expected int"))

let get_list msg = function
  | List l -> l
  | _ -> raise (Parse_error (msg ^ ": expected array"))

let get_member msg key v =
  match member key v with
  | Some x -> x
  | None -> raise (Parse_error (Printf.sprintf "%s: missing field %S" msg key))
