(* llva-lint driver: the check catalogue, enable/disable handling, and the
   module-level entry point. The input module must already verify; lint
   diagnoses code that is well-formed but provably wrong (or wasteful),
   which is exactly the analysis leverage §3.3/§5.1 claim for the V-ISA
   over an opaque binary ISA. *)

open Llva

type check_info = {
  id : string;
  default_on : bool; (* part of the default set? *)
  descr : string;
}

let catalogue : check_info list =
  [
    {
      id = "uninit-load";
      default_on = true;
      descr =
        "load of a stack allocation that is uninitialized on every path \
         (forward init dataflow over the CFG)";
    };
    {
      id = "maybe-uninit-load";
      default_on = false;
      descr =
        "load of a stack allocation that a must-init dataflow cannot prove \
         initialized on all paths (opt-in; may flag correlated branches)";
    };
    {
      id = "oob-access";
      default_on = true;
      descr =
        "constant out-of-bounds getelementptr/load/store, computed against \
         the target data layout";
    };
    {
      id = "null-deref";
      default_on = true;
      descr = "load, store or call through a provably null pointer";
    };
    {
      id = "null-arg";
      default_on = true;
      descr =
        "constant null passed to an argument the callee provably \
         dereferences (bottom-up call-graph summaries)";
    };
    {
      id = "dangling-pointer";
      default_on = true;
      descr =
        "stack address returned to the caller or stored into a global";
    };
    {
      id = "div-by-zero";
      default_on = true;
      descr = "integer division or remainder by constant zero";
    };
    {
      id = "unreachable-block";
      default_on = true;
      descr = "basic block unreachable from the function entry";
    };
    {
      id = "dead-store";
      default_on = true;
      descr = "store to a stack allocation that is never read";
    };
    {
      id = "unused-result";
      default_on = true;
      descr = "unused result of a call to a side-effect-free function";
    };
  ]

let check_ids = List.map (fun c -> c.id) catalogue
let default_checks = List.filter_map (fun c -> if c.default_on then Some c.id else None) catalogue

exception Unknown_check of string

let validate_checks names =
  List.iter
    (fun n -> if not (List.mem n check_ids) then raise (Unknown_check n))
    names

(* Run the analyzer over a verified module. [checks] selects check ids
   (defaults to the default-on set; the special name "all" in the CLI
   expands to every id). Diagnostics come back deterministically ordered.
   @raise Unknown_check for an unrecognized check id. *)
let run ?checks (m : Ir.modl) : Diag.t list =
  let enabled =
    match checks with
    | None -> default_checks
    | Some names ->
        validate_checks names;
        names
  in
  let acc = ref [] in
  let ctx =
    {
      Checks.m;
      env = Ir.type_env m;
      lt = Vmem.Layout.for_module m;
      summaries = Summaries.compute m;
      emit = (fun d -> acc := d :: !acc);
    }
  in
  List.iteri (fun k_func f -> Checks.run_function ctx ~k_func f) m.Ir.funcs;
  !acc
  |> List.filter (fun (d : Diag.t) -> List.mem d.Diag.check enabled)
  |> Diag.sort
