(* llva-lint driver: the check catalogue, enable/disable handling, and the
   module-level entry point. The input module must already verify; lint
   diagnoses code that is well-formed but provably wrong (or wasteful),
   which is exactly the analysis leverage §3.3/§5.1 claim for the V-ISA
   over an opaque binary ISA. *)

open Llva

type check_info = {
  id : string;
  default_on : bool; (* part of the default set? *)
  descr : string;
}

let catalogue : check_info list =
  [
    {
      id = "uninit-load";
      default_on = true;
      descr =
        "load of a stack allocation that is uninitialized on every path \
         (forward init dataflow over the CFG)";
    };
    {
      id = "maybe-uninit-load";
      default_on = false;
      descr =
        "load of a stack allocation that a must-init dataflow cannot prove \
         initialized on all paths (opt-in; may flag correlated branches)";
    };
    {
      id = "oob-access";
      default_on = true;
      descr =
        "out-of-bounds getelementptr/load/store, computed against the \
         target data layout from constant, range-analyzed or relational \
         (symbolic-length) offsets";
    };
    {
      id = "null-deref";
      default_on = true;
      descr = "load, store or call through a provably null pointer";
    };
    {
      id = "null-arg";
      default_on = true;
      descr =
        "constant null passed to an argument the callee provably \
         dereferences (bottom-up call-graph summaries)";
    };
    {
      id = "dangling-pointer";
      default_on = true;
      descr =
        "stack address returned to the caller or stored into a global";
    };
    {
      id = "div-by-zero";
      default_on = true;
      descr =
        "integer division or remainder by a constant or provably-zero \
         divisor (warning when its range merely includes zero)";
    };
    {
      id = "shift-range";
      default_on = true;
      descr =
        "shift whose amount provably reaches (error) or may reach \
         (warning) the bit width of the shifted type";
    };
    {
      id = "trunc-range";
      default_on = true;
      descr =
        "integer truncation whose source range provably cannot (error) or \
         may not (warning) fit the destination type";
    };
    {
      id = "unreachable-block";
      default_on = true;
      descr = "basic block unreachable from the function entry";
    };
    {
      id = "dead-store";
      default_on = true;
      descr = "store to a stack allocation that is never read";
    };
    {
      id = "unused-result";
      default_on = true;
      descr = "unused result of a call to a side-effect-free function";
    };
  ]

let check_ids = List.map (fun c -> c.id) catalogue
let default_checks = List.filter_map (fun c -> if c.default_on then Some c.id else None) catalogue

exception Unknown_check of string

let validate_checks names =
  List.iter
    (fun n -> if not (List.mem n check_ids) then raise (Unknown_check n))
    names

(* Run the analyzer over a verified module. [checks] selects check ids
   (defaults to the default-on set; the special name "all" in the CLI
   expands to every id). Diagnostics come back deterministically ordered.
   @raise Unknown_check for an unrecognized check id. *)
let run ?checks (m : Ir.modl) : Diag.t list =
  let enabled =
    match checks with
    | None -> default_checks
    | Some names ->
        validate_checks names;
        names
  in
  let acc = ref [] in
  let sccs : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun scc ->
      let names = List.map (fun (f : Ir.func) -> f.Ir.fname) scc in
      List.iter (fun n -> Hashtbl.replace sccs n names) names)
    (Analysis.Callgraph.sccs (Analysis.Callgraph.compute m));
  let summaries = Summaries.compute m in
  let ranges = Ranges.compute m in
  (* publish the relational argument facts: the oob checker keys its
     symbolic-length reasoning off their presence *)
  Summaries.set_relations summaries (Ranges.export_relations ranges);
  let ctx =
    {
      Checks.m;
      env = Ir.type_env m;
      lt = Vmem.Layout.for_module m;
      summaries;
      ranges;
      sccs;
      emit = (fun d -> acc := d :: !acc);
    }
  in
  List.iteri (fun k_func f -> Checks.run_function ctx ~k_func f) m.Ir.funcs;
  !acc
  |> List.filter (fun (d : Diag.t) -> List.mem d.Diag.check enabled)
  |> Diag.sort

(* ---------- cacheable verdicts (lint-before-cache) ---------- *)

(* A verdict is the recordable outcome of one analyzer run: the analysis
   version that produced it, the checks that ran, and the findings. The
   execution manager stores verdicts next to cached translations so a
   module is linted once — warm launches reuse the recorded verdict
   instead of re-analyzing (paper §4.1: idle-time work is done once and
   amortized across launches).

   [version] stamps every recorded verdict. Bump it whenever the analyzer
   can produce different findings for the same module (new checks, fixed
   false negatives, changed severities): recorded verdicts with another
   stamp are rejected by [verdict_of_json] and force a re-lint. *)

(* v2: range-upgraded oob-access/div-by-zero, shift-range and trunc-range
   checks, Error-severity null-arg, and per-diagnostic related-function
   lists (diag schema 2) for per-function verdict granularity.
   v3: relational range analysis — difference-bound and symbolic-length
   facts upgrade oob-access over variable-length objects, merge-point
   guard refinement sharpens intervals, and diagnostics carry a
   "relation" field (diag schema 3). Recorded v2 verdicts are orphaned
   and re-linted. *)
let version = 3

type verdict = {
  v_version : int; (* analysis version that produced this verdict *)
  v_checks : string list; (* check ids that ran *)
  v_diags : Diag.t list; (* recorded findings, deterministically ordered *)
}

let verdict ?checks (m : Ir.modl) : verdict =
  let enabled =
    match checks with
    | None -> default_checks
    | Some names ->
        validate_checks names;
        names
  in
  { v_version = version; v_checks = enabled; v_diags = run ~checks:enabled m }

let verdict_diags v = v.v_diags
let verdict_errors v = Diag.count_severity Diag.Error v.v_diags
let verdict_warnings v = Diag.count_severity Diag.Warning v.v_diags

(* Clean means no error-severity findings: warnings never gate caching,
   matching the CLI's exit-code policy (without --werror). *)
let verdict_clean v = verdict_errors v = 0

(* Functions implicated by at least one error-severity finding: the
   reporting function plus every function it names as related (callee
   SCCs of interprocedural findings). Sorted, unique, no "" entries —
   the execution manager blocks exactly these from the native cache. *)
let verdict_tainted v : string list =
  List.concat_map
    (fun (d : Diag.t) ->
      if d.Diag.sev = Diag.Error then d.Diag.func :: d.Diag.related else [])
    v.v_diags
  |> List.filter (fun n -> n <> "")
  |> List.sort_uniq compare

let verdict_to_json (v : verdict) : Json.t =
  Json.Obj
    [
      ("lint_version", Json.Int v.v_version);
      ("checks", Json.List (List.map (fun c -> Json.Str c) v.v_checks));
      ("report", Diag.to_json v.v_diags);
    ]

(* Strict reader: raises [Json.Parse_error] on any schema violation, an
   unknown check id (the catalogue changed under the verdict), or a
   version stamp other than the current [version] — a stale verdict must
   never be trusted, it forces a re-lint instead. *)
let verdict_of_json (j : Json.t) : verdict =
  let stamp =
    Json.get_int "lint_version" (Json.get_member "verdict" "lint_version" j)
  in
  if stamp <> version then
    raise
      (Json.Parse_error
         (Printf.sprintf "stale lint version %d (current %d)" stamp version));
  let checks =
    List.map
      (Json.get_string "checks")
      (Json.get_list "checks" (Json.get_member "verdict" "checks" j))
  in
  (try validate_checks checks
   with Unknown_check c -> raise (Json.Parse_error ("unknown check " ^ c)));
  {
    v_version = stamp;
    v_checks = checks;
    v_diags = Diag.of_json (Json.get_member "verdict" "report" j);
  }
