(* Interprocedural integer value-range analysis: abstract interpretation
   over intervals of the *mathematical* value each SSA register holds
   (paper §3.3: the typed SSA V-ISA is what makes an analysis of this
   shape tractable on shipped object code).

   The domain is [Bot | Itv (lo, hi) | Top] where [Itv] bounds the
   canonical representative of [Ir.normalize_int] — which equals the
   mathematical value for every integer type except [ulong], whose values
   at or above 2^63 have no int64 representative. Ulong therefore gets an
   unbounded top ([Top]) and only its sub-2^63 values are ever tracked;
   every other type's top is its full representable range, so stored
   intervals stay canonical (always inside the type bounds).

   Structure, mirroring [Summaries]:
   - per function: reverse-postorder join-ascent sweeps over the [Cfg],
     with bounded widening at phis inside natural loops (from [Loops])
     after [widen_delay] sweeps, a hard [max_sweeps] budget whose
     exhaustion falls back to all-top (and clears [fixpoint_reached]),
     and a two-sweep narrowing pass to claw back widening losses;
   - flow sensitivity: branch conditions ([Setcc]-guarded [Br] edges and
     single-target [Mbr] cases) become edge constraints; a value read in
     block B is refined by every constraint on a dominating
     single-predecessor edge, and phi arms by their incoming edge;
   - interprocedurally: return ranges computed bottom-up over
     [Callgraph.sccs] with a bounded per-SCC fixpoint, then descending
     rounds that join call-site argument ranges into per-argument
     summaries (only for functions whose callers are all visible: not
     [main], not address-taken). Stopping the descent at any round is
     sound, so the round budget needs no fallback.

   Everything here is deterministic: iteration follows module, block and
   instruction order; hash tables are only used for keyed lookup. *)

open Llva

type itv = Bot | Itv of int64 * int64 | Top

let to_string = function
  | Bot -> "bot"
  | Top -> "top"
  | Itv (l, h) ->
      if l = h then Printf.sprintf "[%Ld]" l else Printf.sprintf "[%Ld..%Ld]" l h

(* ---------- lattice ---------- *)

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Top, _ | _, Top -> Top
  | Itv (l1, h1), Itv (l2, h2) -> Itv (min l1 l2, max h1 h2)

let meet a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Top, x | x, Top -> x
  | Itv (l1, h1), Itv (l2, h2) ->
      let l = max l1 l2 and h = min h1 h2 in
      if l > h then Bot else Itv (l, h)

(* ---------- overflow-checked int64 helpers ---------- *)

let add64 a b =
  let r = Int64.add a b in
  if a >= 0L = (b >= 0L) && r >= 0L <> (a >= 0L) then None else Some r

let sub64 a b =
  if b = Int64.min_int then if a < 0L then Some (Int64.sub a b) else None
  else add64 a (Int64.neg b)

let mul64 a b =
  if a = 0L || b = 0L then Some 0L
  else if (a = -1L && b = Int64.min_int) || (b = -1L && a = Int64.min_int) then
    None
  else
    let r = Int64.mul a b in
    if Int64.div r b = a && Int64.rem r b = 0L then Some r else None

(* a * 2^s, for 0 <= s <= 63 *)
let shl64 a s =
  if a = 0L then Some 0L
  else if s >= 63 then None
  else mul64 a (Int64.shift_left 1L s)

(* ---------- the type-bounds view of the domain ---------- *)

(* Representable range of the canonical representative; [None] for ulong,
   whose top is unbounded. Callers pass resolved int-like types. *)
let bounds = function
  | Types.Bool -> Some (0L, 1L)
  | Types.Ubyte -> Some (0L, 255L)
  | Types.Sbyte -> Some (-128L, 127L)
  | Types.Ushort -> Some (0L, 65535L)
  | Types.Short -> Some (-32768L, 32767L)
  | Types.Uint -> Some (0L, 4294967295L)
  | Types.Int -> Some (-2147483648L, 2147483647L)
  | Types.Long -> Some (Int64.min_int, Int64.max_int)
  | _ -> None (* Ulong, or a type we never track *)

let top_of ty = match bounds ty with Some (l, h) -> Itv (l, h) | None -> Top

(* Is this range as good as knowing nothing about a value of [ty]? *)
let is_top ty itv = itv = Top || itv = top_of ty

let int_like env ty =
  match Types.resolve env ty with
  | Types.Bool -> true
  | t -> Types.is_integer t
  | exception Types.Unresolved _ -> false

(* A computed mathematical interval becomes a sound range for a value of
   [ty]: kept when it fits entirely inside the representable range, and
   degraded to the type's top when it does not (the runtime wraps, which
   an interval cannot describe). *)
let fit ty = function
  | Bot -> Bot
  | Top -> top_of ty
  | Itv (l, h) as itv -> (
      match bounds ty with
      | Some (bl, bh) -> if l >= bl && h <= bh then itv else top_of ty
      | None -> if l >= 0L then itv else Top)

let clamp ty itv = meet itv (top_of ty)

(* ---------- pure interval arithmetic (for gep offset walks) ---------- *)

let itv_add a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Top, _ | _, Top -> Top
  | Itv (l1, h1), Itv (l2, h2) -> (
      match (add64 l1 l2, add64 h1 h2) with
      | Some l, Some h -> Itv (l, h)
      | _ -> Top)

let itv_scale k a =
  match a with
  | Bot -> Bot
  | Top -> if k = 0L then Itv (0L, 0L) else Top
  | Itv (l, h) -> (
      match (mul64 k l, mul64 k h) with
      | Some a, Some b -> Itv (min a b, max a b)
      | _ -> Top)

(* ---------- constants ---------- *)

let const_itv env (v : Ir.value) : itv =
  match v with
  | Ir.Const { cty; ckind } -> (
      match Types.resolve env cty with
      | exception Types.Unresolved _ -> Top
      | rty -> (
          if not (int_like env rty) then Top
          else
            match ckind with
            | Ir.Cbool b -> if b then Itv (1L, 1L) else Itv (0L, 0L)
            | Ir.Cint n ->
                (* for ulong a negative representative is a value >= 2^63,
                   outside what the math domain can carry *)
                if rty = Types.Ulong && n < 0L then Top else Itv (n, n)
            | Ir.Czero -> Itv (0L, 0L)
            | _ -> top_of rty))
  | Ir.Vundef ty -> (
      match Types.resolve env ty with
      | rty -> top_of rty
      | exception Types.Unresolved _ -> Top)
  | _ -> Top

(* ---------- analysis state ---------- *)

type constr = {
  ccmp : Ir.cmp;
  ctaken : bool; (* the branch direction this edge represents *)
  ca : Ir.value;
  cb : Ir.value;
}

(* ---------- relational layer: symbols and difference bounds ---------- *)

(* A node of the difference-bound domain: the distinguished zero node (so
   unary interval bounds embed as differences against 0), an SSA register,
   a function argument, or the *element count* of the object a pointer
   argument points to — the "length" of a variable-length allocation,
   linked to concrete call-site objects by the interprocedural rounds.
   Only types whose canonical representative is the mathematical value
   participate; ulong would need the modular reasoning a DBM cannot do. *)
type sym = Szero | Sreg of int (* instr id *) | Sarg of int | Slen of int

(* A closed difference-bound matrix over a small symbol set:
   [dmat.(i).(j) = Some c] means sym_i - sym_j <= c (on every execution
   reaching the block the matrix was built for). *)
type dbm = {
  dsyms : sym array;
  dix : (sym, int) Hashtbl.t;
  dmat : int64 option array array;
}

type fn_info = {
  fi_f : Ir.func;
  fi_cfg : Analysis.Cfg.t;
  fi_dom : Analysis.Dominance.t;
  fi_loopdepth : int array; (* per block index; 0 = not in a loop *)
  fi_edge_cs : (int * int, constr list) Hashtbl.t; (* (pred, succ) edge *)
  fi_ivals : (int, itv) Hashtbl.t; (* instr id -> range *)
  fi_args : (int, itv) Hashtbl.t; (* arg id -> range *)
  mutable fi_ret : itv;
  mutable fi_fp : bool; (* per-function fixpoint inside the budget *)
  mutable fi_sweeps : int;
  fi_instr_of : (int, Ir.instr) Hashtbl.t; (* instr id -> instr *)
  fi_arg_of : (int, Ir.arg) Hashtbl.t; (* arg id -> arg *)
  (* no-wrap dataflow equations, tagged with the defining block index *)
  mutable fi_flow : (int * sym * sym * int64) list;
  fi_rel_args : (int * int, int64) Hashtbl.t; (* (a, b): arg a - arg b <= c *)
  fi_rel_len : (int * int, int64) Hashtbl.t; (* (a, p): arg a - len(p) <= c *)
  fi_dbms : (int, dbm) Hashtbl.t; (* block index -> closed DBM (cache) *)
  mutable fi_rel_dropped : int; (* facts lost to the DBM node cap *)
}

type t = {
  rm : Ir.modl;
  renv : Types.env;
  rlt : Vmem.Layout.t; (* data layout, for element sizes of length syms *)
  fns : (int, fn_info) Hashtbl.t; (* func id -> info; defined funcs only *)
  mutable rounds : int; (* interprocedural descending rounds run *)
}

let add_edge_constr fi key c =
  let cur =
    match Hashtbl.find_opt fi.fi_edge_cs key with Some l -> l | None -> []
  in
  Hashtbl.replace fi.fi_edge_cs key (cur @ [ c ])

let collect_constraints env fi =
  let cfg = fi.fi_cfg in
  let idx b = Analysis.Cfg.index_of cfg b in
  Analysis.Cfg.iter_rpo
    (fun (b : Ir.block) ->
      match Ir.terminator b with
      | Some
          ({
             Ir.op = Ir.Br;
             operands = [| cond; Ir.Vblock tb; Ir.Vblock fb |];
             _;
           } as _br)
        when not (tb == fb) -> (
          match cond with
          | Ir.Vreg ({ Ir.op = Ir.Setcc cmp; _ } as s)
            when int_like env (Ir.type_of_value s.Ir.operands.(0)) ->
              let kb = idx b in
              let c taken =
                {
                  ccmp = cmp;
                  ctaken = taken;
                  ca = s.Ir.operands.(0);
                  cb = s.Ir.operands.(1);
                }
              in
              add_edge_constr fi (kb, idx tb) (c true);
              add_edge_constr fi (kb, idx fb) (c false)
          | _ -> ())
      | Some ({ Ir.op = Ir.Mbr; _ } as mbr)
        when int_like env (Ir.type_of_value mbr.Ir.operands.(0)) -> (
          (* a case edge carries [v = n], but only when the target is hit
             by exactly that one case and is not also the default *)
          let v = mbr.Ir.operands.(0) in
          let vty = Ir.type_of_value v in
          let cases = Ir.mbr_cases mbr in
          let default =
            match mbr.Ir.operands.(1) with
            | Ir.Vblock d -> Some d
            | _ -> None
          in
          let kb = idx b in
          List.iter
            (fun (n, (target : Ir.block)) ->
              let hits =
                List.length
                  (List.filter (fun (_, t2) -> t2 == target) cases)
              in
              let is_default =
                match default with Some d -> d == target | None -> true
              in
              if hits = 1 && not is_default then
                add_edge_constr fi
                  (kb, idx target)
                  {
                    ccmp = Ir.Eq;
                    ctaken = true;
                    ca = v;
                    cb = Ir.const_int vty n;
                  })
            cases)
      | _ -> ())
    cfg

let mk_fn_info env (f : Ir.func) : fn_info =
  let cfg = Analysis.Cfg.build f in
  let dom = Analysis.Dominance.compute cfg in
  let loops = Analysis.Loops.compute cfg dom in
  let loopdepth =
    Array.init (Analysis.Cfg.n_blocks cfg) (fun k ->
        Analysis.Loops.loop_depth loops (Analysis.Cfg.block cfg k))
  in
  let fi =
    {
      fi_f = f;
      fi_cfg = cfg;
      fi_dom = dom;
      fi_loopdepth = loopdepth;
      fi_edge_cs = Hashtbl.create 8;
      fi_ivals = Hashtbl.create 64;
      fi_args = Hashtbl.create 8;
      fi_ret = Top;
      fi_fp = true;
      fi_sweeps = 0;
      fi_instr_of = Hashtbl.create 64;
      fi_arg_of = Hashtbl.create 8;
      fi_flow = [];
      fi_rel_args = Hashtbl.create 8;
      fi_rel_len = Hashtbl.create 8;
      fi_dbms = Hashtbl.create 8;
      fi_rel_dropped = 0;
    }
  in
  Ir.iter_instrs (fun i -> Hashtbl.replace fi.fi_instr_of i.Ir.iid i) f;
  List.iter
    (fun (a : Ir.arg) -> Hashtbl.replace fi.fi_arg_of a.Ir.aid a)
    f.Ir.fargs;
  collect_constraints env fi;
  (* arguments start at the type's top; interprocedural rounds tighten *)
  List.iter
    (fun (a : Ir.arg) ->
      let top =
        match Types.resolve env a.Ir.aty with
        | rty -> top_of rty
        | exception Types.Unresolved _ -> Top
      in
      Hashtbl.replace fi.fi_args a.Ir.aid top)
    f.Ir.fargs;
  fi

(* ---------- reading values, with branch refinement ---------- *)

let lookup_base t fi (v : Ir.value) : itv =
  match v with
  | Ir.Const _ | Ir.Vundef _ -> const_itv t.renv v
  | Ir.Vreg i -> (
      match Hashtbl.find_opt fi.fi_ivals i.Ir.iid with
      | Some x -> x
      | None -> Bot)
  | Ir.Varg a -> (
      match Hashtbl.find_opt fi.fi_args a.Ir.aid with
      | Some x -> x
      | None -> Top)
  | _ -> Top

let negate_cmp = function
  | Ir.Eq -> Ir.Ne
  | Ir.Ne -> Ir.Eq
  | Ir.Lt -> Ir.Ge
  | Ir.Ge -> Ir.Lt
  | Ir.Gt -> Ir.Le
  | Ir.Le -> Ir.Gt

let swap_cmp = function
  | Ir.Lt -> Ir.Gt
  | Ir.Gt -> Ir.Lt
  | Ir.Le -> Ir.Ge
  | Ir.Ge -> Ir.Le
  | (Ir.Eq | Ir.Ne) as c -> c

(* [cur] further constrained by [v CMP other]. Comparisons on canonical
   representatives agree with the run-time comparison for every tracked
   range: signed representatives are the value, and unsigned ones
   (including tracked ulong) are non-negative, where signed and unsigned
   orders coincide. *)
let refine_lhs cmp cur (other : itv) =
  let at_most k = function
    | Bot -> Bot
    | Itv (l, h) -> if l > k then Bot else Itv (l, min h k)
    | Top -> if k < 0L then Bot else Itv (0L, k)
    (* Top is ulong-only: values are >= 0 *)
  in
  let at_least k = function
    | Bot -> Bot
    | Itv (l, h) -> if h < k then Bot else Itv (max l k, h)
    | Top -> Top (* no representable upper bound for ulong *)
  in
  match cmp with
  | Ir.Eq -> meet cur other
  | Ir.Ne -> (
      match (cur, other) with
      | Itv (l, h), Itv (bl, bh) when bl = bh ->
          if l = h && l = bl then Bot
          else if bl = l then Itv (Int64.add l 1L, h)
          else if bl = h then Itv (l, Int64.sub h 1L)
          else cur
      | _ -> cur)
  | Ir.Lt -> (
      match other with
      | Itv (_, bh) ->
          if bh = Int64.min_int then Bot else at_most (Int64.sub bh 1L) cur
      | _ -> cur)
  | Ir.Le -> ( match other with Itv (_, bh) -> at_most bh cur | _ -> cur)
  | Ir.Gt -> (
      match other with
      | Itv (bl, _) ->
          if bl = Int64.max_int then Bot else at_least (Int64.add bl 1L) cur
      | _ -> cur)
  | Ir.Ge -> ( match other with Itv (bl, _) -> at_least bl cur | _ -> cur)

let apply_constr t fi (c : constr) (v : Ir.value) (cur : itv) : itv =
  let cmp = if c.ctaken then c.ccmp else negate_cmp c.ccmp in
  if Ir.value_equal c.ca v then refine_lhs cmp cur (lookup_base t fi c.cb)
  else if Ir.value_equal c.cb v then
    refine_lhs (swap_cmp cmp) cur (lookup_base t fi c.ca)
  else cur

let edge_refine t fi (pk, sk) v cur =
  match Hashtbl.find_opt fi.fi_edge_cs (pk, sk) with
  | Some cs -> List.fold_left (fun r c -> apply_constr t fi c v r) cur cs
  | None -> cur

let reachable_preds fi s =
  List.filter
    (fun p ->
      Analysis.Cfg.is_reachable fi.fi_cfg (Analysis.Cfg.block fi.fi_cfg p))
    fi.fi_cfg.Analysis.Cfg.preds.(s)

(* Value of [v] as observed inside block [bk]: the flow-insensitive range,
   sharpened by every constraint guarding a dominating single-predecessor
   edge (the only way into that dominator, hence into [bk]). At a
   dominating *merge* point the join of the per-edge refinements is sound
   too: the last entry into the dominator came along one of its reachable
   incoming edges, so that edge's constraint held there, and any later
   redefinition of [v] would force re-entry through the dominator. We pay
   for the join only when every reachable edge actually carries
   constraints — an unconstrained edge would contribute the unrefined
   range and make the join a no-op. *)
let eval_at t fi bk (v : Ir.value) : itv =
  let base = lookup_base t fi v in
  match v with
  | Ir.Vreg _ | Ir.Varg _ ->
      let r = ref base in
      let k = ref bk in
      let continue_ = ref true in
      while !continue_ do
        let s = !k in
        (if s <> 0 then
           match fi.fi_cfg.Analysis.Cfg.preds.(s) with
           | [ p ] -> r := edge_refine t fi (p, s) v !r
           | _ -> (
               match reachable_preds fi s with
               | [] -> ()
               | ps
                 when List.for_all
                        (fun p -> Hashtbl.mem fi.fi_edge_cs (p, s))
                        ps ->
                   let cur = !r in
                   r :=
                     List.fold_left
                       (fun acc p -> join acc (edge_refine t fi (p, s) v cur))
                       Bot ps
               | _ -> ()));
        if s = 0 then continue_ := false
        else k := fi.fi_dom.Analysis.Dominance.idom.(s)
      done;
      !r
  | _ -> base

(* ---------- transfer functions ---------- *)

(* Generic interval transfer for one integer binop; operand ranges are
   mathematical intervals of canonical representatives. *)
let binop_ranges ty op (a : itv) (b : itv) : itv =
  let top = top_of ty in
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (al, ah), Itv (bl, bh) -> (
      match op with
      | Ir.Add -> (
          match (add64 al bl, add64 ah bh) with
          | Some l, Some h -> Itv (l, h)
          | _ -> top)
      | Ir.Sub -> (
          match (sub64 al bh, sub64 ah bl) with
          | Some l, Some h -> Itv (l, h)
          | _ -> top)
      | Ir.Mul -> (
          match (mul64 al bl, mul64 al bh, mul64 ah bl, mul64 ah bh) with
          | Some a1, Some a2, Some a3, Some a4 ->
              Itv (min (min a1 a2) (min a3 a4), max (max a1 a2) (max a3 a4))
          | _ -> top)
      | Ir.Div ->
          (* a zero divisor traps and produces nothing, so it can be cut
             from the divisor range; provably-zero means the result is
             unreachable *)
          let bl = if bl = 0L && bh > 0L then 1L else bl in
          let bh = if bh = 0L && bl < 0L then -1L else bh in
          if bl = 0L && bh = 0L then Bot
          else if bl > bh then Bot
          else if bl < 0L && bh > 0L then top
          else if al = Int64.min_int && bh = -1L && bl <= -1L then top
          else
            let c1 = Int64.div al bl
            and c2 = Int64.div al bh
            and c3 = Int64.div ah bl
            and c4 = Int64.div ah bh in
            Itv (min (min c1 c2) (min c3 c4), max (max c1 c2) (max c3 c4))
      | Ir.Rem ->
          let bl = if bl = 0L && bh > 0L then 1L else bl in
          if bl = 0L && bh = 0L then Bot
          else if bl > bh then Bot
          else if bl >= 1L then
            if al >= 0L && ah < bl then Itv (al, ah) (* a < divisor: a mod b = a *)
            else
              let hi = Int64.sub bh 1L in
              let lo = if al >= 0L then 0L else Int64.neg hi in
              Itv (lo, hi)
          else top
      | Ir.And ->
          (* x land y <= x when x >= 0, and the result stays >= 0 *)
          let r = top in
          let r = if al >= 0L then meet r (Itv (0L, ah)) else r in
          let r = if bl >= 0L then meet r (Itv (0L, bh)) else r in
          r
      | Ir.Or | Ir.Xor ->
          if al >= 0L && bl >= 0L then begin
            (* bounded by the smallest all-ones mask covering both *)
            let m = max ah bh in
            let bits = ref 1 in
            while
              !bits < 63 && Int64.sub (Int64.shift_left 1L !bits) 1L < m
            do
              incr bits
            done;
            let cover =
              if !bits >= 63 then Int64.max_int
              else Int64.sub (Int64.shift_left 1L !bits) 1L
            in
            Itv (0L, cover)
          end
          else top
      | Ir.Shl ->
          (* amounts are reduced modulo the declared width (Eval), so the
             endpoint transfer is only valid below it *)
          if bl >= 0L && bh < Int64.of_int (Types.bitwidth ty) && al >= 0L then
            match
              (shl64 al (Int64.to_int bl), shl64 ah (Int64.to_int bh))
            with
            | Some l, Some h -> Itv (l, h)
            | _ -> top
          else top
      | Ir.Shr ->
          (* arithmetic shift on canonical representatives matches the
             logical shift the unsigned types use, because their
             representatives are non-negative *)
          if bl >= 0L && bh < Int64.of_int (Types.bitwidth ty) then begin
            let s1 = Int64.to_int bl and s2 = Int64.to_int bh in
            let c1 = Int64.shift_right al s1
            and c2 = Int64.shift_right al s2
            and c3 = Int64.shift_right ah s1
            and c4 = Int64.shift_right ah s2 in
            Itv (min (min c1 c2) (min c3 c4), max (max c1 c2) (max c3 c4))
          end
          else top
      | exception _ -> top)
  | _ -> (
      (* one side is top; only [And] can still say something *)
      match op with
      | Ir.And ->
          let r = top in
          let r =
            match a with
            | Itv (al, ah) when al >= 0L -> meet r (Itv (0L, ah))
            | _ -> r
          in
          let r =
            match b with
            | Itv (bl, bh) when bl >= 0L -> meet r (Itv (0L, bh))
            | _ -> r
          in
          r
      | Ir.Rem -> (
          match b with
          | Itv (bl, bh) when bl >= 1L -> Itv (Int64.neg (Int64.sub bh 1L), Int64.sub bh 1L)
          | _ -> top)
      | _ -> top)

let binop_itv ty op (a : itv) (b : itv) : itv =
  match (a, b) with
  | Itv (al, ah), Itv (bl, bh)
    when al = ah && bl = bh && ty <> Types.Bool -> (
      (* both singletons: run the exact scalar semantics, bit-for-bit the
         same as the interpreter and the simulators *)
      match Eval.int_binop op ty al bl with
      | Eval.I (_, r) ->
          if ty = Types.Ulong && r < 0L then Top else Itv (r, r)
      | _ -> top_of ty
      | exception Eval.Division_by_zero -> Bot
      | exception Eval.Overflow -> Bot)
  | _ -> binop_ranges ty op a b

let setcc_itv t fi bk cmp (a : Ir.value) (b : Ir.value) : itv =
  let aty = Ir.type_of_value a in
  if not (int_like t.renv aty) then Itv (0L, 1L)
  else
    let ra = eval_at t fi bk a and rb = eval_at t fi bk b in
    match (ra, rb) with
    | Bot, _ | _, Bot -> Bot
    | Itv (al, ah), Itv (bl, bh) -> (
        let yes = Itv (1L, 1L) and no = Itv (0L, 0L) and maybe = Itv (0L, 1L) in
        match cmp with
        | Ir.Eq ->
            if al = ah && bl = bh && al = bl then yes
            else if ah < bl || bh < al then no
            else maybe
        | Ir.Ne ->
            if al = ah && bl = bh && al = bl then no
            else if ah < bl || bh < al then yes
            else maybe
        | Ir.Lt -> if ah < bl then yes else if al >= bh then no else maybe
        | Ir.Le -> if ah <= bl then yes else if al > bh then no else maybe
        | Ir.Gt -> if al > bh then yes else if ah <= bl then no else maybe
        | Ir.Ge -> if al >= bh then yes else if ah < bl then no else maybe)
    | _ -> Itv (0L, 1L)

let cast_itv dst_ty (a : itv) : itv =
  match dst_ty with
  | Types.Bool -> (
      match a with
      | Bot -> Bot
      | Itv (l, h) ->
          if l > 0L || h < 0L then Itv (1L, 1L)
          else if l = 0L && h = 0L then Itv (0L, 0L)
          else Itv (0L, 1L)
      | Top -> Itv (0L, 1L))
  | _ -> (
      match a with
      | Bot -> Bot
      | Itv (l, h) as itv -> (
          match bounds dst_ty with
          | Some (bl, bh) ->
              if l >= bl && h <= bh then itv else top_of dst_ty
          | None -> if l >= 0L then itv else Top)
      | Top -> top_of dst_ty)

let transfer t fi bk (i : Ir.instr) : itv option =
  if not (int_like t.renv i.Ir.ity) then None
  else
    let ty = Types.resolve t.renv i.Ir.ity in
    let result =
      match i.Ir.op with
      | Ir.Binop op ->
          binop_itv ty op
            (eval_at t fi bk i.Ir.operands.(0))
            (eval_at t fi bk i.Ir.operands.(1))
      | Ir.Setcc cmp -> setcc_itv t fi bk cmp i.Ir.operands.(0) i.Ir.operands.(1)
      | Ir.Cast ->
          let src = i.Ir.operands.(0) in
          let src_range =
            if int_like t.renv (Ir.type_of_value src) then eval_at t fi bk src
            else Top
          in
          cast_itv ty src_range
      | Ir.Phi ->
          List.fold_left
            (fun acc (av, (pred : Ir.block)) ->
              if not (Analysis.Cfg.is_reachable fi.fi_cfg pred) then acc
              else
                let pk = Analysis.Cfg.index_of fi.fi_cfg pred in
                let arm = eval_at t fi pk av in
                let arm = edge_refine t fi (pk, bk) av arm in
                join acc arm)
            Bot (Ir.phi_incoming i)
      | Ir.Call | Ir.Invoke -> (
          match Ir.call_callee i with
          | Ir.Vfunc g when not (Ir.is_declaration g) -> (
              match Hashtbl.find_opt t.fns g.Ir.fid with
              | Some gi -> gi.fi_ret
              | None -> top_of ty)
          | _ -> top_of ty)
      | _ -> top_of ty (* loads and anything else we do not model *)
    in
    Some (clamp ty result)

(* ---------- widening ---------- *)

(* Jump to the nearest of a tiny threshold set {0, type bound}: a lower
   bound that keeps sinking but stays non-negative lands on 0 (the
   ubiquitous counting-loop base) before giving up to the type minimum. *)
let widen ty old cand =
  match (old, cand) with
  | Bot, x | x, Bot -> x
  | Top, _ | _, Top -> Top
  | Itv (ol, oh), Itv (nl, nh) -> (
      let lo =
        if nl >= ol then min ol nl
        else if nl >= 0L then 0L
        else match bounds ty with Some (bl, _) -> bl | None -> 0L
      in
      match () with
      | () when nh <= oh -> Itv (lo, oh)
      | () -> (
          match bounds ty with
          | Some (_, bh) -> Itv (lo, bh)
          | None -> Top))

(* ---------- per-function fixpoint ---------- *)

let analyze_fn t fi ~widen_delay ~max_sweeps =
  Hashtbl.reset fi.fi_ivals;
  let cfg = fi.fi_cfg in
  let nb = Analysis.Cfg.n_blocks cfg in
  let sweep = ref 0 and changed = ref true in
  while !changed && !sweep < max_sweeps do
    incr sweep;
    changed := false;
    for bk = 0 to nb - 1 do
      let b = Analysis.Cfg.block cfg bk in
      List.iter
        (fun (i : Ir.instr) ->
          match transfer t fi bk i with
          | None -> ()
          | Some nv ->
              let old =
                match Hashtbl.find_opt fi.fi_ivals i.Ir.iid with
                | Some x -> x
                | None -> Bot
              in
              let cand = join old nv in
              let cand =
                if
                  i.Ir.op = Ir.Phi
                  && fi.fi_loopdepth.(bk) > 0
                  && !sweep > widen_delay
                  && cand <> old
                then widen (Types.resolve t.renv i.Ir.ity) old cand
                else cand
              in
              if cand <> old then begin
                Hashtbl.replace fi.fi_ivals i.Ir.iid cand;
                changed := true
              end)
        b.Ir.instrs
    done
  done;
  fi.fi_sweeps <- !sweep;
  if !changed then begin
    (* budget exhausted: give up soundly, every tracked value to top *)
    fi.fi_fp <- false;
    Ir.iter_instrs
      (fun i ->
        if int_like t.renv i.Ir.ity then
          Hashtbl.replace fi.fi_ivals i.Ir.iid
            (top_of (Types.resolve t.renv i.Ir.ity)))
      fi.fi_f
  end
  else begin
    fi.fi_fp <- true;
    (* narrowing: two descending sweeps recover what widening overshot;
       accepting [meet old new] keeps every step sound *)
    for _ = 1 to 2 do
      for bk = 0 to nb - 1 do
        let b = Analysis.Cfg.block cfg bk in
        List.iter
          (fun (i : Ir.instr) ->
            match transfer t fi bk i with
            | None -> ()
            | Some nv ->
                let old =
                  match Hashtbl.find_opt fi.fi_ivals i.Ir.iid with
                  | Some x -> x
                  | None -> Bot
                in
                let nv = meet old nv in
                if nv <> old then Hashtbl.replace fi.fi_ivals i.Ir.iid nv)
          b.Ir.instrs
      done
    done
  end;
  (* return range over the reachable return sites *)
  let fr = fi.fi_f.Ir.freturn in
  if not (int_like t.renv fr) then fi.fi_ret <- Top
  else begin
    let ret = ref Bot in
    for bk = 0 to nb - 1 do
      let b = Analysis.Cfg.block cfg bk in
      List.iter
        (fun (i : Ir.instr) ->
          match i.Ir.op with
          | Ir.Ret when Array.length i.Ir.operands = 1 ->
              ret := join !ret (eval_at t fi bk i.Ir.operands.(0))
          | _ -> ())
        b.Ir.instrs
    done;
    fi.fi_ret <- clamp (Types.resolve t.renv fr) !ret
  end

(* ---------- relational facts: harvesting and closure ---------- *)

(* Budgets. [rel_max_nodes] bounds every DBM (Floyd–Warshall is cubic in
   it); [rel_max_const] is the widening analogue for relational facts — a
   difference bound whose constant leaves +-2^32 is discarded rather than
   iterated; [rel_rounds_budget] bounds the interprocedural summary
   rounds (stopping anywhere is sound, exactly like the interval rounds). *)
let rel_max_nodes = 48
let rel_max_const = 0x1_0000_0000L
let rel_rounds_budget = 2
let rel_max_args = 8

let neg64 k = if k = Int64.min_int then None else Some (Int64.neg k)

let sym_ok t ty =
  match Types.resolve t.renv ty with
  | Types.Ulong -> false
  | rty -> rty = Types.Bool || Types.is_integer rty
  | exception Types.Unresolved _ -> false

(* View a value as [sym + offset]; constants live on the zero node. *)
let symify t (v : Ir.value) : (sym * int64) option =
  match v with
  | Ir.Vreg i when sym_ok t i.Ir.ity -> Some (Sreg i.Ir.iid, 0L)
  | Ir.Varg a when sym_ok t a.Ir.aty -> Some (Sarg a.Ir.aid, 0L)
  | Ir.Const { cty; ckind } when sym_ok t cty -> (
      match ckind with
      | Ir.Cint n -> Some (Szero, n)
      | Ir.Cbool b -> Some (Szero, if b then 1L else 0L)
      | Ir.Czero -> Some (Szero, 0L)
      | _ -> None)
  | _ -> None

let in_rel_cap c = c >= Int64.neg rel_max_const && c <= rel_max_const

(* Difference facts [sa - sb <= c] carried by one edge constraint. *)
let constr_facts t (c : constr) : (sym * sym * int64) list =
  let cmp = if c.ctaken then c.ccmp else negate_cmp c.ccmp in
  match (symify t c.ca, symify t c.cb) with
  | Some (sa, ka), Some (sb, kb) when sa <> sb -> (
      let keep = function
        | Some k when in_rel_cap k -> [ k ]
        | _ -> []
      in
      let d1 = sub64 kb ka (* bound on sa - sb *)
      and d2 = sub64 ka kb (* bound on sb - sa *) in
      let le_ab k = List.map (fun k -> (sa, sb, k)) (keep k)
      and le_ba k = List.map (fun k -> (sb, sa, k)) (keep k) in
      match cmp with
      | Ir.Lt -> le_ab (Option.bind d1 (fun d -> sub64 d 1L))
      | Ir.Le -> le_ab d1
      | Ir.Eq -> le_ab d1 @ le_ba d2
      | Ir.Ge -> le_ba d2
      | Ir.Gt -> le_ba (Option.bind d2 (fun d -> sub64 d 1L))
      | Ir.Ne -> [])
  | _ -> []

let constr_eq a b =
  a.ccmp = b.ccmp && a.ctaken = b.ctaken && Ir.value_equal a.ca b.ca
  && Ir.value_equal a.cb b.cb

(* Edge constraints in force throughout block [bk]: walk the dominator
   chain; a single-predecessor dominator contributes its incoming edge's
   constraints, and a dominating merge contributes the constraints present
   on *every* reachable incoming edge (same argument as [eval_at]). *)
let guard_constrs_at fi bk : constr list =
  let acc = ref [] in
  let k = ref bk in
  let continue_ = ref true in
  while !continue_ do
    let s = !k in
    (if s <> 0 then
       match fi.fi_cfg.Analysis.Cfg.preds.(s) with
       | [ p ] -> (
           match Hashtbl.find_opt fi.fi_edge_cs (p, s) with
           | Some cs -> acc := !acc @ cs
           | None -> ())
       | _ -> (
           match reachable_preds fi s with
           | [] -> ()
           | p0 :: rest ->
               let cs0 =
                 match Hashtbl.find_opt fi.fi_edge_cs (p0, s) with
                 | Some cs -> cs
                 | None -> []
               in
               let on_every_edge c =
                 List.for_all
                   (fun p ->
                     match Hashtbl.find_opt fi.fi_edge_cs (p, s) with
                     | Some cs -> List.exists (constr_eq c) cs
                     | None -> false)
                   rest
               in
               acc := !acc @ List.filter on_every_edge cs0));
    if s = 0 then continue_ := false
    else k := fi.fi_dom.Analysis.Dominance.idom.(s)
  done;
  !acc

(* Flow-insensitive difference equations from the SSA body. Each needs a
   no-wrap proof — the mathematical result interval of the operation must
   fit the result type — so the runtime value equals the mathematical one
   and the equation holds on every execution of the definition. Facts are
   tagged with the defining block so queries can restrict themselves to
   definitions that dominate (hence executed before) the query block. *)
let harvest_flow t fi =
  let facts = ref [] in
  let cfg = fi.fi_cfg in
  let nb = Analysis.Cfg.n_blocks cfg in
  for bk = 0 to nb - 1 do
    let b = Analysis.Cfg.block cfg bk in
    if Analysis.Cfg.is_reachable cfg b then
      List.iter
        (fun (i : Ir.instr) ->
          if sym_ok t i.Ir.ity then begin
            let ity = Types.resolve t.renv i.Ir.ity in
            let si = Sreg i.Ir.iid in
            let push sa sb c =
              if sa <> sb && in_rel_cap c then
                facts := (bk, sa, sb, c) :: !facts
            in
            (* si - s lies in [lo, hi] *)
            let bracket s lo hi =
              if s <> Szero && s <> si then begin
                push si s hi;
                match neg64 lo with Some c -> push s si c | None -> ()
              end
            in
            let equate v =
              match symify t v with
              | Some (s, k) -> bracket s k k
              | None -> ()
            in
            match i.Ir.op with
            | Ir.Binop Ir.Add -> (
                let x = i.Ir.operands.(0) and y = i.Ir.operands.(1) in
                match (lookup_base t fi x, lookup_base t fi y, bounds ity) with
                | Itv (xl, xh), Itv (yl, yh), Some (tl, th) -> (
                    match (add64 xl yl, add64 xh yh) with
                    | Some l, Some h when l >= tl && h <= th ->
                        (* i = x + y exactly: i - x in [yl,yh], i - y in
                           [xl,xh] *)
                        (match symify t x with
                        | Some (sx, 0L) -> bracket sx yl yh
                        | _ -> ());
                        (match symify t y with
                        | Some (sy, 0L) -> bracket sy xl xh
                        | _ -> ())
                    | _ -> ())
                | _ -> ())
            | Ir.Binop Ir.Sub -> (
                let x = i.Ir.operands.(0) and y = i.Ir.operands.(1) in
                match (lookup_base t fi x, lookup_base t fi y, bounds ity) with
                | Itv (xl, xh), Itv (yl, yh), Some (tl, th) -> (
                    match (sub64 xl yh, sub64 xh yl) with
                    | Some l, Some h when l >= tl && h <= th -> (
                        (* i = x - y exactly: i - x in [-yh,-yl] *)
                        match symify t x with
                        | Some (sx, 0L) -> (
                            match (neg64 yh, neg64 yl) with
                            | Some nl, Some nh -> bracket sx nl nh
                            | _ -> ())
                        | _ -> ())
                    | _ -> ())
                | _ -> ())
            | Ir.Cast -> (
                let x = i.Ir.operands.(0) in
                match (lookup_base t fi x, bounds ity) with
                | Itv (l, h), Some (tl, th) when l >= tl && h <= th ->
                    (* value-preserving cast: i = x *)
                    equate x
                | _ -> ())
            | Ir.Phi -> (
                let arms =
                  List.filter
                    (fun (_, (p : Ir.block)) ->
                      Analysis.Cfg.is_reachable cfg p)
                    (Ir.phi_incoming i)
                in
                match arms with
                | (v0, _) :: rest
                  when List.for_all
                         (fun (v, _) -> Ir.value_equal v v0)
                         rest ->
                    equate v0
                | _ -> ())
            | _ -> ()
          end)
        b.Ir.instrs
  done;
  fi.fi_flow <- List.rev !facts

(* ---------- DBM construction and closure ---------- *)

let dominates_blk fi a b = Analysis.Dominance.dominates_idx fi.fi_dom a b

(* The closed DBM in force at block [bk]: guard facts from dominating
   edges, this function's interprocedural argument facts, flow equations
   whose definition dominates [bk], and unary interval bounds as
   differences against the zero node — then Floyd–Warshall closure with
   overflow-saturating path sums. Cached per block; caches are reset
   whenever the underlying facts change. *)
let dbm_at t fi bk : dbm =
  match Hashtbl.find_opt fi.fi_dbms bk with
  | Some d -> d
  | None ->
      let guard_facts =
        List.concat_map (constr_facts t) (guard_constrs_at fi bk)
      in
      let arg_facts =
        Hashtbl.fold
          (fun (a, b) c acc -> (Sarg a, Sarg b, c) :: acc)
          fi.fi_rel_args []
        |> List.sort compare
      in
      let len_facts =
        Hashtbl.fold
          (fun (a, p) c acc -> (Sarg a, Slen p, c) :: acc)
          fi.fi_rel_len []
        |> List.sort compare
      in
      let flow =
        List.filter_map
          (fun (dk, sa, sb, c) ->
            if dominates_blk fi dk bk then Some (sa, sb, c) else None)
          fi.fi_flow
      in
      (* keep only flow equations that can link up with the symbols
         already in play; three passes let short chains attach *)
      let seen : (sym, unit) Hashtbl.t = Hashtbl.create 32 in
      Hashtbl.replace seen Szero ();
      let note (sa, sb, _) =
        Hashtbl.replace seen sa ();
        Hashtbl.replace seen sb ()
      in
      List.iter note guard_facts;
      List.iter note arg_facts;
      List.iter note len_facts;
      let relevant = ref [] and rest = ref flow in
      for _pass = 1 to 3 do
        let keep, drop =
          List.partition
            (fun (sa, sb, _) -> Hashtbl.mem seen sa || Hashtbl.mem seen sb)
            !rest
        in
        List.iter note keep;
        relevant := !relevant @ keep;
        rest := drop
      done;
      let facts = guard_facts @ arg_facts @ len_facts @ !relevant in
      (* assign nodes in first-seen order, zero node first, up to the cap *)
      let dix : (sym, int) Hashtbl.t = Hashtbl.create 16 in
      Hashtbl.replace dix Szero 0;
      let order = ref [ Szero ] and n = ref 1 in
      let node s =
        match Hashtbl.find_opt dix s with
        | Some k -> Some k
        | None ->
            if !n >= rel_max_nodes then None
            else begin
              Hashtbl.replace dix s !n;
              order := s :: !order;
              let k = !n in
              incr n;
              Some k
            end
      in
      let kept = ref [] in
      List.iter
        (fun (sa, sb, c) ->
          match (node sa, node sb) with
          | Some i, Some j -> kept := (i, j, c) :: !kept
          | _ -> fi.fi_rel_dropped <- fi.fi_rel_dropped + 1)
        facts;
      let nn = !n in
      let dsyms = Array.make nn Szero in
      List.iteri (fun k s -> dsyms.(nn - 1 - k) <- s) !order;
      let dmat = Array.init nn (fun _ -> Array.make nn None) in
      for k = 0 to nn - 1 do
        dmat.(k).(k) <- Some 0L
      done;
      let tighten i j c =
        match dmat.(i).(j) with
        | Some c0 when c0 <= c -> ()
        | _ -> dmat.(i).(j) <- Some c
      in
      List.iter (fun (i, j, c) -> tighten i j c) (List.rev !kept);
      (* unary interval seeds, only for values defined above [bk] *)
      Array.iteri
        (fun k s ->
          let seed v =
            match eval_at t fi bk v with
            | Itv (l, h) -> (
                tighten k 0 h;
                match neg64 l with Some c -> tighten 0 k c | None -> ())
            | _ -> ()
          in
          match s with
          | Sreg iid -> (
              match Hashtbl.find_opt fi.fi_instr_of iid with
              | Some i -> (
                  match i.Ir.iparent with
                  | Some b
                    when Analysis.Cfg.is_reachable fi.fi_cfg b
                         && dominates_blk fi
                              (Analysis.Cfg.index_of fi.fi_cfg b)
                              bk ->
                      seed (Ir.Vreg i)
                  | _ -> ())
              | None -> ())
          | Sarg aid -> (
              match Hashtbl.find_opt fi.fi_arg_of aid with
              | Some a -> seed (Ir.Varg a)
              | None -> ())
          | Szero | Slen _ -> ())
        dsyms;
      for mid = 0 to nn - 1 do
        for i = 0 to nn - 1 do
          match dmat.(i).(mid) with
          | None -> ()
          | Some a ->
              for j = 0 to nn - 1 do
                match dmat.(mid).(j) with
                | None -> ()
                | Some b -> (
                    match add64 a b with
                    | Some c -> tighten i j c
                    | None -> () (* path sum overflows: drop that path *))
              done
        done
      done;
      let d = { dsyms; dix; dmat } in
      Hashtbl.replace fi.fi_dbms bk d;
      d

(* Tightest proven bound on sym_a - sym_b; [Some 0] when they are the
   same symbol even if the DBM never saw it. *)
let dbm_dist (d : dbm) sa sb : int64 option =
  if sa = sb then Some 0L
  else
    match (Hashtbl.find_opt d.dix sa, Hashtbl.find_opt d.dix sb) with
    | Some i, Some j -> d.dmat.(i).(j)
    | _ -> None

(* ---------- interprocedural relational rounds ---------- *)

(* Length (in callee elements) of the object behind a pointer passed at a
   call site, as a symbol of the *caller*: a direct alloca contributes its
   element count, a forwarded pointer argument contributes the caller's
   own length symbol (linking chains of calls across rounds). Only exact
   base pointers with a matching element size qualify. *)
let rec caller_len t (v : Ir.value) (esc : int) : (sym * int64) option =
  match v with
  | Ir.Vreg ({ Ir.op = Ir.Cast; _ } as i) -> caller_len t i.Ir.operands.(0) esc
  | Ir.Vreg ({ Ir.op = Ir.Alloca; _ } as i) -> (
      match Types.resolve t.renv i.Ir.ity with
      | Types.Pointer elem -> (
          match Vmem.Layout.size_of t.rlt elem with
          | es when es = esc -> (
              if Array.length i.Ir.operands = 0 then Some (Szero, 1L)
              else if Array.length i.Ir.operands = 1 then
                symify t i.Ir.operands.(0)
              else None)
          | _ -> None
          | exception (Invalid_argument _ | Types.Unresolved _) -> None)
      | _ -> None
      | exception Types.Unresolved _ -> None)
  | Ir.Varg a -> (
      match Types.resolve t.renv a.Ir.aty with
      | Types.Pointer elem -> (
          match Vmem.Layout.size_of t.rlt elem with
          | es when es = esc -> Some (Slen a.Ir.aid, 0L)
          | _ -> None
          | exception (Invalid_argument _ | Types.Unresolved _) -> None)
      | _ -> None
      | exception Types.Unresolved _ -> None)
  | _ -> None

type rel_cand = Cargs of int * int | Clen of int * int (* callee arg ids *)
type rel_state = Unseen | Known of int64 | Dead

(* Element size of a pointer-typed formal, if resolvable. *)
let formal_elem_size t (a : Ir.arg) : int option =
  match Types.resolve t.renv a.Ir.aty with
  | Types.Pointer elem -> (
      try Some (Vmem.Layout.size_of t.rlt elem)
      with Invalid_argument _ | Types.Unresolved _ -> None)
  | _ -> None
  | exception Types.Unresolved _ -> None

(* Descending relational rounds over the same visibility rule as the
   interval rounds: a callee that is not [main] and not address-taken has
   every call site in view, so the max-join of a per-site proven bound is
   a sound flow-insensitive fact about its formals. Each round proves its
   facts from the previous round's (sound) facts, so installed facts are
   permanently sound and are only ever tightened ([min]), never removed —
   a candidate that goes unprovable at a new call site simply stops
   improving. DBM caches are reset whenever the fact base changes. *)
let compute_relations t cg =
  Hashtbl.iter (fun _ fi -> harvest_flow t fi) t.fns;
  let refinable (f : Ir.func) =
    (not (Ir.is_declaration f))
    && f.Ir.fname <> "main"
    && (not (Analysis.Callgraph.is_address_taken cg f))
    && List.length f.Ir.fargs <= rel_max_args
  in
  let cands : (int, (rel_cand * rel_state ref) list) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (g : Ir.func) ->
      if refinable g && Hashtbl.mem t.fns g.Ir.fid then begin
        let cl = ref [] in
        List.iter
          (fun (a : Ir.arg) ->
            if sym_ok t a.Ir.aty then
              List.iter
                (fun (b : Ir.arg) ->
                  if b.Ir.aid <> a.Ir.aid then
                    if sym_ok t b.Ir.aty then
                      cl := (Cargs (a.Ir.aid, b.Ir.aid), ref Unseen) :: !cl
                    else if formal_elem_size t b <> None then
                      cl := (Clen (a.Ir.aid, b.Ir.aid), ref Unseen) :: !cl)
                g.Ir.fargs)
          g.Ir.fargs;
        if !cl <> [] then Hashtbl.replace cands g.Ir.fid (List.rev !cl)
      end)
    t.rm.Ir.funcs;
  let round = ref 0 and changed = ref true in
  while !changed && !round < rel_rounds_budget do
    incr round;
    changed := false;
    Hashtbl.iter (fun _ fi -> Hashtbl.reset fi.fi_dbms) t.fns;
    Hashtbl.iter
      (fun _ cl -> List.iter (fun (_, st) -> st := Unseen) cl)
      cands;
    List.iter
      (fun (caller : Ir.func) ->
        match Hashtbl.find_opt t.fns caller.Ir.fid with
        | None -> ()
        | Some cfi ->
            Ir.iter_instrs
              (fun i ->
                match i.Ir.op with
                | Ir.Call | Ir.Invoke -> (
                    match Ir.call_callee i with
                    | Ir.Vfunc g when Hashtbl.mem cands g.Ir.fid -> (
                        match i.Ir.iparent with
                        | Some b when Analysis.Cfg.is_reachable cfi.fi_cfg b
                          ->
                            let bk =
                              Analysis.Cfg.index_of cfi.fi_cfg b
                            in
                            let actuals =
                              Array.of_list (Ir.call_args i)
                            in
                            let formals = Array.of_list g.Ir.fargs in
                            let actual_of aid =
                              let r = ref None in
                              Array.iteri
                                (fun k (a : Ir.arg) ->
                                  if
                                    a.Ir.aid = aid
                                    && k < Array.length actuals
                                  then r := Some actuals.(k))
                                formals;
                              !r
                            in
                            let formal_of aid =
                              List.find_opt
                                (fun (a : Ir.arg) -> a.Ir.aid = aid)
                                g.Ir.fargs
                            in
                            let d = dbm_at t cfi bk in
                            List.iter
                              (fun (c, st) ->
                                if !st <> Dead then
                                  let site_bound =
                                    match c with
                                    | Cargs (aj, ak) -> (
                                        match
                                          (actual_of aj, actual_of ak)
                                        with
                                        | Some vj, Some vk -> (
                                            match
                                              (symify t vj, symify t vk)
                                            with
                                            | Some (sj, kj), Some (sk, kk)
                                              -> (
                                                match dbm_dist d sj sk with
                                                | Some dd ->
                                                    Option.bind
                                                      (sub64 kj kk)
                                                      (add64 dd)
                                                | None -> None)
                                            | _ -> None)
                                        | _ -> None)
                                    | Clen (ak, ap) -> (
                                        match
                                          ( actual_of ak,
                                            actual_of ap,
                                            Option.bind (formal_of ap)
                                              (formal_elem_size t) )
                                        with
                                        | Some vk, Some vp, Some esc -> (
                                            match
                                              ( symify t vk,
                                                caller_len t vp esc )
                                            with
                                            | ( Some (sk, kk),
                                                Some (slen, loff) ) -> (
                                                match
                                                  dbm_dist d sk slen
                                                with
                                                | Some dd ->
                                                    Option.bind
                                                      (sub64 kk loff)
                                                      (add64 dd)
                                                | None -> None)
                                            | _ -> None)
                                        | _ -> None)
                                  in
                                  match site_bound with
                                  | Some c0 when in_rel_cap c0 ->
                                      st :=
                                        (match !st with
                                        | Unseen -> Known c0
                                        | Known c1 -> Known (max c0 c1)
                                        | Dead -> Dead)
                                  | _ -> st := Dead)
                              (Hashtbl.find cands g.Ir.fid)
                        | _ -> () (* unreachable call site: never runs *))
                    | _ -> ())
                | _ -> ())
              caller)
      t.rm.Ir.funcs;
    List.iter
      (fun (g : Ir.func) ->
        match Hashtbl.find_opt cands g.Ir.fid with
        | None -> ()
        | Some cl ->
            let fi = Hashtbl.find t.fns g.Ir.fid in
            List.iter
              (fun (c, st) ->
                match !st with
                | Known c0 ->
                    let tbl, key =
                      match c with
                      | Cargs (a, b) -> (fi.fi_rel_args, (a, b))
                      | Clen (a, p) -> (fi.fi_rel_len, (a, p))
                    in
                    let nv =
                      match Hashtbl.find_opt tbl key with
                      | Some c1 -> min c0 c1
                      | None -> c0
                    in
                    if Hashtbl.find_opt tbl key <> Some nv then begin
                      Hashtbl.replace tbl key nv;
                      changed := true
                    end
                | Unseen | Dead -> ())
              cl)
      t.rm.Ir.funcs
  done;
  (* the fact base is final now; drop DBMs built from interim facts *)
  Hashtbl.iter (fun _ fi -> Hashtbl.reset fi.fi_dbms) t.fns

(* ---------- interprocedural driver ---------- *)

let default_widen_delay = 3
let default_max_sweeps = 40
let default_max_rounds = 3
let scc_iter_budget = 5

let compute ?(widen_delay = default_widen_delay)
    ?(max_sweeps = default_max_sweeps) ?(max_rounds = default_max_rounds)
    (m : Ir.modl) : t =
  let renv = Ir.type_env m in
  let t =
    {
      rm = m;
      renv;
      rlt = Vmem.Layout.for_module m;
      fns = Hashtbl.create 16;
      rounds = 1;
    }
  in
  List.iter
    (fun (f : Ir.func) ->
      if not (Ir.is_declaration f) then
        Hashtbl.replace t.fns f.Ir.fid (mk_fn_info renv f))
    m.Ir.funcs;
  let cg = Analysis.Callgraph.compute m in
  let sccs =
    Analysis.Callgraph.sccs cg
    |> List.map (List.filter (fun f -> not (Ir.is_declaration f)))
    |> List.filter (fun l -> l <> [])
  in
  (* one bottom-up pass: per-SCC return-range fixpoints, callees final *)
  let run_bottom_up () =
    List.iter
      (fun scc ->
        let cyclic =
          match scc with
          | [ f ] ->
              List.exists (fun g -> g == f) (Analysis.Callgraph.callees cg f)
          | _ -> true
        in
        let fis = List.map (fun f -> Hashtbl.find t.fns f.Ir.fid) scc in
        if not cyclic then
          List.iter (fun fi -> analyze_fn t fi ~widen_delay ~max_sweeps) fis
        else begin
          List.iter (fun fi -> fi.fi_ret <- Bot) fis;
          let stable = ref false and iter = ref 0 in
          while (not !stable) && !iter < scc_iter_budget do
            incr iter;
            stable := true;
            List.iter
              (fun fi ->
                let old = fi.fi_ret in
                analyze_fn t fi ~widen_delay ~max_sweeps;
                if fi.fi_ret <> old then stable := false)
              fis
          done;
          if not !stable then begin
            (* recursion would not settle: returns to top, then one more
               pass so every member's internal ranges are computed under
               those sound assumptions *)
            List.iter
              (fun fi ->
                fi.fi_fp <- false;
                fi.fi_ret <-
                  (if int_like renv fi.fi_f.Ir.freturn then
                     top_of (Types.resolve renv fi.fi_f.Ir.freturn)
                   else Top))
              fis;
            List.iter
              (fun fi ->
                let keep = fi.fi_ret in
                analyze_fn t fi ~widen_delay ~max_sweeps;
                fi.fi_ret <- keep;
                fi.fi_fp <- false)
              fis
          end
        end)
      sccs
  in
  run_bottom_up ();
  (* descending argument rounds: join the ranges flowing into every
     visible call site; only functions whose call sites are all visible
     (not main, not address-taken) may be tightened. Each round's input
     is sound, so its output is too — stopping anywhere is sound. *)
  let refinable (f : Ir.func) =
    (not (Ir.is_declaration f))
    && f.Ir.fname <> "main"
    && not (Analysis.Callgraph.is_address_taken cg f)
  in
  let continue_ = ref true in
  while !continue_ && t.rounds < max_rounds do
    let joins : (int, itv array) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (f : Ir.func) ->
        if refinable f then
          Hashtbl.replace joins f.Ir.fid
            (Array.make (List.length f.Ir.fargs) Bot))
      m.Ir.funcs;
    List.iter
      (fun (caller : Ir.func) ->
        match Hashtbl.find_opt t.fns caller.Ir.fid with
        | None -> ()
        | Some cfi ->
            Ir.iter_instrs
              (fun i ->
                match i.Ir.op with
                | Ir.Call | Ir.Invoke -> (
                    match Ir.call_callee i with
                    | Ir.Vfunc g when Hashtbl.mem joins g.Ir.fid -> (
                        match i.Ir.iparent with
                        | Some b
                          when Analysis.Cfg.is_reachable cfi.fi_cfg b ->
                            let bk = Analysis.Cfg.index_of cfi.fi_cfg b in
                            let arr = Hashtbl.find joins g.Ir.fid in
                            List.iteri
                              (fun j av ->
                                if j < Array.length arr then
                                  arr.(j) <-
                                    join arr.(j) (eval_at t cfi bk av))
                              (Ir.call_args i)
                        | _ -> () (* unreachable call site: never runs *))
                    | _ -> ())
                | _ -> ())
              caller)
      m.Ir.funcs;
    let changed = ref false in
    List.iter
      (fun (f : Ir.func) ->
        match Hashtbl.find_opt joins f.Ir.fid with
        | None -> ()
        | Some arr ->
            let fi = Hashtbl.find t.fns f.Ir.fid in
            List.iteri
              (fun j (a : Ir.arg) ->
                if int_like renv a.Ir.aty then
                  match arr.(j) with
                  | Bot -> () (* never called: keep the conservative top *)
                  | jv ->
                      let old =
                        match Hashtbl.find_opt fi.fi_args a.Ir.aid with
                        | Some x -> x
                        | None -> Top
                      in
                      let nv =
                        meet old (clamp (Types.resolve renv a.Ir.aty) jv)
                      in
                      if nv <> old then begin
                        Hashtbl.replace fi.fi_args a.Ir.aid nv;
                        changed := true
                      end)
              f.Ir.fargs)
      m.Ir.funcs;
    if !changed then begin
      t.rounds <- t.rounds + 1;
      run_bottom_up ()
    end
    else continue_ := false
  done;
  (* intervals are final: harvest flow equations and run the relational
     summary rounds on top of them *)
  compute_relations t cg;
  t

(* ---------- queries ---------- *)

let fn_of t (f : Ir.func) = Hashtbl.find_opt t.fns f.Ir.fid

(* Range of operand [v] as observed at instruction [i] of [f], including
   every branch-condition refinement that dominates the site. [Bot] for a
   site that can never execute. *)
let range_at t (f : Ir.func) (i : Ir.instr) (v : Ir.value) : itv =
  match fn_of t f with
  | None -> Top
  | Some fi -> (
      match i.Ir.iparent with
      | Some b when Analysis.Cfg.is_reachable fi.fi_cfg b ->
          eval_at t fi (Analysis.Cfg.index_of fi.fi_cfg b) v
      | Some _ -> Bot (* unreachable block: the access never happens *)
      | None -> lookup_base t fi v)

let instr_range t (f : Ir.func) (i : Ir.instr) : itv =
  match fn_of t f with
  | None -> Top
  | Some fi -> (
      match Hashtbl.find_opt fi.fi_ivals i.Ir.iid with
      | Some x -> x
      | None -> if int_like t.renv i.Ir.ity then Bot else Top)

let arg_range t (f : Ir.func) (a : Ir.arg) : itv =
  match fn_of t f with
  | None -> Top
  | Some fi -> (
      match Hashtbl.find_opt fi.fi_args a.Ir.aid with
      | Some x -> x
      | None -> Top)

let ret_range t (f : Ir.func) : itv =
  match fn_of t f with None -> Top | Some fi -> fi.fi_ret

let fixpoint_reached t =
  Hashtbl.fold (fun _ fi acc -> acc && fi.fi_fp) t.fns true

let func_fixpoint t (f : Ir.func) =
  match fn_of t f with None -> true | Some fi -> fi.fi_fp

let total_sweeps t = Hashtbl.fold (fun _ fi acc -> acc + fi.fi_sweeps) t.fns 0
let rounds t = t.rounds
let env t = t.renv
let modl t = t.rm

(* ---------- relational queries (for the checker and the CLIs) ---------- *)

(* The symbol behind a value, when it has one of its own (constants live
   on the zero node and are better served by the interval engine). *)
let value_sym t (v : Ir.value) : sym option =
  match symify t v with Some (s, _) when s <> Szero -> Some s | _ -> None

let arg_len_sym (a : Ir.arg) : sym = Slen a.Ir.aid
let zero_sym : sym = Szero

let rel_site t (f : Ir.func) (i : Ir.instr) : (fn_info * int) option =
  match fn_of t f with
  | None -> None
  | Some fi -> (
      match i.Ir.iparent with
      | Some b when Analysis.Cfg.is_reachable fi.fi_cfg b ->
          Some (fi, Analysis.Cfg.index_of fi.fi_cfg b)
      | _ -> None)

(* Tightest proven c with [v <= target + c] at instruction [i]. *)
let rel_upper_at t (f : Ir.func) (i : Ir.instr) (v : Ir.value) (target : sym)
    : int64 option =
  match rel_site t f i with
  | None -> None
  | Some (fi, bk) -> (
      match symify t v with
      | Some (s, off) -> (
          match dbm_dist (dbm_at t fi bk) s target with
          | Some c -> add64 c off
          | None -> None)
      | None -> None)

(* Tightest proven c with [v >= target + c] at instruction [i]. *)
let rel_lower_at t (f : Ir.func) (i : Ir.instr) (v : Ir.value) (target : sym)
    : int64 option =
  match rel_site t f i with
  | None -> None
  | Some (fi, bk) -> (
      match symify t v with
      | Some (s, off) -> (
          match dbm_dist (dbm_at t fi bk) target s with
          | Some d -> sub64 off d
          | None -> None)
      | None -> None)

(* Build the DBM at every reachable block containing a memory access —
   exactly what the oob checker will consult; the bench times this on a
   fresh analysis to isolate the relational cost. *)
let force_relations t =
  List.iter
    (fun (f : Ir.func) ->
      match Hashtbl.find_opt t.fns f.Ir.fid with
      | None -> ()
      | Some fi ->
          let nb = Analysis.Cfg.n_blocks fi.fi_cfg in
          for bk = 0 to nb - 1 do
            let b = Analysis.Cfg.block fi.fi_cfg bk in
            if
              Analysis.Cfg.is_reachable fi.fi_cfg b
              && List.exists
                   (fun (i : Ir.instr) ->
                     match i.Ir.op with
                     | Ir.Load | Ir.Store | Ir.Getelementptr -> true
                     | _ -> false)
                   b.Ir.instrs
            then ignore (dbm_at t fi bk)
          done)
    t.rm.Ir.funcs

(* Harvested and proven relational facts, module-wide: flow equations,
   interprocedural argument facts, and guard difference facts over every
   constrained edge. *)
let rel_fact_count t =
  List.fold_left
    (fun acc (f : Ir.func) ->
      match Hashtbl.find_opt t.fns f.Ir.fid with
      | None -> acc
      | Some fi ->
          let guards =
            Hashtbl.fold
              (fun _ cs acc ->
                acc + List.length (List.concat_map (constr_facts t) cs))
              fi.fi_edge_cs 0
          in
          acc + List.length fi.fi_flow + Hashtbl.length fi.fi_rel_args
          + Hashtbl.length fi.fi_rel_len + guards)
    0 t.rm.Ir.funcs

(* No DBM anywhere hit the node cap: every harvested fact was closed. *)
let rel_within_budget t =
  Hashtbl.fold (fun _ fi acc -> acc && fi.fi_rel_dropped = 0) t.fns true

(* ---------- rendering (llva_lint --ranges) ---------- *)

let render_func t (f : Ir.func) : string list =
  match fn_of t f with
  | None -> []
  | Some fi ->
      let lines = ref [] in
      let push s = lines := s :: !lines in
      let args =
        String.concat ", "
          (List.map
             (fun (a : Ir.arg) ->
               let n = if a.Ir.aname = "" then "<arg>" else "%" ^ a.Ir.aname in
               if int_like t.renv a.Ir.aty then
                 Printf.sprintf "%s %s" n (to_string (arg_range t f a))
               else n)
             f.Ir.fargs)
      in
      let ret =
        if int_like t.renv f.Ir.freturn then
          " -> " ^ to_string fi.fi_ret
        else ""
      in
      push (Printf.sprintf "%%%s(%s)%s%s" f.Ir.fname args ret
              (if fi.fi_fp then "" else "   ; widening budget exhausted"));
      Analysis.Cfg.iter_rpo
        (fun (b : Ir.block) ->
          List.iter
            (fun (i : Ir.instr) ->
              if i.Ir.iname <> "" && int_like t.renv i.Ir.ity then
                push
                  (Printf.sprintf "  %%%s:%%%s = %s %s" b.Ir.bname i.Ir.iname
                     (Ir.opcode_name i.Ir.op)
                     (to_string (instr_range t f i))))
            b.Ir.instrs)
        fi.fi_cfg;
      List.rev !lines

let render t : string list =
  List.concat_map
    (fun (f : Ir.func) ->
      if Ir.is_declaration f then [] else render_func t f)
    t.rm.Ir.funcs

(* ---------- relations table (llva_lint --relations) ---------- *)

let sym_name fi = function
  | Szero -> "0"
  | Sreg iid -> (
      match Hashtbl.find_opt fi.fi_instr_of iid with
      | Some i when i.Ir.iname <> "" -> "%" ^ i.Ir.iname
      | _ -> Printf.sprintf "#%d" iid)
  | Sarg aid -> (
      match Hashtbl.find_opt fi.fi_arg_of aid with
      | Some a when a.Ir.aname <> "" -> "%" ^ a.Ir.aname
      | _ -> Printf.sprintf "arg#%d" aid)
  | Slen aid -> (
      match Hashtbl.find_opt fi.fi_arg_of aid with
      | Some a when a.Ir.aname <> "" -> Printf.sprintf "len(%%%s)" a.Ir.aname
      | _ -> Printf.sprintf "len(arg#%d)" aid)

let render_relations t : string list =
  let lines = ref [] and total = ref 0 in
  let push s = lines := s :: !lines in
  List.iter
    (fun (f : Ir.func) ->
      match Hashtbl.find_opt t.fns f.Ir.fid with
      | None -> ()
      | Some fi ->
          let fact (sa, sb, c) =
            Printf.sprintf "  %s - %s <= %Ld" (sym_name fi sa) (sym_name fi sb)
              c
          in
          let summary =
            (Hashtbl.fold
               (fun (a, b) c acc -> ((a, b), (Sarg a, Sarg b, c)) :: acc)
               fi.fi_rel_args []
            @ Hashtbl.fold
                (fun (a, p) c acc -> ((a, p), (Sarg a, Slen p, c)) :: acc)
                fi.fi_rel_len [])
            |> List.sort compare |> List.map snd
          in
          let edges =
            Hashtbl.fold (fun k cs acc -> (k, cs) :: acc) fi.fi_edge_cs []
            |> List.sort compare
          in
          let guard =
            List.concat_map
              (fun ((pk, sk), cs) ->
                List.map
                  (fun (sa, sb, c) ->
                    Printf.sprintf "  %s->%s:%s - %s <= %Ld"
                      (Analysis.Cfg.block fi.fi_cfg pk).Ir.bname
                      (Analysis.Cfg.block fi.fi_cfg sk).Ir.bname
                      (sym_name fi sa) (sym_name fi sb) c)
                  (List.concat_map (constr_facts t) cs))
              edges
          in
          let flow =
            List.map (fun (_, sa, sb, c) -> fact (sa, sb, c)) fi.fi_flow
          in
          let all = List.map fact summary @ guard @ flow in
          if all <> [] then begin
            total := !total + List.length all;
            push (Printf.sprintf "%%%s:" f.Ir.fname);
            List.iter push all
          end)
    t.rm.Ir.funcs;
  push (Printf.sprintf "%d relational facts" !total);
  List.rev !lines

(* Proven argument facts keyed by argument position, for [Summaries] —
   the checker consults them to decide which pointer arguments have a
   usable length symbol at all. *)
let export_relations t : (string * (int * Summaries.arg_bound) list) list =
  List.filter_map
    (fun (f : Ir.func) ->
      match Hashtbl.find_opt t.fns f.Ir.fid with
      | None -> None
      | Some fi ->
          let pos : (int, int) Hashtbl.t = Hashtbl.create 8 in
          List.iteri
            (fun k (a : Ir.arg) -> Hashtbl.replace pos a.Ir.aid k)
            f.Ir.fargs;
          let p aid = Hashtbl.find_opt pos aid in
          let facts =
            (Hashtbl.fold
               (fun (a, b) c acc ->
                 match (p a, p b) with
                 | Some ja, Some jb -> (ja, Summaries.Ble_arg (jb, c)) :: acc
                 | _ -> acc)
               fi.fi_rel_args []
            @ Hashtbl.fold
                (fun (a, pp) c acc ->
                  match (p a, p pp) with
                  | Some ja, Some jp -> (ja, Summaries.Ble_len (jp, c)) :: acc
                  | _ -> acc)
                fi.fi_rel_len [])
            |> List.sort compare
          in
          if facts = [] then None else Some (f.Ir.fname, facts))
    t.rm.Ir.funcs
