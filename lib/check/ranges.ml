(* Interprocedural integer value-range analysis: abstract interpretation
   over intervals of the *mathematical* value each SSA register holds
   (paper §3.3: the typed SSA V-ISA is what makes an analysis of this
   shape tractable on shipped object code).

   The domain is [Bot | Itv (lo, hi) | Top] where [Itv] bounds the
   canonical representative of [Ir.normalize_int] — which equals the
   mathematical value for every integer type except [ulong], whose values
   at or above 2^63 have no int64 representative. Ulong therefore gets an
   unbounded top ([Top]) and only its sub-2^63 values are ever tracked;
   every other type's top is its full representable range, so stored
   intervals stay canonical (always inside the type bounds).

   Structure, mirroring [Summaries]:
   - per function: reverse-postorder join-ascent sweeps over the [Cfg],
     with bounded widening at phis inside natural loops (from [Loops])
     after [widen_delay] sweeps, a hard [max_sweeps] budget whose
     exhaustion falls back to all-top (and clears [fixpoint_reached]),
     and a two-sweep narrowing pass to claw back widening losses;
   - flow sensitivity: branch conditions ([Setcc]-guarded [Br] edges and
     single-target [Mbr] cases) become edge constraints; a value read in
     block B is refined by every constraint on a dominating
     single-predecessor edge, and phi arms by their incoming edge;
   - interprocedurally: return ranges computed bottom-up over
     [Callgraph.sccs] with a bounded per-SCC fixpoint, then descending
     rounds that join call-site argument ranges into per-argument
     summaries (only for functions whose callers are all visible: not
     [main], not address-taken). Stopping the descent at any round is
     sound, so the round budget needs no fallback.

   Everything here is deterministic: iteration follows module, block and
   instruction order; hash tables are only used for keyed lookup. *)

open Llva

type itv = Bot | Itv of int64 * int64 | Top

let to_string = function
  | Bot -> "bot"
  | Top -> "top"
  | Itv (l, h) ->
      if l = h then Printf.sprintf "[%Ld]" l else Printf.sprintf "[%Ld..%Ld]" l h

(* ---------- lattice ---------- *)

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Top, _ | _, Top -> Top
  | Itv (l1, h1), Itv (l2, h2) -> Itv (min l1 l2, max h1 h2)

let meet a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Top, x | x, Top -> x
  | Itv (l1, h1), Itv (l2, h2) ->
      let l = max l1 l2 and h = min h1 h2 in
      if l > h then Bot else Itv (l, h)

(* ---------- overflow-checked int64 helpers ---------- *)

let add64 a b =
  let r = Int64.add a b in
  if a >= 0L = (b >= 0L) && r >= 0L <> (a >= 0L) then None else Some r

let sub64 a b =
  if b = Int64.min_int then if a < 0L then Some (Int64.sub a b) else None
  else add64 a (Int64.neg b)

let mul64 a b =
  if a = 0L || b = 0L then Some 0L
  else if (a = -1L && b = Int64.min_int) || (b = -1L && a = Int64.min_int) then
    None
  else
    let r = Int64.mul a b in
    if Int64.div r b = a && Int64.rem r b = 0L then Some r else None

(* a * 2^s, for 0 <= s <= 63 *)
let shl64 a s =
  if a = 0L then Some 0L
  else if s >= 63 then None
  else mul64 a (Int64.shift_left 1L s)

(* ---------- the type-bounds view of the domain ---------- *)

(* Representable range of the canonical representative; [None] for ulong,
   whose top is unbounded. Callers pass resolved int-like types. *)
let bounds = function
  | Types.Bool -> Some (0L, 1L)
  | Types.Ubyte -> Some (0L, 255L)
  | Types.Sbyte -> Some (-128L, 127L)
  | Types.Ushort -> Some (0L, 65535L)
  | Types.Short -> Some (-32768L, 32767L)
  | Types.Uint -> Some (0L, 4294967295L)
  | Types.Int -> Some (-2147483648L, 2147483647L)
  | Types.Long -> Some (Int64.min_int, Int64.max_int)
  | _ -> None (* Ulong, or a type we never track *)

let top_of ty = match bounds ty with Some (l, h) -> Itv (l, h) | None -> Top

(* Is this range as good as knowing nothing about a value of [ty]? *)
let is_top ty itv = itv = Top || itv = top_of ty

let int_like env ty =
  match Types.resolve env ty with
  | Types.Bool -> true
  | t -> Types.is_integer t
  | exception Types.Unresolved _ -> false

(* A computed mathematical interval becomes a sound range for a value of
   [ty]: kept when it fits entirely inside the representable range, and
   degraded to the type's top when it does not (the runtime wraps, which
   an interval cannot describe). *)
let fit ty = function
  | Bot -> Bot
  | Top -> top_of ty
  | Itv (l, h) as itv -> (
      match bounds ty with
      | Some (bl, bh) -> if l >= bl && h <= bh then itv else top_of ty
      | None -> if l >= 0L then itv else Top)

let clamp ty itv = meet itv (top_of ty)

(* ---------- pure interval arithmetic (for gep offset walks) ---------- *)

let itv_add a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Top, _ | _, Top -> Top
  | Itv (l1, h1), Itv (l2, h2) -> (
      match (add64 l1 l2, add64 h1 h2) with
      | Some l, Some h -> Itv (l, h)
      | _ -> Top)

let itv_scale k a =
  match a with
  | Bot -> Bot
  | Top -> if k = 0L then Itv (0L, 0L) else Top
  | Itv (l, h) -> (
      match (mul64 k l, mul64 k h) with
      | Some a, Some b -> Itv (min a b, max a b)
      | _ -> Top)

(* ---------- constants ---------- *)

let const_itv env (v : Ir.value) : itv =
  match v with
  | Ir.Const { cty; ckind } -> (
      match Types.resolve env cty with
      | exception Types.Unresolved _ -> Top
      | rty -> (
          if not (int_like env rty) then Top
          else
            match ckind with
            | Ir.Cbool b -> if b then Itv (1L, 1L) else Itv (0L, 0L)
            | Ir.Cint n ->
                (* for ulong a negative representative is a value >= 2^63,
                   outside what the math domain can carry *)
                if rty = Types.Ulong && n < 0L then Top else Itv (n, n)
            | Ir.Czero -> Itv (0L, 0L)
            | _ -> top_of rty))
  | Ir.Vundef ty -> (
      match Types.resolve env ty with
      | rty -> top_of rty
      | exception Types.Unresolved _ -> Top)
  | _ -> Top

(* ---------- analysis state ---------- *)

type constr = {
  ccmp : Ir.cmp;
  ctaken : bool; (* the branch direction this edge represents *)
  ca : Ir.value;
  cb : Ir.value;
}

type fn_info = {
  fi_f : Ir.func;
  fi_cfg : Analysis.Cfg.t;
  fi_dom : Analysis.Dominance.t;
  fi_loopdepth : int array; (* per block index; 0 = not in a loop *)
  fi_edge_cs : (int * int, constr list) Hashtbl.t; (* (pred, succ) edge *)
  fi_ivals : (int, itv) Hashtbl.t; (* instr id -> range *)
  fi_args : (int, itv) Hashtbl.t; (* arg id -> range *)
  mutable fi_ret : itv;
  mutable fi_fp : bool; (* per-function fixpoint inside the budget *)
  mutable fi_sweeps : int;
}

type t = {
  rm : Ir.modl;
  renv : Types.env;
  fns : (int, fn_info) Hashtbl.t; (* func id -> info; defined funcs only *)
  mutable rounds : int; (* interprocedural descending rounds run *)
}

let add_edge_constr fi key c =
  let cur =
    match Hashtbl.find_opt fi.fi_edge_cs key with Some l -> l | None -> []
  in
  Hashtbl.replace fi.fi_edge_cs key (cur @ [ c ])

let collect_constraints env fi =
  let cfg = fi.fi_cfg in
  let idx b = Analysis.Cfg.index_of cfg b in
  Analysis.Cfg.iter_rpo
    (fun (b : Ir.block) ->
      match Ir.terminator b with
      | Some
          ({
             Ir.op = Ir.Br;
             operands = [| cond; Ir.Vblock tb; Ir.Vblock fb |];
             _;
           } as _br)
        when not (tb == fb) -> (
          match cond with
          | Ir.Vreg ({ Ir.op = Ir.Setcc cmp; _ } as s)
            when int_like env (Ir.type_of_value s.Ir.operands.(0)) ->
              let kb = idx b in
              let c taken =
                {
                  ccmp = cmp;
                  ctaken = taken;
                  ca = s.Ir.operands.(0);
                  cb = s.Ir.operands.(1);
                }
              in
              add_edge_constr fi (kb, idx tb) (c true);
              add_edge_constr fi (kb, idx fb) (c false)
          | _ -> ())
      | Some ({ Ir.op = Ir.Mbr; _ } as mbr)
        when int_like env (Ir.type_of_value mbr.Ir.operands.(0)) -> (
          (* a case edge carries [v = n], but only when the target is hit
             by exactly that one case and is not also the default *)
          let v = mbr.Ir.operands.(0) in
          let vty = Ir.type_of_value v in
          let cases = Ir.mbr_cases mbr in
          let default =
            match mbr.Ir.operands.(1) with
            | Ir.Vblock d -> Some d
            | _ -> None
          in
          let kb = idx b in
          List.iter
            (fun (n, (target : Ir.block)) ->
              let hits =
                List.length
                  (List.filter (fun (_, t2) -> t2 == target) cases)
              in
              let is_default =
                match default with Some d -> d == target | None -> true
              in
              if hits = 1 && not is_default then
                add_edge_constr fi
                  (kb, idx target)
                  {
                    ccmp = Ir.Eq;
                    ctaken = true;
                    ca = v;
                    cb = Ir.const_int vty n;
                  })
            cases)
      | _ -> ())
    cfg

let mk_fn_info env (f : Ir.func) : fn_info =
  let cfg = Analysis.Cfg.build f in
  let dom = Analysis.Dominance.compute cfg in
  let loops = Analysis.Loops.compute cfg dom in
  let loopdepth =
    Array.init (Analysis.Cfg.n_blocks cfg) (fun k ->
        Analysis.Loops.loop_depth loops (Analysis.Cfg.block cfg k))
  in
  let fi =
    {
      fi_f = f;
      fi_cfg = cfg;
      fi_dom = dom;
      fi_loopdepth = loopdepth;
      fi_edge_cs = Hashtbl.create 8;
      fi_ivals = Hashtbl.create 64;
      fi_args = Hashtbl.create 8;
      fi_ret = Top;
      fi_fp = true;
      fi_sweeps = 0;
    }
  in
  collect_constraints env fi;
  (* arguments start at the type's top; interprocedural rounds tighten *)
  List.iter
    (fun (a : Ir.arg) ->
      let top =
        match Types.resolve env a.Ir.aty with
        | rty -> top_of rty
        | exception Types.Unresolved _ -> Top
      in
      Hashtbl.replace fi.fi_args a.Ir.aid top)
    f.Ir.fargs;
  fi

(* ---------- reading values, with branch refinement ---------- *)

let lookup_base t fi (v : Ir.value) : itv =
  match v with
  | Ir.Const _ | Ir.Vundef _ -> const_itv t.renv v
  | Ir.Vreg i -> (
      match Hashtbl.find_opt fi.fi_ivals i.Ir.iid with
      | Some x -> x
      | None -> Bot)
  | Ir.Varg a -> (
      match Hashtbl.find_opt fi.fi_args a.Ir.aid with
      | Some x -> x
      | None -> Top)
  | _ -> Top

let negate_cmp = function
  | Ir.Eq -> Ir.Ne
  | Ir.Ne -> Ir.Eq
  | Ir.Lt -> Ir.Ge
  | Ir.Ge -> Ir.Lt
  | Ir.Gt -> Ir.Le
  | Ir.Le -> Ir.Gt

let swap_cmp = function
  | Ir.Lt -> Ir.Gt
  | Ir.Gt -> Ir.Lt
  | Ir.Le -> Ir.Ge
  | Ir.Ge -> Ir.Le
  | (Ir.Eq | Ir.Ne) as c -> c

(* [cur] further constrained by [v CMP other]. Comparisons on canonical
   representatives agree with the run-time comparison for every tracked
   range: signed representatives are the value, and unsigned ones
   (including tracked ulong) are non-negative, where signed and unsigned
   orders coincide. *)
let refine_lhs cmp cur (other : itv) =
  let at_most k = function
    | Bot -> Bot
    | Itv (l, h) -> if l > k then Bot else Itv (l, min h k)
    | Top -> if k < 0L then Bot else Itv (0L, k)
    (* Top is ulong-only: values are >= 0 *)
  in
  let at_least k = function
    | Bot -> Bot
    | Itv (l, h) -> if h < k then Bot else Itv (max l k, h)
    | Top -> Top (* no representable upper bound for ulong *)
  in
  match cmp with
  | Ir.Eq -> meet cur other
  | Ir.Ne -> (
      match (cur, other) with
      | Itv (l, h), Itv (bl, bh) when bl = bh ->
          if l = h && l = bl then Bot
          else if bl = l then Itv (Int64.add l 1L, h)
          else if bl = h then Itv (l, Int64.sub h 1L)
          else cur
      | _ -> cur)
  | Ir.Lt -> (
      match other with
      | Itv (_, bh) ->
          if bh = Int64.min_int then Bot else at_most (Int64.sub bh 1L) cur
      | _ -> cur)
  | Ir.Le -> ( match other with Itv (_, bh) -> at_most bh cur | _ -> cur)
  | Ir.Gt -> (
      match other with
      | Itv (bl, _) ->
          if bl = Int64.max_int then Bot else at_least (Int64.add bl 1L) cur
      | _ -> cur)
  | Ir.Ge -> ( match other with Itv (bl, _) -> at_least bl cur | _ -> cur)

let apply_constr t fi (c : constr) (v : Ir.value) (cur : itv) : itv =
  let cmp = if c.ctaken then c.ccmp else negate_cmp c.ccmp in
  if Ir.value_equal c.ca v then refine_lhs cmp cur (lookup_base t fi c.cb)
  else if Ir.value_equal c.cb v then
    refine_lhs (swap_cmp cmp) cur (lookup_base t fi c.ca)
  else cur

let edge_refine t fi (pk, sk) v cur =
  match Hashtbl.find_opt fi.fi_edge_cs (pk, sk) with
  | Some cs -> List.fold_left (fun r c -> apply_constr t fi c v r) cur cs
  | None -> cur

(* Value of [v] as observed inside block [bk]: the flow-insensitive range,
   sharpened by every constraint guarding a dominating single-predecessor
   edge (the only way into that dominator, hence into [bk]). *)
let eval_at t fi bk (v : Ir.value) : itv =
  let base = lookup_base t fi v in
  match v with
  | Ir.Vreg _ | Ir.Varg _ ->
      let r = ref base in
      let k = ref bk in
      let continue_ = ref true in
      while !continue_ do
        let s = !k in
        (if s <> 0 then
           match fi.fi_cfg.Analysis.Cfg.preds.(s) with
           | [ p ] -> r := edge_refine t fi (p, s) v !r
           | _ -> ());
        if s = 0 then continue_ := false
        else k := fi.fi_dom.Analysis.Dominance.idom.(s)
      done;
      !r
  | _ -> base

(* ---------- transfer functions ---------- *)

(* Generic interval transfer for one integer binop; operand ranges are
   mathematical intervals of canonical representatives. *)
let binop_ranges ty op (a : itv) (b : itv) : itv =
  let top = top_of ty in
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (al, ah), Itv (bl, bh) -> (
      match op with
      | Ir.Add -> (
          match (add64 al bl, add64 ah bh) with
          | Some l, Some h -> Itv (l, h)
          | _ -> top)
      | Ir.Sub -> (
          match (sub64 al bh, sub64 ah bl) with
          | Some l, Some h -> Itv (l, h)
          | _ -> top)
      | Ir.Mul -> (
          match (mul64 al bl, mul64 al bh, mul64 ah bl, mul64 ah bh) with
          | Some a1, Some a2, Some a3, Some a4 ->
              Itv (min (min a1 a2) (min a3 a4), max (max a1 a2) (max a3 a4))
          | _ -> top)
      | Ir.Div ->
          (* a zero divisor traps and produces nothing, so it can be cut
             from the divisor range; provably-zero means the result is
             unreachable *)
          let bl = if bl = 0L && bh > 0L then 1L else bl in
          let bh = if bh = 0L && bl < 0L then -1L else bh in
          if bl = 0L && bh = 0L then Bot
          else if bl > bh then Bot
          else if bl < 0L && bh > 0L then top
          else if al = Int64.min_int && bh = -1L && bl <= -1L then top
          else
            let c1 = Int64.div al bl
            and c2 = Int64.div al bh
            and c3 = Int64.div ah bl
            and c4 = Int64.div ah bh in
            Itv (min (min c1 c2) (min c3 c4), max (max c1 c2) (max c3 c4))
      | Ir.Rem ->
          let bl = if bl = 0L && bh > 0L then 1L else bl in
          if bl = 0L && bh = 0L then Bot
          else if bl > bh then Bot
          else if bl >= 1L then
            if al >= 0L && ah < bl then Itv (al, ah) (* a < divisor: a mod b = a *)
            else
              let hi = Int64.sub bh 1L in
              let lo = if al >= 0L then 0L else Int64.neg hi in
              Itv (lo, hi)
          else top
      | Ir.And ->
          (* x land y <= x when x >= 0, and the result stays >= 0 *)
          let r = top in
          let r = if al >= 0L then meet r (Itv (0L, ah)) else r in
          let r = if bl >= 0L then meet r (Itv (0L, bh)) else r in
          r
      | Ir.Or | Ir.Xor ->
          if al >= 0L && bl >= 0L then begin
            (* bounded by the smallest all-ones mask covering both *)
            let m = max ah bh in
            let bits = ref 1 in
            while
              !bits < 63 && Int64.sub (Int64.shift_left 1L !bits) 1L < m
            do
              incr bits
            done;
            let cover =
              if !bits >= 63 then Int64.max_int
              else Int64.sub (Int64.shift_left 1L !bits) 1L
            in
            Itv (0L, cover)
          end
          else top
      | Ir.Shl ->
          if bl >= 0L && bh <= 63L && al >= 0L then
            match
              (shl64 al (Int64.to_int bl), shl64 ah (Int64.to_int bh))
            with
            | Some l, Some h -> Itv (l, h)
            | _ -> top
          else top
      | Ir.Shr ->
          (* arithmetic shift on canonical representatives matches the
             logical shift the unsigned types use, because their
             representatives are non-negative *)
          if bl >= 0L && bh <= 63L then begin
            let s1 = Int64.to_int bl and s2 = Int64.to_int bh in
            let c1 = Int64.shift_right al s1
            and c2 = Int64.shift_right al s2
            and c3 = Int64.shift_right ah s1
            and c4 = Int64.shift_right ah s2 in
            Itv (min (min c1 c2) (min c3 c4), max (max c1 c2) (max c3 c4))
          end
          else top
      | exception _ -> top)
  | _ -> (
      (* one side is top; only [And] can still say something *)
      match op with
      | Ir.And ->
          let r = top in
          let r =
            match a with
            | Itv (al, ah) when al >= 0L -> meet r (Itv (0L, ah))
            | _ -> r
          in
          let r =
            match b with
            | Itv (bl, bh) when bl >= 0L -> meet r (Itv (0L, bh))
            | _ -> r
          in
          r
      | Ir.Rem -> (
          match b with
          | Itv (bl, bh) when bl >= 1L -> Itv (Int64.neg (Int64.sub bh 1L), Int64.sub bh 1L)
          | _ -> top)
      | _ -> top)

let binop_itv ty op (a : itv) (b : itv) : itv =
  match (a, b) with
  | Itv (al, ah), Itv (bl, bh)
    when al = ah && bl = bh && ty <> Types.Bool -> (
      (* both singletons: run the exact scalar semantics, bit-for-bit the
         same as the interpreter and the simulators *)
      match Eval.int_binop op ty al bl with
      | Eval.I (_, r) ->
          if ty = Types.Ulong && r < 0L then Top else Itv (r, r)
      | _ -> top_of ty
      | exception Eval.Division_by_zero -> Bot)
  | _ -> binop_ranges ty op a b

let setcc_itv t fi bk cmp (a : Ir.value) (b : Ir.value) : itv =
  let aty = Ir.type_of_value a in
  if not (int_like t.renv aty) then Itv (0L, 1L)
  else
    let ra = eval_at t fi bk a and rb = eval_at t fi bk b in
    match (ra, rb) with
    | Bot, _ | _, Bot -> Bot
    | Itv (al, ah), Itv (bl, bh) -> (
        let yes = Itv (1L, 1L) and no = Itv (0L, 0L) and maybe = Itv (0L, 1L) in
        match cmp with
        | Ir.Eq ->
            if al = ah && bl = bh && al = bl then yes
            else if ah < bl || bh < al then no
            else maybe
        | Ir.Ne ->
            if al = ah && bl = bh && al = bl then no
            else if ah < bl || bh < al then yes
            else maybe
        | Ir.Lt -> if ah < bl then yes else if al >= bh then no else maybe
        | Ir.Le -> if ah <= bl then yes else if al > bh then no else maybe
        | Ir.Gt -> if al > bh then yes else if ah <= bl then no else maybe
        | Ir.Ge -> if al >= bh then yes else if ah < bl then no else maybe)
    | _ -> Itv (0L, 1L)

let cast_itv dst_ty (a : itv) : itv =
  match dst_ty with
  | Types.Bool -> (
      match a with
      | Bot -> Bot
      | Itv (l, h) ->
          if l > 0L || h < 0L then Itv (1L, 1L)
          else if l = 0L && h = 0L then Itv (0L, 0L)
          else Itv (0L, 1L)
      | Top -> Itv (0L, 1L))
  | _ -> (
      match a with
      | Bot -> Bot
      | Itv (l, h) as itv -> (
          match bounds dst_ty with
          | Some (bl, bh) ->
              if l >= bl && h <= bh then itv else top_of dst_ty
          | None -> if l >= 0L then itv else Top)
      | Top -> top_of dst_ty)

let transfer t fi bk (i : Ir.instr) : itv option =
  if not (int_like t.renv i.Ir.ity) then None
  else
    let ty = Types.resolve t.renv i.Ir.ity in
    let result =
      match i.Ir.op with
      | Ir.Binop op ->
          binop_itv ty op
            (eval_at t fi bk i.Ir.operands.(0))
            (eval_at t fi bk i.Ir.operands.(1))
      | Ir.Setcc cmp -> setcc_itv t fi bk cmp i.Ir.operands.(0) i.Ir.operands.(1)
      | Ir.Cast ->
          let src = i.Ir.operands.(0) in
          let src_range =
            if int_like t.renv (Ir.type_of_value src) then eval_at t fi bk src
            else Top
          in
          cast_itv ty src_range
      | Ir.Phi ->
          List.fold_left
            (fun acc (av, (pred : Ir.block)) ->
              if not (Analysis.Cfg.is_reachable fi.fi_cfg pred) then acc
              else
                let pk = Analysis.Cfg.index_of fi.fi_cfg pred in
                let arm = eval_at t fi pk av in
                let arm = edge_refine t fi (pk, bk) av arm in
                join acc arm)
            Bot (Ir.phi_incoming i)
      | Ir.Call | Ir.Invoke -> (
          match Ir.call_callee i with
          | Ir.Vfunc g when not (Ir.is_declaration g) -> (
              match Hashtbl.find_opt t.fns g.Ir.fid with
              | Some gi -> gi.fi_ret
              | None -> top_of ty)
          | _ -> top_of ty)
      | _ -> top_of ty (* loads and anything else we do not model *)
    in
    Some (clamp ty result)

(* ---------- widening ---------- *)

(* Jump to the nearest of a tiny threshold set {0, type bound}: a lower
   bound that keeps sinking but stays non-negative lands on 0 (the
   ubiquitous counting-loop base) before giving up to the type minimum. *)
let widen ty old cand =
  match (old, cand) with
  | Bot, x | x, Bot -> x
  | Top, _ | _, Top -> Top
  | Itv (ol, oh), Itv (nl, nh) -> (
      let lo =
        if nl >= ol then min ol nl
        else if nl >= 0L then 0L
        else match bounds ty with Some (bl, _) -> bl | None -> 0L
      in
      match () with
      | () when nh <= oh -> Itv (lo, oh)
      | () -> (
          match bounds ty with
          | Some (_, bh) -> Itv (lo, bh)
          | None -> Top))

(* ---------- per-function fixpoint ---------- *)

let analyze_fn t fi ~widen_delay ~max_sweeps =
  Hashtbl.reset fi.fi_ivals;
  let cfg = fi.fi_cfg in
  let nb = Analysis.Cfg.n_blocks cfg in
  let sweep = ref 0 and changed = ref true in
  while !changed && !sweep < max_sweeps do
    incr sweep;
    changed := false;
    for bk = 0 to nb - 1 do
      let b = Analysis.Cfg.block cfg bk in
      List.iter
        (fun (i : Ir.instr) ->
          match transfer t fi bk i with
          | None -> ()
          | Some nv ->
              let old =
                match Hashtbl.find_opt fi.fi_ivals i.Ir.iid with
                | Some x -> x
                | None -> Bot
              in
              let cand = join old nv in
              let cand =
                if
                  i.Ir.op = Ir.Phi
                  && fi.fi_loopdepth.(bk) > 0
                  && !sweep > widen_delay
                  && cand <> old
                then widen (Types.resolve t.renv i.Ir.ity) old cand
                else cand
              in
              if cand <> old then begin
                Hashtbl.replace fi.fi_ivals i.Ir.iid cand;
                changed := true
              end)
        b.Ir.instrs
    done
  done;
  fi.fi_sweeps <- !sweep;
  if !changed then begin
    (* budget exhausted: give up soundly, every tracked value to top *)
    fi.fi_fp <- false;
    Ir.iter_instrs
      (fun i ->
        if int_like t.renv i.Ir.ity then
          Hashtbl.replace fi.fi_ivals i.Ir.iid
            (top_of (Types.resolve t.renv i.Ir.ity)))
      fi.fi_f
  end
  else begin
    fi.fi_fp <- true;
    (* narrowing: two descending sweeps recover what widening overshot;
       accepting [meet old new] keeps every step sound *)
    for _ = 1 to 2 do
      for bk = 0 to nb - 1 do
        let b = Analysis.Cfg.block cfg bk in
        List.iter
          (fun (i : Ir.instr) ->
            match transfer t fi bk i with
            | None -> ()
            | Some nv ->
                let old =
                  match Hashtbl.find_opt fi.fi_ivals i.Ir.iid with
                  | Some x -> x
                  | None -> Bot
                in
                let nv = meet old nv in
                if nv <> old then Hashtbl.replace fi.fi_ivals i.Ir.iid nv)
          b.Ir.instrs
      done
    done
  end;
  (* return range over the reachable return sites *)
  let fr = fi.fi_f.Ir.freturn in
  if not (int_like t.renv fr) then fi.fi_ret <- Top
  else begin
    let ret = ref Bot in
    for bk = 0 to nb - 1 do
      let b = Analysis.Cfg.block cfg bk in
      List.iter
        (fun (i : Ir.instr) ->
          match i.Ir.op with
          | Ir.Ret when Array.length i.Ir.operands = 1 ->
              ret := join !ret (eval_at t fi bk i.Ir.operands.(0))
          | _ -> ())
        b.Ir.instrs
    done;
    fi.fi_ret <- clamp (Types.resolve t.renv fr) !ret
  end

(* ---------- interprocedural driver ---------- *)

let default_widen_delay = 3
let default_max_sweeps = 40
let default_max_rounds = 3
let scc_iter_budget = 5

let compute ?(widen_delay = default_widen_delay)
    ?(max_sweeps = default_max_sweeps) ?(max_rounds = default_max_rounds)
    (m : Ir.modl) : t =
  let renv = Ir.type_env m in
  let t = { rm = m; renv; fns = Hashtbl.create 16; rounds = 1 } in
  List.iter
    (fun (f : Ir.func) ->
      if not (Ir.is_declaration f) then
        Hashtbl.replace t.fns f.Ir.fid (mk_fn_info renv f))
    m.Ir.funcs;
  let cg = Analysis.Callgraph.compute m in
  let sccs =
    Analysis.Callgraph.sccs cg
    |> List.map (List.filter (fun f -> not (Ir.is_declaration f)))
    |> List.filter (fun l -> l <> [])
  in
  (* one bottom-up pass: per-SCC return-range fixpoints, callees final *)
  let run_bottom_up () =
    List.iter
      (fun scc ->
        let cyclic =
          match scc with
          | [ f ] ->
              List.exists (fun g -> g == f) (Analysis.Callgraph.callees cg f)
          | _ -> true
        in
        let fis = List.map (fun f -> Hashtbl.find t.fns f.Ir.fid) scc in
        if not cyclic then
          List.iter (fun fi -> analyze_fn t fi ~widen_delay ~max_sweeps) fis
        else begin
          List.iter (fun fi -> fi.fi_ret <- Bot) fis;
          let stable = ref false and iter = ref 0 in
          while (not !stable) && !iter < scc_iter_budget do
            incr iter;
            stable := true;
            List.iter
              (fun fi ->
                let old = fi.fi_ret in
                analyze_fn t fi ~widen_delay ~max_sweeps;
                if fi.fi_ret <> old then stable := false)
              fis
          done;
          if not !stable then begin
            (* recursion would not settle: returns to top, then one more
               pass so every member's internal ranges are computed under
               those sound assumptions *)
            List.iter
              (fun fi ->
                fi.fi_fp <- false;
                fi.fi_ret <-
                  (if int_like renv fi.fi_f.Ir.freturn then
                     top_of (Types.resolve renv fi.fi_f.Ir.freturn)
                   else Top))
              fis;
            List.iter
              (fun fi ->
                let keep = fi.fi_ret in
                analyze_fn t fi ~widen_delay ~max_sweeps;
                fi.fi_ret <- keep;
                fi.fi_fp <- false)
              fis
          end
        end)
      sccs
  in
  run_bottom_up ();
  (* descending argument rounds: join the ranges flowing into every
     visible call site; only functions whose call sites are all visible
     (not main, not address-taken) may be tightened. Each round's input
     is sound, so its output is too — stopping anywhere is sound. *)
  let refinable (f : Ir.func) =
    (not (Ir.is_declaration f))
    && f.Ir.fname <> "main"
    && not (Analysis.Callgraph.is_address_taken cg f)
  in
  let continue_ = ref true in
  while !continue_ && t.rounds < max_rounds do
    let joins : (int, itv array) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (f : Ir.func) ->
        if refinable f then
          Hashtbl.replace joins f.Ir.fid
            (Array.make (List.length f.Ir.fargs) Bot))
      m.Ir.funcs;
    List.iter
      (fun (caller : Ir.func) ->
        match Hashtbl.find_opt t.fns caller.Ir.fid with
        | None -> ()
        | Some cfi ->
            Ir.iter_instrs
              (fun i ->
                match i.Ir.op with
                | Ir.Call | Ir.Invoke -> (
                    match Ir.call_callee i with
                    | Ir.Vfunc g when Hashtbl.mem joins g.Ir.fid -> (
                        match i.Ir.iparent with
                        | Some b
                          when Analysis.Cfg.is_reachable cfi.fi_cfg b ->
                            let bk = Analysis.Cfg.index_of cfi.fi_cfg b in
                            let arr = Hashtbl.find joins g.Ir.fid in
                            List.iteri
                              (fun j av ->
                                if j < Array.length arr then
                                  arr.(j) <-
                                    join arr.(j) (eval_at t cfi bk av))
                              (Ir.call_args i)
                        | _ -> () (* unreachable call site: never runs *))
                    | _ -> ())
                | _ -> ())
              caller)
      m.Ir.funcs;
    let changed = ref false in
    List.iter
      (fun (f : Ir.func) ->
        match Hashtbl.find_opt joins f.Ir.fid with
        | None -> ()
        | Some arr ->
            let fi = Hashtbl.find t.fns f.Ir.fid in
            List.iteri
              (fun j (a : Ir.arg) ->
                if int_like renv a.Ir.aty then
                  match arr.(j) with
                  | Bot -> () (* never called: keep the conservative top *)
                  | jv ->
                      let old =
                        match Hashtbl.find_opt fi.fi_args a.Ir.aid with
                        | Some x -> x
                        | None -> Top
                      in
                      let nv =
                        meet old (clamp (Types.resolve renv a.Ir.aty) jv)
                      in
                      if nv <> old then begin
                        Hashtbl.replace fi.fi_args a.Ir.aid nv;
                        changed := true
                      end)
              f.Ir.fargs)
      m.Ir.funcs;
    if !changed then begin
      t.rounds <- t.rounds + 1;
      run_bottom_up ()
    end
    else continue_ := false
  done;
  t

(* ---------- queries ---------- *)

let fn_of t (f : Ir.func) = Hashtbl.find_opt t.fns f.Ir.fid

(* Range of operand [v] as observed at instruction [i] of [f], including
   every branch-condition refinement that dominates the site. [Bot] for a
   site that can never execute. *)
let range_at t (f : Ir.func) (i : Ir.instr) (v : Ir.value) : itv =
  match fn_of t f with
  | None -> Top
  | Some fi -> (
      match i.Ir.iparent with
      | Some b when Analysis.Cfg.is_reachable fi.fi_cfg b ->
          eval_at t fi (Analysis.Cfg.index_of fi.fi_cfg b) v
      | Some _ -> Bot (* unreachable block: the access never happens *)
      | None -> lookup_base t fi v)

let instr_range t (f : Ir.func) (i : Ir.instr) : itv =
  match fn_of t f with
  | None -> Top
  | Some fi -> (
      match Hashtbl.find_opt fi.fi_ivals i.Ir.iid with
      | Some x -> x
      | None -> if int_like t.renv i.Ir.ity then Bot else Top)

let arg_range t (f : Ir.func) (a : Ir.arg) : itv =
  match fn_of t f with
  | None -> Top
  | Some fi -> (
      match Hashtbl.find_opt fi.fi_args a.Ir.aid with
      | Some x -> x
      | None -> Top)

let ret_range t (f : Ir.func) : itv =
  match fn_of t f with None -> Top | Some fi -> fi.fi_ret

let fixpoint_reached t =
  Hashtbl.fold (fun _ fi acc -> acc && fi.fi_fp) t.fns true

let func_fixpoint t (f : Ir.func) =
  match fn_of t f with None -> true | Some fi -> fi.fi_fp

let total_sweeps t = Hashtbl.fold (fun _ fi acc -> acc + fi.fi_sweeps) t.fns 0
let rounds t = t.rounds
let env t = t.renv
let modl t = t.rm

(* ---------- rendering (llva_lint --ranges) ---------- *)

let render_func t (f : Ir.func) : string list =
  match fn_of t f with
  | None -> []
  | Some fi ->
      let lines = ref [] in
      let push s = lines := s :: !lines in
      let args =
        String.concat ", "
          (List.map
             (fun (a : Ir.arg) ->
               let n = if a.Ir.aname = "" then "<arg>" else "%" ^ a.Ir.aname in
               if int_like t.renv a.Ir.aty then
                 Printf.sprintf "%s %s" n (to_string (arg_range t f a))
               else n)
             f.Ir.fargs)
      in
      let ret =
        if int_like t.renv f.Ir.freturn then
          " -> " ^ to_string fi.fi_ret
        else ""
      in
      push (Printf.sprintf "%%%s(%s)%s%s" f.Ir.fname args ret
              (if fi.fi_fp then "" else "   ; widening budget exhausted"));
      Analysis.Cfg.iter_rpo
        (fun (b : Ir.block) ->
          List.iter
            (fun (i : Ir.instr) ->
              if i.Ir.iname <> "" && int_like t.renv i.Ir.ity then
                push
                  (Printf.sprintf "  %%%s:%%%s = %s %s" b.Ir.bname i.Ir.iname
                     (Ir.opcode_name i.Ir.op)
                     (to_string (instr_range t f i))))
            b.Ir.instrs)
        fi.fi_cfg;
      List.rev !lines

let render t : string list =
  List.concat_map
    (fun (f : Ir.func) ->
      if Ir.is_declaration f then [] else render_func t f)
    t.rm.Ir.funcs
