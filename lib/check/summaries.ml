(* Interprocedural argument summaries, computed bottom-up over the call
   graph's SCCs (paper §3.3: the typed SSA form makes this kind of
   "sophisticated analysis" possible on virtual object code).

   Per pointer argument of every function we derive three facts:

   - [derefs]  — the function provably loads or stores through the
     argument (an existence proof: [false] means "not proven", so unknown
     callees report [false] and never trigger null-argument warnings);
   - [must_derefs] — the function dereferences the argument on EVERY
     finite execution path from entry to exit (a backward all-paths
     dataflow over the CFG); [true] upgrades a null argument from a
     warning to an error, so recursion and unknown callees stay [false];
   - [escapes] — the argument's address MAY outlive the call (stored to
     memory, returned, merged through a phi, or passed on to an escaping
     position); [false] is a guarantee;
   - [writes]  — the function MAY store through the argument; [false] is
     a guarantee, which lets the uninitialized-load checker refuse to
     treat a call as initializing the buffer it receives.

   A function is [pure] when it has no caller-observable side effects:
   no stores outside its own stack frame, no calls to impure or unknown
   code, no unwind. (Potential traps from @ee loads/divides are ignored;
   purity here backs a lint about discarded results, not a transform.)

   Facts for an SCC are iterated to a fixpoint so mutual recursion is
   handled; callees below the SCC are already final. *)

open Llva

type arg_summary = {
  derefs : bool;
  must_derefs : bool;
  escapes : bool;
  writes : bool;
}

type func_summary = { args : arg_summary array; pure : bool }

(* A relational bound on an integer argument, proven by the range engine's
   interprocedural rounds and keyed by argument position: the argument is
   at most another argument plus a constant, or at most the element count
   of the object behind a pointer argument plus a constant. The summary
   table carries them so checkers can ask "does this pointer argument
   have a usable length symbol at all?" without reaching into the range
   analysis state. *)
type arg_bound = Ble_arg of int * int64 | Ble_len of int * int64

type t = {
  table : (int, func_summary) Hashtbl.t;
  env : Types.env;
  mutable rel : (string * (int * arg_bound) list) list;
      (* function name -> (arg position, bound) facts; installed by the
         lint driver after the range analysis runs *)
}

let unknown_arg =
  { derefs = false; must_derefs = false; escapes = true; writes = true }

let unknown_summary (f : Ir.func) =
  { args = Array.make (List.length f.Ir.fargs) unknown_arg; pure = false }

let func_summary (t : t) (f : Ir.func) =
  match Hashtbl.find_opt t.table f.Ir.fid with
  | Some s -> s
  | None -> unknown_summary f

(* Summary for argument position [k]; varargs and out-of-range positions
   are unknown. *)
let arg_summary (s : func_summary) k =
  if k >= 0 && k < Array.length s.args then s.args.(k) else unknown_arg

let is_pointer env ty =
  match Types.resolve env ty with
  | Types.Pointer _ -> true
  | _ -> false
  | exception Types.Unresolved _ -> false

(* Argument index [j] a call operand position maps to, if it is an
   argument slot. *)
let call_arg_index (i : Ir.instr) uidx =
  match i.Ir.op with
  | Ir.Call when uidx >= 1 -> Some (uidx - 1)
  | Ir.Invoke when uidx >= 3 -> Some (uidx - 3)
  | _ -> None

(* Does every finite path from the entry to an exit pass through one of
   the [events] (deref sites, as instruction ids)? Least fixpoint of
     md(b) = event-in(b) \/ (succs(b) <> [] /\ forall s. md(s))
   starting from false, so a loop that can spin without dereferencing
   never proves the property — [true] really is "unavoidable". *)
let must_reach_events (cfg : Analysis.Cfg.t) (events : (int, unit) Hashtbl.t)
    : bool =
  Hashtbl.length events > 0
  && Analysis.Cfg.n_blocks cfg > 0
  &&
  let nb = Analysis.Cfg.n_blocks cfg in
  let has_event =
    Array.init nb (fun bk ->
        List.exists
          (fun (i : Ir.instr) -> Hashtbl.mem events i.Ir.iid)
          (Analysis.Cfg.block cfg bk).Ir.instrs)
  in
  let md = Array.make nb false in
  let changed = ref true in
  while !changed do
    changed := false;
    for bk = nb - 1 downto 0 do
      if not md.(bk) then
        let v =
          has_event.(bk)
          ||
          match cfg.Analysis.Cfg.succs.(bk) with
          | [] -> false
          | ss -> List.for_all (fun s -> md.(s)) ss
        in
        if v then begin
          md.(bk) <- true;
          changed := true
        end
    done
  done;
  md.(0)

(* Facts about one argument of [f], reading callee facts from [lookup]
   (in-progress for same-SCC callees). *)
let analyze_arg env lookup (cfg : Analysis.Cfg.t) (a : Ir.arg) : arg_summary =
  let derefs = ref false and escapes = ref false and writes = ref false in
  (* instruction ids that certainly dereference the argument when they
     execute, feeding the all-paths [must_derefs] dataflow *)
  let deref_sites = Hashtbl.create 8 in
  let seen = Hashtbl.create 8 in
  let rec walk_uses uses =
    List.iter
      (fun (u : Ir.use) ->
        let user = u.Ir.user in
        match user.Ir.op with
        | Ir.Load ->
            derefs := true;
            Hashtbl.replace deref_sites user.Ir.iid ()
        | Ir.Store ->
            if u.Ir.uidx = 1 then begin
              derefs := true;
              writes := true;
              Hashtbl.replace deref_sites user.Ir.iid ()
            end
            else escapes := true (* the pointer itself is stored away *)
        | Ir.Getelementptr when u.Ir.uidx = 0 -> follow user
        | Ir.Cast ->
            if is_pointer env user.Ir.ity then follow user else escapes := true
        | Ir.Call | Ir.Invoke -> (
            match call_arg_index user u.Ir.uidx with
            | Some j -> (
                match Ir.call_callee user with
                | Ir.Vfunc g ->
                    let s = arg_summary (lookup g) j in
                    if s.derefs then derefs := true;
                    if s.must_derefs then
                      Hashtbl.replace deref_sites user.Ir.iid ();
                    if s.escapes then escapes := true;
                    if s.writes then writes := true
                | _ ->
                    (* indirect call: no assumptions *)
                    escapes := true;
                    writes := true)
            | None ->
                (* the pointer is the callee: executing through it
                   dereferences it; anything may happen to it *)
                derefs := true;
                Hashtbl.replace deref_sites user.Ir.iid ();
                escapes := true;
                writes := true)
        | Ir.Ret -> escapes := true
        | Ir.Setcc _ -> () (* address comparison *)
        | Ir.Br | Ir.Mbr | Ir.Unwind | Ir.Alloca -> ()
        | Ir.Getelementptr ->
            () (* uidx > 0: pointers cannot be gep indexes; unreachable *)
        | Ir.Phi | Ir.Binop _ ->
            (* merged or arithmetically recombined: stop tracking *)
            escapes := true)
      uses
  and follow (derived : Ir.instr) =
    if not (Hashtbl.mem seen derived.Ir.iid) then begin
      Hashtbl.replace seen derived.Ir.iid ();
      walk_uses derived.Ir.iuses
    end
  in
  walk_uses a.Ir.auses;
  {
    derefs = !derefs;
    must_derefs = must_reach_events cfg deref_sites;
    escapes = !escapes;
    writes = !writes;
  }

let analyze_pure lookup (f : Ir.func) : bool =
  let pure = ref true in
  Ir.iter_instrs
    (fun i ->
      match i.Ir.op with
      | Ir.Store -> (
          match Analysis.Alias.base_object i.Ir.operands.(1) with
          | Analysis.Alias.Balloca _ -> () (* own frame; dies at return *)
          | _ -> pure := false)
      | Ir.Call | Ir.Invoke -> (
          match Ir.call_callee i with
          | Ir.Vfunc g -> if not (lookup g).pure then pure := false
          | _ -> pure := false)
      | Ir.Unwind -> pure := false
      | _ -> ())
    f;
  !pure

let analyze_function env lookup (f : Ir.func) : func_summary =
  if Ir.is_declaration f then unknown_summary f
  else
    let cfg = Analysis.Cfg.build f in
    {
      args =
        Array.of_list
          (List.map (fun a -> analyze_arg env lookup cfg a) f.Ir.fargs);
      pure = analyze_pure lookup f;
    }

let summary_equal (a : func_summary) (b : func_summary) =
  a.pure = b.pure && a.args = b.args

let set_relations (t : t) rel = t.rel <- rel

(* Relational bounds for the arguments of [f] (empty until the driver
   installs the range engine's facts). *)
let arg_bounds (t : t) (f : Ir.func) : (int * arg_bound) list =
  match List.assoc_opt f.Ir.fname t.rel with Some l -> l | None -> []

let compute (m : Ir.modl) : t =
  let env = Ir.type_env m in
  let t = { table = Hashtbl.create 32; env; rel = [] } in
  (* optimistic start for defined functions (greatest fixpoint for the
     guarantees, least for the existence facts); declarations are final *)
  List.iter
    (fun (f : Ir.func) ->
      let init =
        if Ir.is_declaration f then unknown_summary f
        else
          {
            args =
              Array.make (List.length f.Ir.fargs)
                {
                  derefs = false;
                  must_derefs = false;
                  escapes = false;
                  writes = false;
                };
            pure = true;
          }
      in
      Hashtbl.replace t.table f.Ir.fid init)
    m.Ir.funcs;
  let lookup (g : Ir.func) =
    match Hashtbl.find_opt t.table g.Ir.fid with
    | Some s -> s
    | None -> unknown_summary g
  in
  let cg = Analysis.Callgraph.compute m in
  (* Callgraph.sccs emits callees before callers *)
  List.iter
    (fun scc ->
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun f ->
            let next = analyze_function env lookup f in
            if not (summary_equal next (lookup f)) then begin
              Hashtbl.replace t.table f.Ir.fid next;
              changed := true
            end)
          scc
      done)
    (Analysis.Callgraph.sccs cg);
  t
