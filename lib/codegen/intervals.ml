(* Live intervals for SSA values over a linearized block order, built from
   [Analysis.Liveness]. Both back-ends allocate registers over these
   intervals before instruction selection: values assigned a register are
   used directly, the rest live in stack slots. *)

open Llva

type klass = Kint | Kfloat

let klass_of_type env ty =
  match Types.resolve env ty with
  | Types.Float | Types.Double -> Kfloat
  | _ -> Kint

type interval = {
  vid : int; (* instr id or arg id *)
  klass : klass;
  mutable start_pos : int;
  mutable end_pos : int;
  mutable weight : int; (* use count, loop-depth scaled: spill priority *)
}

type t = {
  intervals : (int, interval) Hashtbl.t;
  order : Ir.block list; (* linearization used for positions *)
  positions : (int, int) Hashtbl.t; (* instr id -> position *)
  block_range : (int, int * int) Hashtbl.t; (* block id -> (first, last) *)
}

let get_or_make t env ~vid ~ty pos =
  match Hashtbl.find_opt t.intervals vid with
  | Some iv -> iv
  | None ->
      let iv =
        { vid; klass = klass_of_type env ty; start_pos = pos; end_pos = pos;
          weight = 0 }
      in
      Hashtbl.replace t.intervals vid iv;
      iv

let extend iv pos =
  if pos < iv.start_pos then iv.start_pos <- pos;
  if pos > iv.end_pos then iv.end_pos <- pos

let build ?(env = Types.empty_env ()) (f : Ir.func) : t =
  let cfg = Analysis.Cfg.build f in
  let live = Analysis.Liveness.compute cfg in
  let loops = Analysis.Loops.compute cfg (Analysis.Dominance.compute cfg) in
  let order = f.Ir.fblocks in
  let t =
    {
      intervals = Hashtbl.create 64;
      order;
      positions = Hashtbl.create 256;
      block_range = Hashtbl.create 16;
    }
  in
  (* assign positions; leave gaps of 2 for copies inserted later *)
  let pos = ref 0 in
  List.iter
    (fun (b : Ir.block) ->
      let first = !pos in
      List.iter
        (fun (i : Ir.instr) ->
          Hashtbl.replace t.positions i.Ir.iid !pos;
          pos := !pos + 2)
        b.Ir.instrs;
      Hashtbl.replace t.block_range b.Ir.blid (first, max first (!pos - 1)))
    order;
  (* arguments are defined at position -1 *)
  List.iter
    (fun (a : Ir.arg) ->
      let iv = get_or_make t env ~vid:a.Ir.aid ~ty:a.Ir.aty (-1) in
      extend iv (-1))
    f.Ir.fargs;
  (* defs and uses *)
  let use_weight (b : Ir.block) =
    1 + (4 * Analysis.Loops.loop_depth loops b)
  in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun (i : Ir.instr) ->
          let p = Hashtbl.find t.positions i.Ir.iid in
          if not (Types.equal i.Ir.ity Types.Void) then begin
            let iv = get_or_make t env ~vid:i.Ir.iid ~ty:i.Ir.ity p in
            extend iv p;
            iv.weight <- iv.weight + use_weight b
          end;
          Array.iter
            (fun v ->
              match v with
              | Ir.Vreg d ->
                  if not (Types.equal d.Ir.ity Types.Void) then begin
                    let iv = get_or_make t env ~vid:d.Ir.iid ~ty:d.Ir.ity p in
                    extend iv p;
                    iv.weight <- iv.weight + use_weight b
                  end
              | Ir.Varg a ->
                  let iv = get_or_make t env ~vid:a.Ir.aid ~ty:a.Ir.aty p in
                  extend iv p;
                  iv.weight <- iv.weight + use_weight b
              | _ -> ())
            i.Ir.operands)
        b.Ir.instrs)
    order;
  (* extend across blocks where the value is live-in/out *)
  List.iter
    (fun (b : Ir.block) ->
      if Analysis.Cfg.is_reachable cfg b then begin
        let first, last = Hashtbl.find t.block_range b.Ir.blid in
        List.iter
          (fun vid ->
            match Hashtbl.find_opt t.intervals vid with
            | Some iv -> extend iv first
            | None -> ())
          (Analysis.Liveness.live_in live b);
        List.iter
          (fun vid ->
            match Hashtbl.find_opt t.intervals vid with
            | Some iv -> extend iv last
            | None -> ())
          (Analysis.Liveness.live_out live b)
      end)
    order;
  t

(* Sorted by start position, with value id as tie-break: hash-table
   iteration order depends on absolute ids (a global counter), so without
   the tie-break two decodes of the same module could allocate equal-start
   intervals differently, breaking reproducible translation. *)
let all t =
  Hashtbl.fold (fun _ iv acc -> iv :: acc) t.intervals []
  |> List.sort (fun a b ->
         match compare a.start_pos b.start_pos with
         | 0 -> compare a.vid b.vid
         | c -> c)

let position_of t (i : Ir.instr) =
  match Hashtbl.find_opt t.positions i.Ir.iid with Some p -> p | None -> 0
