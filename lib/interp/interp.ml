(* Reference interpreter for the LLVA V-ISA.

   This is the semantic baseline of the whole system: the machine back-ends
   are differentially tested against it. It implements the paper's precise
   exception model (§3.3) — an instruction whose ExceptionsEnabled bit is
   false has its exceptions *ignored* (the result becomes undef); enabled
   exceptions are delivered either to a registered trap handler or to the
   caller as [Trap] — the §3.4 self-modification rule (replacement affects
   only future invocations), and the §3.5 OS-support mechanisms (intrinsic
   functions and the privileged bit). *)

open Llva

type trap_kind =
  | Division_by_zero
  | Overflow (* signed INT_MIN / -1 division or remainder *)
  | Memory_fault of int64
  | Privilege_violation

exception Trap of trap_kind
exception Unwound (* an unwind with no enclosing invoke *)
exception Out_of_fuel

let trap_number = function
  | Division_by_zero -> 0
  | Overflow -> 0 (* x86 #DE covers both divide faults *)
  | Memory_fault _ -> 1
  | Privilege_violation -> 2

let trap_to_string = function
  | Division_by_zero -> "division by zero"
  | Overflow -> "division overflow"
  | Memory_fault a -> Printf.sprintf "memory fault at 0x%Lx" a
  | Privilege_violation -> "privilege violation"

(* Raised internally by the unwind instruction; caught by invoke. *)
exception Unwinding

type stats = {
  mutable steps : int; (* dynamic LLVA instructions *)
  by_opcode : int array; (* indexed by Ir.opcode_code *)
  mutable calls : int;
  mutable max_depth : int;
}

type state = {
  m : Ir.modl;
  img : Vmem.Image.t;
  mem : Vmem.Memory.t;
  rt : Vmem.Runtime.t;
  env : Types.env;
  layout : Vmem.Layout.t;
  mutable stack : int64;
  mutable depth : int;
  mutable fuel : int; (* < 0 means unlimited *)
  (* the function currently executing; on a trap that escapes to the
     caller it names the frame the trap fired in (best-effort) *)
  mutable current : string;
  mutable trap_handler : Ir.func option;
  mutable privileged : bool;
  (* §3.4 SMC: future invocations of key go to the replacement *)
  redirects : (string, Ir.func) Hashtbl.t;
  (* invalidation callbacks; LLEE hooks these to drop cached native code *)
  mutable on_smc : (Ir.func -> unit) list;
  (* profiling hook: called on every taken CFG edge (src, dst) *)
  mutable on_edge : (Ir.block -> Ir.block -> unit) option;
  stats : stats;
}

let create ?(fuel = -1) (m : Ir.modl) : state =
  let img = Vmem.Image.load m in
  let mem = img.Vmem.Image.mem in
  {
    m;
    img;
    mem;
    rt = Vmem.Runtime.create mem;
    env = Ir.type_env m;
    layout = img.Vmem.Image.layout;
    stack = Vmem.Memory.stack_top;
    depth = 0;
    fuel;
    current = "main";
    trap_handler = None;
    privileged = false;
    redirects = Hashtbl.create 8;
    on_smc = [];
    on_edge = None;
    stats = { steps = 0; by_opcode = Array.make 29 0; calls = 0; max_depth = 0 };
  }

let output st = Vmem.Runtime.output st.rt

(* ---------- frames ---------- *)

type frame = {
  regs : (int, Eval.scalar) Hashtbl.t;
  fargs : (int, Eval.scalar) Hashtbl.t;
  saved_stack : int64;
}

let scalar_of_const st (c : Ir.const) : Eval.scalar =
  match c.Ir.ckind with
  | Ir.Cbool b -> Eval.B b
  | Ir.Cint v -> Eval.I (c.Ir.cty, v)
  | Ir.Cfloat v -> Eval.F (c.Ir.cty, Eval.round_float c.Ir.cty v)
  | Ir.Cnull -> Eval.P 0L
  | Ir.Czero -> (
      match Types.resolve st.env c.Ir.cty with
      | Types.Bool -> Eval.B false
      | t when Types.is_integer t -> Eval.I (t, 0L)
      | t when Types.is_fp t -> Eval.F (t, 0.0)
      | Types.Pointer _ -> Eval.P 0L
      | _ -> invalid_arg "Interp: aggregate zero in register context")
  | Ir.Cglobal_ref name -> (
      match Vmem.Image.symbol_address st.img name with
      | Some a -> Eval.P a
      | None -> invalid_arg ("Interp: unresolved symbol " ^ name))
  | Ir.Carray _ | Ir.Cstruct _ | Ir.Cstring _ ->
      invalid_arg "Interp: aggregate constant in register context"

let value st frame (v : Ir.value) : Eval.scalar =
  match v with
  | Ir.Const c -> scalar_of_const st c
  | Ir.Vreg i -> (
      match Hashtbl.find_opt frame.regs i.Ir.iid with
      | Some s -> s
      | None -> Eval.Undef i.Ir.ity)
  | Ir.Varg a -> (
      match Hashtbl.find_opt frame.fargs a.Ir.aid with
      | Some s -> s
      | None -> Eval.Undef a.Ir.aty)
  | Ir.Vglobal g -> (
      match Vmem.Image.symbol_address st.img g.Ir.gname with
      | Some a -> Eval.P a
      | None -> invalid_arg ("Interp: global without address: " ^ g.Ir.gname))
  | Ir.Vfunc f -> (
      match Hashtbl.find_opt st.img.Vmem.Image.func_addrs f.Ir.fname with
      | Some a -> Eval.P a
      | None -> invalid_arg ("Interp: function without address: " ^ f.Ir.fname))
  | Ir.Vblock _ -> invalid_arg "Interp: label used as a value"
  | Ir.Vundef ty -> Eval.Undef ty

(* ---------- trap delivery ---------- *)

(* Always raises; declared as returning unit so call sites follow it with
   their own (unreachable) result expression. *)
let rec deliver_trap st kind : unit =
  match st.trap_handler with
  | Some handler ->
      (* Run the handler (an ordinary LLVA function, per §3.5) with the
         trap number and a null info pointer, then terminate via Trap. *)
      st.trap_handler <- None (* avoid recursive trap loops *);
      (try
         ignore
           (call_function st handler
              [ Eval.I (Types.Uint, Int64.of_int (trap_number kind)); Eval.P 0L ])
       with Vmem.Runtime.Exit_called _ as e -> raise e);
      raise (Trap kind)
  | None -> raise (Trap kind)

(* ---------- instruction execution ---------- *)

and exec_call st callee_addr args =
  match Vmem.Image.func_at st.img callee_addr with
  | Some f -> call_function st f args
  | None -> invalid_arg (Printf.sprintf "Interp: call to non-function 0x%Lx" callee_addr)

and call_external st (f : Ir.func) args =
  let name = f.Ir.fname in
  if Intrinsics.is_intrinsic name then call_intrinsic st name args
  else if Vmem.Runtime.is_known name then Vmem.Runtime.call st.rt name args
  else invalid_arg ("Interp: call to undefined external " ^ name)

and call_intrinsic st name args =
  match (name, args) with
  | "llva.trap.register", [ p ] ->
      (match Vmem.Image.func_at st.img (Eval.to_int64 p) with
      | Some h -> st.trap_handler <- Some h
      | None -> invalid_arg "llva.trap.register: not a function pointer");
      Eval.Undef Types.Void
  | "llva.smc.replace", [ from_p; to_p ] -> (
      (* §3.4: redirect *future* invocations of [from] to [to]. *)
      match
        ( Vmem.Image.func_at st.img (Eval.to_int64 from_p),
          Vmem.Image.func_at st.img (Eval.to_int64 to_p) )
      with
      | Some from_f, Some to_f ->
          Hashtbl.replace st.redirects from_f.Ir.fname to_f;
          List.iter (fun hook -> hook from_f) st.on_smc;
          Eval.Undef Types.Void
      | _ -> invalid_arg "llva.smc.replace: operands must be function pointers")
  | "llva.stack.depth", [] -> Eval.I (Types.Uint, Int64.of_int st.depth)
  | "llva.priv.set", [ b ] ->
      st.privileged <- Eval.to_bool b;
      Eval.Undef Types.Void
  | other, _ when Intrinsics.is_privileged other ->
      (* privileged kernel intrinsics: trap unless the privileged bit is
         set (§3.5); the operations themselves are no-op stubs here *)
      if not st.privileged then begin
        deliver_trap st Privilege_violation;
        assert false
      end
      else Eval.Undef Types.Void
  | _ -> invalid_arg ("Interp: unknown intrinsic " ^ name)

and call_function st (f : Ir.func) args : Eval.scalar =
  let f =
    match Hashtbl.find_opt st.redirects f.Ir.fname with
    | Some replacement -> replacement
    | None -> f
  in
  if Ir.is_declaration f then call_external st f args
  else begin
    st.stats.calls <- st.stats.calls + 1;
    st.depth <- st.depth + 1;
    if st.depth > st.stats.max_depth then st.stats.max_depth <- st.depth;
    if st.depth > 100_000 then invalid_arg "Interp: call depth exceeded";
    let frame =
      { regs = Hashtbl.create 64; fargs = Hashtbl.create 8; saved_stack = st.stack }
    in
    (try
       List.iteri
         (fun k (a : Ir.arg) ->
           match List.nth_opt args k with
           | Some v -> Hashtbl.replace frame.fargs a.Ir.aid v
           | None -> ())
         f.Ir.fargs
     with Invalid_argument _ -> ());
    let prev = st.current in
    st.current <- f.Ir.fname;
    let finish result =
      st.stack <- frame.saved_stack;
      st.depth <- st.depth - 1;
      st.current <- prev;
      result
    in
    try finish (exec_block st frame (Ir.entry_block f) None)
    with e ->
      (* deliberately do not restore [current]: a propagating trap keeps
         the name of the innermost function it fired in *)
      st.stack <- frame.saved_stack;
      st.depth <- st.depth - 1;
      raise e

  end

(* Execute from [block] (having arrived from [pred]) until a return. *)
and exec_block st frame (block : Ir.block) (pred : Ir.block option) : Eval.scalar =
  (* phis first, evaluated simultaneously *)
  let phis = Ir.block_phis block in
  (match (phis, pred) with
  | [], _ -> ()
  | _, None -> invalid_arg "Interp: phi in entry block"
  | _, Some p ->
      let values =
        List.map
          (fun phi ->
            match Ir.phi_value_for_block phi p with
            | Some v -> (phi, value st frame v)
            | None ->
                invalid_arg
                  (Printf.sprintf "Interp: phi %%%s missing edge from %%%s"
                     phi.Ir.iname p.Ir.bname))
          phis
      in
      List.iter (fun (phi, v) -> Hashtbl.replace frame.regs phi.Ir.iid v) values);
  let rec run = function
    | [] -> invalid_arg "Interp: block fell through without terminator"
    | (i : Ir.instr) :: rest -> (
        if i.Ir.op = Ir.Phi then run rest
        else begin
          st.stats.steps <- st.stats.steps + 1;
          st.stats.by_opcode.(Ir.opcode_code i.Ir.op) <-
            st.stats.by_opcode.(Ir.opcode_code i.Ir.op) + 1;
          if st.fuel >= 0 && st.stats.steps > st.fuel then raise Out_of_fuel;
          match exec_instr st frame i with
          | `Continue -> run rest
          | `Branch next ->
              (match st.on_edge with
              | Some hook -> hook block next
              | None -> ());
              exec_block st frame next (Some block)
          | `Return v -> v
        end)
  in
  run block.Ir.instrs

and exec_instr st frame (i : Ir.instr) =
  let v k = value st frame i.Ir.operands.(k) in
  let set s =
    Hashtbl.replace frame.regs i.Ir.iid s;
    `Continue
  in
  (* run [f]; on an exception condition, honour ExceptionsEnabled *)
  let guarded f ~(ignored : unit -> [ `Continue | `Branch of Ir.block | `Return of Eval.scalar ]) =
    try f () with
    | Eval.Division_by_zero ->
        if i.Ir.exceptions_enabled then begin
          deliver_trap st Division_by_zero;
          assert false
        end
        else ignored ()
    | Eval.Overflow ->
        if i.Ir.exceptions_enabled then begin
          deliver_trap st Overflow;
          assert false
        end
        else ignored ()
    | Vmem.Memory.Fault addr ->
        if i.Ir.exceptions_enabled then begin
          deliver_trap st (Memory_fault addr);
          assert false
        end
        else ignored ()
  in
  match i.Ir.op with
  | Ir.Binop op ->
      guarded
        (fun () -> set (Eval.binop op (v 0) (v 1)))
        ~ignored:(fun () -> set (Eval.Undef i.Ir.ity))
  | Ir.Setcc c ->
      set (Eval.compare_scalars (Ir.type_of_value i.Ir.operands.(0)) c (v 0) (v 1))
  | Ir.Ret ->
      if Array.length i.Ir.operands = 0 then `Return (Eval.Undef Types.Void)
      else `Return (v 0)
  | Ir.Br ->
      if Array.length i.Ir.operands = 1 then
        `Branch (Ir.block_of_value i.Ir.operands.(0))
      else if Eval.to_bool (v 0) then `Branch (Ir.block_of_value i.Ir.operands.(1))
      else `Branch (Ir.block_of_value i.Ir.operands.(2))
  | Ir.Mbr ->
      let sel = Eval.to_int64 (v 0) in
      let rec find k =
        if k + 1 >= Array.length i.Ir.operands then
          Ir.block_of_value i.Ir.operands.(1)
        else
          match i.Ir.operands.(k) with
          | Ir.Const { ckind = Ir.Cint c; _ } when Int64.equal c sel ->
              Ir.block_of_value i.Ir.operands.(k + 1)
          | _ -> find (k + 2)
      in
      `Branch (find 2)
  | Ir.Unwind -> raise Unwinding
  | Ir.Invoke -> (
      let callee = Eval.to_int64 (v 0) in
      let args =
        List.init
          (Array.length i.Ir.operands - 3)
          (fun k -> value st frame i.Ir.operands.(k + 3))
      in
      match exec_call st callee args with
      | result ->
          Hashtbl.replace frame.regs i.Ir.iid result;
          `Branch (Ir.block_of_value i.Ir.operands.(1))
      | exception Unwinding -> `Branch (Ir.block_of_value i.Ir.operands.(2)))
  | Ir.Call ->
      let callee = Eval.to_int64 (v 0) in
      let args =
        List.init
          (Array.length i.Ir.operands - 1)
          (fun k -> value st frame i.Ir.operands.(k + 1))
      in
      let result = exec_call st callee args in
      if Types.equal i.Ir.ity Types.Void then `Continue else set result
  | Ir.Load ->
      guarded
        (fun () ->
          let addr = Eval.to_int64 (v 0) in
          if Int64.equal addr 0L then raise (Vmem.Memory.Fault 0L);
          set
            (Vmem.Memory.read_scalar st.mem
               (Types.resolve st.env i.Ir.ity)
               addr))
        ~ignored:(fun () -> set (Eval.Undef i.Ir.ity))
  | Ir.Store ->
      guarded
        (fun () ->
          let addr = Eval.to_int64 (v 1) in
          if Int64.equal addr 0L then raise (Vmem.Memory.Fault 0L);
          let ty =
            Types.resolve st.env (Ir.type_of_value i.Ir.operands.(0))
          in
          Vmem.Memory.write_scalar st.mem ty addr (v 0);
          `Continue)
        ~ignored:(fun () -> `Continue)
  | Ir.Getelementptr ->
      let ptr = Eval.to_int64 (v 0) in
      let indexes =
        List.init
          (Array.length i.Ir.operands - 1)
          (fun k ->
            let op = i.Ir.operands.(k + 1) in
            (Ir.type_of_value op, Eval.to_int64 (value st frame op)))
      in
      let off, _ =
        Vmem.Layout.gep_offset st.layout
          (Ir.type_of_value i.Ir.operands.(0))
          indexes
      in
      set
        (Eval.P
           (Eval.mask_pointer st.m.Ir.target (Int64.add ptr (Int64.of_int off))))
  | Ir.Alloca ->
      let count =
        if Array.length i.Ir.operands = 0 then 1
        else Int64.to_int (Eval.to_int64 (v 0))
      in
      let elem = Types.pointee st.env i.Ir.ity in
      let size = max 1 (count * Vmem.Layout.size_of st.layout elem) in
      let align = Vmem.Layout.align_of st.layout elem in
      let sp = Int64.sub st.stack (Int64.of_int size) in
      let sp = Int64.mul (Int64.div sp (Int64.of_int align)) (Int64.of_int align) in
      if Int64.compare sp Vmem.Memory.heap_base < 0 then begin
        deliver_trap st (Memory_fault sp);
        assert false
      end
      else begin
        st.stack <- sp;
        set (Eval.P sp)
      end
  | Ir.Cast ->
      let src_ty = Types.resolve st.env (Ir.type_of_value i.Ir.operands.(0)) in
      let dst_ty = Types.resolve st.env i.Ir.ity in
      let result = Eval.cast ~src_ty ~dst_ty (v 0) in
      let result =
        match result with
        | Eval.P a -> Eval.P (Eval.mask_pointer st.m.Ir.target a)
        | r -> r
      in
      set result
  | Ir.Phi -> `Continue (* handled on block entry *)

(* ---------- entry points ---------- *)

let run_function st name args =
  match Ir.find_func st.m name with
  | Some f -> call_function st f args
  | None -> invalid_arg ("Interp: no such function: " ^ name)

(* Run %main; returns the program's exit code. *)
let run_main st =
  match run_function st "main" [] with
  | v -> (
      match v with
      | Eval.I (_, code) -> Int64.to_int code
      | _ -> 0)
  | exception Vmem.Runtime.Exit_called code -> code
  | exception Unwinding -> raise Unwound
