(* CRC-32 (IEEE 802.3, the zlib polynomial), table-driven. LLEE cache
   entries carry this checksum inside their magic frame so bit-rot
   anywhere in a stored payload is detected before unmarshalling — a
   damaged entry is quarantined and retranslated instead of feeding
   garbage to [Marshal]. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let string s =
  let t = Lazy.force table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := t.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(* fixed-width lowercase hex, the form stored in the cache frame *)
let hex s = Printf.sprintf "%08x" (string s)
