(* LLEE: the Low-Level Execution Environment (paper §4.1).

   "Offline translation when possible, online translation whenever
   necessary": given virtual object code, LLEE looks for cached native
   translations through the OS-independent storage API, validates their
   timestamps, and falls back to JIT-compiling functions on demand; any
   newly translated code is written back to the cache when storage is
   available. During idle time the OS may request offline translation
   ([translate_offline]) so later launches need no JIT at all; offline
   translation fans out over a Domain worker pool ([Pool]) and also
   writes one whole-module cache entry, so a warm launch costs a single
   storage read + unmarshal instead of one per function.

   Profiles collected during execution drive the software trace cache
   ([reoptimize]): hot traces re-lay-out the code and the program is
   retranslated. Self-modifying code (the §3.4 intrinsics) invalidates
   per-function cache entries. *)

open Llva

(* re-export the library's submodules (llee.ml is the library interface) *)
module Storage = Storage
module Profile = Profile
module Trace = Trace
module Pool = Pool
module Outcome = Outcome
module Crc32 = Crc32
module Tv = Tv

type target = X86 | Sparc

let target_name = function X86 -> "x86lite" | Sparc -> "sparclite"

type stats = {
  mutable translations : int; (* functions JIT-compiled this run *)
  mutable cache_hits : int; (* functions loaded from offline storage *)
  mutable translate_time : float; (* seconds spent translating *)
  mutable cycles : int64; (* simulated execution cycles *)
  mutable native_instrs : int64; (* dynamic native instruction count *)
  mutable invalidations : int; (* SMC-triggered cache invalidations *)
  mutable cache_corrupt : int; (* undecodable cache entries dropped *)
  mutable cache_quarantined : int; (* checksum-failed entries moved aside *)
  mutable cache_repaired : int; (* quarantined entries rewritten fresh *)
  mutable storage_errors : int; (* storage ops contained as miss/no-op *)
  mutable lint_runs : int; (* llva-lint analyses actually computed *)
  mutable lint_skipped : int; (* recorded verdicts reused instead *)
  mutable lint_rejected : int; (* cache installs refused by an Error verdict *)
  mutable lint_blocked_funcs : int;
      (* functions barred from the native cache by a per-function verdict
         while the rest of the module kept its cached code *)
  mutable lint_time : float; (* seconds spent in the analyzer *)
  mutable peep_rewrites : int; (* peephole rewrites applied while translating *)
  mutable peep_cycles_saved : int; (* static cycles removed by those rewrites *)
  mutable peep_searches : int; (* superoptimizer searches actually run *)
  mutable peep_table_loads : int; (* rewrite tables loaded from storage *)
  mutable peep_time : float; (* seconds acquiring the table (search or load) *)
  mutable tv_runs : int; (* lockstep certifications actually computed *)
  mutable tv_skipped : int; (* recorded #tv# verdicts reused instead *)
  mutable tv_mismatches : int; (* mismatching functions in the verdict *)
  mutable tv_time : float; (* seconds spent in the lockstep checker *)
}

let fresh_stats () =
  {
    translations = 0;
    cache_hits = 0;
    translate_time = 0.0;
    cycles = 0L;
    native_instrs = 0L;
    invalidations = 0;
    cache_corrupt = 0;
    cache_quarantined = 0;
    cache_repaired = 0;
    storage_errors = 0;
    lint_runs = 0;
    lint_skipped = 0;
    lint_rejected = 0;
    lint_blocked_funcs = 0;
    lint_time = 0.0;
    peep_rewrites = 0;
    peep_cycles_saved = 0;
    peep_searches = 0;
    peep_table_loads = 0;
    peep_time = 0.0;
    tv_runs = 0;
    tv_skipped = 0;
    tv_mismatches = 0;
    tv_time = 0.0;
  }

type t = {
  bytes : string; (* the virtual object code as shipped *)
  m : Ir.modl;
  key : string; (* content hash: identifies the program version *)
  storage : Storage.t;
  target : target;
  program_timestamp : float;
  stats : stats;
  funcs_by_name : (string, Ir.func) Hashtbl.t; (* defined functions *)
  (* entries quarantined this launch; a successful rewrite under the same
     name counts as a repair *)
  quarantined : (string, unit) Hashtbl.t;
  peephole : bool; (* apply the superoptimized rewrite table *)
  (* the table for this launch, acquired lazily by [ensure_peep_table]:
     loaded from the [#peep#] cache entry or learned by a fresh search *)
  mutable peep_table : Superopt.Table.t option;
}

(* "Load the executable": decode virtual object code, remember its content
   hash (this plays the role of the program timestamp check: a changed
   program never matches stale cache entries, and an explicitly newer
   [timestamp] invalidates older ones). *)
let load ?(storage = Storage.none) ?(timestamp = 0.0) ?(peephole = false)
    ~target bytes =
  let m = Decode.decode bytes in
  let funcs_by_name = Hashtbl.create 64 in
  List.iter
    (fun (f : Ir.func) ->
      if not (Ir.is_declaration f) then
        Hashtbl.replace funcs_by_name f.Ir.fname f)
    m.Ir.funcs;
  {
    bytes;
    m;
    key = Digest.to_hex (Digest.string bytes);
    storage;
    target;
    program_timestamp = timestamp;
    stats = fresh_stats ();
    funcs_by_name;
    quarantined = Hashtbl.create 8;
    peephole;
    peep_table = None;
  }

let of_module ?(storage = Storage.none) ?(timestamp = 0.0) ?(peephole = false)
    ~target m =
  load ~storage ~timestamp ~peephole ~target (Encode.encode m)

(* Native-code entry identity includes the peephole table fingerprint:
   code compiled under different rewrite tables (or with the pass off —
   no suffix) never shares a cache entry. *)
let cache_name t fname =
  let base = Printf.sprintf "%s.%s.%s" t.key fname (target_name t.target) in
  match t.peep_table with
  | Some tb -> base ^ ".p" ^ Superopt.Table.fingerprint tb
  | None -> base

(* Reserved (non-function) cache entries are framed with '#', a character
   the LLVA identifier grammar excludes ([a-zA-Z0-9._$-] only), so no
   function name — not even one literally called "__module__" — can ever
   collide with them. *)
let module_entry_name t = cache_name t "#module#"

(* The llva-lint verdict entry: keyed by the module content hash and the
   analyzer version stamp, with no target component — findings are
   target-independent, so both back-ends share one verdict. A
   [Check.Lint.version] bump changes the name, orphaning old verdicts. *)
let lint_entry_name t =
  Printf.sprintf "%s.#lint#.v%d" t.key Check.Lint.version

(* The superoptimizer's rewrite-table entry: keyed by the module content
   hash, the target (tables encode target instructions, so the back-ends
   cannot share one) and the table format version — a
   [Superopt.Table.version] bump orphans old tables. *)
let peep_entry_name t =
  Printf.sprintf "%s.#peep#.%s.v%d" t.key (target_name t.target)
    Superopt.Table.version

(* The translation-validation verdict entry: keyed by the module content
   hash, the target (certification is of one translation) and the
   checker version — a [Tv.version] bump orphans recorded verdicts. *)
let tv_entry_name t =
  Printf.sprintf "%s.#tv#.%s.v%d" t.key (target_name t.target) Tv.version

(* ---------- contained storage operations ---------- *)

(* The storage API may throw — injected faults, transient I/O errors that
   outlasted the retry budget, a hostile filesystem. None of that may
   take the launch down: a throwing read is a miss, a throwing write or
   delete is a no-op, and each is counted in [storage_errors]. *)
let storage_read t name : Storage.entry option =
  try t.storage.Storage.read name
  with _ ->
    t.stats.storage_errors <- t.stats.storage_errors + 1;
    None

let storage_delete t name =
  try t.storage.Storage.delete name
  with _ -> t.stats.storage_errors <- t.stats.storage_errors + 1

(* A successful write under a name quarantined this launch is a repair:
   the damaged entry was moved aside and a freshly translated (or
   re-linted) replacement has landed. *)
let storage_write t name data =
  match t.storage.Storage.write name data with
  | () ->
      if Hashtbl.mem t.quarantined name then begin
        Hashtbl.remove t.quarantined name;
        t.stats.cache_repaired <- t.stats.cache_repaired + 1
      end
  | exception _ -> t.stats.storage_errors <- t.stats.storage_errors + 1

(* A checksum-failed entry is damaged but was certainly ours (the magic
   matched): move it aside on the storage medium — renamed, never
   re-read — so the retranslation about to happen can write a repaired
   entry under the original name. *)
let quarantine_entry t name =
  t.stats.cache_quarantined <- t.stats.cache_quarantined + 1;
  Hashtbl.replace t.quarantined name ();
  try t.storage.Storage.quarantine name
  with _ -> t.stats.storage_errors <- t.stats.storage_errors + 1

let read_cached t name : string option =
  match storage_read t name with
  | Some entry when entry.Storage.timestamp >= t.program_timestamp ->
      Some entry.Storage.data
  | Some _ ->
      (* stale translation: drop it *)
      storage_delete t name;
      None
  | None -> None

(* ---------- checksummed entry framing ---------- *)

(* Cached entries are framed with a magic prefix plus a CRC-32 of the
   payload (8 lowercase hex digits). The magic rejects foreign or
   truncated-into-the-header files; the checksum catches any damage to
   the payload itself, which is the self-healing trigger: quarantine,
   retranslate, write back. *)
let cache_magic = "LLEE2\x00"

let frame_entry payload = cache_magic ^ Crc32.hex payload ^ payload

type framed = Payload of string | Bad_magic | Bad_checksum

(* strict fixed-width hex: [int_of_string "0x…"] would accept OCaml
   literal syntax like underscores *)
let hex8 s =
  let v = ref 0 in
  let ok = ref (String.length s = 8) in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' -> v := (!v * 16) + (Char.code c - Char.code '0')
      | 'a' .. 'f' -> v := (!v * 16) + (Char.code c - Char.code 'a' + 10)
      | _ -> ok := false)
    s;
  if !ok then Some !v else None

let unframe_entry data : framed =
  let n = String.length cache_magic in
  if String.length data < n + 8 || String.sub data 0 n <> cache_magic then
    Bad_magic
  else
    let payload = String.sub data (n + 8) (String.length data - n - 8) in
    match hex8 (String.sub data n 8) with
    | Some crc when crc = Crc32.string payload -> Payload payload
    | Some _ | None ->
        (* ours for sure (the magic matched) but damaged — in the payload
           or in the checksum field itself *)
        Bad_checksum

(* Decode one framed cache entry. A failed checksum quarantines the entry
   (it was valid once and rotted); a bad magic or an unmarshalable
   payload that still passed its checksum counts as plain corruption — a
   foreign or garbage file that was never a valid entry. Either way the
   read is a miss and the caller retranslates. *)
let unmarshal_entry t name data =
  match unframe_entry data with
  | Bad_magic ->
      t.stats.cache_corrupt <- t.stats.cache_corrupt + 1;
      None
  | Bad_checksum ->
      quarantine_entry t name;
      None
  | Payload payload -> (
      try Some (Marshal.from_string payload 0)
      with Failure _ | Invalid_argument _ ->
        t.stats.cache_corrupt <- t.stats.cache_corrupt + 1;
        None)

let timed t f =
  let start = Unix.gettimeofday () in
  let result = f () in
  t.stats.translate_time <-
    t.stats.translate_time +. (Unix.gettimeofday () -. start);
  result

(* ---------- superoptimized peephole tables ---------- *)

let learn_table t =
  match t.target with
  | X86 -> Superopt.Search.learn_x86 [ t.m ]
  | Sparc -> Superopt.Search.learn_sparc [ t.m ]

(* Acquire this launch's rewrite table, reusing a recorded one when the
   storage cache holds a fresh, well-formed [#peep#] entry for this
   module hash, target and table version ([peep_table_loads] counts the
   reuse). A missing, stale, or corrupt entry runs the enumerative
   search exactly once ([peep_searches]) and writes the winning table
   back through the storage API — so the search cost is paid once per
   program version and amortized across every later launch. Without
   storage the table is re-learned every launch. Either way the time
   spent here lands in [peep_time], never in [translate_time]. *)
let ensure_peep_table t : Superopt.Table.t option =
  if not t.peephole then None
  else
    match t.peep_table with
    | Some _ as some -> some
    | None ->
        let t0 = Unix.gettimeofday () in
        let name = peep_entry_name t in
        let recorded =
          match read_cached t name with
          | None -> None
          | Some data -> (
              match unframe_entry data with
              | Bad_magic ->
                  t.stats.cache_corrupt <- t.stats.cache_corrupt + 1;
                  None
              | Bad_checksum ->
                  quarantine_entry t name;
                  None
              | Payload payload -> (
                  (* strict decode: wrong magic/version, undecodable
                     payload, target mismatch or a rule that disagrees
                     with the current cycle model all count as plain
                     corruption — re-search rather than apply *)
                  match
                    Superopt.Table.of_string
                      ~expect_target:(target_name t.target) payload
                  with
                  | tb -> Some tb
                  | exception Superopt.Table.Invalid_table _ ->
                      t.stats.cache_corrupt <- t.stats.cache_corrupt + 1;
                      None))
        in
        let tb =
          match recorded with
          | Some tb ->
              t.stats.peep_table_loads <- t.stats.peep_table_loads + 1;
              tb
          | None ->
              let tb = learn_table t in
              t.stats.peep_searches <- t.stats.peep_searches + 1;
              storage_write t name (frame_entry (Superopt.Table.to_string tb));
              tb
        in
        t.stats.peep_time <- t.stats.peep_time +. (Unix.gettimeofday () -. t0);
        t.peep_table <- Some tb;
        Some tb

(* ---------- lint-before-cache ---------- *)

(* Obtain the module's llva-lint verdict, reusing a recorded one when the
   storage cache holds a fresh, well-formed verdict for this exact module
   hash and analyzer version ([lint_skipped] counts the reuse). A
   missing, stale (program timestamp or version stamp), or corrupt
   verdict entry re-analyzes exactly once ([lint_runs]) and writes the
   verdict back through the storage API. *)
let verdict t : Check.Lint.verdict =
  let name = lint_entry_name t in
  let recorded =
    match read_cached t name with
    | None -> None
    | Some data -> (
        match unframe_entry data with
        | Bad_magic ->
            t.stats.cache_corrupt <- t.stats.cache_corrupt + 1;
            None
        | Bad_checksum ->
            quarantine_entry t name;
            None
        | Payload payload -> (
            match Check.Lint.verdict_of_json (Check.Json.parse payload) with
            | v -> Some v
            | exception Check.Json.Parse_error _ ->
                t.stats.cache_corrupt <- t.stats.cache_corrupt + 1;
                None))
  in
  match recorded with
  | Some v ->
      t.stats.lint_skipped <- t.stats.lint_skipped + 1;
      v
  | None ->
      let t0 = Unix.gettimeofday () in
      let v = Check.Lint.verdict t.m in
      t.stats.lint_time <- t.stats.lint_time +. (Unix.gettimeofday () -. t0);
      t.stats.lint_runs <- t.stats.lint_runs + 1;
      storage_write t name
        (frame_entry
           (Check.Json.to_string ~pretty:false
              (Check.Lint.verdict_to_json v)));
      v

(* ---------- translation validation (lockstep certification) ---------- *)

(* Obtain the module's lockstep-certification verdict for this target,
   reusing a recorded one when the storage cache holds a fresh,
   well-formed [#tv#] entry for this exact module hash, target and
   checker version ([tv_skipped] counts the reuse — a warm launch never
   re-runs the checker). A missing, stale, or corrupt entry certifies
   exactly once ([tv_runs]) and writes the verdict back through the
   storage API, with the same quarantine / re-check / repair self-healing
   as every other entry. Mismatching verdicts are recorded too — they
   document the divergence — and [tv_mismatches] counts the mismatching
   functions in whichever verdict this launch ends up holding. *)
let certify ?seed ?vectors t : Tv.verdict =
  let name = tv_entry_name t in
  let recorded =
    match read_cached t name with
    | None -> None
    | Some data -> (
        match unframe_entry data with
        | Bad_magic ->
            t.stats.cache_corrupt <- t.stats.cache_corrupt + 1;
            None
        | Bad_checksum ->
            quarantine_entry t name;
            None
        | Payload payload -> (
            match Tv.verdict_of_json (Check.Json.parse payload) with
            | v when v.Tv.v_target = target_name t.target -> Some v
            | _ ->
                (* a verdict for the other target under this target's
                   name was never valid *)
                t.stats.cache_corrupt <- t.stats.cache_corrupt + 1;
                None
            | exception Check.Json.Parse_error _ ->
                t.stats.cache_corrupt <- t.stats.cache_corrupt + 1;
                None))
  in
  match recorded with
  | Some v ->
      t.stats.tv_skipped <- t.stats.tv_skipped + 1;
      t.stats.tv_mismatches <- t.stats.tv_mismatches + Tv.mismatches v;
      v
  | None ->
      let t0 = Unix.gettimeofday () in
      let v =
        Tv.certify_module ?seed ?vectors ~target:(target_name t.target) t.m
      in
      t.stats.tv_time <- t.stats.tv_time +. (Unix.gettimeofday () -. t0);
      t.stats.tv_runs <- t.stats.tv_runs + 1;
      t.stats.tv_mismatches <- t.stats.tv_mismatches + Tv.mismatches v;
      storage_write t name
        (frame_entry
           (Check.Json.to_string ~pretty:false (Tv.verdict_to_json v)));
      v

(* The gate itself: with no storage there is nothing to protect (nothing
   is ever cached), so no lint runs — the pure-JIT path is unchanged.
   With storage the verdict is read per function:

   - [Gate_clean] — no error-severity findings; caching is unrestricted;
   - [Gate_partial] — errors exist, but none in a function call-reachable
     from [main]: execution proceeds, clean functions still install and
     serve cached native code, and only the tainted set (the reporting
     function plus every [related] SCC member) is barred from the cache
     ([lint_blocked_funcs]);
   - [Gate_refused] — an error taints [main]'s call-reachable set (or the
     module has no defined [main], or carries a module-level error), so
     the launch is refused outright ([lint_rejected], exit 125). *)
type gate =
  | Gate_clean
  | Gate_partial of Check.Lint.verdict * (string, unit) Hashtbl.t
  | Gate_refused of Check.Lint.verdict

let lint_gate t : gate =
  if not t.storage.Storage.available then Gate_clean
  else
    let v = verdict t in
    if Check.Lint.verdict_clean v then Gate_clean
    else
      let refuse () =
        t.stats.lint_rejected <- t.stats.lint_rejected + 1;
        Gate_refused v
      in
      let module_level_error =
        List.exists
          (fun (d : Check.Diag.t) ->
            d.Check.Diag.sev = Check.Diag.Error && d.Check.Diag.func = "")
          (Check.Lint.verdict_diags v)
      in
      match Hashtbl.find_opt t.funcs_by_name "main" with
      | None -> refuse () (* nothing executable to salvage *)
      | Some _ when module_level_error -> refuse ()
      | Some main_f ->
          let cg = Analysis.Callgraph.compute t.m in
          let reach = Analysis.Callgraph.reachable_from cg [ main_f ] in
          let tainted = Check.Lint.verdict_tainted v in
          let reachable name =
            match Hashtbl.find_opt t.funcs_by_name name with
            | Some f -> Hashtbl.mem reach f.Ir.fid
            | None -> false (* a declaration: it has no cache entry *)
          in
          if List.exists reachable tainted then refuse ()
          else begin
            let blocked = Hashtbl.create 8 in
            List.iter (fun n -> Hashtbl.replace blocked n ()) tainted;
            t.stats.lint_blocked_funcs <- Hashtbl.length blocked;
            Gate_partial (v, blocked)
          end

(* Exit code reported when the gate refuses a poisoned module. *)
let lint_rejected_code = 125

let lint_rejected_report t v =
  Printf.sprintf
    "llee: refusing execution of module %s: llva-lint recorded %d error(s) \
     (verdict v%d)\n%s\n"
    t.key
    (Check.Lint.verdict_errors v)
    Check.Lint.version
    (Check.Diag.render_text (Check.Lint.verdict_diags v))

(* ---------- per-target drivers ---------- *)

let find_function t name = Hashtbl.find_opt t.funcs_by_name name

(* The cached-translation resolver shared by both back-ends. [compile]
   JIT-compiles one IR function (timed and counted); [installed] is the
   back-end's compiled-function table. Resolution order: already
   installed, then the whole-module cache entry (read once, up front),
   then the per-function cache entry, then JIT + write-back. Functions in
   [blocked] (tainted by a per-function lint verdict) bypass the cache in
   both directions: they are JIT-compiled on demand and never written
   back, so a poisoned translation can neither be served nor recorded. *)
let no_blocked : (string, unit) Hashtbl.t = Hashtbl.create 0

let make_resolver (type cf) ?(blocked = no_blocked) t
    ~(compile : Ir.func -> cf) ~(installed : (string, cf) Hashtbl.t) :
    string -> cf option =
  let preloaded : (string, cf) Hashtbl.t = Hashtbl.create 16 in
  (let mname = module_entry_name t in
   match Option.bind (read_cached t mname) (unmarshal_entry t mname) with
   | Some (pairs : (string * cf) list) ->
       List.iter (fun (n, cf) -> Hashtbl.replace preloaded n cf) pairs
   | None -> ());
  fun name ->
    match Hashtbl.find_opt installed name with
    | Some cf -> Some cf
    | None -> (
        match find_function t name with
        | None -> None (* external: the simulator dispatches by name *)
        | Some f -> (
            let cached =
              if Hashtbl.mem blocked name then None
              else
                match Hashtbl.find_opt preloaded name with
                | Some cf -> Some cf
                | None ->
                    let cname = cache_name t name in
                    Option.bind (read_cached t cname)
                      (unmarshal_entry t cname)
            in
            match cached with
            | Some cf ->
                t.stats.cache_hits <- t.stats.cache_hits + 1;
                Hashtbl.replace installed name cf;
                Some cf
            | None ->
                (* JIT: translate on demand, write back to the cache —
                   which is also the repair path for an entry the
                   checksum just quarantined *)
                let cf = timed t (fun () -> compile f) in
                t.stats.translations <- t.stats.translations + 1;
                if not (Hashtbl.mem blocked name) then
                  storage_write t (cache_name t name)
                    (frame_entry (Marshal.to_string cf []));
                Hashtbl.replace installed name cf;
                Some cf))

let run_x86 ?blocked t ?fuel () =
  (* table first: cache identities include its fingerprint *)
  let peep =
    match ensure_peep_table t with
    | Some tb -> Superopt.Table.x86_pairs tb
    | None -> []
  in
  let ps = X86lite.Compile.fresh_peep_stats () in
  let image = Vmem.Image.load t.m in
  let cmod =
    { X86lite.Compile.cm = t.m; image; funcs = Hashtbl.create 32 }
  in
  let resolve =
    make_resolver ?blocked t
      ~compile:(fun f ->
        X86lite.Compile.compile_function t.m image ~peep ~peep_stats:ps f)
      ~installed:cmod.X86lite.Compile.funcs
  in
  let st = X86lite.Sim.create ?fuel cmod in
  st.X86lite.Sim.lookup <- (fun _st name -> resolve name);
  st.X86lite.Sim.regs.(X86lite.X86.sp) <- Vmem.Memory.stack_top;
  st.X86lite.Sim.regs.(X86lite.X86.bp) <- Vmem.Memory.stack_top;
  let outcome =
    Outcome.protect
      ~engine:("llee-" ^ target_name t.target)
      ~current:(fun () -> st.X86lite.Sim.cur.X86lite.Compile.cf_name)
      (fun () ->
        Int64.to_int
          (Ir.normalize_int Types.Int (X86lite.Sim.call_function st "main" [])))
  in
  t.stats.cycles <- st.X86lite.Sim.cycles;
  t.stats.native_instrs <- st.X86lite.Sim.icount;
  t.stats.invalidations <- Hashtbl.length st.X86lite.Sim.redirects;
  t.stats.peep_rewrites <- t.stats.peep_rewrites + ps.X86lite.Compile.rewrites;
  t.stats.peep_cycles_saved <-
    t.stats.peep_cycles_saved + ps.X86lite.Compile.cycles_saved;
  (outcome, X86lite.Sim.output st)

let run_sparc ?blocked t ?fuel () =
  let peep =
    match ensure_peep_table t with
    | Some tb -> Superopt.Table.sparc_pairs tb
    | None -> []
  in
  let ps = Sparclite.Compile.fresh_peep_stats () in
  let image = Vmem.Image.load t.m in
  let cmod =
    { Sparclite.Compile.cm = t.m; image; funcs = Hashtbl.create 32 }
  in
  let resolve =
    make_resolver ?blocked t
      ~compile:(fun f ->
        Sparclite.Compile.compile_function t.m image ~peep ~peep_stats:ps f)
      ~installed:cmod.Sparclite.Compile.funcs
  in
  let st = Sparclite.Sim.create ?fuel cmod in
  st.Sparclite.Sim.lookup <- (fun _st name -> resolve name);
  st.Sparclite.Sim.regs.(Sparclite.Sparc.sp) <- Vmem.Memory.stack_top;
  st.Sparclite.Sim.regs.(Sparclite.Sparc.fp) <- Vmem.Memory.stack_top;
  let outcome =
    Outcome.protect
      ~engine:("llee-" ^ target_name t.target)
      ~current:(fun () -> st.Sparclite.Sim.cur.Sparclite.Compile.cf_name)
      (fun () ->
        Int64.to_int
          (Ir.normalize_int Types.Int
             (Sparclite.Sim.call_function st "main" [])))
  in
  t.stats.cycles <- st.Sparclite.Sim.cycles;
  t.stats.native_instrs <- st.Sparclite.Sim.icount;
  t.stats.invalidations <- Hashtbl.length st.Sparclite.Sim.redirects;
  t.stats.peep_rewrites <-
    t.stats.peep_rewrites + ps.Sparclite.Compile.rewrites;
  t.stats.peep_cycles_saved <-
    t.stats.peep_cycles_saved + ps.Sparclite.Compile.cycles_saved;
  (outcome, Sparclite.Sim.output st)

(* Launch the program: JIT with transparent offline caching. When a
   storage cache is attached, the module is linted first (once — warm
   launches reuse the recorded verdict) and the verdict applies per
   function: an error in [main]'s call-reachable set degrades the launch
   to a reported failure, while errors confined to unreachable functions
   merely bar those functions from the cache — the rest of the module
   still executes from (and populates) cached native code. Returns a
   structured [Outcome.t] — traps, fuel exhaustion and lint refusals
   come back as data, never as escaping exceptions. *)
let run ?fuel t : Outcome.t * string =
  match lint_gate t with
  | Gate_refused v ->
      ( Outcome.Cache_degraded
          { reason =
              Printf.sprintf "llva-lint recorded %d error(s) for module %s"
                (Check.Lint.verdict_errors v)
                t.key
          },
        lint_rejected_report t v )
  | (Gate_clean | Gate_partial _) as g -> (
      let blocked =
        match g with Gate_partial (_, b) -> Some b | _ -> None
      in
      match t.target with
      | X86 -> run_x86 ?blocked t ?fuel ()
      | Sparc -> run_sparc ?blocked t ?fuel ())

(* Idle-time offline translation: translate every function and populate
   the cache without executing (paper: "flagging it for translation and
   not actual execution"). Functions compile in parallel on the [Pool]
   worker domains; entries are then written back in source order on the
   calling domain, so the resulting cache contents are byte-identical to
   a sequential run. Finally one whole-module entry is written so warm
   launches need a single storage read. SMC invalidation still operates
   per function: the redirect mechanism resolves the replacement function
   by name, whichever entry it was loaded from. *)
let translate_offline_unchecked ?domains ?(blocked = no_blocked) t =
  let tb = ensure_peep_table t in
  let fns =
    List.filter
      (fun (f : Ir.func) ->
        (not (Ir.is_declaration f)) && not (Hashtbl.mem blocked f.Ir.fname))
      t.m.Ir.funcs
  in
  (* workers return peephole counts as plain data: the shared stats
     record must only be mutated on the calling domain *)
  let go : 'cf. (Vmem.Image.t -> Ir.func -> 'cf * int * int) -> unit =
   fun compile ->
    let image = Vmem.Image.load t.m in
    let compiled =
      Pool.map ?domains
        (fun (f : Ir.func) ->
          let t0 = Unix.gettimeofday () in
          let cf, rewrites, saved = compile image f in
          (f.Ir.fname, cf, rewrites, saved, Unix.gettimeofday () -. t0))
        fns
    in
    List.iter
      (fun (name, cf, rewrites, saved, dt) ->
        t.stats.translations <- t.stats.translations + 1;
        t.stats.translate_time <- t.stats.translate_time +. dt;
        t.stats.peep_rewrites <- t.stats.peep_rewrites + rewrites;
        t.stats.peep_cycles_saved <- t.stats.peep_cycles_saved + saved;
        storage_write t (cache_name t name)
          (frame_entry (Marshal.to_string cf [])))
      compiled;
    storage_write t (module_entry_name t)
      (frame_entry
         (Marshal.to_string
            (List.map (fun (name, cf, _, _, _) -> (name, cf)) compiled)
            []))
  in
  match t.target with
  | X86 ->
      let peep =
        match tb with Some tb -> Superopt.Table.x86_pairs tb | None -> []
      in
      go (fun image f ->
          let ps = X86lite.Compile.fresh_peep_stats () in
          let cf =
            X86lite.Compile.compile_function t.m image ~peep ~peep_stats:ps f
          in
          (cf, ps.X86lite.Compile.rewrites, ps.X86lite.Compile.cycles_saved))
  | Sparc ->
      let peep =
        match tb with Some tb -> Superopt.Table.sparc_pairs tb | None -> []
      in
      go (fun image f ->
          let ps = Sparclite.Compile.fresh_peep_stats () in
          let cf =
            Sparclite.Compile.compile_function t.m image ~peep ~peep_stats:ps f
          in
          (cf, ps.Sparclite.Compile.rewrites, ps.Sparclite.Compile.cycles_saved))

let translate_offline ?domains t =
  if not t.storage.Storage.available then
    invalid_arg "Llee.translate_offline: no storage API registered";
  match lint_gate t with
  | Gate_refused _ ->
      (* poisoned module: the verdict entry is recorded (so the refusal
         itself is amortized across launches) but no native translations
         ever enter the cache *)
      ()
  | Gate_clean -> translate_offline_unchecked ?domains t
  | Gate_partial (_, blocked) ->
      (* the clean remainder of the module is still translated and
         cached; tainted functions are left out of both the per-function
         entries and the whole-module entry *)
      translate_offline_unchecked ?domains ~blocked t

(* ---------- cache forensics (llva-run --cache-doctor) ---------- *)

(* The self-healing path never re-reads a quarantined entry; these
   functions exist for the human operating the cache. They inspect and
   dispose of the moved-aside files without touching live entries. *)

let classify_frame data =
  match unframe_entry data with
  | Bad_magic -> "bad magic: foreign file or header truncated"
  | Bad_checksum -> "checksum mismatch: payload damaged at rest"
  | Payload _ -> "frame intact (entry was readable when quarantined)"

(* The recorded lockstep-certification state for this module and target,
   read without stats side effects: the doctor reports, it never heals. *)
let tv_doctor_line t : string =
  match t.storage.Storage.read (tv_entry_name t) with
  | None -> "tv verdict: none recorded for this module/target"
  | exception _ -> "tv verdict: storage unavailable"
  | Some e -> (
      match unframe_entry e.Storage.data with
      | Bad_magic | Bad_checksum ->
          "tv verdict: recorded entry damaged (next certify quarantines it)"
      | Payload p -> (
          match Tv.verdict_of_json (Check.Json.parse p) with
          | v ->
              Printf.sprintf
                "tv verdict: %d certified, %d skipped, %d mismatched (%s, tv \
                 v%d)"
                (Tv.certified v)
                (List.length v.Tv.v_results - Tv.certified v - Tv.mismatches v)
                (Tv.mismatches v) v.Tv.v_target v.Tv.v_version
          | exception Check.Json.Parse_error _ ->
              "tv verdict: recorded entry undecodable (stale version?)"))

(* One line per quarantined file: name as stored, size, age relative to
   [now] (a parameter so reports are reproducible in tests). *)
let cache_doctor ?now t : string list =
  let now = match now with Some n -> n | None -> Unix.gettimeofday () in
  match t.storage.Storage.list_quarantined () with
  | [] -> [ "cache doctor: no quarantined entries"; tv_doctor_line t ]
  | exception _ ->
      t.stats.storage_errors <- t.stats.storage_errors + 1;
      [ "cache doctor: storage unavailable" ]
  | qs ->
      Printf.sprintf "cache doctor: %d quarantined entr%s" (List.length qs)
        (if List.length qs = 1 then "y" else "ies")
      :: List.map
           (fun (name, ts, size) ->
             (* post-mortem classification straight off the moved-aside
                bytes: torn and bit-rotted entries both land here, and the
                frame verdict tells a human which failure it was *)
             let verdict =
               match t.storage.Storage.open_quarantined name with
               | Some e -> classify_frame e.Storage.data
               | None -> "unreadable: quarantined bytes lost"
               | exception _ ->
                   t.stats.storage_errors <- t.stats.storage_errors + 1;
                   "unreadable: quarantined bytes lost"
             in
             Printf.sprintf "  %-40s %6d bytes  age %.0fs  %s" name size
               (Float.max 0.0 (now -. ts))
               verdict)
           qs
      @ [ tv_doctor_line t ]

let purge_quarantined t : int =
  try t.storage.Storage.purge_quarantined ()
  with _ ->
    t.stats.storage_errors <- t.stats.storage_errors + 1;
    0

let first_difference a b =
  let n = min (String.length a) (String.length b) in
  let rec go i =
    if i >= n then if String.length a = String.length b then None else Some n
    else if a.[i] <> b.[i] then Some i
    else go (i + 1)
  in
  go 0

(* Autopsy of one quarantined per-function entry: classify the frame
   damage, then retranslate the function exactly as the JIT would and
   report where the quarantined bytes diverge from a fresh entry. *)
let diff_quarantined t fname : string list =
  let cname = cache_name t fname in
  let entry =
    try t.storage.Storage.read_quarantined cname
    with _ ->
      t.stats.storage_errors <- t.stats.storage_errors + 1;
      None
  in
  match entry with
  | None ->
      [
        Printf.sprintf "no quarantined entry for function %%%s (cache name %s)"
          fname cname;
      ]
  | Some e -> (
      let header =
        Printf.sprintf "quarantined %s: %d bytes — %s" cname
          (String.length e.Storage.data)
          (classify_frame e.Storage.data)
      in
      match find_function t fname with
      | None -> [ header; "function is not defined in this module" ]
      | Some f ->
          let image = Vmem.Image.load t.m in
          let payload =
            match t.target with
            | X86 ->
                let peep =
                  match ensure_peep_table t with
                  | Some tb -> Superopt.Table.x86_pairs tb
                  | None -> []
                in
                let ps = X86lite.Compile.fresh_peep_stats () in
                Marshal.to_string
                  (X86lite.Compile.compile_function t.m image ~peep
                     ~peep_stats:ps f)
                  []
            | Sparc ->
                let peep =
                  match ensure_peep_table t with
                  | Some tb -> Superopt.Table.sparc_pairs tb
                  | None -> []
                in
                let ps = Sparclite.Compile.fresh_peep_stats () in
                Marshal.to_string
                  (Sparclite.Compile.compile_function t.m image ~peep
                     ~peep_stats:ps f)
                  []
          in
          let fresh = frame_entry payload in
          let diff_line =
            match first_difference e.Storage.data fresh with
            | None -> "byte-identical to a fresh translation"
            | Some i ->
                Printf.sprintf "first difference at byte %d of %d (fresh: %d)"
                  i
                  (String.length e.Storage.data)
                  (String.length fresh)
          in
          [ header; Printf.sprintf "fresh translation: %d bytes" (String.length fresh); diff_line ])

(* Collect a profile with the instrumented reference engine, then apply
   the software trace cache: hot-trace relayout + retranslation. Returns
   the relaid-out engine (cache entries of the old layout are unreachable
   through the new content hash). *)
let fresh_run t =
  {
    t with
    stats = fresh_stats ();
    quarantined = Hashtbl.create 8;
    peep_table = None (* re-acquired (cache load, normally) on next use *);
  }

let reoptimize ?fuel ?(validate = true) ?domains t : t * int =
  (* profile and relayout the same decoded copy so block ids line up *)
  let m = Decode.decode t.bytes in
  let prof, _, _ = Profile.collect ?fuel m in
  let moved = Trace.relayout_module prof m in
  let t' =
    of_module ~storage:t.storage ~timestamp:t.program_timestamp
      ~peephole:t.peephole ~target:t.target m
  in
  if moved = 0 then (t', 0)
  else if not validate then (t', moved)
  else begin
    (* idle-time validation: block reordering also perturbs downstream
       register allocation, so measure both translations and keep the
       faster one (this is exactly the offline feedback loop the storage
       API enables, §4.2). The two validation runs are independent whole
       programs, so they run on separate domains; the shared storage is
       serialized behind a mutex. *)
    let vstorage = Storage.locked t.storage in
    let baseline = { (fresh_run t) with storage = vstorage } in
    let candidate = { (fresh_run t') with storage = vstorage } in
    let validate_run eng () =
      ignore (run ?fuel:(Option.map (fun f -> f * 8) fuel) eng)
    in
    let (), () =
      Pool.both ?domains (validate_run baseline) (validate_run candidate)
    in
    if
      Int64.compare candidate.stats.cycles baseline.stats.cycles < 0
    then (fresh_run t', moved)
    else (fresh_run t, 0)
  end
