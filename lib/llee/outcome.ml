(* Structured run outcomes (paper §3.3 exception model, §4.2 offline
   cache): every execution-engine entry point returns one of these
   instead of letting guest traps escape as raw OCaml exceptions. A trap,
   an exhausted fuel budget, or a degraded launch (the lint gate refusing
   a poisoned module) must degrade the launch, never crash the
   translator — the engines contain failures, the caller decides what a
   failure is worth. *)

open Llva

type trap_kind =
  | Division_by_zero
  | Overflow (* signed INT_MIN / -1 division or remainder *)
  | Memory_fault of int64
  | Privilege_violation
  | Uncaught_unwind
  | Invalid_operation of string (* an ill-typed operation the verifier
                                   should have refused (e.g. a float →
                                   pointer cast); contained, not crashed *)

type t =
  | Exit of int (* the guest program returned / called exit *)
  | Trapped of { kind : trap_kind; engine : string; func : string }
  | Fuel_exhausted (* the instruction budget ran out *)
  | Cache_degraded of { reason : string } (* launch refused on recorded
                                             cache state (lint verdict) *)

let trap_to_string = function
  | Division_by_zero -> "division by zero"
  | Overflow -> "division overflow"
  | Memory_fault a -> Printf.sprintf "memory fault at 0x%Lx" a
  | Privilege_violation -> "privilege violation"
  | Uncaught_unwind -> "uncaught unwind"
  | Invalid_operation msg -> "invalid operation: " ^ msg

(* The process exit codes the CLI maps outcomes to. 134 is the
   SIGABRT-style convention for guest traps, 124 the timeout convention
   for fuel, 125 the launch-refused convention of the lint gate. *)
let exit_code = function
  | Exit c -> c
  | Trapped _ -> 134
  | Fuel_exhausted -> 124
  | Cache_degraded _ -> 125

let to_string = function
  | Exit c -> Printf.sprintf "exit %d" c
  | Trapped { kind; engine; func } ->
      Printf.sprintf "trap: %s (in %%%s, engine %s)" (trap_to_string kind)
        func engine
  | Fuel_exhausted -> "fuel exhausted: instruction budget ran out"
  | Cache_degraded { reason } -> "cache degraded: " ^ reason

(* Each engine library declares its own structurally-identical trap
   type; map them all into the shared one. *)
let of_interp_trap = function
  | Interp.Division_by_zero -> Division_by_zero
  | Interp.Overflow -> Overflow
  | Interp.Memory_fault a -> Memory_fault a
  | Interp.Privilege_violation -> Privilege_violation

let of_x86_trap = function
  | X86lite.Sim.Division_by_zero -> Division_by_zero
  | X86lite.Sim.Overflow -> Overflow
  | X86lite.Sim.Memory_fault a -> Memory_fault a
  | X86lite.Sim.Privilege_violation -> Privilege_violation

let of_sparc_trap = function
  | Sparclite.Sim.Division_by_zero -> Division_by_zero
  | Sparclite.Sim.Overflow -> Overflow
  | Sparclite.Sim.Memory_fault a -> Memory_fault a
  | Sparclite.Sim.Privilege_violation -> Privilege_violation

(* [protect ~engine ~current f] runs the guest program [f] and maps every
   way a guest can stop — normal return, exit(), a trap from any engine,
   a memory fault or division that escaped an engine's per-instruction
   handlers (e.g. inside a runtime intrinsic), an exhausted budget — into
   an outcome. [current] names the function the engine was executing when
   the trap fired (best-effort for the interpreter's trap handlers). *)
let protect ~engine ?(current = fun () -> "main") (f : unit -> int) : t =
  let trapped kind = Trapped { kind; engine; func = current () } in
  match f () with
  | c -> Exit c
  | exception Vmem.Runtime.Exit_called c -> Exit c
  | exception Interp.Trap k -> trapped (of_interp_trap k)
  | exception Interp.Unwound -> trapped Uncaught_unwind
  | exception Interp.Out_of_fuel -> Fuel_exhausted
  | exception X86lite.Sim.Trap k -> trapped (of_x86_trap k)
  | exception X86lite.Sim.Unwound -> trapped Uncaught_unwind
  | exception X86lite.Sim.Out_of_fuel -> Fuel_exhausted
  | exception Sparclite.Sim.Trap k -> trapped (of_sparc_trap k)
  | exception Sparclite.Sim.Unwound -> trapped Uncaught_unwind
  | exception Sparclite.Sim.Out_of_fuel -> Fuel_exhausted
  | exception Vmem.Memory.Fault a -> trapped (Memory_fault a)
  | exception Eval.Division_by_zero -> trapped Division_by_zero
  | exception Eval.Overflow -> trapped Overflow
  | exception Invalid_argument msg ->
      (* e.g. Eval.cast float → pointer on an ill-typed module; must be
         contained as an outcome, never escape as an OCaml exception *)
      trapped (Invalid_operation msg)

(* ---------- direct-engine entry points ---------- *)

(* The contained counterparts of each engine's raw [run_main]: same
   launch sequence, but traps come back as outcomes and the engine state
   survives for output / statistics readout. *)

let run_main_interp ?fuel m =
  let st = Interp.create ?fuel m in
  let o =
    protect ~engine:"interp"
      ~current:(fun () -> st.Interp.current)
      (fun () -> Interp.run_main st)
  in
  (o, st)

let run_main_x86 ?fuel cmod =
  let st = X86lite.Sim.create ?fuel cmod in
  st.X86lite.Sim.regs.(X86lite.X86.sp) <- Vmem.Memory.stack_top;
  st.X86lite.Sim.regs.(X86lite.X86.bp) <- Vmem.Memory.stack_top;
  let o =
    protect ~engine:"x86lite"
      ~current:(fun () -> st.X86lite.Sim.cur.X86lite.Compile.cf_name)
      (fun () ->
        Int64.to_int
          (Ir.normalize_int Types.Int (X86lite.Sim.call_function st "main" [])))
  in
  (o, st)

let run_main_sparc ?fuel cmod =
  let st = Sparclite.Sim.create ?fuel cmod in
  st.Sparclite.Sim.regs.(Sparclite.Sparc.sp) <- Vmem.Memory.stack_top;
  st.Sparclite.Sim.regs.(Sparclite.Sparc.fp) <- Vmem.Memory.stack_top;
  let o =
    protect ~engine:"sparclite"
      ~current:(fun () -> st.Sparclite.Sim.cur.Sparclite.Compile.cf_name)
      (fun () ->
        Int64.to_int
          (Ir.normalize_int Types.Int
             (Sparclite.Sim.call_function st "main" [])))
  in
  (o, st)
