(* A small deterministic Domain-based worker pool (OCaml 5).

   LLEE's offline translator is embarrassingly parallel: each function is
   compiled independently of the others, so idle-time translation (paper
   §4.1: "flagging it for translation and not actual execution") can use
   every core the OS grants. Results are always returned in input order,
   so callers that write cache entries by iterating the result list get
   byte-identical cache contents whatever the scheduling.

   Fault containment: a task that raises must never poison the pool. All
   tasks still run to completion (a raising task aborts only itself, not
   its siblings), every spawned domain is always joined, and the earliest
   input's exception re-raises in the submitter once the fan-out has
   drained — identically in the sequential and parallel paths. *)

let default_domains () = max 1 (Domain.recommended_domain_count ())

(* [map ?domains f xs] applies [f] to every element of [xs], fanning the
   work out over up to [domains] domains (default: the runtime's
   recommended count), and returns the results in input order. [f] must
   not mutate state shared with other calls of [f]. Exceptions raised by
   [f] are contained per task: every task runs regardless of its
   siblings' fate, workers stay alive, and after the whole fan-out
   completes the exception of the earliest input re-raises in the
   caller. With [domains <= 1] (or on a single-core host) the semantics
   are identical, just sequential. *)
let map ?domains f xs =
  let workers =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  let items = Array.of_list xs in
  let n = Array.length items in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let r = try Ok (f items.(i)) with e -> Error e in
        results.(i) <- Some r;
        loop ()
      end
    in
    loop ()
  in
  if workers > 1 && n > 1 then begin
    (* one worker runs on the calling domain; a failed [Domain.spawn]
       (resource exhaustion) degrades the fan-out instead of aborting
       it, and the domains that did spawn are always joined *)
    let doms =
      List.filter_map
        (fun _ -> try Some (Domain.spawn worker) with _ -> None)
        (List.init (min workers n - 1) Fun.id)
    in
    worker ();
    List.iter Domain.join doms
  end
  else worker ();
  Array.to_list results
  |> List.map (function
       | Some (Ok r) -> r
       | Some (Error e) -> raise e
       | None -> assert false)

(* [both ?domains fa fb] runs the two thunks concurrently (one on the
   calling domain, one spawned) and returns both results; sequential
   when only one domain is available or the spawn fails. Both thunks
   always run; if both raise, [fa]'s exception wins. Used for LLEE's
   baseline-vs-candidate validation runs during reoptimization. *)
let both ?domains fa fb =
  let workers =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  let guard f () = try Ok (f ()) with e -> Error e in
  let ra, rb =
    if workers <= 1 then
      let ra = guard fa () in
      (ra, guard fb ())
    else
      match Domain.spawn (guard fb) with
      | db ->
          let ra = guard fa () in
          (ra, Domain.join db)
      | exception _ ->
          let ra = guard fa () in
          (ra, guard fb ())
  in
  match (ra, rb) with
  | Ok a, Ok b -> (a, b)
  | Error e, _ | _, Error e -> raise e
