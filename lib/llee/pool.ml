(* A small deterministic Domain-based worker pool (OCaml 5).

   LLEE's offline translator is embarrassingly parallel: each function is
   compiled independently of the others, so idle-time translation (paper
   §4.1: "flagging it for translation and not actual execution") can use
   every core the OS grants. Results are always returned in input order,
   so callers that write cache entries by iterating the result list get
   byte-identical cache contents whatever the scheduling. *)

let default_domains () = max 1 (Domain.recommended_domain_count ())

(* [map ?domains f xs] applies [f] to every element of [xs], fanning the
   work out over up to [domains] domains (default: the runtime's
   recommended count), and returns the results in input order. [f] must
   not mutate state shared with other calls of [f]. Exceptions raised by
   [f] re-raise in the caller, earliest input first. With [domains <= 1]
   (or on a single-core host) this is exactly [List.map]. *)
let map ?domains f xs =
  let workers =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  let items = Array.of_list xs in
  let n = Array.length items in
  if workers <= 1 || n <= 1 then List.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let r = try Ok (f items.(i)) with e -> Error e in
          results.(i) <- Some r;
          loop ()
        end
      in
      loop ()
    in
    let doms = List.init (min workers n) (fun _ -> Domain.spawn worker) in
    List.iter Domain.join doms;
    Array.to_list results
    |> List.map (function
         | Some (Ok r) -> r
         | Some (Error e) -> raise e
         | None -> assert false)
  end

(* [both ?domains fa fb] runs the two thunks concurrently (one on the
   calling domain, one spawned) and returns both results; sequential when
   only one domain is available. Used for LLEE's baseline-vs-candidate
   validation runs during reoptimization. *)
let both ?domains fa fb =
  let workers =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  if workers <= 1 then (fa (), fb ())
  else begin
    let db = Domain.spawn (fun () -> try Ok (fb ()) with e -> Error e) in
    let ra = try Ok (fa ()) with e -> Error e in
    let rb = Domain.join db in
    match (ra, rb) with
    | Ok a, Ok b -> (a, b)
    | Error e, _ | _, Error e -> raise e
  end
