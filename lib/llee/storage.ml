(* The OS-independent storage API of paper §4.1: "routines to create,
   delete, and query the size of an offline cache, read or write a vector
   of N bytes tagged by a unique string name from/to a cache, and check a
   timestamp". The OS may implement it (in-memory or on-disk here); when
   absent ([none]) everything still works, with online translation on
   every launch — exactly the DAISY/Crusoe situation the paper improves
   on.

   Failure semantics: reads distinguish "entry missing" ([None]) from
   "entry present but unreadable" ([Transient]); the transient class is
   the only one worth retrying ([with_retry]). Damaged entries detected
   by the execution manager are moved aside with [quarantine] — renamed,
   never re-read — so a repair write can land under the original name.
   [faulty] wraps any storage with deterministic injected faults; it is
   the substrate of the chaos test suite. *)

(* A storage operation failed in a way a retry may fix: an existing entry
   could not be read, an injected transient fault, a racing writer. Never
   raised for a missing entry. *)
exception Transient of string

(* Per-storage health counters, shared by every decorator wrapped around
   the same underlying store. *)
type counters = {
  mutable unreadable : int; (* existing entries that failed to read *)
  mutable retried : int; (* transient faults absorbed by [with_retry] *)
}

let fresh_counters () = { unreadable = 0; retried = 0 }

type entry = { data : string; timestamp : float }

type t = {
  read : string -> entry option;
  write : string -> string -> unit;
  delete : string -> unit;
  quarantine : string -> unit; (* move a damaged entry aside, never re-read *)
  size : unit -> int; (* total live bytes cached (quarantined excluded) *)
  (* quarantine forensics: the execution manager never re-reads a
     quarantined entry, but a human (llva-run --cache-doctor) may *)
  list_quarantined : unit -> (string * float * int) list;
      (* (name as stored, timestamp, size in bytes), deterministic order *)
  read_quarantined : string -> entry option;
      (* by the ORIGINAL cache name the entry was quarantined under *)
  open_quarantined : string -> entry option;
      (* by the STORED name [list_quarantined] reports (the sanitized
         on-disk file name) — lets the doctor classify the damage of an
         entry whose original cache name it cannot reconstruct *)
  purge_quarantined : unit -> int; (* delete all; returns how many *)
  available : bool;
  counters : counters;
}

(* No OS support: every read misses, writes are dropped. *)
let none =
  {
    read = (fun _ -> None);
    write = (fun _ _ -> ());
    delete = (fun _ -> ());
    quarantine = (fun _ -> ());
    size = (fun () -> 0);
    list_quarantined = (fun () -> []);
    read_quarantined = (fun _ -> None);
    open_quarantined = (fun _ -> None);
    purge_quarantined = (fun () -> 0);
    available = false;
    counters = fresh_counters ();
  }

(* Quarantined entries keep living under a reserved suffix so they can be
   inspected post-mortem; '#' is outside the LLVA identifier grammar, so
   no legitimate cache name can collide with a quarantined one. *)
let quarantine_suffix = "#quarantined#"

(* An in-memory cache (models OS support with a RAM-backed store). The
   clock is a logical counter so behaviour is deterministic. *)
let in_memory () =
  let table : (string, entry) Hashtbl.t = Hashtbl.create 32 in
  let clock = ref 0.0 in
  {
    read = (fun name -> Hashtbl.find_opt table name);
    write =
      (fun name data ->
        clock := !clock +. 1.0;
        Hashtbl.replace table name { data; timestamp = !clock });
    delete = (fun name -> Hashtbl.remove table name);
    quarantine =
      (fun name ->
        match Hashtbl.find_opt table name with
        | Some e ->
            Hashtbl.remove table name;
            Hashtbl.replace table (name ^ quarantine_suffix) e
        | None -> ());
    size =
      (fun () ->
        Hashtbl.fold
          (fun n e acc ->
            if Filename.check_suffix n quarantine_suffix then acc
            else acc + String.length e.data)
          table 0);
    list_quarantined =
      (fun () ->
        Hashtbl.fold
          (fun n e acc ->
            if Filename.check_suffix n quarantine_suffix then
              ( Filename.chop_suffix n quarantine_suffix,
                e.timestamp,
                String.length e.data )
              :: acc
            else acc)
          table []
        |> List.sort compare);
    read_quarantined =
      (fun name -> Hashtbl.find_opt table (name ^ quarantine_suffix));
    open_quarantined =
      (* in memory the stored name IS the original cache name *)
      (fun name -> Hashtbl.find_opt table (name ^ quarantine_suffix));
    purge_quarantined =
      (fun () ->
        let victims =
          Hashtbl.fold
            (fun n _ acc ->
              if Filename.check_suffix n quarantine_suffix then n :: acc
              else acc)
            table []
        in
        List.iter (Hashtbl.remove table) victims;
        List.length victims);
    available = true;
    counters = fresh_counters ();
  }

(* An on-disk cache rooted at [dir]; names are sanitized to file names.
   Writes are atomic (temp file + rename) so a crash or a concurrent
   launch can never leave a torn entry behind. Reads distinguish a
   missing entry (a miss, [None]) from an existing-but-unreadable one
   (counted, raised as [Transient] so [with_retry] can have another go —
   the file may be mid-replacement by a concurrent writer). *)
let on_disk ~dir =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let counters = fresh_counters () in
  let path name =
    (* Sanitization must be injective: mapping every unsafe character to
       '_' would send distinct names (a cache for "a$b" and one for
       "a_b") to the same file, silently serving one entry's data for the
       other. The readable prefix keeps cache directories inspectable;
       the digest of the raw name keeps the mapping collision-free. *)
    let safe =
      String.map
        (fun c ->
          match c with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' | '_' -> c
          | _ -> '_')
        name
    in
    Filename.concat dir
      (Printf.sprintf "%s-%s" safe (Digest.to_hex (Digest.string name)))
  in
  let unreadable p msg =
    counters.unreadable <- counters.unreadable + 1;
    raise (Transient (Printf.sprintf "unreadable cache entry %s: %s" p msg))
  in
  (* best-effort whole-file read for quarantine forensics: never raises,
     never counts — a vanished or unreadable quarantined file is [None] *)
  let read_file p : entry option =
    match open_in_bin p with
    | exception Sys_error _ -> None
    | ic -> (
        match
          let len = in_channel_length ic in
          let data = really_input_string ic len in
          { data; timestamp = (Unix.stat p).Unix.st_mtime }
        with
        | entry ->
            close_in_noerr ic;
            Some entry
        | exception (Sys_error _ | End_of_file | Unix.Unix_error _) ->
            close_in_noerr ic;
            None)
  in
  (* Chaos knob: with LLVA_CHAOS_SLOW_WRITE_US set, writes abandon the
     atomic tmp+rename path and stream into the FINAL file in 512-byte
     chunks with a flush and a pause between them. A kill -9 landing
     mid-write then leaves a genuinely torn entry on disk — the state the
     atomic path makes unreachable, and exactly what the crash-recovery
     chaos scenario needs to provoke for real. Test-only; unset (the
     default) keeps every write atomic. *)
  let slow_write_us =
    match Sys.getenv_opt "LLVA_CHAOS_SLOW_WRITE_US" with
    | None -> 0
    | Some s -> ( try max 0 (int_of_string (String.trim s)) with Failure _ -> 0)
  in
  {
    read =
      (fun name ->
        let p = path name in
        match open_in_bin p with
        | exception Sys_error msg ->
            (* missing vs unreadable: only the latter is worth a retry *)
            if Sys.file_exists p then unreadable p msg else None
        | ic -> (
            match
              let len = in_channel_length ic in
              let data = really_input_string ic len in
              let timestamp = (Unix.stat p).Unix.st_mtime in
              { data; timestamp }
            with
            | entry ->
                close_in_noerr ic;
                Some entry
            | exception (Sys_error _ | End_of_file | Unix.Unix_error _) ->
                close_in_noerr ic;
                (* opened but failed mid-read: the entry exists (or did an
                   instant ago), so this is the transient class *)
                if Sys.file_exists p then unreadable p "failed mid-read"
                else None));
    write =
      (fun name data ->
        let p = path name in
        if slow_write_us > 0 then (
          try
            let oc = open_out_bin p in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () ->
                let n = String.length data in
                let k = ref 0 in
                while !k < n do
                  let len = min 512 (n - !k) in
                  output_substring oc data !k len;
                  flush oc;
                  Unix.sleepf (float_of_int slow_write_us *. 1e-6);
                  k := !k + len
                done)
          with Sys_error _ | Unix.Unix_error _ -> ())
        else
          let tmp = Printf.sprintf "%s.%d.tmp" p (Unix.getpid ()) in
          try
            let oc = open_out_bin tmp in
            (* a failing [output_string]/[close_out] (full disk, quota, I/O
               error) must still close the fd — [close_out] does not close
               on a flush failure — and must leave no tmp file behind *)
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () ->
                output_string oc data;
                close_out oc);
            Sys.rename tmp p
          with Sys_error _ | Unix.Unix_error _ ->
            (try Sys.remove tmp with Sys_error _ -> ()));
    delete =
      (fun name -> try Sys.remove (path name) with Sys_error _ -> ());
    quarantine =
      (fun name ->
        let p = path name in
        try Sys.rename p (p ^ ".quarantined") with Sys_error _ -> ());
    size =
      (fun () ->
        match Sys.readdir dir with
        | exception Sys_error _ -> 0
        | files ->
            Array.fold_left
              (fun acc f ->
                if
                  Filename.check_suffix f ".tmp"
                  || Filename.check_suffix f ".quarantined"
                then acc
                else
                  match Unix.stat (Filename.concat dir f) with
                  | { Unix.st_kind = Unix.S_REG; st_size; _ } -> acc + st_size
                  | _ -> acc
                  | exception (Unix.Unix_error _ | Sys_error _) -> acc)
              0 files);
    list_quarantined =
      (fun () ->
        match Sys.readdir dir with
        | exception Sys_error _ -> []
        | files ->
            Array.to_list files
            |> List.filter (fun f -> Filename.check_suffix f ".quarantined")
            |> List.filter_map (fun f ->
                   match Unix.stat (Filename.concat dir f) with
                   | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
                       (* the sanitized file name, quarantine suffix
                          stripped — the readable prefix identifies the
                          module/function/target *)
                       Some
                         (Filename.chop_suffix f ".quarantined", st_mtime,
                          st_size)
                   | _ -> None
                   | exception (Unix.Unix_error _ | Sys_error _) -> None)
            |> List.sort compare);
    read_quarantined = (fun name -> read_file (path name ^ ".quarantined"));
    open_quarantined =
      (fun stored ->
        (* [stored] is a file name [list_quarantined] produced itself
           (suffix stripped); refuse anything that could escape [dir] *)
        if String.equal stored (Filename.basename stored) then
          read_file (Filename.concat dir (stored ^ ".quarantined"))
        else None);
    purge_quarantined =
      (fun () ->
        match Sys.readdir dir with
        | exception Sys_error _ -> 0
        | files ->
            Array.fold_left
              (fun acc f ->
                if Filename.check_suffix f ".quarantined" then
                  match Sys.remove (Filename.concat dir f) with
                  | () -> acc + 1
                  | exception Sys_error _ -> acc
                else acc)
              0 files);
    available = true;
    counters;
  }

(* Serialize every operation on [s] behind a mutex, making it safe to
   share one storage between worker domains (e.g. LLEE's parallel
   baseline-vs-candidate validation runs). *)
let locked s =
  let m = Mutex.create () in
  let guard f =
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) f
  in
  {
    s with
    read = (fun name -> guard (fun () -> s.read name));
    write = (fun name data -> guard (fun () -> s.write name data));
    delete = (fun name -> guard (fun () -> s.delete name));
    quarantine = (fun name -> guard (fun () -> s.quarantine name));
    size = (fun () -> guard (fun () -> s.size ()));
    list_quarantined = (fun () -> guard (fun () -> s.list_quarantined ()));
    read_quarantined = (fun name -> guard (fun () -> s.read_quarantined name));
    open_quarantined = (fun name -> guard (fun () -> s.open_quarantined name));
    purge_quarantined = (fun () -> guard (fun () -> s.purge_quarantined ()));
  }

(* ---------- fault injection ---------- *)

(* Deterministic injected storage faults (the chaos-suite substrate).
   Probabilities are per operation; the PRNG stream is fixed by
   [fault_seed], so a given (seed, operation sequence) pair always
   injects the same faults. *)
type fault_config = {
  fault_seed : int;
  read_corrupt : float; (* P(a successful read serves a damaged payload) *)
  write_fail : float; (* P(a write raises a permanent Sys_error) *)
  write_torn : float; (* P(a write stores only a prefix of the data) *)
  transient : float; (* P(an op raises [Transient]; a retry redraws) *)
}

let no_faults =
  {
    fault_seed = 0;
    read_corrupt = 0.0;
    write_fail = 0.0;
    write_torn = 0.0;
    transient = 0.0;
  }

type fault_counters = {
  mutable corrupt_reads : int; (* reads corrupted in flight *)
  mutable torn_writes : int; (* writes stored truncated *)
  mutable failed_writes : int; (* writes refused with Sys_error *)
  mutable transient_faults : int; (* ops that raised [Transient] *)
  mutable damaged_serves : int; (* reads that returned damaged bytes,
                                   whether corrupted in flight or torn at
                                   rest — each one is a fault the reader
                                   must detect and contain *)
  damaged_names : (string, int) Hashtbl.t; (* damaged serves per name *)
}

(* [faulty config s] wraps [s] so that reads may serve corrupted
   payloads, writes may fail or store torn prefixes, and any operation
   may raise a transient error, all driven by a deterministic PRNG.
   Corruption flips the final byte, and torn writes keep at least 15
   bytes of prefix, so a framed LLEE entry is always caught by its
   payload checksum (never reduced to a bad-magic read) — which is what
   lets the chaos suite assert exact quarantine counts. Returns the
   wrapped storage and live fault counters. *)
let faulty config s =
  let rng = Random.State.make [| config.fault_seed |] in
  let fc =
    {
      corrupt_reads = 0;
      torn_writes = 0;
      failed_writes = 0;
      transient_faults = 0;
      damaged_serves = 0;
      damaged_names = Hashtbl.create 16;
    }
  in
  (* names whose stored value is currently a torn prefix *)
  let torn : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let draw p = p > 0.0 && Random.State.float rng 1.0 < p in
  let transient op =
    if draw config.transient then begin
      fc.transient_faults <- fc.transient_faults + 1;
      raise (Transient ("injected: transient " ^ op ^ " fault"))
    end
  in
  let serve_damaged name =
    fc.damaged_serves <- fc.damaged_serves + 1;
    Hashtbl.replace fc.damaged_names name
      (1 + Option.value ~default:0 (Hashtbl.find_opt fc.damaged_names name))
  in
  let storage =
    {
      s with
      read =
        (fun name ->
          transient "read";
          match s.read name with
          | None -> None
          | Some e when draw config.read_corrupt && String.length e.data > 0
            ->
              fc.corrupt_reads <- fc.corrupt_reads + 1;
              serve_damaged name;
              let b = Bytes.of_string e.data in
              let k = Bytes.length b - 1 in
              Bytes.set b k (Char.chr (Char.code (Bytes.get b k) lxor 0xFF));
              Some { e with data = Bytes.to_string b }
          | Some e ->
              if Hashtbl.mem torn name then serve_damaged name;
              Some e);
      write =
        (fun name data ->
          transient "write";
          if draw config.write_fail then begin
            fc.failed_writes <- fc.failed_writes + 1;
            raise (Sys_error "injected: write failure")
          end;
          if draw config.write_torn && String.length data > 16 then begin
            fc.torn_writes <- fc.torn_writes + 1;
            s.write name (String.sub data 0 (max 15 (String.length data / 2)));
            Hashtbl.replace torn name ()
          end
          else begin
            s.write name data;
            Hashtbl.remove torn name
          end);
      delete =
        (fun name ->
          transient "delete";
          s.delete name;
          Hashtbl.remove torn name);
      quarantine =
        (* quarantining is the recovery path — keep it reliable *)
        (fun name ->
          s.quarantine name;
          Hashtbl.remove torn name);
    }
  in
  (storage, fc)

(* ---------- bounded retry ---------- *)

(* Retry reads/writes/deletes that raise [Transient], with bounded
   exponential backoff ([backoff], 2*[backoff], 4*[backoff], ...). The
   permanent class (plain [Sys_error], missing entries) is never retried.
   After [attempts] tries the [Transient] propagates — the execution
   manager above contains it as a miss / dropped write. *)
let with_retry ?(attempts = 5) ?(backoff = 0.0005) s =
  let retry op =
    let rec go k delay =
      match op () with
      | v -> v
      | exception Transient _ when k < attempts - 1 ->
          s.counters.retried <- s.counters.retried + 1;
          if delay > 0.0 then Unix.sleepf delay;
          go (k + 1) (delay *. 2.0)
    in
    go 0 backoff
  in
  {
    s with
    read = (fun name -> retry (fun () -> s.read name));
    write = (fun name data -> retry (fun () -> s.write name data));
    delete = (fun name -> retry (fun () -> s.delete name));
  }
