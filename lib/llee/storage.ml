(* The OS-independent storage API of paper §4.1: "routines to create,
   delete, and query the size of an offline cache, read or write a vector
   of N bytes tagged by a unique string name from/to a cache, and check a
   timestamp". The OS may implement it (in-memory or on-disk here); when
   absent ([none]) everything still works, with online translation on
   every launch — exactly the DAISY/Crusoe situation the paper improves
   on. *)

type entry = { data : string; timestamp : float }

type t = {
  read : string -> entry option;
  write : string -> string -> unit;
  delete : string -> unit;
  size : unit -> int; (* total bytes cached *)
  available : bool;
}

(* No OS support: every read misses, writes are dropped. *)
let none =
  {
    read = (fun _ -> None);
    write = (fun _ _ -> ());
    delete = (fun _ -> ());
    size = (fun () -> 0);
    available = false;
  }

(* An in-memory cache (models OS support with a RAM-backed store). The
   clock is a logical counter so behaviour is deterministic. *)
let in_memory () =
  let table : (string, entry) Hashtbl.t = Hashtbl.create 32 in
  let clock = ref 0.0 in
  {
    read = (fun name -> Hashtbl.find_opt table name);
    write =
      (fun name data ->
        clock := !clock +. 1.0;
        Hashtbl.replace table name { data; timestamp = !clock });
    delete = (fun name -> Hashtbl.remove table name);
    size =
      (fun () ->
        Hashtbl.fold (fun _ e acc -> acc + String.length e.data) table 0);
    available = true;
  }

(* An on-disk cache rooted at [dir]; names are sanitized to file names.
   Writes are atomic (temp file + rename) so a crash or a concurrent
   launch can never leave a torn entry behind, and reads/sizes treat any
   filesystem surprise — deleted-underfoot files, subdirectories, torn
   temp files — as a cache miss rather than an error. *)
let on_disk ~dir =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let path name =
    (* Sanitization must be injective: mapping every unsafe character to
       '_' would send distinct names (a cache for "a$b" and one for
       "a_b") to the same file, silently serving one entry's data for the
       other. The readable prefix keeps cache directories inspectable;
       the digest of the raw name keeps the mapping collision-free. *)
    let safe =
      String.map
        (fun c ->
          match c with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' | '_' -> c
          | _ -> '_')
        name
    in
    Filename.concat dir
      (Printf.sprintf "%s-%s" safe (Digest.to_hex (Digest.string name)))
  in
  {
    read =
      (fun name ->
        let p = path name in
        match open_in_bin p with
        | exception Sys_error _ -> None
        | ic -> (
            match
              let len = in_channel_length ic in
              let data = really_input_string ic len in
              let timestamp = (Unix.stat p).Unix.st_mtime in
              { data; timestamp }
            with
            | entry ->
                close_in_noerr ic;
                Some entry
            | exception (Sys_error _ | End_of_file | Unix.Unix_error _) ->
                close_in_noerr ic;
                None));
    write =
      (fun name data ->
        let p = path name in
        let tmp = Printf.sprintf "%s.%d.tmp" p (Unix.getpid ()) in
        try
          let oc = open_out_bin tmp in
          (* a failing [output_string]/[close_out] (full disk, quota, I/O
             error) must still close the fd — [close_out] does not close
             on a flush failure — and must leave no tmp file behind *)
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () ->
              output_string oc data;
              close_out oc);
          Sys.rename tmp p
        with Sys_error _ | Unix.Unix_error _ ->
          (try Sys.remove tmp with Sys_error _ -> ()));
    delete =
      (fun name -> try Sys.remove (path name) with Sys_error _ -> ());
    size =
      (fun () ->
        match Sys.readdir dir with
        | exception Sys_error _ -> 0
        | files ->
            Array.fold_left
              (fun acc f ->
                if Filename.check_suffix f ".tmp" then acc
                else
                  match Unix.stat (Filename.concat dir f) with
                  | { Unix.st_kind = Unix.S_REG; st_size; _ } -> acc + st_size
                  | _ -> acc
                  | exception (Unix.Unix_error _ | Sys_error _) -> acc)
              0 files);
    available = true;
  }

(* Serialize every operation on [s] behind a mutex, making it safe to
   share one storage between worker domains (e.g. LLEE's parallel
   baseline-vs-candidate validation runs). *)
let locked s =
  let m = Mutex.create () in
  let guard f =
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) f
  in
  {
    read = (fun name -> guard (fun () -> s.read name));
    write = (fun name data -> guard (fun () -> s.write name data));
    delete = (fun name -> guard (fun () -> s.delete name));
    size = (fun () -> guard (fun () -> s.size ()));
    available = s.available;
  }
