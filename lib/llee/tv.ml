(* Translation validation: per-function lockstep certification of the
   native translation against the reference interpreter (ROADMAP's
   "translation validation" item — the paper trusts the translator, we
   check it instead).

   For each defined function with scalar (bool / integer / float)
   parameters, both engines run the same argument vectors — exhaustive
   small-domain tuples when the cross product stays tiny, per-parameter
   boundary sweeps, and seeded random vectors — and must agree on the
   return value, the trap outcome, the runtime output, and the bytes of
   the globals region afterwards. Stack and fault *addresses* are
   engine-specific (native frames are laid out differently from the
   interpreter's), so pointer-returning functions are skipped and memory
   faults compare by kind, not address.

   A vector on which either engine runs out of fuel or hits an
   engine-internal limit (e.g. the call-depth guard) is inconclusive and
   ignored; a function whose every vector is inconclusive is skipped,
   not certified. The verdict serializes to JSON for the [#tv#] cache
   entry (see Llee.certify). *)

open Llva

(* Stamped into entry names and the verdict payload; bump on any change
   to the checker's semantics, vector generation, or a backend fix that
   invalidates recorded verdicts. *)
let version = 1

let default_vectors = 10
let default_seed = 0x51ED
(* Generous enough that a workload's whole [main] still finishes
   conclusively under the reference interpreter; a vector that exhausts
   either budget is inconclusive, so tight budgets silently shrink
   coverage rather than failing loudly. *)
let default_interp_fuel = 60_000_000
let default_native_fuel = 300_000_000

type func_verdict =
  | Certified of { vectors : int } (* conclusive vectors, all agreeing *)
  | Skipped of { reason : string }
  | Mismatch of { vector : string; detail : string }

type verdict = {
  v_version : int;
  v_target : string; (* "x86lite" | "sparclite" *)
  v_results : (string * func_verdict) list; (* per defined function *)
}

let mismatches v =
  List.length
    (List.filter (fun (_, r) -> match r with Mismatch _ -> true | _ -> false)
       v.v_results)

let certified v =
  List.length
    (List.filter
       (fun (_, r) -> match r with Certified _ -> true | _ -> false)
       v.v_results)

let clean v = mismatches v = 0

(* ---------- JSON round-trip (the #tv# cache payload) ---------- *)

let func_verdict_to_json = function
  | Certified { vectors } ->
      Check.Json.Obj
        [
          ("status", Check.Json.Str "certified");
          ("vectors", Check.Json.Int vectors);
        ]
  | Skipped { reason } ->
      Check.Json.Obj
        [
          ("status", Check.Json.Str "skipped");
          ("reason", Check.Json.Str reason);
        ]
  | Mismatch { vector; detail } ->
      Check.Json.Obj
        [
          ("status", Check.Json.Str "mismatch");
          ("vector", Check.Json.Str vector);
          ("detail", Check.Json.Str detail);
        ]

let verdict_to_json (v : verdict) : Check.Json.t =
  Check.Json.Obj
    [
      ("tv_version", Check.Json.Int v.v_version);
      ("target", Check.Json.Str v.v_target);
      ( "results",
        Check.Json.List
          (List.map
             (fun (name, r) ->
               Check.Json.Obj
                 (("func", Check.Json.Str name)
                 ::
                 (match func_verdict_to_json r with
                 | Check.Json.Obj fields -> fields
                 | _ -> assert false)))
             v.v_results) );
    ]

(* Strict reader: any schema violation or a version stamp other than the
   current [version] raises [Check.Json.Parse_error] — a stale verdict
   must never count as a certification. *)
let verdict_of_json (j : Check.Json.t) : verdict =
  let open Check.Json in
  let stamp = get_int "tv_version" (get_member "verdict" "tv_version" j) in
  if stamp <> version then
    raise
      (Parse_error
         (Printf.sprintf "stale tv version %d (current %d)" stamp version));
  let target = get_string "target" (get_member "verdict" "target" j) in
  let results =
    List.map
      (fun entry ->
        let name = get_string "func" (get_member "result" "func" entry) in
        let r =
          match get_string "status" (get_member "result" "status" entry) with
          | "certified" ->
              Certified
                {
                  vectors =
                    get_int "vectors" (get_member "result" "vectors" entry);
                }
          | "skipped" ->
              Skipped
                {
                  reason =
                    get_string "reason" (get_member "result" "reason" entry);
                }
          | "mismatch" ->
              Mismatch
                {
                  vector =
                    get_string "vector" (get_member "result" "vector" entry);
                  detail =
                    get_string "detail" (get_member "result" "detail" entry);
                }
          | s -> raise (Parse_error ("unknown tv status " ^ s))
        in
        (name, r))
      (get_list "results" (get_member "verdict" "results" j))
  in
  { v_version = stamp; v_target = target; v_results = results }

(* ---------- argument-vector generation (seeded, deterministic) ------ *)

let dedupe_vectors vecs =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun vec ->
      let key = String.concat "," (List.map Eval.to_string vec) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    vecs

let int_domain ty =
  let w = Types.bitwidth ty in
  let n v = Ir.normalize_int ty v in
  let extremes =
    if Types.is_signed ty then
      let minv = Int64.neg (Int64.shift_left 1L (w - 1)) in
      [ minv; Int64.add minv 1L; Int64.sub (Int64.neg minv) 1L; -1L; -2L ]
    else [ n (-1L); n (Int64.shift_left 1L (w - 1)) ]
  in
  List.map n ([ 0L; 1L; 2L; 3L; 7L; 42L ] @ extremes)

let float_domain fty =
  List.map
    (Eval.round_float fty)
    [
      0.0;
      1.0;
      -1.0;
      0.5;
      -2.5;
      1234.0;
      1e9;
      Float.infinity;
      Float.neg_infinity;
      Float.nan;
    ]

(* The full per-type boundary domain used for sweeps. *)
let domain env ty : Eval.scalar list =
  match Types.resolve env ty with
  | Types.Bool -> [ Eval.B false; Eval.B true ]
  | rty when Types.is_fp rty ->
      List.map (fun f -> Eval.F (rty, f)) (float_domain rty)
  | rty when Types.is_integer rty ->
      List.map (fun v -> Eval.I (rty, v)) (int_domain rty)
  | _ -> []

(* A tiny per-type domain for the exhaustive cross product. *)
let small_domain env ty : Eval.scalar list =
  match Types.resolve env ty with
  | Types.Bool -> [ Eval.B false; Eval.B true ]
  | rty when Types.is_fp rty ->
      List.map (fun f -> Eval.F (rty, Eval.round_float rty f)) [ 0.0; 1.0 ]
  | rty when Types.is_integer rty ->
      let lo, hi = if Types.is_signed rty then (-2, 3) else (0, 5) in
      List.init
        (hi - lo + 1)
        (fun k -> Eval.I (rty, Ir.normalize_int rty (Int64.of_int (lo + k))))
  | _ -> []

let random_scalar rand env ty : Eval.scalar =
  match Types.resolve env ty with
  | Types.Bool -> Eval.B (Random.State.bool rand)
  | rty when Types.is_fp rty ->
      let f =
        match Random.State.int rand 10 with
        | 0 -> Float.nan
        | 1 -> Float.infinity
        | 2 -> Float.neg_infinity
        | 3 -> 0.0
        | _ ->
            let mag = Random.State.float rand 1e6 -. 5e5 in
            if Random.State.bool rand then mag
            else mag /. 1024.0
      in
      Eval.F (rty, Eval.round_float rty f)
  | rty when Types.is_integer rty ->
      let bits =
        Int64.logxor
          (Random.State.int64 rand Int64.max_int)
          (if Random.State.bool rand then -1L else 0L)
      in
      Eval.I (rty, Ir.normalize_int rty bits)
  | _ -> Eval.Undef ty

let cross_product (domains : Eval.scalar list list) : Eval.scalar list list =
  List.fold_right
    (fun dom acc ->
      List.concat_map (fun v -> List.map (fun rest -> v :: rest) acc) dom)
    domains [ [] ]

(* All argument vectors for one function: exhaustive small-domain cross
   product (when it stays under 64 tuples), per-parameter boundary
   sweeps with the other parameters at their first domain value, and
   [extra] seeded random vectors. *)
let vectors_for env rand ~extra (param_tys : Types.t list) :
    Eval.scalar list list =
  if param_tys = [] then [ [] ]
  else
    let small = List.map (small_domain env) param_tys in
    let product =
      List.fold_left (fun acc d -> acc * max 1 (List.length d)) 1 small
    in
    let exhaustive = if product <= 64 then cross_product small else [] in
    let doms = List.map (domain env) param_tys in
    let defaults = List.map List.hd doms in
    let sweeps =
      List.concat
        (List.mapi
           (fun k dom ->
             List.map
               (fun v -> List.mapi (fun j d -> if j = k then v else d) defaults)
               dom)
           doms)
    in
    let randoms =
      List.init extra (fun _ ->
          List.map (fun ty -> random_scalar rand env ty) param_tys)
    in
    dedupe_vectors (exhaustive @ sweeps @ randoms)

let render_vector vec =
  "(" ^ String.concat ", " (List.map Eval.to_string vec) ^ ")"

(* ---------- observations ---------- *)

(* What a run observably did: how it stopped, what it printed, and what
   the globals region holds afterwards. *)
type observation = { oc : string; out : string; glob : string }

type obs = Conclusive of observation | Inconclusive of string

(* Memory-fault addresses are engine-specific (native frame layout), so
   traps compare by kind only. *)
let trap_class = function
  | Outcome.Division_by_zero -> "div0"
  | Outcome.Overflow -> "overflow"
  | Outcome.Memory_fault _ -> "memfault"
  | Outcome.Privilege_violation -> "priv"
  | Outcome.Uncaught_unwind -> "unwind"
  | Outcome.Invalid_operation _ -> "invalid"

let obs_of ~normal ~ret (o : Outcome.t) out glob : obs =
  match o with
  | Outcome.Exit _ when normal -> Conclusive { oc = "ret:" ^ ret; out; glob }
  | Outcome.Exit c ->
      Conclusive { oc = Printf.sprintf "exit:%d" c; out; glob }
  | Outcome.Trapped { kind = Outcome.Invalid_operation msg; _ } ->
      (* engine-internal guards (call-depth limits, ill-typed corners)
         carry engine-specific messages; not a semantic verdict *)
      Inconclusive ("engine limit: " ^ msg)
  | Outcome.Trapped { kind; _ } ->
      Conclusive { oc = "trap:" ^ trap_class kind; out; glob }
  | Outcome.Fuel_exhausted -> Inconclusive "fuel exhausted"
  | Outcome.Cache_degraded { reason } -> Inconclusive reason

(* Canonical rendering of a return value at the function's return type:
   integers through [Ir.normalize_int], floats by bit pattern (NaN
   canonicalized — payloads are not semantics). *)
let render_ret env rty ~(raw : int64) ~(f0 : float) : string =
  match Types.resolve env rty with
  | Types.Void -> ""
  | Types.Bool -> if Int64.equal (Int64.logand raw 1L) 0L then "0" else "1"
  | t when Types.is_fp t ->
      let f = Eval.round_float t f0 in
      if Float.is_nan f then "nan"
      else Printf.sprintf "f:%016Lx" (Int64.bits_of_float f)
  | t when Types.is_integer t ->
      Int64.to_string (Ir.normalize_int t raw)
  | _ -> Printf.sprintf "0x%Lx" raw

let render_ret_scalar env rty (s : Eval.scalar) : string =
  render_ret env rty ~raw:(Eval.to_int64 s) ~f0:(Eval.to_float s)

(* ---------- the observable globals region ---------- *)

let max_globals_snapshot = 1 lsl 20

let globals_extent (m : Ir.modl) (img : Vmem.Image.t) : int =
  let extent =
    List.fold_left
      (fun acc (g : Ir.global) ->
        match Hashtbl.find_opt img.Vmem.Image.global_addrs g.Ir.gname with
        | Some addr ->
            let sz =
              try Vmem.Layout.size_of img.Vmem.Image.layout g.Ir.gty
              with _ -> 0
            in
            max acc (Int64.to_int (Int64.sub addr Vmem.Memory.globals_base) + sz)
        | None -> acc)
      0 m.Ir.globals
  in
  min extent max_globals_snapshot

let snapshot_globals mem extent =
  if extent <= 0 then ""
  else Bytes.to_string (Vmem.Memory.read_bytes mem Vmem.Memory.globals_base extent)

(* ---------- engine runners (fresh state and memory per vector) ------ *)

let run_interp (m : Ir.modl) env fname (args : Eval.scalar list) rty extent
    ~fuel : obs =
  let st = Interp.create ~fuel m in
  let ret = ref "" and normal = ref false in
  let o =
    Outcome.protect ~engine:"interp"
      ~current:(fun () -> st.Interp.current)
      (fun () ->
        let v = Interp.run_function st fname args in
        ret := render_ret_scalar env rty v;
        normal := true;
        0)
  in
  obs_of ~normal:!normal ~ret:!ret o (Interp.output st)
    (snapshot_globals st.Interp.mem extent)

(* Both back-ends pass scalar arguments as 8-byte slots, floats as the
   raw bits of the double (the callee prologue reloads them with an
   8-byte float load / register move). *)
let encode_arg = function
  | Eval.B b -> if b then 1L else 0L
  | Eval.I (_, v) -> v
  | Eval.F (_, v) -> Int64.bits_of_float v
  | Eval.P a -> a
  | Eval.Undef _ -> 0L

let run_x86 (cmod : X86lite.Compile.cmodule) env fname args rty extent ~fuel :
    obs =
  (* fresh image: compiled code embeds only deterministic addresses, so
     the code array is shared while memory starts from scratch *)
  let img = Vmem.Image.load cmod.X86lite.Compile.cm in
  let cmod = { cmod with X86lite.Compile.image = img } in
  let st = X86lite.Sim.create ~fuel cmod in
  st.X86lite.Sim.regs.(X86lite.X86.sp) <- Vmem.Memory.stack_top;
  st.X86lite.Sim.regs.(X86lite.X86.bp) <- Vmem.Memory.stack_top;
  let ret = ref "" and normal = ref false in
  let o =
    Outcome.protect ~engine:"x86lite"
      ~current:(fun () -> st.X86lite.Sim.cur.X86lite.Compile.cf_name)
      (fun () ->
        let r = X86lite.Sim.call_function st fname (List.map encode_arg args) in
        ret := render_ret env rty ~raw:r ~f0:st.X86lite.Sim.fregs.(0);
        normal := true;
        0)
  in
  obs_of ~normal:!normal ~ret:!ret o (X86lite.Sim.output st)
    (snapshot_globals st.X86lite.Sim.mem extent)

let run_sparc (cmod : Sparclite.Compile.cmodule) env fname args rty extent
    ~fuel : obs =
  let img = Vmem.Image.load cmod.Sparclite.Compile.cm in
  let cmod = { cmod with Sparclite.Compile.image = img } in
  let st = Sparclite.Sim.create ~fuel cmod in
  st.Sparclite.Sim.regs.(Sparclite.Sparc.sp) <- Vmem.Memory.stack_top;
  st.Sparclite.Sim.regs.(Sparclite.Sparc.fp) <- Vmem.Memory.stack_top;
  let ret = ref "" and normal = ref false in
  let o =
    Outcome.protect ~engine:"sparclite"
      ~current:(fun () -> st.Sparclite.Sim.cur.Sparclite.Compile.cf_name)
      (fun () ->
        let r =
          Sparclite.Sim.call_function st fname (List.map encode_arg args)
        in
        ret := render_ret env rty ~raw:r ~f0:st.Sparclite.Sim.fregs.(0);
        normal := true;
        0)
  in
  obs_of ~normal:!normal ~ret:!ret o (Sparclite.Sim.output st)
    (snapshot_globals st.Sparclite.Sim.mem extent)

(* ---------- per-function certification ---------- *)

(* Which functions the lockstep checker can drive: defined, fixed-arity,
   at most 6 scalar parameters (the SPARC register-argument budget), and
   a non-pointer return (stack addresses are engine-specific). *)
let certifiable env (f : Ir.func) : (Types.t list, string) result =
  if f.Ir.fvarargs then Error "varargs"
  else if List.length f.Ir.fargs > 6 then Error "more than 6 parameters"
  else
    let resolve ty =
      try Some (Types.resolve env ty) with Types.Unresolved _ -> None
    in
    match resolve f.Ir.freturn with
    | None -> Error "unresolved return type"
    | Some (Types.Pointer _) -> Error "pointer return (addresses are engine-specific)"
    | Some rty
      when not
             (Types.equal rty Types.Void
             || Types.equal rty Types.Bool
             || Types.is_integer rty || Types.is_fp rty) ->
        Error ("unsupported return type " ^ Types.to_string rty)
    | Some _ ->
        let rec check_params = function
          | [] -> Ok (List.map (fun (a : Ir.arg) -> a.Ir.aty) f.Ir.fargs)
          | (a : Ir.arg) :: rest -> (
              match resolve a.Ir.aty with
              | Some rty
                when Types.equal rty Types.Bool
                     || Types.is_integer rty || Types.is_fp rty ->
                  check_params rest
              | Some rty ->
                  Error
                    (Printf.sprintf "parameter %%%s has unsupported type %s"
                       a.Ir.aname (Types.to_string rty))
              | None ->
                  Error
                    (Printf.sprintf "parameter %%%s has unresolved type"
                       a.Ir.aname))
        in
        check_params f.Ir.fargs

let describe_diff (a : observation) (b : observation) : string =
  if a.oc <> b.oc then
    Printf.sprintf "outcome: interp %s, native %s" a.oc b.oc
  else if a.out <> b.out then
    Printf.sprintf "runtime output differs (%d vs %d bytes)"
      (String.length a.out) (String.length b.out)
  else "globals region differs after the run"

type compiled =
  | Cx86 of X86lite.Compile.cmodule
  | Csparc of Sparclite.Compile.cmodule

(* Certify every defined function of [m] against its translation for
   [target] ("x86lite" | "sparclite"). [native] substitutes a different
   module for the native side — the translation being validated — which
   the tests use to prove the checker actually catches divergence. *)
let certify_module ?(seed = default_seed) ?(vectors = default_vectors)
    ?(interp_fuel = default_interp_fuel)
    ?(native_fuel = default_native_fuel) ?native ~target (m : Ir.modl) :
    verdict =
  let nm = match native with Some n -> n | None -> m in
  let compiled =
    match target with
    | "x86lite" -> Cx86 (X86lite.Compile.compile_module nm)
    | "sparclite" -> Csparc (Sparclite.Compile.compile_module nm)
    | t -> invalid_arg ("Tv.certify_module: unknown target " ^ t)
  in
  let env = Ir.type_env m in
  let extent = globals_extent m (Vmem.Image.load m) in
  let results =
    List.filter_map
      (fun (f : Ir.func) ->
        if Ir.is_declaration f then None
        else
          let fname = f.Ir.fname in
          let r =
            match certifiable env f with
            | Error reason -> Skipped { reason }
            | Ok param_tys ->
                let rand =
                  Random.State.make [| seed; Hashtbl.hash fname |]
                in
                let vecs = vectors_for env rand ~extra:vectors param_tys in
                let rty = f.Ir.freturn in
                let rec go conclusive last = function
                  | [] ->
                      if conclusive = 0 then
                        Skipped
                          {
                            reason =
                              (match last with
                              | Some r -> "no conclusive vector: " ^ r
                              | None -> "no vectors");
                          }
                      else Certified { vectors = conclusive }
                  | vec :: rest -> (
                      let ref_obs =
                        run_interp m env fname vec rty extent
                          ~fuel:interp_fuel
                      in
                      let nat_obs =
                        match compiled with
                        | Cx86 c ->
                            run_x86 c env fname vec rty extent
                              ~fuel:native_fuel
                        | Csparc c ->
                            run_sparc c env fname vec rty extent
                              ~fuel:native_fuel
                      in
                      match (ref_obs, nat_obs) with
                      | Inconclusive r, _ | _, Inconclusive r ->
                          go conclusive (Some r) rest
                      | Conclusive a, Conclusive b ->
                          if a = b then go (conclusive + 1) last rest
                          else
                            Mismatch
                              {
                                vector = render_vector vec;
                                detail = describe_diff a b;
                              })
                in
                go 0 None vecs
          in
          Some (fname, r))
      m.Ir.funcs
  in
  { v_version = version; v_target = target; v_results = results }

(* ---------- human-readable report ---------- *)

let func_verdict_to_string = function
  | Certified { vectors } -> Printf.sprintf "certified (%d vectors)" vectors
  | Skipped { reason } -> "skipped: " ^ reason
  | Mismatch { vector; detail } ->
      Printf.sprintf "MISMATCH on %s — %s" vector detail

let report (v : verdict) : string list =
  Printf.sprintf "translation validation (%s, tv v%d): %d certified, %d skipped, %d mismatched"
    v.v_target v.v_version (certified v)
    (List.length v.v_results - certified v - mismatches v)
    (mismatches v)
  :: List.map
       (fun (name, r) ->
         Printf.sprintf "  %%%-24s %s" name (func_verdict_to_string r))
       v.v_results
