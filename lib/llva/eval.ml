(* Exact scalar semantics of LLVA arithmetic, comparison and cast
   instructions. Shared by the interpreter, the constant folder and the
   machine simulators so that all execution paths agree bit-for-bit.

   Integer values are stored as canonical int64 representatives (see
   [Ir.normalize_int]); [Float]-typed values are rounded through 32-bit
   precision after every operation.

   Corner-case semantics, fixed here once for every execution path:
   - Shift amounts are interpreted as unsigned counts and reduced modulo
     the *declared* bit width of the operand type, so [shl x:int, 40]
     shifts by 8 — consistent with the lint shift-range model, not the
     63-bit mask of the underlying int64 representative.
   - Signed division and remainder raise [Overflow] on INT_MIN / -1 at
     every width (the one in-range divisor that overflows the quotient;
     x86 idiv delivers #DE for it, so the trap is part of the contract).
   - Floating comparisons follow IEEE-754 unordered semantics: when
     either operand is NaN, Eq/Lt/Gt/Le/Ge are false and Ne is true. *)

type scalar =
  | B of bool
  | I of Types.t * int64
  | F of Types.t * float
  | P of int64 (* a pointer is an address in simulated memory *)
  | Undef of Types.t

exception Division_by_zero
exception Overflow (* signed INT_MIN / -1 division or remainder *)

let type_of = function
  | B _ -> Types.Bool
  | I (ty, _) -> ty
  | F (ty, _) -> ty
  | P _ -> Types.Pointer Types.Sbyte (* representative pointer type *)
  | Undef ty -> ty

let round_float ty v =
  if Types.equal ty Types.Float then Int32.float_of_bits (Int32.bits_of_float v)
  else v

let to_bool = function
  | B b -> b
  | I (_, v) -> not (Int64.equal v 0L)
  | P a -> not (Int64.equal a 0L)
  | F (_, v) -> v <> 0.0
  | Undef _ -> false

let to_int64 = function
  | B b -> if b then 1L else 0L
  | I (_, v) -> v
  | P a -> a
  | F (_, v) -> Int64.of_float v
  | Undef _ -> 0L

let to_float = function
  | F (_, v) -> v
  | I (ty, v) ->
      if Types.is_signed ty then Int64.to_float v
      else if Int64.compare v 0L >= 0 then Int64.to_float v
      else Int64.to_float v +. 18446744073709551616.0 (* 2^64 *)
  | B b -> if b then 1.0 else 0.0
  | P a -> Int64.to_float a
  | Undef _ -> 0.0

let norm ty v = I (ty, Ir.normalize_int ty v)

(* Unsigned 64-bit division helpers. *)
let udiv64 a b = Int64.unsigned_div a b
let urem64 a b = Int64.unsigned_rem a b

(* Smallest signed value at the type's width, as a canonical
   (sign-extended) representative. *)
let min_signed ty = Int64.neg (Int64.shift_left 1L (Types.bitwidth ty - 1))

(* Shift amounts are unsigned counts reduced modulo the declared bit
   width — NOT masked to the 6 bits of the int64 representative. *)
let shift_amount ty b =
  Int64.to_int (Int64.unsigned_rem b (Int64.of_int (Types.bitwidth ty)))

let int_binop op ty a b =
  let open Int64 in
  match op with
  | Ir.Add -> norm ty (add a b)
  | Ir.Sub -> norm ty (sub a b)
  | Ir.Mul -> norm ty (mul a b)
  | Ir.Div ->
      if equal b 0L then raise Division_by_zero
      else if Types.is_signed ty then begin
        (* INT_MIN / -1 overflows the quotient at every width *)
        if equal b minus_one && equal a (min_signed ty) then raise Overflow;
        norm ty (div a b)
      end
      else
        (* operate on the unsigned canonical bits within the width *)
        let mask v =
          if Types.bitwidth ty = 64 then v
          else logand v (sub (shift_left 1L (Types.bitwidth ty)) 1L)
        in
        norm ty (udiv64 (mask a) (mask b))
  | Ir.Rem ->
      if equal b 0L then raise Division_by_zero
      else if Types.is_signed ty then begin
        (* x86 idiv faults on INT_MIN rem -1 too (same #DE delivery) *)
        if equal b minus_one && equal a (min_signed ty) then raise Overflow;
        norm ty (rem a b)
      end
      else
        let mask v =
          if Types.bitwidth ty = 64 then v
          else logand v (sub (shift_left 1L (Types.bitwidth ty)) 1L)
        in
        norm ty (urem64 (mask a) (mask b))
  | Ir.And -> norm ty (logand a b)
  | Ir.Or -> norm ty (logor a b)
  | Ir.Xor -> norm ty (logxor a b)
  | Ir.Shl ->
      let sh = shift_amount ty b in
      norm ty (shift_left a sh)
  | Ir.Shr ->
      let sh = shift_amount ty b in
      if Types.is_signed ty then norm ty (shift_right a sh)
      else
        let w = Types.bitwidth ty in
        let mask v =
          if w = 64 then v else logand v (sub (shift_left 1L w) 1L)
        in
        norm ty (shift_right_logical (mask a) sh)

let float_binop op ty a b =
  let r =
    match op with
    | Ir.Add -> a +. b
    | Ir.Sub -> a -. b
    | Ir.Mul -> a *. b
    | Ir.Div -> a /. b
    | Ir.Rem -> Float.rem a b
    | _ -> invalid_arg "Eval.float_binop: bitwise op on float"
  in
  F (ty, round_float ty r)

let binop op a b =
  match (a, b) with
  | I (ty, x), I (_, y) -> int_binop op ty x y
  | F (ty, x), F (_, y) -> float_binop op ty x y
  | B x, B y -> (
      match op with
      | Ir.And -> B (x && y)
      | Ir.Or -> B (x || y)
      | Ir.Xor -> B (x <> y)
      | Ir.Add -> B (x <> y)
      | Ir.Mul -> B (x && y)
      | _ -> invalid_arg "Eval.binop: unsupported bool op")
  | P x, I (_, y) -> (
      (* pointer +/- integer arises only from lowered code; keep it exact *)
      match op with
      | Ir.Add -> P (Int64.add x y)
      | Ir.Sub -> P (Int64.sub x y)
      | _ -> invalid_arg "Eval.binop: pointer arithmetic")
  | P x, P y -> (
      match op with
      | Ir.Sub -> I (Types.Long, Int64.sub x y)
      | _ -> invalid_arg "Eval.binop: pointer/pointer")
  | Undef ty, _ | _, Undef ty -> Undef ty
  | _ -> invalid_arg "Eval.binop: mixed operand kinds"

let compare_ordered ty cmp a b =
  let c =
    match (a, b) with
    | I (ity, x), I (_, y) ->
        if Types.is_signed ity then Int64.compare x y
        else Int64.unsigned_compare x y
    | F (_, x), F (_, y) -> Float.compare x y
    | B x, B y -> Bool.compare x y
    | P x, P y -> Int64.unsigned_compare x y
    | P x, I (_, y) | I (_, y), P x ->
        ignore x;
        ignore y;
        invalid_arg "Eval.compare: pointer vs int"
    | Undef _, _ | _, Undef _ -> 0
    | _ -> invalid_arg ("Eval.compare: mixed kinds at " ^ Types.to_string ty)
  in
  let r =
    match cmp with
    | Ir.Eq -> c = 0
    | Ir.Ne -> c <> 0
    | Ir.Lt -> c < 0
    | Ir.Gt -> c > 0
    | Ir.Le -> c <= 0
    | Ir.Ge -> c >= 0
  in
  B r

let compare_scalars ty cmp a b =
  match (a, b) with
  | F (_, x), F (_, y) when Float.is_nan x || Float.is_nan y ->
      (* IEEE-754 unordered semantics: comparisons against NaN are
         false, except Ne which is true. [Float.compare]'s total order
         must not be used here — it would make NaN == NaN hold. *)
      B (cmp = Ir.Ne)
  | _ -> compare_ordered ty cmp a b

(* The paper's cast instruction: the sole conversion mechanism. Sign
   extension follows the *source* type's signedness (original LLVM 1.x
   semantics). *)
let cast ~src_ty ~dst_ty v =
  let to_int_bits () =
    match v with
    | B b -> if b then 1L else 0L
    | I (_, x) -> x
    | P a -> a
    | F (_, x) ->
        (* fp -> int truncates toward zero *)
        if Float.is_nan x then 0L else Int64.of_float x
    | Undef _ -> 0L
  in
  match dst_ty with
  | Types.Bool -> B (to_bool v)
  | ty when Types.is_integer ty -> (
      match v with
      | F (_, x) ->
          let x = if Float.is_nan x then 0.0 else x in
          norm ty (Int64.of_float x)
      | _ -> norm ty (to_int_bits ()))
  | Types.Float | Types.Double -> (
      let fty = dst_ty in
      match v with
      | F (_, x) -> F (fty, round_float fty x)
      | I (sty, x) ->
          let f =
            if Types.is_signed sty then Int64.to_float x
            else if Int64.compare x 0L >= 0 then Int64.to_float x
            else Int64.to_float x +. 18446744073709551616.0
          in
          F (fty, round_float fty f)
      | B b -> F (fty, if b then 1.0 else 0.0)
      | P a -> F (fty, Int64.to_float a)
      | Undef _ -> Undef fty)
  | Types.Pointer _ -> (
      match v with
      | P a -> P a
      | I (ity, x) ->
          (* truncate/extend through the source width; addresses are
             unsigned *)
          let bits =
            if Types.is_signed ity then x
            else Ir.normalize_int (Types.unsigned_variant ity) x
          in
          P bits
      | B b -> P (if b then 1L else 0L)
      | Undef _ -> Undef dst_ty
      | F _ -> invalid_arg "Eval.cast: float to pointer")
  | _ ->
      invalid_arg
        (Printf.sprintf "Eval.cast: %s -> %s" (Types.to_string src_ty)
           (Types.to_string dst_ty))

(* Mask a pointer value to the target's pointer width, modelling a 32-bit
   address space on 32-bit configurations. *)
let mask_pointer (target : Target.config) a =
  if target.ptr_size = 4 then Int64.logand a 0xFFFFFFFFL else a

let equal a b =
  match (a, b) with
  | B x, B y -> x = y
  | I (tx, x), I (ty, y) -> Types.equal tx ty && Int64.equal x y
  | F (tx, x), F (ty, y) ->
      Types.equal tx ty && Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | P x, P y -> Int64.equal x y
  | Undef tx, Undef ty -> Types.equal tx ty
  | _ -> false

let to_string = function
  | B b -> string_of_bool b
  | I (ty, v) ->
      if Types.is_signed ty then Int64.to_string v
      else Printf.sprintf "%Lu" v
  | F (_, v) -> string_of_float v
  | P a -> Printf.sprintf "0x%Lx" a
  | Undef ty -> "undef:" ^ Types.to_string ty
