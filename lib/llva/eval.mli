(** Exact scalar semantics of LLVA arithmetic, comparison and cast
    instructions, shared by the interpreter, the constant folder and the
    machine simulators so every execution path agrees bit-for-bit.

    Integer values are stored as canonical [int64] representatives (see
    {!Ir.normalize_int}); [Float]-typed values round through 32-bit
    precision after every operation.

    Corner cases are pinned down here once for every execution path:
    shift amounts are unsigned counts reduced modulo the declared bit
    width of the operand type; signed [INT_MIN / -1] division and
    remainder raise {!Overflow} at every width; floating comparisons
    follow IEEE-754 unordered semantics (NaN makes [Eq]/[Lt]/[Gt]/[Le]/
    [Ge] false and [Ne] true). *)

type scalar =
  | B of bool
  | I of Types.t * int64
  | F of Types.t * float
  | P of int64  (** a pointer is an address in simulated memory *)
  | Undef of Types.t

exception Division_by_zero
exception Overflow

val type_of : scalar -> Types.t
val round_float : Types.t -> float -> float

(** {1 Coercions} *)

val to_bool : scalar -> bool
val to_int64 : scalar -> int64
val to_float : scalar -> float

(** {1 Operations} *)

val int_binop : Ir.binop -> Types.t -> int64 -> int64 -> scalar
(** Integer operation at the given type's width and signedness. Shift
    amounts are reduced modulo the type's bit width (unsigned count).
    @raise Division_by_zero on a zero divisor.
    @raise Overflow on signed [INT_MIN / -1] (division or remainder). *)

val binop : Ir.binop -> scalar -> scalar -> scalar
(** Dispatch on operand kinds (integer, float, bool, pointer). *)

val compare_scalars : Types.t -> Ir.cmp -> scalar -> scalar -> scalar
(** The [setcc] instructions; signedness follows the operand type.
    Floating comparisons are IEEE-754 unordered: when either operand is
    NaN, every relation except [Ne] is false. *)

val cast : src_ty:Types.t -> dst_ty:Types.t -> scalar -> scalar
(** The paper's sole conversion mechanism; sign extension follows the
    source type's signedness. *)

val mask_pointer : Target.config -> int64 -> int64
(** Truncate an address to the target's pointer width (32-bit configs
    model a 32-bit address space). *)

val equal : scalar -> scalar -> bool
val to_string : scalar -> string
