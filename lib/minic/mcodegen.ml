(* MiniC -> LLVA code generation.

   Follows the paper's lowering recipe (§3.1): array and structure
   indexing become getelementptr, local variables become explicit allocas
   plus loads/stores (mem2reg later rebuilds SSA), short-circuit operators
   and ?: become CFG diamonds with phis, switch becomes mbr. *)

open Mast
open Llva

exception Error of string * int

let err line fmt = Printf.ksprintf (fun s -> raise (Error (s, line))) fmt

(* ---------- environment ---------- *)

type genv = {
  m : Ir.modl;
  structs : (string, (cty * string) list) Hashtbl.t;
  enums : (string, int64) Hashtbl.t;
  global_tys : (string, cty) Hashtbl.t;
  func_sigs : (string, cty * cty list) Hashtbl.t;
  strings : (string, Ir.global) Hashtbl.t;
  mutable string_count : int;
  mutable env : Types.env;
  mutable lt : Vmem.Layout.t;
}

let struct_type_name tag = "struct." ^ tag

let rec lty (g : genv) (t : cty) : Types.t =
  match t with
  | Cvoid -> Types.Void
  | Cchar -> Types.Sbyte
  | Cuchar -> Types.Ubyte
  | Cshort -> Types.Short
  | Cushort -> Types.Ushort
  | Cint -> Types.Int
  | Cuint -> Types.Uint
  | Clong -> Types.Long
  | Culong -> Types.Ulong
  | Cfloat -> Types.Float
  | Cdouble -> Types.Double
  | Cptr Cvoid -> Types.Pointer Types.Sbyte (* void* is sbyte* *)
  | Cptr inner -> Types.Pointer (lty g inner)
  | Carr (n, e) -> Types.Array (n, lty g e)
  | Cstruct tag -> Types.Named (struct_type_name tag)
  | Cfunc (r, args) -> Types.Func (lty g r, List.map (lty g) args, false)

let is_cint = function
  | Cchar | Cuchar | Cshort | Cushort | Cint | Cuint | Clong | Culong -> true
  | _ -> false

let is_cfp = function Cfloat | Cdouble -> true | _ -> false
let is_cptr = function Cptr _ -> true | _ -> false
let is_carith t = is_cint t || is_cfp t

let rank = function
  | Cchar | Cuchar -> 1
  | Cshort | Cushort -> 2
  | Cint | Cuint -> 3
  | Clong | Culong -> 4
  | _ -> 0

let is_unsigned_cty = function
  | Cuchar | Cushort | Cuint | Culong -> true
  | _ -> false

(* usual arithmetic conversions, simplified *)
let unify_arith line a b =
  match (a, b) with
  | Cdouble, _ | _, Cdouble -> Cdouble
  | Cfloat, _ | _, Cfloat -> Cfloat
  | _ when is_cint a && is_cint b ->
      let r = max (max (rank a) (rank b)) 3 (* promote to >= int *) in
      let unsigned =
        (is_unsigned_cty a && rank a >= r)
        || (is_unsigned_cty b && rank b >= r)
        || (is_unsigned_cty a && is_unsigned_cty b)
      in
      (match (r, unsigned) with
      | 3, false -> Cint
      | 3, true -> Cuint
      | 4, false -> Clong
      | _, _ -> if r = 4 then Culong else Cint)
  | _ -> err line "cannot combine %s and %s" (cty_to_string a) (cty_to_string b)

(* ---------- function context ---------- *)

type fctx = {
  g : genv;
  f : Ir.func;
  bld : Builder.t;
  mutable scopes : (string * (Ir.value * cty)) list list;
  mutable break_targets : Ir.block list;
  mutable continue_targets : Ir.block list;
  ret_ty : cty;
  mutable terminated : bool;
  mutable block_counter : int;
}

let new_block fx name =
  fx.block_counter <- fx.block_counter + 1;
  let b = Ir.mk_block ~name:(Printf.sprintf "%s%d" name fx.block_counter) () in
  Ir.append_block fx.f b;
  b

let set_block fx b =
  Builder.position_at_end b fx.bld;
  fx.terminated <- false

let lookup_local fx name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
        match List.assoc_opt name scope with
        | Some v -> Some v
        | None -> go rest)
  in
  go fx.scopes

let add_local fx name binding =
  match fx.scopes with
  | scope :: rest -> fx.scopes <- ((name, binding) :: scope) :: rest
  | [] -> fx.scopes <- [ [ (name, binding) ] ]

(* allocas are placed in the entry block so they are static *)
let entry_alloca fx ty name =
  let entry = Ir.entry_block fx.f in
  let i = Ir.mk_instr ~name Ir.Alloca [||] (Types.Pointer (lty fx.g ty)) in
  Ir.prepend_instr entry i;
  Ir.Vreg i

(* ---------- constants and casts ---------- *)

let const_of_int g cty_ v = Ir.const_int (lty g cty_) v

(* cast an rvalue between C types *)
let gen_cast fx line (v : Ir.value) (from_t : cty) (to_t : cty) : Ir.value =
  if from_t = to_t then v
  else
    let lt_from = lty fx.g from_t and lt_to = lty fx.g to_t in
    if Types.equal lt_from lt_to then v
    else
      match (from_t, to_t) with
      | _, Cvoid -> v
      | (Carr (_, e)), Cptr e' when e = e' -> v (* decay handled earlier *)
      | _ when is_carith from_t && is_carith to_t ->
          Builder.cast fx.bld v lt_to
      | Cptr _, Cptr _ -> Builder.cast fx.bld v lt_to
      | Cptr _, _ when is_cint to_t -> Builder.cast fx.bld v lt_to
      | _, Cptr _ when is_cint from_t -> Builder.cast fx.bld v lt_to
      | _ ->
          err line "cannot cast %s to %s" (cty_to_string from_t)
            (cty_to_string to_t)

(* truthiness: scalar -> bool *)
let gen_truth fx (v : Ir.value) (t : cty) : Ir.value =
  match t with
  | Cfloat | Cdouble -> Builder.setne fx.bld v (Ir.const_float (lty fx.g t) 0.0)
  | Cptr _ ->
      Builder.setne fx.bld v (Ir.const_null (lty fx.g t))
  | _ -> Builder.setne fx.bld v (const_of_int fx.g t 0L)

(* ---------- string literals ---------- *)

let string_global g s : Ir.global =
  match Hashtbl.find_opt g.strings s with
  | Some gl -> gl
  | None ->
      g.string_count <- g.string_count + 1;
      let gl =
        Ir.mk_global
          ~name:(Printf.sprintf "str.%d" g.string_count)
          ~ty:(Types.Array (String.length s + 1, Types.Sbyte))
          ~init:(match Ir.const_string s with Ir.Const c -> c | _ -> assert false)
          ~constant:true ()
      in
      Ir.add_global g.m gl;
      Hashtbl.replace g.strings s gl;
      gl

(* ---------- expressions ---------- *)

let field_index g line tag fname =
  match Hashtbl.find_opt g.structs tag with
  | None -> err line "unknown struct %s" tag
  | Some fields ->
      let rec go k = function
        | [] -> err line "struct %s has no field %s" tag fname
        | (fty, n) :: _ when n = fname -> (k, fty)
        | _ :: rest -> go (k + 1) rest
      in
      go 0 fields

let rec gen_expr fx (e : expr) : Ir.value * cty =
  let line = e.eline in
  match e.desc with
  | Eint v ->
      if Int64.compare v 2147483647L > 0 || Int64.compare v (-2147483648L) < 0
      then (Ir.const_int Types.Long v, Clong)
      else (Ir.const_int Types.Int v, Cint)
  | Efloat f -> (Ir.const_float Types.Double f, Cdouble)
  | Echar c -> (Ir.const_int Types.Sbyte (Int64.of_int (Char.code c)), Cchar)
  | Estr s ->
      let gl = string_global fx.g s in
      let p =
        Builder.getelementptr fx.bld (Ir.Vglobal gl)
          [ Ir.const_int Types.Long 0L; Ir.const_int Types.Long 0L ]
      in
      (p, Cptr Cchar)
  | Eident name -> (
      match Hashtbl.find_opt fx.g.enums name with
      | Some v -> (Ir.const_int Types.Int v, Cint)
      | None -> (
          match lookup_local fx name with
          | Some (ptr, (Carr (_, elem) as t)) ->
              (* array lvalue decays to pointer to first element *)
              ignore t;
              let p =
                Builder.getelementptr fx.bld ptr
                  [ Ir.const_int Types.Long 0L; Ir.const_int Types.Long 0L ]
              in
              (p, Cptr elem)
          | Some (ptr, (Cstruct _ as t)) -> (ptr, t) (* struct value = its address *)
          | Some (ptr, t) -> (Builder.load fx.bld ptr, t)
          | None -> (
              match Hashtbl.find_opt fx.g.global_tys name with
              | Some (Carr (_, elem)) ->
                  let gl = Option.get (Ir.find_global fx.g.m name) in
                  let p =
                    Builder.getelementptr fx.bld (Ir.Vglobal gl)
                      [ Ir.const_int Types.Long 0L; Ir.const_int Types.Long 0L ]
                  in
                  (p, Cptr elem)
              | Some (Cstruct _ as t) ->
                  (Ir.Vglobal (Option.get (Ir.find_global fx.g.m name)), t)
              | Some t ->
                  let gl = Option.get (Ir.find_global fx.g.m name) in
                  (Builder.load fx.bld (Ir.Vglobal gl), t)
              | None -> (
                  match Hashtbl.find_opt fx.g.func_sigs name with
                  | Some (r, args) ->
                      let f = Option.get (Ir.find_func fx.g.m name) in
                      (Ir.Vfunc f, Cptr (Cfunc (r, args)))
                  | None -> err line "unknown identifier %s" name))))
  | Ebin (Bland, a, b) -> gen_shortcircuit fx line true a b
  | Ebin (Blor, a, b) -> gen_shortcircuit fx line false a b
  | Ebin (op, a, b) -> gen_binop fx line op a b
  | Eun (Uneg, a) ->
      let v, t = gen_expr fx a in
      let t = if is_cint t && rank t < 3 then Cint else t in
      let v = gen_cast fx line v (snd (gen_expr_ty fx a)) t in
      if is_cfp t then
        (Builder.sub fx.bld (Ir.const_float (lty fx.g t) 0.0) v, t)
      else (Builder.sub fx.bld (const_of_int fx.g t 0L) v, t)
  | Eun (Unot, a) ->
      let v, t = gen_expr fx a in
      let b = gen_truth fx v t in
      let nb = Builder.xor fx.bld b (Ir.const_bool true) in
      (Builder.cast fx.bld nb Types.Int, Cint)
  | Eun (Ubnot, a) ->
      let v, t = gen_expr fx a in
      let t = if rank t < 3 then Cint else t in
      let v = gen_cast fx line v (snd (gen_expr_ty fx a)) t in
      (Builder.xor fx.bld v (const_of_int fx.g t (-1L)), t)
  | Eassign (lhs, rhs) ->
      let addr, lt_ = gen_lvalue fx lhs in
      let v, vt = gen_expr fx rhs in
      let v = gen_cast fx line v vt lt_ in
      Builder.store fx.bld v addr;
      (v, lt_)
  | Eopassign (op, lhs, rhs) ->
      let addr, lt_ = gen_lvalue fx lhs in
      let cur = Builder.load fx.bld addr in
      let result, rt =
        gen_binop_values fx line op (cur, lt_) (gen_expr fx rhs)
      in
      let result = gen_cast fx line result rt lt_ in
      Builder.store fx.bld result addr;
      (result, lt_)
  | Epreincr (delta, lv) ->
      let addr, lt_ = gen_lvalue fx lv in
      let cur = Builder.load fx.bld addr in
      let next = gen_incr fx line cur lt_ delta in
      Builder.store fx.bld next addr;
      (next, lt_)
  | Epostincr (delta, lv) ->
      let addr, lt_ = gen_lvalue fx lv in
      let cur = Builder.load fx.bld addr in
      let next = gen_incr fx line cur lt_ delta in
      Builder.store fx.bld next addr;
      (cur, lt_)
  | Ecall (callee, args) -> gen_call fx line callee args
  | Eindex _ | Efield _ | Earrow _ | Ederef _ -> (
      (* load through the lvalue; arrays/structs stay as addresses *)
      let addr, t = gen_lvalue fx e in
      match t with
      | Carr (_, elem) ->
          let p =
            Builder.getelementptr fx.bld addr
              [ Ir.const_int Types.Long 0L; Ir.const_int Types.Long 0L ]
          in
          (p, Cptr elem)
      | Cstruct _ -> (addr, t)
      | _ -> (Builder.load fx.bld addr, t))
  | Eaddr lv ->
      let addr, t = gen_lvalue fx lv in
      (addr, Cptr t)
  | Ecast (to_t, a) ->
      let v, from_t = gen_expr fx a in
      (gen_cast fx line v from_t to_t, to_t)
  | Esizeof t ->
      (Ir.const_int Types.Uint (Int64.of_int (Vmem.Layout.size_of fx.g.lt (lty fx.g t))),
       Cuint)
  | Econd (c, a, b) ->
      let cv, ct = gen_expr fx c in
      let cb = gen_truth fx cv ct in
      let then_b = new_block fx "cond.t" in
      let else_b = new_block fx "cond.f" in
      let join = new_block fx "cond.j" in
      Builder.cond_br fx.bld cb then_b else_b;
      set_block fx then_b;
      let av, at = gen_expr fx a in
      let then_end = Builder.insertion_block fx.bld in
      set_block fx else_b;
      let bv, bt = gen_expr fx b in
      let else_end = Builder.insertion_block fx.bld in
      (* unify *)
      let rt =
        if at = bt then at
        else if is_carith at && is_carith bt then unify_arith line at bt
        else if is_cptr at then at
        else bt
      in
      (* emit casts in the right blocks *)
      Builder.position_at_end then_end fx.bld;
      let av = gen_cast fx line av at rt in
      Builder.br fx.bld join;
      Builder.position_at_end else_end fx.bld;
      let bv = gen_cast fx line bv bt rt in
      Builder.br fx.bld join;
      set_block fx join;
      if rt = Cvoid then (Ir.Vundef Types.Void, Cvoid)
      else
        let phi =
          Builder.phi_at_front fx.bld (lty fx.g rt)
            [ (av, then_end); (bv, else_end) ]
        in
        (phi, rt)

(* type of an expression without emitting code twice: cheap re-derivation
   for the unary minus path (gen_expr already emitted the value) *)
and gen_expr_ty fx (e : expr) : Ir.value * cty =
  ignore fx;
  match e.desc with
  | Eint v ->
      if Int64.compare v 2147483647L > 0 then (Ir.Vundef Types.Long, Clong)
      else (Ir.Vundef Types.Int, Cint)
  | Efloat _ -> (Ir.Vundef Types.Double, Cdouble)
  | Echar _ -> (Ir.Vundef Types.Sbyte, Cchar)
  | _ -> (Ir.Vundef Types.Int, Cint)

and gen_incr fx line (cur : Ir.value) (t : cty) delta : Ir.value =
  match t with
  | Cptr elem ->
      ignore elem;
      Builder.getelementptr fx.bld cur
        [ Ir.const_int Types.Long (Int64.of_int delta) ]
  | _ when is_cfp t ->
      Builder.add fx.bld cur (Ir.const_float (lty fx.g t) (float_of_int delta))
  | _ when is_cint t ->
      Builder.add fx.bld cur (const_of_int fx.g t (Int64.of_int delta))
  | _ -> err line "cannot increment %s" (cty_to_string t)

and gen_shortcircuit fx _line is_and a b : Ir.value * cty =
  let av, at = gen_expr fx a in
  let ab = gen_truth fx av at in
  let a_end = Builder.insertion_block fx.bld in
  let rhs_b = new_block fx (if is_and then "and.rhs" else "or.rhs") in
  let join = new_block fx (if is_and then "and.j" else "or.j") in
  if is_and then Builder.cond_br fx.bld ab rhs_b join
  else Builder.cond_br fx.bld ab join rhs_b;
  set_block fx rhs_b;
  let bv, bt = gen_expr fx b in
  let bb = gen_truth fx bv bt in
  let rhs_end = Builder.insertion_block fx.bld in
  Builder.br fx.bld join;
  set_block fx join;
  let phi =
    Builder.phi_at_front fx.bld Types.Bool
      [ (Ir.const_bool (not is_and), a_end); (bb, rhs_end) ]
  in
  (Builder.cast fx.bld phi Types.Int, Cint)

and gen_binop fx line op a b : Ir.value * cty =
  gen_binop_values fx line op (gen_expr fx a) (gen_expr fx b)

and gen_binop_values fx line op ((av, at) : Ir.value * cty)
    ((bv, bt) : Ir.value * cty) : Ir.value * cty =
  let arith_op ir_op =
    match (at, bt) with
    (* pointer arithmetic *)
    | Cptr elem, _ when is_cint bt && (op = Badd || op = Bsub) ->
        ignore elem;
        let idx = gen_cast fx line bv bt Clong in
        let idx =
          if op = Bsub then Builder.sub fx.bld (Ir.const_int Types.Long 0L) idx
          else idx
        in
        (Builder.getelementptr fx.bld av [ idx ], at)
    | _, Cptr _ when is_cint at && op = Badd ->
        let idx = gen_cast fx line av at Clong in
        (Builder.getelementptr fx.bld bv [ idx ], bt)
    | Cptr elem, Cptr _ when op = Bsub ->
        (* pointer difference in elements *)
        let ai = Builder.cast fx.bld av Types.Long in
        let bi = Builder.cast fx.bld bv Types.Long in
        let diff = Builder.sub fx.bld ai bi in
        let esz = Vmem.Layout.size_of fx.g.lt (lty fx.g elem) in
        let d =
          if esz = 1 then diff
          else Builder.div fx.bld diff (Ir.const_int Types.Long (Int64.of_int esz))
        in
        (Builder.cast fx.bld d Types.Long, Clong)
    | _ when is_carith at && is_carith bt ->
        let rt = unify_arith line at bt in
        let a' = gen_cast fx line av at rt in
        let b' = gen_cast fx line bv bt rt in
        (Builder.binop fx.bld ir_op a' b', rt)
    | _ ->
        err line "invalid operands to arithmetic: %s, %s" (cty_to_string at)
          (cty_to_string bt)
  in
  let int_only_op ir_op =
    if is_cint at && is_cint bt then begin
      let rt = unify_arith line at bt in
      let a' = gen_cast fx line av at rt in
      let b' = gen_cast fx line bv bt rt in
      (Builder.binop fx.bld ir_op a' b', rt)
    end
    else err line "bitwise operator requires integers"
  in
  let shift_op ir_op =
    if is_cint at && is_cint bt then begin
      let rt = if rank at < 3 then Cint else at in
      let a' = gen_cast fx line av at rt in
      let amt = gen_cast fx line bv bt Cuchar in
      (Builder.binop fx.bld ir_op a' amt, rt)
    end
    else err line "shift requires integers"
  in
  let cmp_op cmp =
    let a', b' =
      if is_cptr at || is_cptr bt then begin
        (* compare as pointers; allow int 0 (NULL) on either side *)
        let pt = if is_cptr at then at else bt in
        ( gen_cast fx line av at pt,
          gen_cast fx line bv bt pt )
      end
      else if is_carith at && is_carith bt then begin
        let rt = unify_arith line at bt in
        (gen_cast fx line av at rt, gen_cast fx line bv bt rt)
      end
      else err line "invalid comparison operands"
    in
    let b = Builder.setcc fx.bld cmp a' b' in
    (Builder.cast fx.bld b Types.Int, Cint)
  in
  match op with
  | Badd -> arith_op Ir.Add
  | Bsub -> arith_op Ir.Sub
  | Bmul -> arith_op Ir.Mul
  | Bdiv -> arith_op Ir.Div
  | Bmod -> int_only_op Ir.Rem
  | Band -> int_only_op Ir.And
  | Bor -> int_only_op Ir.Or
  | Bxor -> int_only_op Ir.Xor
  | Bshl -> shift_op Ir.Shl
  | Bshr -> shift_op Ir.Shr
  | Beq -> cmp_op Ir.Eq
  | Bne -> cmp_op Ir.Ne
  | Blt -> cmp_op Ir.Lt
  | Bgt -> cmp_op Ir.Gt
  | Ble -> cmp_op Ir.Le
  | Bge -> cmp_op Ir.Ge
  | Bland | Blor -> err line "internal: short-circuit handled elsewhere"

and gen_call fx line callee args : Ir.value * cty =
  let callee_v, ret_t, param_ts =
    match callee.desc with
    | Eident name when Hashtbl.mem fx.g.func_sigs name ->
        let r, ps = Hashtbl.find fx.g.func_sigs name in
        (Ir.Vfunc (Option.get (Ir.find_func fx.g.m name)), r, ps)
    | _ -> (
        let v, t = gen_expr fx callee in
        match t with
        | Cptr (Cfunc (r, ps)) -> (v, r, ps)
        | _ -> err line "called object is not a function")
  in
  if List.length args <> List.length param_ts then
    err line "wrong number of arguments (%d vs %d)" (List.length args)
      (List.length param_ts);
  let arg_vs =
    List.map2
      (fun a pt ->
        let v, t = gen_expr fx a in
        gen_cast fx line v t pt)
      args param_ts
  in
  let result = Builder.call fx.bld callee_v arg_vs in
  (result, ret_t)

(* lvalue: returns the ADDRESS and the C type of the object *)
and gen_lvalue fx (e : expr) : Ir.value * cty =
  let line = e.eline in
  match e.desc with
  | Eident name -> (
      match lookup_local fx name with
      | Some (ptr, t) -> (ptr, t)
      | None -> (
          match Hashtbl.find_opt fx.g.global_tys name with
          | Some t -> (Ir.Vglobal (Option.get (Ir.find_global fx.g.m name)), t)
          | None -> err line "unknown identifier %s" name))
  | Ederef p -> (
      let v, t = gen_expr fx p in
      match t with
      | Cptr inner -> (v, inner)
      | _ -> err line "dereference of non-pointer %s" (cty_to_string t))
  | Eindex (base, idx) -> (
      let iv, it = gen_expr fx idx in
      let idx64 = gen_cast fx line iv it Clong in
      (* if base is an array lvalue, index in place; if pointer, index
         through the pointer value *)
      match base.desc with
      | _ -> (
          let bv, bt = gen_expr fx base in
          match bt with
          | Cptr elem ->
              (Builder.getelementptr fx.bld bv [ idx64 ], elem)
          | _ -> err line "indexing non-pointer %s" (cty_to_string bt)))
  | Efield (base, fname) -> (
      let addr, t = gen_lvalue fx base in
      match t with
      | Cstruct tag ->
          let k, fty = field_index fx.g line tag fname in
          ( Builder.getelementptr fx.bld addr
              [
                Ir.const_int Types.Long 0L;
                Ir.const_int Types.Uint (Int64.of_int k);
              ],
            fty )
      | _ -> err line "field access on non-struct %s" (cty_to_string t))
  | Earrow (base, fname) -> (
      let v, t = gen_expr fx base in
      match t with
      | Cptr (Cstruct tag) ->
          let k, fty = field_index fx.g line tag fname in
          ( Builder.getelementptr fx.bld v
              [
                Ir.const_int Types.Long 0L;
                Ir.const_int Types.Uint (Int64.of_int k);
              ],
            fty )
      | _ -> err line "-> on non-struct-pointer %s" (cty_to_string t))
  | Ecast (Cptr _ as pt, inner) ->
      (* a cast used in lvalue position, e.g. assigning through a
         pointer cast *)
      let v, t = gen_expr fx inner in
      let v = gen_cast fx line v t pt in
      (match pt with Cptr i -> (v, i) | _ -> assert false)
  | _ -> err line "expression is not an lvalue"

(* ---------- statements ---------- *)

let rec gen_stmt fx (s : stmt) : unit =
  if fx.terminated then () (* unreachable code is dropped *)
  else
    match s.sdesc with
    | Sexpr e -> ignore (gen_expr fx e)
    | Sdecl (ty, name, init) ->
        let slot = entry_alloca fx ty name in
        add_local fx name (slot, ty);
        (match init with
        | Some e ->
            let v, t = gen_expr fx e in
            let v = gen_cast fx s.sline v t ty in
            Builder.store fx.bld v slot
        | None -> ())
    | Sblock stmts ->
        fx.scopes <- [] :: fx.scopes;
        List.iter (gen_stmt fx) stmts;
        fx.scopes <- List.tl fx.scopes
    | Sseq stmts -> List.iter (gen_stmt fx) stmts
    | Sif (c, then_s, else_s) -> (
        let cv, ct = gen_expr fx c in
        let cb = gen_truth fx cv ct in
        let then_b = new_block fx "if.t" in
        let join = new_block fx "if.j" in
        match else_s with
        | None ->
            Builder.cond_br fx.bld cb then_b join;
            set_block fx then_b;
            gen_stmt fx then_s;
            if not fx.terminated then Builder.br fx.bld join;
            set_block fx join
        | Some es ->
            let else_b = new_block fx "if.f" in
            Builder.cond_br fx.bld cb then_b else_b;
            set_block fx then_b;
            gen_stmt fx then_s;
            let t_term = fx.terminated in
            if not t_term then Builder.br fx.bld join;
            set_block fx else_b;
            gen_stmt fx es;
            let e_term = fx.terminated in
            if not e_term then Builder.br fx.bld join;
            if t_term && e_term then begin
              (* both sides terminated: the join block is unreachable;
                 emit an unreachable terminator to keep it well-formed *)
              set_block fx join;
              Builder.unwind fx.bld;
              fx.terminated <- true
            end
            else set_block fx join)
    | Swhile (c, body) ->
        let header = new_block fx "while.h" in
        let body_b = new_block fx "while.b" in
        let exit_b = new_block fx "while.e" in
        Builder.br fx.bld header;
        set_block fx header;
        let cv, ct = gen_expr fx c in
        let cb = gen_truth fx cv ct in
        Builder.cond_br fx.bld cb body_b exit_b;
        fx.break_targets <- exit_b :: fx.break_targets;
        fx.continue_targets <- header :: fx.continue_targets;
        set_block fx body_b;
        gen_stmt fx body;
        if not fx.terminated then Builder.br fx.bld header;
        fx.break_targets <- List.tl fx.break_targets;
        fx.continue_targets <- List.tl fx.continue_targets;
        set_block fx exit_b
    | Sdo (body, c) ->
        let body_b = new_block fx "do.b" in
        let cond_b = new_block fx "do.c" in
        let exit_b = new_block fx "do.e" in
        Builder.br fx.bld body_b;
        fx.break_targets <- exit_b :: fx.break_targets;
        fx.continue_targets <- cond_b :: fx.continue_targets;
        set_block fx body_b;
        gen_stmt fx body;
        if not fx.terminated then Builder.br fx.bld cond_b;
        set_block fx cond_b;
        let cv, ct = gen_expr fx c in
        let cb = gen_truth fx cv ct in
        Builder.cond_br fx.bld cb body_b exit_b;
        fx.break_targets <- List.tl fx.break_targets;
        fx.continue_targets <- List.tl fx.continue_targets;
        set_block fx exit_b
    | Sfor (init, cond, step, body) ->
        fx.scopes <- [] :: fx.scopes;
        (match init with Some s -> gen_stmt fx s | None -> ());
        let header = new_block fx "for.h" in
        let body_b = new_block fx "for.b" in
        let step_b = new_block fx "for.s" in
        let exit_b = new_block fx "for.e" in
        Builder.br fx.bld header;
        set_block fx header;
        (match cond with
        | Some c ->
            let cv, ct = gen_expr fx c in
            let cb = gen_truth fx cv ct in
            Builder.cond_br fx.bld cb body_b exit_b
        | None -> Builder.br fx.bld body_b);
        fx.break_targets <- exit_b :: fx.break_targets;
        fx.continue_targets <- step_b :: fx.continue_targets;
        set_block fx body_b;
        gen_stmt fx body;
        if not fx.terminated then Builder.br fx.bld step_b;
        set_block fx step_b;
        (match step with Some e -> ignore (gen_expr fx e) | None -> ());
        Builder.br fx.bld header;
        fx.break_targets <- List.tl fx.break_targets;
        fx.continue_targets <- List.tl fx.continue_targets;
        set_block fx exit_b;
        fx.scopes <- List.tl fx.scopes
    | Sreturn e ->
        (match (e, fx.ret_ty) with
        | None, _ -> Builder.ret fx.bld None
        | Some e, rt ->
            let v, t = gen_expr fx e in
            let v = gen_cast fx s.sline v t rt in
            Builder.ret fx.bld (Some v));
        fx.terminated <- true
    | Sbreak -> (
        match fx.break_targets with
        | b :: _ ->
            Builder.br fx.bld b;
            fx.terminated <- true
        | [] -> err s.sline "break outside loop/switch")
    | Scontinue -> (
        match fx.continue_targets with
        | b :: _ ->
            Builder.br fx.bld b;
            fx.terminated <- true
        | [] -> err s.sline "continue outside loop")
    | Sswitch (sel, cases) ->
        let sv, st_ = gen_expr fx sel in
        let sel_t = if is_cint st_ then st_ else Cint in
        let sv = gen_cast fx s.sline sv st_ sel_t in
        let end_b = new_block fx "sw.end" in
        (* one block per case group, in order; fallthrough chains *)
        let case_blocks =
          List.map (fun _ -> new_block fx "sw.case") cases
        in
        let default_target =
          let rec find cs bs =
            match (cs, bs) with
            | (None, _) :: _, b :: _ -> Some b
            | _ :: cs, _ :: bs -> find cs bs
            | _ -> None
          in
          find cases case_blocks
        in
        let mbr_cases =
          List.filter_map
            (fun ((tag, _), b) ->
              match tag with Some v -> Some (v, b) | None -> None)
            (List.combine cases case_blocks)
        in
        Builder.mbr fx.bld sv
          ~default:(match default_target with Some b -> b | None -> end_b)
          mbr_cases;
        fx.break_targets <- end_b :: fx.break_targets;
        let rec emit_cases cs bs =
          match (cs, bs) with
          | [], [] -> ()
          | (_, body) :: rest_c, b :: rest_b ->
              set_block fx b;
              List.iter (gen_stmt fx) body;
              if not fx.terminated then
                (* fallthrough to the next case, or to the end *)
                Builder.br fx.bld
                  (match rest_b with nb :: _ -> nb | [] -> end_b);
              emit_cases rest_c rest_b
          | _ -> assert false
        in
        emit_cases cases case_blocks;
        fx.break_targets <- List.tl fx.break_targets;
        set_block fx end_b

(* ---------- global initializers (constant expressions) ---------- *)

let rec const_eval g (e : expr) : Ir.const =
  match e.desc with
  | Eint v -> { Ir.cty = Types.Int; ckind = Ir.Cint v }
  | Echar c ->
      { Ir.cty = Types.Sbyte; ckind = Ir.Cint (Int64.of_int (Char.code c)) }
  | Efloat f -> { Ir.cty = Types.Double; ckind = Ir.Cfloat f }
  | Eun (Uneg, inner) -> (
      match const_eval g inner with
      | { Ir.ckind = Ir.Cint v; cty } -> { Ir.cty; ckind = Ir.Cint (Int64.neg v) }
      | { Ir.ckind = Ir.Cfloat f; cty } -> { Ir.cty; ckind = Ir.Cfloat (-.f) }
      | _ -> err e.eline "bad constant initializer")
  | Eident name -> (
      match Hashtbl.find_opt g.enums name with
      | Some v -> { Ir.cty = Types.Int; ckind = Ir.Cint v }
      | None -> (
          match Hashtbl.find_opt g.func_sigs name with
          | Some _ ->
              { Ir.cty = Types.Pointer Types.Sbyte; ckind = Ir.Cglobal_ref name }
          | None -> err e.eline "non-constant initializer %s" name))
  | Estr s ->
      let gl = string_global g s in
      { Ir.cty = Types.Pointer Types.Sbyte; ckind = Ir.Cglobal_ref gl.Ir.gname }
  | Esizeof t ->
      {
        Ir.cty = Types.Uint;
        ckind = Ir.Cint (Int64.of_int (Vmem.Layout.size_of g.lt (lty g t)));
      }
  | Ebin (op, a, b) -> (
      let ca = const_eval g a and cb = const_eval g b in
      match (ca.Ir.ckind, cb.Ir.ckind) with
      | Ir.Cint x, Ir.Cint y ->
          let v =
            match op with
            | Badd -> Int64.add x y
            | Bsub -> Int64.sub x y
            | Bmul -> Int64.mul x y
            | Bdiv -> Int64.div x y
            | Bshl -> Int64.shift_left x (Int64.to_int y)
            | Bor -> Int64.logor x y
            | _ -> err e.eline "unsupported constant operator"
          in
          { Ir.cty = ca.Ir.cty; ckind = Ir.Cint v }
      | _ -> err e.eline "bad constant initializer")
  | _ -> err e.eline "initializer is not a constant expression"

(* retype an evaluated constant to the declared type *)
let retype_const (want : Types.t) (c : Ir.const) : Ir.const =
  match (want, c.Ir.ckind) with
  | t, Ir.Cint v when Types.is_integer t || Types.equal t Types.Bool ->
      { Ir.cty = t; ckind = Ir.Cint (Ir.normalize_int t v) }
  | t, Ir.Cint v when Types.is_fp t ->
      { Ir.cty = t; ckind = Ir.Cfloat (Int64.to_float v) }
  | t, Ir.Cfloat f when Types.is_fp t -> { Ir.cty = t; ckind = Ir.Cfloat f }
  | (Types.Pointer _ as t), Ir.Cint 0L -> { Ir.cty = t; ckind = Ir.Cnull }
  | (Types.Pointer _ as t), Ir.Cglobal_ref n ->
      { Ir.cty = t; ckind = Ir.Cglobal_ref n }
  | t, Ir.Czero -> { Ir.cty = t; ckind = Ir.Czero }
  | (Types.Array _ as t), Ir.Carray elems -> { Ir.cty = t; ckind = Ir.Carray elems }
  | t, _ -> err 0 "initializer type mismatch for %s" (Types.to_string t)

let rec const_init g (ty : cty) (i : init) : Ir.const =
  let want = lty g ty in
  match (i, ty) with
  | Iexpr { desc = Estr s; _ }, Carr (n, Cchar) ->
      ignore n;
      { Ir.cty = want; ckind = Ir.Cstring s }
  | Iexpr e, _ -> retype_const want (const_eval g e)
  | Ilist elems, Carr (_, ety) ->
      { Ir.cty = want; ckind = Ir.Carray (List.map (const_init g ety) elems) }
  | Ilist elems, Cstruct tag ->
      let fields =
        match Hashtbl.find_opt g.structs tag with
        | Some fs -> fs
        | None -> err 0 "unknown struct %s" tag
      in
      let consts =
        List.map2 (fun (fty, _) e -> const_init g fty e)
          (List.filteri (fun k _ -> k < List.length elems) fields)
          elems
      in
      { Ir.cty = want; ckind = Ir.Cstruct consts }
  | Ilist _, _ -> err 0 "brace initializer for non-aggregate"

(* ---------- top level ---------- *)

let builtin_sigs =
  [
    ("print_int", (Cvoid, [ Cint ]));
    ("print_long", (Cvoid, [ Clong ]));
    ("print_char", (Cvoid, [ Cint ]));
    ("print_float", (Cvoid, [ Cdouble ]));
    ("print_str", (Cvoid, [ Cptr Cchar ]));
    ("print_nl", (Cvoid, []));
    ("exit", (Cvoid, [ Cint ]));
    ("abort", (Cvoid, []));
    ("malloc", (Cptr Cvoid, [ Cuint ]));
    ("free", (Cvoid, [ Cptr Cvoid ]));
    ("memcpy", (Cptr Cvoid, [ Cptr Cvoid; Cptr Cvoid; Cuint ]));
    ("memset", (Cptr Cvoid, [ Cptr Cvoid; Cint; Cuint ]));
    ("strlen", (Cuint, [ Cptr Cchar ]));
  ]

let compile ?(name = "minic") ?(target = Target.default) (src : string) :
    Ir.modl =
  let prog = Mparser.parse src in
  let m = Ir.mk_module ~name ~target () in
  let g =
    {
      m;
      structs = Hashtbl.create 16;
      enums = Hashtbl.create 16;
      global_tys = Hashtbl.create 32;
      func_sigs = Hashtbl.create 32;
      strings = Hashtbl.create 16;
      string_count = 0;
      env = Types.empty_env ();
      lt = Vmem.Layout.create target;
    }
  in
  (* pass 1: struct types, enums, typedefs into the module *)
  List.iter
    (fun d ->
      match d with
      | Dstruct (tag, fields) ->
          Hashtbl.replace g.structs tag fields;
          Ir.add_typedef m (struct_type_name tag)
            (Types.Struct (List.map (fun (fty, _) -> lty g fty) fields))
      | Denum consts ->
          List.iter (fun (n, v) -> Hashtbl.replace g.enums n v) consts
      | _ -> ())
    prog;
  g.env <- Ir.type_env m;
  g.lt <- Vmem.Layout.for_module m;
  (* pass 2: function signatures (builtins + user), global types *)
  List.iter
    (fun (bname, sig_) -> Hashtbl.replace g.func_sigs bname sig_)
    builtin_sigs;
  List.iter
    (fun d ->
      match d with
      | Dfunc (ret, fname, params, _) ->
          Hashtbl.replace g.func_sigs fname (ret, List.map fst params)
      | Dglobal (ty, gname, _) -> Hashtbl.replace g.global_tys gname ty
      | _ -> ())
    prog;
  (* create IR declarations for builtins *)
  List.iter
    (fun (bname, (ret, params)) ->
      let f =
        Ir.mk_func ~name:bname ~return:(lty g ret)
          ~params:(List.mapi (fun k t -> (Printf.sprintf "a%d" k, lty g t)) params)
          ()
      in
      Ir.add_func m f)
    builtin_sigs;
  (* create IR shells for user functions *)
  List.iter
    (fun d ->
      match d with
      | Dfunc (ret, fname, params, _) when Ir.find_func m fname = None ->
          let f =
            Ir.mk_func ~name:fname ~return:(lty g ret)
              ~params:(List.map (fun (t, n) -> (n, lty g t)) params)
              ()
          in
          Ir.add_func m f
      | _ -> ())
    prog;
  (* globals *)
  List.iter
    (fun d ->
      match d with
      | Dglobal (ty, gname, init) ->
          let want = lty g ty in
          let cinit =
            match init with
            | None -> { Ir.cty = want; ckind = Ir.Czero }
            | Some i -> const_init g ty i
          in
          let gl = Ir.mk_global ~name:gname ~ty:want ~init:cinit () in
          Ir.add_global m gl
      | _ -> ())
    prog;
  (* pass 3: function bodies *)
  List.iter
    (fun d ->
      match d with
      | Dfunc (_, _, _, []) -> () (* declaration only *)
      | Dfunc (ret, fname, params, body) ->
          let f = Option.get (Ir.find_func m fname) in
          let entry = Ir.mk_block ~name:"entry" () in
          Ir.append_block f entry;
          let bld = Builder.create m in
          Builder.position_at_end entry bld;
          let fx =
            {
              g;
              f;
              bld;
              scopes = [ [] ];
              break_targets = [];
              continue_targets = [];
              ret_ty = ret;
              terminated = false;
              block_counter = 0;
            }
          in
          (* spill parameters into allocas so they are mutable lvalues *)
          List.iteri
            (fun k (pty, pname) ->
              let slot = entry_alloca fx pty pname in
              let arg = Ir.Varg (List.nth f.Ir.fargs k) in
              Builder.store fx.bld arg slot;
              add_local fx pname (slot, pty))
            params;
          List.iter (gen_stmt fx) body;
          if not fx.terminated then begin
            match ret with
            | Cvoid -> Builder.ret fx.bld None
            | _ when fname = "main" ->
                Builder.ret fx.bld (Some (Ir.const_int (lty g ret) 0L))
            | t when is_cfp t ->
                Builder.ret fx.bld (Some (Ir.const_float (lty g t) 0.0))
            | Cptr _ -> Builder.ret fx.bld (Some (Ir.const_null (lty g ret)))
            | t -> Builder.ret fx.bld (Some (Ir.const_int (lty g t) 0L))
          end
      | _ -> ())
    prog;
  m

(* compile + verify + optionally optimize: the standard pipeline. A module
   the optimizer leaves invalid raises [Verify.Invalid] with the
   verifier's messages so drivers can report them and exit non-zero. *)
let compile_and_verify ?name ?target ?(optimize = 0) src : Ir.modl =
  let m = compile ?name ?target src in
  (match Verify.verify_module m with
  | [] -> ()
  | errs ->
      failwith
        ("minic produced invalid LLVA: " ^ String.concat "; " errs));
  if optimize > 0 then begin
    ignore (Transform.Passmgr.optimize ~level:optimize m);
    match Verify.verify_module m with
    | [] -> ()
    | errs -> raise (Verify.Invalid errs)
  end;
  m
