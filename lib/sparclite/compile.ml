(* SPARC-lite instruction selection with linear-scan register allocation
   (the paper's "higher quality" back-end). Being a load/store RISC, all
   operations are register-register; large constants are synthesized with
   sethi+add sequences, which together with two-instruction compare+branch
   forms is why the LLVA -> SPARC expansion ratio exceeds the X86 one in
   Table 2.

   Frame layout (FP = SP at entry):
     [FP + 8(k-6)]  incoming stack argument k (k >= 6)
     [FP - 8]       saved FP
     [FP - 16]      saved LR
     [FP - 24 - 8k] spill slot k (value slots, then phi transfer slots)
     below          static allocas, callee-saved register save area *)

open Llva
open Sparc

type cfunc = {
  cf_name : string;
  code : instr array;
  nargs : int;
  frame_slots : int;
}

type cmodule = {
  cm : Ir.modl;
  image : Vmem.Image.t;
  funcs : (string, cfunc) Hashtbl.t;
}

type ctx = {
  m : Ir.modl;
  env : Types.env;
  lt : Vmem.Layout.t;
  img : Vmem.Image.t;
  buf : instr list ref;
  assignment : Codegen.Regalloc.assignment;
  plan : Codegen.Phiplan.t;
  block_ids : (int, int) Hashtbl.t;
  alloca_offsets : (int, int) Hashtbl.t;
  n_value_slots : int;
  total_frame : int;
  saved_int : (reg * int) list; (* reg, fp-relative disp *)
  saved_float : (freg * int) list;
  label_alloc : int ref;
  extra_label_pos : (int, int) Hashtbl.t;
  label_boundary : int ref; (* emit index of the latest label: fusion fence *)
}

(* Emit with a tiny peephole (mirroring the X86-lite emitter): a reload
   of the frame slot just stored becomes a register move (or disappears
   entirely when the registers agree), and "or rd, rs, 0" self-moves
   vanish. A label fences fusion. These fire even with an empty learned
   rewrite table, giving the offline superoptimizer (lib/superopt) a
   clean baseline. *)
let emit ctx i =
  let fused () = List.length !(ctx.buf) > !(ctx.label_boundary) in
  match (i, !(ctx.buf)) with
  | Alu3 (Or, W64, true, rd, rs, Imm 0), _ when rd = rs -> ()
  | Ld (W64, _, rd, b, d), St (W64, rs, b', d') :: _
    when b = b' && d = d' && fused () ->
      if rd <> rs then ctx.buf := Alu3 (Or, W64, true, rd, rs, Imm 0) :: !(ctx.buf)
  | _ -> ctx.buf := i :: !(ctx.buf)

let fresh_label ctx =
  let l = !(ctx.label_alloc) in
  ctx.label_alloc := l + 1;
  l

let place_label ctx l =
  ctx.label_boundary := List.length !(ctx.buf);
  Hashtbl.replace ctx.extra_label_pos l (List.length !(ctx.buf))

let slot_disp k = -24 - (8 * k)
let label_of ctx (b : Ir.block) = Hashtbl.find ctx.block_ids b.Ir.blid

let is_float_ty ctx ty =
  match Types.resolve ctx.env ty with
  | Types.Float | Types.Double -> true
  | _ -> false

let is_single ctx ty = Types.equal (Types.resolve ctx.env ty) Types.Float
let width_of ctx ty = width_of_type ctx.m.Ir.target (Types.resolve ctx.env ty)

let signed_of ctx ty =
  match Types.resolve ctx.env ty with
  | t when Types.is_integer t -> Types.is_signed t
  | _ -> false

let symbol_addr ctx name =
  match Vmem.Image.symbol_address ctx.img name with
  | Some a -> a
  | None -> invalid_arg ("sparclite: unresolved symbol " ^ name)

let scalar_const_bits ctx (c : Ir.const) : int64 =
  match c.Ir.ckind with
  | Ir.Cbool b -> if b then 1L else 0L
  | Ir.Cint v -> v
  | Ir.Cnull | Ir.Czero -> 0L
  | Ir.Cglobal_ref name -> symbol_addr ctx name
  | _ -> invalid_arg "sparclite: bad constant operand"

(* Synthesize an arbitrary 64-bit constant into [rd] with real RISC
   sequences: 1 instruction for imm13, 2 for 32-bit, up to 6 for 64. *)
let emit_const ctx rd (v : int64) =
  if fits_imm13 v then emit ctx (Alu3 (Or, W64, true, rd, zero, Imm (Int64.to_int v)))
  else if Int64.compare v (-2147483648L) >= 0 && Int64.compare v 2147483647L <= 0
  then begin
    let lo = Int64.to_int (Int64.logand v 0xFFFL) in
    let hi = Int64.sub v (Int64.of_int lo) in
    emit ctx (Sethi (rd, hi));
    if lo <> 0 then emit ctx (Alu3 (Add, W64, true, rd, rd, Imm lo))
  end
  else begin
    let upper = Int64.shift_right v 32 in
    let lower = Int64.logand v 0xFFFFFFFFL in
    let lo_u = Int64.to_int (Int64.logand upper 0xFFFL) in
    emit ctx (Sethi (rd, Int64.sub upper (Int64.of_int lo_u)));
    if lo_u <> 0 then emit ctx (Alu3 (Add, W64, true, rd, rd, Imm lo_u));
    emit ctx (Alu3 (Sll, W64, false, rd, rd, Imm 32));
    let lo_l = Int64.to_int (Int64.logand lower 0xFFFL) in
    emit ctx (Sethi (t4, Int64.sub lower (Int64.of_int lo_l)));
    if lo_l <> 0 then emit ctx (Alu3 (Add, W64, true, t4, t4, Imm lo_l));
    emit ctx (Alu3 (Add, W64, true, rd, rd, Rs t4))
  end

(* Symbol addresses use the SPARC V9 medium-code-model sequence
   (sethi %h44 / or %m44 / sllx 12 / or %l44): native code cannot assume
   link addresses fit small immediates, so every global or function
   address costs four instructions -- a real contributor to the RISC
   expansion ratio in the paper's Table 2. *)
let emit_symbol_addr ctx rd (addr : int64) =
  let v = Int64.shift_right_logical addr 12 in
  let low10 = Int64.to_int (Int64.logand v 0x3FFL) in
  emit ctx (Sethi (rd, Int64.sub v (Int64.of_int low10)));
  emit ctx (Alu3 (Add, W64, true, rd, rd, Imm low10));
  emit ctx (Alu3 (Sll, W64, false, rd, rd, Imm 12));
  emit ctx (Alu3 (Add, W64, true, rd, rd, Imm (Int64.to_int (Int64.logand addr 0xFFFL))))

(* Bring a value into a register; prefers its home register. *)
let reg_of ctx (v : Ir.value) ~(scratch : reg) : reg =
  match v with
  | Ir.Const ({ Ir.ckind = Ir.Cglobal_ref _; _ } as c) ->
      emit_symbol_addr ctx scratch (scalar_const_bits ctx c);
      scratch
  | Ir.Const c ->
      let bits = scalar_const_bits ctx c in
      if Int64.equal bits 0L then zero
      else begin
        emit_const ctx scratch bits;
        scratch
      end
  | Ir.Vundef _ -> zero
  | Ir.Vglobal g ->
      emit_symbol_addr ctx scratch (symbol_addr ctx g.Ir.gname);
      scratch
  | Ir.Vfunc f ->
      emit_symbol_addr ctx scratch (symbol_addr ctx f.Ir.fname);
      scratch
  | Ir.Vreg i -> (
      match Codegen.Regalloc.location_opt ctx.assignment i.Ir.iid with
      | Some (Codegen.Regalloc.Reg r) -> r
      | Some (Codegen.Regalloc.Slot s) ->
          emit ctx (Ld (W64, false, scratch, fp, slot_disp s));
          scratch
      | None -> zero)
  | Ir.Varg a -> (
      match Codegen.Regalloc.location_opt ctx.assignment a.Ir.aid with
      | Some (Codegen.Regalloc.Reg r) -> r
      | Some (Codegen.Regalloc.Slot s) ->
          emit ctx (Ld (W64, false, scratch, fp, slot_disp s));
          scratch
      | None -> zero)
  | Ir.Vblock _ -> invalid_arg "sparclite: label operand in value context"

(* Second ALU operand: a small immediate or a register. *)
let operand_of ctx (v : Ir.value) ~(scratch : reg) : operand =
  match v with
  | Ir.Const c ->
      let bits = scalar_const_bits ctx c in
      if fits_imm13 bits then Imm (Int64.to_int bits)
      else Rs (reg_of ctx v ~scratch)
  | Ir.Vundef _ -> Imm 0
  | _ -> Rs (reg_of ctx v ~scratch)

(* Destination register for a value: its home register, or a scratch that
   the caller must then [finish] to spill. *)
let dst_of ctx vid ~(scratch : reg) =
  match Codegen.Regalloc.location_opt ctx.assignment vid with
  | Some (Codegen.Regalloc.Reg r) -> (r, None)
  | Some (Codegen.Regalloc.Slot s) -> (scratch, Some s)
  | None -> (scratch, None)

let finish ctx (rd, spill) =
  match spill with
  | Some s -> emit ctx (St (W64, rd, fp, slot_disp s))
  | None -> ()

(* float helpers; floats live in float registers or 8-byte slots *)
let freg_of ctx (v : Ir.value) ~(scratch : freg) : freg =
  match v with
  | Ir.Const { ckind = Ir.Cfloat x; Ir.cty } ->
      emit ctx (Fconst (scratch, Eval.round_float cty x));
      scratch
  | Ir.Const { ckind = Ir.Czero; _ } | Ir.Vundef _ ->
      emit ctx (Fconst (scratch, 0.0));
      scratch
  | Ir.Vreg i -> (
      match Codegen.Regalloc.location_opt ctx.assignment i.Ir.iid with
      | Some (Codegen.Regalloc.Reg r) -> r
      | Some (Codegen.Regalloc.Slot s) ->
          emit ctx (Fld (false, scratch, fp, slot_disp s));
          scratch
      | None ->
          emit ctx (Fconst (scratch, 0.0));
          scratch)
  | Ir.Varg a -> (
      match Codegen.Regalloc.location_opt ctx.assignment a.Ir.aid with
      | Some (Codegen.Regalloc.Reg r) -> r
      | Some (Codegen.Regalloc.Slot s) ->
          emit ctx (Fld (false, scratch, fp, slot_disp s));
          scratch
      | None ->
          emit ctx (Fconst (scratch, 0.0));
          scratch)
  | _ -> invalid_arg "sparclite: bad float operand"

let fdst_of ctx vid ~(scratch : freg) =
  match Codegen.Regalloc.location_opt ctx.assignment vid with
  | Some (Codegen.Regalloc.Reg r) -> (r, None)
  | Some (Codegen.Regalloc.Slot s) -> (scratch, Some s)
  | None -> (scratch, None)

let ffinish ctx (fd, spill) =
  match spill with
  | Some s -> emit ctx (Fst (false, fd, fp, slot_disp s))
  | None -> ()

let cc_of_cmp signed (c : Ir.cmp) =
  match (c, signed) with
  | Ir.Eq, _ -> Eq
  | Ir.Ne, _ -> Ne
  | Ir.Lt, true -> Lt
  | Ir.Gt, true -> Gt
  | Ir.Le, true -> Le
  | Ir.Ge, true -> Ge
  | Ir.Lt, false -> Ltu
  | Ir.Gt, false -> Gtu
  | Ir.Le, false -> Leu
  | Ir.Ge, false -> Geu

(* phi transfer slots live after the value slots *)
let transfer_disp ctx t = slot_disp (ctx.n_value_slots + t)

let copy_to_transfer ctx (c : Codegen.Phiplan.edge_copy) =
  if is_float_ty ctx c.Codegen.Phiplan.phi.Ir.ity then begin
    let f = freg_of ctx c.Codegen.Phiplan.src ~scratch:0 in
    emit ctx (Fst (false, f, fp, transfer_disp ctx c.Codegen.Phiplan.transfer_slot))
  end
  else begin
    let r = reg_of ctx c.Codegen.Phiplan.src ~scratch:t1 in
    emit ctx (St (W64, r, fp, transfer_disp ctx c.Codegen.Phiplan.transfer_slot))
  end

let copy_from_transfer ctx (slot_idx, (phi : Ir.instr)) =
  if is_float_ty ctx phi.Ir.ity then begin
    let fd, spill = fdst_of ctx phi.Ir.iid ~scratch:0 in
    emit ctx (Fld (false, fd, fp, transfer_disp ctx slot_idx));
    ffinish ctx (fd, spill)
  end
  else begin
    let rd, spill = dst_of ctx phi.Ir.iid ~scratch:t1 in
    emit ctx (Ld (W64, false, rd, fp, transfer_disp ctx slot_idx));
    finish ctx (rd, spill)
  end

(* ---------- calls ---------- *)

let lower_call ctx (i : Ir.instr) ~except =
  let callee = Ir.call_callee i in
  let args = Ir.call_args i in
  let n = List.length args in
  let extra = max 0 (n - n_arg_regs) in
  if extra > 0 then emit ctx (AddSp (-8 * extra));
  (* stack arguments first (they may use scratch freely) *)
  List.iteri
    (fun k arg ->
      if k >= n_arg_regs then begin
        let j = k - n_arg_regs in
        if is_float_ty ctx (Ir.type_of_value arg) then begin
          let f = freg_of ctx arg ~scratch:0 in
          emit ctx (Mvfi (t1, f));
          emit ctx (St (W64, t1, sp, 8 * j))
        end
        else begin
          let r = reg_of ctx arg ~scratch:t1 in
          emit ctx (St (W64, r, sp, 8 * j))
        end
      end)
    args;
  (* then register arguments r8..r13, floats as raw bits *)
  List.iteri
    (fun k arg ->
      if k < n_arg_regs then
        if is_float_ty ctx (Ir.type_of_value arg) then begin
          let f = freg_of ctx arg ~scratch:0 in
          emit ctx (Mvfi (arg_reg k, f))
        end
        else
          let r = reg_of ctx arg ~scratch:t1 in
          if r <> arg_reg k then
            emit ctx (Alu3 (Or, W64, true, arg_reg k, r, Imm 0))
          else ())
    args;
  (match (callee, except) with
  | Ir.Vfunc f, None -> emit ctx (CallSym f.Ir.fname)
  | Ir.Vfunc f, Some lbl -> emit ctx (CallSymI (f.Ir.fname, lbl))
  | _, None ->
      let r = reg_of ctx callee ~scratch:t1 in
      emit ctx (CallInd r)
  | _, Some lbl ->
      let r = reg_of ctx callee ~scratch:t1 in
      emit ctx (CallIndI (r, lbl)));
  if extra > 0 then emit ctx (AddSp (8 * extra));
  if not (Types.equal i.Ir.ity Types.Void) then
    if is_float_ty ctx i.Ir.ity then begin
      let fd, spill = fdst_of ctx i.Ir.iid ~scratch:0 in
      if fd <> 0 then emit ctx (Fmovs (fd, 0));
      ffinish ctx (fd, spill)
    end
    else begin
      let rd, spill = dst_of ctx i.Ir.iid ~scratch:t1 in
      if rd <> ret then emit ctx (Alu3 (Or, W64, true, rd, ret, Imm 0));
      finish ctx (rd, spill)
    end

(* ---------- instruction selection ---------- *)

let lower_instr ctx (i : Ir.instr) =
  match i.Ir.op with
  | Ir.Phi -> ()
  | Ir.Binop op ->
      let ty = i.Ir.ity in
      if is_float_ty ctx ty then begin
        let fop =
          match op with
          | Ir.Add -> Fadd
          | Ir.Sub -> Fsub
          | Ir.Mul -> Fmul
          | Ir.Div -> Fdiv
          | Ir.Rem -> Frem
          | _ -> invalid_arg "sparclite: bitwise op on float"
        in
        let fa = freg_of ctx i.Ir.operands.(0) ~scratch:0 in
        let fb = freg_of ctx i.Ir.operands.(1) ~scratch:1 in
        let fd, spill = fdst_of ctx i.Ir.iid ~scratch:2 in
        emit ctx (Falu (fop, is_single ctx ty, fd, fa, fb));
        ffinish ctx (fd, spill)
      end
      else begin
        let w = width_of ctx ty and s = signed_of ctx ty in
        let aop =
          match op with
          | Ir.Add -> Add
          | Ir.Sub -> Sub
          | Ir.Mul -> Mul
          | Ir.Div -> Div
          | Ir.Rem -> Rem
          | Ir.And -> And
          | Ir.Or -> Or
          | Ir.Xor -> Xor
          | Ir.Shl -> Sll
          | Ir.Shr -> if s then Sra else Srl
        in
        let rs1 = reg_of ctx i.Ir.operands.(0) ~scratch:t1 in
        let o2 = operand_of ctx i.Ir.operands.(1) ~scratch:t2 in
        let rd, spill = dst_of ctx i.Ir.iid ~scratch:t3 in
        (match op with
        | Ir.Div | Ir.Rem when not i.Ir.exceptions_enabled ->
            (* non-trapping division: zero divisor yields 0 *)
            let skip = fresh_label ctx and done_ = fresh_label ctx in
            (match o2 with
            | Rs r -> emit ctx (Cmp (w, s, r, Imm 0))
            | Imm v ->
                emit_const ctx t4 (Int64.of_int v);
                emit ctx (Cmp (w, s, t4, Imm 0)));
            emit ctx (Bcc (Eq, skip));
            emit ctx (Alu3 (aop, w, s, rd, rs1, o2));
            emit ctx (Ba done_);
            place_label ctx skip;
            emit ctx (Alu3 (Or, W64, true, rd, zero, Imm 0));
            place_label ctx done_
        | _ -> emit ctx (Alu3 (aop, w, s, rd, rs1, o2)));
        finish ctx (rd, spill)
      end
  | Ir.Setcc c ->
      let opty = Types.resolve ctx.env (Ir.type_of_value i.Ir.operands.(0)) in
      if Types.is_fp opty then begin
        let fa = freg_of ctx i.Ir.operands.(0) ~scratch:0 in
        let fb = freg_of ctx i.Ir.operands.(1) ~scratch:1 in
        emit ctx (Fcmp (fa, fb));
        let rd, spill = dst_of ctx i.Ir.iid ~scratch:t1 in
        emit ctx (Movcc (cc_of_cmp true c, rd));
        finish ctx (rd, spill)
      end
      else begin
        let w = width_of ctx opty and s = signed_of ctx opty in
        let rs1 = reg_of ctx i.Ir.operands.(0) ~scratch:t1 in
        let o2 = operand_of ctx i.Ir.operands.(1) ~scratch:t2 in
        emit ctx (Cmp (w, s, rs1, o2));
        let rd, spill = dst_of ctx i.Ir.iid ~scratch:t1 in
        emit ctx (Movcc (cc_of_cmp s c, rd));
        finish ctx (rd, spill)
      end
  | Ir.Load ->
      let elem = Types.resolve ctx.env i.Ir.ity in
      let base = reg_of ctx i.Ir.operands.(0) ~scratch:t1 in
      let guard =
        if i.Ir.exceptions_enabled then None
        else begin
          let skip = fresh_label ctx and done_ = fresh_label ctx in
          emit ctx (Cmp (W64, false, base, Imm 0));
          emit ctx (Bcc (Eq, skip));
          Some (skip, done_)
        end
      in
      if Types.is_fp elem then begin
        let fd, spill = fdst_of ctx i.Ir.iid ~scratch:0 in
        emit ctx (Fld (is_single ctx elem, fd, base, 0));
        (match guard with
        | Some (skip, done_) ->
            emit ctx (Ba done_);
            place_label ctx skip;
            emit ctx (Fconst (fd, 0.0));
            place_label ctx done_
        | None -> ());
        ffinish ctx (fd, spill)
      end
      else begin
        let rd, spill = dst_of ctx i.Ir.iid ~scratch:t2 in
        emit ctx (Ld (width_of ctx elem, signed_of ctx elem, rd, base, 0));
        (match guard with
        | Some (skip, done_) ->
            emit ctx (Ba done_);
            place_label ctx skip;
            emit ctx (Alu3 (Or, W64, true, rd, zero, Imm 0));
            place_label ctx done_
        | None -> ());
        finish ctx (rd, spill)
      end
  | Ir.Store ->
      let vty = Types.resolve ctx.env (Ir.type_of_value i.Ir.operands.(0)) in
      let base = reg_of ctx i.Ir.operands.(1) ~scratch:t1 in
      let skip =
        if i.Ir.exceptions_enabled then None
        else begin
          let skip = fresh_label ctx in
          emit ctx (Cmp (W64, false, base, Imm 0));
          emit ctx (Bcc (Eq, skip));
          Some skip
        end
      in
      if Types.is_fp vty then begin
        let f = freg_of ctx i.Ir.operands.(0) ~scratch:0 in
        emit ctx (Fst (is_single ctx vty, f, base, 0))
      end
      else begin
        let r = reg_of ctx i.Ir.operands.(0) ~scratch:t2 in
        emit ctx (St (width_of ctx vty, r, base, 0))
      end;
      (match skip with Some l -> place_label ctx l | None -> ())
  | Ir.Getelementptr ->
      let base = reg_of ctx i.Ir.operands.(0) ~scratch:t1 in
      (* accumulate into t1 *)
      if base <> t1 then emit ctx (Alu3 (Or, W64, true, t1, base, Imm 0));
      let elem = Types.pointee ctx.env (Ir.type_of_value i.Ir.operands.(0)) in
      let disp = ref 0 in
      let cur_ty = ref elem in
      Array.iteri
        (fun k op ->
          if k >= 1 then begin
            let scale_var sz =
              let idx = reg_of ctx op ~scratch:t2 in
              if sz = 1 then emit ctx (Alu3 (Add, W64, true, t1, t1, Rs idx))
              else begin
                let rec log2 v k = if v = 1 then Some k else if v land 1 = 1 then None else log2 (v / 2) (k + 1) in
                (match log2 sz 0 with
                | Some sh ->
                    emit ctx (Alu3 (Sll, W64, false, t3, idx, Imm sh))
                | None ->
                    emit_const ctx t4 (Int64.of_int sz);
                    emit ctx (Alu3 (Mul, W64, true, t3, idx, Rs t4)));
                emit ctx (Alu3 (Add, W64, true, t1, t1, Rs t3))
              end
            in
            if k = 1 then begin
              let sz = Vmem.Layout.size_of ctx.lt elem in
              match op with
              | Ir.Const { ckind = Ir.Cint n; _ } ->
                  disp := !disp + (Int64.to_int n * sz)
              | _ -> scale_var sz
            end
            else
              match Types.resolve ctx.env !cur_ty with
              | Types.Struct fields ->
                  let fk =
                    match op with
                    | Ir.Const { ckind = Ir.Cint n; _ } -> Int64.to_int n
                    | _ -> invalid_arg "sparclite: variable struct index"
                  in
                  disp := !disp + Vmem.Layout.field_offset ctx.lt fields fk;
                  cur_ty := List.nth fields fk
              | Types.Array (_, e) ->
                  (match op with
                  | Ir.Const { ckind = Ir.Cint n; _ } ->
                      disp := !disp + (Int64.to_int n * Vmem.Layout.size_of ctx.lt e)
                  | _ -> scale_var (Vmem.Layout.size_of ctx.lt e));
                  cur_ty := e
              | t -> invalid_arg ("sparclite: gep into " ^ Types.to_string t)
          end)
        i.Ir.operands;
      if !disp <> 0 then
        if fits_imm13 (Int64.of_int !disp) then
          emit ctx (Alu3 (Add, W64, true, t1, t1, Imm !disp))
        else begin
          emit_const ctx t4 (Int64.of_int !disp);
          emit ctx (Alu3 (Add, W64, true, t1, t1, Rs t4))
        end;
      if ctx.m.Ir.target.Target.ptr_size = 4 then
        emit ctx (Alu3 (Add, W32, false, t1, t1, Imm 0));
      let rd, spill = dst_of ctx i.Ir.iid ~scratch:t1 in
      if rd <> t1 then emit ctx (Alu3 (Or, W64, true, rd, t1, Imm 0));
      finish ctx ((if rd <> t1 then rd else t1), spill)
  | Ir.Alloca -> (
      match Hashtbl.find_opt ctx.alloca_offsets i.Ir.iid with
      | Some off ->
          let rd, spill = dst_of ctx i.Ir.iid ~scratch:t1 in
          emit ctx (Alu3 (Add, W64, true, rd, fp, Imm (-off)));
          finish ctx (rd, spill)
      | None ->
          let elem = Types.pointee ctx.env i.Ir.ity in
          let sz = Vmem.Layout.size_of ctx.lt elem in
          let cnt = reg_of ctx i.Ir.operands.(0) ~scratch:t1 in
          if sz = 1 then emit ctx (Alu3 (Or, W64, true, t2, cnt, Imm 0))
          else begin
            emit_const ctx t4 (Int64.of_int sz);
            emit ctx (Alu3 (Mul, W64, true, t2, cnt, Rs t4))
          end;
          emit ctx (Alu3 (Add, W64, true, t2, t2, Imm 7));
          emit ctx (Alu3 (And, W64, true, t2, t2, Imm (-8)));
          let rd, spill = dst_of ctx i.Ir.iid ~scratch:t3 in
          emit ctx (SubSpDyn (rd, t2));
          finish ctx (rd, spill))
  | Ir.Cast ->
      let src_ty = Types.resolve ctx.env (Ir.type_of_value i.Ir.operands.(0)) in
      let dst_ty = Types.resolve ctx.env i.Ir.ity in
      if Types.is_fp dst_ty then
        if Types.is_fp src_ty then begin
          let fs = freg_of ctx i.Ir.operands.(0) ~scratch:0 in
          let fd, spill = fdst_of ctx i.Ir.iid ~scratch:1 in
          if fd <> fs then emit ctx (Fmovs (fd, fs));
          if is_single ctx dst_ty then emit ctx (Fround fd);
          ffinish ctx (fd, spill)
        end
        else begin
          let r = reg_of ctx i.Ir.operands.(0) ~scratch:t1 in
          let fd, spill = fdst_of ctx i.Ir.iid ~scratch:0 in
          emit ctx (Cvtif (fd, r, Types.is_signed src_ty));
          if is_single ctx dst_ty then emit ctx (Fround fd);
          ffinish ctx (fd, spill)
        end
      else if Types.is_fp src_ty then begin
        let f = freg_of ctx i.Ir.operands.(0) ~scratch:0 in
        let rd, spill = dst_of ctx i.Ir.iid ~scratch:t1 in
        emit ctx (Cvtfi (rd, f, width_of ctx dst_ty, signed_of ctx dst_ty));
        finish ctx (rd, spill)
      end
      else begin
        let r = reg_of ctx i.Ir.operands.(0) ~scratch:t1 in
        let rd, spill = dst_of ctx i.Ir.iid ~scratch:t2 in
        (match dst_ty with
        | Types.Bool ->
            emit ctx (Cmp (W64, false, r, Imm 0));
            emit ctx (Movcc (Ne, rd))
        | Types.Pointer _ ->
            if ctx.m.Ir.target.Target.ptr_size = 4 then
              emit ctx (Alu3 (Add, W32, false, rd, r, Imm 0))
            else if rd <> r then emit ctx (Alu3 (Or, W64, true, rd, r, Imm 0))
            else ()
        | t when Types.is_integer t ->
            emit ctx (Alu3 (Add, width_of ctx t, Types.is_signed t, rd, r, Imm 0))
        | _ -> if rd <> r then emit ctx (Alu3 (Or, W64, true, rd, r, Imm 0)));
        finish ctx (rd, spill)
      end
  | Ir.Call -> lower_call ctx i ~except:None
  | Ir.Invoke ->
      let except = label_of ctx (Ir.block_of_value i.Ir.operands.(2)) in
      let normal = label_of ctx (Ir.block_of_value i.Ir.operands.(1)) in
      lower_call ctx i ~except:(Some except);
      emit ctx (Ba normal)
  | Ir.Unwind -> emit ctx UnwindS
  | Ir.Ret ->
      if Array.length i.Ir.operands = 1 then begin
        let v = i.Ir.operands.(0) in
        if is_float_ty ctx (Ir.type_of_value v) then begin
          let f = freg_of ctx v ~scratch:0 in
          if f <> 0 then emit ctx (Fmovs (0, f))
        end
        else begin
          let r = reg_of ctx v ~scratch:t1 in
          if r <> ret then emit ctx (Alu3 (Or, W64, true, ret, r, Imm 0))
        end
      end;
      (* epilogue: restore callee-saved, then lr/fp/sp *)
      List.iter
        (fun (r, d) -> emit ctx (Ld (W64, false, r, fp, d)))
        ctx.saved_int;
      List.iter
        (fun (f, d) -> emit ctx (Fld (false, f, fp, d)))
        ctx.saved_float;
      emit ctx (Ld (W64, false, lr, fp, -16));
      emit ctx (Ld (W64, false, t4, fp, -8));
      emit ctx (Alu3 (Or, W64, true, sp, fp, Imm 0));
      emit ctx (Alu3 (Or, W64, true, fp, t4, Imm 0));
      emit ctx RetS
  | Ir.Br ->
      if Array.length i.Ir.operands = 1 then
        emit ctx (Ba (label_of ctx (Ir.block_of_value i.Ir.operands.(0))))
      else begin
        let c = reg_of ctx i.Ir.operands.(0) ~scratch:t1 in
        emit ctx (Cmp (W8, false, c, Imm 0));
        emit ctx (Bcc (Ne, label_of ctx (Ir.block_of_value i.Ir.operands.(1))));
        emit ctx (Ba (label_of ctx (Ir.block_of_value i.Ir.operands.(2))))
      end
  | Ir.Mbr ->
      let w = width_of ctx (Ir.type_of_value i.Ir.operands.(0)) in
      let s = signed_of ctx (Ir.type_of_value i.Ir.operands.(0)) in
      let sel = reg_of ctx i.Ir.operands.(0) ~scratch:t1 in
      let rec cases k =
        if k + 1 < Array.length i.Ir.operands then begin
          (match i.Ir.operands.(k) with
          | Ir.Const { ckind = Ir.Cint c; _ } ->
              (if fits_imm13 c then emit ctx (Cmp (w, s, sel, Imm (Int64.to_int c)))
               else begin
                 emit_const ctx t4 c;
                 emit ctx (Cmp (w, s, sel, Rs t4))
               end);
              emit ctx
                (Bcc (Eq, label_of ctx (Ir.block_of_value i.Ir.operands.(k + 1))))
          | _ -> ());
          cases (k + 2)
        end
      in
      cases 2;
      emit ctx (Ba (label_of ctx (Ir.block_of_value i.Ir.operands.(1))))



let negate_cc = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Ge -> Lt
  | Gt -> Le
  | Le -> Gt
  | Ltu -> Geu
  | Geu -> Ltu
  | Gtu -> Leu
  | Leu -> Gtu

(* "bcc a; ba b" where a is the fall-through: invert the condition so the
   unconditional jump becomes removable by [relax] *)
let invert_branches (code : instr array) =
  let n = Array.length code in
  Array.iteri
    (fun k i ->
      if k + 2 <= n - 1 || k + 1 <= n - 1 then
        match (i, if k + 1 < n then Some code.(k + 1) else None) with
        | Bcc (cc, a), Some (Ba b) when a = k + 2 ->
            code.(k) <- Bcc (negate_cc cc, b);
            code.(k + 1) <- Ba a
        | _ -> ())
    code;
  code

(* Remove jumps to the immediately following instruction (fall-through),
   remapping all label targets; block layout thus affects both code size
   and cycle counts, which the LLEE trace optimizer exploits. *)
let rec relax (code : instr array) =
  let n = Array.length code in
  let rec find k =
    if k >= n then None
    else
      match code.(k) with
      | Ba l when l = k + 1 -> Some k
      | _ -> find (k + 1)
  in
  match find 0 with
  | None -> code
  | Some k ->
      let adjust l = if l > k then l - 1 else l in
      let out =
        Array.init (n - 1) (fun j ->
            let i = if j < k then code.(j) else code.(j + 1) in
            match i with
            | Ba l -> Ba (adjust l)
            | Bcc (cc, l) -> Bcc (cc, adjust l)
            | CallSymI (s, l) -> CallSymI (s, adjust l)
            | CallIndI (r, l) -> CallIndI (r, adjust l)
            | other -> other)
      in
      relax out

(* ---------- learned peephole rewriting ----------

   Mirror of the X86-lite machinery (see lib/x86lite/compile.ml for the
   soundness argument): FP-relative 8-byte-aligned full-word frame slots
   are renamed to sentinel displacements [slot_var_base + 8k] so one
   oracle-verified rule covers every concrete frame offset. Windows
   touching SP, FP or LR as data, non-FP or unaligned memory, traps, or
   control flow stay concrete and match no rule. *)

let slot_var_base = 1_000_000

exception Not_canon

let canon_disp vars d =
  if d mod 8 = 0 && abs d < slot_var_base then begin
    let k =
      match List.assoc_opt d !vars with
      | Some k -> k
      | None ->
          let k = List.length !vars in
          vars := !vars @ [ (d, k) ];
          k
    in
    slot_var_base + (8 * k)
  end
  else raise Not_canon

let canon_instr vars i =
  let rok r = if r = sp || r = fp || r = lr then raise Not_canon else r in
  let ook = function Rs r -> Rs (rok r) | Imm v -> Imm v in
  match i with
  | Alu3 ((Div | Rem), _, _, _, _, _) -> raise Not_canon
  | Alu3 (op, w, s, rd, rs1, o) -> Alu3 (op, w, s, rok rd, rok rs1, ook o)
  | Sethi (rd, v) -> Sethi (rok rd, v)
  | Ld (W64, s, rd, b, d) when b = fp ->
      Ld (W64, s, rok rd, fp, canon_disp vars d)
  | St (W64, rs, b, d) when b = fp -> St (W64, rok rs, fp, canon_disp vars d)
  | Cmp (w, s, r, o) -> Cmp (w, s, rok r, ook o)
  | Movcc (cc, rd) -> Movcc (cc, rok rd)
  | _ -> raise Not_canon

let canon_window (w : instr list) : instr list * int array =
  let vars = ref [] in
  match List.map (canon_instr vars) w with
  | cw -> (cw, Array.of_list (List.map fst !vars))
  | exception Not_canon -> (w, [||])

let concretize (vars : int array) (w : instr list) : instr list =
  let disp d =
    if d >= slot_var_base then begin
      let k = (d - slot_var_base) / 8 in
      if k >= Array.length vars then raise Not_canon;
      vars.(k)
    end
    else d
  in
  List.map
    (fun i ->
      match i with
      | Ld (w_, s, rd, b, d) -> Ld (w_, s, rd, b, disp d)
      | St (w_, rs, b, d) -> St (w_, rs, b, disp d)
      | i -> i)
    w

type peep_stats = { mutable rewrites : int; mutable cycles_saved : int }

let fresh_peep_stats () = { rewrites = 0; cycles_saved = 0 }

let window_cycles w = List.fold_left (fun acc i -> acc + cycles_of i) 0 w

let apply_rules_pass ~index ~max_len (code : instr array) =
  let n = Array.length code in
  let is_target = Array.make (n + 2) false in
  Array.iter
    (function
      | Ba l | Bcc (_, l) | CallSymI (_, l) | CallIndI (_, l) ->
          if l >= 0 && l < n + 2 then is_target.(l) <- true
      | _ -> ())
    code;
  let out = ref [] and out_len = ref 0 in
  let new_index = Array.make (n + 1) 0 in
  let rewrites = ref 0 and saved = ref 0 in
  let i = ref 0 in
  while !i < n do
    new_index.(!i) <- !out_len;
    let applied = ref false in
    let k = ref (min max_len (n - !i)) in
    while (not !applied) && !k >= 1 do
      let interior = ref false in
      for j = !i + 1 to !i + !k - 1 do
        if is_target.(j) then interior := true
      done;
      (if not !interior then
         let window = Array.to_list (Array.sub code !i !k) in
         let cw, vars = canon_window window in
         match Hashtbl.find_opt index cw with
         | Some rhs -> (
             match concretize vars rhs with
             | rhs_c ->
                 let before = window_cycles window
                 and after = window_cycles rhs_c in
                 if after < before then begin
                   List.iter
                     (fun ins ->
                       out := ins :: !out;
                       incr out_len)
                     rhs_c;
                   incr rewrites;
                   saved := !saved + (before - after);
                   i := !i + !k;
                   applied := true
                 end
             | exception Not_canon -> ())
         | None -> ());
      if not !applied then decr k
    done;
    if not !applied then begin
      out := code.(!i) :: !out;
      incr out_len;
      incr i
    end
  done;
  new_index.(n) <- !out_len;
  let remap l = if l >= 0 && l <= n then new_index.(min l n) else l in
  let arr =
    Array.map
      (function
        | Ba l -> Ba (remap l)
        | Bcc (cc, l) -> Bcc (cc, remap l)
        | CallSymI (s, l) -> CallSymI (s, remap l)
        | CallIndI (r, l) -> CallIndI (r, remap l)
        | other -> other)
      (Array.of_list (List.rev !out))
  in
  (arr, !rewrites, !saved)

let apply_rules ~(rules : (instr list * instr list) list)
    (code : instr array) : instr array * int * int =
  if rules = [] then (code, 0, 0)
  else begin
    let index = Hashtbl.create 64 in
    let max_len = ref 1 in
    List.iter
      (fun (lhs, rhs) ->
        if lhs <> [] && not (Hashtbl.mem index lhs) then begin
          Hashtbl.replace index lhs rhs;
          max_len := max !max_len (List.length lhs)
        end)
      rules;
    let rec go code total_r total_s passes =
      if passes = 0 then (code, total_r, total_s)
      else
        let code', r, s = apply_rules_pass ~index ~max_len:!max_len code in
        if r = 0 then (code', total_r, total_s)
        else go code' (total_r + r) (total_s + s) (passes - 1)
    in
    go code 0 0 4
  end

(* ---------- function compilation ---------- *)

let compile_function (m : Ir.modl) (img : Vmem.Image.t)
    ?(spill_everything = false) ?(peep = []) ?peep_stats (f : Ir.func) : cfunc =
  let env = Ir.type_env m in
  let lt = Vmem.Layout.for_module m in
  let ivs = Codegen.Intervals.build ~env f in
  let assignment =
    if spill_everything then Codegen.Regalloc.spill_everything ivs
    else
      Codegen.Regalloc.linear_scan ~int_regs:allocatable_int
        ~float_regs:allocatable_float ivs
  in
  let plan = Codegen.Phiplan.build f in
  let alloca_offsets = Hashtbl.create 8 in
  let n_value_slots = assignment.Codegen.Regalloc.n_slots in
  let base = 24 + (8 * (n_value_slots + plan.Codegen.Phiplan.n_transfer_slots)) in
  let alloca_area = ref 0 in
  Ir.iter_instrs
    (fun i ->
      if i.Ir.op = Ir.Alloca && Array.length i.Ir.operands = 0 then begin
        let elem = Types.pointee env i.Ir.ity in
        let sz = (Vmem.Layout.size_of lt elem + 7) / 8 * 8 in
        alloca_area := !alloca_area + sz;
        Hashtbl.replace alloca_offsets i.Ir.iid (base + !alloca_area)
      end)
    f;
  let saved_int = ref [] and saved_float = ref [] in
  let save_area = ref 0 in
  List.iter
    (fun r ->
      save_area := !save_area + 8;
      saved_int := (r, -(base + !alloca_area + !save_area)) :: !saved_int)
    assignment.Codegen.Regalloc.used_regs_int;
  List.iter
    (fun fr ->
      save_area := !save_area + 8;
      saved_float := (fr, -(base + !alloca_area + !save_area)) :: !saved_float)
    assignment.Codegen.Regalloc.used_regs_float;
  let total_frame = base + !alloca_area + !save_area in
  let block_ids = Hashtbl.create 16 in
  List.iteri (fun k (b : Ir.block) -> Hashtbl.replace block_ids b.Ir.blid k) f.Ir.fblocks;
  let ctx =
    {
      m;
      env;
      lt;
      img;
      buf = ref [];
      assignment;
      plan;
      block_ids;
      alloca_offsets;
      n_value_slots;
      total_frame;
      saved_int = !saved_int;
      saved_float = !saved_float;
      label_alloc = ref (List.length f.Ir.fblocks);
      extra_label_pos = Hashtbl.create 8;
      label_boundary = ref 0;
    }
  in
  (* prologue: save fp and lr relative to the entry sp, establish frame *)
  emit ctx (St (W64, fp, sp, -8));
  emit ctx (St (W64, lr, sp, -16));
  emit ctx (Alu3 (Or, W64, true, fp, sp, Imm 0));
  emit ctx (AddSp (-total_frame));
  List.iter (fun (r, d) -> emit ctx (St (W64, r, fp, d))) ctx.saved_int;
  List.iter (fun (fr, d) -> emit ctx (Fst (false, fr, fp, d))) ctx.saved_float;
  (* move incoming arguments to their homes *)
  List.iteri
    (fun k (a : Ir.arg) ->
      let fetch_int rd =
        if k < n_arg_regs then
          (if rd <> arg_reg k then
             emit ctx (Alu3 (Or, W64, true, rd, arg_reg k, Imm 0)))
        else emit ctx (Ld (W64, false, rd, fp, 8 * (k - n_arg_regs)))
      in
      if is_float_ty ctx a.Ir.aty then begin
        if k < n_arg_regs then emit ctx (Mvif (0, arg_reg k))
        else begin
          emit ctx (Ld (W64, false, t1, fp, 8 * (k - n_arg_regs)));
          emit ctx (Mvif (0, t1))
        end;
        let fd, spill = fdst_of ctx a.Ir.aid ~scratch:0 in
        if fd <> 0 then emit ctx (Fmovs (fd, 0));
        ffinish ctx (fd, spill)
      end
      else begin
        let rd, spill = dst_of ctx a.Ir.aid ~scratch:t1 in
        fetch_int rd;
        finish ctx (rd, spill)
      end)
    f.Ir.fargs;
  (* body *)
  let label_pos = Hashtbl.create 16 in
  List.iter
    (fun (b : Ir.block) ->
      ctx.label_boundary := List.length !(ctx.buf);
      Hashtbl.replace label_pos (label_of ctx b) (List.length !(ctx.buf));
      List.iter (fun c -> copy_from_transfer ctx c)
        (Codegen.Phiplan.start_copies plan b);
      List.iter
        (fun (i : Ir.instr) ->
          if Ir.is_terminator i then
            List.iter (fun c -> copy_to_transfer ctx c)
              (Codegen.Phiplan.end_copies plan b);
          lower_instr ctx i)
        b.Ir.instrs)
    f.Ir.fblocks;
  let code = Array.of_list (List.rev !(ctx.buf)) in
  let resolve l =
    match Hashtbl.find_opt label_pos l with
    | Some p -> p
    | None -> (
        match Hashtbl.find_opt ctx.extra_label_pos l with
        | Some p -> p
        | None -> invalid_arg "sparclite: unresolved label")
  in
  let code =
    Array.map
      (fun ins ->
        match ins with
        | Ba l -> Ba (resolve l)
        | Bcc (cc, l) -> Bcc (cc, resolve l)
        | CallSymI (s, l) -> CallSymI (s, resolve l)
        | CallIndI (r, l) -> CallIndI (r, resolve l)
        | other -> other)
      code
  in
  let code = relax (invert_branches code) in
  let code =
    match peep with
    | [] -> code
    | rules ->
        let code, r, s = apply_rules ~rules code in
        (match peep_stats with
        | Some ps ->
            ps.rewrites <- ps.rewrites + r;
            ps.cycles_saved <- ps.cycles_saved + s
        | None -> ());
        relax code
  in
  {
    cf_name = f.Ir.fname;
    code;
    nargs = List.length f.Ir.fargs;
    frame_slots = total_frame / 8;
  }

let compile_module ?(spill_everything = false) ?(peep = []) ?peep_stats
    (m : Ir.modl) : cmodule =
  let image = Vmem.Image.load m in
  let funcs = Hashtbl.create 32 in
  List.iter
    (fun (f : Ir.func) ->
      if not (Ir.is_declaration f) then
        Hashtbl.replace funcs f.Ir.fname
          (compile_function m image ~spill_everything ~peep ?peep_stats f))
    m.Ir.funcs;
  { cm = m; image; funcs }

let func_instr_count cf = Array.length cf.code
let func_code_size cf = Array.fold_left (fun acc i -> acc + size_of i) 0 cf.code

let module_instr_count cm =
  Hashtbl.fold (fun _ cf acc -> acc + func_instr_count cf) cm.funcs 0

let module_code_size cm =
  Hashtbl.fold (fun _ cf acc -> acc + func_code_size cf) cm.funcs 0

let disassemble cf =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (cf.cf_name ^ ":\n");
  Array.iteri
    (fun k i -> Buffer.add_string buf (Printf.sprintf "  %3d: %s\n" k (to_string i)))
    cf.code;
  Buffer.contents buf
