(* Cycle-counting simulator for SPARC-lite native code; the RISC
   counterpart of [X86lite.Sim], sharing the memory, runtime, exception
   and SMC model. *)

open Llva
open Sparc

type trap_kind =
  | Division_by_zero
  | Overflow (* signed INT_MIN / -1 division or remainder *)
  | Memory_fault of int64
  | Privilege_violation

exception Trap of trap_kind
exception Unwound
exception Out_of_fuel

type flags = Fnone | Fint of int64 * int64 | Ffloat of float * float

type frame = {
  fr_cf : Compile.cfunc;
  fr_ret_pc : int;
  fr_except : int option;
  fr_fp : int64;
  fr_sp : int64;
}

type state = {
  cmod : Compile.cmodule;
  mem : Vmem.Memory.t;
  rt : Vmem.Runtime.t;
  regs : int64 array; (* 32; r0 reads as zero *)
  fregs : float array; (* 16 *)
  mutable flags : flags;
  mutable frames : frame list;
  mutable cur : Compile.cfunc;
  mutable pc : int;
  mutable cycles : int64;
  mutable icount : int64;
  mutable fuel : int;
  mutable trap_handler : string option;
  mutable privileged : bool;
  redirects : (string, string) Hashtbl.t;
  mutable lookup : state -> string -> Compile.cfunc option;
}

let default_lookup st name = Hashtbl.find_opt st.cmod.Compile.funcs name

let create ?(fuel = -1) (cmod : Compile.cmodule) : state =
  let mem = cmod.Compile.image.Vmem.Image.mem in
  let dummy =
    { Compile.cf_name = "<none>"; code = [||]; nargs = 0; frame_slots = 0 }
  in
  {
    cmod;
    mem;
    rt = Vmem.Runtime.create mem;
    regs = Array.make 32 0L;
    fregs = Array.make 16 0.0;
    flags = Fnone;
    frames = [];
    cur = dummy;
    pc = 0;
    cycles = 0L;
    icount = 0L;
    fuel;
    trap_handler = None;
    privileged = false;
    redirects = Hashtbl.create 4;
    lookup = default_lookup;
  }

let output st = Vmem.Runtime.output st.rt

let ty_of_width w s =
  match (w, s) with
  | W8, true -> Types.Sbyte
  | W8, false -> Types.Ubyte
  | W16, true -> Types.Short
  | W16, false -> Types.Ushort
  | W32, true -> Types.Int
  | W32, false -> Types.Uint
  | W64, true -> Types.Long
  | W64, false -> Types.Ulong

let norm w s v = Ir.normalize_int (ty_of_width w s) v

let rreg st r = if r = 0 then 0L else st.regs.(r)

let wreg st r v = if r <> 0 then st.regs.(r) <- v

let read_operand st = function Rs r -> rreg st r | Imm v -> Int64.of_int v

exception Toplevel_return

let rec deliver_trap st kind : unit =
  (match st.trap_handler with
  | Some hname -> (
      st.trap_handler <- None;
      match st.lookup st hname with
      | Some hcf ->
          let num =
            match kind with
            | Division_by_zero -> 0L
            | Overflow -> 0L (* same divide-fault class as x86 #DE *)
            | Memory_fault _ -> 1L
            | Privilege_violation -> 2L
          in
          run_subcall st hcf [ num; 0L ]
      | None -> ())
  | None -> ());
  raise (Trap kind)

and run_subcall st (cf : Compile.cfunc) (args : int64 list) =
  let saved =
    (Array.copy st.regs, st.frames, st.cur, st.pc)
  in
  List.iteri (fun k v -> wreg st (arg_reg k) v) args;
  st.frames <- [];
  st.cur <- cf;
  st.pc <- 0;
  (try run_until_empty st with Unwound -> ());
  let regs, frames, cur, pc = saved in
  Array.blit regs 0 st.regs 0 32;
  st.frames <- frames;
  st.cur <- cur;
  st.pc <- pc

and resolve_callee st name =
  let name =
    match Hashtbl.find_opt st.redirects name with Some r -> r | None -> name
  in
  match st.lookup st name with
  | Some cf -> `Native cf
  | None -> `External name

and addr_to_name st addr =
  match Vmem.Image.func_at st.cmod.Compile.image addr with
  | Some f -> f.Ir.fname
  | None -> raise (Trap (Memory_fault addr))

and external_call st name =
  if Llva.Intrinsics.is_intrinsic name then intrinsic_call st name
  else if Vmem.Runtime.is_known name then begin
    let nargs =
      match name with
      | "memcpy" | "memset" -> 3
      | "print_nl" | "abort" -> 0
      | _ -> 1
    in
    let args =
      List.init nargs (fun k ->
          let raw = rreg st (arg_reg k) in
          if name = "print_float" then
            Eval.F (Types.Double, Int64.float_of_bits raw)
          else Eval.I (Types.Long, raw))
    in
    match Vmem.Runtime.call st.rt name args with
    | Eval.I (_, v) -> wreg st ret v
    | Eval.P a -> wreg st ret a
    | Eval.B b -> wreg st ret (if b then 1L else 0L)
    | Eval.F (_, f) -> st.fregs.(0) <- f
    | Eval.Undef _ -> ()
  end
  else invalid_arg ("sparclite sim: undefined external " ^ name)

and intrinsic_call st name =
  match name with
  | "llva.trap.register" ->
      st.trap_handler <- Some (addr_to_name st (rreg st (arg_reg 0)))
  | "llva.smc.replace" ->
      let from_n = addr_to_name st (rreg st (arg_reg 0)) in
      let to_n = addr_to_name st (rreg st (arg_reg 1)) in
      Hashtbl.replace st.redirects from_n to_n
  | "llva.stack.depth" -> wreg st ret (Int64.of_int (List.length st.frames))
  | "llva.priv.set" ->
      st.privileged <- not (Int64.equal (rreg st (arg_reg 0)) 0L)
  | other when Llva.Intrinsics.is_privileged other ->
      if not st.privileged then begin
        deliver_trap st Privilege_violation;
        assert false
      end
  | _ -> invalid_arg ("sparclite sim: unknown intrinsic " ^ name)

and cc_holds st cc =
  match st.flags with
  | Fnone -> invalid_arg "sparclite sim: branch without flags"
  | Fint (a, b) -> (
      let sc = Int64.compare a b in
      let uc = Int64.unsigned_compare a b in
      match cc with
      | Eq -> sc = 0
      | Ne -> sc <> 0
      | Lt -> sc < 0
      | Gt -> sc > 0
      | Le -> sc <= 0
      | Ge -> sc >= 0
      | Ltu -> uc < 0
      | Gtu -> uc > 0
      | Leu -> uc <= 0
      | Geu -> uc >= 0)
  | Ffloat (a, b) ->
      (* IEEE-754 unordered: NaN makes every relation except Ne false *)
      if Float.is_nan a || Float.is_nan b then cc = Ne
      else (
        let c = Float.compare a b in
        match cc with
        | Eq -> c = 0
        | Ne -> c <> 0
        | Lt | Ltu -> c < 0
        | Gt | Gtu -> c > 0
        | Le | Leu -> c <= 0
        | Ge | Geu -> c >= 0)

and do_call st ~target ~except ~ret_pc =
  match target with
  | `Native cf ->
      st.frames <-
        {
          fr_cf = st.cur;
          fr_ret_pc = ret_pc;
          fr_except = except;
          fr_fp = rreg st fp;
          fr_sp = rreg st sp;
        }
        :: st.frames;
      if List.length st.frames > 50_000 then
        invalid_arg "sparclite sim: call stack overflow";
      wreg st lr 0L (* the link register value is symbolic here *);
      st.cur <- cf;
      st.pc <- 0
  | `External name ->
      external_call st name;
      st.pc <- ret_pc

and step st =
  let i = st.cur.Compile.code.(st.pc) in
  st.icount <- Int64.add st.icount 1L;
  st.cycles <- Int64.add st.cycles (Int64.of_int (cycles_of i));
  if st.fuel >= 0 && Int64.to_int st.icount > st.fuel then raise Out_of_fuel;
  let next = st.pc + 1 in
  st.pc <- next;
  match i with
  | Alu3 (op, w, s, rd, rs1, o) -> (
      let ty = ty_of_width w s in
      let a = rreg st rs1 and b = read_operand st o in
      match op with
      | Add -> wreg st rd (Ir.normalize_int ty (Int64.add a b))
      | Sub -> wreg st rd (Ir.normalize_int ty (Int64.sub a b))
      | Mul -> wreg st rd (Ir.normalize_int ty (Int64.mul a b))
      | And -> wreg st rd (Ir.normalize_int ty (Int64.logand a b))
      | Or -> wreg st rd (Ir.normalize_int ty (Int64.logor a b))
      | Xor -> wreg st rd (Ir.normalize_int ty (Int64.logxor a b))
      | Div | Rem -> (
          let iop = if op = Div then Ir.Div else Ir.Rem in
          match Eval.int_binop iop ty a b with
          | Eval.I (_, v) -> wreg st rd v
          | _ -> ()
          | exception Eval.Division_by_zero ->
              deliver_trap st Division_by_zero
          | exception Eval.Overflow -> deliver_trap st Overflow)
      | Sll | Srl | Sra -> (
          let iop = if op = Sll then Ir.Shl else Ir.Shr in
          let ty = if op = Srl then ty_of_width w false else ty in
          match Eval.int_binop iop ty a b with
          | Eval.I (_, v) -> wreg st rd v
          | _ -> ()))
  | Sethi (rd, v) -> wreg st rd v
  | Ld (w, s, rd, rs, d) -> (
      let addr = Int64.add (rreg st rs) (Int64.of_int d) in
      if Int64.equal addr 0L then deliver_trap st (Memory_fault 0L);
      match
        (* full-word loads (spills, stack slots) take the u64 fast path *)
        match w with
        | W64 -> Vmem.Memory.read_u64 st.mem addr
        | _ -> Vmem.Memory.read_uint st.mem addr (width_bytes w)
      with
      | raw -> wreg st rd (norm w s raw)
      | exception Vmem.Memory.Fault a -> deliver_trap st (Memory_fault a))
  | St (w, rsrc, rs, d) -> (
      let addr = Int64.add (rreg st rs) (Int64.of_int d) in
      if Int64.equal addr 0L then deliver_trap st (Memory_fault 0L);
      match
        match w with
        | W64 -> Vmem.Memory.write_u64 st.mem addr (rreg st rsrc)
        | _ -> Vmem.Memory.write_uint st.mem addr (width_bytes w) (rreg st rsrc)
      with
      | () -> ()
      | exception Vmem.Memory.Fault a -> deliver_trap st (Memory_fault a))
  | Cmp (w, s, r, o) ->
      st.flags <- Fint (norm w s (rreg st r), norm w s (read_operand st o))
  | Movcc (cc, rd) -> wreg st rd (if cc_holds st cc then 1L else 0L)
  | Bcc (cc, l) -> if cc_holds st cc then st.pc <- l
  | Ba l -> st.pc <- l
  | CallSym name ->
      do_call st ~target:(resolve_callee st name) ~except:None ~ret_pc:next
  | CallSymI (name, l) ->
      do_call st ~target:(resolve_callee st name) ~except:(Some l) ~ret_pc:next
  | CallInd r ->
      let name = addr_to_name st (rreg st r) in
      do_call st ~target:(resolve_callee st name) ~except:None ~ret_pc:next
  | CallIndI (r, l) ->
      let name = addr_to_name st (rreg st r) in
      do_call st ~target:(resolve_callee st name) ~except:(Some l) ~ret_pc:next
  | RetS -> (
      match st.frames with
      | [] -> raise Toplevel_return
      | f :: rest ->
          st.frames <- rest;
          st.cur <- f.fr_cf;
          st.pc <- f.fr_ret_pc)
  | UnwindS ->
      let rec unwind frames =
        match frames with
        | [] -> raise Unwound
        | f :: rest -> (
            match f.fr_except with
            | Some handler ->
                st.frames <- rest;
                st.cur <- f.fr_cf;
                st.pc <- handler;
                wreg st fp f.fr_fp;
                wreg st sp f.fr_sp
            | None -> unwind rest)
      in
      unwind st.frames
  | AddSp n -> wreg st sp (Int64.add (rreg st sp) (Int64.of_int n))
  | SubSpDyn (rd, rs) ->
      wreg st sp (Int64.sub (rreg st sp) (rreg st rs));
      wreg st rd (rreg st sp)
  | Falu (op, single, fd, fa, fb) ->
      let x = st.fregs.(fa) and y = st.fregs.(fb) in
      let r =
        match op with
        | Fadd -> x +. y
        | Fsub -> x -. y
        | Fmul -> x *. y
        | Fdiv -> x /. y
        | Frem -> Float.rem x y
      in
      st.fregs.(fd) <- (if single then Eval.round_float Types.Float r else r)
  | Fmovs (fd, fs) -> st.fregs.(fd) <- st.fregs.(fs)
  | Fconst (fd, v) -> st.fregs.(fd) <- v
  | Fld (single, fd, rs, d) -> (
      let addr = Int64.add (rreg st rs) (Int64.of_int d) in
      if Int64.equal addr 0L then deliver_trap st (Memory_fault 0L);
      match
        if single then Vmem.Memory.read_uint st.mem addr 4
        else Vmem.Memory.read_u64 st.mem addr
      with
      | raw ->
          st.fregs.(fd) <-
            (if single then Int32.float_of_bits (Int64.to_int32 raw)
             else Int64.float_of_bits raw)
      | exception Vmem.Memory.Fault a -> deliver_trap st (Memory_fault a))
  | Fst (single, fs, rs, d) -> (
      let addr = Int64.add (rreg st rs) (Int64.of_int d) in
      if Int64.equal addr 0L then deliver_trap st (Memory_fault 0L);
      let v = st.fregs.(fs) in
      match
        if single then
          Vmem.Memory.write_uint st.mem addr 4
            (Int64.of_int32 (Int32.bits_of_float v))
        else Vmem.Memory.write_u64 st.mem addr (Int64.bits_of_float v)
      with
      | () -> ()
      | exception Vmem.Memory.Fault a -> deliver_trap st (Memory_fault a))
  | Fcmp (a, b) -> st.flags <- Ffloat (st.fregs.(a), st.fregs.(b))
  | Cvtif (fd, r, signed) ->
      let v = rreg st r in
      st.fregs.(fd) <-
        (if signed then Int64.to_float v
         else if Int64.compare v 0L >= 0 then Int64.to_float v
         else Int64.to_float v +. 18446744073709551616.0)
  | Cvtfi (rd, f, w, s) ->
      let x = st.fregs.(f) in
      let x = if Float.is_nan x then 0.0 else x in
      wreg st rd (norm w s (Int64.of_float x))
  | Fround f -> st.fregs.(f) <- Eval.round_float Types.Float st.fregs.(f)
  | Mvfi (rd, f) -> wreg st rd (Int64.bits_of_float st.fregs.(f))
  | Mvif (fd, r) -> st.fregs.(fd) <- Int64.float_of_bits (rreg st r)
  | TrapS msg -> invalid_arg ("sparclite sim: trap " ^ msg)

and run_until_empty st =
  try
    while true do
      step st
    done
  with Toplevel_return -> ()

let call_function st name (int_args : int64 list) : int64 =
  match resolve_callee st name with
  | `External _ ->
      invalid_arg ("sparclite sim: cannot start in external " ^ name)
  | `Native cf ->
      List.iteri (fun k v -> wreg st (arg_reg k) v) int_args;
      st.frames <- [];
      st.cur <- cf;
      st.pc <- 0;
      run_until_empty st;
      rreg st ret

let run_main ?fuel (cmod : Compile.cmodule) =
  let st = create ?fuel cmod in
  st.regs.(sp) <- Vmem.Memory.stack_top;
  st.regs.(fp) <- Vmem.Memory.stack_top;
  let code =
    match call_function st "main" [] with
    | v -> Int64.to_int (Ir.normalize_int Types.Int v)
    | exception Vmem.Runtime.Exit_called c -> c
  in
  (code, st)
