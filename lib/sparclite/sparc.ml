(* SPARC-lite: a three-address RISC I-ISA standing in for SPARC V9 in the
   paper's evaluation. 32 integer registers (r0 hardwired to zero), 16
   floating registers, load/store architecture with 13-bit immediates
   (larger constants are built with sethi+add sequences, as on real
   SPARC), fixed 4-byte instruction encodings, condition codes with a
   V9-style conditional set. *)

type reg = int (* 0..31 *)
type freg = int (* 0..15 *)

let zero = 0
let t1 = 1 (* integer scratch *)
let t2 = 2
let t3 = 3
let sp = 14
let lr = 15
let fp = 30
let t4 = 31 (* second scratch for constant synthesis *)

(* argument / return registers *)
let arg_reg k = 8 + k (* r8..r13; r8 is also the return register *)
let n_arg_regs = 6
let ret = 8

(* float scratch f0..f3; f0 is the float return register *)
let allocatable_int = [ 16; 17; 18; 19; 20; 21; 22; 23; 24; 25; 26; 27; 28; 29; 4; 5; 6; 7 ]
let allocatable_float = [ 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 ]

let reg_name r =
  match r with
  | 0 -> "%g0"
  | 14 -> "%sp"
  | 15 -> "%lr"
  | 30 -> "%fp"
  | r -> Printf.sprintf "%%r%d" r

type width = W8 | W16 | W32 | W64

let width_bytes = function W8 -> 1 | W16 -> 2 | W32 -> 4 | W64 -> 8

type operand = Rs of reg | Imm of int (* fits 13 signed bits *)

let fits_imm13 (v : int64) =
  Int64.compare v (-4096L) >= 0 && Int64.compare v 4095L <= 0

type alu = Add | Sub | Mul | Div | Rem | And | Or | Xor | Sll | Srl | Sra

type cc = Eq | Ne | Lt | Gt | Le | Ge | Ltu | Gtu | Leu | Geu

type fop = Fadd | Fsub | Fmul | Fdiv | Frem

type instr =
  | Alu3 of alu * width * bool * reg * reg * operand
    (* rd := rs1 op rs2/imm, normalized at width *)
  | Sethi of reg * int64 (* rd := literal (upper bits of a constant) *)
  | Ld of width * bool * reg * reg * int (* rd := mem[rs + disp] *)
  | St of width * reg * reg * int (* mem[rs + disp] := rsrc *)
  | Cmp of width * bool * reg * operand (* subcc: set flags *)
  | Movcc of cc * reg (* rd := flags cc ? 1 : 0 (V9 conditional move) *)
  | Bcc of cc * int
  | Ba of int
  | CallSym of string
  | CallInd of reg
  | CallSymI of string * int (* invoke form: except label *)
  | CallIndI of reg * int
  | RetS
  | UnwindS
  | AddSp of int
  | SubSpDyn of reg * reg (* rd := (sp -= rs) *)
  | Falu of fop * bool * freg * freg * freg (* single?, fd := fa op fb *)
  | Fmovs of freg * freg
  | Fconst of freg * float (* macro: expands to a constant-pool load; 1 instr *)
  | Fld of bool * freg * reg * int
  | Fst of bool * freg * reg * int
  | Fcmp of freg * freg
  | Cvtif of freg * reg * bool
  | Cvtfi of reg * freg * width * bool
  | Fround of freg
  | Mvfi of reg * freg (* raw bit move float->int *)
  | Mvif of freg * reg
  | TrapS of string

(* every SPARC-lite instruction is one 4-byte word *)
let size_of (_ : instr) = 4

(* Latency model used by the simulator, the bench suite, and the
   superoptimizer's search ranking (lib/superopt). Every constructor
   must carry an explicit cost — no catch-all default — so a new
   instruction cannot silently ride on a stale estimate; the test suite
   asserts a positive cost for one exemplar of every constructor. *)
let cycles_of = function
  | Alu3 (Mul, _, _, _, _, _) -> 3
  | Alu3 ((Div | Rem), _, _, _, _, _) -> 20
  | Alu3 _ -> 1
  | Sethi _ -> 1
  | Ld _ | St _ | Fld _ | Fst _ -> 3
  | Cmp _ -> 1
  | Movcc _ -> 1
  | Bcc _ -> 2
  | Ba _ -> 1
  | CallSym _ | CallInd _ | CallSymI _ | CallIndI _ -> 3
  | RetS -> 3
  | UnwindS -> 4
  | AddSp _ -> 1
  | SubSpDyn _ -> 2
  | Falu (Fdiv, _, _, _, _) -> 15
  (* Frem used to hide under the generic 3-cycle arm; it is a library
     call on real hardware and costs at least a divide. *)
  | Falu (Frem, _, _, _, _) -> 20
  | Falu ((Fadd | Fsub | Fmul), _, _, _, _) -> 3
  | Fmovs _ -> 1
  | Fconst _ -> 3
  | Fcmp _ -> 2
  | Cvtif _ | Cvtfi _ -> 4
  | Fround _ -> 2
  | Mvfi _ | Mvif _ -> 2
  | TrapS _ -> 1

let alu_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mulx"
  | Div -> "sdivx"
  | Rem -> "srem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Sll -> "sllx"
  | Srl -> "srlx"
  | Sra -> "srax"

let cc_name = function
  | Eq -> "e"
  | Ne -> "ne"
  | Lt -> "l"
  | Gt -> "g"
  | Le -> "le"
  | Ge -> "ge"
  | Ltu -> "lu"
  | Gtu -> "gu"
  | Leu -> "leu"
  | Geu -> "geu"

let operand_str = function Rs r -> reg_name r | Imm v -> string_of_int v

let to_string = function
  | Alu3 (op, _, _, rd, rs1, o) ->
      Printf.sprintf "%s %s, %s, %s" (alu_name op) (reg_name rs1)
        (operand_str o) (reg_name rd)
  | Sethi (rd, v) -> Printf.sprintf "sethi %%hi(%Ld), %s" v (reg_name rd)
  | Ld (_, _, rd, rs, d) ->
      Printf.sprintf "ld [%s%+d], %s" (reg_name rs) d (reg_name rd)
  | St (_, rsrc, rs, d) ->
      Printf.sprintf "st %s, [%s%+d]" (reg_name rsrc) (reg_name rs) d
  | Cmp (_, _, r, o) -> Printf.sprintf "cmp %s, %s" (reg_name r) (operand_str o)
  | Movcc (cc, rd) -> Printf.sprintf "mov%s 1, %s" (cc_name cc) (reg_name rd)
  | Bcc (cc, l) -> Printf.sprintf "b%s .L%d" (cc_name cc) l
  | Ba l -> Printf.sprintf "ba .L%d" l
  | CallSym s -> "call " ^ s
  | CallInd r -> "call " ^ reg_name r
  | CallSymI (s, l) -> Printf.sprintf "call %s (except .L%d)" s l
  | CallIndI (r, l) -> Printf.sprintf "call %s (except .L%d)" (reg_name r) l
  | RetS -> "ret"
  | UnwindS -> "unwind"
  | AddSp n -> Printf.sprintf "add %%sp, %d, %%sp" n
  | SubSpDyn (rd, rs) ->
      Printf.sprintf "sub %%sp, %s, %%sp ! %s := %%sp" (reg_name rs) (reg_name rd)
  | Falu (op, single, fd, fa, fb) ->
      Printf.sprintf "f%s%s %%f%d, %%f%d, %%f%d"
        (match op with
        | Fadd -> "add"
        | Fsub -> "sub"
        | Fmul -> "mul"
        | Fdiv -> "div"
        | Frem -> "rem")
        (if single then "s" else "d")
        fa fb fd
  | Fmovs (fd, fs) -> Printf.sprintf "fmovd %%f%d, %%f%d" fs fd
  | Fconst (fd, v) -> Printf.sprintf "fld [const %g], %%f%d" v fd
  | Fld (_, fd, rs, d) ->
      Printf.sprintf "fld [%s%+d], %%f%d" (reg_name rs) d fd
  | Fst (_, fs, rs, d) ->
      Printf.sprintf "fst %%f%d, [%s%+d]" fs (reg_name rs) d
  | Fcmp (a, b) -> Printf.sprintf "fcmpd %%f%d, %%f%d" a b
  | Cvtif (fd, r, _) -> Printf.sprintf "fitod %s, %%f%d" (reg_name r) fd
  | Cvtfi (rd, f, _, _) -> Printf.sprintf "fdtoi %%f%d, %s" f (reg_name rd)
  | Fround f -> Printf.sprintf "fdtos %%f%d" f
  | Mvfi (rd, f) -> Printf.sprintf "movdtox %%f%d, %s" f (reg_name rd)
  | Mvif (fd, r) -> Printf.sprintf "movxtod %s, %%f%d" (reg_name r) fd
  | TrapS s -> "trap " ^ s

let width_of_type target ty =
  match Llva.Types.scalar_bytes target ty with
  | 1 -> W8
  | 2 -> W16
  | 4 -> W32
  | 8 -> W64
  | _ -> W64
