(* The verification oracle.

   A candidate rewrite is admitted only if it is observationally
   equivalent to the original window *on the backend's own simulator*:
   same final register file, same flags, same frame-slot contents, for
   every test vector. Vectors are deterministic — a fixed boundary-value
   set crossed over the first two inputs plus splitmix64-seeded random
   tails — so two searches over the same module produce byte-identical
   tables ([parallel_identical]-style determinism).

   Windows are executed in *concrete* form: the caller instantiates
   canonical slot variables to real, distinct, 8-aligned BP/FP-relative
   displacements first (lib/{x86lite,sparclite}/compile.ml [concretize]).
   Execution happens against a scratch stack region well below
   [Vmem.Memory.stack_top]; any fault, trap, runaway or non-straight-line
   instruction makes the window unverifiable (the window is skipped when
   it is the left-hand side, the candidate rejected otherwise). *)

(* ---------- deterministic test vectors ---------- *)

let splitmix64 (seed : int64) : int64 =
  let z = Int64.add seed 0x9E3779B97F4A7C15L in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let mix k = splitmix64 (Int64.of_int ((k * 0x9E37) + 0x5EED))

let boundaries =
  [|
    0L; 1L; 2L; 3L; 7L; 8L; 15L; 16L; 63L; 64L; 255L; 256L;
    0x7FL; 0x80L; 0xFFL; 0x100L; 0x7FFFL; 0x8000L; 0xFFFFL;
    0x7FFF_FFFFL; 0x8000_0000L; 0xFFFF_FFFFL; 0x1_0000_0000L;
    Int64.max_int; Int64.min_int; -1L; -2L; -256L; -65536L;
  |]

(* [screen] is a cheap prefix used to discard most candidates before the
   [full] set runs: 6 random vectors (which also cycle through every
   flag variant once). [full] adds the boundary cross-product on the
   first two inputs plus more random tails. *)
let vectors ~n : int64 array list * int64 array list =
  let rnd tag = Array.init n (fun j -> mix ((tag * 97) + j)) in
  let screen = List.init 6 (fun k -> rnd k) in
  let nb = Array.length boundaries in
  let cross =
    if n = 0 then [ [||] ]
    else if n = 1 then Array.to_list (Array.map (fun v -> [| v |]) boundaries)
    else
      List.concat
        (List.init nb (fun i ->
             List.init nb (fun j ->
                 Array.init n (fun t ->
                     if t = 0 then boundaries.(i)
                     else if t = 1 then boundaries.(j)
                     else mix ((((i * nb) + j) * 13) + t)))))
  in
  let extra = List.init 24 (fun k -> rnd (1000 + k)) in
  (screen, screen @ cross @ extra)

(* ---------- per-target harnesses ---------- *)

(* The two harnesses are structurally identical; they differ in the
   simulator, the flags type and the register file shape, which OCaml's
   lack of backend polymorphism makes simplest to just write twice. *)

module X86 = struct
  open X86lite
  open X86lite.X86

  type h = { st : Sim.state; base : int64 }

  let make () =
    let m = Llva.Ir.mk_module ~name:"superopt-oracle" () in
    let image = Vmem.Image.load m in
    let cmod = { Compile.cm = m; image; funcs = Hashtbl.create 1 } in
    (* scratch frame area: far enough below the stack top that negative
       slot displacements and the probe SP never leave mapped,
       non-null address space *)
    { st = Sim.create cmod; base = Int64.sub Vmem.Memory.stack_top 65536L }

  (* Only straight-line, trap-free instructions are executable as
     windows; anything else makes the window unverifiable. *)
  let straightline = function
    | Mov _ | Alu _ | Shift _ | Ext _ | Cmp _ | Setcc _ -> true
    | _ -> false

  (* Data inputs of a window: every named register (BP excluded — it is
     the frame base the harness owns) and every distinct slot
     displacement, in first-occurrence order. *)
  let inputs_of (w : instr list) : int list * int list =
    let regs = ref [] and slots = ref [] in
    let add_reg r = if not (List.mem r !regs) then regs := !regs @ [ r ] in
    let add_op = function
      | R r -> add_reg r
      | I _ -> ()
      | M m -> if not (List.mem m.disp !slots) then slots := !slots @ [ m.disp ]
    in
    List.iter
      (fun i ->
        match i with
        | Mov (a, b) | Alu (_, _, _, a, b) | Shift (_, _, _, a, b)
        | Cmp (_, _, a, b) ->
            add_op a;
            add_op b
        | Ext (r, _, _) | Setcc (_, r) -> add_reg r
        | _ -> ())
      w;
    (!regs, !slots)

  let flag_variants =
    [
      Sim.Fnone;
      Sim.Fint (0L, 0L, true);
      Sim.Fint (1L, 0L, true);
      Sim.Fint (0L, 1L, false);
      Sim.Fint (-1L, 1L, true);
      Sim.Fint (5L, 5L, false);
    ]

  type obs = { oregs : int64 array; oflags : Sim.flags; oslots : int64 array }

  let exec h ~regs ~slots (w : instr list) (vec : int64 array)
      (fl : Sim.flags) : obs =
    List.iter
      (fun i -> if not (straightline i) then invalid_arg "not straight-line")
      w;
    let st = h.st in
    Array.fill st.Sim.regs 0 (Array.length st.Sim.regs) 0L;
    st.Sim.regs.(sp) <- Int64.sub h.base 8192L;
    st.Sim.regs.(bp) <- h.base;
    List.iteri (fun k r -> st.Sim.regs.(r) <- vec.(k)) regs;
    let nr = List.length regs in
    List.iteri
      (fun k d ->
        Vmem.Memory.write_u64 st.Sim.mem
          (Int64.add h.base (Int64.of_int d))
          vec.(nr + k))
      slots;
    st.Sim.flags <- fl;
    st.Sim.cur <-
      {
        Compile.cf_name = "#window#";
        code = Array.of_list w;
        nargs = 0;
        frame_slots = 0;
      };
    st.Sim.pc <- 0;
    let len = List.length w in
    let steps = ref 0 in
    while st.Sim.pc >= 0 && st.Sim.pc < len do
      if !steps > 256 then invalid_arg "window ran away";
      incr steps;
      Sim.step st
    done;
    {
      oregs = Array.copy st.Sim.regs;
      oflags = st.Sim.flags;
      oslots =
        Array.of_list
          (List.map
             (fun d ->
               Vmem.Memory.read_u64 st.Sim.mem
                 (Int64.add h.base (Int64.of_int d)))
             slots);
    }

  let equal_obs a b =
    a.oregs = b.oregs && a.oflags = b.oflags && a.oslots = b.oslots

  let with_flags vecs =
    List.mapi
      (fun k v -> (v, List.nth flag_variants (k mod List.length flag_variants)))
      vecs

  type session = {
    h : h;
    regs : int list;
    slots : int list;
    screen : (int64 array * Sim.flags * obs) list;
    full : (int64 array * Sim.flags * obs) list Lazy.t;
  }

  (* [None] when the left-hand side itself faults or traps on some
     vector: such windows are not oracle-checkable and are skipped.
     [inputs] normally equals [lhs]; rule re-verification passes
     lhs @ rhs so a right-hand side touching state the left never
     names is still observed (and therefore rejected). *)
  let session h ~(inputs : instr list) (lhs : instr list) : session option =
    let regs, slots = inputs_of inputs in
    let n = List.length regs + List.length slots in
    let screen_v, full_v = vectors ~n in
    let run vecs =
      List.map (fun (v, fl) -> (v, fl, exec h ~regs ~slots lhs v fl)) vecs
    in
    match run (with_flags screen_v) with
    | screen -> Some { h; regs; slots; screen; full = lazy (run (with_flags full_v)) }
    | exception _ -> None

  let candidate_ok (s : session) (rhs : instr list) : bool =
    let check (v, fl, expect) =
      match exec s.h ~regs:s.regs ~slots:s.slots rhs v fl with
      | o -> equal_obs o expect
      | exception _ -> false
    in
    List.for_all check s.screen
    && (match Lazy.force s.full with
        | cases -> List.for_all check cases
        | exception _ -> false)

  (* Re-verify one concrete rule instantiation end to end (CI uses this
     on the shipped tables). *)
  let verify_rule h (lhs : instr list) (rhs : instr list) : bool =
    match session h ~inputs:(lhs @ rhs) lhs with
    | Some s -> candidate_ok s rhs
    | None -> false
end

module Sparc = struct
  open Sparclite
  open Sparclite.Sparc

  type h = { st : Sim.state; base : int64 }

  let make () =
    let m = Llva.Ir.mk_module ~name:"superopt-oracle" () in
    let image = Vmem.Image.load m in
    let cmod = { Compile.cm = m; image; funcs = Hashtbl.create 1 } in
    { st = Sim.create cmod; base = Int64.sub Vmem.Memory.stack_top 65536L }

  let straightline = function
    | Alu3 ((Div | Rem), _, _, _, _, _) -> false
    | Alu3 _ | Sethi _ | Ld _ | St _ | Cmp _ | Movcc _ -> true
    | _ -> false

  (* r0 is architecturally zero: never a data input. *)
  let inputs_of (w : instr list) : int list * int list =
    let regs = ref [] and slots = ref [] in
    let add_reg r =
      if r <> 0 && not (List.mem r !regs) then regs := !regs @ [ r ]
    in
    let add_opnd = function Rs r -> add_reg r | Imm _ -> () in
    let add_slot d = if not (List.mem d !slots) then slots := !slots @ [ d ] in
    List.iter
      (fun i ->
        match i with
        | Alu3 (_, _, _, rd, rs1, o) ->
            add_reg rd;
            add_reg rs1;
            add_opnd o
        | Sethi (rd, _) -> add_reg rd
        | Ld (_, _, rd, _, d) ->
            add_reg rd;
            add_slot d
        | St (_, rs, _, d) ->
            add_reg rs;
            add_slot d
        | Cmp (_, _, r, o) ->
            add_reg r;
            add_opnd o
        | Movcc (_, rd) -> add_reg rd
        | _ -> ())
      w;
    (!regs, !slots)

  let flag_variants =
    [
      Sim.Fnone;
      Sim.Fint (0L, 0L);
      Sim.Fint (1L, 0L);
      Sim.Fint (0L, 1L);
      Sim.Fint (-1L, 1L);
      Sim.Fint (5L, 5L);
    ]

  type obs = { oregs : int64 array; oflags : Sim.flags; oslots : int64 array }

  let exec h ~regs ~slots (w : instr list) (vec : int64 array)
      (fl : Sim.flags) : obs =
    List.iter
      (fun i -> if not (straightline i) then invalid_arg "not straight-line")
      w;
    let st = h.st in
    Array.fill st.Sim.regs 0 (Array.length st.Sim.regs) 0L;
    st.Sim.regs.(sp) <- Int64.sub h.base 8192L;
    st.Sim.regs.(fp) <- h.base;
    List.iteri (fun k r -> st.Sim.regs.(r) <- vec.(k)) regs;
    let nr = List.length regs in
    List.iteri
      (fun k d ->
        Vmem.Memory.write_u64 st.Sim.mem
          (Int64.add h.base (Int64.of_int d))
          vec.(nr + k))
      slots;
    st.Sim.flags <- fl;
    st.Sim.cur <-
      {
        Compile.cf_name = "#window#";
        code = Array.of_list w;
        nargs = 0;
        frame_slots = 0;
      };
    st.Sim.pc <- 0;
    let len = List.length w in
    let steps = ref 0 in
    while st.Sim.pc >= 0 && st.Sim.pc < len do
      if !steps > 256 then invalid_arg "window ran away";
      incr steps;
      Sim.step st
    done;
    {
      oregs = Array.copy st.Sim.regs;
      oflags = st.Sim.flags;
      oslots =
        Array.of_list
          (List.map
             (fun d ->
               Vmem.Memory.read_u64 st.Sim.mem
                 (Int64.add h.base (Int64.of_int d)))
             slots);
    }

  let equal_obs a b =
    a.oregs = b.oregs && a.oflags = b.oflags && a.oslots = b.oslots

  let with_flags vecs =
    List.mapi
      (fun k v -> (v, List.nth flag_variants (k mod List.length flag_variants)))
      vecs

  type session = {
    h : h;
    regs : int list;
    slots : int list;
    screen : (int64 array * Sim.flags * obs) list;
    full : (int64 array * Sim.flags * obs) list Lazy.t;
  }

  let session h ~(inputs : instr list) (lhs : instr list) : session option =
    let regs, slots = inputs_of inputs in
    let n = List.length regs + List.length slots in
    let screen_v, full_v = vectors ~n in
    let run vecs =
      List.map (fun (v, fl) -> (v, fl, exec h ~regs ~slots lhs v fl)) vecs
    in
    match run (with_flags screen_v) with
    | screen -> Some { h; regs; slots; screen; full = lazy (run (with_flags full_v)) }
    | exception _ -> None

  let candidate_ok (s : session) (rhs : instr list) : bool =
    let check (v, fl, expect) =
      match exec s.h ~regs:s.regs ~slots:s.slots rhs v fl with
      | o -> equal_obs o expect
      | exception _ -> false
    in
    List.for_all check s.screen
    && (match Lazy.force s.full with
        | cases -> List.for_all check cases
        | exception _ -> false)

  let verify_rule h (lhs : instr list) (rhs : instr list) : bool =
    match session h ~inputs:(lhs @ rhs) lhs with
    | Some s -> candidate_ok s rhs
    | None -> false
end
