(* The offline enumerative superoptimizer (GreenThumb-style, scaled to
   this repo: test-cases first, then the full oracle vector set, ship
   only certified rewrites).

   Pipeline per backend:
     1. harvest — compile the training modules with the backend's
        default selector, slide 1-4 instruction windows over every
        function (skipping windows that a branch targets mid-window or
        that contain non-rewritable instructions), canonicalize frame
        slots, and keep the most frequent canonical windows;
     2. candidates — for each window, enumerate cheaper replacements
        from the window's own vocabulary: every proper subsequence
        (deletions), every single instruction form, and every
        one-position substitution by a cheaper form;
     3. verify — screen each candidate on a handful of vectors, then
        run the full boundary-cross + random oracle set ([Oracle]);
        the first verified candidate in (cost, structural) order wins,
        so the chosen right-hand side is minimal and deterministic.

   Everything is deterministic: sorted traversal orders, seeded
   vectors, total candidate order — two searches over the same modules
   yield byte-identical tables. *)

open Llva

let log2_64 v =
  if Int64.compare v 0L > 0 && Int64.equal (Int64.logand v (Int64.sub v 1L)) 0L
  then begin
    let rec go k x =
      if Int64.equal x 1L then k else go (k + 1) (Int64.shift_right_logical x 1)
    in
    Some (go 0 v)
  end
  else None

(* all proper subsequences (order-preserving), including the empty one *)
let proper_subsequences w =
  let rec go = function
    | [] -> [ [] ]
    | x :: rest ->
        let subs = go rest in
        List.map (fun s -> x :: s) subs @ subs
  in
  List.filter (fun s -> s <> w) (go w)

let dedup_sorted l = List.sort_uniq compare l

(* immediates derivable from a window's own constants: the constants
   themselves, their pairwise folds, and log2 of powers of two (for
   strength reduction) *)
let derive_imms imms =
  let folds =
    List.concat_map
      (fun a ->
        List.concat_map
          (fun b -> [ Int64.add a b; Int64.sub a b; Int64.mul a b ])
          imms)
      imms
  in
  let logs = List.filter_map (fun v -> Option.map Int64.of_int (log2_64 v)) imms in
  let all = dedup_sorted (imms @ folds @ logs) in
  if List.length all > 24 then List.filteri (fun k _ -> k < 24) all else all

(* ---------- X86-lite ---------- *)

module X86s = struct
  open X86lite
  open X86lite.X86

  let is_mem = function M _ -> true | _ -> false

  let reg_ok r = r <> sp && r <> bp

  let admissible_op = function
    | R r -> reg_ok r
    | I _ -> true
    | M { base; disp } ->
        base = bp && disp mod 8 = 0 && abs disp < Compile.slot_var_base

  (* the rewritable subset: straight-line, trap-free, frame-slot-only
     memory, SP/BP untouched *)
  let admissible = function
    | Mov (a, b) | Cmp (_, _, a, b) ->
        admissible_op a && admissible_op b && not (is_mem a && is_mem b)
    | Alu (_, _, _, a, b) ->
        admissible_op a && admissible_op b && not (is_mem a && is_mem b)
    | Shift (_, _, _, a, b) ->
        admissible_op a && admissible_op b && not (is_mem a && is_mem b)
    | Ext (r, _, _) | Setcc (_, r) -> reg_ok r
    | _ -> false

  let jump_targets (code : instr array) =
    let t = Array.make (Array.length code + 2) false in
    Array.iter
      (function
        | Jmp l | Jcc (_, l) | CallSymI (_, l) | CallIndI (_, l) ->
            if l >= 0 && l < Array.length t then t.(l) <- true
        | _ -> ())
      code;
    t

  (* canonical window -> occurrence count, most frequent first *)
  let harvest (cms : Compile.cmodule list) ~max_len ~max_windows =
    let tbl = Hashtbl.create 256 in
    List.iter
      (fun (cm : Compile.cmodule) ->
        let names =
          List.sort compare
            (Hashtbl.fold (fun n _ acc -> n :: acc) cm.Compile.funcs [])
        in
        List.iter
          (fun name ->
            let cf = Hashtbl.find cm.Compile.funcs name in
            let code = cf.Compile.code in
            let targets = jump_targets code in
            let n = Array.length code in
            for i = 0 to n - 1 do
              for len = 1 to max_len do
                if i + len <= n then begin
                  let ok = ref true in
                  for j = i to i + len - 1 do
                    if not (admissible code.(j)) then ok := false
                  done;
                  for j = i + 1 to i + len - 1 do
                    if targets.(j) then ok := false
                  done;
                  if !ok then begin
                    let w = Array.to_list (Array.sub code i len) in
                    match Compile.canon_window w with
                    | cw, _ ->
                        let cur =
                          try Hashtbl.find tbl cw with Not_found -> 0
                        in
                        Hashtbl.replace tbl cw (cur + 1)
                  end
                end
              done
            done)
          names)
      cms;
    let items = Hashtbl.fold (fun w c acc -> (w, c) :: acc) tbl [] in
    let items =
      List.sort
        (fun (w1, c1) (w2, c2) ->
          if c1 <> c2 then compare c2 c1 else compare w1 w2)
        items
    in
    List.filteri (fun k _ -> k < max_windows) (List.map fst items)

  (* vocabulary of one concrete window *)
  let vocab (w : instr list) =
    let regs = ref [] and mems = ref [] and imms = ref [] in
    let wss = ref [] and aluops = ref [] and ccs = ref [] in
    let add l v = if not (List.mem v !l) then l := !l @ [ v ] in
    let add_op = function
      | R r -> add regs r
      | I v -> add imms v
      | M m -> add mems m
    in
    List.iter
      (fun i ->
        match i with
        | Mov (a, b) ->
            add_op a;
            add_op b
        | Alu (op, w_, s, a, b) ->
            add aluops op;
            add wss (w_, s);
            add_op a;
            add_op b
        | Shift (_, w_, s, a, b) ->
            add wss (w_, s);
            add_op a;
            add_op b
        | Cmp (w_, s, a, b) ->
            add wss (w_, s);
            add_op a;
            add_op b
        | Ext (r, w_, s) ->
            add regs r;
            add wss (w_, s)
        | Setcc (cc, r) ->
            add ccs cc;
            add regs r
        | _ -> ())
      w;
    if !wss = [] then wss := [ (W64, true) ];
    (!regs, !mems, !imms, !wss, !aluops, !ccs)

  (* every single-instruction form expressible in the window's own
     vocabulary (sorted, deduplicated) *)
  let forms (w : instr list) : instr list =
    let regs, mems, imms, wss, aluops, ccs = vocab w in
    let imms_all = derive_imms imms in
    let dsts = List.map (fun r -> R r) regs @ List.map (fun m -> M m) mems in
    let srcs = dsts @ List.map (fun v -> I v) imms_all in
    let has_shift = List.exists (function Shift _ -> true | _ -> false) w in
    let has_imul = List.mem Imul aluops in
    let has_cmp = List.exists (function Cmp _ -> true | _ -> false) w in
    let out = ref [] in
    let push i = out := i :: !out in
    List.iter
      (fun d ->
        List.iter
          (fun s -> if s <> d && not (is_mem d && is_mem s) then push (Mov (d, s)))
          srcs)
      dsts;
    List.iter
      (fun op ->
        List.iter
          (fun (w_, s_) ->
            List.iter
              (fun d ->
                List.iter
                  (fun s ->
                    if not (is_mem d && is_mem s) then push (Alu (op, w_, s_, d, s)))
                  srcs)
              dsts)
          wss)
      aluops;
    if has_shift || has_imul then begin
      let counts =
        List.filter
          (fun v -> Int64.compare v 0L >= 0 && Int64.compare v 63L <= 0)
          imms_all
      in
      List.iter
        (fun left ->
          List.iter
            (fun (w_, s_) ->
              List.iter
                (fun d ->
                  List.iter (fun c -> push (Shift (left, w_, s_, d, I c))) counts)
                dsts)
            wss)
        [ true; false ]
    end;
    List.iter
      (fun r -> List.iter (fun (w_, s_) -> push (Ext (r, w_, s_))) wss)
      regs;
    if has_cmp then
      List.iter
        (fun (w_, s_) ->
          List.iter
            (fun a ->
              List.iter
                (fun b ->
                  if not (is_mem a && is_mem b) then push (Cmp (w_, s_, a, b)))
                srcs)
            dsts)
        wss;
    List.iter
      (fun cc -> List.iter (fun r -> push (Setcc (cc, r))) regs)
      ccs;
    dedup_sorted !out

  let wcycles = Compile.window_cycles

  (* cheaper candidates in (cost, structural) order *)
  let candidates (w : instr list) : instr list list =
    let before = wcycles w in
    let fs = forms w in
    let subs = proper_subsequences w in
    let singles = List.map (fun f -> [ f ]) fs in
    let substs =
      List.concat
        (List.mapi
           (fun i elem ->
             let c = cycles_of elem in
             List.filter_map
               (fun f ->
                 if f <> elem && cycles_of f < c then
                   Some (List.mapi (fun j e -> if j = i then f else e) w)
                 else None)
               fs)
           w)
    in
    let all =
      List.filter (fun c -> c <> w && wcycles c < before) (subs @ singles @ substs)
    in
    List.sort_uniq
      (fun a b ->
        let ca = wcycles a and cb = wcycles b in
        if ca <> cb then compare ca cb else compare a b)
      all

  let nvars_of (cw : instr list) =
    let n = ref 0 in
    let chk = function
      | M { disp; _ } when disp >= Compile.slot_var_base ->
          n := max !n (((disp - Compile.slot_var_base) / 8) + 1)
      | _ -> ()
    in
    List.iter
      (fun i ->
        match i with
        | Mov (a, b) | Alu (_, _, _, a, b) | Shift (_, _, _, a, b)
        | Cmp (_, _, a, b) ->
            chk a;
            chk b
        | _ -> ())
      cw;
    !n

  (* invert [Compile.concretize]: map the test displacements back to
     slot variables *)
  let recanon (vars : int array) (w : instr list) : instr list =
    let disp d =
      let rec find k =
        if k >= Array.length vars then d
        else if vars.(k) = d then Compile.slot_var_base + (8 * k)
        else find (k + 1)
      in
      find 0
    in
    let op = function M m -> M { m with disp = disp m.disp } | o -> o in
    List.map
      (fun i ->
        match i with
        | Mov (a, b) -> Mov (op a, op b)
        | Alu (o2, w_, s, a, b) -> Alu (o2, w_, s, op a, op b)
        | Shift (l, w_, s, a, b) -> Shift (l, w_, s, op a, op b)
        | Cmp (w_, s, a, b) -> Cmp (w_, s, op a, op b)
        | i -> i)
      w

end

(* ---------- SPARC-lite ---------- *)

module Sparcs = struct
  open Sparclite
  open Sparclite.Sparc

  let reg_ok r = r <> sp && r <> fp && r <> lr

  let admissible = function
    | Alu3 ((Div | Rem), _, _, _, _, _) -> false
    | Alu3 (_, _, _, rd, rs1, o) -> (
        reg_ok rd && reg_ok rs1
        && match o with Rs r -> reg_ok r | Imm _ -> true)
    | Sethi (rd, _) -> reg_ok rd
    | Ld (W64, _, rd, b, d) ->
        reg_ok rd && b = fp && d mod 8 = 0 && abs d < Compile.slot_var_base
    | St (W64, rs, b, d) ->
        reg_ok rs && b = fp && d mod 8 = 0 && abs d < Compile.slot_var_base
    | Cmp (_, _, r, o) -> (
        reg_ok r && match o with Rs r2 -> reg_ok r2 | Imm _ -> true)
    | Movcc (_, rd) -> reg_ok rd
    | _ -> false

  let jump_targets (code : instr array) =
    let t = Array.make (Array.length code + 2) false in
    Array.iter
      (function
        | Ba l | Bcc (_, l) | CallSymI (_, l) | CallIndI (_, l) ->
            if l >= 0 && l < Array.length t then t.(l) <- true
        | _ -> ())
      code;
    t

  let harvest (cms : Compile.cmodule list) ~max_len ~max_windows =
    let tbl = Hashtbl.create 256 in
    List.iter
      (fun (cm : Compile.cmodule) ->
        let names =
          List.sort compare
            (Hashtbl.fold (fun n _ acc -> n :: acc) cm.Compile.funcs [])
        in
        List.iter
          (fun name ->
            let cf = Hashtbl.find cm.Compile.funcs name in
            let code = cf.Compile.code in
            let targets = jump_targets code in
            let n = Array.length code in
            for i = 0 to n - 1 do
              for len = 1 to max_len do
                if i + len <= n then begin
                  let ok = ref true in
                  for j = i to i + len - 1 do
                    if not (admissible code.(j)) then ok := false
                  done;
                  for j = i + 1 to i + len - 1 do
                    if targets.(j) then ok := false
                  done;
                  if !ok then begin
                    let w = Array.to_list (Array.sub code i len) in
                    match Compile.canon_window w with
                    | cw, _ ->
                        let cur =
                          try Hashtbl.find tbl cw with Not_found -> 0
                        in
                        Hashtbl.replace tbl cw (cur + 1)
                  end
                end
              done
            done)
          names)
      cms;
    let items = Hashtbl.fold (fun w c acc -> (w, c) :: acc) tbl [] in
    let items =
      List.sort
        (fun (w1, c1) (w2, c2) ->
          if c1 <> c2 then compare c2 c1 else compare w1 w2)
        items
    in
    List.filteri (fun k _ -> k < max_windows) (List.map fst items)

  let vocab (w : instr list) =
    let regs = ref [] and disps = ref [] and imms = ref [] in
    let wss = ref [] and aluops = ref [] and ccs = ref [] in
    let add l v = if not (List.mem v !l) then l := !l @ [ v ] in
    let add_opnd = function Rs r -> add regs r | Imm v -> add imms v in
    List.iter
      (fun i ->
        match i with
        | Alu3 (op, w_, s, rd, rs1, o) ->
            add aluops op;
            add wss (w_, s);
            add regs rd;
            add regs rs1;
            add_opnd o
        | Sethi (rd, _) -> add regs rd
        | Ld (_, _, rd, _, d) ->
            add regs rd;
            add disps d
        | St (_, rs, _, d) ->
            add regs rs;
            add disps d
        | Cmp (w_, s, r, o) ->
            add wss (w_, s);
            add regs r;
            add_opnd o
        | Movcc (cc, rd) ->
            add ccs cc;
            add regs rd
        | _ -> ())
      w;
    if !wss = [] then wss := [ (W64, true) ];
    (* Or is the move/identity idiom; always available *)
    if not (List.mem Or !aluops) then aluops := !aluops @ [ Or ];
    if not (List.mem 0 !imms) then imms := !imms @ [ 0 ];
    (!regs, !disps, !imms, !wss, !aluops, !ccs)

  let forms (w : instr list) : instr list =
    let regs, disps, imms, wss, aluops, ccs = vocab w in
    let imms64 = derive_imms (List.map Int64.of_int imms) in
    let imms_all =
      List.filter_map
        (fun v ->
          if fits_imm13 v then Some (Int64.to_int v) else None)
        imms64
    in
    let has_mul = List.mem Mul aluops in
    let aluops = if has_mul then aluops @ [ Sll ] else aluops in
    let opnds =
      List.map (fun r -> Rs r) regs @ List.map (fun v -> Imm v) imms_all
    in
    let out = ref [] in
    let push i = out := i :: !out in
    List.iter
      (fun op ->
        List.iter
          (fun (w_, s_) ->
            List.iter
              (fun rd ->
                List.iter
                  (fun rs1 ->
                    List.iter (fun o -> push (Alu3 (op, w_, s_, rd, rs1, o))) opnds)
                  (0 :: regs))
              regs)
          wss)
      (List.sort_uniq compare aluops)
    ;
    List.iter
      (fun rd ->
        List.iter (fun d -> push (Ld (W64, false, rd, fp, d))) disps;
        List.iter (fun d -> push (St (W64, rd, fp, d))) disps)
      regs;
    if List.exists (function Cmp _ -> true | _ -> false) w then
      List.iter
        (fun (w_, s_) ->
          List.iter
            (fun r -> List.iter (fun o -> push (Cmp (w_, s_, r, o))) opnds)
            regs)
        wss;
    List.iter
      (fun cc -> List.iter (fun rd -> push (Movcc (cc, rd))) regs)
      ccs;
    dedup_sorted !out

  let wcycles = Compile.window_cycles

  let candidates (w : instr list) : instr list list =
    let before = wcycles w in
    let fs = forms w in
    let subs = proper_subsequences w in
    let singles = List.map (fun f -> [ f ]) fs in
    let substs =
      List.concat
        (List.mapi
           (fun i elem ->
             let c = cycles_of elem in
             List.filter_map
               (fun f ->
                 if f <> elem && cycles_of f < c then
                   Some (List.mapi (fun j e -> if j = i then f else e) w)
                 else None)
               fs)
           w)
    in
    let all =
      List.filter (fun c -> c <> w && wcycles c < before) (subs @ singles @ substs)
    in
    List.sort_uniq
      (fun a b ->
        let ca = wcycles a and cb = wcycles b in
        if ca <> cb then compare ca cb else compare a b)
      all

  let nvars_of (cw : instr list) =
    let n = ref 0 in
    List.iter
      (fun i ->
        match i with
        | Ld (_, _, _, _, d) | St (_, _, _, d) ->
            if d >= Compile.slot_var_base then
              n := max !n (((d - Compile.slot_var_base) / 8) + 1)
        | _ -> ())
      cw;
    !n

  let recanon (vars : int array) (w : instr list) : instr list =
    let disp d =
      let rec find k =
        if k >= Array.length vars then d
        else if vars.(k) = d then Compile.slot_var_base + (8 * k)
        else find (k + 1)
      in
      find 0
    in
    List.map
      (fun i ->
        match i with
        | Ld (w_, s, rd, b, d) -> Ld (w_, s, rd, b, disp d)
        | St (w_, rs, b, d) -> St (w_, rs, b, disp d)
        | i -> i)
      w
end

(* ---------- top-level search ---------- *)

let default_max_windows = 512

let learn_x86 ?(max_windows = default_max_windows) (mods : Ir.modl list) :
    Table.t =
  let open X86lite in
  let cms = List.map (fun m -> Compile.compile_module m) mods in
  let windows = X86s.harvest cms ~max_len:4 ~max_windows in
  let h = Oracle.X86.make () in
  let rules =
    List.filter_map
      (fun cw ->
        let nvars = X86s.nvars_of cw in
        let vars = Array.init nvars (fun k -> -8 * (k + 1)) in
        let lhs_c = Compile.concretize vars cw in
        match Oracle.X86.session h ~inputs:lhs_c lhs_c with
        | None -> None
        | Some s -> (
            let cands = X86s.candidates lhs_c in
            match List.find_opt (fun c -> Oracle.X86.candidate_ok s c) cands with
            | Some rhs_c ->
                Some
                  {
                    Table.lhs = cw;
                    rhs = X86s.recanon vars rhs_c;
                    saved =
                      Compile.window_cycles lhs_c
                      - Compile.window_cycles rhs_c;
                  }
            | None -> None))
      windows
  in
  Table.x86 rules

let learn_sparc ?(max_windows = default_max_windows) (mods : Ir.modl list) :
    Table.t =
  let open Sparclite in
  let cms = List.map (fun m -> Compile.compile_module m) mods in
  let windows = Sparcs.harvest cms ~max_len:4 ~max_windows in
  let h = Oracle.Sparc.make () in
  let rules =
    List.filter_map
      (fun cw ->
        let nvars = Sparcs.nvars_of cw in
        let vars = Array.init nvars (fun k -> -24 - (8 * k)) in
        let lhs_c = Compile.concretize vars cw in
        match Oracle.Sparc.session h ~inputs:lhs_c lhs_c with
        | None -> None
        | Some s -> (
            let cands = Sparcs.candidates lhs_c in
            match
              List.find_opt (fun c -> Oracle.Sparc.candidate_ok s c) cands
            with
            | Some rhs_c ->
                Some
                  {
                    Table.lhs = cw;
                    rhs = Sparcs.recanon vars rhs_c;
                    saved =
                      Compile.window_cycles lhs_c
                      - Compile.window_cycles rhs_c;
                  }
            | None -> None))
      windows
  in
  Table.sparc rules

let learn ~(target : string) ?max_windows (mods : Ir.modl list) : Table.t =
  match target with
  | "x86lite" -> learn_x86 ?max_windows mods
  | "sparclite" -> learn_sparc ?max_windows mods
  | t -> invalid_arg ("Superopt.Search.learn: unknown target " ^ t)

(* Re-verify every rule of a table against the oracle (CI gate: a table
   that no longer verifies under the current simulators must not ship).
   Returns the indices of failing rules. *)
let reverify (t : Table.t) : int list =
  let bad = ref [] in
  (match t.Table.rules with
  | Table.X86_rules rs ->
      let h = Oracle.X86.make () in
      List.iteri
        (fun k (r : _ Table.rule) ->
          let nvars = X86s.nvars_of r.Table.lhs in
          let vars = Array.init nvars (fun i -> -8 * (i + 1)) in
          let ok =
            match
              ( X86lite.Compile.concretize vars r.Table.lhs,
                X86lite.Compile.concretize vars r.Table.rhs )
            with
            | lhs_c, rhs_c -> Oracle.X86.verify_rule h lhs_c rhs_c
            | exception _ -> false
          in
          if not ok then bad := k :: !bad)
        rs
  | Table.Sparc_rules rs ->
      let h = Oracle.Sparc.make () in
      List.iteri
        (fun k (r : _ Table.rule) ->
          let nvars = Sparcs.nvars_of r.Table.lhs in
          let vars = Array.init nvars (fun i -> -24 - (8 * i)) in
          let ok =
            match
              ( Sparclite.Compile.concretize vars r.Table.lhs,
                Sparclite.Compile.concretize vars r.Table.rhs )
            with
            | lhs_c, rhs_c -> Oracle.Sparc.verify_rule h lhs_c rhs_c
            | exception _ -> false
          in
          if not ok then bad := k :: !bad)
        rs);
  List.rev !bad
