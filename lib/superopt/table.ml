(* Versioned peephole rewrite tables.

   A table is the durable product of the offline superoptimizer
   ([Search]): a list of canonical-form rewrite rules for one backend,
   each carrying the static cycle saving claimed under that backend's
   [cycles_of] model. Tables travel through the LLEE storage cache as a
   [#peep#.v<N>] entry (framed and CRC'd by LLEE like every other
   entry), and through files via [to_string]/[of_string].

   [of_string] is strict: bad magic, an undecodable payload, a
   target/rules mismatch, an empty left-hand side, or a rule whose
   recorded saving disagrees with the current cost model all raise
   [Invalid_table]. The cost re-check matters: it orphans tables
   serialized under an older cycle model instead of letting them apply
   with stale savings accounting. *)

type 'i rule = { lhs : 'i list; rhs : 'i list; saved : int }

type rules =
  | X86_rules of X86lite.X86.instr rule list
  | Sparc_rules of Sparclite.Sparc.instr rule list

type t = { target : string; rules : rules }

(* Bump on any change to the rule representation or the canonical form;
   the version is baked into both the serialized magic and the cache
   entry name, so old entries are orphaned rather than misread. *)
let version = 1
let magic = Printf.sprintf "LLVAPEEP%d\x00" version

exception Invalid_table of string

let x86 rules = { target = "x86lite"; rules = X86_rules rules }
let sparc rules = { target = "sparclite"; rules = Sparc_rules rules }

let count t =
  match t.rules with
  | X86_rules rs -> List.length rs
  | Sparc_rules rs -> List.length rs

let total_saved t =
  match t.rules with
  | X86_rules rs -> List.fold_left (fun a r -> a + r.saved) 0 rs
  | Sparc_rules rs -> List.fold_left (fun a r -> a + r.saved) 0 rs

(* Rule pairs in the shape [Compile.apply_rules] consumes. *)
let x86_pairs t =
  match t.rules with
  | X86_rules rs -> List.map (fun r -> (r.lhs, r.rhs)) rs
  | Sparc_rules _ ->
      raise (Invalid_table "x86lite rules requested from a sparclite table")

let sparc_pairs t =
  match t.rules with
  | Sparc_rules rs -> List.map (fun r -> (r.lhs, r.rhs)) rs
  | X86_rules _ ->
      raise (Invalid_table "sparclite rules requested from an x86lite table")

let validate t =
  let check name cost rs =
    if t.target <> name then
      raise
        (Invalid_table
           (Printf.sprintf "table target %S carries %s rules" t.target name));
    List.iter
      (fun r ->
        if r.lhs = [] then raise (Invalid_table "empty rule left-hand side");
        let sum = List.fold_left (fun a i -> a + cost i) 0 in
        if sum r.lhs - sum r.rhs <> r.saved || r.saved <= 0 then
          raise
            (Invalid_table "rule saving disagrees with the current cycle model"))
      rs
  in
  match t.rules with
  | X86_rules rs -> check "x86lite" X86lite.X86.cycles_of rs
  | Sparc_rules rs -> check "sparclite" Sparclite.Sparc.cycles_of rs

let to_string (t : t) : string =
  validate t;
  magic ^ Marshal.to_string t []

let of_string ?expect_target (s : string) : t =
  let mlen = String.length magic in
  if String.length s < mlen || String.sub s 0 mlen <> magic then
    raise (Invalid_table "bad magic or table version");
  let t =
    try (Marshal.from_string s mlen : t)
    with _ -> raise (Invalid_table "undecodable table payload")
  in
  validate t;
  (match expect_target with
  | Some tgt when tgt <> t.target ->
      raise
        (Invalid_table
           (Printf.sprintf "table for %s where %s was expected" t.target tgt))
  | _ -> ());
  t

(* Short content hash; suffixed onto LLEE cache identities so native
   code compiled under different tables never shares an entry. *)
let fingerprint t = String.sub (Digest.to_hex (Digest.string (to_string t))) 0 8

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "peephole table: target=%s version=%d rules=%d saved=%d\n"
       t.target version (count t) (total_saved t));
  let dump ito rs =
    List.iteri
      (fun k r ->
        Buffer.add_string buf (Printf.sprintf "rule %d (saves %d):\n" k r.saved);
        List.iter
          (fun i -> Buffer.add_string buf ("  - " ^ ito i ^ "\n"))
          r.lhs;
        List.iter
          (fun i -> Buffer.add_string buf ("  + " ^ ito i ^ "\n"))
          r.rhs)
      rs
  in
  (match t.rules with
  | X86_rules rs -> dump X86lite.X86.to_string rs
  | Sparc_rules rs -> dump Sparclite.Sparc.to_string rs);
  Buffer.contents buf
